// Command tipbench regenerates the paper's evaluation: it runs any (or all)
// of the tables and figures from "Automatic I/O Hint Generation through
// Speculative Execution" (OSDI '99) on the simulated testbed and prints
// paper-style tables.
//
// Usage:
//
//	tipbench -list
//	tipbench -exp fig3
//	tipbench -exp table4,table5 -scale sweep
//	tipbench -exp all          # everything, including the heavy sweeps
//	tipbench -exp quick        # everything except the heavy sweeps
//	tipbench -exp multi -multimax 4 -json BENCH_multi.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spechint/internal/apps"
	"spechint/internal/bench"
)

func main() {
	var (
		expFlag   = flag.String("exp", "quick", "experiment id(s), comma separated; or 'all' / 'quick'")
		scaleFlag = flag.String("scale", "full", "workload scale: full, sweep, or test")
		listFlag  = flag.Bool("list", false, "list available experiments")
		multiMax  = flag.Int("multimax", 0, "largest group size for the multi experiment (0 keeps the default)")
		jsonFlag  = flag.String("json", "", "also write the multi or faults sweep as JSON to this file")
	)
	flag.Parse()

	if *multiMax > 0 {
		bench.MultiMaxN = *multiMax
	}

	if *listFlag {
		fmt.Println("available experiments:")
		for _, n := range bench.Names() {
			e := bench.Registry[n]
			heavy := ""
			if e.Heavy {
				heavy = " (heavy sweep)"
			}
			fmt.Printf("  %-12s %s%s\n", n, e.Desc, heavy)
		}
		return
	}

	var scale apps.Scale
	switch *scaleFlag {
	case "full":
		scale = apps.FullScale()
	case "sweep":
		scale = apps.SweepScale()
	case "test":
		scale = apps.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "tipbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	var names []string
	switch *expFlag {
	case "all":
		names = bench.Names()
	case "quick":
		for _, n := range bench.Names() {
			if !bench.Registry[n].Heavy {
				names = append(names, n)
			}
		}
	default:
		names = strings.Split(*expFlag, ",")
	}

	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := bench.RunByName(name, scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	if *jsonFlag != "" {
		// The JSON form follows the requested experiment: faults if the list
		// names it, otherwise the multi sweep (the original behavior).
		which, gen := "multi", func() ([]byte, error) { return bench.MultiJSON(scale, bench.MultiMaxN) }
		for _, n := range names {
			if strings.TrimSpace(n) == "faults" {
				which, gen = "faults", func() ([]byte, error) { return bench.FaultsJSON(scale) }
			}
		}
		out, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %s json: %v\n", which, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonFlag, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
}
