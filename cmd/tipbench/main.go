// Command tipbench regenerates the paper's evaluation: it runs any (or all)
// of the tables and figures from "Automatic I/O Hint Generation through
// Speculative Execution" (OSDI '99) on the simulated testbed and prints
// paper-style tables.
//
// Usage:
//
//	tipbench -list
//	tipbench -exp fig3
//	tipbench -exp static       # statically synthesized hints vs original/manual
//	tipbench -exp table4,table5 -scale sweep
//	tipbench -exp all          # everything, including the heavy sweeps
//	tipbench -exp quick        # everything except the heavy sweeps
//	tipbench -exp multi -multimax 4 -json BENCH_multi.json
//	tipbench -exp table4 -trace-json trace.json -trace-app gnuld
//	tipbench -exp multi -trace-json trace.json   # trace a speculating group
//	tipbench -exp fig5 -parallel 4               # bound the worker pool
//	tipbench -replay -scale test -json BENCH_replay.json  # trace-replay grid + round trip
//	tipbench -check bench/results/BENCH_multi.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"spechint/internal/apps"
	"spechint/internal/bench"
	"spechint/internal/core"
	"spechint/internal/obs"
)

func main() {
	var (
		expFlag   = flag.String("exp", "quick", "experiment id(s), comma separated; or 'all' / 'quick'")
		scaleFlag = flag.String("scale", "full", "workload scale: full, sweep, or test")
		listFlag  = flag.Bool("list", false, "list available experiments")
		multiMax  = flag.Int("multimax", 0, "largest group size for the multi experiment (0 keeps the default)")
		jsonFlag  = flag.String("json", "", "also write the multi or faults sweep as JSON to this file")
		traceJSON = flag.String("trace-json", "", "write a cross-layer Chrome trace_event JSON to this file "+
			"(a speculating group when -exp includes multi, else a solo speculating run of -trace-app)")
		traceApp = flag.String("trace-app", "gnuld", "application for the solo -trace-json run: agrep, gnuld, xds, postgres")
		parallel = flag.Int("parallel", runtime.NumCPU(),
			"simulation cells run concurrently (1 = serial; output is byte-identical at any width)")
		clusterFlag = flag.Bool("cluster", false,
			"run the sharded-service sweep and print its JSON to stdout (or to -json's file)")
		clusterShards = flag.String("cluster-shards", "",
			"comma-separated shard counts for -cluster (default 1,2,4,8,16)")
		speedFlag = flag.Bool("speed", false,
			"measure event-loop/VM/end-to-end wall-clock throughput and print its JSON to stdout (or to -json's file)")
		replayFlag = flag.Bool("replay", false,
			"run the trace-replay grid (modern apps, all modes, capture→replay round trip) and print its JSON to stdout (or to -json's file)")
		overloadFlag = flag.Bool("overload", false,
			"run the overload sweep (admission control, shedding, failover) and print its JSON to stdout (or to -json's file)")
		shedFlag = flag.String("shed", "both",
			"admission arms for -overload: both, on, or off (off skips the failover cell)")
		killShard = flag.Int("kill-shard", 1,
			"shard the -overload failover cell kills mid-run (negative skips the failover cell)")
		checkFlag = flag.String("check", "",
			"run a fresh multi sweep and fail if it regresses from this baseline JSON")
		checkTol = flag.Float64("check-tol", 10, "makespan drift tolerance for -check, in percent")
	)
	flag.Parse()

	if *multiMax > 0 {
		bench.MultiMaxN = *multiMax
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "tipbench: -parallel must be >= 1, got %d\n", *parallel)
		os.Exit(2)
	}
	bench.Parallelism = *parallel

	if *listFlag {
		fmt.Println("available experiments:")
		for _, n := range bench.Names() {
			e := bench.Registry[n]
			heavy := ""
			if e.Heavy {
				heavy = " (heavy sweep)"
			}
			fmt.Printf("  %-12s %s%s\n", n, e.Desc, heavy)
		}
		return
	}

	var scale apps.Scale
	switch *scaleFlag {
	case "full":
		scale = apps.FullScale()
	case "sweep":
		scale = apps.SweepScale()
	case "test":
		scale = apps.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "tipbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	if *clusterFlag {
		shards := bench.ClusterShards
		if *clusterShards != "" {
			shards = shards[:0:0]
			for _, f := range strings.Split(*clusterShards, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "tipbench: bad -cluster-shards entry %q\n", f)
					os.Exit(2)
				}
				shards = append(shards, n)
			}
		}
		out, err := bench.ClusterJSON(scale, shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: cluster: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonFlag != "" {
			if err := os.WriteFile(*jsonFlag, out, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonFlag)
			return
		}
		os.Stdout.Write(out)
		return
	}

	if *speedFlag {
		out, err := bench.SpeedJSONBytes(scale, *scaleFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: speed: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonFlag != "" {
			if err := os.WriteFile(*jsonFlag, out, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonFlag)
			return
		}
		os.Stdout.Write(out)
		return
	}

	if *replayFlag {
		out, err := bench.ReplayJSON(scale, *scaleFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: replay: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonFlag != "" {
			if err := os.WriteFile(*jsonFlag, out, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonFlag)
			return
		}
		os.Stdout.Write(out)
		return
	}

	if *overloadFlag {
		bench.OverloadArm = *shedFlag
		bench.OverloadKillShard = *killShard
		out, err := bench.OverloadJSON(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: overload: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonFlag != "" {
			if err := os.WriteFile(*jsonFlag, out, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonFlag)
			return
		}
		os.Stdout.Write(out)
		return
	}

	if *checkFlag != "" {
		if err := runCheck(*checkFlag, scale, *checkTol); err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("check passed: multi sweep matches %s (tolerance %g%%)\n", *checkFlag, *checkTol)
		return
	}

	var names []string
	switch *expFlag {
	case "all":
		names = bench.Names()
	case "quick":
		for _, n := range bench.Names() {
			if !bench.Registry[n].Heavy {
				names = append(names, n)
			}
		}
	default:
		names = strings.Split(*expFlag, ",")
	}

	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := bench.RunByName(name, scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	if *jsonFlag != "" {
		// The JSON form follows the requested experiment: faults if the list
		// names it, otherwise the multi sweep (the original behavior).
		which, gen := "multi", func() ([]byte, error) { return bench.MultiJSON(scale, bench.MultiMaxN) }
		for _, n := range names {
			if strings.TrimSpace(n) == "faults" {
				which, gen = "faults", func() ([]byte, error) { return bench.FaultsJSON(scale) }
			}
		}
		out, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %s json: %v\n", which, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonFlag, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}

	if *traceJSON != "" {
		if err := writeTrace(*traceJSON, *traceApp, names, scale); err != nil {
			fmt.Fprintf(os.Stderr, "tipbench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceJSON)
	}
}

// runCheck reruns the multi sweep at the baseline's own size and fails if
// the result drifted outside tolerance or flipped a who-wins ordering
// (see bench.CheckMulti). Used by make bench-check.
func runCheck(path string, scale apps.Scale, tolPct float64) error {
	baseline, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var shape struct {
		MaxN int `json:"max_n"`
	}
	if err := json.Unmarshal(baseline, &shape); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	if shape.MaxN < 1 {
		return fmt.Errorf("baseline %s: missing max_n", path)
	}
	fresh, err := bench.MultiJSON(scale, shape.MaxN)
	if err != nil {
		return err
	}
	return bench.CheckMulti(fresh, baseline, tolPct)
}

// writeTrace records one traced run and writes its Chrome trace_event JSON:
// a speculating multi group when the experiment list names multi, otherwise a
// solo speculating run of the requested application.
func writeTrace(path, appName string, names []string, scale apps.Scale) error {
	var tr *obs.Trace
	forMulti := false
	for _, n := range names {
		if strings.TrimSpace(n) == "multi" {
			forMulti = true
		}
	}
	if forMulti {
		n := bench.MultiMaxN
		if n > 4 {
			n = 4 // a readable trace, not the full sweep
		}
		var err error
		if tr, _, err = bench.TraceMulti(scale, n); err != nil {
			return err
		}
	} else {
		app, err := parseApp(appName)
		if err != nil {
			return err
		}
		if tr, _, err = bench.TraceRun(app, core.ModeSpeculating, scale); err != nil {
			return err
		}
	}
	out, err := tr.ChromeTraceJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func parseApp(name string) (apps.App, error) {
	switch strings.ToLower(name) {
	case "agrep":
		return apps.Agrep, nil
	case "gnuld", "ld":
		return apps.Gnuld, nil
	case "xds", "xdataslice":
		return apps.XDataSlice, nil
	case "postgres":
		return apps.Postgres, nil
	case "lsm":
		return apps.LSM, nil
	case "mlshard", "ml":
		return apps.MLShard, nil
	}
	return 0, fmt.Errorf("unknown app %q (want agrep, gnuld, xds, postgres, lsm or mlshard)", name)
}
