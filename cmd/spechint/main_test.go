package main

import (
	"bytes"
	"strings"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/spechint"
)

// Two invocations of the transform report on the same program must produce
// byte-identical stdout: the only run-varying line (wall-clock timing) goes
// to stderr, so scripts can diff or checksum the report.
func TestReportTransformStdoutDeterministic(t *testing.T) {
	bundle, err := apps.Build(apps.Agrep, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	opt := spechint.DefaultOptions()

	runOnce := func() (stdout, stderr string) {
		var out, errw bytes.Buffer
		if err := reportTransform(&out, &errw, bundle.Original, opt, false); err != nil {
			t.Fatal(err)
		}
		return out.String(), errw.String()
	}

	out1, err1 := runOnce()
	out2, _ := runOnce()
	if out1 != out2 {
		t.Fatalf("stdout differs between runs:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	if strings.Contains(out1, "transformed in") {
		t.Fatalf("timing line leaked onto stdout:\n%s", out1)
	}
	if !strings.Contains(err1, "transformed in") {
		t.Fatalf("timing line missing from stderr:\n%s", err1)
	}
	if !strings.Contains(out1, "hint sites:") {
		t.Fatalf("report missing statistics:\n%s", out1)
	}
}
