// Command spechint is the binary-modification tool as a CLI: it transforms
// a VM program (an assembly file, or one of the built-in benchmark
// applications) to perform speculative execution for I/O hint generation,
// and reports the paper's Table 3 statistics. It can also run the static
// analyses on their own: -analyze classifies every read call site by how
// much of the file access pattern is statically computable, and -lint
// verifies the transform invariants on the generated shadow text.
//
// Usage:
//
//	spechint -file prog.s [-dis] [-no-stack-opt] [-keep-output]
//	spechint -app agrep|gnuld|xds [-dis]
//	spechint -app all -lint          # verify the shadow text of every app
//	spechint -app xds -analyze       # static hintability report
package main

import (
	"flag"
	"fmt"
	"os"

	"spechint/internal/analysis"
	"spechint/internal/apps"
	"spechint/internal/asm"
	"spechint/internal/spechint"
	"spechint/internal/vm"
)

func main() {
	var (
		file       = flag.String("file", "", "assembly source file to transform")
		app        = flag.String("app", "", "built-in benchmark to transform: agrep, gnuld, xds, or all")
		dis        = flag.Bool("dis", false, "print the disassembly of the transformed program")
		noStackOpt = flag.Bool("no-stack-opt", false, "disable the stack-copy optimization (check SP-relative accesses too)")
		keepOutput = flag.Bool("keep-output", false, "keep output-routine calls in the shadow code")
		analyze    = flag.Bool("analyze", false, "run the static hintability analysis instead of reporting transform stats")
		lint       = flag.Bool("lint", false, "verify the transform invariants on the shadow text; nonzero exit on findings")
	)
	flag.Parse()

	opt := spechint.DefaultOptions()
	opt.StackCopyOptimization = !*noStackOpt
	opt.RemoveOutputRoutines = !*keepOutput

	var progs []named
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		progs = append(progs, named{*file, prog})
	case *app == "all":
		for _, a := range []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice, apps.Postgres} {
			progs = append(progs, named{a.String(), buildApp(a)})
		}
	case *app != "":
		var a apps.App
		switch *app {
		case "agrep":
			a = apps.Agrep
		case "gnuld":
			a = apps.Gnuld
		case "xds", "xdataslice":
			a = apps.XDataSlice
		case "postgres":
			a = apps.Postgres
		default:
			fail(fmt.Errorf("unknown app %q", *app))
		}
		progs = append(progs, named{a.String(), buildApp(a)})
	default:
		flag.Usage()
		os.Exit(2)
	}

	bad := false
	for _, np := range progs {
		if len(progs) > 1 {
			fmt.Printf("== %s ==\n", np.name)
		}
		if !run(np.prog, opt, *analyze, *lint, *dis) {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

type named struct {
	name string
	prog *vm.Program
}

func buildApp(a apps.App) *vm.Program {
	bundle, err := apps.Build(a, apps.FullScale())
	if err != nil {
		fail(err)
	}
	return bundle.Original
}

// run processes one program; it returns false when lint found violations.
func run(prog *vm.Program, opt spechint.Options, analyze, lint, dis bool) bool {
	if analyze {
		report, err := analysis.Classify(prog, analysis.DefaultConfig())
		if err != nil {
			fail(err)
		}
		fmt.Print(report.String())
		if lint {
			fmt.Println()
		}
	}

	if !analyze && !lint {
		out, st, err := spechint.Transform(prog, opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("transformed in %v\n", st.Elapsed)
		fmt.Printf("  text:            %d -> %d instructions (%d -> %d bytes, +%.0f%%)\n",
			st.OrigInstrs, st.TotalInstrs, st.OrigBytes, st.TotalBytes, st.SizeIncreasePct())
		fmt.Printf("  COW checks:      %d inserted, %d SP-relative accesses skipped\n",
			st.ChecksAdded, st.StackSkipped)
		fmt.Printf("  control flow:    %d static redirects, %d dynamic-handler sites, %d recognized jump tables\n",
			st.StaticJumps, st.DynamicJumps, st.TablesStatic)
		fmt.Printf("  output routines: %d removed from shadow code\n", st.OutputCalls)
		fmt.Printf("  hint sites:      %d read calls become hint generators\n", st.HintSites)
		if dis {
			fmt.Println()
			fmt.Print(asm.Disassemble(out))
		}
		return true
	}

	if lint {
		out, _, err := spechint.Transform(prog, opt)
		if err != nil {
			fail(err)
		}
		findings := analysis.Lint(out, opt)
		fmt.Print(analysis.FormatFindings(out, findings))
		if dis {
			fmt.Println()
			fmt.Print(asm.Disassemble(out))
		}
		return len(findings) == 0
	}
	return true
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "spechint: %v\n", err)
	os.Exit(1)
}
