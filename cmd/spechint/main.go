// Command spechint is the binary-modification tool as a CLI: it transforms
// a VM program (an assembly file, or one of the built-in benchmark
// applications) to perform speculative execution for I/O hint generation,
// and reports the paper's Table 3 statistics. It can also run the static
// analyses on their own: -analyze classifies every read call site by how
// much of the file access pattern is statically computable, -lint verifies
// the transform invariants on the generated shadow text, and -synthesize
// compiles the access pattern into confidence-ranked static hints — for the
// built-in apps it then runs the program in static mode and audits every
// synthesized hint against the dynamic read-site statistics (a hint the run
// never consumed is a lint error and a nonzero exit).
//
// Usage:
//
//	spechint -file prog.s [-dis] [-no-stack-opt] [-keep-output]
//	spechint -app agrep|gnuld|xds [-dis]
//	spechint -app all -lint          # verify the shadow text of every app
//	spechint -app xds -analyze       # static hintability report
//	spechint -app all -synthesize    # synthesize + verify static hints
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spechint/internal/analysis"
	"spechint/internal/apps"
	"spechint/internal/asm"
	"spechint/internal/bench"
	"spechint/internal/core"
	"spechint/internal/spechint"
	"spechint/internal/vm"
)

func main() {
	var (
		file       = flag.String("file", "", "assembly source file to transform")
		app        = flag.String("app", "", "built-in benchmark to transform: agrep, gnuld, xds, or all")
		dis        = flag.Bool("dis", false, "print the disassembly of the transformed program")
		noStackOpt = flag.Bool("no-stack-opt", false, "disable the stack-copy optimization (check SP-relative accesses too)")
		keepOutput = flag.Bool("keep-output", false, "keep output-routine calls in the shadow code")
		analyze    = flag.Bool("analyze", false, "run the static hintability analysis instead of reporting transform stats")
		lint       = flag.Bool("lint", false, "verify the transform invariants on the shadow text; nonzero exit on findings")
		synthesize = flag.Bool("synthesize", false, "synthesize static hints; for built-in apps, also verify them against a dynamic run")
	)
	flag.Parse()

	opt := spechint.DefaultOptions()
	opt.StackCopyOptimization = !*noStackOpt
	opt.RemoveOutputRoutines = !*keepOutput

	if *synthesize {
		if runSynthesize(*file, *app) {
			return
		}
		os.Exit(1)
	}

	var progs []named
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		progs = append(progs, named{*file, prog})
	case *app == "all":
		for _, a := range []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice, apps.Postgres} {
			progs = append(progs, named{a.String(), buildApp(a)})
		}
	case *app != "":
		var a apps.App
		switch *app {
		case "agrep":
			a = apps.Agrep
		case "gnuld":
			a = apps.Gnuld
		case "xds", "xdataslice":
			a = apps.XDataSlice
		case "postgres":
			a = apps.Postgres
		default:
			fail(fmt.Errorf("unknown app %q", *app))
		}
		progs = append(progs, named{a.String(), buildApp(a)})
	default:
		flag.Usage()
		os.Exit(2)
	}

	bad := false
	for _, np := range progs {
		if len(progs) > 1 {
			fmt.Printf("== %s ==\n", np.name)
		}
		if !run(np.prog, opt, *analyze, *lint, *dis) {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

type named struct {
	name string
	prog *vm.Program
}

// runSynthesize handles the -synthesize mode. For a -file program it prints
// the confidence-ranked hint report; for built-in apps it also runs each app
// in static mode and audits the synthesized hints against the dynamic
// read-site statistics. It returns false if any hint failed verification.
func runSynthesize(file, app string) bool {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			fail(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		report, err := analysis.Synthesize(prog, analysis.Config{})
		if err != nil {
			fail(err)
		}
		fmt.Print(report.String())
		fmt.Println("(no workload for a -file program: dynamic verification skipped)")
		return true
	}

	var list []apps.App
	switch app {
	case "all":
		list = []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice, apps.Postgres}
	case "agrep":
		list = []apps.App{apps.Agrep}
	case "gnuld":
		list = []apps.App{apps.Gnuld}
	case "xds", "xdataslice":
		list = []apps.App{apps.XDataSlice}
	case "postgres":
		list = []apps.App{apps.Postgres}
	default:
		fail(fmt.Errorf("-synthesize needs -file or -app agrep|gnuld|xds|postgres|all, got app %q", app))
	}

	// Sweep scale matches the golden dynamic runs in bench/golden.
	scale := apps.SweepScale()
	ok := true
	for _, a := range list {
		if len(list) > 1 {
			fmt.Printf("== %s ==\n", a)
		}
		b, err := apps.Build(a, scale)
		if err != nil {
			fail(err)
		}
		report, err := bench.Synth(b)
		if err != nil {
			fail(err)
		}
		fmt.Print(report.String())

		st, _, err := bench.Run(a, core.ModeStatic, scale, nil)
		if err != nil {
			fail(err)
		}
		findings := report.Verify(bench.DynStats(st))
		if len(findings) == 0 {
			fmt.Printf("dynamic verification: ok (%d hints, %d hinted reads, 0 bypassed)\n\n",
				len(report.Hints), st.HintedReads)
			continue
		}
		ok = false
		fmt.Print(analysis.FormatFindings(b.Original, findings))
		fmt.Println()
	}
	return ok
}

func buildApp(a apps.App) *vm.Program {
	bundle, err := apps.Build(a, apps.FullScale())
	if err != nil {
		fail(err)
	}
	return bundle.Original
}

// run processes one program; it returns false when lint found violations.
func run(prog *vm.Program, opt spechint.Options, analyze, lint, dis bool) bool {
	if analyze {
		report, err := analysis.Classify(prog, analysis.DefaultConfig())
		if err != nil {
			fail(err)
		}
		fmt.Print(report.String())
		if lint {
			fmt.Println()
		}
	}

	if !analyze && !lint {
		if err := reportTransform(os.Stdout, os.Stderr, prog, opt, dis); err != nil {
			fail(err)
		}
		return true
	}

	if lint {
		out, _, err := spechint.Transform(prog, opt)
		if err != nil {
			fail(err)
		}
		findings := analysis.Lint(out, opt)
		fmt.Print(analysis.FormatFindings(out, findings))
		if dis {
			fmt.Println()
			fmt.Print(asm.Disassemble(out))
		}
		return len(findings) == 0
	}
	return true
}

// reportTransform transforms prog and writes the statistics report to w.
// The wall-clock timing line goes to errw (stderr in main): it varies run to
// run, and keeping it off stdout makes the report byte-identical across
// repeated invocations — scripts can diff or checksum the output.
func reportTransform(w, errw io.Writer, prog *vm.Program, opt spechint.Options, dis bool) error {
	out, st, err := spechint.Transform(prog, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "transformed in %v\n", st.Elapsed)
	fmt.Fprintf(w, "  text:            %d -> %d instructions (%d -> %d bytes, +%.0f%%)\n",
		st.OrigInstrs, st.TotalInstrs, st.OrigBytes, st.TotalBytes, st.SizeIncreasePct())
	fmt.Fprintf(w, "  COW checks:      %d inserted, %d SP-relative accesses skipped\n",
		st.ChecksAdded, st.StackSkipped)
	fmt.Fprintf(w, "  control flow:    %d static redirects, %d dynamic-handler sites, %d recognized jump tables\n",
		st.StaticJumps, st.DynamicJumps, st.TablesStatic)
	fmt.Fprintf(w, "  output routines: %d removed from shadow code\n", st.OutputCalls)
	fmt.Fprintf(w, "  hint sites:      %d read calls become hint generators\n", st.HintSites)
	if dis {
		fmt.Fprintln(w)
		fmt.Fprint(w, asm.Disassemble(out))
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "spechint: %v\n", err)
	os.Exit(1)
}
