// Command spechint is the binary-modification tool as a CLI: it transforms
// a VM program (an assembly file, or one of the built-in benchmark
// applications) to perform speculative execution for I/O hint generation,
// and reports the paper's Table 3 statistics.
//
// Usage:
//
//	spechint -file prog.s [-dis] [-no-stack-opt] [-keep-output]
//	spechint -app agrep|gnuld|xds [-dis]
package main

import (
	"flag"
	"fmt"
	"os"

	"spechint/internal/apps"
	"spechint/internal/asm"
	"spechint/internal/spechint"
	"spechint/internal/vm"
)

func main() {
	var (
		file       = flag.String("file", "", "assembly source file to transform")
		app        = flag.String("app", "", "built-in benchmark to transform: agrep, gnuld, or xds")
		dis        = flag.Bool("dis", false, "print the disassembly of the transformed program")
		noStackOpt = flag.Bool("no-stack-opt", false, "disable the stack-copy optimization (check SP-relative accesses too)")
		keepOutput = flag.Bool("keep-output", false, "keep output-routine calls in the shadow code")
	)
	flag.Parse()

	var prog *vm.Program
	var err error
	switch {
	case *file != "":
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fail(rerr)
		}
		prog, err = asm.Assemble(string(src))
	case *app != "":
		var a apps.App
		switch *app {
		case "agrep":
			a = apps.Agrep
		case "gnuld":
			a = apps.Gnuld
		case "xds", "xdataslice":
			a = apps.XDataSlice
		default:
			fail(fmt.Errorf("unknown app %q", *app))
		}
		var bundle *apps.Bundle
		bundle, err = apps.Build(a, apps.FullScale())
		if err == nil {
			prog = bundle.Original
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	opt := spechint.DefaultOptions()
	opt.StackCopyOptimization = !*noStackOpt
	opt.RemoveOutputRoutines = !*keepOutput

	out, st, err := spechint.Transform(prog, opt)
	if err != nil {
		fail(err)
	}

	fmt.Printf("transformed in %v\n", st.Elapsed)
	fmt.Printf("  text:            %d -> %d instructions (%d -> %d bytes, +%.0f%%)\n",
		st.OrigInstrs, st.TotalInstrs, st.OrigBytes, st.TotalBytes, st.SizeIncreasePct())
	fmt.Printf("  COW checks:      %d inserted, %d SP-relative accesses skipped\n",
		st.ChecksAdded, st.StackSkipped)
	fmt.Printf("  control flow:    %d static redirects, %d dynamic-handler sites, %d recognized jump tables\n",
		st.StaticJumps, st.DynamicJumps, st.TablesStatic)
	fmt.Printf("  output routines: %d removed from shadow code\n", st.OutputCalls)
	fmt.Printf("  hint sites:      %d read calls become hint generators\n", st.HintSites)

	if *dis {
		fmt.Println()
		fmt.Print(asm.Disassemble(out))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "spechint: %v\n", err)
	os.Exit(1)
}
