// Command specrun runs an assembly program under the simulated testbed in
// any of the three modes, optionally populating a simulated file system from
// a host directory — the fastest way to watch SpecHint work on your own
// program.
//
// Usage:
//
//	specrun -file prog.s                         # original, 4 disks
//	specrun -file prog.s -mode spec              # transform + speculate
//	specrun -file prog.s -mode spec -dual        # §5 multiprocessor
//	specrun -file prog.s -dir ./inputs -disks 8  # host files -> sim fs
//	specrun -file prog.s -mode spec -json        # stats as JSON on stdout
//	specrun -file prog.s -faults rate=0.05,seed=7  # inject disk faults
//	specrun -file prog.s -deadline 500000000     # abort after 5e8 cycles (exit 3)
//	specrun -file prog.s -trace-json t.json      # cross-layer trace for chrome://tracing
//	specrun -trace-file app.trace -mode spec     # compile + replay a captured trace
//	specrun -file prog.s -capture out.trace      # record the read stream as a trace
//
// Files from -dir are loaded into the simulated file system under their
// relative paths, so the program's open() calls can name them directly.
//
// Instead of assembly source, -trace-file accepts a captured I/O trace
// (internal/trace line format: open/read/think/close records). The trace is
// compiled into a replay program that runs in any mode; files the trace
// reads that -dir did not provide are synthesized at the right sizes. A
// malformed trace is a tool error: specrun exits 1 and the message carries
// the offending line number ("trace: line N: ...").
//
// Exit codes (tool status and program status are kept separate — the
// simulated program's exit code is reported in the stderr summary and the
// -json document, never as specrun's own):
//
//	0  run completed and the program exited 0
//	1  tool error (bad source, malformed trace, I/O error, simulation failure)
//	2  usage error (including -file and -trace-file both present or both absent)
//	3  virtual-cycle deadline exceeded
//	4  run completed but the program exited nonzero
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"spechint/internal/asm"
	"spechint/internal/core"
	"spechint/internal/fault"
	"spechint/internal/fsim"
	"spechint/internal/obs"
	"spechint/internal/spechint"
	itrace "spechint/internal/trace"
	"spechint/internal/vm"
	"spechint/internal/workload"
)

func main() {
	var (
		file   = flag.String("file", "", "assembly source file (this or -trace-file is required)")
		mode   = flag.String("mode", "orig", "orig, spec, or manual")
		disks  = flag.Int("disks", 4, "disks in the array")
		cache  = flag.Int("cache", 12, "file cache size in MB")
		dir    = flag.String("dir", "", "host directory to load into the simulated fs")
		dual   = flag.Bool("dual", false, "run speculation on a second processor")
		quiet  = flag.Bool("q", false, "suppress the program's own output")
		trace  = flag.Int("trace", 0, "print up to N timeline events (reads, hints, restarts)")
		jsonF  = flag.Bool("json", false, "emit the run's statistics as JSON on stdout")
		ddline = flag.Int64("deadline", 0, "abort after this many virtual cycles (0 = default budget)")
		faults = flag.String("faults", "", "fault-injection spec, e.g. rate=0.01,seed=42 (keys: "+
			strings.Join(fault.Keys(), ", ")+")")
		traceJSON   = flag.String("trace-json", "", "write the cross-layer trace as Chrome trace_event JSON to this file")
		metricsJSON = flag.String("metrics-json", "", "write the sampled metric time series as JSON to this file")
		traceFile   = flag.String("trace-file", "", "captured I/O trace to compile and replay (instead of -file)")
		captureF    = flag.String("capture", "", "write the run's read stream as a replayable trace to this file")
	)
	flag.Parse()
	if (*file == "") == (*traceFile == "") {
		fmt.Fprintln(os.Stderr, "specrun: exactly one of -file or -trace-file is required")
		flag.Usage()
		os.Exit(2)
	}

	var m core.Mode
	switch *mode {
	case "orig":
		m = core.ModeNoHint
	case "manual":
		m = core.ModeManual
	case "spec":
		m = core.ModeSpeculating
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	// Resolve the program: assembly source, or a trace compiled to a replay
	// program (the manual variant carries the hint oracle).
	var prog *vm.Program
	var replay *itrace.Trace
	if *traceFile != "" {
		data, err := os.ReadFile(*traceFile)
		if err != nil {
			fail(err)
		}
		if replay, err = itrace.Parse(string(data)); err != nil {
			fail(err)
		}
		if prog, err = asm.Assemble(itrace.Source(replay, m == core.ModeManual)); err != nil {
			fail(err)
		}
	} else {
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		if prog, err = asm.Assemble(string(src)); err != nil {
			fail(err)
		}
	}
	var err error
	if m == core.ModeSpeculating {
		var st spechint.Stats
		prog, st, err = spechint.Transform(prog, spechint.DefaultOptions())
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "spechint: %d -> %d instructions, %d checks, %d hint sites\n",
			st.OrigInstrs, st.TotalInstrs, st.ChecksAdded, st.HintSites)
	}

	vfs := fsim.New(8192)
	workload.SetBenchLayout(vfs)
	if *dir != "" {
		if err := loadDir(vfs, *dir); err != nil {
			fail(err)
		}
	}
	if replay != nil {
		// Synthesize any file the trace reads that -dir did not provide.
		if err := itrace.PopulateFS(vfs, replay); err != nil {
			fail(err)
		}
	}

	cfg := core.DefaultConfig(m)
	cfg.Disk = core.TestbedDisk(*disks)
	cfg.TIP.CacheBlocks = *cache << 20 / cfg.Disk.BlockSize
	cfg.DualProcessor = *dual
	cfg.TraceEvents = *trace > 0
	if *ddline > 0 {
		cfg.MaxCycles = *ddline
	}
	if *faults != "" {
		if cfg.Faults, err = fault.Parse(*faults); err != nil {
			fail(err)
		}
	}
	var tr *obs.Trace
	if *traceJSON != "" || *metricsJSON != "" {
		tr = obs.New(obs.Config{})
		cfg.Obs = tr
	}
	var capt *itrace.Capture
	if *captureF != "" {
		capt = &itrace.Capture{}
		cfg.Capture = capt
	}

	sys, err := core.New(cfg, prog, vfs)
	if err != nil {
		fail(err)
	}
	st, err := sys.Run()
	if errors.Is(err, core.ErrDeadline) {
		fmt.Fprintf(os.Stderr, "specrun: deadline exceeded: the program did not finish within %d virtual cycles (%.3f testbed seconds)\n",
			cfg.MaxCycles, float64(cfg.MaxCycles)/core.CPUHz)
		os.Exit(3)
	}
	if err != nil {
		fail(err)
	}

	if *traceJSON != "" {
		writeExport(*traceJSON, tr.ChromeTraceJSON)
	}
	if *metricsJSON != "" {
		writeExport(*metricsJSON, tr.MetricsJSON)
	}
	if capt != nil {
		captured := capt.Trace()
		if err := os.WriteFile(*captureF, []byte(itrace.Format(captured)), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "capture: %d records -> %s\n", len(captured.Recs), *captureF)
	}

	if *jsonF {
		out, err := json.MarshalIndent(struct {
			Mode    string         `json:"mode"`
			Seconds float64        `json:"seconds"`
			Stats   *core.RunStats `json:"stats"`
		}{m.String(), st.Seconds(), st}, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(out))
		exitForProgram(st.ExitCode)
	}

	if !*quiet && st.Output != "" {
		fmt.Print(st.Output)
		if st.Output[len(st.Output)-1] != '\n' {
			fmt.Println()
		}
	}
	fmt.Fprintf(os.Stderr, "exit %d in %.3f testbed seconds (%d cycles)\n",
		st.ExitCode, st.Seconds(), st.Elapsed)
	fmt.Fprintf(os.Stderr, "reads %d (%d hinted), stall %.3fs, restarts %d, signals %d\n",
		st.ReadCalls, st.HintedReads,
		float64(st.StallCycles())/core.CPUHz, st.Restarts, st.SpecSignals)
	if *faults != "" {
		fmt.Fprintf(os.Stderr, "faults: %d transient, %d spiked, %d dead; tip retries %d, demoted %d; read errors %d, fault restarts %d, degraded %v\n",
			st.Disk.FaultedReqs, st.Disk.SpikedReqs, st.Disk.DeadReqs,
			st.TipFaults.FetchRetries, st.TipFaults.DemotedBlocks,
			st.ReadErrors, st.FaultRestarts, st.Degraded)
	}
	if *trace > 0 {
		fmt.Fprint(os.Stderr, core.FormatTrace(sys.Events(), *trace, sys.DroppedEvents()))
	}
	exitForProgram(st.ExitCode)
}

// exitForProgram maps the simulated program's exit code onto specrun's own:
// 0 stays 0, anything else becomes the reserved code 4 ("program exited
// nonzero") so the program can never collide with the tool's codes 1-3. The
// program's actual code is in the stderr summary and the -json document.
func exitForProgram(code int64) {
	if code == 0 {
		os.Exit(0)
	}
	os.Exit(4)
}

// writeExport renders one exporter to a file.
func writeExport(path string, render func() ([]byte, error)) {
	data, err := render()
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
}

// loadDir copies a host directory tree into the simulated file system.
func loadDir(vfs *fsim.FS, dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, err = vfs.Create(filepath.ToSlash(rel), data)
		return err
	})
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "specrun: %v\n", err)
	os.Exit(1)
}
