// Package tip implements the informed prefetching and caching manager from
// Patterson's TIP, as used by the SpecHint paper: applications disclose
// their future reads as a sequence of hints (Table 2's TIPIO_SEG /
// TIPIO_FD_SEG / TIPIO_CANCEL_ALL) and TIP converts them into prefetch I/O,
// balancing prefetch depth against cache pressure with a simplified
// cost-benefit rule.
//
// TIP is a multi-process substrate: each process holds a Client whose hint
// queue, accuracy estimate and read-ahead state are private, so one process's
// TIPIO_CANCEL_ALL or bad hints cannot cancel or discount another's. The
// Manager arbitrates the shared cache and disk array across clients,
// partitioning hinted buffers by each client's recent accuracy. Single-process
// callers may use the Manager-level wrappers, which lazily create a default
// client.
//
// Unhinted read calls invoke the operating system's sequential read-ahead
// policy, which prefetches approximately as many blocks as have been read
// sequentially, up to 64 — aggressive enough to waste most of its prefetches
// on random-access workloads like XDataSlice, as the paper's Table 5 shows.
package tip

import (
	"errors"
	"fmt"

	"spechint/internal/cache"
	"spechint/internal/disk"
	"spechint/internal/fsim"
	"spechint/internal/obs"
	"spechint/internal/sim"
)

// Config tunes the manager.
type Config struct {
	CacheBlocks int // file cache capacity in blocks

	// Horizon is the maximum prefetch depth, in blocks, down the hinted
	// sequence. TIP derived this bound from its system model; here it is a
	// parameter, scaled down by observed hint accuracy.
	Horizon int

	// MinHorizon floors the accuracy-scaled horizon so that a burst of bad
	// hints cannot disable prefetching permanently.
	MinHorizon int

	// ReadaheadMax caps the sequential read-ahead policy (64 blocks in
	// Digital UNIX).
	ReadaheadMax int

	// MaxDepthPerDisk bounds prefetches outstanding (queued + in service)
	// at each disk. This is the queue-side half of TIP's cost-benefit rule:
	// deep prefetch queues make demand reads wait behind prefetches whose
	// buffers they need (a non-preemptible request cannot be jumped even by
	// a higher-priority demand for the same block). Zero means unbounded.
	MaxDepthPerDisk int

	// RADepthPerDisk bounds outstanding sequential read-ahead prefetches per
	// disk. It is deliberately looser than MaxDepthPerDisk: the read-ahead
	// policy predates TIP's cost-benefit control and is "entirely too
	// aggressive" for nonsequential workloads (paper §4.4). Zero means
	// unbounded.
	RADepthPerDisk int

	// MaxHintSegs caps each client's outstanding hint queue; hints beyond
	// the cap are dropped (TIP's hint buffers were finite). Runaway
	// speculation can otherwise disclose unbounded garbage. Zero means
	// unbounded.
	MaxHintSegs int

	// IgnoreHints makes hint calls no-ops (the paper's Figure 4
	// configuration): every read is treated as unhinted.
	IgnoreHints bool

	// MaxFetchRetries bounds how often a *prefetch* whose disk request
	// failed transiently is retried before its block is demoted (dropped
	// from the hinted sequence so the prefetcher does not wedge). Demand
	// fetches retry until they succeed or their disk dies — stalling the
	// application on a transient error is never acceptable.
	MaxFetchRetries int

	// RetryBaseCycles is the first retry backoff in virtual cycles; each
	// subsequent retry of the same block doubles it, capped at
	// RetryCapCycles. Zero selects the defaults (500k base, 16M cap:
	// ~2 ms to ~70 ms of testbed time).
	RetryBaseCycles int64
	RetryCapCycles  int64
}

// DefaultConfig mirrors the testbed: 12 MB cache of 8 KB blocks.
func DefaultConfig() Config {
	return Config{
		CacheBlocks:     12 << 20 / 8192,
		Horizon:         256,
		MinHorizon:      16,
		ReadaheadMax:    64,
		MaxDepthPerDisk: 8,
		RADepthPerDisk:  8,
		MaxHintSegs:     1 << 16,
		MaxFetchRetries: 4,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.CacheBlocks <= 0:
		return fmt.Errorf("tip: CacheBlocks = %d, want > 0", c.CacheBlocks)
	case c.Horizon <= 0:
		return fmt.Errorf("tip: Horizon = %d, want > 0", c.Horizon)
	case c.MinHorizon <= 0 || c.MinHorizon > c.Horizon:
		return fmt.Errorf("tip: MinHorizon = %d, want in [1, Horizon]", c.MinHorizon)
	case c.ReadaheadMax < 0:
		return fmt.Errorf("tip: ReadaheadMax = %d, want >= 0", c.ReadaheadMax)
	case c.MaxDepthPerDisk < 0 || c.RADepthPerDisk < 0 || c.MaxHintSegs < 0:
		return fmt.Errorf("tip: negative MaxDepthPerDisk, RADepthPerDisk or MaxHintSegs")
	case c.MaxFetchRetries < 0 || c.RetryBaseCycles < 0 || c.RetryCapCycles < 0:
		return fmt.Errorf("tip: negative MaxFetchRetries, RetryBaseCycles or RetryCapCycles")
	}
	return nil
}

// Retry backoff defaults, in cycles (~2 ms and ~70 ms of testbed time).
const (
	defaultRetryBase = 500_000
	defaultRetryCap  = 16_000_000
)

// retryBackoff returns the capped exponential backoff before retry attempt
// (1-based) of a failed fetch.
func (c Config) retryBackoff(attempt int) sim.Time {
	base, lim := c.RetryBaseCycles, c.RetryCapCycles
	if base == 0 {
		base = defaultRetryBase
	}
	if lim == 0 {
		lim = defaultRetryCap
	}
	shift := attempt - 1
	if shift > 30 {
		shift = 30
	}
	bo := base << uint(shift)
	if bo > lim {
		bo = lim
	}
	return sim.Time(bo)
}

// FaultCounters aggregates the manager's degradation activity: what the
// fault-injection subsystem caused and how TIP absorbed it. They are
// substrate-wide (faults hit the shared array, not one hint stream).
type FaultCounters struct {
	FetchErrors   int64 // disk completions that returned an error
	FetchRetries  int64 // failed fetches re-submitted after backoff
	DemotedBlocks int64 // prefetched blocks dropped after repeated failures
	DeadSkips     int64 // hinted blocks never prefetched: their disk is dead
	FailedDemand  int64 // demand fetches surfaced to the reader as an error
}

// Stats aggregates the hinting and prefetching activity of one client (or,
// via Manager.Stats, of every client); it is the source for the paper's
// Tables 4 and 5.
type Stats struct {
	// Demand read activity (explicit file calls only).
	ReadCalls  int64
	ReadBlocks int64
	ReadBytes  int64
	// Subset of the above that arrived hinted.
	HintedReadCalls  int64
	HintedReadBlocks int64
	HintedReadBytes  int64

	// Hint activity.
	HintCalls     int64
	HintBlocks    int64
	HintBytes     int64
	CancelCalls   int64
	CancelledSegs int64
	DroppedHints  int64 // hint calls dropped at the MaxHintSegs cap
	MatchedCalls  int64
	MatchedBlocks int64
	MatchedBytes  int64
	BypassedSegs  int64

	// Prefetch activity.
	HintPrefetches int64 // blocks fetched because of hints
	RAPrefetches   int64 // blocks fetched by sequential read-ahead
}

// add accumulates o into s (for cross-client aggregation).
func (s *Stats) add(o Stats) {
	s.ReadCalls += o.ReadCalls
	s.ReadBlocks += o.ReadBlocks
	s.ReadBytes += o.ReadBytes
	s.HintedReadCalls += o.HintedReadCalls
	s.HintedReadBlocks += o.HintedReadBlocks
	s.HintedReadBytes += o.HintedReadBytes
	s.HintCalls += o.HintCalls
	s.HintBlocks += o.HintBlocks
	s.HintBytes += o.HintBytes
	s.CancelCalls += o.CancelCalls
	s.CancelledSegs += o.CancelledSegs
	s.DroppedHints += o.DroppedHints
	s.MatchedCalls += o.MatchedCalls
	s.MatchedBlocks += o.MatchedBlocks
	s.MatchedBytes += o.MatchedBytes
	s.BypassedSegs += o.BypassedSegs
	s.HintPrefetches += o.HintPrefetches
	s.RAPrefetches += o.RAPrefetches
}

// InaccurateCalls returns the number of hint calls that never matched a
// demand read (valid after FinishRun).
func (s Stats) InaccurateCalls() int64 { return s.HintCalls - s.MatchedCalls }

// InaccurateBlocks returns hinted blocks that never matched a demand read.
func (s Stats) InaccurateBlocks() int64 { return s.HintBlocks - s.MatchedBlocks }

// InaccurateBytes returns hinted bytes that never matched a demand read.
func (s Stats) InaccurateBytes() int64 { return s.HintBytes - s.MatchedBytes }

// PrefetchedBlocks returns the total blocks fetched speculatively.
func (s Stats) PrefetchedBlocks() int64 { return s.HintPrefetches + s.RAPrefetches }

// segment is one hinted (file, offset, length) from a TIPIO_SEG call.
// Reads consume segments progressively: a manual hint may disclose a whole
// file that the application then reads in many small calls, while a
// speculative hint matches exactly one read call.
type segment struct {
	file       *fsim.File
	off, n     int64
	firstBlock int64   // file block index of blocks[0]
	blocks     []int64 // logical block numbers
	consumed   int64   // high-water mark of consumed bytes from off
	cancelled  bool
	complete   bool

	// conf is the static confidence behind this hint, in (0, 1]; zero means
	// "no static evidence" (dynamically discovered hints) and leaves the
	// depth bound untouched. Statically synthesized hints carry their
	// analysis confidence here, and the pump scales this segment's prefetch
	// depth by it: proved sites earn the full horizon, speculative ones a
	// shallow bound.
	conf float64
}

// dataEnd returns the end of the segment clamped to the file.
func (s *segment) dataEnd() int64 {
	end := s.off + s.n
	if sz := s.file.Size(); end > sz {
		end = sz
	}
	return end
}

// consumedBlocks returns how many of the segment's blocks are fully consumed.
func (s *segment) consumedBlocks(blockSize int64) int64 {
	if s.consumed <= 0 {
		return 0
	}
	cb := (s.off+s.consumed)/blockSize - s.firstBlock
	if cb < 0 {
		cb = 0
	}
	if cb > int64(len(s.blocks)) {
		cb = int64(len(s.blocks))
	}
	return cb
}

// raState tracks the sequential read-ahead heuristic for one file.
type raState struct {
	nextByte  int64 // where a sequential read would continue
	runBlocks int64 // length of the current sequential run, in blocks
}

// Manager is the informed prefetching and caching manager: the shared cache,
// the shared disk queues, and the per-client arbitration between them.
type Manager struct {
	clk   *sim.Queue
	arr   *disk.Array
	fs    *fsim.FS
	cache *cache.Cache
	cfg   Config

	clients []*Client // indexed by client id
	defc    *Client   // lazy default client behind the Manager-level wrappers

	// Client-slot recycling. A service workload (internal/cluster) opens and
	// closes a hint stream per client session; without reuse the clients
	// slice — which every partition recompute walks — would grow with the
	// total number of sessions ever served instead of the concurrent peak.
	// free holds closed ids available to NewClient; retired accumulates the
	// stats of clients whose slot has been handed out again, so Stats stays
	// a whole-lifetime aggregate.
	free    []int
	retired Stats

	// pendingDemand holds demand fetches that could not obtain a buffer
	// (everything in transit); retried on every completion.
	pendingDemand []func() bool

	prefDepth map[int]int             // outstanding prefetches per disk
	inflight  map[int64]*disk.Request // in-transit block -> its disk request

	// Degradation state: per-block transient-failure counts, blocks demoted
	// from prefetching after repeated failures, and dead-disk blocks already
	// counted as skipped (so DeadSkips counts blocks, not pump passes).
	retries     map[int64]int
	demoted     map[int64]bool
	deadSkipped map[int64]bool
	faults      FaultCounters

	obs *obs.Trace // nil = tracing off; all methods are nil-safe
}

// Client is one process's handle on the manager: a private hint queue,
// accuracy estimate and read-ahead state. Hints disclosed and cancelled
// through a Client never touch another client's queue.
type Client struct {
	m      *Manager
	id     int
	name   string
	closed bool

	hints []*segment
	head  int // first unconsumed hint

	ra map[int64]*raState // by inode

	// Windowed hint-accuracy estimate (right ≈ matched, wrong ≈ bypassed +
	// cancelled, both decayed): TIP discounts the benefit of prefetching
	// for processes whose recent hints proved unreliable, but a burst of
	// cancellations must not suppress prefetching forever.
	accGood float64
	accBad  float64

	// Static accuracy prior (SetPrior): blended into the windowed estimate
	// with priorWt pseudo-observations, so a statically analyzed hint stream
	// starts at its proved confidence instead of an optimistic 1.0 and early
	// dynamic evidence cannot whipsaw the horizon. priorWt == 0 (the
	// default) disables blending entirely.
	prior   float64
	priorWt float64

	stats Stats
}

// priorWeight is how many pseudo-observations a static prior contributes to
// the windowed accuracy estimate (an eighth of the window: strong enough to
// anchor the start, weak enough for real evidence to dominate).
const priorWeight = accWindow / 8

// accWindow is the sliding-window size for the accuracy estimate.
const accWindow = 256

// New constructs a manager over the given clock, array and file system.
func New(clk *sim.Queue, arr *disk.Array, fs *fsim.FS, cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		clk:         clk,
		arr:         arr,
		fs:          fs,
		cache:       cache.New(cfg.CacheBlocks),
		cfg:         cfg,
		prefDepth:   make(map[int]int),
		inflight:    make(map[int64]*disk.Request),
		retries:     make(map[int64]int),
		demoted:     make(map[int64]bool),
		deadSkipped: make(map[int64]bool),
	}
	m.cache.SetAccuracyFn(func(owner int) float64 {
		if owner >= 0 && owner < len(m.clients) {
			return m.clients[owner].accuracy()
		}
		return 1
	})
	arr.OnIdle = func(int) { m.pump() }
	return m, nil
}

// NewClient registers a new hint stream with the manager. The name labels
// the stream in diagnostics; ids are assigned sequentially from zero, except
// that the slot of a closed client is reused first (its final counters move
// into the manager's retired aggregate — see Stats). A closed client holds
// no cache protection (Close released it), so reuse cannot leak ownership.
func (m *Manager) NewClient(name string) *Client {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.retired.add(m.clients[id].stats)
		c := &Client{m: m, id: id, name: name, ra: make(map[int64]*raState)}
		m.clients[id] = c
		m.recomputePartitions()
		return c
	}
	c := &Client{m: m, id: len(m.clients), name: name, ra: make(map[int64]*raState)}
	m.clients = append(m.clients, c)
	m.recomputePartitions()
	return c
}

// def returns the default client behind the Manager-level wrappers, creating
// it on first use. Single-process runs that drive the Manager directly (or
// through exactly one explicit client) therefore never see partitioning.
func (m *Manager) def() *Client {
	if m.defc == nil {
		m.defc = m.NewClient("default")
	}
	return m.defc
}

// Cache exposes the underlying cache (read-only use: stats, inspection).
func (m *Manager) Cache() *cache.Cache { return m.cache }

// SetObs installs a cross-layer trace: hint/prefetch/consume lifecycles land
// on the "tip" lane, and the cache (which holds no clock) is wired to emit on
// the "cache" lane with the manager's clock.
func (m *Manager) SetObs(tr *obs.Trace) {
	m.obs = tr
	m.cache.SetObs(tr, m.clk.Now)
}

// emit records a tip event when tracing is on.
func (m *Manager) emit(name, format string, args ...any) {
	if m.obs.Enabled() {
		m.obs.Emitf(m.clk.Now(), "tip", "tip", name, format, args...)
	}
}

// PrefetchDepth returns the prefetch requests currently outstanding (queued
// or in service) across the array — the depth the cost-benefit rule bounds.
func (m *Manager) PrefetchDepth() int {
	depth := 0
	for _, d := range m.prefDepth {
		depth += d
	}
	return depth
}

// MeanAccuracy returns the mean windowed hint accuracy over open clients
// (1.0 with no clients — no evidence of error).
func (m *Manager) MeanAccuracy() float64 {
	open := m.openClients()
	if len(open) == 0 {
		return 1
	}
	sum := 0.0
	for _, c := range open {
		sum += c.accuracy()
	}
	return sum / float64(len(open))
}

// Faults returns the substrate-wide degradation counters.
func (m *Manager) Faults() FaultCounters { return m.faults }

// Degraded reports whether the manager is running in degraded mode: at
// least one disk of the array has permanently failed, so prefetching for
// stripes mapped to it is suspended while demand reads keep flowing.
func (m *Manager) Degraded() bool {
	for i := 0; i < m.arr.Config().NumDisks; i++ {
		if m.arr.Dead(i) {
			return true
		}
	}
	return false
}

// Stats returns the counters summed over every client the manager has ever
// had: live and closed clients still holding their slot, plus the retired
// aggregate of clients whose slot NewClient handed out again.
func (m *Manager) Stats() Stats {
	sum := m.retired
	for _, c := range m.clients {
		sum.add(c.stats)
	}
	return sum
}

// ID returns the client's id (also its cache owner id).
func (c *Client) ID() int { return c.id }

// Name returns the label given at NewClient.
func (c *Client) Name() string { return c.name }

// Stats returns a copy of this client's counters.
func (c *Client) Stats() Stats { return c.stats }

// Close retires the client: its queued hints are released (without the
// accuracy penalty of a cancel — the process exited; its predictions were not
// wrong) and its cache partition is redistributed to the survivors.
func (c *Client) Close() {
	if c.closed {
		return
	}
	for i := c.head; i < len(c.hints); i++ {
		seg := c.hints[i]
		if seg.cancelled || seg.complete {
			continue
		}
		for _, lb := range seg.blocks {
			c.unprotect(lb)
		}
	}
	c.hints = nil
	c.head = 0
	c.closed = true
	c.m.free = append(c.m.free, c.id)
	c.m.recomputePartitions()
}

// unprotect releases the hint protection c holds on lb, if any. A block
// re-protected by a different client keeps that client's protection.
func (c *Client) unprotect(lb int64) {
	if b := c.m.cache.Get(lb); b != nil && b.HintDist != cache.NoHint && b.Owner == c.id {
		c.m.cache.SetHintFor(lb, c.id, cache.NoHint)
	}
}

func (c *Client) accObserve(good bool, weight float64) {
	if good {
		c.accGood += weight
	} else {
		c.accBad += weight
	}
	if c.accGood+c.accBad > accWindow {
		c.accGood /= 2
		c.accBad /= 2
	}
	c.m.recomputePartitions()
}

// openClients returns the clients still accepting hints.
func (m *Manager) openClients() []*Client {
	var open []*Client
	for _, c := range m.clients {
		if !c.closed {
			open = append(open, c)
		}
	}
	return open
}

// recomputePartitions reapportions the hinted-buffer budget across open
// clients. With at most one open client the cache is unpartitioned (the
// single-process configuration of the paper); with several, a quarter of the
// cache is reserved as the shared unhinted LRU pool and the rest is split in
// proportion to each client's recent hint accuracy — TIP's cost-benefit
// allocation reduced to its ranking: reliable hinters earn deeper prefetch
// residency.
func (m *Manager) recomputePartitions() {
	open := m.openClients()
	if len(open) <= 1 {
		for _, c := range m.clients {
			m.cache.SetPartition(c.id, 0)
		}
		return
	}
	reserve := m.cfg.CacheBlocks / 4
	if reserve < 1 {
		reserve = 1
	}
	avail := m.cfg.CacheBlocks - reserve
	var sumW float64
	for _, c := range open {
		sumW += c.weight()
	}
	for _, c := range m.clients {
		if c.closed {
			m.cache.SetPartition(c.id, 0)
			continue
		}
		share := int(float64(avail) * c.weight() / sumW)
		if share < 1 {
			share = 1
		}
		m.cache.SetPartition(c.id, share)
	}
}

// weight is the client's partition weight: accuracy floored so an unlucky
// client keeps a foothold from which its estimate can recover.
func (c *Client) weight() float64 {
	w := c.accuracy()
	if w < 0.05 {
		w = 0.05
	}
	return w
}

// blockRange returns the file-block index range [first, last] covering
// [off, off+n) clamped to the file, or ok=false if the range is empty.
func blockRange(f *fsim.File, off, n int64, blockSize int64) (first, last int64, ok bool) {
	if off < 0 || n <= 0 || off >= f.Size() {
		return 0, 0, false
	}
	end := off + n
	if end > f.Size() {
		end = f.Size()
	}
	return off / blockSize, (end - 1) / blockSize, true
}

// HintSeg discloses a future read through the default client; see
// Client.HintSeg.
func (m *Manager) HintSeg(f *fsim.File, off, n int64) { m.def().HintSeg(f, off, n) }

// HintSegConf discloses a future read with a static confidence through the
// default client; see Client.HintSegConf.
func (m *Manager) HintSegConf(f *fsim.File, off, n int64, conf float64) {
	m.def().HintSegConf(f, off, n, conf)
}

// HintBatch discloses several future reads through the default client.
func (m *Manager) HintBatch(segs []Seg) { m.def().HintBatch(segs) }

// CancelAll cancels the default client's hints; see Client.CancelAll.
func (m *Manager) CancelAll() { m.def().CancelAll() }

// Accuracy returns the default client's accuracy estimate.
func (m *Manager) Accuracy() float64 { return m.def().Accuracy() }

// Covered reports hint coverage within the default client's queue.
func (m *Manager) Covered(f *fsim.File, off, n int64) bool { return m.def().Covered(f, off, n) }

// Read performs a demand read through the default client; see Client.Read.
func (m *Manager) Read(f *fsim.File, off, n int64, hinted bool, done func(err error)) bool {
	return m.def().Read(f, off, n, hinted, done)
}

// HintSeg discloses a future read of [off, off+n) in f (TIPIO_SEG /
// TIPIO_FD_SEG; the two differ only in how the caller named the file).
func (c *Client) HintSeg(f *fsim.File, off, n int64) {
	c.hintSeg(f, off, n, 0)
}

// HintSegConf is HintSeg carrying a static confidence in (0, 1]: the hint
// comes from the static synthesizer rather than from observed execution, and
// conf bounds how deep the pump will prefetch for this segment (a fraction
// of the horizon, floored at MinHorizon). conf <= 0 degenerates to HintSeg.
func (c *Client) HintSegConf(f *fsim.File, off, n int64, conf float64) {
	if conf > 1 {
		conf = 1
	}
	if conf < 0 {
		conf = 0
	}
	c.hintSeg(f, off, n, conf)
}

func (c *Client) hintSeg(f *fsim.File, off, n int64, conf float64) {
	c.stats.HintCalls++
	m := c.m
	bs := int64(m.fs.BlockSize())
	seg := &segment{file: f, off: off, n: n, conf: conf}
	if first, last, ok := blockRange(f, off, n, bs); ok {
		seg.firstBlock = first
		for b := first; b <= last; b++ {
			seg.blocks = append(seg.blocks, f.LogicalBlock(b))
		}
		c.stats.HintBlocks += int64(len(seg.blocks))
		end := off + n
		if end > f.Size() {
			end = f.Size()
		}
		c.stats.HintBytes += end - off
	}
	if m.cfg.IgnoreHints || c.closed {
		return
	}
	if m.cfg.MaxHintSegs > 0 && len(c.hints)-c.head >= m.cfg.MaxHintSegs {
		// Hint buffers are full (runaway speculation): drop the hint.
		c.stats.DroppedHints++
		m.emit("hint-dropped", "client=%d %s off=%d n=%d (queue full)", c.id, f.Name, off, n)
		return
	}
	c.hints = append(c.hints, seg)
	m.emit("hint", "client=%d %s off=%d n=%d blocks=%d", c.id, f.Name, off, n, len(seg.blocks))
	m.pump()
}

// Seg is one (file, offset, length) disclosure for batch hinting.
type Seg struct {
	File *fsim.File
	Off  int64
	N    int64
}

// HintBatch discloses several future reads in one call — Table 2's batched
// TIPIO_SEG form. Speculative execution discovers reads one at a time and
// never uses it (as the paper notes), but manually modified applications
// can.
func (c *Client) HintBatch(segs []Seg) {
	for _, sg := range segs {
		c.HintSeg(sg.File, sg.Off, sg.N)
	}
}

// CancelAll cancels all of this client's outstanding hints (TIPIO_CANCEL_ALL).
// Other clients' hints are untouched. Prefetch requests already issued to the
// disks proceed; their blocks merely lose hint protection in the cache.
func (c *Client) CancelAll() {
	c.stats.CancelCalls++
	if c.m.cfg.IgnoreHints {
		return
	}
	cancelled := 0
	for i := c.head; i < len(c.hints); i++ {
		seg := c.hints[i]
		if seg.cancelled {
			continue
		}
		seg.cancelled = true
		c.stats.CancelledSegs++
		cancelled++
		c.accObserve(false, 1)
		for _, lb := range seg.blocks {
			c.unprotect(lb)
		}
	}
	c.m.emit("cancel-all", "client=%d segs=%d", c.id, cancelled)
	c.hints = c.hints[:0]
	c.head = 0
}

// Accuracy returns TIP's windowed estimate of the fraction of this client's
// recent hints that proved correct (1.0 before any evidence). The adaptive
// speculation throttle consults it.
func (c *Client) Accuracy() float64 { return c.accuracy() }

// SetPrior installs a static accuracy prior for this client's hint stream
// (clamped to [0, 1]): the confidence the static hint synthesizer assigned
// to its disclosures. It acts as priorWeight pseudo-observations in the
// windowed accuracy estimate. Clients without a prior behave exactly as
// before (optimistic 1.0 until dynamic evidence arrives).
func (c *Client) SetPrior(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.prior = p
	c.priorWt = priorWeight
	c.m.recomputePartitions()
}

// accuracy estimates the fraction of recent hints that proved correct. TIP
// uses this to discount the benefit of prefetching in response to hints.
// A static prior, when set, contributes priorWt pseudo-observations.
func (c *Client) accuracy() float64 {
	if c.priorWt > 0 {
		return (c.accGood + c.prior*c.priorWt) / (c.accGood + c.accBad + c.priorWt)
	}
	if c.accGood+c.accBad == 0 {
		return 1.0
	}
	return c.accGood / (c.accGood + c.accBad)
}

// effHorizon returns the client's accuracy-scaled prefetch horizon.
func (c *Client) effHorizon() int {
	h := int(float64(c.m.cfg.Horizon) * c.accuracy())
	if h < c.m.cfg.MinHorizon {
		h = c.m.cfg.MinHorizon
	}
	return h
}

// pump issues hint-driven prefetches for every client. It is invoked on every
// hint, every disk-idle transition and every completion. Clients are visited
// in id order for determinism; one client running out of buffers does not
// stop the others (their partitions may still have room).
func (m *Manager) pump() {
	if m.cfg.IgnoreHints {
		return
	}
	for _, c := range m.clients {
		c.pump()
	}
}

// pump issues this client's hint-driven prefetches up to its effective
// horizon.
func (c *Client) pump() {
	if c.closed {
		return
	}
	m := c.m
	horizon := c.effHorizon()
	bs := int64(m.fs.BlockSize())
	dist := 0
	for i := c.head; i < len(c.hints) && dist < horizon; i++ {
		seg := c.hints[i]
		if seg.cancelled || seg.complete {
			continue
		}
		// A statically synthesized hint prefetches only within its
		// confidence-scaled share of the horizon: proved segments (conf 1)
		// run to the full depth, speculative ones stop shallow. Blocks past
		// the bound still advance dist, so later segments see their true
		// queue distance. conf == 0 (dynamic hints) leaves lim == horizon.
		lim := int64(horizon)
		if seg.conf > 0 {
			l := int64(seg.conf * float64(horizon))
			if floor := int64(m.cfg.MinHorizon); l < floor {
				l = floor
			}
			if l < lim {
				lim = l
			}
		}
		for _, lb := range seg.blocks[seg.consumedBlocks(bs):] {
			if dist >= horizon {
				return
			}
			d := int64(dist)
			dist++
			if d >= lim {
				continue
			}
			if m.demoted[lb] {
				// Repeatedly failing block: left to the demand read, so the
				// rest of the hinted sequence keeps prefetching.
				continue
			}
			if dk, _ := m.arr.Map(lb); m.arr.Dead(dk) {
				// Degraded mode: no prefetching onto a dead disk.
				if !m.deadSkipped[lb] {
					m.deadSkipped[lb] = true
					m.faults.DeadSkips++
				}
				continue
			}
			if b := m.cache.Get(lb); b != nil {
				if b.HintDist > d {
					m.cache.SetHintFor(lb, c.id, d)
				}
				continue
			}
			switch m.startFetch(c.id, lb, cache.OriginHint, d) {
			case fetchStarted:
				c.stats.HintPrefetches++
				m.emit("prefetch", "client=%d lb=%d dist=%d", c.id, lb, d)
			case fetchDiskBusy:
				continue // this disk is at depth; later blocks may differ
			case fetchNoBuffer:
				return // cache pressure: stop pumping this client
			}
		}
	}
}

// fetchResult says why startFetch declined, so the pump can distinguish
// per-disk back-pressure (skip the block) from cache pressure (stop).
type fetchResult int

const (
	fetchStarted fetchResult = iota
	fetchDiskBusy
	fetchNoBuffer
)

// startFetch acquires a buffer for lb on the owner's behalf and submits the
// disk request, leaving no residue on failure. Prefetch-priority fetches are
// refused outright when the target disk is dead (degraded mode); demand
// fetches are always submitted — the dead disk answers them with ErrDead,
// which surfaces to the reader as a read error.
func (m *Manager) startFetch(owner int, lb int64, origin cache.Origin, hintDist int64) fetchResult {
	dk, phys := m.arr.Map(lb)
	pri := disk.Prefetch
	if origin == cache.OriginDemand {
		pri = disk.Demand
	}
	if pri == disk.Prefetch && m.arr.Dead(dk) {
		return fetchDiskBusy
	}
	bound := m.cfg.MaxDepthPerDisk
	if origin == cache.OriginReadahead {
		bound = m.cfg.RADepthPerDisk
	}
	if pri == disk.Prefetch && bound > 0 && m.prefDepth[dk] >= bound {
		return fetchDiskBusy
	}
	b := m.cache.AcquireFor(owner, lb, origin, hintDist)
	if b == nil {
		return fetchNoBuffer
	}
	isPref := pri == disk.Prefetch
	req := &disk.Request{
		Disk: dk, PhysBlock: phys, Pri: pri,
		Done: func(err error) { m.onFetchDone(lb, dk, isPref, err) },
	}
	if !m.arr.Submit(req) {
		m.cache.Drop(lb)
		return fetchDiskBusy
	}
	m.inflight[lb] = req
	if isPref {
		m.prefDepth[dk]++
	}
	return fetchStarted
}

func (m *Manager) onFetchDone(lb int64, dk int, wasPrefetch bool, err error) {
	if wasPrefetch {
		m.prefDepth[dk]--
	}
	delete(m.inflight, lb)
	if err != nil {
		m.handleFetchError(lb, dk, err)
	} else {
		delete(m.retries, lb)
		delete(m.demoted, lb)
		m.cache.Complete(lb)
	}
	m.retryPendingDemand()
	m.pump()
}

// handleFetchError is the degradation policy for a fetch that completed
// with an error. Demand-critical blocks (a demand read is waiting, or the
// fetch was demand-priority) retry with capped exponential backoff until
// they succeed or their disk dies; pure prefetches retry MaxFetchRetries
// times and are then demoted — dropped from the hinted sequence so the
// prefetcher does not wedge on one bad block. Dead-disk errors never retry:
// the block resolves to an error immediately.
func (m *Manager) handleFetchError(lb int64, dk int, err error) {
	m.faults.FetchErrors++
	b := m.cache.Get(lb)
	if b == nil || b.State() != cache.InTransit {
		panic(fmt.Sprintf("tip: fetch error for block %d not in transit", lb))
	}
	if err == disk.ErrDead {
		delete(m.retries, lb)
		if b.Demanded() {
			m.faults.FailedDemand++
		}
		m.emit("fetch-dead", "lb=%d disk=%d demanded=%v", lb, dk, b.Demanded())
		m.cache.Fail(lb)
		return
	}
	attempt := m.retries[lb] + 1
	m.retries[lb] = attempt
	if !b.Demanded() && attempt > m.cfg.MaxFetchRetries {
		m.demote(lb)
		return
	}
	m.faults.FetchRetries++
	m.emit("fetch-retry", "lb=%d disk=%d attempt=%d backoff=%d", lb, dk, attempt, m.cfg.retryBackoff(attempt))
	m.clk.After(m.cfg.retryBackoff(attempt), func() { m.refetch(lb, dk) })
}

// demote gives up on prefetching lb: the buffer is released, the block is
// excluded from future pumping, and the eventual demand read fetches it
// itself (clearing the demotion on success).
func (m *Manager) demote(lb int64) {
	delete(m.retries, lb)
	m.demoted[lb] = true
	m.faults.DemotedBlocks++
	m.emit("demote", "lb=%d after %d retries", lb, m.cfg.MaxFetchRetries)
	m.cache.Fail(lb)
}

// refetch re-submits the disk request for a still-in-transit block after a
// backoff. A block a demand read started waiting on during the backoff is
// upgraded to demand priority.
func (m *Manager) refetch(lb int64, dk int) {
	b := m.cache.Get(lb)
	if b == nil || b.State() != cache.InTransit {
		return // resolved meanwhile
	}
	_, phys := m.arr.Map(lb)
	pri := disk.Prefetch
	if b.Demanded() {
		pri = disk.Demand
	}
	isPref := pri == disk.Prefetch
	if isPref && m.arr.Dead(dk) {
		m.demote(lb)
		return
	}
	req := &disk.Request{
		Disk: dk, PhysBlock: phys, Pri: pri,
		Done: func(err error) { m.onFetchDone(lb, dk, isPref, err) },
	}
	if !m.arr.Submit(req) {
		// Prefetch back-pressure on the retry path: demote rather than wedge.
		m.demote(lb)
		return
	}
	m.inflight[lb] = req
	if isPref {
		m.prefDepth[dk]++
	}
}

func (m *Manager) retryPendingDemand() {
	if len(m.pendingDemand) == 0 {
		return
	}
	pending := m.pendingDemand
	m.pendingDemand = m.pendingDemand[:0]
	for _, fn := range pending {
		if !fn() {
			m.pendingDemand = append(m.pendingDemand, fn)
		}
	}
}

// findCover returns the queue index of the first live segment whose range
// covers the read [off, off+n) of f (both clamped to the file), or -1.
func (c *Client) findCover(f *fsim.File, off, n int64) int {
	covEnd := off + n
	if sz := f.Size(); covEnd > sz {
		covEnd = sz
	}
	for i := c.head; i < len(c.hints); i++ {
		seg := c.hints[i]
		if seg.cancelled || seg.complete {
			continue
		}
		if seg.file == f && off >= seg.off && covEnd <= seg.dataEnd() {
			return i
		}
	}
	return -1
}

// Covered reports whether a read of [off, off+n) in f is disclosed by one of
// this client's outstanding hints. Manually-hinted applications use this to
// decide whether a read call counts as hinted.
func (c *Client) Covered(f *fsim.File, off, n int64) bool {
	if c.m.cfg.IgnoreHints {
		return false
	}
	return c.findCover(f, off, n) >= 0
}

// consume matches a hinted demand read against the client's hint queue.
// Segments skipped over on the way to the covering segment predicted reads
// that did not occur (in that order) and are bypassed — this is how erroneous
// speculation shows up in Table 4.
// The staticTail return reports that the covering segment was a static
// (conf-tagged) hint whose data this read fully exhausted: the hint stream
// discloses nothing further in the file here, so sequential readahead is not
// redundant with it. Always false for dynamic (conf 0) hints, preserving
// their behavior exactly.
func (c *Client) consume(f *fsim.File, off, n int64) (staticTail bool) {
	i := c.findCover(f, off, n)
	if i < 0 {
		return false
	}
	bypassed := 0
	for j := c.head; j < i; j++ {
		seg := c.hints[j]
		if !seg.cancelled && !seg.complete {
			c.stats.BypassedSegs++
			bypassed++
			c.accObserve(false, 1)
			for _, lb := range seg.blocks {
				c.unprotect(lb)
			}
		}
	}
	c.head = i
	seg := c.hints[i]
	c.m.emit("consume", "client=%d %s off=%d n=%d bypassed=%d", c.id, f.Name, off, n, bypassed)
	covEnd := off + n
	if end := seg.dataEnd(); covEnd > end {
		covEnd = end
	}
	if hw := covEnd - seg.off; hw > seg.consumed {
		seg.consumed = hw
	}
	c.accObserve(true, 1)
	staticTail = seg.conf > 0 && covEnd >= seg.dataEnd()
	if seg.off+seg.consumed >= seg.dataEnd() {
		seg.complete = true
		c.stats.MatchedCalls++
		c.stats.MatchedBlocks += int64(len(seg.blocks))
		if bytes := seg.dataEnd() - seg.off; bytes > 0 {
			c.stats.MatchedBytes += bytes
		}
		// Pop the completed prefix.
		for c.head < len(c.hints) && (c.hints[c.head].complete || c.hints[c.head].cancelled) {
			c.head++
		}
		c.compact()
	}
	return staticTail
}

// compact reclaims consumed queue prefix space.
func (c *Client) compact() {
	if c.head > 1024 && c.head*2 > len(c.hints) {
		c.hints = append(c.hints[:0:0], c.hints[c.head:]...)
		c.head = 0
	}
}

// ErrReadFailed reports a demand read that could not be satisfied: at least
// one of its blocks resolved to an error with no retry left (its disk is
// dead). Transient faults never produce it — those retry until they succeed.
var ErrReadFailed = errors.New("tip: demand read failed (unrecoverable block)")

// Read performs a demand read of [off, off+n) from f. hinted says whether
// the application's read found a matching hint-log entry (core decides).
// done runs when every block has resolved — with nil if all are valid, or
// ErrReadFailed if any block is unrecoverable. If everything is already
// cached, done is NOT called and Read returns true (the caller continues
// synchronously — a cache hit costs no stall).
func (c *Client) Read(f *fsim.File, off, n int64, hinted bool, done func(err error)) (immediate bool) {
	m := c.m
	bs := int64(m.fs.BlockSize())
	first, last, ok := blockRange(f, off, n, bs)
	c.stats.ReadCalls++
	if hinted && !m.cfg.IgnoreHints {
		c.stats.HintedReadCalls++
	}
	if !ok {
		return true // zero-byte or EOF read: no I/O
	}
	nBlocks := last - first + 1
	end := off + n
	if end > f.Size() {
		end = f.Size()
	}
	c.stats.ReadBlocks += nBlocks
	c.stats.ReadBytes += end - off
	staticTail := false
	if hinted && !m.cfg.IgnoreHints {
		c.stats.HintedReadBlocks += nBlocks
		c.stats.HintedReadBytes += end - off
		staticTail = c.consume(f, off, n)
	}

	remaining := 0
	var readErr error
	var finish func(err error)
	dec := func(ok bool) {
		if !ok {
			readErr = ErrReadFailed
		}
		remaining--
		if remaining == 0 && finish != nil {
			finish(readErr)
		}
	}

	// touchConsumed records a demand access and releases the block's hint
	// protection: a consumed block must age out by LRU like any other, or
	// it would squat in the cache with a stale, ever-more-precious hint
	// distance while fresh prefetches evict each other at the horizon tail.
	// Protection held by a *different* client survives — that client has
	// its own read coming.
	touchConsumed := func(lb int64) {
		m.cache.Touch(lb)
		c.unprotect(lb)
	}

	type fetchPlan struct{ lb int64 }
	var misses []fetchPlan
	for b := first; b <= last; b++ {
		lb := f.LogicalBlock(b)
		blk := m.cache.Get(lb)
		switch {
		case blk != nil && blk.State() == cache.Valid:
			touchConsumed(lb)
		case blk != nil: // in transit
			m.cache.NoteDemandWait(lb)
			// The application now needs this block: if its prefetch is
			// still queued, it inherits demand priority.
			if req := m.inflight[lb]; req != nil {
				m.arr.Promote(req)
			}
			remaining++
			m.cache.Wait(lb, func(ok bool) {
				if ok {
					touchConsumed(lb)
				}
				dec(ok)
			})
		default:
			m.cache.NoteMiss()
			remaining++
			misses = append(misses, fetchPlan{lb})
		}
	}
	for _, p := range misses {
		lb := p.lb
		start := func() bool {
			if blk := m.cache.Get(lb); blk != nil {
				// Raced with a prefetch issued meanwhile.
				if blk.State() == cache.Valid {
					touchConsumed(lb)
					dec(true)
					return true
				}
				m.cache.NoteDemandWait(lb)
				m.cache.Wait(lb, func(ok bool) {
					if ok {
						touchConsumed(lb)
					}
					dec(ok)
				})
				return true
			}
			if m.startFetch(c.id, lb, cache.OriginDemand, cache.NoHint) != fetchStarted {
				return false
			}
			m.cache.NoteDemandWait(lb)
			m.cache.Wait(lb, func(ok bool) {
				if ok {
					touchConsumed(lb)
				}
				dec(ok)
			})
			return true
		}
		if !start() {
			m.pendingDemand = append(m.pendingDemand, start)
		}
	}

	if !hinted || m.cfg.IgnoreHints || staticTail {
		c.readahead(f, off, end, first, last)
	}

	// Consuming a hint moves the horizon forward; fill it.
	m.pump()

	if remaining == 0 {
		return true
	}
	finish = done
	return false
}

// readahead implements the sequential read-ahead policy: on a sequential
// read, prefetch approximately as many blocks as have been read
// sequentially, up to ReadaheadMax. The run state is per client as well as
// per file — two processes interleaving reads of one file must not corrupt
// each other's sequentiality detection.
func (c *Client) readahead(f *fsim.File, off, end, first, last int64) {
	m := c.m
	if m.cfg.ReadaheadMax == 0 {
		return
	}
	st := c.ra[f.Ino()]
	if st == nil {
		st = &raState{}
		c.ra[f.Ino()] = st
	}
	nBlocks := last - first + 1
	if off == st.nextByte || off == 0 && st.nextByte == 0 {
		st.runBlocks += nBlocks
	} else {
		st.runBlocks = nBlocks
	}
	st.nextByte = end

	depth := st.runBlocks
	if depth > int64(m.cfg.ReadaheadMax) {
		depth = int64(m.cfg.ReadaheadMax)
	}
	for b := last + 1; b <= last+depth && b < f.NBlocks(); b++ {
		lb := f.LogicalBlock(b)
		if m.cache.Get(lb) != nil {
			continue
		}
		if m.startFetch(c.id, lb, cache.OriginReadahead, cache.NoHint) != fetchStarted {
			return
		}
		c.stats.RAPrefetches++
		m.emit("readahead", "client=%d lb=%d run=%d", c.id, lb, st.runBlocks)
	}
}

// CachedRange reports whether every block of [off, off+n) in f is Valid —
// the condition under which a *speculative* read can be given real data.
func (m *Manager) CachedRange(f *fsim.File, off, n int64) bool {
	first, last, ok := blockRange(f, off, n, int64(m.fs.BlockSize()))
	if !ok {
		return true
	}
	for b := first; b <= last; b++ {
		blk := m.cache.Get(f.LogicalBlock(b))
		if blk == nil || blk.State() != cache.Valid {
			return false
		}
	}
	return true
}

// CachedRange delegates to the shared cache; see Manager.CachedRange.
func (c *Client) CachedRange(f *fsim.File, off, n int64) bool { return c.m.CachedRange(f, off, n) }

// FinishRun finalizes accounting at the end of a benchmark run.
func (m *Manager) FinishRun() {
	m.cache.FlushAccounting()
}
