// Package tip implements the informed prefetching and caching manager from
// Patterson's TIP, as used by the SpecHint paper: applications disclose
// their future reads as a sequence of hints (Table 2's TIPIO_SEG /
// TIPIO_FD_SEG / TIPIO_CANCEL_ALL) and TIP converts them into prefetch I/O,
// balancing prefetch depth against cache pressure with a simplified
// cost-benefit rule.
//
// Unhinted read calls invoke the operating system's sequential read-ahead
// policy, which prefetches approximately as many blocks as have been read
// sequentially, up to 64 — aggressive enough to waste most of its prefetches
// on random-access workloads like XDataSlice, as the paper's Table 5 shows.
package tip

import (
	"fmt"

	"spechint/internal/cache"
	"spechint/internal/disk"
	"spechint/internal/fsim"
	"spechint/internal/sim"
)

// Config tunes the manager.
type Config struct {
	CacheBlocks int // file cache capacity in blocks

	// Horizon is the maximum prefetch depth, in blocks, down the hinted
	// sequence. TIP derived this bound from its system model; here it is a
	// parameter, scaled down by observed hint accuracy.
	Horizon int

	// MinHorizon floors the accuracy-scaled horizon so that a burst of bad
	// hints cannot disable prefetching permanently.
	MinHorizon int

	// ReadaheadMax caps the sequential read-ahead policy (64 blocks in
	// Digital UNIX).
	ReadaheadMax int

	// MaxDepthPerDisk bounds prefetches outstanding (queued + in service)
	// at each disk. This is the queue-side half of TIP's cost-benefit rule:
	// deep prefetch queues make demand reads wait behind prefetches whose
	// buffers they need (a non-preemptible request cannot be jumped even by
	// a higher-priority demand for the same block). Zero means unbounded.
	MaxDepthPerDisk int

	// RADepthPerDisk bounds outstanding sequential read-ahead prefetches per
	// disk. It is deliberately looser than MaxDepthPerDisk: the read-ahead
	// policy predates TIP's cost-benefit control and is "entirely too
	// aggressive" for nonsequential workloads (paper §4.4). Zero means
	// unbounded.
	RADepthPerDisk int

	// MaxHintSegs caps the outstanding hint queue; hints beyond the cap are
	// dropped (TIP's hint buffers were finite). Runaway speculation can
	// otherwise disclose unbounded garbage. Zero means unbounded.
	MaxHintSegs int

	// IgnoreHints makes hint calls no-ops (the paper's Figure 4
	// configuration): every read is treated as unhinted.
	IgnoreHints bool
}

// DefaultConfig mirrors the testbed: 12 MB cache of 8 KB blocks.
func DefaultConfig() Config {
	return Config{
		CacheBlocks:     12 << 20 / 8192,
		Horizon:         256,
		MinHorizon:      16,
		ReadaheadMax:    64,
		MaxDepthPerDisk: 8,
		RADepthPerDisk:  8,
		MaxHintSegs:     1 << 16,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.CacheBlocks <= 0:
		return fmt.Errorf("tip: CacheBlocks = %d, want > 0", c.CacheBlocks)
	case c.Horizon <= 0:
		return fmt.Errorf("tip: Horizon = %d, want > 0", c.Horizon)
	case c.MinHorizon <= 0 || c.MinHorizon > c.Horizon:
		return fmt.Errorf("tip: MinHorizon = %d, want in [1, Horizon]", c.MinHorizon)
	case c.ReadaheadMax < 0:
		return fmt.Errorf("tip: ReadaheadMax = %d, want >= 0", c.ReadaheadMax)
	case c.MaxDepthPerDisk < 0 || c.RADepthPerDisk < 0 || c.MaxHintSegs < 0:
		return fmt.Errorf("tip: negative MaxDepthPerDisk, RADepthPerDisk or MaxHintSegs")
	}
	return nil
}

// Stats aggregates the hinting and prefetching activity of one run; it is
// the source for the paper's Tables 4 and 5.
type Stats struct {
	// Demand read activity (explicit file calls only).
	ReadCalls  int64
	ReadBlocks int64
	ReadBytes  int64
	// Subset of the above that arrived hinted.
	HintedReadCalls  int64
	HintedReadBlocks int64
	HintedReadBytes  int64

	// Hint activity.
	HintCalls     int64
	HintBlocks    int64
	HintBytes     int64
	CancelCalls   int64
	CancelledSegs int64
	DroppedHints  int64 // hint calls dropped at the MaxHintSegs cap
	MatchedCalls  int64
	MatchedBlocks int64
	MatchedBytes  int64
	BypassedSegs  int64

	// Prefetch activity.
	HintPrefetches int64 // blocks fetched because of hints
	RAPrefetches   int64 // blocks fetched by sequential read-ahead
}

// InaccurateCalls returns the number of hint calls that never matched a
// demand read (valid after FinishRun).
func (s Stats) InaccurateCalls() int64 { return s.HintCalls - s.MatchedCalls }

// InaccurateBlocks returns hinted blocks that never matched a demand read.
func (s Stats) InaccurateBlocks() int64 { return s.HintBlocks - s.MatchedBlocks }

// InaccurateBytes returns hinted bytes that never matched a demand read.
func (s Stats) InaccurateBytes() int64 { return s.HintBytes - s.MatchedBytes }

// PrefetchedBlocks returns the total blocks fetched speculatively.
func (s Stats) PrefetchedBlocks() int64 { return s.HintPrefetches + s.RAPrefetches }

// segment is one hinted (file, offset, length) from a TIPIO_SEG call.
// Reads consume segments progressively: a manual hint may disclose a whole
// file that the application then reads in many small calls, while a
// speculative hint matches exactly one read call.
type segment struct {
	file       *fsim.File
	off, n     int64
	firstBlock int64   // file block index of blocks[0]
	blocks     []int64 // logical block numbers
	consumed   int64   // high-water mark of consumed bytes from off
	cancelled  bool
	complete   bool
}

// dataEnd returns the end of the segment clamped to the file.
func (s *segment) dataEnd() int64 {
	end := s.off + s.n
	if sz := s.file.Size(); end > sz {
		end = sz
	}
	return end
}

// consumedBlocks returns how many of the segment's blocks are fully consumed.
func (s *segment) consumedBlocks(blockSize int64) int64 {
	if s.consumed <= 0 {
		return 0
	}
	cb := (s.off+s.consumed)/blockSize - s.firstBlock
	if cb < 0 {
		cb = 0
	}
	if cb > int64(len(s.blocks)) {
		cb = int64(len(s.blocks))
	}
	return cb
}

// raState tracks the sequential read-ahead heuristic for one file.
type raState struct {
	nextByte  int64 // where a sequential read would continue
	runBlocks int64 // length of the current sequential run, in blocks
}

// Manager is the informed prefetching and caching manager.
type Manager struct {
	clk   *sim.Queue
	arr   *disk.Array
	fs    *fsim.FS
	cache *cache.Cache
	cfg   Config

	hints []*segment
	head  int // first unconsumed hint

	ra map[int64]*raState // by inode

	// pendingDemand holds demand fetches that could not obtain a buffer
	// (everything in transit); retried on every completion.
	pendingDemand []func() bool

	prefDepth map[int]int             // outstanding prefetches per disk
	inflight  map[int64]*disk.Request // in-transit block -> its disk request

	// Windowed hint-accuracy estimate (right ≈ matched, wrong ≈ bypassed +
	// cancelled, both decayed): TIP discounts the benefit of prefetching
	// for processes whose recent hints proved unreliable, but a burst of
	// cancellations must not suppress prefetching forever.
	accGood float64
	accBad  float64

	stats Stats
}

// accWindow is the sliding-window size for the accuracy estimate.
const accWindow = 256

func (m *Manager) accObserve(good bool, weight float64) {
	if good {
		m.accGood += weight
	} else {
		m.accBad += weight
	}
	if m.accGood+m.accBad > accWindow {
		m.accGood /= 2
		m.accBad /= 2
	}
}

// New constructs a manager over the given clock, array and file system.
func New(clk *sim.Queue, arr *disk.Array, fs *fsim.FS, cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		clk:       clk,
		arr:       arr,
		fs:        fs,
		cache:     cache.New(cfg.CacheBlocks),
		cfg:       cfg,
		ra:        make(map[int64]*raState),
		prefDepth: make(map[int]int),
		inflight:  make(map[int64]*disk.Request),
	}
	arr.OnIdle = func(int) { m.pump() }
	return m, nil
}

// Cache exposes the underlying cache (read-only use: stats, inspection).
func (m *Manager) Cache() *cache.Cache { return m.cache }

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// blockRange returns the file-block index range [first, last] covering
// [off, off+n) clamped to the file, or ok=false if the range is empty.
func blockRange(f *fsim.File, off, n int64, blockSize int64) (first, last int64, ok bool) {
	if off < 0 || n <= 0 || off >= f.Size() {
		return 0, 0, false
	}
	end := off + n
	if end > f.Size() {
		end = f.Size()
	}
	return off / blockSize, (end - 1) / blockSize, true
}

// HintSeg discloses a future read of [off, off+n) in f (TIPIO_SEG /
// TIPIO_FD_SEG; the two differ only in how the caller named the file).
func (m *Manager) HintSeg(f *fsim.File, off, n int64) {
	m.stats.HintCalls++
	bs := int64(m.fs.BlockSize())
	seg := &segment{file: f, off: off, n: n}
	if first, last, ok := blockRange(f, off, n, bs); ok {
		seg.firstBlock = first
		for b := first; b <= last; b++ {
			seg.blocks = append(seg.blocks, f.LogicalBlock(b))
		}
		m.stats.HintBlocks += int64(len(seg.blocks))
		end := off + n
		if end > f.Size() {
			end = f.Size()
		}
		m.stats.HintBytes += end - off
	}
	if m.cfg.IgnoreHints {
		return
	}
	if m.cfg.MaxHintSegs > 0 && len(m.hints)-m.head >= m.cfg.MaxHintSegs {
		// Hint buffers are full (runaway speculation): drop the hint.
		m.stats.DroppedHints++
		return
	}
	m.hints = append(m.hints, seg)
	m.pump()
}

// Seg is one (file, offset, length) disclosure for batch hinting.
type Seg struct {
	File *fsim.File
	Off  int64
	N    int64
}

// HintBatch discloses several future reads in one call — Table 2's batched
// TIPIO_SEG form. Speculative execution discovers reads one at a time and
// never uses it (as the paper notes), but manually modified applications
// can.
func (m *Manager) HintBatch(segs []Seg) {
	for _, sg := range segs {
		m.HintSeg(sg.File, sg.Off, sg.N)
	}
}

// CancelAll cancels all outstanding hints (TIPIO_CANCEL_ALL). Prefetch
// requests already issued to the disks proceed; their blocks merely lose
// hint protection in the cache.
func (m *Manager) CancelAll() {
	m.stats.CancelCalls++
	if m.cfg.IgnoreHints {
		return
	}
	for i := m.head; i < len(m.hints); i++ {
		seg := m.hints[i]
		if seg.cancelled {
			continue
		}
		seg.cancelled = true
		m.stats.CancelledSegs++
		m.accObserve(false, 1)
		for _, lb := range seg.blocks {
			m.cache.SetHintDist(lb, cache.NoHint)
		}
	}
	m.hints = m.hints[:0]
	m.head = 0
}

// Accuracy returns TIP's windowed estimate of the fraction of recent hints
// that proved correct (1.0 before any evidence). The adaptive speculation
// throttle consults it.
func (m *Manager) Accuracy() float64 { return m.accuracy() }

// accuracy estimates the fraction of recent hints that proved correct. TIP
// uses this to discount the benefit of prefetching in response to hints.
func (m *Manager) accuracy() float64 {
	if m.accGood+m.accBad == 0 {
		return 1.0
	}
	return m.accGood / (m.accGood + m.accBad)
}

// effHorizon returns the accuracy-scaled prefetch horizon.
func (m *Manager) effHorizon() int {
	h := int(float64(m.cfg.Horizon) * m.accuracy())
	if h < m.cfg.MinHorizon {
		h = m.cfg.MinHorizon
	}
	return h
}

// pump issues hint-driven prefetches up to the effective horizon. It is
// invoked on every hint, every disk-idle transition and every completion.
func (m *Manager) pump() {
	if m.cfg.IgnoreHints {
		return
	}
	horizon := m.effHorizon()
	bs := int64(m.fs.BlockSize())
	dist := 0
	for i := m.head; i < len(m.hints) && dist < horizon; i++ {
		seg := m.hints[i]
		if seg.cancelled || seg.complete {
			continue
		}
		for _, lb := range seg.blocks[seg.consumedBlocks(bs):] {
			if dist >= horizon {
				return
			}
			d := int64(dist)
			dist++
			if b := m.cache.Get(lb); b != nil {
				if b.HintDist > d {
					m.cache.SetHintDist(lb, d)
				}
				continue
			}
			switch m.startFetch(lb, cache.OriginHint, d) {
			case fetchStarted:
				m.stats.HintPrefetches++
			case fetchDiskBusy:
				continue // this disk is at depth; later blocks may differ
			case fetchNoBuffer:
				return // cache pressure: stop pumping entirely
			}
		}
	}
}

// fetchResult says why startFetch declined, so the pump can distinguish
// per-disk back-pressure (skip the block) from cache pressure (stop).
type fetchResult int

const (
	fetchStarted fetchResult = iota
	fetchDiskBusy
	fetchNoBuffer
)

// startFetch acquires a buffer for lb and submits the disk request, leaving
// no residue on failure.
func (m *Manager) startFetch(lb int64, origin cache.Origin, hintDist int64) fetchResult {
	dk, phys := m.arr.Map(lb)
	pri := disk.Prefetch
	if origin == cache.OriginDemand {
		pri = disk.Demand
	}
	bound := m.cfg.MaxDepthPerDisk
	if origin == cache.OriginReadahead {
		bound = m.cfg.RADepthPerDisk
	}
	if pri == disk.Prefetch && bound > 0 && m.prefDepth[dk] >= bound {
		return fetchDiskBusy
	}
	b := m.cache.Acquire(lb, origin, hintDist)
	if b == nil {
		return fetchNoBuffer
	}
	isPref := pri == disk.Prefetch
	req := &disk.Request{
		Disk: dk, PhysBlock: phys, Pri: pri,
		Done: func() { m.onFetchDone(lb, dk, isPref) },
	}
	if !m.arr.Submit(req) {
		m.cache.Drop(lb)
		return fetchDiskBusy
	}
	m.inflight[lb] = req
	if isPref {
		m.prefDepth[dk]++
	}
	return fetchStarted
}

func (m *Manager) onFetchDone(lb int64, dk int, wasPrefetch bool) {
	if wasPrefetch {
		m.prefDepth[dk]--
	}
	delete(m.inflight, lb)
	m.cache.Complete(lb)
	m.retryPendingDemand()
	m.pump()
}

func (m *Manager) retryPendingDemand() {
	if len(m.pendingDemand) == 0 {
		return
	}
	pending := m.pendingDemand
	m.pendingDemand = m.pendingDemand[:0]
	for _, fn := range pending {
		if !fn() {
			m.pendingDemand = append(m.pendingDemand, fn)
		}
	}
}

// findCover returns the queue index of the first live segment whose range
// covers the read [off, off+n) of f (both clamped to the file), or -1.
func (m *Manager) findCover(f *fsim.File, off, n int64) int {
	covEnd := off + n
	if sz := f.Size(); covEnd > sz {
		covEnd = sz
	}
	for i := m.head; i < len(m.hints); i++ {
		seg := m.hints[i]
		if seg.cancelled || seg.complete {
			continue
		}
		if seg.file == f && off >= seg.off && covEnd <= seg.dataEnd() {
			return i
		}
	}
	return -1
}

// Covered reports whether a read of [off, off+n) in f is disclosed by an
// outstanding hint. Manually-hinted applications use this to decide whether
// a read call counts as hinted.
func (m *Manager) Covered(f *fsim.File, off, n int64) bool {
	if m.cfg.IgnoreHints {
		return false
	}
	return m.findCover(f, off, n) >= 0
}

// consume matches a hinted demand read against the hint queue. Segments
// skipped over on the way to the covering segment predicted reads that did
// not occur (in that order) and are bypassed — this is how erroneous
// speculation shows up in Table 4.
func (m *Manager) consume(f *fsim.File, off, n int64) {
	i := m.findCover(f, off, n)
	if i < 0 {
		return
	}
	for j := m.head; j < i; j++ {
		seg := m.hints[j]
		if !seg.cancelled && !seg.complete {
			m.stats.BypassedSegs++
			m.accObserve(false, 1)
			for _, lb := range seg.blocks {
				m.cache.SetHintDist(lb, cache.NoHint)
			}
		}
	}
	m.head = i
	seg := m.hints[i]
	covEnd := off + n
	if end := seg.dataEnd(); covEnd > end {
		covEnd = end
	}
	if hw := covEnd - seg.off; hw > seg.consumed {
		seg.consumed = hw
	}
	m.accObserve(true, 1)
	if seg.off+seg.consumed >= seg.dataEnd() {
		seg.complete = true
		m.stats.MatchedCalls++
		m.stats.MatchedBlocks += int64(len(seg.blocks))
		if bytes := seg.dataEnd() - seg.off; bytes > 0 {
			m.stats.MatchedBytes += bytes
		}
		// Pop the completed prefix.
		for m.head < len(m.hints) && (m.hints[m.head].complete || m.hints[m.head].cancelled) {
			m.head++
		}
		m.compact()
	}
}

// compact reclaims consumed queue prefix space.
func (m *Manager) compact() {
	if m.head > 1024 && m.head*2 > len(m.hints) {
		m.hints = append(m.hints[:0:0], m.hints[m.head:]...)
		m.head = 0
	}
}

// Read performs a demand read of [off, off+n) from f. hinted says whether
// the application's read found a matching hint-log entry (core decides).
// done runs when every block is valid; if everything is already cached,
// done is NOT called and Read returns true (the caller continues
// synchronously — a cache hit costs no stall).
func (m *Manager) Read(f *fsim.File, off, n int64, hinted bool, done func()) (immediate bool) {
	bs := int64(m.fs.BlockSize())
	first, last, ok := blockRange(f, off, n, bs)
	m.stats.ReadCalls++
	if hinted && !m.cfg.IgnoreHints {
		m.stats.HintedReadCalls++
	}
	if !ok {
		return true // zero-byte or EOF read: no I/O
	}
	nBlocks := last - first + 1
	end := off + n
	if end > f.Size() {
		end = f.Size()
	}
	m.stats.ReadBlocks += nBlocks
	m.stats.ReadBytes += end - off
	if hinted && !m.cfg.IgnoreHints {
		m.stats.HintedReadBlocks += nBlocks
		m.stats.HintedReadBytes += end - off
		m.consume(f, off, n)
	}

	remaining := 0
	var finish func()
	dec := func() {
		remaining--
		if remaining == 0 && finish != nil {
			finish()
		}
	}

	// touchConsumed records a demand access and releases the block's hint
	// protection: a consumed block must age out by LRU like any other, or
	// it would squat in the cache with a stale, ever-more-precious hint
	// distance while fresh prefetches evict each other at the horizon tail.
	touchConsumed := func(lb int64) {
		m.cache.Touch(lb)
		m.cache.SetHintDist(lb, cache.NoHint)
	}

	type fetchPlan struct{ lb int64 }
	var misses []fetchPlan
	for b := first; b <= last; b++ {
		lb := f.LogicalBlock(b)
		blk := m.cache.Get(lb)
		switch {
		case blk != nil && blk.State() == cache.Valid:
			touchConsumed(lb)
		case blk != nil: // in transit
			m.cache.NoteDemandWait(lb)
			// The application now needs this block: if its prefetch is
			// still queued, it inherits demand priority.
			if req := m.inflight[lb]; req != nil {
				m.arr.Promote(req)
			}
			remaining++
			m.cache.Wait(lb, func() {
				touchConsumed(lb)
				dec()
			})
		default:
			m.cache.NoteMiss()
			remaining++
			misses = append(misses, fetchPlan{lb})
		}
	}
	for _, p := range misses {
		lb := p.lb
		start := func() bool {
			if blk := m.cache.Get(lb); blk != nil {
				// Raced with a prefetch issued meanwhile.
				if blk.State() == cache.Valid {
					touchConsumed(lb)
					dec()
					return true
				}
				m.cache.Wait(lb, func() {
					touchConsumed(lb)
					dec()
				})
				return true
			}
			if m.startFetch(lb, cache.OriginDemand, cache.NoHint) != fetchStarted {
				return false
			}
			m.cache.Wait(lb, func() {
				touchConsumed(lb)
				dec()
			})
			return true
		}
		if !start() {
			m.pendingDemand = append(m.pendingDemand, start)
		}
	}

	if !hinted || m.cfg.IgnoreHints {
		m.readahead(f, off, end, first, last)
	}

	// Consuming a hint moves the horizon forward; fill it.
	m.pump()

	if remaining == 0 {
		return true
	}
	finish = done
	return false
}

// readahead implements the sequential read-ahead policy: on a sequential
// read, prefetch approximately as many blocks as have been read
// sequentially, up to ReadaheadMax.
func (m *Manager) readahead(f *fsim.File, off, end, first, last int64) {
	if m.cfg.ReadaheadMax == 0 {
		return
	}
	st := m.ra[f.Ino()]
	if st == nil {
		st = &raState{}
		m.ra[f.Ino()] = st
	}
	nBlocks := last - first + 1
	if off == st.nextByte || off == 0 && st.nextByte == 0 {
		st.runBlocks += nBlocks
	} else {
		st.runBlocks = nBlocks
	}
	st.nextByte = end

	depth := st.runBlocks
	if depth > int64(m.cfg.ReadaheadMax) {
		depth = int64(m.cfg.ReadaheadMax)
	}
	for b := last + 1; b <= last+depth && b < f.NBlocks(); b++ {
		lb := f.LogicalBlock(b)
		if m.cache.Get(lb) != nil {
			continue
		}
		if m.startFetch(lb, cache.OriginReadahead, cache.NoHint) != fetchStarted {
			return
		}
		m.stats.RAPrefetches++
	}
}

// CachedRange reports whether every block of [off, off+n) in f is Valid —
// the condition under which a *speculative* read can be given real data.
func (m *Manager) CachedRange(f *fsim.File, off, n int64) bool {
	first, last, ok := blockRange(f, off, n, int64(m.fs.BlockSize()))
	if !ok {
		return true
	}
	for b := first; b <= last; b++ {
		blk := m.cache.Get(f.LogicalBlock(b))
		if blk == nil || blk.State() != cache.Valid {
			return false
		}
	}
	return true
}

// FinishRun finalizes accounting at the end of a benchmark run.
func (m *Manager) FinishRun() {
	m.cache.FlushAccounting()
}
