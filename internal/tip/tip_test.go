package tip

import (
	"fmt"
	"testing"

	"spechint/internal/cache"
	"spechint/internal/disk"
	"spechint/internal/fsim"
	"spechint/internal/sim"
)

// rig bundles a small simulated system for tests.
type rig struct {
	clk *sim.Queue
	arr *disk.Array
	fs  *fsim.FS
	m   *Manager
}

func newRig(t *testing.T, cfg Config, diskCfg disk.Config) *rig {
	t.Helper()
	clk := sim.NewQueue()
	fs := fsim.New(diskCfg.BlockSize)
	arr, err := disk.New(clk, diskCfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(clk, arr, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, arr: arr, fs: fs, m: m}
}

func smallDisk() disk.Config {
	return disk.Config{
		NumDisks:       2,
		BlockSize:      1024,
		StripeUnit:     2048,
		PositionCycles: 1000,
		TransferCycles: 100,
		TrackBufCycles: 10,
		TrackBufBlocks: 4,
		DelayFactor:    1,
	}
}

func smallTIP() Config {
	return Config{CacheBlocks: 16, Horizon: 8, MinHorizon: 2, ReadaheadMax: 4}
}

// readSync performs a demand read and drains the clock until it completes,
// returning the virtual time consumed.
func (r *rig) readSync(t *testing.T, f *fsim.File, off, n int64, hinted bool) sim.Time {
	t.Helper()
	start := r.clk.Now()
	done := false
	if r.m.Read(f, off, n, hinted, func(error) { done = true }) {
		return 0
	}
	for !done {
		if !r.clk.RunNext() {
			t.Fatal("read never completed: no pending events")
		}
	}
	return r.clk.Now() - start
}

func TestConfigValidate(t *testing.T) {
	good := smallTIP()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{CacheBlocks: 0, Horizon: 8, MinHorizon: 2},
		{CacheBlocks: 4, Horizon: 0, MinHorizon: 2},
		{CacheBlocks: 4, Horizon: 8, MinHorizon: 0},
		{CacheBlocks: 4, Horizon: 8, MinHorizon: 9},
		{CacheBlocks: 4, Horizon: 8, MinHorizon: 2, ReadaheadMax: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Error("DefaultConfig invalid")
	}
}

func TestDemandReadMissThenHit(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 4096))
	cfg := smallTIP()
	cfg.ReadaheadMax = 0 // isolate demand path
	r.m.cfg = cfg

	elapsed := r.readSync(t, f, 0, 1024, false)
	if elapsed == 0 {
		t.Fatal("first read was free; expected a disk fetch")
	}
	if r.m.Read(f, 0, 1024, false, nil) != true {
		t.Fatal("second read of cached block was not immediate")
	}
	st := r.m.Stats()
	if st.ReadCalls != 2 || st.ReadBlocks != 2 || st.ReadBytes != 2048 {
		t.Fatalf("stats = %+v", st)
	}
	cs := r.m.Cache().Stats()
	// First read: 1 miss then a touch at completion; second read: 1 hit
	// that is also a reuse (second request served by the same buffer).
	if cs.Misses != 1 || cs.Hits != 2 || cs.Reuses != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss 2 hits 1 reuse", cs)
	}
}

func TestReadBeyondEOFIsImmediate(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 100))
	if !r.m.Read(f, 100, 50, false, nil) {
		t.Fatal("EOF read was not immediate")
	}
	if !r.m.Read(f, 500, 50, false, nil) {
		t.Fatal("past-EOF read was not immediate")
	}
	if st := r.m.Stats(); st.ReadBlocks != 0 {
		t.Fatalf("EOF reads touched blocks: %+v", st)
	}
}

func TestHintPrefetchesWithinHorizon(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 20*1024))
	r.m.HintSeg(f, 0, 20*1024) // 20 blocks, horizon is 8
	st := r.m.Stats()
	if st.HintCalls != 1 || st.HintBlocks != 20 {
		t.Fatalf("hint stats = %+v", st)
	}
	if st.HintPrefetches != 8 {
		t.Fatalf("HintPrefetches = %d, want horizon-bounded 8", st.HintPrefetches)
	}
	// As prefetches complete, the pump refills up to the horizon.
	r.clk.Drain()
	if got := r.m.Stats().HintPrefetches; got != 8 {
		// Nothing consumed, so the horizon still caps at 8 outstanding+done
		// of the first 8 distances.
		t.Fatalf("HintPrefetches after drain = %d, want 8", got)
	}
}

func TestHintConsumptionAdvancesHorizon(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 20*1024))
	for i := int64(0); i < 20; i++ {
		r.m.HintSeg(f, i*1024, 1024)
	}
	r.clk.Drain()
	before := r.m.Stats().HintPrefetches
	r.readSync(t, f, 0, 1024, true)
	r.clk.Drain()
	after := r.m.Stats().HintPrefetches
	if after <= before {
		t.Fatalf("consuming a hint did not advance prefetching: %d -> %d", before, after)
	}
	st := r.m.Stats()
	if st.MatchedCalls != 1 {
		t.Fatalf("MatchedCalls = %d, want 1", st.MatchedCalls)
	}
}

func TestFullyPrefetchedRead(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 8*1024))
	r.m.HintSeg(f, 0, 1024)
	r.clk.Drain() // let the prefetch finish
	if elapsed := r.readSync(t, f, 0, 1024, true); elapsed != 0 {
		t.Fatalf("hinted+prefetched read stalled %d cycles", elapsed)
	}
	if cs := r.m.Cache().Stats(); cs.FullyPref != 1 {
		t.Fatalf("FullyPref = %d, want 1", cs.FullyPref)
	}
}

func TestPartiallyPrefetchedRead(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 8*1024))
	r.m.HintSeg(f, 0, 1024)
	// Read immediately, while the prefetch is still in transit.
	elapsed := r.readSync(t, f, 0, 1024, true)
	if elapsed == 0 {
		t.Fatal("read of in-transit block did not stall")
	}
	cs := r.m.Cache().Stats()
	if cs.PartialWaits != 1 || cs.FullyPref != 0 {
		t.Fatalf("cache stats = %+v, want 1 partial", cs)
	}
}

func TestCancelAllStopsPrefetchingAndUnprotectsBlocks(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 32*1024))
	r.m.HintSeg(f, 0, 32*1024)
	r.m.CancelAll()
	r.clk.Drain()
	st := r.m.Stats()
	if st.CancelCalls != 1 || st.CancelledSegs != 1 {
		t.Fatalf("cancel stats = %+v", st)
	}
	before := st.HintPrefetches
	r.clk.Drain()
	if got := r.m.Stats().HintPrefetches; got != before {
		t.Fatalf("prefetching continued after CancelAll: %d -> %d", before, got)
	}
	// Cached blocks lost hint protection.
	r.m.Cache().ForEach(func(b *cache.Block) {
		if b.HintDist != cache.NoHint {
			t.Fatalf("block %d still hint-protected after CancelAll", b.LB)
		}
	})
}

func TestBypassedSegmentsCountInaccurate(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 16*1024))
	r.m.HintSeg(f, 0, 1024)    // wrong prediction
	r.m.HintSeg(f, 4096, 1024) // matches the actual read
	r.readSync(t, f, 4096, 1024, true)
	st := r.m.Stats()
	if st.BypassedSegs != 1 || st.MatchedCalls != 1 {
		t.Fatalf("stats = %+v, want 1 bypassed 1 matched", st)
	}
	if st.InaccurateCalls() != 1 {
		t.Fatalf("InaccurateCalls = %d, want 1", st.InaccurateCalls())
	}
}

func TestAccuracyScalesHorizon(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	if h := r.m.def().effHorizon(); h != 8 {
		t.Fatalf("initial effHorizon = %d, want full 8", h)
	}
	// Force poor recent accuracy: many bypassed, none matched.
	for i := 0; i < 100; i++ {
		r.m.def().accObserve(false, 1)
	}
	if h := r.m.def().effHorizon(); h != r.m.cfg.MinHorizon {
		t.Fatalf("effHorizon = %d with zero accuracy, want MinHorizon %d", h, r.m.cfg.MinHorizon)
	}
	for i := 0; i < 100; i++ {
		r.m.def().accObserve(true, 1)
	}
	if h := r.m.def().effHorizon(); h != 4 {
		t.Fatalf("effHorizon = %d at 50%% accuracy, want 4", h)
	}
	// The window decays: sustained good hints recover the horizon.
	for i := 0; i < 2000; i++ {
		r.m.def().accObserve(true, 1)
	}
	if h := r.m.def().effHorizon(); h < 7 {
		t.Fatalf("effHorizon = %d after recovery, want near full", h)
	}
}

func TestSequentialReadaheadGrowsWithRun(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 64*1024))
	// First sequential read: run=1 block, prefetch 1.
	r.readSync(t, f, 0, 1024, false)
	if got := r.m.Stats().RAPrefetches; got != 1 {
		t.Fatalf("after 1st read RAPrefetches = %d, want 1", got)
	}
	r.readSync(t, f, 1024, 1024, false)
	// run=2 -> depth 2 -> prefetch blocks 2 and 3 (block 1 came from RA#1).
	st := r.m.Stats()
	if st.RAPrefetches != 3 {
		t.Fatalf("after 2nd read RAPrefetches = %d, want 3", st.RAPrefetches)
	}
	// Nonsequential read resets the run to depth 1: one more prefetch.
	r.readSync(t, f, 40*1024, 1024, false)
	st = r.m.Stats()
	if st.RAPrefetches != 4 {
		t.Fatalf("after seek RAPrefetches = %d, want 4", st.RAPrefetches)
	}
}

func TestReadaheadCapped(t *testing.T) {
	cfg := smallTIP()
	cfg.CacheBlocks = 256
	cfg.ReadaheadMax = 4
	r := newRig(t, cfg, smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 200*1024))
	var pos int64
	for i := 0; i < 20; i++ {
		r.readSync(t, f, pos, 1024, false)
		pos += 1024
	}
	// Run length is 20 blocks but depth caps at 4: prefetches stay bounded.
	st := r.m.Stats()
	if st.RAPrefetches > 24 {
		t.Fatalf("RAPrefetches = %d, want <= 24 under cap", st.RAPrefetches)
	}
	if st.RAPrefetches < 4 {
		t.Fatalf("RAPrefetches = %d, want >= 4", st.RAPrefetches)
	}
}

func TestIgnoreHintsMode(t *testing.T) {
	cfg := smallTIP()
	cfg.IgnoreHints = true
	r := newRig(t, cfg, smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 16*1024))
	r.m.HintSeg(f, 0, 16*1024)
	r.clk.Drain()
	st := r.m.Stats()
	if st.HintCalls != 1 {
		t.Fatalf("HintCalls = %d, want 1 (still counted)", st.HintCalls)
	}
	if st.HintPrefetches != 0 {
		t.Fatalf("HintPrefetches = %d, want 0 when ignoring hints", st.HintPrefetches)
	}
	// Hinted reads behave as unhinted: readahead applies, no consumption.
	r.readSync(t, f, 0, 1024, true)
	st = r.m.Stats()
	if st.HintedReadCalls != 0 || st.MatchedCalls != 0 {
		t.Fatalf("stats = %+v, want no hinted accounting", st)
	}
	if st.RAPrefetches == 0 {
		t.Fatal("readahead not invoked for ignored-hints read")
	}
}

func TestCachedRange(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 4096))
	if r.m.CachedRange(f, 0, 1024) {
		t.Fatal("empty cache reported range cached")
	}
	r.readSync(t, f, 0, 1024, false)
	if !r.m.CachedRange(f, 0, 1024) {
		t.Fatal("read block not reported cached")
	}
	if r.m.CachedRange(f, 0, 2048) {
		t.Fatal("partially cached range reported cached")
	}
	// Degenerate ranges are trivially cached (no I/O needed).
	if !r.m.CachedRange(f, 4096, 100) || !r.m.CachedRange(f, 0, 0) {
		t.Fatal("degenerate range not trivially cached")
	}
}

func TestMultiBlockRead(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 8*1024))
	elapsed := r.readSync(t, f, 512, 3000, false) // spans blocks 0..3
	if elapsed == 0 {
		t.Fatal("multi-block read was free")
	}
	st := r.m.Stats()
	if st.ReadBlocks != 4 {
		t.Fatalf("ReadBlocks = %d, want 4", st.ReadBlocks)
	}
}

func TestDemandSharesInTransitPrefetch(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 4096))
	r.m.HintSeg(f, 0, 1024)
	// Demand read arrives while prefetch in transit; must not double-fetch.
	r.readSync(t, f, 0, 1024, true)
	ds := r.arr.Stats()
	if ds.DemandReqs != 0 || ds.PrefetchReqs != 1 {
		t.Fatalf("disk reqs = %+v, want the single prefetch", ds)
	}
}

func TestFinishRunFlushesUnused(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 8*1024))
	r.m.HintSeg(f, 0, 2048)
	r.clk.Drain()
	r.m.FinishRun()
	if cs := r.m.Cache().Stats(); cs.UnusedHint != 2 {
		t.Fatalf("UnusedHint = %d, want 2", cs.UnusedHint)
	}
}

func TestManyFilesStress(t *testing.T) {
	cfg := Config{CacheBlocks: 64, Horizon: 32, MinHorizon: 4, ReadaheadMax: 8}
	r := newRig(t, cfg, smallDisk())
	var files []*fsim.File
	for i := 0; i < 20; i++ {
		files = append(files, r.fs.MustCreate(fmt.Sprintf("f%d", i), make([]byte, 10*1024)))
	}
	// Hint everything, then read everything in hinted order.
	for _, f := range files {
		for off := int64(0); off < f.Size(); off += 1024 {
			r.m.HintSeg(f, off, 1024)
		}
	}
	for _, f := range files {
		for off := int64(0); off < f.Size(); off += 1024 {
			r.readSync(t, f, off, 1024, true)
		}
	}
	r.clk.Drain()
	r.m.FinishRun()
	st := r.m.Stats()
	if st.MatchedCalls != 200 {
		t.Fatalf("MatchedCalls = %d, want 200", st.MatchedCalls)
	}
	if st.InaccurateCalls() != 0 {
		t.Fatalf("InaccurateCalls = %d, want 0", st.InaccurateCalls())
	}
	cs := r.m.Cache().Stats()
	if cs.FullyPref+cs.PartialWaits+cs.Misses == 0 {
		t.Fatal("no fetch accounting recorded")
	}
	if r.m.Cache().Len() > 64 {
		t.Fatal("cache over capacity")
	}
}

func TestPrefetchDepthBound(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxDepthPerDisk = 1
	cfg.Horizon = 8
	r := newRig(t, cfg, smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 32*1024)) // 32 blocks over 2 disks
	r.m.HintSeg(f, 0, 32*1024)
	// At most 1 outstanding prefetch per disk: 2 issued immediately.
	if got := r.m.Stats().HintPrefetches; got != 2 {
		t.Fatalf("HintPrefetches = %d at depth 1 on 2 disks, want 2", got)
	}
	r.clk.Drain()
	// Completions refill the pipeline up to the horizon.
	if got := r.m.Stats().HintPrefetches; got != 8 {
		t.Fatalf("HintPrefetches after drain = %d, want horizon 8", got)
	}
}

func TestHintSegCapDropsHints(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxHintSegs = 3
	r := newRig(t, cfg, smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 16*1024))
	for i := int64(0); i < 6; i++ {
		r.m.HintSeg(f, i*1024, 1024)
	}
	st := r.m.Stats()
	if st.DroppedHints != 3 {
		t.Fatalf("DroppedHints = %d, want 3", st.DroppedHints)
	}
	// Consuming hints frees queue space for new ones.
	r.clk.Drain()
	r.readSync(t, f, 0, 1024, true)
	r.m.HintSeg(f, 10*1024, 1024)
	if got := r.m.Stats().DroppedHints; got != 3 {
		t.Fatalf("DroppedHints = %d after consumption freed space, want still 3", got)
	}
}

func TestDemandPromotesQueuedPrefetch(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxDepthPerDisk = 8
	r := newRig(t, cfg, smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 16*1024))
	// Hint blocks 0..7; several prefetches queue up on each disk.
	r.m.HintSeg(f, 0, 16*1024)
	// Immediately demand the LAST hinted block: its queued prefetch must be
	// promoted ahead of the earlier prefetches on its disk.
	elapsed := r.readSync(t, f, 15*1024, 1024, true)
	// Unpromoted it would wait for every earlier prefetch on its disk
	// (4 services); promoted it waits for at most the in-service one plus
	// its own.
	if elapsed > 3*1100 {
		t.Fatalf("promoted demand waited %d cycles, want < 3 services", elapsed)
	}
}

func TestPartialSegmentConsumption(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 8*1024))
	// One manual-style hint covering the whole file.
	r.m.HintSeg(f, 0, 8*1024)
	r.clk.Drain()
	if !r.m.Covered(f, 0, 1024) || !r.m.Covered(f, 4096, 1024) {
		t.Fatal("whole-file hint does not cover chunk reads")
	}
	// Consume in three chunks; segment completes only at the end.
	r.readSync(t, f, 0, 4096, true)
	if got := r.m.Stats().MatchedCalls; got != 0 {
		t.Fatalf("MatchedCalls = %d before full consumption", got)
	}
	r.readSync(t, f, 4096, 4096, true)
	if got := r.m.Stats().MatchedCalls; got != 1 {
		t.Fatalf("MatchedCalls = %d after full consumption, want 1", got)
	}
	if r.m.Covered(f, 0, 1024) {
		t.Fatal("completed segment still covers reads")
	}
}

func TestCoverageClampsAtEOF(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 3000)) // not block aligned
	r.m.HintSeg(f, 0, 1<<30)                      // whole-file manual hint
	// A read whose requested length extends past EOF is still covered.
	if !r.m.Covered(f, 2048, 4096) {
		t.Fatal("EOF-clamped read not covered")
	}
	r.readSync(t, f, 0, 2048, true)
	r.readSync(t, f, 2048, 4096, true)
	if got := r.m.Stats().MatchedCalls; got != 1 {
		t.Fatalf("MatchedCalls = %d, want 1 (segment complete at EOF)", got)
	}
}

func TestAccuracyWindowRecovers(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	// A flood of cancellations crushes the horizon...
	for i := 0; i < 1000; i++ {
		r.m.def().accObserve(false, 1)
	}
	if r.m.def().effHorizon() != r.m.cfg.MinHorizon {
		t.Fatal("horizon not floored after cancellation flood")
	}
	// ...but sustained matches bring it back (windowed, not lifetime).
	for i := 0; i < 2000; i++ {
		r.m.def().accObserve(true, 1)
	}
	if h := r.m.def().effHorizon(); h < r.m.cfg.Horizon*3/4 {
		t.Fatalf("horizon %d did not recover (window broken)", h)
	}
}

func TestRADepthSeparateFromHintDepth(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxDepthPerDisk = 1
	cfg.RADepthPerDisk = 4
	cfg.ReadaheadMax = 8
	r := newRig(t, cfg, smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 64*1024))
	// Build up a sequential run so readahead wants depth > 1.
	for off := int64(0); off < 8*1024; off += 1024 {
		r.readSync(t, f, off, 1024, false)
	}
	if got := r.m.Stats().RAPrefetches; got <= 2 {
		t.Fatalf("RAPrefetches = %d, want readahead beyond the hint depth bound", got)
	}
}

func TestHintBatch(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 8*1024))
	r.m.HintBatch([]Seg{
		{File: f, Off: 0, N: 2048},
		{File: f, Off: 2048, N: 2048},
		{File: f, Off: 4096, N: 2048},
	})
	st := r.m.Stats()
	if st.HintCalls != 3 || st.HintBlocks != 6 {
		t.Fatalf("batch stats = %+v", st)
	}
	r.clk.Drain()
	r.readSync(t, f, 0, 2048, true)
	if got := r.m.Stats().MatchedCalls; got != 1 {
		t.Fatalf("MatchedCalls = %d", got)
	}
}

// TestSetPriorBlendsAccuracy: a static prior anchors the accuracy estimate
// before any dynamic evidence, and real observations pull it toward the
// observed rate.
func TestSetPriorBlendsAccuracy(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	c := r.m.def()
	if got := c.Accuracy(); got != 1.0 {
		t.Fatalf("accuracy before prior = %v, want optimistic 1.0", got)
	}
	c.SetPrior(0.5)
	if got := c.Accuracy(); got != 0.5 {
		t.Fatalf("accuracy with prior 0.5 and no evidence = %v, want 0.5", got)
	}
	c.accObserve(true, 16)
	got := c.Accuracy()
	if got <= 0.5 || got >= 1.0 {
		t.Fatalf("accuracy after good evidence = %v, want pulled above the 0.5 prior but below 1", got)
	}
	c.SetPrior(7) // clamps
	if c.prior != 1 {
		t.Fatalf("prior not clamped: %v", c.prior)
	}
	c.SetPrior(-3)
	if c.prior != 0 {
		t.Fatalf("prior not clamped to 0: %v", c.prior)
	}
}

// TestHintSegConfBoundsDepth: a confidence-tagged segment prefetches only its
// confidence-scaled share of the horizon, floored at MinHorizon; conf 0 and
// conf 1 behave exactly like plain HintSeg.
func TestHintSegConfBoundsDepth(t *testing.T) {
	cases := []struct {
		conf float64
		want int64 // horizon 8, MinHorizon 2
	}{
		{0, 8},
		{1, 8},
		{0.5, 4},
		{0.1, 2}, // floored at MinHorizon
	}
	for _, tc := range cases {
		r := newRig(t, smallTIP(), smallDisk())
		f := r.fs.MustCreate("f", make([]byte, 20*1024))
		r.m.HintSegConf(f, 0, 20*1024, tc.conf)
		r.clk.Drain()
		if got := r.m.Stats().HintPrefetches; got != tc.want {
			t.Errorf("conf %v: HintPrefetches = %d, want %d", tc.conf, got, tc.want)
		}
	}
}

// TestHintSegConfConsumptionAdvances: consuming a low-confidence segment
// still advances its prefetch window (the bound is a depth, not a cap on
// total prefetching).
func TestHintSegConfConsumptionAdvances(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 20*1024))
	r.m.HintSegConf(f, 0, 20*1024, 0.5)
	r.clk.Drain()
	before := r.m.Stats().HintPrefetches
	r.readSync(t, f, 0, 4*1024, true)
	r.clk.Drain()
	after := r.m.Stats().HintPrefetches
	if after <= before {
		t.Fatalf("consumption did not advance a conf-bounded segment: %d -> %d", before, after)
	}
}
