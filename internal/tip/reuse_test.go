package tip

import "testing"

// TestClientSlotReuse exercises the free-list recycling of closed client
// slots: a service workload opens a hint stream per session, and the clients
// slice (walked by every partition recompute) must stay bounded by the
// concurrent peak, not by the total sessions ever served.
func TestClientSlotReuse(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("a", make([]byte, 64<<10))

	a := r.m.NewClient("A")
	b := r.m.NewClient("B")
	if a.ID() == b.ID() {
		t.Fatalf("distinct clients share id %d", a.ID())
	}
	a.HintSeg(f, 0, 8192)
	r.clk.Drain()
	aID, aHints := a.ID(), a.Stats().HintCalls
	if aHints != 1 {
		t.Fatalf("A HintCalls = %d, want 1", aHints)
	}

	a.Close()
	c := r.m.NewClient("C")
	if c.ID() != aID {
		t.Errorf("NewClient after Close = id %d, want reused slot %d", c.ID(), aID)
	}
	if got := c.Stats().HintCalls; got != 0 {
		t.Errorf("reused slot inherited %d hint calls, want fresh 0", got)
	}
	// The aggregate keeps the retired client's counters.
	if st := r.m.Stats(); st.HintCalls != 1 {
		t.Errorf("aggregate HintCalls = %d after slot reuse, want 1", st.HintCalls)
	}
	c.HintSeg(f, 8192, 8192)
	r.clk.Drain()
	if st := r.m.Stats(); st.HintCalls != 2 {
		t.Errorf("aggregate HintCalls = %d, want 2 (retired + live)", st.HintCalls)
	}

	// Churn many sessions through one slot: the slice must not grow.
	for i := 0; i < 100; i++ {
		s := r.m.NewClient("session")
		s.HintSeg(f, 0, 4096)
		s.Close()
	}
	if n := len(r.m.clients); n > 3 {
		t.Errorf("clients slice grew to %d across churn, want <= 3", n)
	}

	// Closing twice must not double-free the slot.
	c.Close()
	c.Close()
	d := r.m.NewClient("D")
	e := r.m.NewClient("E")
	if d.ID() == e.ID() {
		t.Errorf("double Close double-freed slot: D and E share id %d", d.ID())
	}
}
