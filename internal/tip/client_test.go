package tip

import (
	"testing"

	"spechint/internal/cache"
)

func TestCancelAllScopedPerClient(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	fa := r.fs.MustCreate("a", make([]byte, 4096))
	fb := r.fs.MustCreate("b", make([]byte, 4096))
	ca := r.m.NewClient("A")
	cb := r.m.NewClient("B")

	ca.HintSeg(fa, 0, 2048)
	cb.HintSeg(fb, 0, 2048)
	r.clk.Drain() // let both prefetches land

	if !ca.Covered(fa, 0, 1024) || !cb.Covered(fb, 0, 1024) {
		t.Fatal("hints not live before cancel")
	}

	ca.CancelAll()

	if ca.Covered(fa, 0, 1024) {
		t.Error("A's hint survived A's CancelAll")
	}
	if !cb.Covered(fb, 0, 1024) {
		t.Error("B's hint was cancelled by A's CancelAll")
	}
	// A's prefetched blocks lost hint protection; B's kept it.
	if b := r.m.Cache().Get(fa.LogicalBlock(0)); b != nil && b.HintDist != cache.NoHint {
		t.Error("A's block still hint-protected after CancelAll")
	}
	if b := r.m.Cache().Get(fb.LogicalBlock(0)); b == nil || b.HintDist == cache.NoHint {
		t.Error("B's block lost hint protection to A's CancelAll")
	}
	// The cancel penalty lands on A's accuracy only.
	if ca.Accuracy() >= 1.0 {
		t.Errorf("A accuracy = %v after cancelled hints, want < 1", ca.Accuracy())
	}
	if cb.Accuracy() != 1.0 {
		t.Errorf("B accuracy = %v, want untouched 1.0", cb.Accuracy())
	}
	// Stats are scoped: the cancel call and cancelled segs belong to A.
	if st := ca.Stats(); st.CancelCalls != 1 || st.CancelledSegs != 1 {
		t.Errorf("A stats = %+v, want 1 cancel / 1 cancelled seg", st)
	}
	if st := cb.Stats(); st.CancelCalls != 0 || st.CancelledSegs != 0 {
		t.Errorf("B stats = %+v, want no cancel activity", st)
	}
	// The Manager aggregate still sees the union.
	if st := r.m.Stats(); st.HintCalls != 2 || st.CancelCalls != 1 {
		t.Errorf("aggregate stats = %+v, want 2 hints / 1 cancel", st)
	}
}

func TestAccuracyScopedPerClient(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	ca := r.m.NewClient("A")
	cb := r.m.NewClient("B")

	for i := 0; i < 8; i++ {
		ca.accObserve(false, 1)
		cb.accObserve(true, 1)
	}
	if ca.Accuracy() != 0 {
		t.Errorf("A accuracy = %v, want 0", ca.Accuracy())
	}
	if cb.Accuracy() != 1 {
		t.Errorf("B accuracy = %v, want 1", cb.Accuracy())
	}
	// Horizons scale per client.
	if h := ca.effHorizon(); h != r.m.cfg.MinHorizon {
		t.Errorf("A effHorizon = %d, want MinHorizon %d", h, r.m.cfg.MinHorizon)
	}
	if h := cb.effHorizon(); h != r.m.cfg.Horizon {
		t.Errorf("B effHorizon = %d, want full %d", h, r.m.cfg.Horizon)
	}
}

func TestReadaheadStopsAtEOF(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	// 3 blocks of 1024; read them sequentially so the run ramps up, ending
	// exactly at EOF. Read-ahead must never prefetch past the last block.
	f := r.fs.MustCreate("f", make([]byte, 3*1024))

	r.readSync(t, f, 0, 1024, false)
	r.readSync(t, f, 1024, 1024, false)
	r.readSync(t, f, 2048, 1024, false)
	r.clk.Drain()

	st := r.m.Stats()
	// The only prefetchable blocks are 1 and 2 (block 0 was the first demand
	// read); anything more would be past EOF.
	if st.RAPrefetches > 2 {
		t.Fatalf("RAPrefetches = %d, want <= 2 (file has 3 blocks)", st.RAPrefetches)
	}
	for b := int64(0); b < f.NBlocks(); b++ {
		if blk := r.m.Cache().Get(f.LogicalBlock(b)); blk == nil {
			t.Errorf("block %d not cached after sequential scan", b)
		}
	}

	// Reading the final bytes again keeps the run state pinned at EOF; this
	// must not panic or issue phantom fetches.
	before := r.m.Stats().RAPrefetches
	r.readSync(t, f, 2048, 1024, false)
	r.clk.Drain()
	if after := r.m.Stats().RAPrefetches; after != before {
		t.Errorf("re-read at EOF issued %d new RA prefetches", after-before)
	}
}

func TestHintAfterCancelAllRedisclosure(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 2048))
	c := r.m.NewClient("A")

	c.HintSeg(f, 0, 1024)
	r.clk.Drain()
	lb := f.LogicalBlock(0)
	if b := r.m.Cache().Get(lb); b == nil || b.HintDist == cache.NoHint {
		t.Fatal("hinted block not prefetched/protected")
	}

	c.CancelAll()
	if b := r.m.Cache().Get(lb); b == nil || b.HintDist != cache.NoHint {
		t.Fatal("CancelAll did not strip hint protection")
	}
	if c.Covered(f, 0, 1024) {
		t.Fatal("hint still covered after CancelAll")
	}

	// Re-disclose the same range: the resident block regains protection
	// without a second disk fetch, and a subsequent read consumes the hint.
	prefBefore := c.Stats().HintPrefetches
	c.HintSeg(f, 0, 1024)
	if !c.Covered(f, 0, 1024) {
		t.Fatal("re-disclosed hint not covered")
	}
	if b := r.m.Cache().Get(lb); b == nil || b.HintDist == cache.NoHint {
		t.Fatal("re-disclosed hint did not re-protect the cached block")
	}
	if got := c.Stats().HintPrefetches; got != prefBefore {
		t.Errorf("re-disclosure refetched a resident block (%d new prefetches)", got-prefBefore)
	}

	done := false
	if !c.Read(f, 0, 1024, true, func(error) { done = true }) {
		for !done {
			if !r.clk.RunNext() {
				t.Fatal("read never completed")
			}
		}
	}
	st := c.Stats()
	if st.HintedReadCalls != 1 || st.MatchedCalls != 1 {
		t.Errorf("stats = %+v, want the re-disclosed hint matched", st)
	}
	if st.CancelledSegs != 1 {
		t.Errorf("CancelledSegs = %d, want 1 (only the original)", st.CancelledSegs)
	}
}

func TestClientCloseReleasesProtection(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	f := r.fs.MustCreate("f", make([]byte, 2048))
	ca := r.m.NewClient("A")
	cb := r.m.NewClient("B")
	_ = cb

	ca.HintSeg(f, 0, 2048)
	r.clk.Drain()
	accBefore := ca.Accuracy()

	ca.Close()
	for b := int64(0); b < f.NBlocks(); b++ {
		if blk := r.m.Cache().Get(f.LogicalBlock(b)); blk != nil && blk.HintDist != cache.NoHint {
			t.Errorf("block %d still protected after Close", b)
		}
	}
	if r.m.Cache().HintedCount(ca.ID()) != 0 {
		t.Errorf("hinted count = %d after Close, want 0", r.m.Cache().HintedCount(ca.ID()))
	}
	// Close is not a cancel: no accuracy penalty.
	if ca.Accuracy() != accBefore {
		t.Errorf("accuracy changed on Close: %v -> %v", accBefore, ca.Accuracy())
	}
	// Hints after Close are dropped silently.
	ca.HintSeg(f, 0, 1024)
	if ca.Covered(f, 0, 1024) {
		t.Error("closed client accepted a hint")
	}
}

func TestPartitionsOnlyWithMultipleClients(t *testing.T) {
	// Horizon as deep as the cache so partition caps, not the prefetch
	// horizon, are the binding constraint.
	cfg := Config{CacheBlocks: 16, Horizon: 16, MinHorizon: 2}
	r := newRig(t, cfg, smallDisk())
	ca := r.m.NewClient("A")
	// One open client: unpartitioned, exactly like the single-process paper
	// configuration.
	f := r.fs.MustCreate("f", make([]byte, 16*1024))
	ca.HintSeg(f, 0, 16*1024)
	r.clk.Drain()
	if n := r.m.Cache().HintedCount(ca.ID()); n <= r.m.cfg.CacheBlocks/2 {
		t.Fatalf("single client capped at %d hinted blocks; want most of the cache", n)
	}

	// A second client triggers partitioning: neither may monopolise.
	cb := r.m.NewClient("B")
	g := r.fs.MustCreate("g", make([]byte, 16*1024))
	cb.HintSeg(g, 0, 16*1024)
	r.clk.Drain()
	total := r.m.Cache().Capacity()
	if n := r.m.Cache().HintedCount(cb.ID()); n >= total*3/4 {
		t.Errorf("client B holds %d/%d hinted blocks despite partitioning", n, total)
	}
}
