package tip

import (
	"testing"

	"spechint/internal/cache"
	"spechint/internal/disk"
	"spechint/internal/fault"
	"spechint/internal/sim"
)

// failNPlan builds a plan where the first n attempts at every block fail
// transiently — the guaranteed-recovery pattern the retry machinery is
// validated against.
func failNPlan(n int) *fault.Plan {
	p := fault.NewPlan(1)
	p.FailN = n
	return p
}

func deadDiskPlan(dk int, at sim.Time) *fault.Plan {
	p := fault.NewPlan(1)
	p.DieDisk = dk
	p.DieAt = at
	return p
}

func TestDemandReadRetriesTransientFaults(t *testing.T) {
	cfg := smallTIP()
	cfg.ReadaheadMax = 0 // isolate the demand block from read-ahead traffic
	r := newRig(t, cfg, smallDisk())
	r.arr.SetInjector(failNPlan(3))
	f := r.fs.MustCreate("a", make([]byte, 4096))

	var gotErr error
	done := false
	if r.m.Read(f, 0, 1024, false, func(err error) { done, gotErr = true, err }) {
		t.Fatal("miss read completed immediately")
	}
	for !done && r.clk.RunNext() {
	}
	if !done {
		t.Fatal("read never completed")
	}
	if gotErr != nil {
		t.Fatalf("read error %v; transient faults must be absorbed by retry", gotErr)
	}
	fc := r.m.Faults()
	if fc.FetchErrors != 3 || fc.FetchRetries != 3 {
		t.Fatalf("FetchErrors=%d FetchRetries=%d, want 3 and 3", fc.FetchErrors, fc.FetchRetries)
	}
	if fc.FailedDemand != 0 || fc.DemotedBlocks != 0 {
		t.Fatalf("demand retry leaked into FailedDemand=%d / DemotedBlocks=%d", fc.FailedDemand, fc.DemotedBlocks)
	}
}

func TestPrefetchDemotedAfterRepeatedFailures(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxFetchRetries = 2
	r := newRig(t, cfg, smallDisk())
	r.arr.SetInjector(failNPlan(100)) // never recovers within the retry budget
	f := r.fs.MustCreate("a", make([]byte, 8192))

	r.m.HintSeg(f, 0, 2048) // prefetch blocks 0 and 1
	r.clk.Drain()

	fc := r.m.Faults()
	if fc.DemotedBlocks == 0 {
		t.Fatalf("no blocks demoted under persistent failure: %+v", fc)
	}
	// Demoted blocks are released, not wedged in transit.
	if got := r.m.Cache().Stats().FailedLoads; got == 0 {
		t.Fatal("demotion did not resolve the in-transit blocks")
	}
	// The hinted pump must not resubmit demoted blocks.
	before := r.arr.Stats().PrefetchReqs
	r.m.pump()
	r.clk.Drain()
	if after := r.arr.Stats().PrefetchReqs; after != before {
		t.Fatalf("pump resubmitted demoted blocks: %d -> %d prefetches", before, after)
	}
}

func TestDemandReadClearsDemotion(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxFetchRetries = 1
	r := newRig(t, cfg, smallDisk())
	plan := failNPlan(5)
	r.arr.SetInjector(plan)
	f := r.fs.MustCreate("a", make([]byte, 4096))

	r.m.HintSeg(f, 0, 1024)
	r.clk.Drain() // prefetch fails twice, block demoted
	if r.m.Faults().DemotedBlocks == 0 {
		t.Fatal("setup: block not demoted")
	}

	// The demand read fetches the block itself, retrying past the remaining
	// fail-N failures, and clears the demotion on success.
	if gotErr := func() error {
		var e error
		done := false
		if r.m.Read(f, 0, 1024, true, func(err error) { done, e = true, err }) {
			return nil
		}
		for !done && r.clk.RunNext() {
		}
		if !done {
			t.Fatal("demand read of demoted block never completed")
		}
		return e
	}(); gotErr != nil {
		t.Fatalf("demand read failed: %v", gotErr)
	}
	if len(r.m.demoted) != 0 {
		t.Fatalf("demotion not cleared on success: %v", r.m.demoted)
	}
}

func TestDeadDiskSuppressesPrefetchKeepsDemand(t *testing.T) {
	r := newRig(t, smallTIP(), smallDisk())
	r.arr.SetInjector(deadDiskPlan(0, 1))
	r.clk.Advance(10)
	f := r.fs.MustCreate("a", make([]byte, 8192))

	// Wake the array's death detection: the first touch of disk 0 marks it.
	var first error
	done := false
	r.m.Read(f, 0, 1024, false, func(err error) { done, first = true, err }) // block 0 -> disk 0
	for !done && r.clk.RunNext() {
	}
	if first == nil {
		t.Fatal("demand read on a dead disk must fail")
	}
	if !r.m.Degraded() {
		t.Fatal("manager not degraded with a dead disk")
	}

	// Hints whose blocks map to the dead disk are skipped, not fetched.
	prefBefore := r.arr.Stats().PrefetchReqs
	r.m.HintSeg(f, 0, 8192)
	r.clk.Drain()
	fc := r.m.Faults()
	if fc.DeadSkips == 0 {
		t.Fatalf("no DeadSkips recorded: %+v", fc)
	}
	// Blocks on the surviving disk still prefetch.
	if r.arr.Stats().PrefetchReqs == prefBefore {
		t.Fatal("degraded mode stopped prefetching the surviving disk too")
	}
	if fc.FailedDemand != 1 {
		t.Fatalf("FailedDemand = %d, want 1", fc.FailedDemand)
	}
}

// TestCancelAllWithErroredInflightPrefetch is the satellite regression: a
// CANCEL_ALL racing an in-flight prefetch whose disk request errors must
// neither leak a pinned buffer nor double-complete the block.
func TestCancelAllWithErroredInflightPrefetch(t *testing.T) {
	cfg := smallTIP()
	cfg.MaxFetchRetries = 0 // first failure demotes immediately
	r := newRig(t, cfg, smallDisk())
	r.arr.SetInjector(failNPlan(1))
	f := r.fs.MustCreate("a", make([]byte, 4096))

	c := r.m.NewClient("spec")
	c.HintSeg(f, 0, 1024) // prefetch in flight, will error
	if r.m.Cache().Get(f.LogicalBlock(0)) == nil {
		t.Fatal("setup: no prefetch in transit")
	}
	c.CancelAll() // hints cancelled while the request is still in flight
	r.clk.Drain() // the errored completion lands after the cancel

	lb := f.LogicalBlock(0)
	if b := r.m.Cache().Get(lb); b != nil {
		t.Fatalf("errored prefetch left block %d in state %v after CANCEL_ALL", lb, b.State())
	}
	if n := r.m.Cache().Len(); n != 0 {
		t.Fatalf("%d buffers leaked", n)
	}
	// The errored block was demoted, so hints skip it; the eventual demand
	// read must fetch it from scratch (no stale inflight entry, no
	// double-completion panic from a late Done) and clear the demotion.
	c2 := r.m.NewClient("reader")
	done, gotErr := false, error(nil)
	if !c2.Read(f, 0, 1024, false, func(err error) { done, gotErr = true, err }) {
		for !done && r.clk.RunNext() {
		}
		if !done {
			t.Fatal("demand read after cancel never completed")
		}
	}
	if gotErr != nil {
		t.Fatalf("demand read after cancel: %v", gotErr)
	}
	if b := r.m.Cache().Get(lb); b == nil || b.State() != cache.Valid {
		t.Fatal("block not cleanly refetchable after the errored/cancelled prefetch")
	}
	if len(r.m.demoted) != 0 {
		t.Fatal("demotion survived a successful demand fetch")
	}
}

// TestRetryBackoffCapped pins the virtual-time backoff schedule.
func TestRetryBackoffCapped(t *testing.T) {
	var c Config
	c.RetryBaseCycles = 100
	c.RetryCapCycles = 350
	want := []sim.Time{100, 200, 350, 350}
	for i, w := range want {
		if got := c.retryBackoff(i + 1); got != w {
			t.Fatalf("retryBackoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	// Defaults apply when zero; huge attempts must not overflow.
	var d Config
	if got := d.retryBackoff(64); got != sim.Time(defaultRetryCap) {
		t.Fatalf("default capped backoff = %d, want %d", got, defaultRetryCap)
	}
}

var _ disk.Injector = (*fault.Plan)(nil)
