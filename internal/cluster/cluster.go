package cluster

// This file is the cluster harness and the client-side engine: New wires the
// ring, the shards and the population onto one shared virtual clock; Run
// drives the event loop until every session has completed and freezes the
// per-shard accounting at the end time. Each client is a small state
// machine — sessions arrive by the population's Poisson schedule, queue FIFO
// behind the client's running session, disclose their reads per shard, then
// issue each read as per-shard parts with think time between ops.
//
// The client side is where the overload-survival layer closes its loop: a
// part that comes back SHED/EIO/DEAD is retried with capped, seeded-jitter
// exponential backoff under a per-op virtual-time deadline; a per-shard
// circuit breaker fails fast toward shards that keep refusing; and when the
// fault plan kills a shard mid-run, the ring re-routes its keys so retries
// land on the surviving owner — the session re-opens there and its remaining
// reads are re-disclosed as hints before the retried read arrives.

import (
	"fmt"

	"spechint/internal/cache"
	"spechint/internal/clients"
	"spechint/internal/core"
	"spechint/internal/disk"
	"spechint/internal/fault"
	"spechint/internal/obs"
	"spechint/internal/sim"
	"spechint/internal/tip"
)

// Config shapes a cluster. All times are virtual CPU cycles on the shared
// clock (233 MHz testbed scale).
type Config struct {
	Shards int // server nodes
	VNodes int // ring points per shard

	// GroupBlocks is the placement-group size in blocks: runs of GroupBlocks
	// consecutive file blocks share an owner, trading per-block placement
	// freedom for sequential locality within a shard's disk array.
	GroupBlocks int64

	// Clients is the population shape the shards build their corpus replicas
	// from. New overwrites it with the population's own config, so callers
	// never need to keep the two in sync by hand.
	Clients clients.Config

	Disk disk.Config // per-shard array
	TIP  tip.Config  // per-shard manager (cache partition included)

	// NetCycles is the one-way client<->shard network latency; every request
	// and every reply pays it once.
	NetCycles int64

	// Hint ingestion batching: queued segments apply after HintBatchCycles,
	// or immediately once HintBatchMax are queued (0 disables the size cap).
	HintBatchCycles int64
	HintBatchMax    int

	// Hints disables disclosure entirely when false: every read is unhinted,
	// the baseline the hinted runs are measured against.
	Hints bool

	// MaxInflight bounds how many read parts a shard serves concurrently;
	// excess parts wait in the shard's admission queue. 0 dispatches every
	// part immediately (no queueing layer — the original behavior).
	MaxInflight int

	// Admission arms load shedding at the shard boundary (requires
	// MaxInflight > 0): a part is shed when the queue's predicted wait
	// (depth x recent mean service / MaxInflight) exceeds LatencyBudget, or
	// when the queue holds QueueCap parts. Priority dequeues reads of
	// sessions already in flight ahead of new sessions' first reads.
	Admission     bool
	QueueCap      int
	LatencyBudget int64
	Priority      bool

	// Retry is the client-side reaction to SHED/EIO/DEAD replies: capped
	// exponential backoff with deterministic seeded jitter, bounded by
	// MaxAttempts sends per part and an optional per-op deadline.
	Retry clients.RetryPolicy

	// Breaker configures each client's per-shard circuit breaker; the zero
	// value disables it.
	Breaker clients.BreakerConfig

	// Fault, when non-nil, is the shard-level fault schedule: it can kill a
	// shard outright mid-run (the ring re-routes its keys to survivors) or
	// brown one out over a window (its service stretches, so admission
	// control starts shedding).
	Fault *fault.Plan

	// DetectCycles is the failure-detection latency: after the fault plan
	// kills a shard, clients keep routing to it — and collecting DEAD
	// replies — for DetectCycles before the ring marks it dead and re-routes
	// its keys. 0 means detection is instantaneous.
	DetectCycles int64

	// MaxCycles aborts a runaway run (0 = no bound).
	MaxCycles int64

	// Obs, when non-nil, receives every shard's lanes and gauges under
	// "sN:"-prefixed views of this one trace, plus cluster-wide overload
	// gauges (shed/retry totals, open breakers).
	Obs *obs.Trace
}

// DefaultConfig returns a cluster of `shards` nodes at testbed scale: two
// HP-C2247 disks and a 4 MB TIP cache per shard, 64 ring vnodes, 64 KB
// placement groups (one stripe unit), ~100 us one-way network, ~2 ms hint
// batch window. The admission layer is off (unbounded queueing, no retries
// are ever needed because nothing sheds or dies); see OverloadConfig.
func DefaultConfig(shards int) Config {
	tcfg := tip.DefaultConfig()
	tcfg.CacheBlocks = 4 << 20 / 8192
	return Config{
		Shards:          shards,
		VNodes:          64,
		GroupBlocks:     8,
		Disk:            core.TestbedDisk(2),
		TIP:             tcfg,
		NetCycles:       23_300,  // ~100 us at 233 MHz
		HintBatchCycles: 466_000, // ~2 ms
		HintBatchMax:    64,
		Hints:           true,
		Retry: clients.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 466_000,    // ~2 ms, then 4, 8 ms ...
			MaxBackoff:  37_280_000, // capped at ~160 ms
			JitterSeed:  1,
		},
		Breaker:      clients.BreakerConfig{TripAfter: 8, Cooldown: 11_650_000}, // ~50 ms
		DetectCycles: 2_330_000,                                                 // ~10 ms failure detector
		MaxCycles:    1 << 42,
	}
}

// OverloadConfig is DefaultConfig with the overload-survival layer armed:
// bounded per-shard queues, cost-based admission against a latency budget,
// priority for in-flight sessions, and a per-op deadline so a client
// eventually gives up on a read the cluster cannot serve.
func OverloadConfig(shards int) Config {
	cfg := DefaultConfig(shards)
	cfg.MaxInflight = 4 * cfg.Disk.NumDisks
	cfg.Admission = true
	cfg.QueueCap = 64
	cfg.LatencyBudget = 23_300_000 // ~100 ms predicted queue wait
	cfg.Priority = true
	cfg.Retry.MaxAttempts = 8        // overload sheds often; keep trying
	cfg.Retry.Deadline = 932_000_000 // ~4 s per read op, retries included
	return cfg
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Shards < 1:
		return fmt.Errorf("cluster: Shards = %d, want >= 1", c.Shards)
	case c.VNodes < 1:
		return fmt.Errorf("cluster: VNodes = %d, want >= 1", c.VNodes)
	case c.GroupBlocks < 1:
		return fmt.Errorf("cluster: GroupBlocks = %d, want >= 1", c.GroupBlocks)
	case c.NetCycles < 0 || c.HintBatchCycles < 0 || c.HintBatchMax < 0:
		return fmt.Errorf("cluster: negative NetCycles, HintBatchCycles or HintBatchMax")
	case c.MaxInflight < 0 || c.QueueCap < 0 || c.LatencyBudget < 0 || c.DetectCycles < 0:
		return fmt.Errorf("cluster: negative MaxInflight, QueueCap, LatencyBudget or DetectCycles")
	case c.Admission && c.MaxInflight < 1:
		return fmt.Errorf("cluster: Admission requires MaxInflight >= 1 (got %d)", c.MaxInflight)
	case c.Admission && c.QueueCap < 1 && c.LatencyBudget < 1:
		return fmt.Errorf("cluster: Admission requires a QueueCap or a LatencyBudget")
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if err := c.Breaker.Validate(); err != nil {
		return err
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
		if c.Fault.DieShard >= c.Shards {
			return fmt.Errorf("cluster: fault plan kills shard %d of %d", c.Fault.DieShard, c.Shards)
		}
		if c.Fault.DieShard >= 0 && c.Shards < 2 {
			return fmt.Errorf("cluster: cannot kill the only shard")
		}
		if c.Fault.BrownShard >= c.Shards {
			return fmt.Errorf("cluster: fault plan browns out shard %d of %d", c.Fault.BrownShard, c.Shards)
		}
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.TIP.Validate(); err != nil {
		return err
	}
	if int64(c.Disk.BlockSize) != c.Clients.BlockSize {
		return fmt.Errorf("cluster: disk block size %d != population block size %d",
			c.Disk.BlockSize, c.Clients.BlockSize)
	}
	return nil
}

// Cluster is one wired simulation instance. Build with New, drive with Run.
type Cluster struct {
	cfg      Config
	clk      *sim.Queue
	ring     *Ring
	shards   []*shard
	cls      []*clientRun
	fileSize int64

	remaining int // sessions not yet finished
	doneAt    sim.Time
}

// New wires a cluster for the given population. The population's config
// becomes cfg.Clients, so the corpus replicas match the generated schedules
// by construction.
func New(cfg Config, pop *clients.Population) (*Cluster, error) {
	cfg.Clients = pop.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		clk:      sim.NewQueue(),
		ring:     ring,
		fileSize: cfg.Clients.FileBlocks * cfg.Clients.BlockSize,
	}
	// One zero-filled buffer backs every file of every shard's corpus replica
	// (fsim files reference their data, they do not copy it).
	corpus := make([]byte, c.fileSize)
	for i := 0; i < cfg.Shards; i++ {
		s, err := newShard(i, c.clk, &c.cfg, corpus)
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, s)
	}
	for i, cl := range pop.Clients {
		cr := &clientRun{c: c, id: i, sessions: cl.Sessions}
		if cfg.Breaker.TripAfter > 0 {
			cr.breakers = make([]*clients.Breaker, cfg.Shards)
			for sh := range cr.breakers {
				cr.breakers[sh] = clients.NewBreaker(cfg.Breaker)
			}
		}
		c.cls = append(c.cls, cr)
		c.remaining += len(cl.Sessions)
	}
	if cfg.Obs != nil {
		c.installObs(cfg.Obs)
	}
	return c, nil
}

// installObs contributes the cluster-wide overload gauges: total sheds seen
// by clients, total retries sent, and how many per-shard breakers are not
// closed right now.
func (c *Cluster) installObs(tr *obs.Trace) {
	tr.AddGauge("client_sheds_seen", func() float64 {
		var n int64
		for _, cr := range c.cls {
			n += cr.shedSeen
		}
		return float64(n)
	})
	tr.AddGauge("client_retries", func() float64 {
		var n int64
		for _, cr := range c.cls {
			n += cr.retries
		}
		return float64(n)
	})
	tr.AddGauge("breakers_open", func() float64 {
		now := int64(c.clk.Now())
		open := 0
		for _, cr := range c.cls {
			for _, b := range cr.breakers {
				if b.State(now) != clients.BreakerClosed {
					open++
				}
			}
		}
		return float64(open)
	})
}

// Run drives the event loop until every session has completed, then freezes
// the shards at the end time. It may be called once.
func (c *Cluster) Run() (*Result, error) {
	for _, cr := range c.cls {
		for si := range cr.sessions {
			si, cr := si, cr
			c.clk.Schedule(sim.Time(cr.sessions[si].At), func() { cr.arrive(si) })
		}
	}
	if p := c.cfg.Fault; p != nil && p.DieShard >= 0 {
		id := p.DieShard
		// The shard dies first; the ring learns DetectCycles later. In the
		// window between, clients still route to the corpse, collect DEAD
		// replies and burn retry attempts — the failure-detection latency a
		// real cluster pays.
		c.clk.Schedule(p.DieShardAt, func() { c.shards[id].die() })
		c.clk.Schedule(p.DieShardAt+sim.Time(c.cfg.DetectCycles), func() { c.ring.MarkDead(id) })
	}
	for c.remaining > 0 {
		if !c.clk.RunTick() {
			return nil, fmt.Errorf("cluster: event queue drained with %d sessions unfinished", c.remaining)
		}
		if c.cfg.MaxCycles > 0 && int64(c.clk.Now()) > c.cfg.MaxCycles {
			return nil, fmt.Errorf("cluster: exceeded MaxCycles = %d", c.cfg.MaxCycles)
		}
		c.cfg.Obs.Tick(c.clk.Now())
	}
	c.doneAt = c.clk.Now()
	for _, s := range c.shards {
		s.freeze(c.doneAt)
		s.tm.FinishRun()
	}
	return c.result(), nil
}

// ---------------------------------------------------------------- clients --

// clientRun is the live state machine of one population client.
type clientRun struct {
	c        *Cluster
	id       int
	sessions []clients.Session

	pending []int // arrived, not yet started (FIFO open queue)
	running bool
	cur     int   // session index in flight
	op      int   // next read op
	touched []int // shards this session has messaged (close targets)

	breakers []*clients.Breaker // per-shard; nil when the breaker is disabled

	issueAt   sim.Time
	deadline  sim.Time // absolute per-op deadline; 0 = none
	opFailed  bool     // some part of the current op was abandoned
	partsLeft int
	curThink  int64

	lats  []int64 // per-read latency, cycles, completion order
	reads int64

	// Resilience counters (aggregated into Result).
	retries     int64 // part resends (attempt > 0)
	shedSeen    int64 // SHED replies received
	deadSeen    int64 // DEAD replies received
	eioSeen     int64 // EIO replies received
	brokerFast  int64 // parts failed fast by an open breaker, no message sent
	failedReads int64 // ops abandoned after retries/deadline
}

// arrive queues session si; if the client is idle it starts immediately.
func (cr *clientRun) arrive(si int) {
	cr.pending = append(cr.pending, si)
	if !cr.running {
		cr.start()
	}
}

// touch records a shard as messaged by the current session (dedup'd).
func (cr *clientRun) touch(sh int) {
	for _, t := range cr.touched {
		if t == sh {
			return
		}
	}
	cr.touched = append(cr.touched, sh)
}

func (cr *clientRun) hasTouched(sh int) bool {
	for _, t := range cr.touched {
		if t == sh {
			return true
		}
	}
	return false
}

// start opens the next pending session: disclose the whole session's read
// span per shard (one Hint message each), then issue the first read.
func (cr *clientRun) start() {
	cr.cur = cr.pending[0]
	cr.pending = cr.pending[1:]
	cr.running = true
	cr.op = 0
	cr.touched = nil

	c := cr.c
	sess := cr.sessions[cr.cur]
	key := SessionKey{Client: cr.id, Session: cr.cur}
	if c.cfg.Hints && len(sess.Reads) > 0 {
		lastOp := sess.Reads[len(sess.Reads)-1]
		span := lastOp.Off + lastOp.N
		parts := splitRange(c.ring, c.cfg.GroupBlocks, c.cfg.Clients.BlockSize, sess.File, 0, span, c.fileSize)
		var order []int
		byShard := make(map[int][]HintSeg)
		for _, p := range parts {
			if _, ok := byShard[p.Shard]; !ok {
				order = append(order, p.Shard)
			}
			byShard[p.Shard] = append(byShard[p.Shard], HintSeg{File: sess.File, Off: p.Off, N: p.N})
		}
		for _, shid := range order {
			segs := byShard[shid]
			cr.touch(shid)
			target := c.shards[shid]
			c.clk.After(sim.Time(c.cfg.NetCycles), func() { target.serveHints(key, segs) })
		}
	}
	cr.issueOp()
}

// issueOp sends the current read op as per-shard parts, or finishes the
// session when the ops are exhausted.
func (cr *clientRun) issueOp() {
	c := cr.c
	sess := cr.sessions[cr.cur]
	if cr.op >= len(sess.Reads) {
		cr.finish()
		return
	}
	r := sess.Reads[cr.op]
	if r.Off >= cr.fileEnd() || r.Off < 0 { // degenerate op (outside the file): skip it
		cr.op++
		cr.issueOp()
		return
	}
	cr.partsLeft = 1
	cr.opFailed = false
	cr.issueAt = c.clk.Now()
	cr.deadline = 0
	if d := c.cfg.Retry.Deadline; d > 0 {
		cr.deadline = cr.issueAt + sim.Time(d)
	}
	cr.curThink = r.Think
	cr.sendPart(r.Off, r.N, 0)
}

// fileEnd returns the corpus file size (every file is the same size).
func (cr *clientRun) fileEnd() int64 { return cr.c.fileSize }

// discloseTo re-discloses the rest of the session's read span to a shard the
// session has not messaged before — the failover path: when the ring
// re-routes a dead shard's keys, the new owner receives the hints it needs
// before (in virtual time: concurrently with) the retried read.
func (cr *clientRun) discloseTo(shid int, fromOff int64) {
	c := cr.c
	if !c.cfg.Hints {
		return
	}
	sess := cr.sessions[cr.cur]
	if len(sess.Reads) == 0 {
		return
	}
	lastOp := sess.Reads[len(sess.Reads)-1]
	span := lastOp.Off + lastOp.N
	if fromOff >= span {
		return
	}
	key := SessionKey{Client: cr.id, Session: cr.cur}
	parts := splitRange(c.ring, c.cfg.GroupBlocks, c.cfg.Clients.BlockSize, sess.File, fromOff, span-fromOff, c.fileSize)
	var segs []HintSeg
	for _, p := range parts {
		if p.Shard == shid {
			segs = append(segs, HintSeg{File: sess.File, Off: p.Off, N: p.N})
		}
	}
	if len(segs) == 0 {
		return
	}
	target := c.shards[shid]
	c.clk.After(sim.Time(c.cfg.NetCycles), func() { target.serveHints(key, segs) })
}

// sendPart routes the byte range [off, off+n) through the ring — at send
// time, so a failover between attempts re-routes it — and issues one message
// per owner part. attempt 0 is the first send; retries carry their attempt
// number so shards can count them.
func (cr *clientRun) sendPart(off, n int64, attempt int) {
	c := cr.c
	sess := cr.sessions[cr.cur]
	key := SessionKey{Client: cr.id, Session: cr.cur}
	parts := splitRange(c.ring, c.cfg.GroupBlocks, c.cfg.Clients.BlockSize, sess.File, off, n, c.fileSize)
	if len(parts) == 0 {
		// The range fell entirely outside the file (clamped away): resolve
		// the pending part slot as served-empty.
		cr.partDone()
		return
	}
	cr.partsLeft += len(parts) - 1
	now := int64(c.clk.Now())
	for _, p := range parts {
		p := p
		if br := cr.breaker(p.Shard); br != nil && !br.Allow(now) {
			// Fail fast: the breaker is open, don't even pay the network.
			cr.brokerFast++
			cr.partFailed(p.Off, p.N, attempt)
			continue
		}
		if !cr.hasTouched(p.Shard) {
			cr.discloseTo(p.Shard, p.Off)
		}
		cr.touch(p.Shard)
		if attempt > 0 {
			cr.retries++
		}
		retry := attempt > 0
		target := c.shards[p.Shard]
		c.clk.After(sim.Time(c.cfg.NetCycles), func() {
			target.serveRead(key, sess.File, p.Off, p.N, retry, func(st Status) {
				c.clk.After(sim.Time(c.cfg.NetCycles), func() { cr.partReply(p, attempt, st) })
			})
		})
	}
}

// breaker returns this client's breaker toward a shard, or nil when breakers
// are disabled.
func (cr *clientRun) breaker(sh int) *clients.Breaker {
	if cr.breakers == nil {
		return nil
	}
	return cr.breakers[sh]
}

// partReply handles one part's response: success resolves the part, anything
// else feeds the breaker and enters the retry path.
func (cr *clientRun) partReply(p ReadPart, attempt int, st Status) {
	now := int64(cr.c.clk.Now())
	br := cr.breaker(p.Shard)
	if st == StatusOK {
		if br != nil {
			br.OnSuccess()
		}
		cr.partDone()
		return
	}
	if br != nil {
		br.OnFailure(now)
	}
	switch st {
	case StatusShed:
		cr.shedSeen++
	case StatusDead:
		cr.deadSeen++
	case StatusEIO:
		cr.eioSeen++
	}
	cr.partFailed(p.Off, p.N, attempt)
}

// partFailed decides between retrying the range after a jittered backoff and
// abandoning the op: attempts are bounded by Retry.MaxAttempts and the next
// retry must still fit under the op's deadline.
func (cr *clientRun) partFailed(off, n int64, attempt int) {
	c := cr.c
	rp := c.cfg.Retry
	sends := attempt + 1
	if sends < rp.MaxAttempts {
		backoff := rp.Backoff(cr.id, cr.cur, cr.op, attempt+1)
		if cr.deadline == 0 || c.clk.Now()+sim.Time(backoff) <= cr.deadline {
			c.clk.After(sim.Time(backoff), func() { cr.sendPart(off, n, attempt+1) })
			return
		}
	}
	cr.opFailed = true
	cr.partDone()
}

// partDone resolves one pending part slot; when the op's last slot resolves,
// a fully served op records its latency (a failed op records a failure
// instead) and the next op is scheduled after the think time.
func (cr *clientRun) partDone() {
	cr.partsLeft--
	if cr.partsLeft > 0 {
		return
	}
	c := cr.c
	if cr.opFailed {
		cr.failedReads++
	} else {
		cr.lats = append(cr.lats, int64(c.clk.Now()-cr.issueAt))
		cr.reads++
	}
	cr.op++
	c.clk.After(sim.Time(cr.curThink), cr.issueOp)
}

// finish closes the session on every shard it touched and starts the next
// queued session, if any.
func (cr *clientRun) finish() {
	c := cr.c
	key := SessionKey{Client: cr.id, Session: cr.cur}
	for _, shid := range cr.touched {
		target := c.shards[shid]
		c.clk.After(sim.Time(c.cfg.NetCycles), func() { target.closeSession(key) })
	}
	cr.running = false
	c.remaining--
	if len(cr.pending) > 0 {
		cr.start()
	}
}

// ---------------------------------------------------------------- results --

// ClientResult summarizes one client's view of the run.
type ClientResult struct {
	ID       int
	Sessions int
	Reads    int64
	Failed   int64 // ops abandoned after retries/deadline
	Retries  int64
	MeanLat  float64 // mean read latency, cycles
	MaxLat   int64
}

// ShardResult is one shard's complete accounting: protocol counters, the
// exhaustive stall buckets, and the TIP/cache/disk layer stats beneath.
type ShardResult struct {
	ID      int
	Buckets Buckets
	Stats   ShardStats
	Tip     tip.Stats
	Cache   cache.Stats
	Disk    disk.Stats
}

// Result is the outcome of one cluster run.
type Result struct {
	Elapsed sim.Time
	Reads   int64 // fully served read ops
	Blocks  int64

	// Overload/failure accounting, cluster-wide.
	FailedReads  int64 // ops abandoned after retries/deadline
	Retries      int64 // part resends
	ShedSeen     int64 // SHED replies clients received
	DeadSeen     int64 // DEAD replies clients received
	EIOSeen      int64 // EIO replies clients received
	BreakerFast  int64 // parts failed fast by open breakers (no message sent)
	BreakerTrips int64 // breaker openings across all clients

	// Latencies holds every served read's latency in cycles, client-id order
	// then completion order within a client — a deterministic ordering
	// suitable for percentile extraction. Failed ops contribute no sample.
	Latencies []int64

	Clients []ClientResult
	Shards  []ShardResult

	hintBatchMax int  // for Check
	admission    bool // for Check
	queueCap     int  // for Check
}

// Seconds converts the run's elapsed virtual time to testbed seconds.
func (r *Result) Seconds() float64 { return float64(r.Elapsed) / core.CPUHz }

// Throughput returns completed reads per testbed second.
func (r *Result) Throughput() float64 {
	if s := r.Seconds(); s > 0 {
		return float64(r.Reads) / s
	}
	return 0
}

// Check verifies the run's conservation invariants and returns the first
// violation: every shard's stall buckets must sum exactly to elapsed, every
// offered part must be ruled exactly once (Admitted + Shed + Failed ==
// Offered), the hint ingestion queue must never have exceeded its cap, and
// the admission queue must never have exceeded QueueCap. Tests and the bench
// experiments fail loudly on any violation.
func (r *Result) Check() error {
	for _, s := range r.Shards {
		if got := s.Buckets.Total(); got != int64(r.Elapsed) {
			return fmt.Errorf("cluster: shard %d stall buckets sum to %d, elapsed %d", s.ID, got, r.Elapsed)
		}
		st := s.Stats
		if st.Admitted+st.Shed+st.Failed != st.Offered {
			return fmt.Errorf("cluster: shard %d conservation: admitted %d + shed %d + failed %d != offered %d",
				s.ID, st.Admitted, st.Shed, st.Failed, st.Offered)
		}
		if st.ReadParts != st.Admitted {
			return fmt.Errorf("cluster: shard %d served %d parts but admitted %d", s.ID, st.ReadParts, st.Admitted)
		}
		if r.hintBatchMax > 0 && st.PeakIngest > r.hintBatchMax {
			return fmt.Errorf("cluster: shard %d ingestion queue peaked at %d, cap %d", s.ID, st.PeakIngest, r.hintBatchMax)
		}
		if r.admission && r.queueCap > 0 && st.PeakQueue > r.queueCap {
			return fmt.Errorf("cluster: shard %d admission queue peaked at %d, cap %d", s.ID, st.PeakQueue, r.queueCap)
		}
		if !r.admission && st.Shed != 0 {
			return fmt.Errorf("cluster: shard %d shed %d parts with admission disabled", s.ID, st.Shed)
		}
	}
	return nil
}

func (c *Cluster) result() *Result {
	res := &Result{
		Elapsed:      c.doneAt,
		hintBatchMax: c.cfg.HintBatchMax,
		admission:    c.cfg.Admission,
		queueCap:     c.cfg.QueueCap,
	}
	for _, cr := range c.cls {
		sum := int64(0)
		mx := int64(0)
		for _, l := range cr.lats {
			sum += l
			if l > mx {
				mx = l
			}
		}
		mean := 0.0
		if len(cr.lats) > 0 {
			mean = float64(sum) / float64(len(cr.lats))
		}
		res.Clients = append(res.Clients, ClientResult{
			ID: cr.id, Sessions: len(cr.sessions), Reads: cr.reads,
			Failed: cr.failedReads, Retries: cr.retries,
			MeanLat: mean, MaxLat: mx,
		})
		res.Reads += cr.reads
		res.FailedReads += cr.failedReads
		res.Retries += cr.retries
		res.ShedSeen += cr.shedSeen
		res.DeadSeen += cr.deadSeen
		res.EIOSeen += cr.eioSeen
		res.BreakerFast += cr.brokerFast
		for _, b := range cr.breakers {
			res.BreakerTrips += b.Trips()
		}
		res.Latencies = append(res.Latencies, cr.lats...)
	}
	for _, s := range c.shards {
		res.Blocks += s.tm.Stats().ReadBlocks
		res.Shards = append(res.Shards, ShardResult{
			ID:      s.id,
			Buckets: s.buckets,
			Stats:   s.stats,
			Tip:     s.tm.Stats(),
			Cache:   s.tm.Cache().Stats(),
			Disk:    s.arr.Stats(),
		})
	}
	return res
}
