package cluster

// This file is the cluster harness and the client-side engine: New wires the
// ring, the shards and the population onto one shared virtual clock; Run
// drives the event loop until every session has completed and freezes the
// per-shard accounting at the end time. Each client is a small state
// machine — sessions arrive by the population's Poisson schedule, queue FIFO
// behind the client's running session, disclose their reads per shard, then
// issue each read as per-shard parts with think time between ops.

import (
	"fmt"

	"spechint/internal/cache"
	"spechint/internal/clients"
	"spechint/internal/core"
	"spechint/internal/disk"
	"spechint/internal/obs"
	"spechint/internal/sim"
	"spechint/internal/tip"
)

// Config shapes a cluster. All times are virtual CPU cycles on the shared
// clock (233 MHz testbed scale).
type Config struct {
	Shards int // server nodes
	VNodes int // ring points per shard

	// GroupBlocks is the placement-group size in blocks: runs of GroupBlocks
	// consecutive file blocks share an owner, trading per-block placement
	// freedom for sequential locality within a shard's disk array.
	GroupBlocks int64

	// Clients is the population shape the shards build their corpus replicas
	// from. New overwrites it with the population's own config, so callers
	// never need to keep the two in sync by hand.
	Clients clients.Config

	Disk disk.Config // per-shard array
	TIP  tip.Config  // per-shard manager (cache partition included)

	// NetCycles is the one-way client<->shard network latency; every request
	// and every reply pays it once.
	NetCycles int64

	// Hint ingestion batching: queued segments apply after HintBatchCycles,
	// or immediately once HintBatchMax are queued (0 disables the size cap).
	HintBatchCycles int64
	HintBatchMax    int

	// Hints disables disclosure entirely when false: every read is unhinted,
	// the baseline the hinted runs are measured against.
	Hints bool

	// MaxCycles aborts a runaway run (0 = no bound).
	MaxCycles int64

	// Obs, when non-nil, receives every shard's lanes and gauges under
	// "sN:"-prefixed views of this one trace.
	Obs *obs.Trace
}

// DefaultConfig returns a cluster of `shards` nodes at testbed scale: two
// HP-C2247 disks and a 4 MB TIP cache per shard, 64 ring vnodes, 64 KB
// placement groups (one stripe unit), ~100 us one-way network, ~2 ms hint
// batch window.
func DefaultConfig(shards int) Config {
	tcfg := tip.DefaultConfig()
	tcfg.CacheBlocks = 4 << 20 / 8192
	return Config{
		Shards:          shards,
		VNodes:          64,
		GroupBlocks:     8,
		Disk:            core.TestbedDisk(2),
		TIP:             tcfg,
		NetCycles:       23_300,  // ~100 us at 233 MHz
		HintBatchCycles: 466_000, // ~2 ms
		HintBatchMax:    64,
		Hints:           true,
		MaxCycles:       1 << 42,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Shards < 1:
		return fmt.Errorf("cluster: Shards = %d, want >= 1", c.Shards)
	case c.VNodes < 1:
		return fmt.Errorf("cluster: VNodes = %d, want >= 1", c.VNodes)
	case c.GroupBlocks < 1:
		return fmt.Errorf("cluster: GroupBlocks = %d, want >= 1", c.GroupBlocks)
	case c.NetCycles < 0 || c.HintBatchCycles < 0 || c.HintBatchMax < 0:
		return fmt.Errorf("cluster: negative NetCycles, HintBatchCycles or HintBatchMax")
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.TIP.Validate(); err != nil {
		return err
	}
	if int64(c.Disk.BlockSize) != c.Clients.BlockSize {
		return fmt.Errorf("cluster: disk block size %d != population block size %d",
			c.Disk.BlockSize, c.Clients.BlockSize)
	}
	return nil
}

// Cluster is one wired simulation instance. Build with New, drive with Run.
type Cluster struct {
	cfg      Config
	clk      *sim.Queue
	ring     *Ring
	shards   []*shard
	cls      []*clientRun
	fileSize int64

	remaining int // sessions not yet finished
	doneAt    sim.Time
}

// New wires a cluster for the given population. The population's config
// becomes cfg.Clients, so the corpus replicas match the generated schedules
// by construction.
func New(cfg Config, pop *clients.Population) (*Cluster, error) {
	cfg.Clients = pop.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		clk:      sim.NewQueue(),
		ring:     ring,
		fileSize: cfg.Clients.FileBlocks * cfg.Clients.BlockSize,
	}
	// One zero-filled buffer backs every file of every shard's corpus replica
	// (fsim files reference their data, they do not copy it).
	corpus := make([]byte, c.fileSize)
	for i := 0; i < cfg.Shards; i++ {
		s, err := newShard(i, c.clk, &c.cfg, corpus)
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, s)
	}
	for i, cl := range pop.Clients {
		c.cls = append(c.cls, &clientRun{c: c, id: i, sessions: cl.Sessions})
		c.remaining += len(cl.Sessions)
	}
	return c, nil
}

// Run drives the event loop until every session has completed, then freezes
// the shards at the end time. It may be called once.
func (c *Cluster) Run() (*Result, error) {
	for _, cr := range c.cls {
		for si := range cr.sessions {
			si, cr := si, cr
			c.clk.Schedule(sim.Time(cr.sessions[si].At), func() { cr.arrive(si) })
		}
	}
	for c.remaining > 0 {
		if !c.clk.RunNext() {
			return nil, fmt.Errorf("cluster: event queue drained with %d sessions unfinished", c.remaining)
		}
		if c.cfg.MaxCycles > 0 && int64(c.clk.Now()) > c.cfg.MaxCycles {
			return nil, fmt.Errorf("cluster: exceeded MaxCycles = %d", c.cfg.MaxCycles)
		}
		c.cfg.Obs.Tick(c.clk.Now())
	}
	c.doneAt = c.clk.Now()
	for _, s := range c.shards {
		s.freeze(c.doneAt)
		s.tm.FinishRun()
	}
	return c.result(), nil
}

// ---------------------------------------------------------------- clients --

// clientRun is the live state machine of one population client.
type clientRun struct {
	c        *Cluster
	id       int
	sessions []clients.Session

	pending []int // arrived, not yet started (FIFO open queue)
	running bool
	cur     int   // session index in flight
	op      int   // next read op
	touched []int // shards this session has messaged (close targets)

	issueAt   sim.Time
	partsLeft int
	curThink  int64

	lats  []int64 // per-read latency, cycles, completion order
	reads int64
}

// arrive queues session si; if the client is idle it starts immediately.
func (cr *clientRun) arrive(si int) {
	cr.pending = append(cr.pending, si)
	if !cr.running {
		cr.start()
	}
}

// touch records a shard as messaged by the current session (dedup'd).
func (cr *clientRun) touch(sh int) {
	for _, t := range cr.touched {
		if t == sh {
			return
		}
	}
	cr.touched = append(cr.touched, sh)
}

// start opens the next pending session: disclose the whole session's read
// span per shard (one Hint message each), then issue the first read.
func (cr *clientRun) start() {
	cr.cur = cr.pending[0]
	cr.pending = cr.pending[1:]
	cr.running = true
	cr.op = 0
	cr.touched = nil

	c := cr.c
	sess := cr.sessions[cr.cur]
	key := SessionKey{Client: cr.id, Session: cr.cur}
	if c.cfg.Hints && len(sess.Reads) > 0 {
		lastOp := sess.Reads[len(sess.Reads)-1]
		span := lastOp.Off + lastOp.N
		parts := splitRange(c.ring, c.cfg.GroupBlocks, c.cfg.Clients.BlockSize, sess.File, 0, span, c.fileSize)
		var order []int
		byShard := make(map[int][]HintSeg)
		for _, p := range parts {
			if _, ok := byShard[p.Shard]; !ok {
				order = append(order, p.Shard)
			}
			byShard[p.Shard] = append(byShard[p.Shard], HintSeg{File: sess.File, Off: p.Off, N: p.N})
		}
		for _, shid := range order {
			segs := byShard[shid]
			cr.touch(shid)
			target := c.shards[shid]
			c.clk.After(sim.Time(c.cfg.NetCycles), func() { target.serveHints(key, segs) })
		}
	}
	cr.issueOp()
}

// issueOp sends the current read op as per-shard parts, or finishes the
// session when the ops are exhausted.
func (cr *clientRun) issueOp() {
	c := cr.c
	sess := cr.sessions[cr.cur]
	if cr.op >= len(sess.Reads) {
		cr.finish()
		return
	}
	r := sess.Reads[cr.op]
	key := SessionKey{Client: cr.id, Session: cr.cur}
	parts := splitRange(c.ring, c.cfg.GroupBlocks, c.cfg.Clients.BlockSize, sess.File, r.Off, r.N, c.fileSize)
	if len(parts) == 0 { // degenerate op (outside the file): skip it
		cr.op++
		cr.issueOp()
		return
	}
	cr.partsLeft = len(parts)
	cr.issueAt = c.clk.Now()
	cr.curThink = r.Think
	for _, p := range parts {
		p := p
		cr.touch(p.Shard)
		target := c.shards[p.Shard]
		c.clk.After(sim.Time(c.cfg.NetCycles), func() {
			target.serveRead(key, sess.File, p.Off, p.N, func() {
				c.clk.After(sim.Time(c.cfg.NetCycles), cr.partDone)
			})
		})
	}
}

// partDone collects one part reply; when the op's last part lands the read's
// latency is recorded and the next op is scheduled after the think time.
func (cr *clientRun) partDone() {
	cr.partsLeft--
	if cr.partsLeft > 0 {
		return
	}
	c := cr.c
	cr.lats = append(cr.lats, int64(c.clk.Now()-cr.issueAt))
	cr.reads++
	cr.op++
	c.clk.After(sim.Time(cr.curThink), cr.issueOp)
}

// finish closes the session on every shard it touched and starts the next
// queued session, if any.
func (cr *clientRun) finish() {
	c := cr.c
	key := SessionKey{Client: cr.id, Session: cr.cur}
	for _, shid := range cr.touched {
		target := c.shards[shid]
		c.clk.After(sim.Time(c.cfg.NetCycles), func() { target.closeSession(key) })
	}
	cr.running = false
	c.remaining--
	if len(cr.pending) > 0 {
		cr.start()
	}
}

// ---------------------------------------------------------------- results --

// ClientResult summarizes one client's view of the run.
type ClientResult struct {
	ID       int
	Sessions int
	Reads    int64
	MeanLat  float64 // mean read latency, cycles
	MaxLat   int64
}

// ShardResult is one shard's complete accounting: protocol counters, the
// exhaustive stall buckets, and the TIP/cache/disk layer stats beneath.
type ShardResult struct {
	ID      int
	Buckets Buckets
	Stats   ShardStats
	Tip     tip.Stats
	Cache   cache.Stats
	Disk    disk.Stats
}

// Result is the outcome of one cluster run.
type Result struct {
	Elapsed sim.Time
	Reads   int64
	Blocks  int64

	// Latencies holds every read's latency in cycles, client-id order then
	// completion order within a client — a deterministic ordering suitable
	// for percentile extraction.
	Latencies []int64

	Clients []ClientResult
	Shards  []ShardResult
}

// Seconds converts the run's elapsed virtual time to testbed seconds.
func (r *Result) Seconds() float64 { return float64(r.Elapsed) / core.CPUHz }

// Throughput returns completed reads per testbed second.
func (r *Result) Throughput() float64 {
	if s := r.Seconds(); s > 0 {
		return float64(r.Reads) / s
	}
	return 0
}

func (c *Cluster) result() *Result {
	res := &Result{Elapsed: c.doneAt}
	for _, cr := range c.cls {
		sum := int64(0)
		mx := int64(0)
		for _, l := range cr.lats {
			sum += l
			if l > mx {
				mx = l
			}
		}
		mean := 0.0
		if len(cr.lats) > 0 {
			mean = float64(sum) / float64(len(cr.lats))
		}
		res.Clients = append(res.Clients, ClientResult{
			ID: cr.id, Sessions: len(cr.sessions), Reads: cr.reads, MeanLat: mean, MaxLat: mx,
		})
		res.Reads += cr.reads
		res.Latencies = append(res.Latencies, cr.lats...)
	}
	for _, s := range c.shards {
		res.Blocks += s.tm.Stats().ReadBlocks
		res.Shards = append(res.Shards, ShardResult{
			ID:      s.id,
			Buckets: s.buckets,
			Stats:   s.stats,
			Tip:     s.tm.Stats(),
			Cache:   s.tm.Cache().Stats(),
			Disk:    s.arr.Stats(),
		})
	}
	return res
}
