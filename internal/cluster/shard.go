package cluster

// This file is the server side of the message boundary: one Shard is a
// self-contained TIP node — its own disk array, cache partition and TIP
// manager on the cluster's shared virtual clock — that speaks only the
// proto.go request types. Hints do not apply immediately: they queue in a
// batched, coalescing ingestion queue and flush either when the batch window
// expires or when the queue hits its size cap, modelling the server-side
// amortization a real RPC hint path needs. Every cycle of a shard's life is
// charged to exactly one stall bucket, so the per-shard buckets sum to the
// run's elapsed time by construction.
//
// The shard's front door is cost-based admission control (Config.Admission):
// read parts enter a bounded two-priority queue and are dispatched into TIP
// at most Config.MaxInflight at a time. A part is shed at arrival when the
// queue's predicted wait — depth x recent mean service time / service width —
// exceeds Config.LatencyBudget (or when the queue hits its hard cap), so
// under overload the shard keeps serving at capacity with bounded latency
// instead of queueing without bound. Every arriving part is ruled exactly
// once: Admitted (dispatched into service), Shed (admission rejection), or
// Failed (the shard was dead at arrival, or died while the part waited) —
// Admitted + Shed + Failed == Offered is the conservation invariant tests
// and CI hold the shard to, mirroring the stall-bucket identity.

import (
	"fmt"

	"spechint/internal/disk"
	"spechint/internal/fsim"
	"spechint/internal/obs"
	"spechint/internal/sim"
	"spechint/internal/tip"
)

// Buckets is a shard's exhaustive time accounting: every cycle between the
// cluster's start and its freeze point lands in exactly one bucket.
//   - HintedService: >= 1 read part outstanding and all of them arrived with
//     hint coverage.
//   - UnhintedService: >= 1 read part outstanding, at least one uncovered.
//   - Idle: no read part outstanding.
type Buckets struct {
	HintedService   int64 `json:"hinted_cycles"`
	UnhintedService int64 `json:"unhinted_cycles"`
	Idle            int64 `json:"idle_cycles"`
}

// Total returns the sum of all buckets — by construction the cluster's
// elapsed cycles once the shard is frozen.
func (b Buckets) Total() int64 { return b.HintedService + b.UnhintedService + b.Idle }

// ShardStats counts a shard's protocol-level activity (the TIP, cache and
// disk layers below keep their own counters).
type ShardStats struct {
	// Admission accounting. Every offered read part is ruled exactly once:
	// Offered == Admitted + Shed + Failed (checked by Result.Check).
	Offered  int64 // read parts that arrived at the shard (retries included)
	Admitted int64 // parts dispatched into service
	Shed     int64 // parts rejected by admission control
	Failed   int64 // parts refused dead-at-arrival or killed in queue on death
	Retried  int64 // subset of Offered that were client retries

	ReadParts    int64 // read requests served (== Admitted)
	HintedParts  int64 // subset that arrived with hint coverage
	ReadErrors   int64 // read parts that resolved with an error
	HintMsgs     int64 // hint messages received
	HintSegsIn   int64 // segments across all hint messages
	AppliedSegs  int64 // segments applied to TIP after coalescing
	StaleSegs    int64 // segments whose session closed before the flush
	Batches      int64 // ingestion queue flushes
	SessionsOpen int64 // sessions ever opened
	PeakSessions int   // max concurrently open sessions
	PeakIngest   int   // max ingestion queue depth (<= HintBatchMax when capped)
	PeakQueue    int   // max admission queue depth (<= QueueCap when admission is on)
}

// pendingHint is one queued, not-yet-applied hint segment.
type pendingHint struct {
	key SessionKey
	seg HintSeg
}

// partReq is one read part waiting in (or moving through) the shard's
// admission queue.
type partReq struct {
	key   SessionKey
	file  int
	off   int64
	n     int64
	reply func(Status)
}

// initialSvcEst seeds the mean-service estimate before the first completion
// (~4 ms at testbed scale, a mid-range disk read), so admission has a sane
// cost model from the first request.
const initialSvcEst = 1_000_000

// shard is one server node.
type shard struct {
	id  int
	clk *sim.Queue
	cfg *Config

	fs    *fsim.FS
	arr   *disk.Array
	tm    *tip.Manager
	files []*fsim.File // full corpus replica; the ring decides which blocks this shard actually serves

	sess   map[SessionKey]*tip.Client
	served map[SessionKey]bool // sessions with >= 1 part dispatched here (priority class)

	ingest  []pendingHint
	flushEv sim.Handle

	// Admission/service state (active when cfg.MaxInflight > 0).
	hotQ     []partReq // parts of sessions already in flight here
	coldQ    []partReq // first parts of newly opened sessions
	inflight int       // parts dispatched into TIP, not yet completed
	svcEst   int64     // EWMA of per-part service cycles (dispatch -> done)
	dead     bool      // shard killed by the fault plan

	// Interval accounting: the bucket charged for [lastAt, now) is decided by
	// the demand state that held over that interval, updated at every
	// transition. frozen stops the clock at the cluster's end time.
	lastAt      sim.Time
	outstanding int // read parts in service
	outHinted   int // subset that arrived covered
	frozen      bool

	buckets Buckets
	stats   ShardStats
}

// newShard builds shard id on the cluster's shared clock. Every shard holds a
// replica of the corpus name space backed by one shared data buffer (fsim
// files reference, not copy, their data), so per-shard memory stays flat as
// the corpus grows.
func newShard(id int, clk *sim.Queue, cfg *Config, corpus []byte) (*shard, error) {
	arr, err := disk.New(clk, cfg.Disk)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d disk: %w", id, err)
	}
	fs := fsim.New(int(cfg.Clients.BlockSize))
	tm, err := tip.New(clk, arr, fs, cfg.TIP)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d tip: %w", id, err)
	}
	s := &shard{
		id: id, clk: clk, cfg: cfg,
		fs: fs, arr: arr, tm: tm,
		files:  make([]*fsim.File, cfg.Clients.Files),
		sess:   make(map[SessionKey]*tip.Client),
		served: make(map[SessionKey]bool),
	}
	for i := range s.files {
		f, err := fs.Create(fmt.Sprintf("f%04d", i), corpus)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d corpus: %w", id, err)
		}
		s.files[i] = f
	}
	if cfg.Obs != nil {
		sub := cfg.Obs.Sub(fmt.Sprintf("s%d:", id))
		s.installObs(sub)
	}
	return s, nil
}

// installObs wires the shard's layers onto a prefixed view of the cluster
// trace: TIP/cache/disk lanes become "sN:tip", "sN:cache", "sN:diskK", and
// the shard contributes queue-depth, session and overload gauges under the
// same prefix.
func (s *shard) installObs(sub *obs.Trace) {
	s.tm.SetObs(sub)
	s.arr.SetObs(sub)
	sub.AddGauge("ingest_queue_depth", func() float64 { return float64(len(s.ingest)) })
	sub.AddGauge("active_sessions", func() float64 { return float64(len(s.sess)) })
	sub.AddGauge("admit_queue_depth", func() float64 { return float64(len(s.hotQ) + len(s.coldQ)) })
	sub.AddGauge("shed_total", func() float64 { return float64(s.stats.Shed) })
	sub.AddGauge("service_est_cycles", func() float64 { return float64(s.svcEst) })
	for i := 0; i < s.cfg.Disk.NumDisks; i++ {
		i := i
		sub.AddGauge(fmt.Sprintf("disk%d_queue_depth", i), func() float64 {
			return float64(s.arr.QueueDepth(i))
		})
	}
}

// account charges [lastAt, now) to the bucket matching the interval's demand
// state. Call it BEFORE every state transition, with the transition time.
func (s *shard) account(now sim.Time) {
	if s.frozen {
		return
	}
	delta := int64(now - s.lastAt)
	s.lastAt = now
	if delta <= 0 {
		return
	}
	switch {
	case s.outstanding > 0 && s.outHinted == s.outstanding:
		s.buckets.HintedService += delta
	case s.outstanding > 0:
		s.buckets.UnhintedService += delta
	default:
		s.buckets.Idle += delta
	}
}

// freeze closes the books at the cluster's end time: the final interval is
// charged and the buckets stop moving, so their total equals elapsed exactly.
func (s *shard) freeze(at sim.Time) {
	s.account(at)
	s.frozen = true
}

// session returns the per-session TIP client, opening the hint stream on
// first touch. Per-session clients are the isolation unit: TIP's bypass
// accounting assumes one hint stream per consumer, so two sessions sharing a
// client would penalize each other's disclosures.
func (s *shard) session(key SessionKey) *tip.Client {
	cli := s.sess[key]
	if cli == nil {
		cli = s.tm.NewClient(fmt.Sprintf("c%d.s%d", key.Client, key.Session))
		s.sess[key] = cli
		s.stats.SessionsOpen++
		if n := len(s.sess); n > s.stats.PeakSessions {
			s.stats.PeakSessions = n
		}
	}
	return cli
}

// brownFactor returns the fault plan's current service-stretch factor for
// this shard (1 = healthy).
func (s *shard) brownFactor() int {
	if s.cfg.Fault == nil {
		return 1
	}
	return s.cfg.Fault.ShardBrownFactor(s.id, s.clk.Now())
}

// svcEstimate is the recent mean per-part service time, falling back to the
// initial seed before any completion has been observed.
func (s *shard) svcEstimate() int64 {
	if s.svcEst > 0 {
		return s.svcEst
	}
	return initialSvcEst
}

// observeService folds one completed part's service time into the EWMA the
// admission policy prices queue depth with (gain 1/8: jittery enough to track
// brownouts, smooth enough not to flap on one cache hit).
func (s *shard) observeService(sample int64) {
	if sample < 1 {
		sample = 1
	}
	if s.svcEst == 0 {
		s.svcEst = sample
		return
	}
	s.svcEst += (sample - s.svcEst) / 8
}

// shouldShed is the cost-based admission policy: reject when the queue is at
// its hard cap, or when the predicted wait for a new arrival — every queued
// and in-flight part ahead of it, priced at the recent mean service time and
// divided across the service width — exceeds the latency budget. A brownout
// stretches dispatch, not service, so the predicate prices the current
// stretch factor explicitly: a browned-out shard starts shedding as soon as
// its queue owes more than the budget at its degraded rate.
func (s *shard) shouldShed() bool {
	depth := len(s.hotQ) + len(s.coldQ)
	if s.cfg.QueueCap > 0 && depth >= s.cfg.QueueCap {
		return true
	}
	if s.cfg.LatencyBudget > 0 {
		width := s.cfg.MaxInflight
		if width < 1 {
			width = 1
		}
		est := s.svcEstimate() * int64(s.brownFactor())
		wait := int64(depth+s.inflight) * est / int64(width)
		return wait > s.cfg.LatencyBudget
	}
	return false
}

// serveRead rules on one arriving ReadPart: reject it if the shard is dead,
// shed it if admission says the queue already owes too much latency, else
// queue it (or, with no admission layer configured, dispatch it directly —
// the original unbounded behavior overload runs measure against).
func (s *shard) serveRead(key SessionKey, file int, off, n int64, retry bool, reply func(Status)) {
	s.account(s.clk.Now())
	s.stats.Offered++
	if retry {
		s.stats.Retried++
	}
	if s.dead {
		s.stats.Failed++
		reply(StatusDead)
		return
	}
	req := partReq{key: key, file: file, off: off, n: n, reply: reply}
	if s.cfg.MaxInflight <= 0 {
		s.startService(req)
		return
	}
	if s.cfg.Admission && s.shouldShed() {
		s.stats.Shed++
		reply(StatusShed)
		return
	}
	// Two priority classes: sessions with a part already served here go to
	// the hot queue and dequeue first, so in-flight sessions' reads are never
	// starved by a thundering herd of new opens.
	if s.cfg.Priority && s.served[key] {
		s.hotQ = append(s.hotQ, req)
	} else {
		s.coldQ = append(s.coldQ, req)
	}
	if depth := len(s.hotQ) + len(s.coldQ); depth > s.stats.PeakQueue {
		s.stats.PeakQueue = depth
	}
	s.pump()
}

// pump dispatches queued parts into TIP while service slots are free, hot
// queue first. During a brownout window each dispatch is stretched by the
// fault plan's factor before it reaches TIP — the shard is alive but slow,
// which is exactly the regime admission control exists for.
func (s *shard) pump() {
	for s.inflight < s.cfg.MaxInflight {
		var req partReq
		switch {
		case len(s.hotQ) > 0:
			req, s.hotQ = s.hotQ[0], s.hotQ[1:]
		case len(s.coldQ) > 0:
			req, s.coldQ = s.coldQ[0], s.coldQ[1:]
		default:
			return
		}
		s.inflight++
		if f := s.brownFactor(); f > 1 {
			width := s.cfg.MaxInflight
			if width < 1 {
				width = 1
			}
			delay := sim.Time(int64(f-1) * s.svcEstimate() / int64(width))
			s.clk.After(delay, func() { s.startService(req) })
			continue
		}
		s.startService(req)
	}
}

// startService moves one part into service: this is the Admitted ruling. If
// the shard died while the part waited (queued or brownout-delayed), the part
// is Failed instead — still exactly one ruling per offered part.
func (s *shard) startService(req partReq) {
	now := s.clk.Now()
	s.account(now)
	if s.dead {
		s.stats.Failed++
		if s.cfg.MaxInflight > 0 {
			s.inflight--
		}
		req.reply(StatusDead)
		return
	}
	s.stats.Admitted++
	s.served[req.key] = true
	cli := s.session(req.key)
	f := s.files[req.file]
	hinted := cli.Covered(f, req.off, req.n)
	s.stats.ReadParts++
	if hinted {
		s.stats.HintedParts++
	}
	s.outstanding++
	if hinted {
		s.outHinted++
	}
	done := func(err error) {
		end := s.clk.Now()
		s.account(end)
		s.outstanding--
		if hinted {
			s.outHinted--
		}
		s.observeService(int64(end - now))
		if err != nil {
			s.stats.ReadErrors++
		}
		st := StatusOK
		switch {
		case s.dead:
			st = StatusDead // completed on a dead shard: the reply never makes it
		case err != nil:
			st = StatusEIO
		}
		if s.cfg.MaxInflight > 0 {
			s.inflight--
			s.pump()
		}
		req.reply(st)
	}
	if cli.Read(f, req.off, req.n, hinted, done) {
		done(nil) // fully cached: tip never calls done on the immediate path
	}
}

// die kills the shard: every queued part fails (the client's retry re-routes
// it through the ring, which learns of the death after the failure-detection
// window), pending hint ingestion is dropped, and future arrivals are refused
// at the door. Parts already in TIP service run to completion but reply
// StatusDead — the data of a dead node never reaches the client.
func (s *shard) die() {
	if s.dead {
		return
	}
	s.account(s.clk.Now())
	s.dead = true
	for _, q := range [][]partReq{s.hotQ, s.coldQ} {
		for _, req := range q {
			s.stats.Failed++
			req.reply(StatusDead)
		}
	}
	s.hotQ, s.coldQ = nil, nil
	s.clk.Cancel(s.flushEv)
	s.flushEv = sim.Handle{}
	s.ingest = nil
}

// serveHints receives one hint message: the segments enter the ingestion
// queue and apply at the next flush — after HintBatchCycles, or the moment
// the queue reaches HintBatchMax (the cap is checked per segment, so the
// queue depth never exceeds it: PeakIngest <= HintBatchMax is a checked
// invariant). The session opens now even though the hints apply later, so a
// racing read lands on the right stream.
func (s *shard) serveHints(key SessionKey, segs []HintSeg) {
	if s.dead {
		return
	}
	s.stats.HintMsgs++
	s.stats.HintSegsIn += int64(len(segs))
	s.session(key)
	for _, sg := range segs {
		s.ingest = append(s.ingest, pendingHint{key: key, seg: sg})
		if n := len(s.ingest); n > s.stats.PeakIngest {
			s.stats.PeakIngest = n
		}
		if s.cfg.HintBatchMax > 0 && len(s.ingest) >= s.cfg.HintBatchMax {
			s.flush()
		}
	}
	if !s.clk.Pending(s.flushEv) && len(s.ingest) > 0 {
		s.flushEv = s.clk.After(sim.Time(s.cfg.HintBatchCycles), func() {
			s.flushEv = sim.Handle{}
			s.flush()
		})
	}
}

// flush drains the ingestion queue into TIP, coalescing runs of contiguous
// segments from one session and file into single disclosures — the batching
// dividend: B small hint RPCs become one TIPIO_SEG-sized call.
func (s *shard) flush() {
	s.clk.Cancel(s.flushEv)
	s.flushEv = sim.Handle{}
	if len(s.ingest) == 0 {
		return
	}
	s.stats.Batches++
	batch := s.ingest
	s.ingest = nil
	for i := 0; i < len(batch); {
		cur := batch[i].seg
		j := i + 1
		for j < len(batch) && batch[j].key == batch[i].key &&
			batch[j].seg.File == cur.File && batch[j].seg.Off == cur.Off+cur.N {
			cur.N += batch[j].seg.N
			j++
		}
		if cli := s.sess[batch[i].key]; cli != nil {
			s.stats.AppliedSegs++
			cli.HintSeg(s.files[cur.File], cur.Off, cur.N)
		} else {
			s.stats.StaleSegs++ // session closed before the window expired
		}
		i = j
	}
}

// closeSession retires the session's hint stream; TIP reuses the client slot
// (and re-partitions the cache across the survivors).
func (s *shard) closeSession(key SessionKey) {
	if cli := s.sess[key]; cli != nil {
		cli.Close()
		delete(s.sess, key)
	}
	delete(s.served, key)
}
