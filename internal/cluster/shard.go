package cluster

// This file is the server side of the message boundary: one Shard is a
// self-contained TIP node — its own disk array, cache partition and TIP
// manager on the cluster's shared virtual clock — that speaks only the
// proto.go request types. Hints do not apply immediately: they queue in a
// batched, coalescing ingestion queue and flush either when the batch window
// expires or when the queue hits its size cap, modelling the server-side
// amortization a real RPC hint path needs. Every cycle of a shard's life is
// charged to exactly one stall bucket, so the per-shard buckets sum to the
// run's elapsed time by construction.

import (
	"fmt"

	"spechint/internal/disk"
	"spechint/internal/fsim"
	"spechint/internal/obs"
	"spechint/internal/sim"
	"spechint/internal/tip"
)

// Buckets is a shard's exhaustive time accounting: every cycle between the
// cluster's start and its freeze point lands in exactly one bucket.
//   - HintedService: >= 1 read part outstanding and all of them arrived with
//     hint coverage.
//   - UnhintedService: >= 1 read part outstanding, at least one uncovered.
//   - Idle: no read part outstanding.
type Buckets struct {
	HintedService   int64 `json:"hinted_cycles"`
	UnhintedService int64 `json:"unhinted_cycles"`
	Idle            int64 `json:"idle_cycles"`
}

// Total returns the sum of all buckets — by construction the cluster's
// elapsed cycles once the shard is frozen.
func (b Buckets) Total() int64 { return b.HintedService + b.UnhintedService + b.Idle }

// ShardStats counts a shard's protocol-level activity (the TIP, cache and
// disk layers below keep their own counters).
type ShardStats struct {
	ReadParts    int64 // read requests served
	HintedParts  int64 // subset that arrived with hint coverage
	ReadErrors   int64 // read parts that resolved with an error
	HintMsgs     int64 // hint messages received
	HintSegsIn   int64 // segments across all hint messages
	AppliedSegs  int64 // segments applied to TIP after coalescing
	StaleSegs    int64 // segments whose session closed before the flush
	Batches      int64 // ingestion queue flushes
	SessionsOpen int64 // sessions ever opened
	PeakSessions int   // max concurrently open sessions
	PeakIngest   int   // max ingestion queue depth
}

// pendingHint is one queued, not-yet-applied hint segment.
type pendingHint struct {
	key SessionKey
	seg HintSeg
}

// shard is one server node.
type shard struct {
	id  int
	clk *sim.Queue
	cfg *Config

	fs    *fsim.FS
	arr   *disk.Array
	tm    *tip.Manager
	files []*fsim.File // full corpus replica; the ring decides which blocks this shard actually serves

	sess map[SessionKey]*tip.Client

	ingest  []pendingHint
	flushEv *sim.Event

	// Interval accounting: the bucket charged for [lastAt, now) is decided by
	// the demand state that held over that interval, updated at every
	// transition. frozen stops the clock at the cluster's end time.
	lastAt      sim.Time
	outstanding int // read parts in service
	outHinted   int // subset that arrived covered
	frozen      bool

	buckets Buckets
	stats   ShardStats
}

// newShard builds shard id on the cluster's shared clock. Every shard holds a
// replica of the corpus name space backed by one shared data buffer (fsim
// files reference, not copy, their data), so per-shard memory stays flat as
// the corpus grows.
func newShard(id int, clk *sim.Queue, cfg *Config, corpus []byte) (*shard, error) {
	arr, err := disk.New(clk, cfg.Disk)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d disk: %w", id, err)
	}
	fs := fsim.New(int(cfg.Clients.BlockSize))
	tm, err := tip.New(clk, arr, fs, cfg.TIP)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d tip: %w", id, err)
	}
	s := &shard{
		id: id, clk: clk, cfg: cfg,
		fs: fs, arr: arr, tm: tm,
		files: make([]*fsim.File, cfg.Clients.Files),
		sess:  make(map[SessionKey]*tip.Client),
	}
	for i := range s.files {
		f, err := fs.Create(fmt.Sprintf("f%04d", i), corpus)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d corpus: %w", id, err)
		}
		s.files[i] = f
	}
	if cfg.Obs != nil {
		sub := cfg.Obs.Sub(fmt.Sprintf("s%d:", id))
		s.installObs(sub)
	}
	return s, nil
}

// installObs wires the shard's layers onto a prefixed view of the cluster
// trace: TIP/cache/disk lanes become "sN:tip", "sN:cache", "sN:diskK", and
// the shard contributes queue-depth and session gauges under the same prefix.
func (s *shard) installObs(sub *obs.Trace) {
	s.tm.SetObs(sub)
	s.arr.SetObs(sub)
	sub.AddGauge("ingest_queue_depth", func() float64 { return float64(len(s.ingest)) })
	sub.AddGauge("active_sessions", func() float64 { return float64(len(s.sess)) })
	for i := 0; i < s.cfg.Disk.NumDisks; i++ {
		i := i
		sub.AddGauge(fmt.Sprintf("disk%d_queue_depth", i), func() float64 {
			return float64(s.arr.QueueDepth(i))
		})
	}
}

// account charges [lastAt, now) to the bucket matching the interval's demand
// state. Call it BEFORE every state transition, with the transition time.
func (s *shard) account(now sim.Time) {
	if s.frozen {
		return
	}
	delta := int64(now - s.lastAt)
	s.lastAt = now
	if delta <= 0 {
		return
	}
	switch {
	case s.outstanding > 0 && s.outHinted == s.outstanding:
		s.buckets.HintedService += delta
	case s.outstanding > 0:
		s.buckets.UnhintedService += delta
	default:
		s.buckets.Idle += delta
	}
}

// freeze closes the books at the cluster's end time: the final interval is
// charged and the buckets stop moving, so their total equals elapsed exactly.
func (s *shard) freeze(at sim.Time) {
	s.account(at)
	s.frozen = true
}

// session returns the per-session TIP client, opening the hint stream on
// first touch. Per-session clients are the isolation unit: TIP's bypass
// accounting assumes one hint stream per consumer, so two sessions sharing a
// client would penalize each other's disclosures.
func (s *shard) session(key SessionKey) *tip.Client {
	cli := s.sess[key]
	if cli == nil {
		cli = s.tm.NewClient(fmt.Sprintf("c%d.s%d", key.Client, key.Session))
		s.sess[key] = cli
		s.stats.SessionsOpen++
		if n := len(s.sess); n > s.stats.PeakSessions {
			s.stats.PeakSessions = n
		}
	}
	return cli
}

// serveRead services one ReadPart. Whether the part counts as hinted is the
// shard's decision, made at service time against the session's applied hint
// queue — a hint message that lost the race with its read (still sitting in
// the ingestion queue) does not count, exactly as a real server could not
// credit a disclosure it has not processed.
func (s *shard) serveRead(key SessionKey, file int, off, n int64, reply func()) {
	now := s.clk.Now()
	s.account(now)
	cli := s.session(key)
	f := s.files[file]
	hinted := cli.Covered(f, off, n)
	s.stats.ReadParts++
	if hinted {
		s.stats.HintedParts++
	}
	s.outstanding++
	if hinted {
		s.outHinted++
	}
	done := func(err error) {
		s.account(s.clk.Now())
		s.outstanding--
		if hinted {
			s.outHinted--
		}
		if err != nil {
			s.stats.ReadErrors++
		}
		reply()
	}
	if cli.Read(f, off, n, hinted, done) {
		done(nil) // fully cached: tip never calls done on the immediate path
	}
}

// serveHints receives one hint message: the segments enter the ingestion
// queue and apply at the next flush — after HintBatchCycles, or immediately
// once the queue reaches HintBatchMax. The session opens now even though the
// hints apply later, so a racing read lands on the right stream.
func (s *shard) serveHints(key SessionKey, segs []HintSeg) {
	s.stats.HintMsgs++
	s.stats.HintSegsIn += int64(len(segs))
	s.session(key)
	for _, sg := range segs {
		s.ingest = append(s.ingest, pendingHint{key: key, seg: sg})
	}
	if n := len(s.ingest); n > s.stats.PeakIngest {
		s.stats.PeakIngest = n
	}
	if s.cfg.HintBatchMax > 0 && len(s.ingest) >= s.cfg.HintBatchMax {
		s.flush()
		return
	}
	if s.flushEv == nil && len(s.ingest) > 0 {
		s.flushEv = s.clk.After(sim.Time(s.cfg.HintBatchCycles), func() {
			s.flushEv = nil
			s.flush()
		})
	}
}

// flush drains the ingestion queue into TIP, coalescing runs of contiguous
// segments from one session and file into single disclosures — the batching
// dividend: B small hint RPCs become one TIPIO_SEG-sized call.
func (s *shard) flush() {
	if s.flushEv != nil {
		s.clk.Cancel(s.flushEv)
		s.flushEv = nil
	}
	if len(s.ingest) == 0 {
		return
	}
	s.stats.Batches++
	batch := s.ingest
	s.ingest = nil
	for i := 0; i < len(batch); {
		cur := batch[i].seg
		j := i + 1
		for j < len(batch) && batch[j].key == batch[i].key &&
			batch[j].seg.File == cur.File && batch[j].seg.Off == cur.Off+cur.N {
			cur.N += batch[j].seg.N
			j++
		}
		if cli := s.sess[batch[i].key]; cli != nil {
			s.stats.AppliedSegs++
			cli.HintSeg(s.files[cur.File], cur.Off, cur.N)
		} else {
			s.stats.StaleSegs++ // session closed before the window expired
		}
		i = j
	}
}

// closeSession retires the session's hint stream; TIP reuses the client slot
// (and re-partitions the cache across the survivors).
func (s *shard) closeSession(key SessionKey) {
	if cli := s.sess[key]; cli != nil {
		cli.Close()
		delete(s.sess, key)
	}
}
