package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"spechint/internal/clients"
	"spechint/internal/obs"
)

// testPop generates a small but non-trivial population: enough concurrency
// to exercise session queueing, cross-shard reads and cache pressure.
func testPop(t *testing.T) *clients.Population {
	t.Helper()
	pop, err := clients.Generate(clients.Config{
		N: 8, Sessions: 2,
		Files: 16, FileBlocks: 64, BlockSize: 8192,
		SessionBlocks: 16, ReadBlocks: 4,
		ArrivalMean: 50_000_000, ThinkMean: 500_000,
		ZipfS: 1.2, ZipfV: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func runCluster(t *testing.T, shards int, hints bool, tr *obs.Trace) *Result {
	t.Helper()
	cfg := DefaultConfig(shards)
	cfg.Hints = hints
	cfg.Obs = tr
	c, err := New(cfg, testPop(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterDeterministic: two identical runs produce byte-identical
// results, including every latency sample and every layer's counters.
func TestClusterDeterministic(t *testing.T) {
	a := runCluster(t, 2, true, nil)
	b := runCluster(t, 2, true, nil)
	if !reflect.DeepEqual(a, b) {
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		t.Fatalf("identical configs diverged:\n%s\nvs\n%s", ja, jb)
	}
}

// TestClusterShardCells runs the shard-count cells in parallel (each cell is
// an independent simulation on its own clock) and checks the invariants every
// cell must hold: all reads complete, no errors, and each shard's stall
// buckets sum exactly to the elapsed time.
func TestClusterShardCells(t *testing.T) {
	pop := testPop(t)
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(map[int]string{1: "1shard", 2: "2shards", 4: "4shards"}[shards], func(t *testing.T) {
			t.Parallel()
			res := runCluster(t, shards, true, nil)
			if res.Reads != pop.TotalReads {
				t.Errorf("completed %d reads, want %d", res.Reads, pop.TotalReads)
			}
			if int64(len(res.Latencies)) != res.Reads {
				t.Errorf("%d latency samples for %d reads", len(res.Latencies), res.Reads)
			}
			if len(res.Shards) != shards {
				t.Fatalf("%d shard results, want %d", len(res.Shards), shards)
			}
			var parts int64
			for _, s := range res.Shards {
				if got := s.Buckets.Total(); got != int64(res.Elapsed) {
					t.Errorf("shard %d buckets sum to %d, elapsed %d", s.ID, got, res.Elapsed)
				}
				if s.Stats.ReadErrors != 0 {
					t.Errorf("shard %d saw %d read errors", s.ID, s.Stats.ReadErrors)
				}
				parts += s.Stats.ReadParts
			}
			if parts < res.Reads {
				t.Errorf("shards served %d parts < %d reads", parts, res.Reads)
			}
		})
	}
}

// TestClusterHintsFlow: with hints on, a healthy fraction of read parts
// arrives covered and the hinted stall bucket is exercised; with hints off,
// nothing is ever covered.
func TestClusterHintsFlow(t *testing.T) {
	hinted := runCluster(t, 2, true, nil)
	var hp, batches, hintedCycles int64
	for _, s := range hinted.Shards {
		hp += s.Stats.HintedParts
		batches += s.Stats.Batches
		hintedCycles += s.Buckets.HintedService
	}
	if hp == 0 {
		t.Error("hints on: no read part ever arrived covered")
	}
	if batches == 0 {
		t.Error("hints on: ingestion queue never flushed")
	}
	if hintedCycles == 0 {
		t.Error("hints on: HintedService bucket never charged")
	}

	base := runCluster(t, 2, false, nil)
	for _, s := range base.Shards {
		if s.Stats.HintedParts != 0 || s.Stats.HintMsgs != 0 {
			t.Errorf("hints off: shard %d saw hint traffic %+v", s.ID, s.Stats)
		}
		if s.Buckets.HintedService != 0 {
			t.Errorf("hints off: shard %d charged HintedService", s.ID)
		}
	}
	if base.Reads != hinted.Reads {
		t.Errorf("hinted and baseline completed different read counts: %d vs %d", hinted.Reads, base.Reads)
	}
}

// TestClusterObs: every shard lands its lanes and gauges on the shared trace
// under its own prefix.
func TestClusterObs(t *testing.T) {
	tr := obs.New(obs.Config{})
	runCluster(t, 2, true, tr)
	prefixed := map[string]bool{}
	for _, e := range tr.Events() {
		prefixed[e.Lane] = true
	}
	if !prefixed["s0:tip"] || !prefixed["s1:tip"] {
		t.Errorf("missing per-shard tip lanes; saw %v", prefixed)
	}
	var g0, g1 bool
	for _, n := range tr.GaugeNames() {
		if n == "s0:ingest_queue_depth" {
			g0 = true
		}
		if n == "s1:active_sessions" {
			g1 = true
		}
	}
	if !g0 || !g1 {
		t.Errorf("missing per-shard gauges; have %v", tr.GaugeNames())
	}
}

// TestClusterSessionLifecycle: sessions open and close on every shard they
// touch, and TIP's client-slot reuse keeps the per-shard client table at the
// concurrent peak, not the session total.
func TestClusterSessionLifecycle(t *testing.T) {
	res := runCluster(t, 2, true, nil)
	var opened int64
	for _, s := range res.Shards {
		opened += s.Stats.SessionsOpen
		if s.Stats.PeakSessions > int(s.Stats.SessionsOpen) {
			t.Errorf("shard %d peak %d exceeds opened %d", s.ID, s.Stats.PeakSessions, s.Stats.SessionsOpen)
		}
		if int64(s.Stats.PeakSessions) == s.Stats.SessionsOpen && s.Stats.SessionsOpen > 8 {
			t.Errorf("shard %d never closed a session (peak == opened == %d)", s.ID, s.Stats.SessionsOpen)
		}
	}
	if opened == 0 {
		t.Fatal("no sessions ever opened")
	}
}
