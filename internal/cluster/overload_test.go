package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"spechint/internal/clients"
	"spechint/internal/fault"
	"spechint/internal/sim"
)

// hotPop generates a deliberately overloading population: many clients
// arriving nearly at once with minimal think time, so the offered load is
// well above what two testbed shards can serve.
func hotPop(t *testing.T) *clients.Population {
	t.Helper()
	pop, err := clients.Generate(clients.Config{
		N: 32, Sessions: 4,
		Files: 16, FileBlocks: 64, BlockSize: 8192,
		SessionBlocks: 64, ReadBlocks: 4,
		ArrivalMean: 500_000, ThinkMean: 10_000,
		ZipfS: 1.2, ZipfV: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func runOverload(t *testing.T, cfg Config, pop *clients.Population) *Result {
	t.Helper()
	c, err := New(cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterOverloadSheds: an overloading population against an armed
// admission layer sheds work, the clients retry, and every offered part is
// ruled exactly once (Check enforces Admitted + Shed + Failed == Offered).
// Every session still completes: abandoned ops count as failed reads, and
// reads + failed == the population's total.
func TestClusterOverloadSheds(t *testing.T) {
	pop := hotPop(t)
	res := runOverload(t, OverloadConfig(2), pop)

	var shed, offered int64
	for _, s := range res.Shards {
		shed += s.Stats.Shed
		offered += s.Stats.Offered
	}
	if shed == 0 {
		t.Error("overload config against a hot population never shed")
	}
	if res.ShedSeen != shed {
		t.Errorf("clients saw %d sheds, shards issued %d", res.ShedSeen, shed)
	}
	if res.Retries == 0 {
		t.Error("clients never retried despite sheds")
	}
	if got := res.Reads + res.FailedReads; got < pop.TotalReads {
		t.Errorf("reads %d + failed %d < total %d: ops vanished", res.Reads, res.FailedReads, pop.TotalReads)
	}
	if res.Reads == 0 {
		t.Error("no read ever completed under overload")
	}
	for _, s := range res.Shards {
		if s.Stats.PeakQueue == 0 {
			t.Errorf("shard %d never queued a part under overload", s.ID)
		}
	}
}

// TestClusterOverloadDeterministic: overload runs — sheds, backoffs, retries
// and all — are byte-identical across repetitions.
func TestClusterOverloadDeterministic(t *testing.T) {
	a := runOverload(t, OverloadConfig(2), hotPop(t))
	b := runOverload(t, OverloadConfig(2), hotPop(t))
	if !reflect.DeepEqual(a, b) {
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		t.Fatalf("identical overload configs diverged:\n%s\nvs\n%s", ja, jb)
	}
}

// TestClusterNoAdmissionNeverSheds: with the admission layer off (the
// default config) nothing is ever shed or failed, and the overload counters
// stay zero — the original PR7 behavior is preserved exactly.
func TestClusterNoAdmissionNeverSheds(t *testing.T) {
	res := runOverload(t, DefaultConfig(2), testPop(t))
	if res.ShedSeen != 0 || res.FailedReads != 0 || res.Retries != 0 || res.DeadSeen != 0 {
		t.Errorf("default config produced overload traffic: %+v", res)
	}
	for _, s := range res.Shards {
		if s.Stats.Offered != s.Stats.Admitted {
			t.Errorf("shard %d: offered %d != admitted %d with admission off",
				s.ID, s.Stats.Offered, s.Stats.Admitted)
		}
	}
}

// TestClusterShardDeathFailover: killing a shard mid-run fails its queued
// work, the ring re-routes its keys, and client retries land on the
// survivor — every session completes and the dead shard serves nothing
// after its death.
func TestClusterShardDeathFailover(t *testing.T) {
	pop := hotPop(t)
	cfg := DefaultConfig(4)
	plan := fault.NewPlan(1)
	plan.DieShard = 2
	plan.DieShardAt = 160_000_000
	cfg.Fault = plan
	cfg.DetectCycles = 20_000_000 // a slow detector: ~86 ms of stale routing

	res := runOverload(t, cfg, pop)

	if res.DeadSeen == 0 {
		t.Error("no client ever saw a DEAD reply from the killed shard")
	}
	if res.Retries == 0 {
		t.Error("no client ever retried after the shard died")
	}
	if got := res.Reads + res.FailedReads; got != pop.TotalReads {
		t.Errorf("reads %d + failed %d != total %d after failover", res.Reads, res.FailedReads, pop.TotalReads)
	}
	// Failover should serve nearly everything: the survivors own the dead
	// shard's keys, so only ops that exhausted their attempts mid-transition
	// may fail.
	if res.FailedReads > pop.TotalReads/10 {
		t.Errorf("failover lost %d of %d reads", res.FailedReads, pop.TotalReads)
	}
	dead := res.Shards[2].Stats
	if dead.Failed == 0 {
		t.Error("killed shard never failed a part")
	}
	live := int64(0)
	for i, s := range res.Shards {
		if i != 2 {
			live += s.Stats.ReadParts
		}
	}
	if live == 0 {
		t.Error("survivors served nothing")
	}
}

// TestClusterShardDeathDeterministic: the failover path is as reproducible
// as the healthy path.
func TestClusterShardDeathDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := DefaultConfig(4)
		plan := fault.NewPlan(1)
		plan.DieShard = 1
		plan.DieShardAt = 160_000_000
		cfg.Fault = plan
		cfg.DetectCycles = 20_000_000
		return runOverload(t, cfg, hotPop(t))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical failover configs diverged")
	}
}

// TestClusterBrownout: a brownout window stretches the victim's service, so
// with admission armed the victim sheds while healthy shards carry on.
func TestClusterBrownout(t *testing.T) {
	cfg := OverloadConfig(2)
	plan := fault.NewPlan(1)
	plan.BrownShard = 0
	plan.BrownAt = 1_000_000
	plan.BrownUntil = sim.Time(1 << 40)
	plan.BrownFactor = 16
	cfg.Fault = plan

	res := runOverload(t, cfg, hotPop(t))
	if res.Shards[0].Stats.Shed == 0 {
		t.Error("browned-out shard under a hot population never shed")
	}
	if res.Reads == 0 {
		t.Error("no read completed during the brownout")
	}
}

// TestClusterOverloadValidate: the new config knobs reject nonsense.
func TestClusterOverloadValidate(t *testing.T) {
	pop := testPop(t)
	bad := []func(*Config){
		func(c *Config) { c.Admission = true; c.MaxInflight = 0 },
		func(c *Config) { c.MaxInflight = -1 },
		func(c *Config) { c.Admission = true; c.MaxInflight = 4; c.QueueCap = 0; c.LatencyBudget = 0 },
		func(c *Config) { c.Retry.MaxAttempts = 0 },
		func(c *Config) {
			p := fault.NewPlan(1)
			p.DieShard = 7
			p.DieShardAt = 1
			c.Fault = p // kills a shard the cluster doesn't have
		},
		func(c *Config) {
			p := fault.NewPlan(1)
			p.DieShard = 0
			p.DieShardAt = 1
			c.Shards = 1
			c.Fault = p // cannot kill the only shard
		},
	}
	for i, mut := range bad {
		cfg := DefaultConfig(2)
		mut(&cfg)
		if _, err := New(cfg, pop); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
