// Package cluster is the sharded TIP service: the single-machine cache
// manager of internal/tip turned into a simulated multi-node service. The
// in-process coupling of client and cache manager is split at an explicit
// message boundary — clients issue Open/Read/Hint request messages that
// cross a virtual-time network, and each shard is a self-contained server
// with its own disk array, cache partition and TIP manager (reusing
// internal/disk, internal/cache and internal/tip unchanged). Block placement
// is a deterministic consistent-hash ring over placement groups; hints are
// routed per shard through batched, coalescing ingestion queues; and the
// whole cluster is driven by a synthetic client population
// (internal/clients) on one shared virtual clock, so every run is
// reproducible cycle-for-cycle.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping placement groups to shards.
// Each shard contributes VNodes points, hashed deterministically from
// (shard, vnode), so the placement is identical across runs and across
// machines, and growing the ring from N to N+1 shards moves only the keys
// whose successor point changed — about 1/(N+1) of them.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by (hash, shard)
	dead   []bool      // per-shard liveness; dead shards' points are skipped
	live   int         // count of live shards
}

type ringPoint struct {
	h     uint64
	shard int
}

// NewRing builds the ring for the given shard count.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: ring needs >= 1 shard, got %d", shards)
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs >= 1 vnode per shard, got %d", vnodes)
	}
	r := &Ring{
		shards: shards, vnodes: vnodes,
		points: make([]ringPoint, 0, shards*vnodes),
		dead:   make([]bool, shards), live: shards,
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pointHash(s, v), s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].shard < r.points[j].shard // hash-collision tiebreak
	})
	return r, nil
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Live returns how many shards are currently alive.
func (r *Ring) Live() int { return r.live }

// Alive reports whether shard s is alive.
func (r *Ring) Alive(s int) bool { return !r.dead[s] }

// MarkDead removes shard s from the placement: its ring points are skipped,
// so its keys fall through to the next live point clockwise — every other
// shard's keys stay exactly where they were (the failover analogue of the
// rebalance bound). Marking the last live shard dead panics: a cluster with
// no servers has no meaningful placement.
func (r *Ring) MarkDead(s int) {
	if r.dead[s] {
		return
	}
	if r.live == 1 {
		panic("cluster: marking the last live shard dead")
	}
	r.dead[s] = true
	r.live--
}

// Revive returns shard s to the placement. Because the points themselves
// never move, revival restores the original ownership of every key exactly.
func (r *Ring) Revive(s int) {
	if !r.dead[s] {
		return
	}
	r.dead[s] = false
	r.live++
}

// Lookup returns the shard owning hash h: the first ring point clockwise of
// h whose shard is alive, wrapping at the top of the circle.
func (r *Ring) Lookup(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		if !r.dead[r.points[i].shard] {
			return r.points[i].shard
		}
		i++
	}
	panic("cluster: lookup on a ring with no live shards")
}

// Owner returns the shard owning placement group `group` of corpus file
// `file`.
func (r *Ring) Owner(file int, group int64) int {
	return r.Lookup(groupKey(file, group))
}

// pointHash places vnode v of shard s on the circle. Both hashes below use
// the SplitMix64 finalizer: full-avalanche mixing keeps the ring's arc
// lengths near-uniform (a weaker hash visibly skews per-shard load even at
// 64 vnodes), and it is pinned here so placement can never drift with a
// library change.
func pointHash(s, v int) uint64 {
	return mix64(uint64(s)*0xD1B54A32D192ED03 + uint64(v)*0x9E3779B97F4A7C15)
}

// groupKey hashes a (file, placement group) pair onto the ring circle, so
// consecutive groups of one file land independently around it.
func groupKey(file int, group int64) uint64 {
	return mix64(uint64(file)*0x9E3779B97F4A7C15 ^ uint64(group))
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
