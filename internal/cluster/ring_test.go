package cluster

import "testing"

// sampleKeys enumerates a deterministic key set: every placement group of a
// small corpus.
func sampleKeys(files int, groups int64) [][2]int64 {
	var keys [][2]int64
	for f := 0; f < files; f++ {
		for g := int64(0); g < groups; g++ {
			keys = append(keys, [2]int64{int64(f), g})
		}
	}
	return keys
}

// TestRingDeterministic: two rings built from the same parameters place every
// key identically — the property cross-run byte-identity rests on.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(50, 16) {
		if a.Owner(int(k[0]), k[1]) != b.Owner(int(k[0]), k[1]) {
			t.Fatalf("placement of (%d,%d) differs between identical rings", k[0], k[1])
		}
	}
}

// TestRingRebalanceBound: growing the ring from N to N+1 shards moves only
// keys onto the NEW shard, and about K/(N+1) of them — the consistent-hashing
// contract that makes shard growth cheap.
func TestRingRebalanceBound(t *testing.T) {
	keys := sampleKeys(200, 8) // 1600 keys
	for _, n := range []int{1, 2, 4, 8} {
		old, err := NewRing(n, 64)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(n+1, 64)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			a, b := old.Owner(int(k[0]), k[1]), grown.Owner(int(k[0]), k[1])
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("N=%d: key (%d,%d) moved %d->%d, not to the new shard %d", n, k[0], k[1], a, b, n)
			}
		}
		expect := len(keys) / (n + 1)
		if moved > expect*5/2 {
			t.Errorf("N=%d->%d moved %d keys, want about %d (allowing 2.5x)", n, n+1, moved, expect)
		}
		if moved == 0 {
			t.Errorf("N=%d->%d moved no keys; the new shard owns nothing", n, n+1)
		}
	}
}

// TestRingBalance: with 64 vnodes per shard the per-shard load stays within a
// small constant factor of fair share.
func TestRingBalance(t *testing.T) {
	const shards = 8
	r, err := NewRing(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	keys := sampleKeys(1000, 10) // 10k keys
	for _, k := range keys {
		counts[r.Owner(int(k[0]), k[1])]++
	}
	fair := len(keys) / shards
	for s, c := range counts {
		if c < fair*2/5 || c > fair*2 {
			t.Errorf("shard %d owns %d keys, fair share %d (want within [0.4x, 2x])", s, c, fair)
		}
	}
}

// TestRingValidation rejects degenerate parameters.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 64); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewRing(2, 0); err == nil {
		t.Error("0 vnodes accepted")
	}
}

// TestSplitRange: parts tile the requested range in offset order, each part's
// blocks belong to its shard, and consecutive same-owner groups merge.
func TestSplitRange(t *testing.T) {
	r, err := NewRing(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	const (
		bs       = int64(8192)
		gb       = int64(4)
		file     = 7
		fileSize = 64 * bs
	)
	for _, rng := range [][2]int64{{0, 64 * bs}, {bs, 10 * bs}, {3 * bs, 5 * bs}, {60 * bs, 100 * bs}} {
		off, n := rng[0], rng[1]
		parts := splitRange(r, gb, bs, file, off, n, fileSize)
		end := off + n
		if end > fileSize {
			end = fileSize
		}
		next := off
		for i, p := range parts {
			if p.Off != next || p.N < 1 {
				t.Fatalf("range [%d,+%d): part %d = %+v does not continue at %d", off, n, i, p, next)
			}
			next = p.Off + p.N
			for b := p.Off / bs; b <= (p.Off+p.N-1)/bs; b++ {
				if owner := r.Owner(file, b/gb); owner != p.Shard {
					t.Fatalf("part %+v contains block %d owned by shard %d", p, b, owner)
				}
			}
			if i > 0 && parts[i-1].Shard == p.Shard {
				t.Fatalf("parts %d and %d share shard %d but were not merged", i-1, i, p.Shard)
			}
		}
		if next != end {
			t.Fatalf("range [%d,+%d): parts cover to %d, want %d", off, n, next, end)
		}
	}
	if parts := splitRange(r, gb, bs, file, fileSize, bs, fileSize); parts != nil {
		t.Errorf("read past EOF produced parts %v", parts)
	}
}

// TestRingFailoverReroute: marking a shard dead moves ONLY its keys, moves
// them ONLY to live shards, and leaves every other key's owner untouched —
// the failover contract that bounds key movement to the dead shard's share.
func TestRingFailoverReroute(t *testing.T) {
	const shards = 4
	r, err := NewRing(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeys(200, 8) // 1600 keys
	baseline := make([]int, len(keys))
	for i, k := range keys {
		baseline[i] = r.Owner(int(k[0]), k[1])
	}

	const dead = 2
	r.MarkDead(dead)
	if r.Live() != shards-1 || r.Alive(dead) {
		t.Fatalf("after MarkDead: live=%d alive(%d)=%v", r.Live(), dead, r.Alive(dead))
	}
	moved := 0
	for i, k := range keys {
		got := r.Owner(int(k[0]), k[1])
		if baseline[i] != dead {
			if got != baseline[i] {
				t.Fatalf("key (%d,%d) owned by live shard %d moved to %d", k[0], k[1], baseline[i], got)
			}
			continue
		}
		moved++
		if got == dead {
			t.Fatalf("key (%d,%d) still routed to dead shard %d", k[0], k[1], dead)
		}
		if !r.Alive(got) {
			t.Fatalf("key (%d,%d) routed to dead shard %d", k[0], k[1], got)
		}
	}
	if moved == 0 {
		t.Fatal("dead shard owned no keys; the test proves nothing")
	}
	if bound := 2 * len(keys) / shards; moved > bound {
		t.Errorf("death of 1/%d shards moved %d of %d keys, want <= %d", shards, moved, len(keys), bound)
	}

	// Revival restores the original placement exactly, deterministically.
	r.Revive(dead)
	for i, k := range keys {
		if got := r.Owner(int(k[0]), k[1]); got != baseline[i] {
			t.Fatalf("after revival key (%d,%d) owned by %d, originally %d", k[0], k[1], got, baseline[i])
		}
	}
}

// TestRingFailoverCascade: with repeated deaths the survivors absorb the
// orphaned keys; killing the last shard panics rather than placing keys on a
// serverless ring, and double-kill/double-revive are idempotent.
func TestRingFailoverCascade(t *testing.T) {
	r, err := NewRing(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeys(100, 8)
	r.MarkDead(0)
	r.MarkDead(0) // idempotent
	r.MarkDead(1)
	if r.Live() != 1 {
		t.Fatalf("live = %d, want 1", r.Live())
	}
	for _, k := range keys {
		if got := r.Owner(int(k[0]), k[1]); got != 2 {
			t.Fatalf("sole survivor does not own key (%d,%d): owner %d", k[0], k[1], got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("killing the last live shard did not panic")
		}
	}()
	r.MarkDead(2)
}
