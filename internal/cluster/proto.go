package cluster

// This file is the client-side protocol: the message types that cross the
// client <-> shard boundary and the routing that splits a file operation
// into per-shard messages. Everything a client asks of a shard travels as
// one of three requests — session open (hint disclosure), read, session
// close — each delivered after Config.NetCycles of one-way network latency;
// replies pay the same latency back. Nothing else crosses the boundary:
// shards never call into clients and clients never touch a shard's cache,
// which is exactly the seam that makes sharding, batching and admission
// control expressible.

// Status is a shard's reply to one read part. Anything but StatusOK is a
// failure from the client's point of view; the client's retry policy and
// per-shard breaker decide what happens next.
type Status uint8

const (
	// StatusOK: the part was served; the data is good.
	StatusOK Status = iota
	// StatusShed: admission control rejected the part before service — the
	// shard's queue already owes more latency than its budget. Retry after
	// backoff.
	StatusShed
	// StatusEIO: the part was served but the underlying read failed.
	StatusEIO
	// StatusDead: the shard is dead — the part was rejected at arrival,
	// killed in its queue, or its shard died mid-service. The ring has
	// re-routed the shard's keys; a retry reaches the new owner.
	StatusDead
)

// String renders the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusShed:
		return "SHED"
	case StatusEIO:
		return "EIO"
	case StatusDead:
		return "DEAD"
	}
	return "Status(?)"
}

// SessionKey names one client session; it scopes a shard's per-session TIP
// hint stream so one client's disclosures are never bypassed against
// another's.
type SessionKey struct {
	Client  int
	Session int
}

// HintSeg is one disclosed future read in a Hint request: [Off, Off+N) of
// corpus file File. Offsets are in the file's own byte space regardless of
// which shard owns which block.
type HintSeg struct {
	File int
	Off  int64
	N    int64
}

// ReadPart is one shard's slice of a client read: the client routes a read
// of [Off, Off+N) through the ring and issues one ReadPart per contiguous
// run of same-owner placement groups, in offset order.
type ReadPart struct {
	Shard int
	Off   int64
	N     int64
}

// splitRange routes the byte range [off, off+n) of file (size fileSize,
// blocks of blockSize grouped into placement groups of groupBlocks) across
// the ring: consecutive blocks with one owner merge into a single part.
// Parts come back in offset order — the order the client will consume them —
// so per-shard hint disclosures are already in consumption order.
func splitRange(r *Ring, groupBlocks, blockSize int64, file int, off, n, fileSize int64) []ReadPart {
	end := off + n
	if end > fileSize {
		end = fileSize
	}
	if off < 0 || off >= end {
		return nil
	}
	first := off / blockSize
	last := (end - 1) / blockSize

	var parts []ReadPart
	runStart := first
	runOwner := r.Owner(file, first/groupBlocks)
	flush := func(b int64) { // run covers [runStart, b)
		pOff := runStart * blockSize
		if pOff < off {
			pOff = off
		}
		pEnd := b * blockSize
		if pEnd > end {
			pEnd = end
		}
		parts = append(parts, ReadPart{Shard: runOwner, Off: pOff, N: pEnd - pOff})
	}
	for b := first + 1; b <= last; b++ {
		if owner := r.Owner(file, b/groupBlocks); owner != runOwner {
			flush(b)
			runStart, runOwner = b, owner
		}
	}
	flush(last + 1)
	return parts
}
