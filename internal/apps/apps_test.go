package apps

import (
	"testing"

	"spechint/internal/core"
	"spechint/internal/fsim"
	"spechint/internal/vm"
	"spechint/internal/workload"
)

// runBundle executes one variant of a prepared bundle. Each call needs a
// fresh bundle because the fs/cache state is per-run.
func runBundle(t *testing.T, app App, mode core.Mode) *core.RunStats {
	t.Helper()
	b, err := Build(app, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	var prog *vm.Program
	switch mode {
	case core.ModeNoHint:
		prog = b.Original
	case core.ModeSpeculating:
		prog = b.Transformed
	case core.ModeManual:
		prog = b.Manual
	}
	sys, err := core.New(core.DefaultConfig(mode), prog, b.FS)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatalf("%v %v: %v", app, mode, err)
	}
	return st
}

func TestAgrepCorrectAcrossModes(t *testing.T) {
	orig := runBundle(t, Agrep, core.ModeNoHint)
	spec := runBundle(t, Agrep, core.ModeSpeculating)
	man := runBundle(t, Agrep, core.ModeManual)
	if orig.ExitCode != spec.ExitCode || orig.ExitCode != man.ExitCode {
		t.Fatalf("exit codes: orig %d spec %d man %d", orig.ExitCode, spec.ExitCode, man.ExitCode)
	}
	// Verify the match count against a host-side scan.
	fs := fsim.New(8192)
	workload.SetBenchLayout(fs)
	scale := TestScale()
	names := scale.Agrep.Build(fs)
	want := workload.CountPattern(fs, names, scale.Agrep.Pattern)
	if got := int(orig.ExitCode >> 20); got != want {
		t.Fatalf("match count = %d, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("workload planted no patterns")
	}
}

func TestGnuldCorrectAcrossModes(t *testing.T) {
	orig := runBundle(t, Gnuld, core.ModeNoHint)
	spec := runBundle(t, Gnuld, core.ModeSpeculating)
	man := runBundle(t, Gnuld, core.ModeManual)
	if orig.ExitCode != spec.ExitCode || orig.ExitCode != man.ExitCode {
		t.Fatalf("exit codes: orig %d spec %d man %d", orig.ExitCode, spec.ExitCode, man.ExitCode)
	}
	if orig.ExitCode <= 0 {
		t.Fatalf("degenerate checksum %d", orig.ExitCode)
	}
	if orig.WriteCalls == 0 || orig.WriteBytes == 0 {
		t.Fatal("gnuld produced no output writes")
	}
}

func TestXDSCorrectAcrossModes(t *testing.T) {
	orig := runBundle(t, XDataSlice, core.ModeNoHint)
	spec := runBundle(t, XDataSlice, core.ModeSpeculating)
	man := runBundle(t, XDataSlice, core.ModeManual)
	if orig.ExitCode != spec.ExitCode || orig.ExitCode != man.ExitCode {
		t.Fatalf("exit codes: orig %d spec %d man %d", orig.ExitCode, spec.ExitCode, man.ExitCode)
	}
	if orig.ExitCode <= 0 {
		t.Fatalf("degenerate checksum %d", orig.ExitCode)
	}
}

func TestXDSReadCountMatchesSliceBlocks(t *testing.T) {
	st := runBundle(t, XDataSlice, core.ModeNoHint)
	fs := fsim.New(8192)
	scale := TestScale()
	_, slices := scale.XDS.Build(fs)
	expected := int64(1) // header read
	var lastBlock int64 = -1
	for _, sl := range slices {
		for _, blk := range workload.SliceBlocks(scale.XDS.N, sl) {
			off := blk * 8192
			if off != lastBlock {
				expected++
				lastBlock = off
			}
		}
	}
	if st.ReadCalls != expected {
		t.Fatalf("ReadCalls = %d, want %d (1 header + slice blocks)", st.ReadCalls, expected)
	}
}

func TestAgrepSpeculationHintsMostReads(t *testing.T) {
	spec := runBundle(t, Agrep, core.ModeSpeculating)
	// Paper Table 4: nearly all data-returning reads hinted (68% of all
	// calls only because of per-file EOF reads).
	scale := TestScale()
	dataReads := spec.ReadCalls - int64(scale.Agrep.NumFiles) // minus EOF reads
	if spec.HintedReads*10 < dataReads*8 {
		t.Fatalf("hinted %d of %d data reads, want >= 80%%", spec.HintedReads, dataReads)
	}
	if spec.Tip.InaccurateCalls() > spec.Tip.HintCalls/20 {
		t.Fatalf("agrep inaccurate hints %d of %d, want ~0", spec.Tip.InaccurateCalls(), spec.Tip.HintCalls)
	}
}

func TestGnuldSpeculationPartialHinting(t *testing.T) {
	spec := runBundle(t, Gnuld, core.ModeSpeculating)
	man := runBundle(t, Gnuld, core.ModeManual)
	// Gnuld's data dependencies keep speculation well below manual coverage
	// (paper: 55% vs 78%) and generate some erroneous hints.
	specFrac := float64(spec.HintedReads) / float64(spec.ReadCalls)
	manFrac := float64(man.HintedReads) / float64(man.ReadCalls)
	if specFrac >= manFrac {
		t.Fatalf("speculation hinted %.0f%% >= manual %.0f%%, want below", specFrac*100, manFrac*100)
	}
	if spec.Restarts < 5 {
		t.Fatalf("Restarts = %d, want many for data-dependent gnuld", spec.Restarts)
	}
}

func TestXDSSpeculationHintsMostReads(t *testing.T) {
	spec := runBundle(t, XDataSlice, core.ModeSpeculating)
	// After the header read everything is computable: paper says 97.5%.
	if spec.HintedReads*100 < spec.ReadCalls*85 {
		t.Fatalf("hinted %d of %d reads, want >= 85%%", spec.HintedReads, spec.ReadCalls)
	}
}

func TestTransformStatsPerApp(t *testing.T) {
	for _, app := range []App{Agrep, Gnuld, XDataSlice} {
		b, err := Build(app, TestScale())
		if err != nil {
			t.Fatal(err)
		}
		ts := b.Transform
		if ts.ChecksAdded == 0 {
			t.Errorf("%v: no COW checks added", app)
		}
		if ts.HintSites == 0 {
			t.Errorf("%v: no read sites found", app)
		}
		if ts.SizeIncreasePct() < 99 {
			t.Errorf("%v: size increase %.0f%%", app, ts.SizeIncreasePct())
		}
	}
}

func TestSpeculationNeverSlowerThanOriginalMuch(t *testing.T) {
	// The "free" design goal across all three apps at 4 disks.
	for _, app := range []App{Agrep, Gnuld, XDataSlice} {
		orig := runBundle(t, app, core.ModeNoHint)
		spec := runBundle(t, app, core.ModeSpeculating)
		ratio := float64(spec.Elapsed) / float64(orig.Elapsed)
		if ratio > 1.10 {
			t.Errorf("%v: speculating/original = %.2f, want <= 1.10", app, ratio)
		}
	}
}

func TestPostgresCorrectAcrossModes(t *testing.T) {
	orig := runBundle(t, Postgres, core.ModeNoHint)
	spec := runBundle(t, Postgres, core.ModeSpeculating)
	man := runBundle(t, Postgres, core.ModeManual)
	if orig.ExitCode != spec.ExitCode || orig.ExitCode != man.ExitCode {
		t.Fatalf("exit codes: orig %d spec %d man %d", orig.ExitCode, spec.ExitCode, man.ExitCode)
	}
	if orig.ExitCode <= 0 {
		t.Fatalf("degenerate checksum %d", orig.ExitCode)
	}
	// Joined tuples are written out.
	if orig.WriteCalls == 0 {
		t.Fatal("no join output written")
	}
	if man.HintedReads == 0 {
		t.Fatal("manual postgres hinted nothing")
	}
}

func TestPostgresSelectivityScalesReads(t *testing.T) {
	low := TestScale()
	low.Postgres.Selectivity = 10
	high := TestScale()
	high.Postgres.Selectivity = 80

	run := func(scale Scale) *core.RunStats {
		b, err := Build(Postgres, scale)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.New(core.DefaultConfig(core.ModeNoHint), b.Original, b.FS)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	lo, hi := run(low), run(high)
	if hi.ReadCalls <= lo.ReadCalls*3 {
		t.Fatalf("reads at 80%% (%d) not much above 10%% (%d)", hi.ReadCalls, lo.ReadCalls)
	}
}
