package apps

import (
	"testing"

	"spechint/internal/par"
)

// TestProgramCacheReuse: two builds at the same (app, scale) share one set
// of assembled programs but get fresh file systems.
func TestProgramCacheReuse(t *testing.T) {
	ResetProgramCache()
	a, err := Build(Agrep, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Agrep, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if a.Original != b.Original || a.Transformed != b.Transformed || a.Manual != b.Manual {
		t.Error("same (app, scale) did not reuse cached programs")
	}
	if a.FS == b.FS {
		t.Error("builds shared a file system; each run must own its file state")
	}
	if a.Transform != b.Transform {
		t.Error("transform stats diverged for one cached artifact set")
	}
	if n := ProgramCacheLen(); n != 1 {
		t.Errorf("cache holds %d artifact sets, want 1", n)
	}
}

// TestProgramCacheKeyedByScale: any scale difference — here the
// per-process prefix and seed — is a distinct artifact set.
func TestProgramCacheKeyedByScale(t *testing.T) {
	ResetProgramCache()
	base := TestScale()
	if _, err := Build(Agrep, base); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Agrep, base.WithProcess(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if n := ProgramCacheLen(); n != 2 {
		t.Errorf("cache holds %d artifact sets, want 2 (prefix/seed must key)", n)
	}
}

// TestProgramCacheConcurrentBuilds: many concurrent builders on a few keys
// produce consistent artifacts (run under -race, this is the smoke test
// for the cache's concurrency story).
func TestProgramCacheConcurrentBuilds(t *testing.T) {
	ResetProgramCache()
	scale := TestScale()
	bundles, err := par.MapErr(8, 16, func(i int) (*Bundle, error) {
		return Build(App(i%3), scale) // Agrep, Gnuld, XDataSlice
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bundles {
		ref := bundles[i%3]
		if b.Original != ref.Original || b.Transformed != ref.Transformed {
			t.Fatalf("cell %d: cached programs diverged from cell %d", i, i%3)
		}
	}
	if n := ProgramCacheLen(); n != 3 {
		t.Errorf("cache holds %d artifact sets, want 3", n)
	}
}
