// Package apps contains the three TIP-suite benchmark applications as VM
// assembly programs, each in two source variants:
//
//   - the original application (no hints) — SpecHint transforms this binary
//     for the speculating runs, exactly as the paper transformed unmodified
//     binaries;
//   - the manually-modified application with programmer-inserted hint calls
//     (the paper's comparison baseline), restructured where the paper's
//     authors restructured (Gnuld batches its metadata passes so hints can
//     be issued earlier).
//
// The applications are structurally faithful to the originals' access
// patterns: Agrep's reads are fully determined by its argument list, Gnuld
// chases pointers through object-file metadata, and XDataSlice's block
// addresses are computable from one header read.
package apps

import (
	"fmt"

	"spechint/internal/asm"
	"spechint/internal/fsim"
	"spechint/internal/par"
	"spechint/internal/spechint"
	"spechint/internal/trace"
	"spechint/internal/vm"
	"spechint/internal/workload"
)

// App identifies a benchmark application.
type App int

const (
	Agrep App = iota
	Gnuld
	XDataSlice
	Postgres
	// The modern suite (ROADMAP item 4): trace-built applications compiled
	// through the internal/trace replay frontend.
	LSM
	MLShard
)

func (a App) String() string {
	switch a {
	case Agrep:
		return "Agrep"
	case Gnuld:
		return "Gnuld"
	case XDataSlice:
		return "XDataSlice"
	case Postgres:
		return "Postgres"
	case LSM:
		return "LSM"
	case MLShard:
		return "MLShard"
	}
	return "unknown"
}

// Bundle is a fully prepared benchmark: file system plus the three program
// variants (original, transformed, manual). The static hint synthesis over
// the original binary lives one layer up (bench.Synth) — the analysis
// package's tests build bundles, so apps cannot import analysis.
type Bundle struct {
	App         App
	FS          *fsim.FS
	Original    *vm.Program
	Transformed *vm.Program
	Manual      *vm.Program
	Transform   spechint.Stats
}

// Build assembles and transforms both variants of app over a fresh file
// system populated at the given scale.
func Build(app App, scale Scale) (*Bundle, error) {
	fs := fsim.New(8192)
	workload.SetBenchLayout(fs)
	return BuildOn(fs, app, scale)
}

// BuildOn assembles and transforms both variants of app over an existing
// file system, populating it at the given scale. The multiprogramming layer
// uses it to lay several processes' workloads onto one shared file system;
// scale prefixes (see Scale.WithProcess) keep their file sets disjoint.
//
// The file system is populated fresh on every call (runs own their file
// state), but the expensive artifacts — the assembled original and manual
// binaries and the SpecHint transform — are deterministic functions of
// (app, scale) and come from a shared immutable cache, so a parameter
// sweep assembles each binary once instead of once per cell. The cache is
// safe for concurrent builders (see internal/par).
func BuildOn(fs *fsim.FS, app App, scale Scale) (*Bundle, error) {
	var origSrc, manSrc string
	switch app {
	case Agrep:
		spec := scale.Agrep
		names := spec.Build(fs)
		origSrc = AgrepSource(names, spec.Pattern, false)
		manSrc = AgrepSource(names, spec.Pattern, true)
	case Gnuld:
		spec := scale.Gnuld
		names := spec.Build(fs)
		origSrc = GnuldSource(names, spec, false)
		manSrc = GnuldSource(names, spec, true)
	case XDataSlice:
		spec := scale.XDS
		name, slices := spec.Build(fs)
		origSrc = XDSSource(name, slices, false)
		manSrc = XDSSource(name, slices, true)
	case Postgres:
		spec := scale.Postgres
		outer, inner := spec.Build(fs)
		origSrc = PostgresSource(outer, inner, spec, false)
		manSrc = PostgresSource(outer, inner, spec, true)
	case LSM:
		tr := scale.LSM.Build(fs)
		origSrc = trace.Source(tr, false)
		manSrc = trace.Source(tr, true)
	case MLShard:
		tr := scale.MLShard.Build(fs)
		origSrc = trace.Source(tr, false)
		manSrc = trace.Source(tr, true)
	default:
		return nil, fmt.Errorf("apps: unknown app %d", app)
	}

	pr, err := progCache.Get(progKey{app, scale}, func() (*cachedProgs, error) {
		return assembleAndTransform(app, origSrc, manSrc)
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{
		App: app, FS: fs,
		Original: pr.orig, Transformed: pr.transformed, Manual: pr.man,
		Transform: pr.tstats,
	}, nil
}

// progKey identifies one set of built program artifacts. Scale is a value
// type of plain ints and strings, so it is a usable (and exact) map key:
// any scale change — selectivity, prefix, seed — is a different key.
type progKey struct {
	app   App
	scale Scale
}

// cachedProgs are the immutable artifacts shared across cells. vm.Program
// values are never mutated after assembly (machines copy Data into their
// own memory and only read Text), so handing one instance to many
// concurrently-running systems is safe.
type cachedProgs struct {
	orig        *vm.Program
	man         *vm.Program
	transformed *vm.Program
	tstats      spechint.Stats
}

// progCache memoizes assembleAndTransform per (app, scale) for the life of
// the process. Sweeps touch a handful of scales, so the cache stays small;
// ResetProgramCache drops it (tests that measure the transform use it).
var progCache = par.NewCache[progKey, *cachedProgs]()

// ResetProgramCache empties the shared program cache.
func ResetProgramCache() { progCache.Reset() }

// ProgramCacheLen reports how many (app, scale) artifact sets are cached.
func ProgramCacheLen() int { return progCache.Len() }

// assembleAndTransform builds the three program variants from their
// sources. Note the transform's Stats.Elapsed is the wall-clock time of
// the one cached transform, not of the current caller.
func assembleAndTransform(app App, origSrc, manSrc string) (*cachedProgs, error) {
	orig, err := asm.Assemble(origSrc)
	if err != nil {
		return nil, fmt.Errorf("apps: %v original: %w", app, err)
	}
	man, err := asm.Assemble(manSrc)
	if err != nil {
		return nil, fmt.Errorf("apps: %v manual: %w", app, err)
	}
	tp, tstats, err := spechint.Transform(orig, spechint.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("apps: %v transform: %w", app, err)
	}
	return &cachedProgs{orig: orig, man: man, transformed: tp, tstats: tstats}, nil
}

// Scale bundles the three workload specs so experiments can run at full
// benchmark scale or at a small test scale.
type Scale struct {
	Agrep    workload.AgrepSpec
	Gnuld    workload.GnuldSpec
	XDS      workload.XDSSpec
	Postgres workload.PostgresSpec
	LSM      workload.LSMSpec
	MLShard  workload.MLShardSpec
}

// FullScale is the benchmark scale used for the paper's tables and figures.
func FullScale() Scale {
	return Scale{
		Agrep:    workload.DefaultAgrep(),
		Gnuld:    workload.DefaultGnuld(),
		XDS:      workload.DefaultXDS(),
		Postgres: workload.DefaultPostgres(20),
		LSM:      workload.DefaultLSM(),
		MLShard:  workload.DefaultMLShard(),
	}
}

// SweepScale is FullScale with lighter XDataSlice and Gnuld inputs, for the
// parameter-sweep experiments (Figures 5 and 6 run dozens of full runs).
// The trace-built apps shrink too: their replay programs embed one table
// record per access, so sweep cells stay cheap to assemble and run.
func SweepScale() Scale {
	s := FullScale()
	s.XDS.NumSlices = 12
	s.Gnuld.NumFiles = 120
	s.LSM.TableSize = 1 << 20
	s.LSM.ChunkSize = 64 << 10
	s.LSM.Lookups = 32
	s.MLShard.Shards = 8
	s.MLShard.ShardSize = 1 << 20
	s.MLShard.ReadSize = 32 << 10
	return s
}

// WithProcess returns the scale adjusted for process i of a multiprogrammed
// group sharing one file system: every workload gets a per-process path
// prefix (disjoint file sets — each process reads its own data, as in the
// paper's multi-client TIP runs) and a seed offset (distinct content and
// access patterns, so N processes are N different instances, not N replicas).
func (s Scale) WithProcess(i int, seedStep int64) Scale {
	step := int64(i) * seedStep
	prefix := fmt.Sprintf("p%d/", i)
	s.Agrep.Prefix = prefix
	s.Agrep.Seed += step
	s.Gnuld.Prefix = prefix
	s.Gnuld.Seed += step
	s.XDS.Prefix = prefix
	s.XDS.Seed += step
	s.Postgres.Prefix = prefix
	s.Postgres.Seed += step
	s.LSM.Prefix = prefix
	s.LSM.Seed += step
	s.MLShard.Prefix = prefix
	s.MLShard.Seed += step
	return s
}

// TestScale is a small, fast scale for unit tests.
func TestScale() Scale {
	return Scale{
		Agrep:    workload.AgrepSpec{NumFiles: 24, MeanSize: 7000, Pattern: "ENOTREACHED", Plants: 2, Seed: 1},
		Gnuld:    workload.GnuldSpec{NumFiles: 12, NumSections: 3, SectionSize: 4000, SymtabSize: 512, StrtabSize: 256, Seed: 2},
		XDS:      workload.XDSSpec{N: 64, NumSlices: 6, Seed: 3},
		Postgres: workload.PostgresSpec{OuterTuples: 2000, InnerTuples: 4000, InnerSize: 256, Selectivity: 30, Seed: 4},
		LSM:      workload.LSMSpec{L0Tables: 2, L1Tables: 2, TableSize: 64 << 10, ChunkSize: 16 << 10, Lookups: 8, Seed: 5},
		MLShard:  workload.MLShardSpec{Shards: 4, ShardSize: 128 << 10, ReadSize: 32 << 10, Epochs: 2, Seed: 6},
	}
}
