package apps

import (
	"fmt"
	"strings"
)

// AgrepSource builds the Agrep benchmark (v2.04 in the paper): a full-text
// search that loops through the files named on its command line, reading
// each sequentially in 8 KB chunks and scanning for a pattern. The stream of
// read calls is completely determined by the argument list, which is why
// speculative execution hints nearly all of them.
//
// The manual variant inserts the paper's programmer hints: it disclosed the
// whole file list up front (a few lines of code — Agrep was the easy case).
//
// Exit code: (full matches << 20) | (first-byte matches & 0xfffff).
func AgrepSource(names []string, pattern string, manual bool) string {
	var b strings.Builder
	b.WriteString("; Agrep: sequential whole-file text search\n")
	b.WriteString(".equ CHUNK 8192\n.data\nbuf: .space 8192\n")
	fmt.Fprintf(&b, "pat: .asciz %q\n", pattern)
	fmt.Fprintf(&b, "patlen: .word %d\n", len(pattern))
	fmt.Fprintf(&b, "nfiles: .word %d\n", len(names))
	b.WriteString("files: .word ")
	for i := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "path%d", i)
	}
	b.WriteString("\n")
	for i, n := range names {
		fmt.Fprintf(&b, "path%d: .asciz %q\n", i, n)
	}

	b.WriteString(".text\nmain:\n")
	if manual {
		// TIPIO_SEG for every file, issued before any read.
		b.WriteString(`
    ldw  r20, nfiles
    movi r21, files
hintloop:
    beq  r20, r0, hintdone
    ldw  r1, (r21)
    movi r2, 0
    movi r3, 0x40000000   ; whole file (clamped to its size)
    syscall hintfile
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  hintloop
hintdone:
`)
	}
	b.WriteString(`
    ldw  r20, nfiles      ; remaining files
    movi r21, files       ; cursor into the path table
    movi r22, 0           ; full-match count
    movi r23, 0           ; first-byte match count
    ldb  r24, pat         ; first pattern byte
    ldw  r25, patlen
    movi r26, pat
fileloop:
    beq  r20, r0, done
    ldw  r1, (r21)
    syscall open
    blt  r1, r0, badfile  ; open failed: skip (should not happen)
    mov  r10, r1
readloop:
    mov  r1, r10
    movi r2, buf
    movi r3, CHUNK
    syscall read
    beq  r1, r0, eof
    ; scan the chunk
    movi r4, buf
    add  r5, r4, r1       ; end of valid data
scan:
    ldb  r6, (r4)
    bne  r6, r24, noc
    addi r23, r23, 1
    ; candidate: compare the rest of the pattern
    movi r8, 1
match:
    bge  r8, r25, hit     ; matched every byte
    add  r9, r4, r8
    bge  r9, r5, noc      ; pattern would run off this chunk
    ldb  r12, (r9)
    add  r13, r26, r8
    ldb  r14, (r13)
    bne  r12, r14, noc
    addi r8, r8, 1
    jmp  match
hit:
    addi r22, r22, 1
noc:
    addi r4, r4, 1
    blt  r4, r5, scan
    jmp  readloop
eof:
    mov  r1, r10
    syscall close
badfile:
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  fileloop
done:
    shli r1, r22, 20
    movi r2, 0xfffff
    and  r3, r23, r2
    or   r1, r1, r3
    syscall exit
`)
	return b.String()
}
