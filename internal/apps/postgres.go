package apps

import (
	"fmt"

	"spechint/internal/workload"
)

// PostgresSource builds the database-join benchmark from the paper's Table 1
// (Patterson's Postgres run): a sequential scan of the outer relation drives
// random fetches into an inner relation far larger than the file cache. Each
// outer tuple carries the tid of its matching inner tuple (the index
// lookup's result) or -1; selectivity controls how many tuples join.
//
// Access-pattern class: the inner fetches are data dependent on the *current
// outer chunk* — unpredictable before the chunk arrives, perfectly
// predictable afterwards. Speculation therefore strays at each outer-chunk
// boundary and hints the whole batch of inner fetches after one restart;
// the manually modified Postgres disclosed exactly those batches
// (paper Table 1: 48% improvement at 20% selectivity, 69% at 80%).
//
// Exit code: checksum over joined inner tuples, masked.
func PostgresSource(outer, inner string, spec workload.PostgresSpec, manual bool) string {
	chunkTuples := 8192 / workload.OuterTupleSize
	src := fmt.Sprintf(`; Postgres: nested join, outer scan + random inner fetches
.equ OUTSIZE %d
.equ INSIZE %d
.equ CHUNKT %d
.data
obuf:  .space 8192
ibuf:  .space %d
opath: .asciz %q
ipath: .asciz %q
.text
main:
    movi r1, opath
    syscall open
    blt  r1, r0, fail
    mov  r10, r1          ; outer fd
    movi r1, ipath
    syscall open
    blt  r1, r0, fail
    mov  r11, r1          ; inner fd
    movi r22, 1           ; checksum
chunk:
    mov  r1, r10
    movi r2, obuf
    movi r3, 8192
    syscall read
    beq  r1, r0, done
    mov  r15, r1          ; bytes in this chunk
`, workload.OuterTupleSize, spec.InnerSize, chunkTuples, spec.InnerSize, outer, inner)

	if manual {
		// Disclose the chunk's inner fetches before performing any of them.
		src += `
    ; --- manual hints: one TIPIO_FD_SEG per joining tuple in the chunk ---
    movi r4, obuf
    add  r5, r4, r15
mh:
    ldw  r6, 8(r4)        ; inner tid or -1
    blt  r6, r0, mhnext
    movi r7, INSIZE
    mul  r2, r6, r7
    mov  r1, r11
    mov  r3, r7
    syscall hintfd
mhnext:
    addi r4, r4, OUTSIZE
    blt  r4, r5, mh
`
	}
	src += `
    ; fetch pass: join every matching tuple in the chunk
    movi r4, obuf
    add  r5, r4, r15
join:
    ldw  r6, 8(r4)        ; inner tid or -1
    blt  r6, r0, jnext
    movi r7, INSIZE
    mul  r2, r6, r7
    mov  r1, r11
    movi r3, 0
    syscall seek
    mov  r1, r11
    movi r2, ibuf
    movi r3, INSIZE
    syscall read
    movi r7, INSIZE
    bne  r1, r7, fail
    ; fold the inner tuple into the result
    movi r8, ibuf
    add  r9, r8, r1
jf:
    ldw  r12, (r8)
    add  r22, r22, r12
    addi r8, r8, 16
    blt  r8, r9, jf
    ; emit the joined tuple (write-behind)
    movi r1, 1
    movi r2, ibuf
    movi r3, INSIZE
    syscall write
jnext:
    addi r4, r4, OUTSIZE
    blt  r4, r5, join
    jmp  chunk
done:
    mov  r1, r10
    syscall close
    mov  r1, r11
    syscall close
    movi r2, 0xffffff
    and  r1, r22, r2
    syscall exit
fail:
    movi r1, -3
    syscall exit
`
	return src
}
