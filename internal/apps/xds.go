package apps

import (
	"fmt"
	"strings"

	"spechint/internal/workload"
)

// XDSSource builds the XDataSlice benchmark (v2.2 in the paper, modified by
// Patterson to load data dynamically): it retrieves arbitrary slices through
// a 3-D volume far larger than the file cache, reading one block at a time.
// After the single header read, every block address is computable from the
// slice list, so speculation hints nearly every read; but the access pattern
// is random enough that the OS's sequential read-ahead wastes most of its
// prefetches (paper Table 5).
//
// The manual variant hints all blocks of a slice when the slice is
// requested, as Patterson's modified XDataSlice did.
//
// Exit code: checksum of the words of every processed block, masked.
func XDSSource(dataset string, slices []workload.Slice, manual bool) string {
	var b strings.Builder
	b.WriteString("; XDataSlice: random block reads of volume slices\n")
	fmt.Fprintf(&b, ".equ DATAOFF %d\n", workload.DataOffset)
	fmt.Fprintf(&b, ".equ ROWPAD %d\n", workload.RowPad)
	b.WriteString(".equ BLOCK 8192\n.data\nbuf: .space 8192\nhdr: .space 64\n")
	fmt.Fprintf(&b, "path: .asciz %q\n", dataset)
	fmt.Fprintf(&b, "nslices: .word %d\n", len(slices))
	b.WriteString("slices: .word ")
	for i, s := range slices {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d, %d", s.Axis, s.Index)
	}
	b.WriteString("\n.text\nmain:\n")
	b.WriteString(`
    movi r1, path
    syscall open
    blt  r1, r0, fail
    mov  r10, r1
    ; read the volume header: dimension n
    mov  r1, r10
    movi r2, hdr
    movi r3, 8
    syscall read
    ldw  r11, hdr         ; n
    ; sanity-check the dimension (also bounds speculation with a stale hdr)
    movi r2, 1
    blt  r11, r2, fail
    movi r2, 4096
    blt  r2, r11, fail
    movi r2, 4
    mul  r13, r11, r2     ; row stride = n*4 + pad
    addi r13, r13, ROWPAD
    ldw  r20, nslices
    movi r21, slices
    movi r22, 0           ; checksum
    movi r27, -1          ; last block read (dedup of consecutive repeats)
sliceloop:
    beq  r20, r0, done
    ldw  r15, (r21)       ; axis
    ldw  r16, 8(r21)      ; index
`)
	if manual {
		// Disclose every block of this slice before reading any of it.
		b.WriteString(`
    ; --- manual hints: one TIPIO_FD_SEG per distinct block of the slice ---
    movi r17, 0
    movi r28, -1          ; last hinted block
hintx:
    bge  r17, r11, hintdone
    beq  r15, r0, hax0
    mul  r18, r17, r11
    add  r18, r18, r16
    jmp  hoff
hax0:
    mul  r18, r16, r11
    add  r18, r18, r17
hoff:
    mul  r18, r18, r13
    addi r18, r18, DATAOFF
    movi r19, -8192
    and  r19, r18, r19
    beq  r19, r28, hnext
    mov  r28, r19
    mov  r1, r10
    mov  r2, r19
    movi r3, BLOCK
    syscall hintfd
hnext:
    addi r17, r17, 1
    jmp  hintx
hintdone:
`)
	}
	b.WriteString(`
    movi r17, 0           ; x (run index within the plane)
xloop:
    bge  r17, r11, nextslice
    ; run start = (axis==0 ? idx*n + x : x*n + idx) * rowbytes
    beq  r15, r0, ax0
    mul  r18, r17, r11
    add  r18, r18, r16
    jmp  offc
ax0:
    mul  r18, r16, r11
    add  r18, r18, r17
offc:
    mul  r18, r18, r13
    addi r18, r18, DATAOFF
    movi r19, -8192
    and  r19, r18, r19    ; containing block
    beq  r19, r27, skipread
    mov  r27, r19
    mov  r1, r10
    mov  r2, r19
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, buf
    movi r3, BLOCK
    syscall read
    ; render: fold the block's words into the checksum
    movi r4, buf
    add  r5, r4, r1
blk:
    ldw  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 8
    blt  r4, r5, blk
skipread:
    addi r17, r17, 1
    jmp  xloop
nextslice:
    addi r21, r21, 16
    addi r20, r20, -1
    jmp  sliceloop
done:
    mov  r1, r10
    syscall close
    movi r2, 0xffffff
    and  r1, r22, r2
    syscall exit
fail:
    movi r1, -1
    syscall exit
`)
	return b.String()
}
