package apps

import (
	"testing"

	"spechint/internal/analysis"
	"spechint/internal/core"
)

// The golden static-vs-dynamic check: the classifier's per-site predictions,
// weighted by what each site actually executed, must land near the measured
// hinted-read fraction of a speculating run.
//
// coverageTolerance documents how closely the two agree. The static model is
// deliberately coarse — two probabilities, 1.0 for argv/header-determined
// sites and 0.5 for data-dependent ones (the paper's §4.2 "limited to about
// half") — and the dynamics add effects the model ignores: the speculating
// thread starts cold, every off-track data read costs a restart during which
// hintable reads also go unhinted, and EOF probes never hint. At the scales
// below the residual error is ~0.01 for Agrep and XDataSlice and ~0.08 for
// Gnuld (the restart-coupling app), so 0.12 holds with margin while still
// failing if a class flips (any misclassification moves the prediction by
// >= 0.15 here).
const coverageTolerance = 0.12

// coverageScale puts each app in the regime where speculation has room to
// work: Gnuld needs enough files and large enough sections for the
// speculating thread to get ahead of the restart storm (at tiny scale its
// dynamic coverage collapses to ~10% for reasons the static model does not
// see), and Agrep needs multi-block files so EOF probes do not dominate.
func coverageScale() Scale {
	s := TestScale()
	s.Agrep.MeanSize = 24000
	s.Gnuld.NumFiles = 120
	s.Gnuld.SectionSize = 16000
	return s
}

func measureCoverage(t *testing.T, app App) (predicted, dynamic float64) {
	t.Helper()
	b, err := Build(app, coverageScale())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(core.DefaultConfig(core.ModeSpeculating), b.Transformed, b.FS)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadCalls == 0 {
		t.Fatalf("%v made no reads", app)
	}

	rep, err := analysis.Classify(b.Original, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[int64]analysis.SiteWeight, len(st.ReadSites))
	var siteCalls int64
	for pc, s := range st.ReadSites {
		weights[pc] = analysis.SiteWeight{Calls: s.Calls, DataCalls: s.DataCalls}
		siteCalls += s.Calls
	}
	if siteCalls != st.ReadCalls {
		t.Fatalf("%v: per-site calls %d != ReadCalls %d", app, siteCalls, st.ReadCalls)
	}
	return rep.PredictedCoverage(weights), float64(st.HintedReads) / float64(st.ReadCalls)
}

func TestStaticCoveragePredictionPerApp(t *testing.T) {
	for _, app := range []App{Agrep, Gnuld, XDataSlice} {
		pred, dyn := measureCoverage(t, app)
		if diff := pred - dyn; diff < -coverageTolerance || diff > coverageTolerance {
			t.Errorf("%v: predicted %.3f vs dynamic %.3f, |diff| > %.2f",
				app, pred, dyn, coverageTolerance)
		} else {
			t.Logf("%v: predicted %.3f dynamic %.3f", app, pred, dyn)
		}
	}
}

// Table 4's ordering must hold in both the static prediction and the
// measured run: XDataSlice > Agrep > Gnuld.
func TestCoverageOrderingStaticAndDynamic(t *testing.T) {
	predA, dynA := measureCoverage(t, Agrep)
	predG, dynG := measureCoverage(t, Gnuld)
	predX, dynX := measureCoverage(t, XDataSlice)
	if !(predX > predA && predA > predG) {
		t.Errorf("predicted ordering xds=%.3f agrep=%.3f gnuld=%.3f, want xds > agrep > gnuld",
			predX, predA, predG)
	}
	if !(dynX > dynA && dynA > dynG) {
		t.Errorf("dynamic ordering xds=%.3f agrep=%.3f gnuld=%.3f, want xds > agrep > gnuld",
			dynX, dynA, dynG)
	}
}

// Every dynamically observed read site must be statically classified: the
// CFG + taint pass reaches all code the machine executes.
func TestEveryDynamicSiteClassified(t *testing.T) {
	for _, app := range []App{Agrep, Gnuld, XDataSlice, Postgres} {
		b, err := Build(app, TestScale())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.New(core.DefaultConfig(core.ModeNoHint), b.Original, b.FS)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.Classify(b.Original, analysis.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for pc := range st.ReadSites {
			if _, ok := rep.Site(pc); !ok {
				t.Errorf("%v: dynamic read site at pc %d not in the static report", app, pc)
			}
		}
	}
}
