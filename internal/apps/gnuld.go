package apps

import (
	"fmt"
	"strings"

	"spechint/internal/workload"
)

// GnuldSource builds the Gnuld benchmark (GNU ld 2.5.2 in the paper): an
// object-code linker whose reads chase pointers through metadata. For each
// input object it reads the file header, then the symbol header (located by
// the file header), then the symbol and string tables (located by the symbol
// header), then up to nine small non-sequential debug reads (located by the
// symbol table). Finally it loops over the non-debugging sections, reading
// the corresponding section from every file, processing it, and writing
// output. The read-to-read data dependencies are what limit speculative
// hinting to about half the read calls in the paper.
//
// The manual variant reproduces the restructuring the paper describes: the
// metadata walk is batched into breadth-first passes so that hints for every
// file's next level can be issued before any of them is read.
//
// Exit code: checksum over debug chunks and section data, masked. Both
// variants compute the identical checksum.
func GnuldSource(names []string, spec workload.GnuldSpec, manual bool) string {
	var b strings.Builder
	nf := len(names)
	ns := spec.NumSections
	secBufSize := spec.SectionSize*2 + 4096

	b.WriteString("; Gnuld: object-code linker with pointer-chained metadata\n")
	fmt.Fprintf(&b, ".equ NFILES %d\n", nf)
	fmt.Fprintf(&b, ".equ NSECT %d\n", ns)
	fmt.Fprintf(&b, ".equ SECTSTRIDE %d\n", ns*workload.SectEntrySize)
	fmt.Fprintf(&b, ".equ MAGIC %d\n", workload.ObjMagic)
	b.WriteString(`.data
hdrbuf:    .space 64
symhdrbuf: .space 64
dbgbuf:    .space 64
`)
	fmt.Fprintf(&b, "symtabbuf: .space %d\n", spec.SymtabSize)
	fmt.Fprintf(&b, "strtabbuf: .space %d\n", spec.StrtabSize)
	fmt.Fprintf(&b, "secbuf:    .space %d\n", secBufSize)
	fmt.Fprintf(&b, "fds:       .space %d\n", nf*8)
	fmt.Fprintf(&b, "secttabs:  .space %d\n", nf*ns*workload.SectEntrySize)
	if manual {
		// Per-file metadata gathered level by level: symhdroff, secttaboff,
		// symtaboff, symtablen, strtaboff, strtablen, ndebug (64 B stride).
		fmt.Fprintf(&b, "meta:      .space %d\n", nf*64)
		fmt.Fprintf(&b, "dbgoffs:   .space %d\n", nf*workload.MaxDebug*8)
	}
	b.WriteString("files: .word ")
	for i := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "path%d", i)
	}
	b.WriteString("\n")
	for i, n := range names {
		fmt.Fprintf(&b, "path%d: .asciz %q\n", i, n)
	}

	b.WriteString(".text\nmain:\n    movi r19, NFILES\n    movi r18, NSECT\n    movi r22, 0   ; checksum\n")
	if manual {
		b.WriteString(gnuldManualBody)
	} else {
		b.WriteString(gnuldOriginalBody)
	}
	return b.String()
}

// Shared helper fragments. Register conventions:
//
//	r19 = NFILES, r18 = NSECT (constants)
//	r20 = file index, r23 = section index, r10 = current fd
//	r22 = checksum accumulator
//	r1-r7, r11-r16 = scratch
const gnuldCommonTail = `
closeall:
    movi r20, 0
cl1:
    bge  r20, r19, exitok
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r1, (r3)
    syscall close
    addi r20, r20, 1
    jmp  cl1
exitok:
    movi r2, 0xffffff
    and  r1, r22, r2
    syscall exit
fail:
    movi r1, -2
    syscall exit
`

const gnuldOriginalBody = `
; ---- pass 1: per-file metadata walk (deeply data dependent) ----
    movi r20, 0
pass1:
    bge  r20, r19, pass2
    ; open and remember the descriptor
    shli r2, r20, 3
    movi r3, files
    add  r3, r3, r2
    ldw  r1, (r3)
    syscall open
    blt  r1, r0, fail
    mov  r10, r1
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    stw  r10, (r3)
    ; file header
    mov  r1, r10
    movi r2, hdrbuf
    movi r3, 64
    syscall read
    movi r4, 64
    bne  r1, r4, fail
    ldw  r4, hdrbuf
    movi r5, MAGIC
    bne  r4, r5, fail
    ; section table (location from the header)
    ldw  r11, hdrbuf+24
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    movi r4, SECTSTRIDE
    mul  r6, r20, r4
    movi r2, secttabs
    add  r2, r2, r6
    mov  r1, r10
    mov  r3, r4
    syscall read
    ; symbol header (location from the header)
    ldw  r11, hdrbuf+8
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, symhdrbuf
    movi r3, 64
    syscall read
    movi r4, 64
    bne  r1, r4, fail
    ; symbol table (location from the symbol header)
    ldw  r11, symhdrbuf+0
    ldw  r12, symhdrbuf+8
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, symtabbuf
    mov  r3, r12
    syscall read
    bne  r1, r12, fail
    ; string table
    ldw  r11, symhdrbuf+16
    ldw  r12, symhdrbuf+24
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, strtabbuf
    mov  r3, r12
    syscall read
    bne  r1, r12, fail
    ; debug chunks (locations from the symbol table). The count is clamped
    ; to the format maximum, like real code bounded by its data structures —
    ; this also bounds speculation running on a stale symbol header.
    ldw  r13, symhdrbuf+32
    blt  r13, r0, dbgdone
    movi r5, 9
    blt  r5, r13, dbgdone
    movi r14, 0
dbgloop:
    bge  r14, r13, dbgdone
    shli r4, r14, 3
    movi r5, symtabbuf
    add  r5, r5, r4
    ldw  r11, (r5)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, dbgbuf
    movi r3, 64
    syscall read
    movi r4, 64
    bne  r1, r4, fail
    movi r4, dbgbuf
    addi r5, r4, 64
dsum:
    ldw  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 8
    blt  r4, r5, dsum
    addi r14, r14, 1
    jmp  dbgloop
dbgdone:
    addi r20, r20, 1
    jmp  pass1
; ---- pass 2: section-by-section link (predictable once tables are read) --
pass2:
    movi r23, 0
sectloop:
    bge  r23, r18, closeall
    movi r20, 0
sfileloop:
    bge  r20, r19, nextsect
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    ; section table entry for (file r20, section r23)
    mul  r4, r20, r18
    add  r4, r4, r23
    shli r4, r4, 4
    movi r6, secttabs
    add  r6, r6, r4
    ldw  r11, (r6)
    ldw  r12, 8(r6)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, secbuf
    mov  r3, r12
    syscall read
    bne  r1, r12, fail
    ; process the section
    movi r4, secbuf
    add  r7, r4, r1
psum:
    ldw  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 8
    blt  r4, r7, psum
    ; emit the linked output (write-behind hides its latency)
    movi r1, 1
    movi r2, secbuf
    mov  r3, r12
    syscall write
    addi r20, r20, 1
    jmp  sfileloop
nextsect:
    addi r23, r23, 1
    jmp  sectloop
` + gnuldCommonTail

const gnuldManualBody = `
; Restructured for early hinting (paper §2.1/§4.4): each metadata level is
; hinted for ALL files before any file's next level is read.
; ---- pass A: open everything, hint every header ----
    movi r20, 0
passA:
    bge  r20, r19, passBstart
    shli r2, r20, 3
    movi r3, files
    add  r3, r3, r2
    ldw  r1, (r3)
    syscall open
    blt  r1, r0, fail
    mov  r10, r1
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    stw  r10, (r3)
    mov  r1, r10
    movi r2, 0
    movi r3, 64
    syscall hintfd
    addi r20, r20, 1
    jmp  passA
; ---- pass B: read headers; hint section tables and symbol headers ----
passBstart:
    movi r20, 0
passB:
    bge  r20, r19, passCstart
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    mov  r1, r10
    movi r2, 0
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, hdrbuf
    movi r3, 64
    syscall read
    movi r4, 64
    bne  r1, r4, fail
    ldw  r4, hdrbuf
    movi r5, MAGIC
    bne  r4, r5, fail
    ; meta[f] = {symhdroff, secttaboff}
    shli r6, r20, 6
    movi r7, meta
    add  r7, r7, r6
    ldw  r11, hdrbuf+8
    stw  r11, (r7)
    ldw  r12, hdrbuf+24
    stw  r12, 8(r7)
    ; hint both next-level reads
    mov  r1, r10
    mov  r2, r12
    movi r3, SECTSTRIDE
    syscall hintfd
    mov  r1, r10
    mov  r2, r11
    movi r3, 64
    syscall hintfd
    addi r20, r20, 1
    jmp  passB
; ---- pass C: read section tables + symbol headers; hint symtab/strtab ----
passCstart:
    movi r20, 0
passC:
    bge  r20, r19, passDstart
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    shli r6, r20, 6
    movi r7, meta
    add  r7, r7, r6
    ; section table
    ldw  r11, 8(r7)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    movi r4, SECTSTRIDE
    mul  r6, r20, r4
    movi r2, secttabs
    add  r2, r2, r6
    mov  r1, r10
    mov  r3, r4
    syscall read
    ; symbol header
    ldw  r11, (r7)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, symhdrbuf
    movi r3, 64
    syscall read
    movi r4, 64
    bne  r1, r4, fail
    ; meta[f] += {symtaboff, symtablen, strtaboff, strtablen, ndebug}
    ldw  r11, symhdrbuf+0
    stw  r11, 16(r7)
    ldw  r12, symhdrbuf+8
    stw  r12, 24(r7)
    ldw  r13, symhdrbuf+16
    stw  r13, 32(r7)
    ldw  r14, symhdrbuf+24
    stw  r14, 40(r7)
    ldw  r15, symhdrbuf+32
    stw  r15, 48(r7)
    mov  r1, r10
    mov  r2, r11
    mov  r3, r12
    syscall hintfd
    mov  r1, r10
    mov  r2, r13
    mov  r3, r14
    syscall hintfd
    addi r20, r20, 1
    jmp  passC
; ---- pass D: read symtab/strtab; record and hint debug chunks ----
passDstart:
    movi r20, 0
passD:
    bge  r20, r19, passEstart
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    shli r6, r20, 6
    movi r7, meta
    add  r7, r7, r6
    ldw  r11, 16(r7)
    ldw  r12, 24(r7)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, symtabbuf
    mov  r3, r12
    syscall read
    bne  r1, r12, fail
    ldw  r11, 32(r7)
    ldw  r12, 40(r7)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, strtabbuf
    mov  r3, r12
    syscall read
    bne  r1, r12, fail
    ; debug chunk locations come from the symtab; hint them all. Clamp the
    ; count as the original does.
    ldw  r13, 48(r7)
    blt  r13, r0, mdbgdone
    movi r5, 9
    blt  r5, r13, mdbgdone
    movi r14, 0
mdbg:
    bge  r14, r13, mdbgdone
    shli r4, r14, 3
    movi r5, symtabbuf
    add  r5, r5, r4
    ldw  r11, (r5)
    ; dbgoffs[f][d] = r11
    movi r5, 72
    mul  r6, r20, r5
    shli r4, r14, 3
    add  r6, r6, r4
    movi r5, dbgoffs
    add  r5, r5, r6
    stw  r11, (r5)
    mov  r1, r10
    mov  r2, r11
    movi r3, 64
    syscall hintfd
    addi r14, r14, 1
    jmp  mdbg
mdbgdone:
    addi r20, r20, 1
    jmp  passD
; ---- pass E: read the debug chunks ----
passEstart:
    movi r20, 0
passE:
    bge  r20, r19, passFstart
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    shli r6, r20, 6
    movi r7, meta
    add  r7, r7, r6
    ldw  r13, 48(r7)
    blt  r13, r0, edbgdone
    movi r5, 9
    blt  r5, r13, edbgdone
    movi r14, 0
edbg:
    bge  r14, r13, edbgdone
    movi r5, 72
    mul  r6, r20, r5
    shli r4, r14, 3
    add  r6, r6, r4
    movi r5, dbgoffs
    add  r5, r5, r6
    ldw  r11, (r5)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, dbgbuf
    movi r3, 64
    syscall read
    movi r4, 64
    bne  r1, r4, fail
    movi r4, dbgbuf
    addi r5, r4, 64
medsum:
    ldw  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 8
    blt  r4, r5, medsum
    addi r14, r14, 1
    jmp  edbg
edbgdone:
    addi r20, r20, 1
    jmp  passE
; ---- pass F: per section, hint all files' sections, then read them ----
passFstart:
    movi r23, 0
msectloop:
    bge  r23, r18, closeall
    ; hint sweep
    movi r20, 0
mhint:
    bge  r20, r19, mread
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    mul  r4, r20, r18
    add  r4, r4, r23
    shli r4, r4, 4
    movi r6, secttabs
    add  r6, r6, r4
    ldw  r11, (r6)
    ldw  r12, 8(r6)
    mov  r1, r10
    mov  r2, r11
    mov  r3, r12
    syscall hintfd
    addi r20, r20, 1
    jmp  mhint
mread:
    movi r20, 0
msread:
    bge  r20, r19, mnextsect
    shli r2, r20, 3
    movi r3, fds
    add  r3, r3, r2
    ldw  r10, (r3)
    mul  r4, r20, r18
    add  r4, r4, r23
    shli r4, r4, 4
    movi r6, secttabs
    add  r6, r6, r4
    ldw  r11, (r6)
    ldw  r12, 8(r6)
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, secbuf
    mov  r3, r12
    syscall read
    bne  r1, r12, fail
    movi r4, secbuf
    add  r7, r4, r1
mpsum:
    ldw  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 8
    blt  r4, r7, mpsum
    movi r1, 1
    movi r2, secbuf
    mov  r3, r12
    syscall write
    addi r20, r20, 1
    jmp  msread
mnextsect:
    addi r23, r23, 1
    jmp  msectloop
` + gnuldCommonTail
