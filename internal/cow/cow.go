// Package cow implements software-enforced copy-on-write, the mechanism
// SpecHint uses to keep speculative stores from disturbing normal execution
// (paper §3.2.1, inspired by software fault isolation).
//
// Memory is divided into fixed-size regions (the paper explored 128 B–8 KB
// and settled on 1024 B). The first speculative store to a region copies it;
// subsequent speculative loads and stores to that region are redirected to
// the copy, so speculation sees its own writes while the underlying memory —
// shared with the original thread — stays untouched.
package cow

import (
	"encoding/binary"
	"fmt"
)

// Map tracks which memory regions have been copied and where the copies are.
type Map struct {
	regionSize int64
	mask       int64
	regions    map[int64][]byte // region base address -> private copy

	copies      int64 // regions ever copied (cumulative across Resets)
	bytesCopied int64
	peakRegions int // most regions live at once (footprint accounting)
}

// New returns a Map with the given region size, which must be a power of two
// and at least 8 (so an aligned word never spans three regions).
func New(regionSize int) *Map {
	rs := int64(regionSize)
	if rs < 8 || rs&(rs-1) != 0 {
		panic(fmt.Sprintf("cow: region size %d must be a power of two >= 8", regionSize))
	}
	return &Map{
		regionSize: rs,
		mask:       ^(rs - 1),
		regions:    make(map[int64][]byte),
	}
}

// RegionSize returns the configured region size in bytes.
func (m *Map) RegionSize() int { return int(m.regionSize) }

// Regions returns the number of currently copied regions.
func (m *Map) Regions() int { return len(m.regions) }

// Copies returns the number of region copies made since the last Reset.
func (m *Map) Copies() int64 { return m.copies }

// BytesCopied returns the number of bytes copied since the last Reset.
func (m *Map) BytesCopied() int64 { return m.bytesCopied }

// PeakRegions returns the most regions ever live at once — the copy-on-write
// contribution to the process's memory footprint.
func (m *Map) PeakRegions() int { return m.peakRegions }

// Reset discards all copies; the restart protocol calls this when a new
// speculation begins.
func (m *Map) Reset() {
	clear(m.regions)
}

// Covered reports whether addr lies in a copied region.
func (m *Map) Covered(addr int64) bool {
	_, ok := m.regions[addr&m.mask]
	return ok
}

// ensure returns the copy covering addr, creating it from mem if needed,
// and reports whether a fresh copy was made.
func (m *Map) ensure(mem []byte, addr int64) ([]byte, bool) {
	base := addr & m.mask
	if c, ok := m.regions[base]; ok {
		return c, false
	}
	c := make([]byte, m.regionSize)
	end := base + m.regionSize
	if base < int64(len(mem)) {
		if end > int64(len(mem)) {
			end = int64(len(mem))
		}
		copy(c, mem[base:end])
	}
	m.regions[base] = c
	m.copies++
	m.bytesCopied += m.regionSize
	if len(m.regions) > m.peakRegions {
		m.peakRegions = len(m.regions)
	}
	return c, true
}

// LoadByte reads one byte at addr, from the copy if the region is copied.
func (m *Map) LoadByte(mem []byte, addr int64) byte {
	if c, ok := m.regions[addr&m.mask]; ok {
		return c[addr&^m.mask]
	}
	return mem[addr]
}

// StoreByte writes one byte at addr into the copy, creating it if needed.
// It reports whether a fresh region copy was made (the caller charges the
// copy cost in cycles).
func (m *Map) StoreByte(mem []byte, addr int64, v byte) bool {
	c, copied := m.ensure(mem, addr)
	c[addr&^m.mask] = v
	return copied
}

// LoadWord reads a 64-bit little-endian word at addr, honoring copies. The
// word may span two regions.
func (m *Map) LoadWord(mem []byte, addr int64) int64 {
	base := addr & m.mask
	if addr+8 <= base+m.regionSize {
		if c, ok := m.regions[base]; ok {
			return int64(binary.LittleEndian.Uint64(c[addr&^m.mask:]))
		}
		return int64(binary.LittleEndian.Uint64(mem[addr:]))
	}
	// Spans two regions: assemble byte by byte.
	var v uint64
	for i := int64(0); i < 8; i++ {
		v |= uint64(m.LoadByte(mem, addr+i)) << (8 * i)
	}
	return int64(v)
}

// StoreWord writes a 64-bit little-endian word at addr into copies, creating
// them as needed. It returns the number of fresh region copies made (0-2).
func (m *Map) StoreWord(mem []byte, addr int64, v int64) int {
	base := addr & m.mask
	if addr+8 <= base+m.regionSize {
		c, copied := m.ensure(mem, addr)
		binary.LittleEndian.PutUint64(c[addr&^m.mask:], uint64(v))
		if copied {
			return 1
		}
		return 0
	}
	n := 0
	for i := int64(0); i < 8; i++ {
		if m.StoreByte(mem, addr+i, byte(uint64(v)>>(8*i))) {
			n++
		}
	}
	return n
}
