package cow

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, 4, 7, 100, 1023} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
	for _, good := range []int{8, 128, 1024, 8192} {
		if m := New(good); m.RegionSize() != good {
			t.Errorf("RegionSize = %d, want %d", m.RegionSize(), good)
		}
	}
}

func TestStoreRedirectsLoadsNotMemory(t *testing.T) {
	mem := make([]byte, 4096)
	mem[100] = 7
	m := New(128)
	if got := m.LoadByte(mem, 100); got != 7 {
		t.Fatalf("LoadByte before copy = %d, want 7", got)
	}
	copied := m.StoreByte(mem, 100, 42)
	if !copied {
		t.Fatal("first store did not copy the region")
	}
	if mem[100] != 7 {
		t.Fatal("speculative store mutated shared memory")
	}
	if got := m.LoadByte(mem, 100); got != 42 {
		t.Fatalf("LoadByte after store = %d, want 42", got)
	}
	// Neighbors in the same region read their pre-copy values.
	mem[101] = 9 // mutation AFTER copy is invisible to speculation
	if got := m.LoadByte(mem, 101); got != 0 {
		t.Fatalf("LoadByte(101) = %d, want snapshot value 0", got)
	}
	// Uncopied region still reads through.
	mem[3000] = 5
	if got := m.LoadByte(mem, 3000); got != 5 {
		t.Fatalf("LoadByte uncopied = %d, want 5", got)
	}
}

func TestSecondStoreSameRegionNoCopy(t *testing.T) {
	mem := make([]byte, 1024)
	m := New(128)
	m.StoreByte(mem, 10, 1)
	if m.StoreByte(mem, 20, 2) {
		t.Fatal("second store in same region copied again")
	}
	if m.Copies() != 1 || m.Regions() != 1 {
		t.Fatalf("copies=%d regions=%d, want 1,1", m.Copies(), m.Regions())
	}
	if m.BytesCopied() != 128 {
		t.Fatalf("BytesCopied = %d, want 128", m.BytesCopied())
	}
}

func TestWordRoundTrip(t *testing.T) {
	mem := make([]byte, 1024)
	m := New(64)
	if n := m.StoreWord(mem, 96, 0x1122334455667788); n != 1 {
		t.Fatalf("StoreWord copies = %d, want 1", n)
	}
	if got := m.LoadWord(mem, 96); got != 0x1122334455667788 {
		t.Fatalf("LoadWord = %x", got)
	}
	for i := 96; i < 104; i++ {
		if mem[i] != 0 {
			t.Fatal("StoreWord leaked into shared memory")
		}
	}
}

func TestWordSpanningRegions(t *testing.T) {
	mem := make([]byte, 1024)
	for i := range mem {
		mem[i] = byte(i)
	}
	m := New(64)
	// addr 60: bytes 60..67 span regions [0,64) and [64,128).
	n := m.StoreWord(mem, 60, -1)
	if n != 2 {
		t.Fatalf("spanning StoreWord copies = %d, want 2", n)
	}
	if got := m.LoadWord(mem, 60); got != -1 {
		t.Fatalf("spanning LoadWord = %x, want all ones", got)
	}
	// Reading a spanning word with only through-memory regions.
	m2 := New(64)
	want := int64(0)
	for i := 7; i >= 0; i-- {
		want = want<<8 | int64(mem[60+i])
	}
	_ = want
	got := m2.LoadWord(mem, 60)
	var expect uint64
	for i := 7; i >= 0; i-- {
		expect = expect<<8 | uint64(mem[60+i])
	}
	if uint64(got) != expect {
		t.Fatalf("uncopied spanning LoadWord = %x, want %x", got, expect)
	}
}

func TestCoveredAndReset(t *testing.T) {
	mem := make([]byte, 1024)
	m := New(128)
	m.StoreByte(mem, 10, 1)
	if !m.Covered(127) || m.Covered(128) {
		t.Fatal("Covered boundaries wrong")
	}
	m.Reset()
	if m.Regions() != 0 || m.Covered(10) {
		t.Fatal("Reset did not clear copies")
	}
	// Copies counter is cumulative across resets.
	if m.Copies() != 1 {
		t.Fatalf("Copies after reset = %d, want cumulative 1", m.Copies())
	}
	if got := m.LoadByte(mem, 10); got != 0 {
		t.Fatalf("LoadByte after reset = %d, want memory value 0", got)
	}
}

func TestRegionAtEndOfMemory(t *testing.T) {
	mem := make([]byte, 100) // not region aligned
	m := New(64)
	mem[99] = 3
	m.StoreByte(mem, 99, 8)
	if got := m.LoadByte(mem, 99); got != 8 {
		t.Fatalf("LoadByte = %d, want 8", got)
	}
	if mem[99] != 3 {
		t.Fatal("shared memory mutated")
	}
}

// Property: a sequence of speculative stores never changes shared memory,
// and speculative loads always see the most recent speculative store (or
// the snapshot value at copy time).
func TestPropertyIsolationAndVisibility(t *testing.T) {
	type op struct {
		Addr uint16
		Val  byte
	}
	f := func(ops []op) bool {
		mem := make([]byte, 1<<16)
		for i := range mem {
			mem[i] = byte(i * 31)
		}
		orig := make([]byte, len(mem))
		copy(orig, mem)

		m := New(256)
		written := map[int64]byte{}
		for _, o := range ops {
			addr := int64(o.Addr)
			m.StoreByte(mem, addr, o.Val)
			written[addr] = o.Val
		}
		for addr, want := range written {
			if m.LoadByte(mem, addr) != want {
				return false
			}
		}
		for i := range mem {
			if mem[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LoadWord equals composing eight LoadBytes, at any alignment.
func TestPropertyWordByteConsistency(t *testing.T) {
	f := func(addrs []uint16, vals []int64) bool {
		mem := make([]byte, 1<<16+8)
		m := New(64)
		for i, a := range addrs {
			if i < len(vals) {
				m.StoreWord(mem, int64(a), vals[i])
			}
		}
		for _, a := range addrs {
			addr := int64(a)
			var fromBytes uint64
			for i := 7; i >= 0; i-- {
				fromBytes = fromBytes<<8 | uint64(m.LoadByte(mem, addr+int64(i)))
			}
			if uint64(m.LoadWord(mem, addr)) != fromBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
