package obs

import "testing"

// TestSubPrefixesLanes verifies the Sub view contract: events land on the
// parent's timeline with prefixed lanes, gauges register under prefixed
// names, and nested Subs concatenate prefixes.
func TestSubPrefixesLanes(t *testing.T) {
	tr := New(Config{})
	s0 := tr.Sub("s0:")
	s1 := tr.Sub("s1:")

	tr.Emit(10, "tip", "tip", "hint", "root")
	s0.Emit(20, "tip", "tip", "hint", "shard 0")
	s1.Emit(30, "disk0", "disk", "demand", "shard 1")
	s0.Sub("inner:").Emit(40, "q", "x", "y", "nested")

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 on the shared timeline", len(evs))
	}
	wantLanes := []string{"tip", "s0:tip", "s1:disk0", "s0:inner:q"}
	for i, want := range wantLanes {
		if evs[i].Lane != want {
			t.Errorf("event %d lane = %q, want %q", i, evs[i].Lane, want)
		}
	}
	// The view reads the same timeline it writes.
	if got := s0.Events(); len(got) != 4 {
		t.Errorf("Sub view sees %d events, want 4", len(got))
	}

	s0.AddGauge("queue_depth", func() float64 { return 7 })
	tr.AddGauge("root_gauge", func() float64 { return 1 })
	names := tr.GaugeNames()
	if len(names) != 2 || names[0] != "s0:queue_depth" || names[1] != "root_gauge" {
		t.Errorf("gauge names = %v, want [s0:queue_depth root_gauge]", names)
	}
	s1.Tick(100_000_000)
	if pts := tr.Points(); len(pts) != 1 || pts[0].Values[0] != 7 {
		t.Errorf("points via Sub tick = %v, want one sample reading 7", tr.Points())
	}
}

// TestSubNilSafe: a Sub of a nil trace is nil and stays inert everywhere.
func TestSubNilSafe(t *testing.T) {
	var tr *Trace
	s := tr.Sub("s0:")
	if s != nil {
		t.Fatal("Sub of nil trace must be nil")
	}
	if s.Enabled() {
		t.Fatal("nil Sub reports Enabled")
	}
	s.Emit(1, "a", "b", "c", "d") // must not panic
	s.AddGauge("g", func() float64 { return 0 })
	s.Tick(10)
	if s.Events() != nil || s.Points() != nil || s.Dropped() != 0 {
		t.Fatal("nil Sub leaked state")
	}
}
