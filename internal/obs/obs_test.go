package obs

import (
	"encoding/json"
	"testing"

	"spechint/internal/sim"
)

// TestNilTraceIsSafe exercises every method on a nil *Trace: the disabled
// path must be a no-op, never a panic.
func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Emit(1, "lane", "cat", "name", "detail")
	tr.Emitf(1, "lane", "cat", "name", "x=%d", 7)
	tr.Span(1, 2, "lane", "cat", "name", "detail")
	tr.AddGauge("g", func() float64 { return 1 })
	tr.Tick(100)
	if tr.Events() != nil || tr.Points() != nil || tr.GaugeNames() != nil {
		t.Fatal("nil trace returned non-nil data")
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil trace reports drops")
	}
	if _, err := tr.ChromeTraceJSON(); err == nil {
		t.Fatal("ChromeTraceJSON on nil trace must error")
	}
	if _, err := tr.MetricsJSON(); err == nil {
		t.Fatal("MetricsJSON on nil trace must error")
	}
}

func TestEventCapCountsDropped(t *testing.T) {
	tr := New(Config{MaxEvents: 3})
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), "l", "c", "n", "")
	}
	if len(tr.Events()) != 3 {
		t.Fatalf("recorded %d events, want 3", len(tr.Events()))
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

// TestTickCadence: gauges sample at most once per interval, realigned to the
// grid, and every Emit ticks implicitly.
func TestTickCadence(t *testing.T) {
	tr := New(Config{SampleInterval: 100})
	v := 0.0
	tr.AddGauge("v", func() float64 { return v })

	tr.Tick(0) // at the first boundary (nextTick starts at 0)
	v = 1
	tr.Tick(50) // inside the first interval: no sample
	tr.Tick(99)
	v = 2
	tr.Tick(100) // next boundary
	tr.Tick(101) // just past it: no sample
	v = 3
	tr.Tick(1000) // long quiet gap: exactly one catch-up sample

	pts := tr.Points()
	if len(pts) != 3 {
		t.Fatalf("got %d samples, want 3: %+v", len(pts), pts)
	}
	wantAt := []sim.Time{0, 100, 1000}
	wantV := []float64{0, 2, 3}
	for i, p := range pts {
		if p.At != wantAt[i] || p.Values[0] != wantV[i] {
			t.Fatalf("sample %d = (%d, %v), want (%d, %v)", i, p.At, p.Values[0], wantAt[i], wantV[i])
		}
	}

	// A quiet period then one sample, not a catch-up burst.
	tr.Tick(1050)
	if len(tr.Points()) != 3 {
		t.Fatal("sampled inside the realigned interval")
	}
	tr.Emit(1100, "l", "c", "n", "") // Emit ticks implicitly
	if len(tr.Points()) != 4 {
		t.Fatal("Emit did not tick the sampler")
	}
}

func TestSampleCap(t *testing.T) {
	tr := New(Config{SampleInterval: 10, MaxSamples: 2})
	tr.AddGauge("g", func() float64 { return 0 })
	for i := sim.Time(0); i < 1000; i += 10 {
		tr.Tick(i)
	}
	if len(tr.Points()) != 2 {
		t.Fatalf("got %d samples, want the cap of 2", len(tr.Points()))
	}
}

// TestChromeTraceJSONShape parses the export back and checks the trace_event
// invariants the CI smoke test also relies on: named threads, spans with
// durations, instants with scope, counters for gauges.
func TestChromeTraceJSONShape(t *testing.T) {
	tr := New(Config{SampleInterval: 100, CyclesPerUsec: 233})
	tr.AddGauge("depth", func() float64 { return 4 })
	tr.Span(233, 466, "disk0", "disk", "demand", "phys=9")
	tr.Emit(466, "core", "core", "read", "f off=0")
	tr.Tick(500)

	raw, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	byPh := map[string]int{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
		if e.Ph == "M" && e.Name == "thread_name" {
			names[e.Args["name"].(string)] = true
		}
		if e.Ph == "X" && e.Dur <= 0 {
			t.Fatalf("span with no duration: %+v", e)
		}
		if e.Ph == "i" && e.S != "t" {
			t.Fatalf("instant without thread scope: %+v", e)
		}
	}
	if byPh["X"] != 1 || byPh["i"] != 1 || byPh["C"] != 1 || byPh["M"] == 0 {
		t.Fatalf("phase counts %v, want one X, one i, one C and metadata", byPh)
	}
	if !names["disk0"] || !names["core"] {
		t.Fatalf("lane metadata missing: %v", names)
	}
	// 233 cycles at 233 cycles/us is exactly 1 us.
	if doc.TraceEvents[0].Name != "thread_name" {
		t.Fatal("metadata must precede the lane's first event")
	}
	if doc.OtherData["dropped_events"].(float64) != 0 {
		t.Fatal("dropped_events should be 0")
	}
}

func TestMetricsJSONShape(t *testing.T) {
	tr := New(Config{SampleInterval: 50})
	tr.AddGauge("a", func() float64 { return 1 })
	tr.AddGauge("b", func() float64 { return 2 })
	tr.Tick(0)
	tr.Tick(50)

	raw, err := tr.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SampleIntervalCycles int64 `json:"sample_interval_cycles"`
		Names                []string
		Points               []struct {
			At     int64     `json:"at"`
			Values []float64 `json:"values"`
		}
		DroppedEvents int64 `json:"dropped_events"`
		Events        int   `json:"events"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.SampleIntervalCycles != 50 || len(doc.Names) != 2 || len(doc.Points) != 2 {
		t.Fatalf("doc shape: %+v", doc)
	}
	for _, p := range doc.Points {
		if len(p.Values) != len(doc.Names) {
			t.Fatalf("point width %d != %d names", len(p.Values), len(doc.Names))
		}
	}
}

func TestDefaults(t *testing.T) {
	tr := New(Config{})
	if tr.cfg.MaxEvents != 1<<20 || tr.cfg.SampleInterval != 5_000_000 ||
		tr.cfg.MaxSamples != 1<<16 || tr.cfg.CyclesPerUsec != 233 {
		t.Fatalf("defaults: %+v", tr.cfg)
	}
}
