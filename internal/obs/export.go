package obs

import (
	"encoding/json"
	"fmt"

	"spechint/internal/sim"
)

// chromeEvent is one trace_event entry. The format is documented in the
// "Trace Event Format" spec consumed by chrome://tracing and Perfetto:
// complete events carry ph="X" with a duration, instants ph="i", counters
// ph="C", and metadata (thread names) ph="M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" (thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// tracePid is the single "process" every lane hangs off in the viewer.
const tracePid = 1

// ChromeTraceJSON renders the trace in Chrome trace_event JSON: load the
// output in chrome://tracing or https://ui.perfetto.dev. Each lane becomes a
// named thread row; metric gauges become counter tracks. Timestamps are
// virtual cycles converted to microseconds of testbed time.
func (t *Trace) ChromeTraceJSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: ChromeTraceJSON on a nil Trace")
	}
	t = t.root() // a Sub view exports its parent's full timeline
	usec := func(c sim.Time) float64 { return float64(c) / t.cfg.CyclesPerUsec }

	// Lanes get tids in first-seen order, which is deterministic because the
	// event stream is.
	tids := map[string]int{}
	var out []chromeEvent
	laneTid := func(lane string) int {
		tid, ok := tids[lane]
		if !ok {
			tid = len(tids) + 1
			tids[lane] = tid
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
				Args: map[string]any{"name": lane},
			})
			out = append(out, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: tracePid, Tid: tid,
				Args: map[string]any{"sort_index": tid},
			})
		}
		return tid
	}

	for _, e := range t.events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ts: usec(e.At),
			Pid: tracePid, Tid: laneTid(e.Lane),
		}
		if e.Detail != "" {
			ce.Args = map[string]any{"detail": e.Detail, "cycle": int64(e.At)}
		}
		if e.Dur > 0 {
			d := usec(e.Dur)
			ce.Ph = "X"
			ce.Dur = &d
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
	}

	for _, p := range t.points {
		for i, g := range t.gauges {
			out = append(out, chromeEvent{
				Name: g.name, Cat: "metric", Ph: "C", Ts: usec(p.At),
				Pid: tracePid, Tid: 0,
				Args: map[string]any{"value": p.Values[i]},
			})
		}
	}

	return json.MarshalIndent(chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"cycles_per_usec": t.cfg.CyclesPerUsec,
			"dropped_events":  t.dropped,
		},
	}, "", " ")
}

// metricsDoc is the flat metrics JSON layout.
type metricsDoc struct {
	SampleIntervalCycles sim.Time   `json:"sample_interval_cycles"`
	Names                []string   `json:"names"`
	Points               []pointDoc `json:"points"`
	DroppedEvents        int64      `json:"dropped_events"`
	Events               int        `json:"events"`
}

type pointDoc struct {
	At     sim.Time  `json:"at"`
	Values []float64 `json:"values"`
}

// MetricsJSON renders the sampled metric series as flat JSON: one row of
// gauge names, one array of (virtual time, values) points.
func (t *Trace) MetricsJSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: MetricsJSON on a nil Trace")
	}
	t = t.root() // a Sub view exports its parent's full series
	doc := metricsDoc{
		SampleIntervalCycles: t.cfg.SampleInterval,
		Names:                t.GaugeNames(),
		Points:               make([]pointDoc, 0, len(t.points)),
		DroppedEvents:        t.dropped,
		Events:               len(t.events),
	}
	for _, p := range t.points {
		doc.Points = append(doc.Points, pointDoc{At: p.At, Values: p.Values})
	}
	return json.MarshalIndent(doc, "", " ")
}
