// Package obs is the cross-layer observability subsystem: one structured
// event stream with per-layer lanes (disk service spans, cache admit/evict,
// TIP hint lifecycles, core reads/restarts, per-process lanes under
// multiprogramming), plus metric time series sampled on virtual-time ticks,
// with exporters to Chrome trace_event JSON (chrome://tracing / Perfetto)
// and a flat metrics JSON.
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. Every layer holds a *Trace that may be
//     nil; all methods are nil-safe, so an untraced run pays one pointer
//     test per would-be event and allocates nothing.
//  2. Determinism. A Trace only observes: it never schedules simulation
//     events, never perturbs the event queue, and samples metrics
//     opportunistically as virtual time passes through tick boundaries.
//     Enabling tracing therefore cannot change any run's cycle count —
//     internal/bench asserts this.
//  3. Bounded memory. The event list and the metric series are capped;
//     past the cap events are counted as dropped rather than recorded.
package obs

import (
	"fmt"

	"spechint/internal/sim"
)

// Config sizes a Trace. The zero value selects the defaults.
type Config struct {
	// MaxEvents caps the recorded event list; further events are dropped
	// (and counted). Default 1<<20.
	MaxEvents int

	// SampleInterval is the metric sampling period in virtual cycles.
	// Gauges are read at most once per interval, as virtual time passes a
	// tick boundary. Default 5_000_000 cycles (~21 ms of testbed time).
	SampleInterval sim.Time

	// MaxSamples caps the metric series. Default 1<<16.
	MaxSamples int

	// CyclesPerUsec converts virtual cycles to trace_event microsecond
	// timestamps. Default 233 (the testbed's 233 MHz processor).
	CyclesPerUsec float64
}

func (c Config) withDefaults() Config {
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 20
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 5_000_000
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1 << 16
	}
	if c.CyclesPerUsec <= 0 {
		c.CyclesPerUsec = 233
	}
	return c
}

// Event is one timeline entry. Dur is zero for instants and the span length
// for ranged events (disk service spans).
type Event struct {
	At     sim.Time
	Dur    sim.Time
	Lane   string // timeline row: "core", "tip", "cache", "disk0", "p1:gnuld/speculating"
	Cat    string // layer: "core", "tip", "cache", "disk", "multi"
	Name   string // event kind within the layer: "read", "hint", "evict", "demand"...
	Detail string // freeform arguments
}

// gauge is one registered metric source.
type gauge struct {
	name string
	fn   func() float64
}

// Point is one metric sample: every gauge read at one virtual time.
type Point struct {
	At     sim.Time
	Values []float64
}

// Trace is the recorder. A nil *Trace is valid everywhere and records
// nothing; construct with New to enable recording. A Trace obtained from
// Sub is a view onto its parent's buffers that prefixes lane and gauge
// names, so several instances of one layer (the per-shard TIP managers of a
// cluster, say) can share a single timeline without colliding lanes.
type Trace struct {
	cfg     Config
	events  []Event
	dropped int64

	gauges   []gauge
	points   []Point
	nextTick sim.Time

	parent *Trace // non-nil on Sub views; all storage lives on the parent
	prefix string
}

// New returns an empty enabled Trace.
func New(cfg Config) *Trace {
	return &Trace{cfg: cfg.withDefaults()}
}

// root resolves a view to the Trace that owns the buffers.
func (t *Trace) root() *Trace {
	if t.parent != nil {
		return t.parent
	}
	return t
}

// Sub returns a view of t whose events land on lanes (and whose gauges
// register under names) prefixed with prefix. The view shares the parent's
// event list, sample series and capacity bounds; Sub of a Sub concatenates
// prefixes. Sub of a nil Trace is nil, preserving the zero-overhead
// contract for untraced runs.
func (t *Trace) Sub(prefix string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{parent: t.root(), prefix: t.prefix + prefix}
}

// Enabled reports whether events are being recorded. It is the fast path
// guard: callers that must format a detail string check it first.
func (t *Trace) Enabled() bool { return t != nil }

// Emit records an instant event.
func (t *Trace) Emit(at sim.Time, lane, cat, name, detail string) {
	t.Span(at, 0, lane, cat, name, detail)
}

// Emitf records an instant event with a formatted detail. The format
// arguments are evaluated by the caller either way; prefer
// `if t.Enabled() { t.Emitf(...) }` on hot paths.
func (t *Trace) Emitf(at sim.Time, lane, cat, name, format string, args ...any) {
	if t == nil {
		return
	}
	t.Span(at, 0, lane, cat, name, fmt.Sprintf(format, args...))
}

// Span records a ranged event covering [at, at+dur).
func (t *Trace) Span(at, dur sim.Time, lane, cat, name, detail string) {
	if t == nil {
		return
	}
	r := t.root()
	r.Tick(at + dur)
	if len(r.events) >= r.cfg.MaxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{At: at, Dur: dur, Lane: t.prefix + lane, Cat: cat, Name: name, Detail: detail})
}

// Events returns the recorded timeline in emission order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.root().events
}

// Dropped returns the number of events lost to the MaxEvents cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.root().dropped
}

// AddGauge registers a metric source, read on every sampling tick. Gauges
// must be pure observers of simulation state.
func (t *Trace) AddGauge(name string, fn func() float64) {
	if t == nil {
		return
	}
	r := t.root()
	r.gauges = append(r.gauges, gauge{t.prefix + name, fn})
}

// GaugeNames returns the registered gauge names, in registration order
// (the column order of every Point).
func (t *Trace) GaugeNames() []string {
	if t == nil {
		return nil
	}
	r := t.root()
	names := make([]string, len(r.gauges))
	for i, g := range r.gauges {
		names[i] = g.name
	}
	return names
}

// Points returns the sampled metric series.
func (t *Trace) Points() []Point {
	if t == nil {
		return nil
	}
	return t.root().points
}

// Tick samples the gauges if virtual time has passed the next tick boundary.
// The simulation's run loops call it once per scheduling iteration (and every
// Emit calls it implicitly), so the series advances with virtual time without
// the Trace ever scheduling events of its own.
func (t *Trace) Tick(now sim.Time) {
	if t == nil {
		return
	}
	r := t.root()
	if len(r.gauges) == 0 || now < r.nextTick || len(r.points) >= r.cfg.MaxSamples {
		return
	}
	vals := make([]float64, len(r.gauges))
	for i, g := range r.gauges {
		vals[i] = g.fn()
	}
	r.points = append(r.points, Point{At: now, Values: vals})
	// Realign to the tick grid so a long quiet period costs one sample, not
	// a burst of catch-up samples.
	r.nextTick = (now/r.cfg.SampleInterval + 1) * r.cfg.SampleInterval
}
