package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spechint/internal/asm"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
)

// genProgram emits a random but well-formed disk-reading program: a seeded
// sequence of opens, seeks, reads, buffer scans and arithmetic over a small
// file set, ending in a checksum exit. Loops are bounded by read results, so
// every generated program terminates.
func genProgram(seed int64, nFiles int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(".data\nbuf: .space 8192\n")
	for i := 0; i < nFiles; i++ {
		fmt.Fprintf(&b, "p%d: .asciz \"fz/f%d\"\n", i, i)
	}
	b.WriteString(".text\nmain:\n    movi r22, 1\n    movi r10, -1\n")

	opened := false
	steps := 8 + rng.Intn(20)
	for s := 0; s < steps; s++ {
		switch rng.Intn(6) {
		case 0, 1: // open (closing any previous fd)
			if opened {
				b.WriteString("    mov  r1, r10\n    syscall close\n")
			}
			fmt.Fprintf(&b, "    movi r1, p%d\n    syscall open\n    mov  r10, r1\n", rng.Intn(nFiles))
			opened = true
		case 2: // seek to a random offset
			if !opened {
				continue
			}
			fmt.Fprintf(&b, "    mov  r1, r10\n    movi r2, %d\n    movi r3, 0\n    syscall seek\n",
				rng.Intn(40000))
		case 3, 4: // read a random length and fold the result
			if !opened {
				continue
			}
			fmt.Fprintf(&b, `
    mov  r1, r10
    movi r2, buf
    movi r3, %d
    syscall read
    add  r22, r22, r1
    blt  r1, r0, skip%d
    beq  r1, r0, skip%d
    ; scan the valid bytes
    movi r4, buf
    add  r5, r4, r1
scan%d:
    ldb  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, %d
    blt  r4, r5, scan%d
skip%d:
`, 256+rng.Intn(8192), s, s, s, 1+rng.Intn(16), s, s)
		case 5: // arithmetic churn (exercises COW on globals via stores)
			fmt.Fprintf(&b, `
    movi r7, %d
    mul  r22, r22, r7
    shri r22, r22, 1
    stw  r22, buf+%d
    ldw  r8, buf+%d
    xor  r22, r22, r8
`, 3+rng.Intn(100), rng.Intn(1024)*8, rng.Intn(1024)*8)
		}
	}
	if opened {
		b.WriteString("    mov  r1, r10\n    syscall close\n")
	}
	b.WriteString("    movi r2, 0xffffffff\n    and  r1, r22, r2\n    syscall exit\n")
	return b.String()
}

func genFS(seed int64, nFiles int) *fsim.FS {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	fs := fsim.New(8192)
	fs.SetLayout(8, 8)
	for i := 0; i < nFiles; i++ {
		data := make([]byte, 1000+rng.Intn(50000))
		for j := 0; j < len(data); j += 13 {
			data[j] = byte(rng.Intn(256))
		}
		fs.MustCreate(fmt.Sprintf("fz/f%d", i), data)
	}
	return fs
}

// TestFuzzSpeculationCorrectness: for any generated program, the
// SpecHint-transformed build computes the identical result under every
// runtime configuration, and stays roughly free.
func TestFuzzSpeculationCorrectness(t *testing.T) {
	const nFiles = 5
	f := func(seed int64) bool {
		src := genProgram(seed, nFiles)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Logf("seed %d: assemble: %v", seed, err)
			return false
		}
		orig, err := New(DefaultConfig(ModeNoHint), prog, genFS(seed, nFiles))
		if err != nil {
			return false
		}
		ost, err := orig.Run()
		if err != nil {
			t.Logf("seed %d: original run: %v", seed, err)
			return false
		}

		tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
		if err != nil {
			return false
		}
		for _, mutate := range []func(*Config){
			func(c *Config) {},
			func(c *Config) { c.DualProcessor = true },
			func(c *Config) { c.Disk = TestbedDisk(1) },
			func(c *Config) { c.Machine.COWRegion = 128 },
		} {
			cfg := DefaultConfig(ModeSpeculating)
			mutate(&cfg)
			sys, err := New(cfg, tp, genFS(seed, nFiles))
			if err != nil {
				return false
			}
			sst, err := sys.Run()
			if err != nil {
				t.Logf("seed %d: speculating run: %v", seed, err)
				return false
			}
			if sst.ExitCode != ost.ExitCode {
				t.Logf("seed %d: exit %d != %d\nprogram:\n%s", seed, sst.ExitCode, ost.ExitCode, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
