package core

import (
	"fmt"
	"strings"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
)

// seqReaderSrc builds a mini-Agrep: open each listed file, read it in 1 KB
// chunks, scan every byte. The read stream is fully determined by the file
// list, so speculation can run far ahead.
func seqReaderSrc(names []string, manual bool) string {
	var b strings.Builder
	b.WriteString(".equ CHUNK 1024\n.data\nbuf: .space 1024\n")
	fmt.Fprintf(&b, "nfiles: .word %d\n", len(names))
	b.WriteString("files: .word ")
	for i := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "p%d", i)
	}
	b.WriteString("\n")
	for i, n := range names {
		fmt.Fprintf(&b, "p%d: .asciz %q\n", i, n)
	}
	b.WriteString(".text\nmain:\n")
	if manual {
		// Programmer-inserted hints: disclose every file up front.
		b.WriteString(`
    ldw  r20, nfiles
    movi r21, files
hintloop:
    beq  r20, r0, hinted
    ldw  r1, (r21)
    movi r2, 0
    movi r3, 0x40000000
    syscall hintfile
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  hintloop
hinted:
`)
	}
	b.WriteString(`
    ldw  r20, nfiles
    movi r21, files
mainloop:
    beq  r20, r0, done
    ldw  r1, (r21)
    syscall open
    mov  r10, r1
readloop:
    mov  r1, r10
    movi r2, buf
    movi r3, CHUNK
    syscall read
    beq  r1, r0, eof
    movi r4, buf
    add  r5, r4, r1
scan:
    ldb  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 1
    blt  r4, r5, scan
    jmp  readloop
eof:
    mov  r1, r10
    syscall close
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  mainloop
done:
    andi r1, r22, 0xffff
    syscall exit
`)
	return b.String()
}

// chainReaderSrc builds a pointer-chasing reader: each 8-byte read holds the
// offset of the next read. Every read depends on the previous one, so
// speculation strays immediately — the Gnuld pathology.
func chainReaderSrc(name string, hops int) string {
	return fmt.Sprintf(`
.data
buf:  .space 8
path: .asciz %q
.text
main:
    movi r1, path
    syscall open
    mov  r10, r1
    movi r20, %d      ; hops
    movi r11, 0       ; offset
hop:
    beq  r20, r0, done
    mov  r1, r10
    mov  r2, r11
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, buf
    movi r3, 8
    syscall read
    ldw  r11, buf     ; next offset, data dependent
    addi r20, r20, -1
    jmp  hop
done:
    mov  r1, r10
    syscall close
    mov  r1, r11
    syscall exit
`, name, hops)
}

// buildFS creates nFiles deterministic files of size bytes each.
func buildFS(t *testing.T, nFiles, size int) (*fsim.FS, []string) {
	t.Helper()
	fs := fsim.New(8192)
	fs.SetLayout(8, 8) // stripe-unit aligned with a gap: a seek per file
	var names []string
	for i := 0; i < nFiles; i++ {
		data := make([]byte, size)
		for j := range data {
			data[j] = byte((i*7 + j*13) % 251)
		}
		name := fmt.Sprintf("src/file%03d.c", i)
		fs.MustCreate(name, data)
		names = append(names, name)
	}
	return fs, names
}

// chainFS creates one file containing a deterministic pointer chain.
func chainFS(t *testing.T, size int64, hops int) (*fsim.FS, string, int64) {
	t.Helper()
	fs := fsim.New(8192)
	data := make([]byte, size)
	// offset 0 -> hop targets scattered around the file.
	off := int64(0)
	var last int64
	for i := 0; i < hops; i++ {
		next := ((off*2654435761 + 12345) % (size - 8))
		if next < 0 {
			next = -next
		}
		next &^= 7
		for j := 0; j < 8; j++ {
			data[off+int64(j)] = byte(uint64(next) >> (8 * j))
		}
		last = off
		off = next
	}
	_ = last
	fs.MustCreate("chain.db", data)
	return fs, "chain.db", off
}

func runMode(t *testing.T, cfg Config, src string, fs *fsim.FS) *RunStats {
	t.Helper()
	prog := asm.MustAssemble(src)
	if cfg.Mode == ModeSpeculating {
		var err error
		prog, _, err = spechint.Transform(prog, spechint.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	sys, err := New(cfg, prog, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testConfigs() (orig, spec, man Config) {
	return DefaultConfig(ModeNoHint), DefaultConfig(ModeSpeculating), DefaultConfig(ModeManual)
}

func TestSequentialReaderAllModesSameResult(t *testing.T) {
	origCfg, specCfg, manCfg := testConfigs()
	results := map[string]*RunStats{}
	for name, cfg := range map[string]Config{"orig": origCfg, "spec": specCfg, "man": manCfg} {
		fs, names := buildFS(t, 12, 6000)
		results[name] = runMode(t, cfg, seqReaderSrc(names, cfg.Mode == ModeManual), fs)
	}
	if results["orig"].ExitCode != results["spec"].ExitCode ||
		results["orig"].ExitCode != results["man"].ExitCode {
		t.Fatalf("exit codes differ: orig %d spec %d man %d — speculation broke correctness",
			results["orig"].ExitCode, results["spec"].ExitCode, results["man"].ExitCode)
	}
	if results["orig"].ExitCode == 0 {
		t.Fatal("degenerate checksum 0")
	}
}

func TestSpeculationReducesElapsedTime(t *testing.T) {
	origCfg, specCfg, _ := testConfigs()
	fs1, names := buildFS(t, 20, 10000)
	orig := runMode(t, origCfg, seqReaderSrc(names, false), fs1)
	fs2, _ := buildFS(t, 20, 10000)
	spec := runMode(t, specCfg, seqReaderSrc(names, false), fs2)

	if spec.Elapsed >= orig.Elapsed {
		t.Fatalf("speculating (%d) not faster than original (%d)", spec.Elapsed, orig.Elapsed)
	}
	improvement := 1 - float64(spec.Elapsed)/float64(orig.Elapsed)
	if improvement < 0.30 {
		t.Fatalf("improvement only %.1f%%, want >= 30%% on 4 disks", improvement*100)
	}
	// Nearly all data-returning reads should be hinted (Agrep-like).
	dataReads := spec.ReadCalls - int64(len(names)) // minus EOF reads
	if spec.HintedReads < dataReads*9/10 {
		t.Fatalf("hinted %d of %d data reads", spec.HintedReads, dataReads)
	}
	if spec.Restarts == 0 {
		t.Fatal("no restarts — the first read must trigger one")
	}
	if spec.SpecBusy == 0 || spec.SpecInstrs == 0 {
		t.Fatal("speculating thread never ran")
	}
}

func TestManualHintsReduceElapsedTime(t *testing.T) {
	origCfg, _, manCfg := testConfigs()
	fs1, names := buildFS(t, 20, 10000)
	orig := runMode(t, origCfg, seqReaderSrc(names, false), fs1)
	fs2, _ := buildFS(t, 20, 10000)
	man := runMode(t, manCfg, seqReaderSrc(names, true), fs2)
	if man.Elapsed >= orig.Elapsed {
		t.Fatalf("manual (%d) not faster than original (%d)", man.Elapsed, orig.Elapsed)
	}
	if man.HintedReads == 0 {
		t.Fatal("no hinted reads in manual mode")
	}
	if man.Tip.HintCalls != int64(len(names)) {
		t.Fatalf("HintCalls = %d, want %d", man.Tip.HintCalls, len(names))
	}
}

func TestSpeculationApproachesManual(t *testing.T) {
	_, specCfg, manCfg := testConfigs()
	fs1, names := buildFS(t, 20, 10000)
	spec := runMode(t, specCfg, seqReaderSrc(names, false), fs1)
	fs2, _ := buildFS(t, 20, 10000)
	man := runMode(t, manCfg, seqReaderSrc(names, true), fs2)
	// For an Agrep-like workload the paper found speculation matches manual.
	ratio := float64(spec.Elapsed) / float64(man.Elapsed)
	if ratio > 1.35 {
		t.Fatalf("speculating/manual = %.2f, want <= 1.35 for argv-determined reads", ratio)
	}
}

func TestDataDependentChainStaysCorrectAndNearlyFree(t *testing.T) {
	origCfg, specCfg, _ := testConfigs()
	fs1, name, want := chainFS(t, 2<<20, 40)
	orig := runMode(t, origCfg, chainReaderSrc(name, 40), fs1)
	fs2, _, _ := chainFS(t, 2<<20, 40)
	spec := runMode(t, specCfg, chainReaderSrc(name, 40), fs2)

	if orig.ExitCode != want || spec.ExitCode != want {
		t.Fatalf("exit codes orig %d spec %d, want %d", orig.ExitCode, spec.ExitCode, want)
	}
	// Every read is data-dependent: speculation restarts a lot and strays.
	if spec.Restarts < 10 {
		t.Fatalf("Restarts = %d, want many for a pointer chain", spec.Restarts)
	}
	// "Free": the speculating build must not be much slower than original.
	// Erroneous prefetches can cost a little on the shared disks.
	ratio := float64(spec.Elapsed) / float64(orig.Elapsed)
	if ratio > 1.25 {
		t.Fatalf("speculating/original = %.2f on data-dependent chain, want <= 1.25", ratio)
	}
}

func TestIgnoreHintsOverheadIsSmall(t *testing.T) {
	origCfg, specCfg, _ := testConfigs()
	specCfg.TIP.IgnoreHints = true
	fs1, names := buildFS(t, 15, 8000)
	orig := runMode(t, origCfg, seqReaderSrc(names, false), fs1)
	fs2, _ := buildFS(t, 15, 8000)
	spec := runMode(t, specCfg, seqReaderSrc(names, false), fs2)
	// Figure 4: with TIP ignoring hints, the transformed application is at
	// most a few percent slower than the original.
	ratio := float64(spec.Elapsed) / float64(orig.Elapsed)
	if ratio > 1.05 {
		t.Fatalf("ignore-hints overhead ratio = %.3f, want <= 1.05", ratio)
	}
	if ratio < 0.99 {
		t.Fatalf("ignore-hints run faster than original (%.3f)? hints leaked", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	_, specCfg, _ := testConfigs()
	var elapsed []int64
	for i := 0; i < 2; i++ {
		fs, names := buildFS(t, 10, 5000)
		st := runMode(t, specCfg, seqReaderSrc(names, false), fs)
		elapsed = append(elapsed, int64(st.Elapsed))
	}
	if elapsed[0] != elapsed[1] {
		t.Fatalf("nondeterministic: %d vs %d", elapsed[0], elapsed[1])
	}
}

func TestModeProgramConsistency(t *testing.T) {
	fs, names := buildFS(t, 2, 1000)
	plain := asm.MustAssemble(seqReaderSrc(names, false))
	transformed, _, err := spechint.Transform(plain, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(ModeSpeculating), plain, fs); err == nil {
		t.Fatal("ModeSpeculating accepted untransformed program")
	}
	if _, err := New(DefaultConfig(ModeNoHint), transformed, fs); err == nil {
		t.Fatal("ModeNoHint accepted transformed program")
	}
}

func TestConfigValidation(t *testing.T) {
	fs, names := buildFS(t, 2, 1000)
	prog := asm.MustAssemble(seqReaderSrc(names, false))
	cfg := DefaultConfig(ModeNoHint)
	cfg.Disk.NumDisks = 0
	if _, err := New(cfg, prog, fs); err == nil {
		t.Fatal("bad disk config accepted")
	}
	cfg = DefaultConfig(ModeNoHint)
	cfg.TIP.Horizon = 0
	if _, err := New(cfg, prog, fs); err == nil {
		t.Fatal("bad TIP config accepted")
	}
	// Block size mismatch between fs and disk.
	cfg = DefaultConfig(ModeNoHint)
	otherFS := fsim.New(4096)
	if _, err := New(cfg, prog, otherFS); err == nil {
		t.Fatal("block size mismatch accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	_, specCfg, _ := testConfigs()
	fs, names := buildFS(t, 10, 9000)
	st := runMode(t, specCfg, seqReaderSrc(names, false), fs)
	if st.ReadCalls == 0 || st.Tip.ReadBlocks == 0 || st.Tip.ReadBytes == 0 {
		t.Fatalf("read stats empty: %+v", st.Tip)
	}
	if st.Disk.DemandReqs+st.Disk.PrefetchReqs == 0 {
		t.Fatal("no disk activity recorded")
	}
	if st.Pages.Touched == 0 || st.FootprintBytes == 0 {
		t.Fatal("memory stats empty")
	}
	if st.MedianReadGap() == 0 || st.MedianHintGap() == 0 {
		t.Fatal("gap medians empty")
	}
	if st.DilationFactor() <= 1.0 {
		t.Fatalf("dilation factor %.2f, want > 1 (COW checks slow speculation)", st.DilationFactor())
	}
	if st.Seconds() <= 0 {
		t.Fatal("elapsed seconds not positive")
	}
	if st.StallCycles() <= 0 {
		t.Fatal("no stall cycles on a disk-bound run")
	}
}

func TestCancelThrottleDisablesSpeculation(t *testing.T) {
	_, specCfg, _ := testConfigs()
	specCfg.CancelThrottle = 3
	specCfg.CancelThrottleCycles = 1 << 30 // effectively forever
	fs, name, _ := chainFS(t, 2<<20, 40)
	st := runMode(t, specCfg, chainReaderSrc(name, 40), fs)
	if st.Restarts > 3 {
		t.Fatalf("Restarts = %d with throttle 3, want <= 3", st.Restarts)
	}
}

func TestFewerDisksSlower(t *testing.T) {
	_, specCfg, _ := testConfigs()
	one := specCfg
	one.Disk = TestbedDisk(1)
	fs1, names := buildFS(t, 15, 9000)
	st1 := runMode(t, one, seqReaderSrc(names, false), fs1)
	fs4, _ := buildFS(t, 15, 9000)
	st4 := runMode(t, specCfg, seqReaderSrc(names, false), fs4)
	if st4.Elapsed >= st1.Elapsed {
		t.Fatalf("4 disks (%d) not faster than 1 disk (%d) with hints", st4.Elapsed, st1.Elapsed)
	}
}

func TestOutputCapture(t *testing.T) {
	fs := fsim.New(8192)
	fs.MustCreate("x", []byte("abc"))
	src := `
.data
msg: .asciz "hello from vm\n"
.text
main:
    movi r1, msg
    syscall print
    movi r1, 42
    syscall printint
    movi r1, 0
    syscall exit
`
	st := runMode(t, DefaultConfig(ModeNoHint), src, fs)
	if st.Output != "hello from vm\n42" {
		t.Fatalf("output = %q", st.Output)
	}
}

func TestSpeculatingOutputSuppressed(t *testing.T) {
	// Even with output-routine removal disabled, speculation must not print.
	fs, names := buildFS(t, 5, 5000)
	src := strings.Replace(seqReaderSrc(names, false), "done:\n",
		"done:\n    movi r1, endmsg\n    syscall print\n", 1)
	src = strings.Replace(src, ".data\n", ".data\nendmsg: .asciz \"END\"\n", 1)
	prog := asm.MustAssemble(src)
	opt := spechint.DefaultOptions()
	opt.RemoveOutputRoutines = false
	tp, _, err := spechint.Transform(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Output != "END" {
		t.Fatalf("output = %q, want exactly one END (no speculative prints)", st.Output)
	}
}

// TestStaticHintsReduceElapsedTime: statically synthesized whole-file hints
// issued at clock zero match manual mode's benefit while charging zero
// speculation overhead (the application binary is unmodified).
func TestStaticHintsReduceElapsedTime(t *testing.T) {
	origCfg, _, _ := testConfigs()
	fs1, names := buildFS(t, 20, 10000)
	orig := runMode(t, origCfg, seqReaderSrc(names, false), fs1)

	staticCfg := DefaultConfig(ModeStatic)
	for _, n := range names {
		staticCfg.StaticHints = append(staticCfg.StaticHints,
			StaticHint{Path: n, Off: 0, N: 0x40000000, Conf: 1.0})
	}
	fs2, _ := buildFS(t, 20, 10000)
	st := runMode(t, staticCfg, seqReaderSrc(names, false), fs2)

	if st.ExitCode != orig.ExitCode {
		t.Fatalf("exit codes differ: orig %d static %d", orig.ExitCode, st.ExitCode)
	}
	if st.Elapsed >= orig.Elapsed {
		t.Fatalf("static (%d) not faster than original (%d)", st.Elapsed, orig.Elapsed)
	}
	if st.Buckets.SpecOverhead != 0 {
		t.Fatalf("SpecOverhead = %d, want 0: static hints add no code to the app", st.Buckets.SpecOverhead)
	}
	if st.HintedReads == 0 {
		t.Fatal("no hinted reads in static mode")
	}
	if st.Tip.HintCalls != int64(len(names)) {
		t.Fatalf("HintCalls = %d, want %d", st.Tip.HintCalls, len(names))
	}
	if st.Tip.BypassedSegs != 0 || st.Tip.InaccurateCalls() != 0 {
		t.Fatalf("static hints were inaccurate: bypassed=%d inaccurate=%d",
			st.Tip.BypassedSegs, st.Tip.InaccurateCalls())
	}
}

// TestStaticModeValidation: StaticHints outside ModeStatic is a config
// error, as is ModeStatic with a transformed binary.
func TestStaticModeValidation(t *testing.T) {
	cfg := DefaultConfig(ModeNoHint)
	cfg.StaticHints = []StaticHint{{Path: "x", Off: 0, N: 1}}
	if err := cfg.Validate(); err == nil {
		t.Error("StaticHints accepted in original mode")
	}

	fs, names := buildFS(t, 2, 1000)
	prog := asm.MustAssemble(seqReaderSrc(names, false))
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(ModeStatic), tp, fs); err == nil {
		t.Error("ModeStatic accepted a transformed program")
	}
}

// TestStaticHintsSkipMissingFiles: hints naming files the run does not have
// are dropped rather than crashing or poisoning the queue.
func TestStaticHintsSkipMissingFiles(t *testing.T) {
	fs, names := buildFS(t, 4, 1000)
	cfg := DefaultConfig(ModeStatic)
	cfg.StaticHints = []StaticHint{{Path: "no/such/file", Off: 0, N: 4096, Conf: 1}}
	for _, n := range names {
		cfg.StaticHints = append(cfg.StaticHints,
			StaticHint{Path: n, Off: 0, N: 0x40000000, Conf: 1})
	}
	st := runMode(t, cfg, seqReaderSrc(names, false), fs)
	if st.Tip.HintCalls != int64(len(names)) {
		t.Fatalf("HintCalls = %d, want %d (missing file skipped)", st.Tip.HintCalls, len(names))
	}
	if st.Tip.BypassedSegs != 0 {
		t.Fatalf("BypassedSegs = %d, want 0", st.Tip.BypassedSegs)
	}
}
