package core

import (
	"errors"
	"fmt"

	"spechint/internal/sim"
	"spechint/internal/vm"
)

// maxSlice bounds a single execution slice when no events are pending, so
// elapsed-time accounting stays responsive.
const maxSlice = int64(1) << 40

// smpQuantum bounds a dual-processor scheduling window: the original thread
// runs a quantum, then the speculating thread gets the same wall window on
// its own processor. Speculative disk submissions are skewed by at most one
// quantum (~0.4 ms of testbed time).
const smpQuantum = 100_000

// ErrDeadline marks a run aborted by the MaxCycles budget; detect it with
// errors.Is to distinguish a runaway program from a real failure.
var ErrDeadline = errors.New("core: virtual-cycle deadline exceeded")

// Run executes the application to completion and returns the run statistics.
func (s *System) Run() (*RunStats, error) {
	for !s.Done() {
		s.obs.Tick(s.clk.Now())
		if s.watchdogErr != nil {
			return nil, s.watchdogErr
		}
		if s.orig.Err != nil {
			return nil, fmt.Errorf("core: original thread failed: %w", s.orig.Err)
		}
		if s.cfg.MaxCycles > 0 && int64(s.clk.Now()) > s.cfg.MaxCycles {
			return nil, fmt.Errorf("%w: MaxCycles %d", ErrDeadline, s.cfg.MaxCycles)
		}

		runOrig := false
		switch {
		case s.OrigReady():
			runOrig = true
		case s.SpecRunnable():
		default:
			// Both threads idle: advance to the next event tick (disk
			// completions that will wake the original thread). RunTick
			// drains every event due at that instant in one heap pass.
			if !s.clk.RunTick() {
				return nil, s.Diagnose("deadlock — event queue drained with the original thread blocked")
			}
			continue
		}

		budget := maxSlice
		if at, ok := s.clk.PeekTime(); ok {
			budget = int64(at - s.clk.Now())
			if budget <= 0 {
				s.clk.RunTick()
				continue
			}
		}

		// Dual-processor mode: while the original thread computes, the
		// speculating thread runs concurrently on the second processor.
		parallelSpec := s.cfg.DualProcessor && runOrig && s.SpecRunnable()
		if parallelSpec && budget > smpQuantum {
			budget = smpQuantum
		}

		if runOrig {
			start := s.clk.Now()
			used, err := s.StepOrig(budget)
			if err != nil {
				return nil, err
			}
			if parallelSpec && used > 0 {
				s.runSpecWindow(start, used)
			}
		} else if _, err := s.StepSpec(budget); err != nil {
			return nil, err
		}
	}
	return s.Finalize(), nil
}

// Done reports whether the application has exited.
func (s *System) Done() bool { return s.orig.State == vm.Halted }

// OrigReady reports whether the original thread can use the CPU now.
func (s *System) OrigReady() bool { return s.orig.State == vm.Ready }

// StepOrig runs the original thread for at most budget cycles and advances
// the clock by the cycles it actually used. The caller (Run, or the
// multiprogramming scheduler) owns event dispatch: it must only call StepOrig
// with a budget no larger than the gap to the next pending event.
func (s *System) StepOrig(budget int64) (used int64, err error) {
	start := s.clk.Now()
	s.sliceStart = start
	used, stop := s.mach.Run(s.orig, budget)
	s.clk.AdvanceTo(start + sim.Time(used))
	s.stats.OrigBusy += used
	if stop == vm.StopError {
		return used, fmt.Errorf("core: %s thread error: %w", s.orig.Name, s.orig.Err)
	}
	return used, nil
}

// StepSpec gives the speculating thread at most budget cycles — restart-
// protocol work first, then shadow-code execution — advancing the clock by
// the cycles consumed. Like StepOrig, the budget must not cross the next
// pending event.
func (s *System) StepSpec(budget int64) (used int64, err error) {
	start := s.clk.Now()
	if s.restartWork(start, budget, true) {
		return int64(s.clk.Now() - start), nil
	}
	s.sliceStart = start
	used, stop := s.mach.Run(s.spec, budget)
	s.clk.AdvanceTo(start + sim.Time(used))
	s.stats.SpecBusy += used
	switch stop {
	case vm.StopError:
		return used, fmt.Errorf("core: %s thread error: %w", s.spec.Name, s.spec.Err)
	case vm.StopFault:
		// Only the speculating thread faults (normal-mode exceptions
		// surface as StopError); it stays parked until the next restart.
		s.trace(EvSignal, "speculation faulted at PC %d", s.spec.PC)
	}
	return used, nil
}

// runSpecWindow gives the speculating thread a wall window of `window`
// cycles on the second processor, concurrent with original-thread execution
// the clock has already accounted. Restart work and execution both charge
// against the window.
func (s *System) runSpecWindow(start sim.Time, window int64) {
	for window > 0 && s.SpecRunnable() {
		if s.restartPending && s.restartRemaining == 0 {
			if !s.beginRestart(s.clk.Now()) {
				return // throttled
			}
		}
		if s.restartRemaining > 0 {
			work := s.restartRemaining
			if work > window {
				work = window
			}
			s.stats.SpecBusy += work
			s.restartRemaining -= work
			window -= work
			if s.restartRemaining == 0 {
				s.finishRestart()
			}
			continue
		}
		if s.spec.State != vm.Ready {
			return
		}
		s.sliceStart = s.clk.Now() // syscalls happen "now"; see os.go
		used, _ := s.mach.Run(s.spec, window)
		s.stats.SpecBusy += used
		window -= used
		if used == 0 {
			return
		}
	}
}

// SpecRunnable reports whether the speculating thread can use the CPU now.
func (s *System) SpecRunnable() bool {
	if s.cfg.Mode != ModeSpeculating {
		return false
	}
	if s.clk.Now() < s.disabledUntil {
		return false // §5 cancel throttle in effect
	}
	if s.restartPending || s.restartRemaining > 0 {
		return true // restart work pending
	}
	return s.spec.State == vm.Ready
}

// restartWork performs (a slice of) the restart protocol: cancel outstanding
// hints, clear the copy-on-write map, copy the original thread's stack, load
// its saved registers, and jump to the shadow instruction after the read it
// blocked on (paper §3.2.2). The work is charged against stall cycles; it
// returns true if it consumed this scheduling turn. advanceClock is false in
// dual-processor mode, where the work charges a CPU window instead of wall
// time.
func (s *System) restartWork(start sim.Time, budget int64, advanceClock bool) bool {
	if s.restartRemaining == 0 {
		if !s.restartPending {
			return false
		}
		if !s.beginRestart(start) {
			return true // throttled: this turn is consumed
		}
	}

	work := s.restartRemaining
	if work > budget {
		work = budget
	}
	if advanceClock {
		s.clk.AdvanceTo(start + sim.Time(work))
	}
	s.stats.SpecBusy += work
	s.restartRemaining -= work
	if s.restartRemaining == 0 {
		s.finishRestart()
	}
	return true
}

// beginRestart cleans up the current speculation (CANCEL_ALL, hint-log
// truncation, COW and arena reset) and applies the throttles. It returns
// false if a throttle disabled speculation instead.
func (s *System) beginRestart(start sim.Time) bool {
	s.restartPending = false
	s.stats.Restarts++
	s.tipc.CancelAll()
	s.hintLog = s.hintLog[:s.logNext]
	s.spec.Cow.Reset()
	s.mach.ResetSpecBrk()

	// §5 ad-hoc throttle: after CancelThrottle cancellations, disable
	// speculation for a while instead of restarting. The count resets to -1
	// so the restart that re-enables speculation after the window gets a
	// free pass — otherwise a threshold of 1 would disable speculation
	// permanently.
	s.cancelsRecent++
	if s.cfg.CancelThrottle > 0 && s.cancelsRecent >= s.cfg.CancelThrottle {
		s.cancelsRecent = -1
		s.throttle(start, sim.Time(s.cfg.CancelThrottleCycles))
		return false
	}

	// §5 generic limiter: gate restarts on TIP's recent hint accuracy,
	// with exponential backoff while it stays poor.
	if s.cfg.AdaptiveThrottle {
		threshold := s.cfg.AdaptiveThreshold
		if threshold == 0 {
			threshold = 0.2
		}
		if s.tipc.Accuracy() < threshold {
			if s.backoffCycles == 0 {
				s.backoffCycles = s.cfg.AdaptiveBackoff
				if s.backoffCycles == 0 {
					s.backoffCycles = 50_000_000
				}
			} else if s.backoffCycles < 1<<32 {
				s.backoffCycles *= 2
			}
			s.throttle(start, sim.Time(s.backoffCycles))
			return false
		}
		s.backoffCycles = 0 // accuracy recovered: reset the backoff
	}

	liveStack := s.cfg.Machine.MemSize - s.savedRegs[vm.SP]
	s.restartRemaining = s.cfg.RestartBaseCycles + liveStack/8*s.cfg.CopyPer8B
	if s.restartRemaining <= 0 {
		s.restartRemaining = 1
	}
	return true
}

// throttle parks speculation until the window passes, re-armed with the
// freshest saved state.
func (s *System) throttle(start, window sim.Time) {
	s.disabledUntil = start + window
	s.spec.State = vm.Faulted
	s.restartPending = true
	s.trace(EvThrottle, "speculation disabled for %d cycles", window)
}

// finishRestart installs the saved original-thread state into the
// speculating thread and resumes it in shadow code.
func (s *System) finishRestart() {
	specSP := s.mach.CopyStackForSpec(s.savedRegs[vm.SP])
	s.spec.Regs = s.savedRegs
	s.spec.Regs[vm.SP] = specSP
	s.spec.Regs[vm.R1] = s.savedResult // the read's return value
	s.spec.PC = s.savedPC + s.prog.ShadowBase
	s.spec.PendingCycles = 0
	// The descriptor table is part of the original thread's state:
	// speculation starts from a private copy so its opens/closes/seeks
	// stay invisible to normal execution. Speculation resumes *after*
	// the read the original thread blocked on, so if that read has not
	// yet advanced the shared table's offset, advance the copy.
	s.specFDs = s.origFDs.Clone()
	if _, off, errno := s.specFDs.File(s.savedFD); errno == 0 && off == s.savedOff {
		s.specFDs.Advance(s.savedFD, s.savedResult)
	}
	s.spec.State = vm.Ready
	s.trace(EvRestart, "resume at shadow PC %d, result %d", s.spec.PC, s.savedResult)
}

// Finalize closes out accounting and assembles the run statistics. It is
// idempotent; the multiprogramming scheduler calls it the moment a process
// exits, so Elapsed is that process's own completion time. Tip counters are
// this process's hint stream; Cache and Disk are substrate-wide (identical
// on a private substrate).
func (s *System) Finalize() *RunStats {
	if s.final != nil {
		return s.final
	}
	if s.owned {
		s.tip.FinishRun()
	}
	st := &s.stats
	s.final = st
	st.Elapsed = s.clk.Now()
	st.ExitCode = s.orig.ExitCode
	st.OrigInstrs = s.orig.Instrs
	st.DroppedEvents = s.droppedEvents
	// Close the stall-attribution accounting. Compute is what the original
	// thread executed minus the overhead speculation charged to its path;
	// SchedWait is the residual: exactly zero in a solo run without
	// speculation, bounded by speculative-slice instruction granularity with
	// it (see StallBuckets), and the CPU queueing delay under
	// multiprogramming.
	b := &st.Buckets
	b.Compute = st.OrigBusy - b.SpecOverhead
	b.SchedWait = int64(st.Elapsed) - st.OrigBusy - b.HintedStall - b.UnhintedStall - b.FaultStall
	if s.spec != nil {
		st.SpecInstrs = s.spec.Instrs
		st.SpecSignals = s.spec.Signals
	}
	st.Tip = s.tipc.Stats()
	st.Cache = s.tip.Cache().Stats()
	st.Disk = s.arr.Stats()
	st.TipFaults = s.tip.Faults()
	st.Degraded = s.tip.Degraded()
	st.Pages = s.mach.Pages()
	st.Output = s.out.String()

	st.FootprintBytes = st.Pages.Touched*s.cfg.Machine.PageBytes + s.prog.TextBytes()
	if s.spec != nil {
		st.FootprintBytes += int64(s.spec.Cow.PeakRegions() * s.spec.Cow.RegionSize())
	}
	return st
}
