package core

import (
	"fmt"
	"strings"

	"spechint/internal/sim"
)

// EventKind classifies a trace event.
type EventKind int

const (
	// EvRead is a read call by the original thread.
	EvRead EventKind = iota
	// EvReadDone is the completion of a blocking read.
	EvReadDone
	// EvReadError is a demand read that surfaced an I/O error (EIO).
	EvReadError
	// EvHint is a hint issued by the speculating thread.
	EvHint
	// EvOffTrack is an off-track detection by the original thread.
	EvOffTrack
	// EvRestart is a completed speculation restart.
	EvRestart
	// EvThrottle is a speculation disable by a §5 limiter.
	EvThrottle
	// EvSignal is a speculative exception.
	EvSignal
)

func (k EventKind) String() string {
	switch k {
	case EvRead:
		return "read"
	case EvReadDone:
		return "read-done"
	case EvReadError:
		return "read-error"
	case EvHint:
		return "hint"
	case EvOffTrack:
		return "off-track"
	case EvRestart:
		return "restart"
	case EvThrottle:
		return "throttle"
	case EvSignal:
		return "signal"
	}
	return "event"
}

// Event is one timeline entry.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12d  %-10s %s", e.At, e.Kind, e.Detail)
}

// defaultMaxTraceEvents bounds the trace so a long run cannot exhaust memory;
// Config.MaxTraceEvents overrides it.
const defaultMaxTraceEvents = 100_000

// maxTraceEvents returns the configured event cap.
func (s *System) maxTraceEvents() int {
	if s.cfg.MaxTraceEvents > 0 {
		return s.cfg.MaxTraceEvents
	}
	return defaultMaxTraceEvents
}

// trace records an event on the core's own bounded timeline (when
// Config.TraceEvents is set) and on the cross-layer obs stream (when the
// substrate carries one), under this process's lane. Events past the local
// cap are counted as dropped rather than silently discarded.
func (s *System) trace(kind EventKind, format string, args ...any) {
	local := s.cfg.TraceEvents
	toObs := s.obs.Enabled()
	if !local && !toObs {
		return
	}
	detail := fmt.Sprintf(format, args...)
	if local {
		if len(s.events) >= s.maxTraceEvents() {
			s.droppedEvents++
		} else {
			s.events = append(s.events, Event{At: s.clk.Now(), Kind: kind, Detail: detail})
		}
	}
	if toObs {
		s.obs.Emit(s.clk.Now(), s.name, "core", kind.String(), detail)
	}
}

// Events returns the recorded timeline (empty unless Config.TraceEvents).
func (s *System) Events() []Event { return s.events }

// DroppedEvents returns how many events were lost to the trace cap.
func (s *System) DroppedEvents() int64 { return s.droppedEvents }

// FormatTrace renders up to limit events, eliding the middle of long traces.
// dropped is the count of events the recorder itself discarded at its
// capacity bound (System.DroppedEvents); when nonzero it is surfaced as a
// trailer so a truncated timeline can never pass for a complete one.
func FormatTrace(events []Event, limit int, dropped int64) string {
	if limit <= 0 || limit > len(events) {
		limit = len(events)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %-10s %s\n", "cycle", "event", "detail")
	if len(events) <= limit {
		for _, e := range events {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
		return b.String() + droppedTrailer(dropped)
	}
	head := limit / 2
	tail := limit - head
	for _, e := range events[:head] {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "    ... %d events elided ...\n", len(events)-limit)
	for _, e := range events[len(events)-tail:] {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String() + droppedTrailer(dropped)
}

func droppedTrailer(dropped int64) string {
	if dropped <= 0 {
		return ""
	}
	return fmt.Sprintf("    ... %d later events dropped at the trace capacity ...\n", dropped)
}
