package core

import (
	"fmt"
	"strings"

	"spechint/internal/sim"
)

// EventKind classifies a trace event.
type EventKind int

const (
	// EvRead is a read call by the original thread.
	EvRead EventKind = iota
	// EvReadDone is the completion of a blocking read.
	EvReadDone
	// EvReadError is a demand read that surfaced an I/O error (EIO).
	EvReadError
	// EvHint is a hint issued by the speculating thread.
	EvHint
	// EvOffTrack is an off-track detection by the original thread.
	EvOffTrack
	// EvRestart is a completed speculation restart.
	EvRestart
	// EvThrottle is a speculation disable by a §5 limiter.
	EvThrottle
	// EvSignal is a speculative exception.
	EvSignal
)

func (k EventKind) String() string {
	switch k {
	case EvRead:
		return "read"
	case EvReadDone:
		return "read-done"
	case EvReadError:
		return "read-error"
	case EvHint:
		return "hint"
	case EvOffTrack:
		return "off-track"
	case EvRestart:
		return "restart"
	case EvThrottle:
		return "throttle"
	case EvSignal:
		return "signal"
	}
	return "event"
}

// Event is one timeline entry.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12d  %-10s %s", e.At, e.Kind, e.Detail)
}

// maxTraceEvents bounds the trace so a long run cannot exhaust memory.
const maxTraceEvents = 100_000

// trace appends an event if tracing is enabled.
func (s *System) trace(kind EventKind, format string, args ...any) {
	if !s.cfg.TraceEvents || len(s.events) >= maxTraceEvents {
		return
	}
	s.events = append(s.events, Event{
		At:     s.clk.Now(),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Events returns the recorded timeline (empty unless Config.TraceEvents).
func (s *System) Events() []Event { return s.events }

// FormatTrace renders up to limit events, eliding the middle of long traces.
func FormatTrace(events []Event, limit int) string {
	if limit <= 0 || limit > len(events) {
		limit = len(events)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %-10s %s\n", "cycle", "event", "detail")
	if len(events) <= limit {
		for _, e := range events {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	head := limit / 2
	tail := limit - head
	for _, e := range events[:head] {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "    ... %d events elided ...\n", len(events)-limit)
	for _, e := range events[len(events)-tail:] {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
