package core

import (
	"fmt"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/asm"
	"spechint/internal/fault"
	"spechint/internal/spechint"
	"spechint/internal/vm"
)

// chaosApps are the paper's three main benchmarks plus the two
// trace-replay-generated modern workloads, all at test scale.
var chaosApps = []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice, apps.LSM, apps.MLShard}

// chaosModes are the paper's three bars.
var chaosModes = []Mode{ModeNoHint, ModeSpeculating, ModeManual}

// recoverablePlans are seeded fault schedules with no disk death: every
// demand read eventually succeeds, so the containment contract requires the
// output to be bit-identical to the fault-free run.
var recoverablePlans = []string{
	"seed=11,rate=0.02",
	"seed=23,rate=0.05,burst=3,spike=0.05x6",
	"seed=37,failn=2,spike=0.1x4",
}

func chaosProg(t *testing.T, b *apps.Bundle, mode Mode) *vm.Program {
	t.Helper()
	switch mode {
	case ModeSpeculating:
		return b.Transformed
	case ModeManual:
		return b.Manual
	}
	return b.Original
}

// chaosRun builds a fresh system for (app, mode) and runs it under spec
// ("" = fault-free). Plans are stateful, so each run parses its own.
func chaosRun(t *testing.T, app apps.App, mode Mode, spec string) *RunStats {
	t.Helper()
	b, err := apps.Build(app, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mode)
	if spec != "" {
		if cfg.Faults, err = fault.Parse(spec); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := New(cfg, chaosProg(t, b, mode), b.FS)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatalf("%v/%v under %q: run aborted: %v", app, mode, spec, err)
	}
	return st
}

// TestChaosRecoverableFaultsPreserveOutput is the main containment sweep:
// for every seeded recoverable plan, every app in every mode completes with
// output identical to the fault-free run, and no speculating-thread fault
// aborts a run.
func TestChaosRecoverableFaultsPreserveOutput(t *testing.T) {
	for _, app := range chaosApps {
		for _, mode := range chaosModes {
			app, mode := app, mode
			t.Run(fmt.Sprintf("%v/%v", app, mode), func(t *testing.T) {
				// Cells are independent simulations sharing only the
				// immutable program cache; running them concurrently makes
				// the race detector patrol that sharing on every CI run.
				t.Parallel()
				base := chaosRun(t, app, mode, "")
				if base.ReadErrors != 0 {
					t.Fatalf("fault-free run saw %d read errors", base.ReadErrors)
				}
				for _, spec := range recoverablePlans {
					st := chaosRun(t, app, mode, spec)
					if st.Output != base.Output || st.ExitCode != base.ExitCode {
						t.Errorf("plan %q changed output: exit %d vs %d", spec, st.ExitCode, base.ExitCode)
					}
					if st.ReadErrors != 0 {
						t.Errorf("plan %q: %d demand reads surfaced EIO; recoverable faults must retry", spec, st.ReadErrors)
					}
					if st.Degraded {
						t.Errorf("plan %q: run reports degraded mode with no disk death", spec)
					}
					// Faults never speed up the paper trio. The replay-generated
					// apps are exempt: their hint streams saturate the prefetch
					// pipeline, and a fault's retry backoff acts as an accidental
					// pacing pause that lets in-flight prefetches drain across the
					// other disks — a deterministic scheduling effect, observed as
					// HintedStall converting to a smaller FaultStall, not a
					// containment failure.
					if st.Elapsed < base.Elapsed && app != apps.LSM && app != apps.MLShard {
						t.Errorf("plan %q: faulted run finished earlier (%d < %d cycles)", spec, st.Elapsed, base.Elapsed)
					}
				}
			})
		}
	}
}

// TestChaosDeterminism: the same seed and plan reproduce the run
// cycle-for-cycle.
func TestChaosDeterminism(t *testing.T) {
	const spec = "seed=23,rate=0.05,burst=3,spike=0.05x6"
	for _, app := range chaosApps {
		for _, mode := range chaosModes {
			a := chaosRun(t, app, mode, spec)
			b := chaosRun(t, app, mode, spec)
			if a.Elapsed != b.Elapsed || a.ExitCode != b.ExitCode || a.Output != b.Output {
				t.Errorf("%v/%v: same plan diverged: %d vs %d cycles", app, mode, a.Elapsed, b.Elapsed)
			}
			if a.Disk.FaultedReqs != b.Disk.FaultedReqs || a.Disk.SpikedReqs != b.Disk.SpikedReqs {
				t.Errorf("%v/%v: injection schedule diverged: %d/%d vs %d/%d faults/spikes",
					app, mode, a.Disk.FaultedReqs, a.Disk.SpikedReqs, b.Disk.FaultedReqs, b.Disk.SpikedReqs)
			}
		}
	}
}

// TestChaosFaultsActuallyInjected guards the sweep against vacuity: the
// recoverable plans must really perturb the runs they claim to test.
func TestChaosFaultsActuallyInjected(t *testing.T) {
	st := chaosRun(t, apps.Gnuld, ModeSpeculating, "seed=23,rate=0.05,burst=3,spike=0.05x6")
	if st.Disk.FaultedReqs == 0 {
		t.Error("rate=0.05 plan injected no transient faults")
	}
	if st.Disk.SpikedReqs == 0 {
		t.Error("spike=0.05 plan injected no latency spikes")
	}
	if st.TipFaults.FetchErrors == 0 || st.TipFaults.FetchRetries == 0 {
		t.Errorf("TIP absorbed nothing: %+v", st.TipFaults)
	}
}

// TestChaosDiskDeath: Gnuld survives a whole-disk loss in every mode — the
// run completes (the application sees EIO and takes its error path; nothing
// panics, nothing hangs), prefetching for the dead disk is suppressed, and
// speculation's forced restarts keep shadow state consistent.
func TestChaosDiskDeath(t *testing.T) {
	// Die early enough that plenty of reads are still outstanding (Gnuld at
	// test scale runs ~35-50M cycles in every mode).
	const spec = "seed=5,die=0@5000000"
	for _, mode := range chaosModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			st := chaosRun(t, apps.Gnuld, mode, spec)
			if !st.Degraded {
				t.Fatal("run not degraded after disk death")
			}
			if st.ReadErrors == 0 {
				t.Fatal("no demand read surfaced EIO; the app never saw the dead disk")
			}
			if st.Disk.DeadDisks != 1 {
				t.Fatalf("DeadDisks = %d, want 1", st.Disk.DeadDisks)
			}
			if mode == ModeSpeculating && st.ReadErrors > 0 && st.FaultRestarts == 0 {
				t.Error("EIO reached the app but speculation was never forced to restart")
			}
			// Determinism holds under death, too.
			again := chaosRun(t, apps.Gnuld, mode, spec)
			if again.Elapsed != st.Elapsed || again.Output != st.Output {
				t.Errorf("death run diverged: %d vs %d cycles", again.Elapsed, st.Elapsed)
			}
		})
	}
}

// TestChaosGeneratedProgramsSurviveDeath runs seeded generated programs
// (whose reads all guard negative returns) against disk death in original
// and speculating modes: completion and per-seed determinism are the
// invariants; exit codes may legitimately differ across modes because the
// death time lands on different reads.
func TestChaosGeneratedProgramsSurviveDeath(t *testing.T) {
	var totalDead int64
	for seed := int64(1); seed <= 4; seed++ {
		src := genProgram(seed, 4)
		base, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		transformed, _, err := spechint.Transform(base, spechint.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: transform: %v", seed, err)
		}
		plan := func() *fault.Plan {
			p, err := fault.Parse("seed=9,die=0@100000,rate=0.02")
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		run := func(mode Mode) *RunStats {
			prog := base
			if mode == ModeSpeculating {
				prog = transformed
			}
			cfg := DefaultConfig(mode)
			cfg.Faults = plan()
			sys, err := New(cfg, prog, genFS(seed, 4))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sys.Run()
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			return st
		}
		for _, mode := range []Mode{ModeNoHint, ModeSpeculating} {
			a := run(mode)
			b := run(mode)
			if a.ExitCode != b.ExitCode || a.Elapsed != b.Elapsed {
				t.Errorf("seed %d mode %v: nondeterministic under death (%d/%d vs %d/%d)",
					seed, mode, a.ExitCode, a.Elapsed, b.ExitCode, b.Elapsed)
			}
			totalDead += a.Disk.DeadReqs + a.ReadErrors
		}
	}
	if totalDead == 0 {
		t.Error("no generated run ever touched the dead disk; the sweep is vacuous")
	}
}
