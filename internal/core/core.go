// Package core is the speculative-execution runtime: it wires the VM, TIP,
// the disk array and the file system together and implements everything the
// paper's SpecHint runtime did at run time —
//
//   - the speculating thread's lifecycle under a strict-priority policy
//     (speculation consumes only cycles the original thread spends stalled
//     on disk reads),
//   - the hint log and the on-track/off-track detection the original thread
//     performs before every read,
//   - the cooperative restart protocol (register save, restart flag, hint
//     cancellation, COW reset, stack copy, resume after the blocked read in
//     shadow code), and
//   - the §5 ad-hoc throttle that disables speculation for a while after a
//     burst of cancellations.
//
// A System runs one application in one of three modes — NoHint (the paper's
// "Original"), Speculating (SpecHint-transformed), or Manual (programmer-
// inserted hints) — and collects the statistics behind every table and
// figure in the paper's evaluation.
package core

import (
	"bytes"
	"fmt"
	"sort"

	"spechint/internal/cache"
	"spechint/internal/disk"
	"spechint/internal/fault"
	"spechint/internal/fsim"
	"spechint/internal/obs"
	"spechint/internal/sim"
	"spechint/internal/tip"
	"spechint/internal/trace"
	"spechint/internal/vm"
)

// Mode selects the hinting strategy, matching the paper's three bars.
type Mode int

const (
	// ModeNoHint runs the unmodified application; only the OS's sequential
	// read-ahead prefetches.
	ModeNoHint Mode = iota
	// ModeSpeculating runs a SpecHint-transformed binary with a speculating
	// thread generating hints during I/O stalls.
	ModeSpeculating
	// ModeManual runs an application with programmer-inserted hint calls.
	ModeManual
	// ModeStatic runs the unmodified application with hints synthesized
	// offline by static analysis (internal/analysis.Synthesize) and issued
	// in bulk at program start. The hints are in Config.StaticHints; they
	// cost the application zero cycles because no code was added to it.
	ModeStatic
)

func (m Mode) String() string {
	switch m {
	case ModeNoHint:
		return "original"
	case ModeSpeculating:
		return "speculating"
	case ModeManual:
		return "manual"
	case ModeStatic:
		return "static"
	}
	return "unknown"
}

// CPUHz is the simulated processor frequency (AlphaStation 255, 233 MHz);
// used only to convert cycles to seconds in reports.
const CPUHz = 233e6

// Config assembles a full system.
type Config struct {
	Mode    Mode
	Disk    disk.Config
	TIP     tip.Config
	Machine vm.Config

	// Observable overheads on the original thread's path (paper §3.2.2:
	// "at most, checking an entry in the hint log and saving its registers
	// once per read").
	HintLogCheckCycles int64
	RegSaveCycles      int64
	InitCycles         int64 // one-time: spawn the speculating thread etc.

	// CopyPer8B charges user-buffer copies (read results, writes).
	CopyPer8B int64

	// PrintCycles is the extra cost of output routines (they flush buffers;
	// the paper removes them from shadow code because they are expensive).
	PrintCycles int64

	// RestartBaseCycles is the fixed part of a speculation restart; the
	// stack copy adds CopyPer8B per 8 bytes of live stack.
	RestartBaseCycles int64

	// CancelThrottle, when > 0, disables speculation for
	// CancelThrottleCycles after that many restarts (paper §5's ad-hoc
	// mechanism for limiting erroneous-hint damage).
	CancelThrottle       int
	CancelThrottleCycles int64

	// AdaptiveThrottle is the paper's §5 "more generic method for limiting
	// the number of erroneous hints": instead of a fixed cancel count, gate
	// restarts on TIP's recent hint-accuracy estimate, backing off
	// exponentially while accuracy stays below AdaptiveThreshold.
	AdaptiveThrottle  bool
	AdaptiveThreshold float64 // default 0.2 when AdaptiveThrottle is set
	AdaptiveBackoff   int64   // initial backoff cycles (doubles; default 50M)

	// DualProcessor runs the speculating thread on a second processor, in
	// parallel with normal execution rather than only during I/O stalls —
	// the paper's §5 multiprocessor scenario. Speculation still has strictly
	// lower priority for shared resources (its prefetches remain
	// prefetch-priority at the disks).
	DualProcessor bool

	// TraceEvents records a timeline of reads, hints, restarts and
	// throttles (see Events / FormatTrace). Off by default: tracing a long
	// run costs memory and time.
	TraceEvents bool

	// MaxTraceEvents bounds the TraceEvents timeline; events past the cap
	// are counted (RunStats.DroppedEvents) instead of recorded. Zero selects
	// the default of 100_000.
	MaxTraceEvents int

	// Obs, when non-nil, is the cross-layer observability stream: New
	// installs it on the private substrate (disk spans, cache and TIP
	// events, metric gauges) and the core emits its own events under this
	// process's lane. Purely observational — enabling it changes no run's
	// cycle count.
	Obs *obs.Trace

	// MaxCycles aborts a runaway simulation. Zero means no limit.
	MaxCycles int64

	// Faults, when non-nil, is installed as the disk array's fault injector
	// (private substrates only; multiprogramming installs a shared plan on
	// its own substrate).
	Faults *fault.Plan

	// StaticHints is the synthesized hint list for ModeStatic, in the order
	// the run is expected to consume them (TIP bypasses — and penalizes —
	// out-of-order segments). Ignored in every other mode.
	StaticHints []StaticHint

	// Capture, when non-nil, records the original thread's read stream as a
	// replayable trace (internal/trace): one record per read call, with the
	// compute cycles since the previous read as think time. Purely
	// observational — capturing changes no run's cycle count — and works in
	// every mode (only the original thread's demand reads are recorded).
	Capture *trace.Capture
}

// StaticHint is one statically synthesized disclosure: a future read of
// [Off, Off+N) in the file named Path, with the analysis confidence that
// produced it (tip.Client.HintSegConf bounds prefetch depth by it).
type StaticHint struct {
	Path string
	Off  int64
	N    int64
	Conf float64
}

// TestbedDisk returns the paper's array: HP C2247-class disks (15 ms average
// access), 64 KB striping unit, 8 KB file-system blocks, with track-buffer
// read-ahead. Times are in 233 MHz CPU cycles.
func TestbedDisk(numDisks int) disk.Config {
	return disk.Config{
		NumDisks:       numDisks,
		BlockSize:      8192,
		StripeUnit:     65536,
		PositionCycles: 3_495_000, // ~15 ms
		TransferCycles: 466_000,   // ~2 ms (8 KB at ~4 MB/s)
		TrackBufCycles: 186_000,   // ~0.8 ms from the track buffer
		TrackBufBlocks: 4,
		DelayFactor:    1,
	}
}

// DefaultConfig returns the testbed configuration: four disks, 12 MB file
// cache.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:               mode,
		Disk:               TestbedDisk(4),
		TIP:                tip.DefaultConfig(),
		Machine:            vm.DefaultConfig(),
		HintLogCheckCycles: 20,
		RegSaveCycles:      64,
		InitCycles:         50_000,
		CopyPer8B:          1,
		PrintCycles:        2_000,
		RestartBaseCycles:  1_000,
		MaxCycles:          1 << 42,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.TIP.Validate(); err != nil {
		return err
	}
	if c.Mode < ModeNoHint || c.Mode > ModeStatic {
		return fmt.Errorf("core: bad mode %d", c.Mode)
	}
	if len(c.StaticHints) > 0 && c.Mode != ModeStatic {
		return fmt.Errorf("core: StaticHints given in mode %v", c.Mode)
	}
	if c.CopyPer8B < 0 || c.HintLogCheckCycles < 0 || c.RegSaveCycles < 0 {
		return fmt.Errorf("core: negative overhead cycles")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// logEntry is one hint-log record: the speculating thread's prediction of a
// future read call, identified exactly as the original thread will issue it.
type logEntry struct {
	ino, off, n int64
}

// pendingRead tracks the original thread's in-flight blocking read.
type pendingRead struct {
	fd   int64
	buf  int64
	file *fsim.File
	off  int64
	n    int64
	pc   int64 // original-text PC just after the read syscall

	// Stall-attribution state: when the stall began, whether the read
	// arrived hinted, and the substrate's fault-activity count at block
	// time (a delta at wake charges the stall to the fault bucket).
	stallStart sim.Time
	hinted     bool
	faultsAt   int64
}

// RunStats is everything one run produces; the bench harness assembles the
// paper's tables and figures from these.
type RunStats struct {
	Mode     Mode
	Elapsed  sim.Time
	OrigBusy int64 // cycles the original thread computed
	SpecBusy int64 // cycles the speculating thread consumed (stall time)

	ReadCalls   int64 // explicit read calls by the original thread
	HintedReads int64 // data-returning reads that arrived hinted
	WriteCalls  int64
	WriteBytes  int64

	Restarts    int64
	SpecSignals int64
	SpecInstrs  int64
	OrigInstrs  int64
	ExitCode    int64

	// Fault-injection outcomes. ReadErrors counts demand reads that
	// surfaced to the application as EIO (only a dead disk can cause one —
	// transient faults retry until they succeed). FaultRestarts counts
	// speculation restarts forced so that shadow code resumes with the same
	// errno the original thread saw; they are a subset of Restarts.
	// TipFaults is the substrate's degradation activity; Degraded says the
	// run ended with at least one dead disk.
	ReadErrors    int64
	FaultRestarts int64
	TipFaults     tip.FaultCounters
	Degraded      bool

	FootprintBytes int64
	HintLogPeak    int

	ReadGaps []int64 // original-thread cycles between successive reads
	HintGaps []int64 // speculating-thread cycles between successive hints

	// ReadSites breaks the read counters down by call-site PC (the address
	// of the read syscall instruction in the original text), letting the
	// static classifier's per-site predictions be weighed against what the
	// run actually did.
	ReadSites map[int64]*ReadSiteStats

	// Buckets is the exact stall attribution: every elapsed virtual cycle
	// of the run charged to exactly one bucket (see StallBuckets).
	Buckets StallBuckets

	// DroppedEvents counts trace events lost to the TraceEvents capacity
	// bound (zero when tracing is off or the run fit under the cap).
	DroppedEvents int64

	Tip    tip.Stats
	Cache  cache.Stats
	Disk   disk.Stats
	Pages  vm.PageStats
	Output string
}

// StallBuckets decomposes a run's elapsed virtual time, in cycles. The
// buckets are mutually exclusive and exhaustive: their sum equals Elapsed
// exactly (internal/bench asserts this for every app and mode).
//
//   - Compute: the original thread executing application work.
//   - SpecOverhead: cycles the speculation machinery added to the original
//     thread's own path — thread spawn (InitCycles), the per-read hint-log
//     check, and register saves at off-track detections. Zero outside
//     ModeSpeculating.
//   - HintedStall: the original thread blocked on a read that arrived
//     hinted (prefetching shortened, but did not fully hide, its latency).
//   - UnhintedStall: the original thread blocked on an unhinted read.
//   - FaultStall: the original thread blocked on a read whose service
//     involved fault handling — a surfaced I/O error, or at least one
//     transient-failure retry/backoff anywhere in the substrate while the
//     read was in flight (substrate-wide attribution: under
//     multiprogramming another process's retry storm can charge this
//     bucket, which is exactly the interference being measured).
//   - SchedWait: the original thread runnable but not scheduled. In a
//     single-process run without speculation it is exactly zero (a runnable
//     original thread always runs immediately). With a speculating thread it
//     is near zero but not exact: a speculative CPU slice may overshoot the
//     disk completion that wakes the original thread by the granularity of
//     its final instruction, and those few cycles are genuinely
//     runnable-but-waiting. Under multiprogramming it is the CPU queueing
//     delay behind the other processes' quanta.
type StallBuckets struct {
	Compute       int64
	SpecOverhead  int64
	HintedStall   int64
	UnhintedStall int64
	FaultStall    int64
	SchedWait     int64
}

// Total returns the sum of every bucket, which equals the run's elapsed
// cycles.
func (b StallBuckets) Total() int64 {
	return b.Compute + b.SpecOverhead + b.HintedStall + b.UnhintedStall + b.FaultStall + b.SchedWait
}

// ReadSiteStats counts one read call site's dynamic behavior.
type ReadSiteStats struct {
	Calls     int64 // read calls executed at this site
	DataCalls int64 // calls that returned data (the rest are EOF probes)
	Hinted    int64 // data-returning calls that arrived hinted
}

// Seconds converts the elapsed virtual time to testbed seconds.
func (s *RunStats) Seconds() float64 { return float64(s.Elapsed) / CPUHz }

// StallCycles is the time the original thread spent blocked.
func (s *RunStats) StallCycles() int64 { return int64(s.Elapsed) - s.OrigBusy }

// MedianReadGap returns the median number of original-thread cycles between
// read calls (paper §4.4).
func (s *RunStats) MedianReadGap() int64 { return median(s.ReadGaps) }

// MedianHintGap returns the median number of speculating-thread cycles
// between hint calls.
func (s *RunStats) MedianHintGap() int64 { return median(s.HintGaps) }

// DilationFactor is the ratio of the median inter-hint interval to the
// median inter-read interval (>1 mainly due to copy-on-write checks).
func (s *RunStats) DilationFactor() float64 {
	r := s.MedianReadGap()
	h := s.MedianHintGap()
	if r <= 0 || h <= 0 {
		return 0
	}
	return float64(h) / float64(r)
}

func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]int64(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c[len(c)/2]
}

// Substrate is the shared I/O platform a System runs on: one virtual clock,
// one file system, one disk array, and one TIP manager. A single-process run
// owns a private substrate (New builds one); the multiprogramming layer
// builds one explicitly and runs many Systems on it with NewOn.
type Substrate struct {
	Clk *sim.Queue
	FS  *fsim.FS
	Arr *disk.Array
	TIP *tip.Manager
	Obs *obs.Trace // nil unless InstallObs was called
}

// InstallObs hooks the cross-layer observability stream into every layer of
// the substrate — disk service spans, cache admit/evict events, TIP hint
// lifecycles — and registers the standard metric gauges (cache hit ratio,
// disk utilization and per-disk queue depth, outstanding prefetch depth,
// hint accuracy). Install before building Systems on the substrate; Systems
// created later pick the stream up at NewOn.
func (sub *Substrate) InstallObs(tr *obs.Trace) {
	sub.Obs = tr
	sub.Arr.SetObs(tr)
	sub.TIP.SetObs(tr)
	if tr == nil {
		return
	}
	clk, arr, tm := sub.Clk, sub.Arr, sub.TIP
	tr.AddGauge("cache_hit_ratio", func() float64 {
		st := tm.Cache().Stats()
		if st.Hits+st.Misses == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	})
	tr.AddGauge("cache_used_blocks", func() float64 { return float64(tm.Cache().Len()) })
	tr.AddGauge("disk_utilization", func() float64 {
		now := clk.Now()
		if now == 0 {
			return 0
		}
		return float64(arr.Stats().BusyCycles) / float64(now) / float64(arr.Config().NumDisks)
	})
	for i := 0; i < arr.Config().NumDisks; i++ {
		i := i
		tr.AddGauge(fmt.Sprintf("disk%d_queue_depth", i), func() float64 {
			n := arr.QueueDepth(i)
			if arr.Busy(i) {
				n++
			}
			return float64(n)
		})
	}
	tr.AddGauge("prefetch_depth", func() float64 { return float64(tm.PrefetchDepth()) })
	tr.AddGauge("hint_accuracy", func() float64 { return tm.MeanAccuracy() })
}

// InstallFaults hooks a fault plan into the substrate's disk array (nil
// restores perfect hardware). Install before the first request is submitted.
func (sub *Substrate) InstallFaults(p *fault.Plan) {
	if p == nil {
		sub.Arr.SetInjector(nil)
		return
	}
	sub.Arr.SetInjector(p)
}

// NewSubstrate assembles a substrate over fs from disk and TIP configuration.
func NewSubstrate(diskCfg disk.Config, tipCfg tip.Config, fs *fsim.FS) (*Substrate, error) {
	if fs.BlockSize() != diskCfg.BlockSize {
		return nil, fmt.Errorf("core: fs block size %d != disk block size %d", fs.BlockSize(), diskCfg.BlockSize)
	}
	clk := sim.NewQueue()
	arr, err := disk.New(clk, diskCfg)
	if err != nil {
		return nil, err
	}
	tm, err := tip.New(clk, arr, fs, tipCfg)
	if err != nil {
		return nil, err
	}
	return &Substrate{Clk: clk, FS: fs, Arr: arr, TIP: tm}, nil
}

// System is one configured run: program + mode + substrate.
type System struct {
	cfg  Config
	clk  *sim.Queue
	fs   *fsim.FS
	arr  *disk.Array
	tip  *tip.Manager
	tipc *tip.Client // this process's hint stream
	mach *vm.Machine
	prog *vm.Program

	name  string // label in multiprogramming diagnostics
	owned bool   // the substrate is private to this System

	// preempt, when set, overrides the strict-priority preemption test for
	// the speculating thread: speculation yields mid-slice when it returns
	// true. The default is "this System's original thread became Ready";
	// the multiprogramming scheduler widens it to "any original thread
	// became Ready", preserving the paper's contract that speculation uses
	// only globally idle cycles.
	preempt func() bool

	orig    *vm.Thread
	spec    *vm.Thread
	origFDs *fsim.FDTable
	specFDs *fsim.FDTable

	hintLog []logEntry
	logNext int

	restartPending   bool
	restartRemaining int64
	backoffCycles    int64 // current adaptive-throttle backoff
	savedRegs        [vm.NumRegs]int64
	savedResult      int64
	savedPC          int64 // original-text PC just after the read syscall
	savedFD          int64 // descriptor of the off-track read
	savedOff         int64 // its file offset before the read
	cancelsRecent    int
	disabledUntil    sim.Time

	pending       *pendingRead
	out           bytes.Buffer
	sliceStart    sim.Time
	events        []Event
	droppedEvents int64      // events lost to the trace cap
	obs           *obs.Trace // cross-layer stream (nil = untraced)
	watchdogErr   error      // fatal inconsistency caught by the deadlock watchdog

	stats           RunStats
	final           *RunStats // cached by Finalize
	lastOrigReadAt  int64
	lastSpecHintAt  int64
	sawSpecHint     bool
	sawOrigRead     bool
	lastCaptureBusy int64 // original-thread busy cycles at the last captured read
}

// New builds a System for prog over fs, on a private substrate. In
// ModeSpeculating the program must be SpecHint-transformed; in the other
// modes it must not be.
func New(cfg Config, prog *vm.Program, fs *fsim.FS) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sub, err := NewSubstrate(cfg.Disk, cfg.TIP, fs)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		sub.InstallFaults(cfg.Faults)
	}
	if cfg.Obs != nil {
		sub.InstallObs(cfg.Obs)
	}
	s, err := NewOn(sub, cfg, prog, "app")
	if err != nil {
		return nil, err
	}
	s.owned = true
	return s, nil
}

// NewOn builds a System for prog over an existing substrate, registering a
// fresh TIP client for its hint stream. cfg.Disk and cfg.TIP are ignored —
// the substrate already embodies them; everything else (mode, overheads,
// throttles) applies per process. name labels the process in diagnostics.
func NewOn(sub *Substrate, cfg Config, prog *vm.Program, name string) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	transformed := prog.ShadowBase > 0
	if cfg.Mode == ModeSpeculating && !transformed {
		return nil, fmt.Errorf("core: ModeSpeculating requires a SpecHint-transformed program")
	}
	if cfg.Mode != ModeSpeculating && transformed {
		return nil, fmt.Errorf("core: mode %v with a transformed program", cfg.Mode)
	}

	s := &System{
		cfg: cfg, clk: sub.Clk, fs: sub.FS, arr: sub.Arr, tip: sub.TIP,
		tipc: sub.TIP.NewClient(name), prog: prog, name: name,
		obs: sub.Obs,
	}
	var err error
	s.mach, err = vm.NewMachine(prog, s, cfg.Machine)
	if err != nil {
		return nil, err
	}
	s.orig = s.mach.NewThread("original", vm.Normal)
	s.origFDs = fsim.NewFDTable()
	if cfg.Mode == ModeSpeculating {
		s.spec = s.mach.NewThread("speculating", vm.Speculative)
		s.specFDs = fsim.NewFDTable()
		s.orig.PendingCycles += cfg.InitCycles
		// The spawn cost executes on the original thread's path: it is
		// speculation overhead, not application compute.
		s.stats.Buckets.SpecOverhead += cfg.InitCycles
	}
	s.stats.Mode = cfg.Mode
	if cfg.Mode == ModeStatic {
		s.issueStaticHints()
	}
	return s, nil
}

// issueStaticHints discloses the synthesized hint list at clock zero,
// before the first instruction runs. The application itself is unmodified,
// so nothing is charged to its path: static mode's SpecOverhead is zero by
// construction. The client's accuracy prior is set to the mean confidence
// of the issued hints, so TIP starts from the analysis's own estimate
// rather than an optimistic 1.0.
func (s *System) issueStaticHints() {
	if len(s.cfg.StaticHints) == 0 {
		return
	}
	var confSum float64
	n := 0
	for _, h := range s.cfg.StaticHints {
		if _, ok := s.fs.Lookup(h.Path); !ok {
			continue
		}
		confSum += h.Conf
		n++
	}
	if n == 0 {
		return
	}
	s.tipc.SetPrior(confSum / float64(n))
	for _, h := range s.cfg.StaticHints {
		f, ok := s.fs.Lookup(h.Path)
		if !ok {
			// A synthesized hint for a file the run does not have would be a
			// false hint; skip it (speclint's dynamic verification reports
			// such hints against the golden run).
			continue
		}
		s.tipc.HintSegConf(f, h.Off, h.N, h.Conf)
	}
}

// Clock exposes the simulation clock (tests, tools).
func (s *System) Clock() *sim.Queue { return s.clk }

// TIP exposes the prefetching manager (tests, tools).
func (s *System) TIP() *tip.Manager { return s.tip }

// TIPClient exposes this process's hint stream (the multiprogramming layer
// closes it when the process exits).
func (s *System) TIPClient() *tip.Client { return s.tipc }

// Name returns the label given at NewOn ("app" for a private System).
func (s *System) Name() string { return s.name }

// SetPreempt overrides the speculating thread's mid-slice preemption test;
// see the preempt field. Pass nil to restore the default.
func (s *System) SetPreempt(fn func() bool) { s.preempt = fn }

// preemptNow reports whether speculation must yield the CPU immediately.
func (s *System) preemptNow() bool {
	if s.preempt != nil {
		return s.preempt()
	}
	return s.orig.State == vm.Ready
}

// Output returns everything the program printed.
func (s *System) Output() string { return s.out.String() }
