package core

import (
	"testing"

	"spechint/internal/asm"
	"spechint/internal/fault"
	"spechint/internal/spechint"
)

// FuzzRun is the native fuzz target wired into CI (`go test -fuzz=FuzzRun`):
// from a program seed and a packed fault descriptor it builds a generated
// disk-reading program plus a recoverable fault plan, then checks the
// containment contract — the speculating build under injected faults
// completes and computes the same exit code as the fault-free original.
func FuzzRun(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(7), uint16(3))
	f.Add(int64(13), uint16(0x5a5a))
	f.Add(int64(42), uint16(0xffff))
	f.Fuzz(func(t *testing.T, seed int64, faultBits uint16) {
		const nFiles = 4
		src := genProgram(seed, nFiles)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Skipf("assemble: %v", err)
		}

		orig, err := New(DefaultConfig(ModeNoHint), prog, genFS(seed, nFiles))
		if err != nil {
			t.Skip()
		}
		ost, err := orig.Run()
		if err != nil {
			t.Fatalf("seed %d: fault-free original run: %v", seed, err)
		}

		// Unpack faultBits into a recoverable plan (no disk death, so every
		// demand read eventually succeeds and outputs must match).
		plan := fault.NewPlan(int64(faultBits) ^ seed)
		plan.Rate = float64(faultBits&0x1f) / 100       // 0 .. 0.31
		plan.Burst = 1 + int(faultBits>>5)&0x3          // 1 .. 4
		plan.SpikeRate = float64(faultBits>>7&0xf) / 50 // 0 .. 0.30
		plan.SpikeFactor = 2 + int(faultBits>>11)&0x7   // 2 .. 9
		plan.FailN = int(faultBits>>14) & 0x3           // 0 .. 3
		if err := plan.Validate(); err != nil {
			t.Fatalf("derived plan invalid: %v", err)
		}

		tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
		if err != nil {
			t.Skip()
		}
		cfg := DefaultConfig(ModeSpeculating)
		cfg.Faults = plan
		sys, err := New(cfg, tp, genFS(seed, nFiles))
		if err != nil {
			t.Skip()
		}
		st, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d faults %#x: speculating run aborted: %v", seed, faultBits, err)
		}
		if st.ExitCode != ost.ExitCode {
			t.Fatalf("seed %d faults %#x: exit %d != fault-free %d\nprogram:\n%s",
				seed, faultBits, st.ExitCode, ost.ExitCode, src)
		}
		if st.ReadErrors != 0 {
			t.Fatalf("seed %d faults %#x: %d recoverable faults surfaced EIO", seed, faultBits, st.ReadErrors)
		}
	})
}
