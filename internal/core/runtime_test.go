package core

import (
	"strings"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
)

// faultyReaderSrc computes a divisor from file content and divides by it:
// speculation running on a stale buffer (zeros) divides by zero — a signal,
// as the paper's Table 6 counts.
const faultyReaderSrc = `
.data
buf:  .space 8192
pathA: .asciz "a"
pathB: .asciz "b"
.text
main:
    movi r1, pathA
    syscall open
    mov  r10, r1
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    ; divisor comes from the file's first word (nonzero in real data,
    ; zero in a stale speculative buffer)
    ldw  r11, buf
    movi r12, 1000
    div  r13, r12, r11
    ; second file: the read stream continues
    movi r1, pathB
    syscall open
    mov  r10, r1
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    ldw  r11, buf
    div  r14, r12, r11
    add  r1, r13, r14
    syscall exit
`

func TestSpeculativeDivideByZeroCountsSignal(t *testing.T) {
	fs := fsim.New(8192)
	a := make([]byte, 8192)
	a[0] = 5 // word = 5
	b := make([]byte, 8192)
	b[0] = 4
	fs.MustCreate("a", a)
	fs.MustCreate("b", b)

	prog := asm.MustAssemble(faultyReaderSrc)
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitCode != 200+250 {
		t.Fatalf("exit = %d, want 450", st.ExitCode)
	}
	// Speculation restarted after read A with a stale (zero) buffer; the
	// ldw/div on stale data faults -> one signal, speculation parked.
	if st.SpecSignals == 0 {
		t.Fatal("no speculative signals recorded for stale-data divide")
	}
	if st.Restarts == 0 {
		t.Fatal("no restarts")
	}
}

func TestSpeculativeSeekAndFstatStayPrivate(t *testing.T) {
	fs := fsim.New(8192)
	fs.MustCreate("f", make([]byte, 30000))
	src := `
.data
buf:  .space 64
stat: .space 24
path: .asciz "f"
.text
main:
    movi r1, path
    syscall open
    mov  r10, r1
    ; fstat: size into r11
    mov  r1, r10
    movi r2, stat
    syscall fstat
    ldw  r11, stat
    ; read the last 64 bytes (offset from fstat: data dependent)
    mov  r1, r10
    addi r2, r11, -64
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, buf
    movi r3, 64
    syscall read
    mov  r1, r10
    syscall close
    mov  r1, r11
    syscall exit
`
	prog := asm.MustAssemble(src)
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitCode != 30000 {
		t.Fatalf("fstat size = %d, want 30000", st.ExitCode)
	}
}

func TestSbrkProgram(t *testing.T) {
	fs := fsim.New(8192)
	src := `
.text
main:
    movi r1, 64
    syscall sbrk
    mov  r10, r1      ; base
    movi r2, 77
    stw  r2, (r10)
    movi r1, 64
    syscall sbrk      ; second allocation must not alias
    stw  r0, (r1)
    ldw  r1, (r10)
    syscall exit
`
	st := runMode(t, DefaultConfig(ModeNoHint), src, fs)
	if st.ExitCode != 77 {
		t.Fatalf("exit = %d, want 77", st.ExitCode)
	}
}

func TestManualHintErrnos(t *testing.T) {
	fs := fsim.New(8192)
	fs.MustCreate("f", make([]byte, 100))
	src := `
.data
bad: .asciz "nope"
.text
main:
    movi r1, bad
    movi r2, 0
    movi r3, 100
    syscall hintfile   ; ENOENT
    mov  r10, r1
    movi r1, 42
    movi r2, 0
    movi r3, 100
    syscall hintfd     ; EBADF
    add  r1, r10, r1
    syscall exit
`
	st := runMode(t, DefaultConfig(ModeManual), src, fs)
	if st.ExitCode != int64(fsim.ENOENT)+int64(fsim.EBADF) {
		t.Fatalf("exit = %d, want ENOENT+EBADF", st.ExitCode)
	}
}

func TestReadErrnos(t *testing.T) {
	fs := fsim.New(8192)
	fs.MustCreate("f", make([]byte, 100))
	src := `
.data
buf: .space 16
path: .asciz "f"
.text
main:
    movi r1, 42
    movi r2, buf
    movi r3, 16
    syscall read       ; EBADF
    mov  r10, r1
    movi r1, path
    syscall open
    mov  r11, r1
    mov  r1, r11
    movi r2, buf
    movi r3, -5
    syscall read       ; EINVAL
    add  r1, r10, r1
    syscall exit
`
	st := runMode(t, DefaultConfig(ModeNoHint), src, fs)
	if st.ExitCode != int64(fsim.EBADF)+int64(fsim.EINVAL) {
		t.Fatalf("exit = %d", st.ExitCode)
	}
}

func TestThrottleReenablesAfterWindow(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.CancelThrottle = 1
	cfg.CancelThrottleCycles = 1_000_000 // short: re-enables mid-run
	fs, names := buildFS(t, 10, 9000)
	st := runMode(t, cfg, seqReaderSrc(names, false), fs)
	// With a short window, speculation must come back after each throttle.
	if st.Restarts < 2 {
		t.Fatalf("Restarts = %d, want >= 2 (throttle must re-enable)", st.Restarts)
	}
	if st.HintedReads == 0 {
		t.Fatal("speculation never produced hints after throttling")
	}
}

func TestFigure6DelayFactorRuns(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.Disk.DelayFactor = 3
	cfg.Disk.MaxPrefetchPerDisk = 1
	fs, names := buildFS(t, 8, 6000)
	st := runMode(t, cfg, seqReaderSrc(names, false), fs)
	cfgBase := DefaultConfig(ModeSpeculating)
	fs2, _ := buildFS(t, 8, 6000)
	base := runMode(t, cfgBase, seqReaderSrc(names, false), fs2)
	if st.Elapsed <= base.Elapsed {
		t.Fatal("delayed completion notification did not slow the run")
	}
}

func TestRunStatsStringsAndOutputHelpers(t *testing.T) {
	for _, m := range []Mode{ModeNoHint, ModeSpeculating, ModeManual, Mode(99)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
	if !strings.Contains(ModeSpeculating.String(), "spec") {
		t.Fatal("mode string wrong")
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil) != 0")
	}
	if median([]int64{5}) != 5 {
		t.Fatal("median single")
	}
	if got := median([]int64{9, 1, 5}); got != 5 {
		t.Fatalf("median = %d, want 5", got)
	}
}

// specSideEffectSrc exercises every syscall the speculating thread must
// suppress: writes, prints, and manual hint calls inside shadow code.
func TestSpeculativeSideEffectsSuppressed(t *testing.T) {
	fs := fsim.New(8192)
	data := make([]byte, 30000)
	for i := range data {
		data[i] = byte(i)
	}
	fs.MustCreate("f", data)
	src := `
.data
buf:  .space 8192
msg:  .asciz "REAL"
path: .asciz "f"
.text
main:
    movi r1, path
    syscall open
    mov  r10, r1
loop:
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    beq  r1, r0, done
    ; side effects between reads: write, print, a manual hint, a cancel
    movi r1, 1
    movi r2, buf
    movi r3, 64
    syscall write
    movi r1, msg
    syscall print
    mov  r1, r10
    movi r2, 0
    movi r3, 8192
    syscall hintfd
    syscall cancelall
    jmp  loop
done:
    movi r1, 7
    syscall exit
`
	prog := asm.MustAssemble(src)
	opt := spechint.DefaultOptions()
	opt.RemoveOutputRoutines = false // force the runtime path to suppress
	tp, _, err := spechint.Transform(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitCode != 7 {
		t.Fatalf("exit = %d", st.ExitCode)
	}
	// 4 chunks -> 4 REALs from the original thread only.
	if st.Output != "REALREALREALREAL" {
		t.Fatalf("output = %q: speculation leaked output", st.Output)
	}
	// Writes counted once per original-thread call only.
	if st.WriteCalls != 4 {
		t.Fatalf("WriteCalls = %d, want 4", st.WriteCalls)
	}
}

// TestSpecRunsOnlyDuringStalls: under the single-processor policy, the
// speculating thread's busy cycles can never exceed the original thread's
// stall time (plus one slice of slack).
func TestSpecRunsOnlyDuringStalls(t *testing.T) {
	fs, names := buildFS(t, 15, 9000)
	st := runMode(t, DefaultConfig(ModeSpeculating), seqReaderSrc(names, false), fs)
	if st.SpecBusy > st.StallCycles() {
		t.Fatalf("speculation consumed %d cycles but stalls were only %d", st.SpecBusy, st.StallCycles())
	}
}

// TestHintLogPeakTracked: speculation running ahead must be visible in the
// hint-log depth statistic.
func TestHintLogPeakTracked(t *testing.T) {
	fs, names := buildFS(t, 15, 9000)
	st := runMode(t, DefaultConfig(ModeSpeculating), seqReaderSrc(names, false), fs)
	if st.HintLogPeak < 5 {
		t.Fatalf("HintLogPeak = %d, want speculation well ahead", st.HintLogPeak)
	}
}
