package core

import (
	"strings"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/spechint"
)

func TestTraceRecordsTimeline(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.TraceEvents = true
	fs, names := buildFS(t, 6, 6000)
	prog, err := asm.Assemble(seqReaderSrc(names, false))
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	events := sys.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Kind.String() == "event" {
			t.Fatalf("unnamed event kind %d", e.Kind)
		}
	}
	if kinds[EvRead] == 0 || kinds[EvHint] == 0 || kinds[EvRestart] == 0 || kinds[EvOffTrack] == 0 {
		t.Fatalf("missing kinds: %v", kinds)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}

	out := FormatTrace(events, 10)
	if !strings.Contains(out, "read") || !strings.Contains(out, "elided") {
		t.Fatalf("FormatTrace output:\n%s", out)
	}
	full := FormatTrace(events[:3], 0)
	if strings.Contains(full, "elided") {
		t.Fatal("short trace elided")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	fs, names := buildFS(t, 4, 4000)
	prog, err := asm.Assemble(seqReaderSrc(names, false))
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Events()) != 0 {
		t.Fatal("events recorded with tracing disabled")
	}
}
