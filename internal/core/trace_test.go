package core

import (
	"fmt"
	"strings"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/sim"
	"spechint/internal/spechint"
)

func TestTraceRecordsTimeline(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.TraceEvents = true
	fs, names := buildFS(t, 6, 6000)
	prog, err := asm.Assemble(seqReaderSrc(names, false))
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	events := sys.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Kind.String() == "event" {
			t.Fatalf("unnamed event kind %d", e.Kind)
		}
	}
	if kinds[EvRead] == 0 || kinds[EvHint] == 0 || kinds[EvRestart] == 0 || kinds[EvOffTrack] == 0 {
		t.Fatalf("missing kinds: %v", kinds)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}

	out := FormatTrace(events, 10, 0)
	if !strings.Contains(out, "read") || !strings.Contains(out, "elided") {
		t.Fatalf("FormatTrace output:\n%s", out)
	}
	full := FormatTrace(events[:3], 0, 0)
	if strings.Contains(full, "elided") {
		t.Fatal("short trace elided")
	}
}

// TestFormatTraceEdges pins the eliding arithmetic: limit 0 and limit >= len
// render everything, an even/odd limit splits head and tail correctly, and a
// nonzero dropped count always surfaces as a trailer.
func TestFormatTraceEdges(t *testing.T) {
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, Event{At: sim.Time(i), Kind: EvRead, Detail: fmt.Sprintf("ev%d", i)})
	}
	// The header row contains the word "event"; count rendered entries by
	// their unambiguous "read  ev<N>" rendering instead.
	count := func(s string) int { return strings.Count(s, "read       ev") }

	if out := FormatTrace(events, 0, 0); count(out) != 10 || strings.Contains(out, "elided") {
		t.Fatalf("limit 0 should render all 10 events:\n%s", out)
	}
	if out := FormatTrace(events, 10, 0); count(out) != 10 || strings.Contains(out, "elided") {
		t.Fatalf("limit == len should render all 10 events:\n%s", out)
	}
	if out := FormatTrace(events, 99, 0); count(out) != 10 || strings.Contains(out, "elided") {
		t.Fatalf("limit > len should render all 10 events:\n%s", out)
	}

	out := FormatTrace(events, 5, 0)
	if count(out) != 5 || !strings.Contains(out, "5 events elided") {
		t.Fatalf("limit 5 of 10:\n%s", out)
	}
	// head = 2, tail = 3: first two and last three events.
	for _, want := range []string{"ev0", "ev1", "ev7", "ev8", "ev9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("limit 5 missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ev2") || strings.Contains(out, "ev6") {
		t.Fatalf("limit 5 rendered an elided event:\n%s", out)
	}

	if out := FormatTrace(events, 5, 7); !strings.Contains(out, "7 later events dropped") {
		t.Fatalf("dropped trailer missing:\n%s", out)
	}
	if out := FormatTrace(nil, 0, 3); !strings.Contains(out, "3 later events dropped") {
		t.Fatalf("dropped trailer must render even with no events:\n%s", out)
	}
	if out := FormatTrace(events, 0, 0); strings.Contains(out, "dropped") {
		t.Fatalf("dropped trailer rendered with dropped == 0:\n%s", out)
	}
}

// TestEventKindStrings covers every arm plus the unknown fallback.
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvRead:      "read",
		EvReadDone:  "read-done",
		EvReadError: "read-error",
		EvHint:      "hint",
		EvOffTrack:  "off-track",
		EvRestart:   "restart",
		EvThrottle:  "throttle",
		EvSignal:    "signal",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := EventKind(99).String(); got != "event" {
		t.Errorf("unknown kind = %q, want \"event\"", got)
	}
}

// TestTraceDroppedCount drives a run past a tiny trace cap and checks that
// the overflow is counted, reported in RunStats, and surfaced by FormatTrace
// instead of silently discarded.
func TestTraceDroppedCount(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.TraceEvents = true
	cfg.MaxTraceEvents = 5
	fs, names := buildFS(t, 6, 6000)
	prog, err := asm.Assemble(seqReaderSrc(names, false))
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Events()) != 5 {
		t.Fatalf("recorded %d events, want the cap of 5", len(sys.Events()))
	}
	if sys.DroppedEvents() == 0 {
		t.Fatal("no dropped events counted past the cap")
	}
	if st.DroppedEvents != sys.DroppedEvents() {
		t.Fatalf("RunStats.DroppedEvents = %d, want %d", st.DroppedEvents, sys.DroppedEvents())
	}
	out := FormatTrace(sys.Events(), 0, sys.DroppedEvents())
	if !strings.Contains(out, "dropped at the trace capacity") {
		t.Fatalf("dropped trailer missing:\n%s", out)
	}
}

func TestTraceOffByDefault(t *testing.T) {
	fs, names := buildFS(t, 4, 4000)
	prog, err := asm.Assemble(seqReaderSrc(names, false))
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Events()) != 0 {
		t.Fatal("events recorded with tracing disabled")
	}
}
