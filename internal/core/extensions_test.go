package core

import (
	"testing"
)

// TestDualProcessorCorrectness: the §5 multiprocessor extension must not
// change program results.
func TestDualProcessorCorrectness(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.DualProcessor = true
	fs1, names := buildFS(t, 12, 8000)
	mp := runMode(t, cfg, seqReaderSrc(names, false), fs1)

	fs2, _ := buildFS(t, 12, 8000)
	sp := runMode(t, DefaultConfig(ModeSpeculating), seqReaderSrc(names, false), fs2)

	fs3, _ := buildFS(t, 12, 8000)
	orig := runMode(t, DefaultConfig(ModeNoHint), seqReaderSrc(names, false), fs3)

	if mp.ExitCode != orig.ExitCode || sp.ExitCode != orig.ExitCode {
		t.Fatalf("exit codes: orig %d sp %d mp %d", orig.ExitCode, sp.ExitCode, mp.ExitCode)
	}
	if mp.Elapsed > orig.Elapsed {
		t.Fatalf("dual-processor speculation slower than original: %d > %d", mp.Elapsed, orig.Elapsed)
	}
}

// TestDualProcessorSpeculatesDuringCompute: on a second CPU, speculation
// accumulates busy cycles even while the original thread is computing, so
// its total must exceed the stall-only budget's... at least, it must run
// and produce hints.
func TestDualProcessorSpeculatesDuringCompute(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.DualProcessor = true
	fs, names := buildFS(t, 15, 9000)
	mp := runMode(t, cfg, seqReaderSrc(names, false), fs)
	if mp.SpecBusy == 0 || mp.HintedReads == 0 {
		t.Fatalf("dual-processor speculation idle: busy=%d hinted=%d", mp.SpecBusy, mp.HintedReads)
	}
	// The second CPU lets speculation run during compute as well as stalls,
	// so its busy time can exceed the original thread's stall time.
	dataReads := mp.ReadCalls - int64(len(names))
	if mp.HintedReads < dataReads*8/10 {
		t.Fatalf("hinted %d of %d under dual processor", mp.HintedReads, dataReads)
	}
}

// TestAdaptiveThrottleLimitsRestarts: on the pointer-chasing workload the
// accuracy-gated limiter must back speculation off.
func TestAdaptiveThrottleLimitsRestarts(t *testing.T) {
	base := DefaultConfig(ModeSpeculating)
	fs1, name, want := chainFS(t, 2<<20, 40)
	off := runMode(t, base, chainReaderSrc(name, 40), fs1)

	cfg := DefaultConfig(ModeSpeculating)
	cfg.AdaptiveThrottle = true
	cfg.AdaptiveBackoff = 10_000_000
	fs2, _, _ := chainFS(t, 2<<20, 40)
	on := runMode(t, cfg, chainReaderSrc(name, 40), fs2)

	if on.ExitCode != want || off.ExitCode != want {
		t.Fatalf("exit codes: %d / %d, want %d", on.ExitCode, off.ExitCode, want)
	}
	if on.Restarts >= off.Restarts {
		t.Fatalf("adaptive throttle did not reduce restarts: %d >= %d", on.Restarts, off.Restarts)
	}
	if on.Elapsed > off.Elapsed*105/100 {
		t.Fatalf("adaptive throttle made things worse: %d vs %d", on.Elapsed, off.Elapsed)
	}
}

// TestAdaptiveThrottleHarmlessWhenAccurate: an accurate speculator must not
// be throttled.
func TestAdaptiveThrottleHarmlessWhenAccurate(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.AdaptiveThrottle = true
	fs1, names := buildFS(t, 15, 9000)
	on := runMode(t, cfg, seqReaderSrc(names, false), fs1)
	fs2, _ := buildFS(t, 15, 9000)
	off := runMode(t, DefaultConfig(ModeSpeculating), seqReaderSrc(names, false), fs2)
	// Sequential reader hints accurately: elapsed must be unchanged.
	if on.Elapsed != off.Elapsed {
		t.Fatalf("adaptive throttle changed an accurate run: %d vs %d", on.Elapsed, off.Elapsed)
	}
}

// TestDualProcessorDeterministic: SMP scheduling must stay reproducible.
func TestDualProcessorDeterministic(t *testing.T) {
	cfg := DefaultConfig(ModeSpeculating)
	cfg.DualProcessor = true
	var elapsed []int64
	for i := 0; i < 2; i++ {
		fs, names := buildFS(t, 10, 6000)
		st := runMode(t, cfg, seqReaderSrc(names, false), fs)
		elapsed = append(elapsed, int64(st.Elapsed))
	}
	if elapsed[0] != elapsed[1] {
		t.Fatalf("nondeterministic SMP: %d vs %d", elapsed[0], elapsed[1])
	}
}
