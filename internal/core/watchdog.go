package core

import (
	"fmt"
	"strings"

	"spechint/internal/vm"
)

// Diagnose assembles a deadlock/watchdog diagnostic: instead of a bare
// "deadlock" error (or a panic deep in a completion callback), the run fails
// with the state needed to debug it — thread states and PCs, the pending
// read, event-queue and disk-queue depths. reason says what tripped the
// watchdog.
func (s *System) Diagnose(reason string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s: %s\n", s.name, reason)
	fmt.Fprintf(&b, "  cycle %d, %d pending events\n", s.clk.Now(), s.clk.Len())
	describe := func(t *vm.Thread) {
		if t == nil {
			return
		}
		fmt.Fprintf(&b, "  thread %-12s %-8v pc=%d instrs=%d\n", t.Name, t.State, t.PC, t.Instrs)
	}
	describe(s.orig)
	describe(s.spec)
	if p := s.pending; p != nil {
		fmt.Fprintf(&b, "  pending read: %s fd=%d off=%d n=%d (site pc=%d)\n",
			p.file.Name, p.fd, p.off, p.n, p.pc-1)
	} else {
		b.WriteString("  pending read: none\n")
	}
	cfg := s.arr.Config()
	for i := 0; i < cfg.NumDisks; i++ {
		fmt.Fprintf(&b, "  disk %d: busy=%v dead=%v queued=%d\n",
			i, s.arr.Busy(i), s.arr.Dead(i), s.arr.QueueDepth(i))
	}
	fmt.Fprintf(&b, "  cache: %d/%d buffers in use", s.tip.Cache().Len(), s.tip.Cache().Capacity())
	return fmt.Errorf("%s", b.String())
}

// watchdog records a fatal runtime inconsistency discovered inside a
// completion callback, where returning an error is impossible and panicking
// would lose all simulation state. The run loop surfaces it on its next
// iteration.
func (s *System) watchdog(reason string) {
	if s.watchdogErr == nil {
		s.watchdogErr = s.Diagnose(reason)
	}
}
