package core

import (
	"fmt"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/fsim"
	"spechint/internal/spechint"
	"spechint/internal/vm"
)

// dispatchSrc is a record-processing program built around the §3.2.1 control
// transfers: each record's first byte selects a handler through a jump table
// (switch statement), and a function pointer selects the checksum routine.
// Speculation must follow both — the jump table statically (recognized
// format), the function pointer through the dynamic handling routine.
func dispatchSrc(files []string) string {
	s := `
.data
buf:   .space 8192
tbl:   .jumptable absolute h0, h1, h2, h3
fnptr: .word sum8
`
	s += fmt.Sprintf("nfiles: .word %d\nfiles: .word ", len(files))
	for i := range files {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("p%d", i)
	}
	s += "\n"
	for i, n := range files {
		s += fmt.Sprintf("p%d: .asciz %q\n", i, n)
	}
	s += `
.text
main:
    ldw  r20, nfiles
    movi r21, files
next:
    beq  r20, r0, done
    ldw  r1, (r21)
    syscall open
    mov  r10, r1
rd:
    mov  r1, r10
    movi r2, buf
    movi r3, 8192
    syscall read
    beq  r1, r0, eof
    mov  r15, r1          ; bytes read
    ; switch (buf[0] & 3) via the jump table (the idiom SpecHint recognizes)
    ldb  r4, buf
    andi r4, r4, 3
    shli r4, r4, 3
    ldw  r6, tbl(r4)
    jr   r6
h0: addi r22, r22, 1
    jmp  hdone
h1: addi r22, r22, 10
    jmp  hdone
h2: addi r22, r22, 100
    jmp  hdone
h3: addi r22, r22, 1000
hdone:
    ; checksum the chunk through a function pointer (r15 = len)
    ldw  r7, fnptr
    callr r7
    jmp  rd
eof:
    mov  r1, r10
    syscall close
    addi r21, r21, 8
    addi r20, r20, -1
    jmp  next
done:
    movi r2, 0xffffff
    and  r1, r22, r2
    syscall exit

; sum8: add every 8th byte of buf[0:r15] into r22 (clobbers r4-r6)
sum8:
    movi r4, buf
    add  r5, r4, r15
s8:
    ldb  r6, (r4)
    add  r22, r22, r6
    addi r4, r4, 8
    blt  r4, r5, s8
    ret
`
	return s
}

func buildDispatchFS(t *testing.T) (*fsim.FS, []string) {
	t.Helper()
	fs := fsim.New(8192)
	var names []string
	for i := 0; i < 10; i++ {
		data := make([]byte, 9000+i*500)
		for j := range data {
			data[j] = byte((i*31 + j*7) % 253)
		}
		name := fmt.Sprintf("rec%d.dat", i)
		fs.MustCreate(name, data)
		names = append(names, name)
	}
	return fs, names
}

func TestJumpTableAndFunctionPointerUnderSpeculation(t *testing.T) {
	fs1, names := buildDispatchFS(t)
	src := dispatchSrc(names)
	orig := runMode(t, DefaultConfig(ModeNoHint), src, fs1)

	// Verify the transform recognized the jump table and routed the
	// function-pointer call through the handler.
	prog := asm.MustAssemble(src)
	tp, st, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.TablesStatic != 1 {
		t.Fatalf("TablesStatic = %d, want the switch recognized", st.TablesStatic)
	}
	if st.DynamicJumps < 2 { // callr + ret at least
		t.Fatalf("DynamicJumps = %d, want >= 2", st.DynamicJumps)
	}

	fs2, _ := buildDispatchFS(t)
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs2)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if spec.ExitCode != orig.ExitCode {
		t.Fatalf("speculation through jump table broke results: %d vs %d", spec.ExitCode, orig.ExitCode)
	}
	if spec.HintedReads == 0 {
		t.Fatal("speculation produced no hints through the dispatch loop")
	}
	if spec.Elapsed >= orig.Elapsed {
		t.Fatalf("no speedup: %d vs %d", spec.Elapsed, orig.Elapsed)
	}
}

// TestUnknownJumpTableFormatStillCorrect: a table SpecHint does not
// recognize must fall back to the dynamic handler without breaking anything.
func TestUnknownJumpTableFormatStillCorrect(t *testing.T) {
	fs1, names := buildDispatchFS(t)
	src := dispatchSrc(names)
	// Demote the table to an unrecognized format.
	srcU := ""
	for _, line := range []byte(src) {
		srcU += string(line)
	}
	srcU = replaceOnce(t, srcU, ".jumptable absolute", ".jumptable unknown")

	prog := asm.MustAssemble(srcU)
	tp, st, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.TablesStatic != 0 {
		t.Fatalf("unknown-format table statically recognized: %+v", st)
	}
	sys, err := New(DefaultConfig(ModeSpeculating), tp, fs1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	fs2, _ := buildDispatchFS(t)
	orig := runMode(t, DefaultConfig(ModeNoHint), srcU, fs2)
	if spec.ExitCode != orig.ExitCode {
		t.Fatalf("results diverge with handler-routed table: %d vs %d", spec.ExitCode, orig.ExitCode)
	}
}

func replaceOnce(t *testing.T, s, old, new string) string {
	t.Helper()
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	t.Fatalf("pattern %q not found", old)
	return ""
}

// TestSpecHintOptionsAblationsRun: the transform's option ablations must
// produce runnable, correct programs.
func TestSpecHintOptionsAblationsRun(t *testing.T) {
	fs0, names := buildDispatchFS(t)
	src := dispatchSrc(names)
	orig := runMode(t, DefaultConfig(ModeNoHint), src, fs0)

	for _, opt := range []spechint.Options{
		{RemoveOutputRoutines: false, StackCopyOptimization: true, JumpTableLookback: 4},
		{RemoveOutputRoutines: true, StackCopyOptimization: false, JumpTableLookback: 4},
		{RemoveOutputRoutines: true, StackCopyOptimization: true, JumpTableLookback: 1},
	} {
		prog := asm.MustAssemble(src)
		tp, _, err := spechint.Transform(prog, opt)
		if err != nil {
			t.Fatal(err)
		}
		fs, _ := buildDispatchFS(t)
		sys, err := New(DefaultConfig(ModeSpeculating), tp, fs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.ExitCode != orig.ExitCode {
			t.Fatalf("options %+v broke correctness: %d vs %d", opt, st.ExitCode, orig.ExitCode)
		}
	}
}

// The vm redirect logic must map every original PC into the shadow range.
func TestRedirectCoversWholeText(t *testing.T) {
	prog := asm.MustAssemble(dispatchSrc([]string{"x"}))
	tp, _, err := spechint.Transform(prog, spechint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pc := int64(0); pc < tp.OrigTextLen; pc++ {
		if got := spechint.ShadowPC(tp, pc); got != pc+tp.ShadowBase {
			t.Fatalf("ShadowPC(%d) = %d", pc, got)
		}
	}
	_ = vm.NOP
}
