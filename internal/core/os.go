package core

import (
	"fmt"

	"spechint/internal/fsim"
	"spechint/internal/sim"
	"spechint/internal/vm"
)

// Syscall implements vm.OS for both threads. sliceStart is recorded by the
// scheduler before each Run slice so handlers can synchronize the virtual
// clock to the precise cycle of the call (see run.go).
func (s *System) Syscall(m *vm.Machine, t *vm.Thread, code int64) vm.SysControl {
	// Advance the clock to the exact moment of the syscall so that disk and
	// cache interactions happen at the right virtual time. Events due in the
	// interim (prefetch completions, wakeups) fire first. In dual-processor
	// mode the speculating thread executes inside a wall window the clock
	// has already passed; its syscalls then happen "now" (skew is bounded
	// by the scheduling quantum).
	if target := s.sliceStart + sim.Time(m.SliceUsed()); target > s.clk.Now() {
		s.clk.AdvanceTo(target)
	}

	if t.Mode == vm.Speculative {
		v := s.specSyscall(m, t, code)
		if v == vm.SysDone && s.preemptNow() {
			// A completion event woke an original thread mid-slice; the
			// strict-priority policy preempts speculation immediately.
			return vm.SysYield
		}
		return v
	}
	return s.origSyscall(m, t, code)
}

// busyNow returns the thread's cumulative busy cycles including the current
// slice, for inter-call gap measurements.
func (s *System) busyNow(t *vm.Thread) int64 { return t.Cycles + s.mach.SliceUsed() }

// origSyscall services the original (normal) thread.
func (s *System) origSyscall(m *vm.Machine, t *vm.Thread, code int64) vm.SysControl {
	switch code {
	case vm.SysExit:
		t.ExitCode = t.Regs[vm.R1]
		return vm.SysHalt

	case vm.SysOpen:
		path, err := m.ReadCStr(t, t.Regs[vm.R1])
		if err != nil {
			t.Err = err
			return vm.SysFault
		}
		t.Regs[vm.R1] = s.origFDs.Open(s.fs, path)
		return vm.SysDone

	case vm.SysClose:
		t.Regs[vm.R1] = int64(s.origFDs.Close(t.Regs[vm.R1]))
		return vm.SysDone

	case vm.SysSeek:
		t.Regs[vm.R1] = s.origFDs.SeekFD(t.Regs[vm.R1], t.Regs[vm.R2], t.Regs[vm.R3])
		return vm.SysDone

	case vm.SysFstat:
		return s.doFstat(m, t, s.origFDs)

	case vm.SysSbrk:
		t.Regs[vm.R1] = m.Sbrk(t, t.Regs[vm.R1])
		return vm.SysDone

	case vm.SysWrite:
		// Write-behind buffering hides write latency (paper §1): writes cost
		// only the user-to-kernel copy; no disk time on the critical path.
		n := t.Regs[vm.R3]
		if n < 0 {
			t.Regs[vm.R1] = int64(fsim.EINVAL)
			return vm.SysDone
		}
		s.stats.WriteCalls++
		s.stats.WriteBytes += n
		t.PendingCycles += n / 8 * s.cfg.CopyPer8B
		t.Regs[vm.R1] = n
		return vm.SysDone

	case vm.SysPrint:
		str, err := m.ReadCStr(t, t.Regs[vm.R1])
		if err != nil {
			t.Err = err
			return vm.SysFault
		}
		s.out.WriteString(str)
		t.PendingCycles += s.cfg.PrintCycles
		t.Regs[vm.R1] = 0
		return vm.SysDone

	case vm.SysPrintInt:
		fmt.Fprintf(&s.out, "%d", t.Regs[vm.R1])
		t.PendingCycles += s.cfg.PrintCycles
		t.Regs[vm.R1] = 0
		return vm.SysDone

	case vm.SysHintFD:
		if f, _, errno := s.origFDs.File(t.Regs[vm.R1]); errno == fsim.OK {
			s.tipc.HintSeg(f, t.Regs[vm.R2], t.Regs[vm.R3])
			t.Regs[vm.R1] = 0
		} else {
			t.Regs[vm.R1] = int64(errno)
		}
		return vm.SysDone

	case vm.SysHintFile:
		path, err := m.ReadCStr(t, t.Regs[vm.R1])
		if err != nil {
			t.Err = err
			return vm.SysFault
		}
		if f, ok := s.fs.Lookup(path); ok {
			s.tipc.HintSeg(f, t.Regs[vm.R2], t.Regs[vm.R3])
			t.Regs[vm.R1] = 0
		} else {
			t.Regs[vm.R1] = int64(fsim.ENOENT)
		}
		return vm.SysDone

	case vm.SysCancelAll:
		s.tipc.CancelAll()
		t.Regs[vm.R1] = 0
		return vm.SysDone

	case vm.SysRead:
		return s.origRead(m, t)
	}
	t.Err = fmt.Errorf("core: unknown syscall %d", code)
	return vm.SysFault
}

// origRead is the heart of the runtime: the hint-log check, off-track
// detection and state save all happen here, before the read is issued
// (paper §3.2.2).
func (s *System) origRead(m *vm.Machine, t *vm.Thread) vm.SysControl {
	fd, buf, reqLen := t.Regs[vm.R1], t.Regs[vm.R2], t.Regs[vm.R3]
	file, off, errno := s.origFDs.File(fd)
	if errno != fsim.OK {
		t.Regs[vm.R1] = int64(errno)
		return vm.SysDone
	}
	if reqLen < 0 {
		t.Regs[vm.R1] = int64(fsim.EINVAL)
		return vm.SysDone
	}
	n := file.Size() - off
	if n < 0 {
		n = 0
	}
	if n > reqLen {
		n = reqLen
	}

	s.stats.ReadCalls++
	sitePC := t.PC - 1 // Run advanced past the syscall instruction
	if s.stats.ReadSites == nil {
		s.stats.ReadSites = make(map[int64]*ReadSiteStats)
	}
	site := s.stats.ReadSites[sitePC]
	if site == nil {
		site = &ReadSiteStats{}
		s.stats.ReadSites[sitePC] = site
	}
	site.Calls++
	if n > 0 {
		site.DataCalls++
	}
	now := s.busyNow(t)
	if s.sawOrigRead {
		s.stats.ReadGaps = append(s.stats.ReadGaps, now-s.lastOrigReadAt)
	}
	s.sawOrigRead = true
	s.lastOrigReadAt = now

	if s.cfg.Capture != nil {
		// Record the read exactly as issued (requested length, not the
		// short-read result) with the compute since the previous one as
		// think time; internal/trace normalizes opens and closes from the
		// path switches.
		s.cfg.Capture.Read(file.Name, off, reqLen, now-s.lastCaptureBusy)
		s.lastCaptureBusy = now
	}

	hinted := false
	if s.cfg.Mode == ModeSpeculating {
		t.PendingCycles += s.cfg.HintLogCheckCycles
		s.stats.Buckets.SpecOverhead += s.cfg.HintLogCheckCycles
		if s.logNext < len(s.hintLog) && s.hintLog[s.logNext] == (logEntry{file.Ino(), off, reqLen}) {
			// Speculation is, as far as we can tell, on track.
			s.logNext++
			hinted = n > 0
		} else {
			// Off track (no entry: speculation is behind; mismatch: it
			// strayed). Save state and raise the restart flag before the
			// read is issued, so the speculating thread can restart during
			// the coming stall.
			t.PendingCycles += s.cfg.RegSaveCycles
			s.stats.Buckets.SpecOverhead += s.cfg.RegSaveCycles
			s.savedRegs = t.Regs
			s.savedResult = n
			s.savedPC = t.PC // Run already advanced past the syscall
			s.savedFD = fd
			s.savedOff = off
			s.restartPending = true
			s.trace(EvOffTrack, "at %s off=%d (log %d/%d)", file.Name, off, s.logNext, len(s.hintLog))
		}
	} else if s.cfg.Mode == ModeManual || s.cfg.Mode == ModeStatic {
		hinted = n > 0 && s.tipc.Covered(file, off, reqLen)
	}
	if hinted {
		s.stats.HintedReads++
		site.Hinted++
	}
	s.trace(EvRead, "%s off=%d len=%d hinted=%v", file.Name, off, reqLen, hinted)

	immediate := s.tipc.Read(file, off, reqLen, hinted, s.completeRead)
	if immediate {
		s.finishRead(t, file, fd, buf, off, n)
		t.Regs[vm.R1] = n
		return vm.SysDone
	}
	// The cycles this handler charged to the thread (hint-log check, register
	// save) are consumed by the current slice *before* the block takes effect,
	// so the stall begins that many cycles after the clock's present reading —
	// counting them in the window too would double-charge them (they are
	// already in OrigBusy).
	s.pending = &pendingRead{
		fd: fd, buf: buf, file: file, off: off, n: n, pc: t.PC,
		stallStart: s.clk.Now() + sim.Time(t.PendingCycles),
		hinted:     hinted, faultsAt: s.tip.Faults().FetchErrors,
	}
	return vm.SysBlock
}

// completeRead runs when TIP reports every block of the pending read
// resolved: err is nil when all are valid, non-nil when one was
// unrecoverable (its disk died). On error the application gets EIO — a real
// errno return, exactly what a production kernel would deliver — and, in
// ModeSpeculating, the speculating thread is forced to restart with that
// same EIO as its read result, so an injected fault can never make shadow
// code diverge from what the original thread actually observed.
func (s *System) completeRead(err error) {
	p := s.pending
	if p == nil {
		// A completion with nothing pending is a runtime inconsistency; the
		// watchdog turns it into a diagnostic run failure instead of a panic.
		s.watchdog("completeRead with no pending read")
		return
	}
	s.pending = nil
	s.chargeStall(p, err)
	if err != nil {
		s.stats.ReadErrors++
		s.trace(EvReadError, "%s off=%d: %v", p.file.Name, p.off, err)
		if s.cfg.Mode == ModeSpeculating {
			// Containment (§3.2.2 applied to faults): whether or not the
			// read was predicted, speculation believed it would return data.
			// Re-arm the restart protocol so shadow code resumes just past
			// this read with the EIO the original thread is about to see.
			s.savedRegs = s.orig.Regs
			s.savedResult = int64(fsim.EIO)
			s.savedPC = p.pc
			s.savedFD = p.fd
			s.savedOff = p.off
			s.restartPending = true
			s.stats.FaultRestarts++
			s.trace(EvOffTrack, "fault at %s off=%d: forcing restart with EIO", p.file.Name, p.off)
		}
		// The file offset does not advance on a failed read.
		s.orig.Wake(int64(fsim.EIO))
		return
	}
	s.trace(EvReadDone, "%s off=%d n=%d", p.file.Name, p.off, p.n)
	s.finishRead(s.orig, p.file, p.fd, p.buf, p.off, p.n)
	s.orig.Wake(p.n)
}

// chargeStall attributes the just-finished blocking stall (block → wake,
// measured on the virtual clock) to exactly one bucket. Fault activity wins:
// a stall during which the substrate saw fetch errors — or that itself
// surfaced an error — was stretched by retry/backoff machinery, and lumping
// it with clean stalls would overstate prefetching's shortfall. The fault
// counter is substrate-wide, so under multiprogramming a neighbour's retry
// can tip a concurrent stall into the fault bucket; per-read attribution
// would need fault provenance plumbed through TIP and the disk array.
func (s *System) chargeStall(p *pendingRead, err error) {
	stall := int64(s.clk.Now() - p.stallStart)
	b := &s.stats.Buckets
	switch {
	case err != nil || s.tip.Faults().FetchErrors != p.faultsAt:
		b.FaultStall += stall
	case p.hinted:
		b.HintedStall += stall
	default:
		b.UnhintedStall += stall
	}
}

// finishRead copies the data into the user buffer and advances the offset.
func (s *System) finishRead(t *vm.Thread, file *fsim.File, fd, buf, off, n int64) {
	if n > 0 {
		if err := s.mach.WriteMem(t, buf, file.Data[off:off+n]); err != nil {
			t.Err = err
			// Surfaces on the thread's next slice as a fatal error via Err;
			// a bad buffer pointer from the program is a program bug.
		}
		t.PendingCycles += n / 8 * s.cfg.CopyPer8B
	}
	s.origFDs.Advance(fd, n)
}

// specSyscall services the speculating thread. The paper's rule: no real
// system calls except hints, fstat and sbrk. Opens, closes and seeks are
// emulated in user space against a private descriptor table; writes and
// output are suppressed; reads become hints.
func (s *System) specSyscall(m *vm.Machine, t *vm.Thread, code int64) vm.SysControl {
	switch code {
	case vm.SysExit:
		// Speculation ran off the end of the program: park until restart.
		return vm.SysHalt

	case vm.SysOpen:
		path, err := m.ReadCStr(t, t.Regs[vm.R1])
		if err != nil {
			return vm.SysFault // garbage pointer from stale data
		}
		t.Regs[vm.R1] = s.specFDs.Open(s.fs, path)
		return vm.SysDone

	case vm.SysClose:
		t.Regs[vm.R1] = int64(s.specFDs.Close(t.Regs[vm.R1]))
		return vm.SysDone

	case vm.SysSeek:
		t.Regs[vm.R1] = s.specFDs.SeekFD(t.Regs[vm.R1], t.Regs[vm.R2], t.Regs[vm.R3])
		return vm.SysDone

	case vm.SysFstat:
		return s.doFstat(m, t, s.specFDs)

	case vm.SysSbrk:
		t.Regs[vm.R1] = m.Sbrk(t, t.Regs[vm.R1])
		return vm.SysDone

	case vm.SysWrite:
		// Suppressed: pretend success so speculation follows the likely path.
		t.Regs[vm.R1] = t.Regs[vm.R3]
		return vm.SysDone

	case vm.SysPrint, vm.SysPrintInt:
		// Normally removed by the transform; suppressed if present.
		t.Regs[vm.R1] = 0
		return vm.SysDone

	case vm.SysHintFD, vm.SysHintFile, vm.SysCancelAll:
		// Hint calls inside shadow code (a manually-hinted program run
		// through SpecHint) are suppressed: the speculation machinery owns
		// the hint stream.
		t.Regs[vm.R1] = 0
		return vm.SysDone

	case vm.SysRead:
		return s.specRead(m, t)
	}
	return vm.SysFault
}

// specRead is how hints are generated: a read encountered during speculation
// issues the corresponding TIP hint and logs it, returns the value the real
// read would return (computable from file metadata, which fstat makes
// legitimately available), and delivers data only if it is already cached —
// otherwise speculation proceeds with whatever stale bytes the buffer holds,
// which is exactly how data-dependent speculation strays.
func (s *System) specRead(m *vm.Machine, t *vm.Thread) vm.SysControl {
	fd, buf, reqLen := t.Regs[vm.R1], t.Regs[vm.R2], t.Regs[vm.R3]
	file, off, errno := s.specFDs.File(fd)
	if errno != fsim.OK {
		t.Regs[vm.R1] = int64(errno)
		return vm.SysDone
	}
	if reqLen < 0 {
		t.Regs[vm.R1] = int64(fsim.EINVAL)
		return vm.SysDone
	}
	n := file.Size() - off
	if n < 0 {
		n = 0
	}
	if n > reqLen {
		n = reqLen
	}

	s.hintLog = append(s.hintLog, logEntry{file.Ino(), off, reqLen})
	if depth := len(s.hintLog) - s.logNext; depth > s.stats.HintLogPeak {
		s.stats.HintLogPeak = depth
	}

	if n > 0 {
		s.tipc.HintSeg(file, off, reqLen)
		s.trace(EvHint, "%s off=%d len=%d", file.Name, off, reqLen)
		now := s.busyNow(t)
		if s.sawSpecHint {
			s.stats.HintGaps = append(s.stats.HintGaps, now-s.lastSpecHintAt)
		}
		s.sawSpecHint = true
		s.lastSpecHintAt = now

		if s.tipc.CachedRange(file, off, n) {
			if err := s.mach.WriteMem(t, buf, file.Data[off:off+n]); err != nil {
				return vm.SysFault
			}
			t.PendingCycles += n / 8 * s.cfg.CopyPer8B
		}
	}
	s.specFDs.Advance(fd, n)
	t.Regs[vm.R1] = n
	return vm.SysDone
}

// doFstat writes {size, ino, blockSize} to the stat buffer at R2.
func (s *System) doFstat(m *vm.Machine, t *vm.Thread, fds *fsim.FDTable) vm.SysControl {
	f, _, errno := fds.File(t.Regs[vm.R1])
	if errno != fsim.OK {
		t.Regs[vm.R1] = int64(errno)
		return vm.SysDone
	}
	statBuf := make([]byte, 24)
	putWord(statBuf[0:], f.Size())
	putWord(statBuf[8:], f.Ino())
	putWord(statBuf[16:], int64(s.fs.BlockSize()))
	if err := m.WriteMem(t, t.Regs[vm.R2], statBuf); err != nil {
		if t.Mode == vm.Speculative {
			return vm.SysFault
		}
		t.Err = err
		return vm.SysFault
	}
	t.Regs[vm.R1] = 0
	return vm.SysDone
}

func putWord(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}
