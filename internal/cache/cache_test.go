package cache

import (
	"testing"
	"testing/quick"
)

func TestAcquireCompleteTouch(t *testing.T) {
	c := New(4)
	b := c.Acquire(10, OriginDemand, NoHint)
	if b == nil || b.State() != InTransit {
		t.Fatal("Acquire did not return an in-transit block")
	}
	if got := c.Get(10); got != b {
		t.Fatal("Get did not find acquired block")
	}
	c.Complete(10)
	if b.State() != Valid {
		t.Fatal("Complete did not mark block valid")
	}
	c.Touch(10)
	st := c.Stats()
	if st.Hits != 1 || st.Reuses != 0 {
		t.Fatalf("stats = %+v, want 1 hit 0 reuses", st)
	}
	c.Touch(10)
	if c.Stats().Reuses != 1 {
		t.Fatalf("second touch not counted as reuse: %+v", c.Stats())
	}
}

func TestAcquirePresentPanics(t *testing.T) {
	c := New(4)
	c.Acquire(1, OriginDemand, NoHint)
	defer func() {
		if recover() == nil {
			t.Fatal("double Acquire did not panic")
		}
	}()
	c.Acquire(1, OriginDemand, NoHint)
}

func TestWaitersRunOnComplete(t *testing.T) {
	c := New(4)
	c.Acquire(5, OriginHint, 3)
	n := 0
	c.Wait(5, func(bool) { n++ })
	c.Wait(5, func(bool) { n++ })
	c.Complete(5)
	if n != 2 {
		t.Fatalf("waiters run = %d, want 2", n)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3)
	for _, lb := range []int64{1, 2, 3} {
		c.Acquire(lb, OriginDemand, NoHint)
		c.Complete(lb)
	}
	// Touch 1 so 2 becomes LRU.
	c.Touch(1)
	b := c.Acquire(4, OriginDemand, NoHint)
	if b == nil {
		t.Fatal("Acquire failed with evictable blocks present")
	}
	if c.Get(2) != nil {
		t.Fatal("LRU block 2 not evicted")
	}
	if c.Get(1) == nil || c.Get(3) == nil {
		t.Fatal("wrong block evicted")
	}
}

func TestInTransitNeverEvicted(t *testing.T) {
	c := New(2)
	c.Acquire(1, OriginDemand, NoHint) // in transit
	c.Acquire(2, OriginDemand, NoHint) // in transit
	if c.Acquire(3, OriginDemand, NoHint) != nil {
		t.Fatal("Acquire succeeded with only in-transit blocks cached")
	}
}

func TestHintedBlockProtectedFromPrefetch(t *testing.T) {
	c := New(1)
	c.Acquire(1, OriginHint, 5)
	c.Complete(1)
	// A prefetch for a block needed *later* (dist 10) must not evict one
	// needed sooner (dist 5).
	if c.Acquire(2, OriginHint, 10) != nil {
		t.Fatal("further-future prefetch evicted nearer hinted block")
	}
	// A prefetch for a block needed sooner may evict it.
	if c.Acquire(3, OriginHint, 2) == nil {
		t.Fatal("nearer prefetch could not evict further hinted block")
	}
	if c.Get(1) != nil {
		t.Fatal("hinted block 1 still present")
	}
}

func TestDemandAlwaysEvictsHinted(t *testing.T) {
	c := New(1)
	c.Acquire(1, OriginHint, 2)
	c.Complete(1)
	if c.Acquire(9, OriginDemand, NoHint) == nil {
		t.Fatal("demand fetch could not evict hinted block")
	}
}

func TestUnhintedPreferredOverHinted(t *testing.T) {
	c := New(2)
	c.Acquire(1, OriginHint, 1)
	c.Complete(1)
	c.Acquire(2, OriginDemand, NoHint)
	c.Complete(2)
	if c.Acquire(3, OriginHint, 50) == nil {
		t.Fatal("acquire failed")
	}
	if c.Get(2) != nil {
		t.Fatal("unhinted block survived while hinted was evicted")
	}
	if c.Get(1) == nil {
		t.Fatal("hinted block evicted despite unhinted candidate")
	}
}

func TestUnusedPrefetchAccounting(t *testing.T) {
	c := New(2)
	c.Acquire(1, OriginHint, 1)
	c.Complete(1)
	c.Acquire(2, OriginReadahead, NoHint)
	c.Complete(2)
	c.SetHintDist(1, NoHint) // hint cancelled
	// Evict both via demand fetches.
	c.Acquire(3, OriginDemand, NoHint)
	c.Acquire(4, OriginDemand, NoHint)
	st := c.Stats()
	if st.UnusedHint != 1 || st.UnusedRA != 1 {
		t.Fatalf("unused = hint %d ra %d, want 1 1", st.UnusedHint, st.UnusedRA)
	}
	if st.EvictedClean != 2 {
		t.Fatalf("EvictedClean = %d, want 2", st.EvictedClean)
	}
}

func TestUsedPrefetchNotCountedUnused(t *testing.T) {
	c := New(1)
	c.Acquire(1, OriginHint, 1)
	c.Complete(1)
	c.Touch(1)
	c.SetHintDist(1, NoHint)
	c.Acquire(2, OriginDemand, NoHint)
	if st := c.Stats(); st.UnusedHint != 0 {
		t.Fatalf("used prefetched block counted unused: %+v", st)
	}
}

func TestFlushAccountingCountsResidentUnused(t *testing.T) {
	c := New(4)
	c.Acquire(1, OriginHint, 1)
	c.Complete(1)
	c.Acquire(2, OriginReadahead, NoHint)
	c.Complete(2)
	c.Acquire(3, OriginHint, 2)
	c.Complete(3)
	c.Touch(3)
	c.FlushAccounting()
	st := c.Stats()
	if st.UnusedHint != 1 || st.UnusedRA != 1 {
		t.Fatalf("flush unused = hint %d ra %d, want 1 1", st.UnusedHint, st.UnusedRA)
	}
}

func TestPartialWaitAccounting(t *testing.T) {
	c := New(4)
	c.Acquire(7, OriginHint, 1)
	c.NoteDemandWait(7)
	c.NoteDemandWait(7) // same block: still one partial
	if st := c.Stats(); st.PartialWaits != 1 {
		t.Fatalf("PartialWaits = %d, want 1", st.PartialWaits)
	}
	c.Complete(7)
	c.Touch(7)
	st := c.Stats()
	if st.Reuses != 0 {
		t.Fatalf("Reuses = %d, want 0 (first access is not a reuse)", st.Reuses)
	}
	if st.FullyPref != 0 {
		t.Fatalf("FullyPref = %d, want 0 (block was only partially prefetched)", st.FullyPref)
	}
	// Demand waits on demand-origin blocks are not "partial prefetches".
	c.Acquire(8, OriginDemand, NoHint)
	c.NoteDemandWait(8)
	if got := c.Stats().PartialWaits; got != 1 {
		t.Fatalf("PartialWaits = %d after demand-origin wait, want 1", got)
	}
}

func TestFullyPrefetchedAccounting(t *testing.T) {
	c := New(4)
	c.Acquire(1, OriginHint, 0)
	c.Complete(1)
	c.Touch(1)
	if st := c.Stats(); st.FullyPref != 1 {
		t.Fatalf("FullyPref = %d, want 1", st.FullyPref)
	}
	// Demand-origin blocks never count as fully prefetched.
	c.Acquire(2, OriginDemand, NoHint)
	c.Complete(2)
	c.Touch(2)
	if st := c.Stats(); st.FullyPref != 1 {
		t.Fatalf("FullyPref = %d after demand touch, want 1", st.FullyPref)
	}
}

func TestDropInTransit(t *testing.T) {
	c := New(4)
	c.Acquire(1, OriginHint, 0)
	c.Drop(1)
	if c.Get(1) != nil || c.Len() != 0 {
		t.Fatal("Drop did not remove block")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Drop of absent block did not panic")
		}
	}()
	c.Drop(1)
}

func TestCapacityRespected(t *testing.T) {
	c := New(8)
	for lb := int64(0); lb < 100; lb++ {
		b := c.Acquire(lb, OriginDemand, NoHint)
		if b == nil {
			t.Fatalf("Acquire(%d) failed", lb)
		}
		c.Complete(lb)
		if c.Len() > c.Capacity() {
			t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	c := New(4)
	c.Acquire(1, OriginDemand, NoHint)
	c.Acquire(2, OriginHint, 1)
	c.Complete(2)
	seen := map[int64]bool{}
	c.ForEach(func(b *Block) { seen[b.LB] = true })
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Fatalf("ForEach saw %v", seen)
	}
}

// Property: under any interleaving of acquire/complete/touch, the number of
// cached blocks never exceeds capacity, and hits+misses accounting stays
// consistent (hits >= reuses).
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(4)
		inTransit := map[int64]bool{}
		next := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0: // acquire new block
				next++
				if c.Get(next) == nil {
					if b := c.Acquire(next, Origin(op%3), int64(op)); b != nil {
						inTransit[next] = true
					}
				}
			case 1: // complete one in-transit block
				for lb := range inTransit {
					c.Complete(lb)
					delete(inTransit, lb)
					break
				}
			case 2: // touch a valid block
				for lb := int64(1); lb <= next; lb++ {
					if b := c.Get(lb); b != nil && b.State() == Valid {
						c.Touch(lb)
						break
					}
				}
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		st := c.Stats()
		return st.Reuses <= st.Hits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
