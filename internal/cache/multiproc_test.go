package cache

import "testing"

// fill populates the cache with valid blocks so eviction paths are exercised.
func fillValid(t *testing.T, c *Cache, owner int, lbs []int64, origin Origin, dist func(i int) int64) {
	t.Helper()
	for i, lb := range lbs {
		if b := c.AcquireFor(owner, lb, origin, dist(i)); b == nil {
			t.Fatalf("AcquireFor(%d, %d) failed while filling", owner, lb)
		}
		c.Complete(lb)
	}
}

func TestUnhintedTrafficNeverEvictsOtherOwnersHints(t *testing.T) {
	c := New(4)
	// Owner 1 holds the whole cache as hinted blocks.
	fillValid(t, c, 1, []int64{10, 11, 12, 13}, OriginHint, func(i int) int64 { return int64(i) })

	// Owner 2's demand miss must NOT claim any of owner 1's hinted blocks.
	if b := c.AcquireFor(2, 20, OriginDemand, NoHint); b != nil {
		t.Fatal("demand fetch from owner 2 evicted owner 1's hinted block")
	}
	// Nor may owner 2's read-ahead.
	if b := c.AcquireFor(2, 21, OriginReadahead, NoHint); b != nil {
		t.Fatal("read-ahead from owner 2 evicted owner 1's hinted block")
	}
	if got := c.Stats().UnhintedCrossEvicts; got != 0 {
		t.Fatalf("UnhintedCrossEvicts = %d, want 0", got)
	}
	if got := c.HintedCount(1); got != 4 {
		t.Fatalf("owner 1 hinted count = %d, want 4 intact", got)
	}

	// Owner 1's own demand still reclaims its furthest hinted block — the
	// single-process rule is unchanged.
	if b := c.AcquireFor(1, 30, OriginDemand, NoHint); b == nil {
		t.Fatal("owner 1's demand could not reclaim its own hinted block")
	}
	if c.Get(13) != nil {
		// Furthest-distance block (dist 3) should be the victim.
		t.Error("victim was not the furthest hinted block")
	}
}

func TestHintedEvictionComparesMarginalBenefit(t *testing.T) {
	c := New(2)
	acc := map[int]float64{1: 1.0, 2: 0.25}
	c.SetAccuracyFn(func(owner int) float64 { return acc[owner] })

	// Owner 1 (accurate) at dist 3: benefit 1.0/4 = 0.25.
	// Owner 2 (sloppy) at dist 1: benefit 0.25/2 = 0.125 — least valuable.
	fillValid(t, c, 1, []int64{10}, OriginHint, func(int) int64 { return 3 })
	fillValid(t, c, 2, []int64{20}, OriginHint, func(int) int64 { return 1 })

	// Owner 1 hints at dist 2: benefit 1.0/3 ≈ 0.33 beats owner 2's 0.125
	// but not a hypothetical equal-accuracy dist comparison — the sloppy
	// owner's near block loses to the accurate owner's farther one.
	b := c.AcquireFor(1, 30, OriginHint, 2)
	if b == nil {
		t.Fatal("hinted fetch could not evict the least-beneficial block")
	}
	if c.Get(20) != nil {
		t.Error("victim was not the sloppy owner's block")
	}
	if c.Get(10) == nil {
		t.Error("accurate owner's farther block was evicted instead")
	}
	if got := c.Stats().CrossHintEvicts; got != 1 {
		t.Errorf("CrossHintEvicts = %d, want 1", got)
	}

	// An incoming block less beneficial than every resident block is refused.
	if b := c.AcquireFor(2, 40, OriginHint, 100); b != nil {
		t.Error("low-benefit hinted fetch displaced a more valuable block")
	}
}

func TestPartitionCapReclaimsOwnBlocks(t *testing.T) {
	c := New(8)
	c.SetPartition(1, 2)

	fillValid(t, c, 1, []int64{10, 11}, OriginHint, func(i int) int64 { return int64(i) })
	if got := c.HintedCount(1); got != 2 {
		t.Fatalf("hinted count = %d, want 2", got)
	}

	// At the cap: a nearer hint reclaims the owner's furthest block even
	// though the cache itself has free buffers.
	if b := c.AcquireFor(1, 12, OriginHint, 0); b == nil {
		t.Fatal("capped owner could not swap in a nearer block")
	}
	if c.Get(11) != nil {
		t.Error("furthest own block not evicted at the partition cap")
	}
	if got := c.HintedCount(1); got != 2 {
		t.Errorf("hinted count = %d after swap, want 2 (still at cap)", got)
	}

	// A farther hint than everything resident is refused at the cap.
	if b := c.AcquireFor(1, 13, OriginHint, 50); b != nil {
		t.Error("cap admitted a block farther than all residents")
	}

	// Lifting the cap admits it.
	c.SetPartition(1, 0)
	if b := c.AcquireFor(1, 13, OriginHint, 50); b == nil {
		t.Error("uncapped owner refused a hinted block with free buffers")
	}
}

func TestSetHintForTransfersOwnership(t *testing.T) {
	c := New(4)
	b := c.AcquireFor(1, 10, OriginHint, 5)
	if b == nil {
		t.Fatal("acquire failed")
	}
	c.Complete(10)
	if c.HintedCount(1) != 1 || b.Owner != 1 {
		t.Fatalf("owner 1 should hold the block (count %d, owner %d)", c.HintedCount(1), b.Owner)
	}

	// Owner 2 re-protects the same block: accounting transfers.
	c.SetHintFor(10, 2, 3)
	if c.HintedCount(1) != 0 || c.HintedCount(2) != 1 || b.Owner != 2 {
		t.Errorf("transfer failed: counts 1=%d 2=%d owner=%d", c.HintedCount(1), c.HintedCount(2), b.Owner)
	}

	// Un-hinting releases owner 2's slot.
	c.SetHintDist(10, NoHint)
	if c.HintedCount(2) != 0 {
		t.Errorf("count 2 = %d after unhint, want 0", c.HintedCount(2))
	}

	// Re-hinting via the owner-0 wrapper assigns owner 0.
	c.SetHintDist(10, 7)
	if c.HintedCount(0) != 1 || b.Owner != 0 {
		t.Errorf("wrapper re-hint: count 0 = %d owner = %d", c.HintedCount(0), b.Owner)
	}
}
