// Package cache implements the file (buffer) cache that TIP manages: a fixed
// pool of block-sized buffers indexed by global logical block number, with an
// LRU list for unhinted blocks and hint-distance-aware eviction for hinted
// ones.
//
// The cache tracks timing state only — block *content* always comes from the
// simulated file system, which is what lets the simulation stay cheap while
// still accounting hits, misses, partial prefetches and evictions exactly.
package cache

import (
	"container/list"
	"fmt"
	"math"

	"spechint/internal/obs"
	"spechint/internal/sim"
)

// State is a cache block's lifecycle state.
type State int

const (
	// Absent blocks are not in the cache (Get returns nil instead).
	Absent State = iota
	// InTransit blocks have a disk request outstanding.
	InTransit
	// Valid blocks hold data.
	Valid
)

// NoHint marks a block with no outstanding hint.
const NoHint = int64(math.MaxInt64)

// Origin records how a block entered the cache, for the Table 5 accounting.
type Origin int

const (
	// OriginDemand blocks were fetched by a blocking read.
	OriginDemand Origin = iota
	// OriginHint blocks were prefetched from an application hint.
	OriginHint
	// OriginReadahead blocks were prefetched by the sequential read-ahead policy.
	OriginReadahead
)

func (o Origin) String() string {
	switch o {
	case OriginDemand:
		return "demand"
	case OriginHint:
		return "hint"
	case OriginReadahead:
		return "readahead"
	}
	return "origin"
}

// Block is one cache buffer.
type Block struct {
	LB       int64 // global logical block number
	Origin   Origin
	HintDist int64 // position in the hint sequence; NoHint if unhinted
	Owner    int   // hint-stream (client) id holding the hint protection;
	// meaningful only while HintDist != NoHint

	state    State
	uses     int // demand accesses since arrival
	waiters  []func(valid bool)
	elem     *list.Element // position in the LRU list (valid blocks only)
	arrival  int64         // tick of arrival, for diagnostics
	demanded bool          // a demand read upgraded/waited on this block
}

// State returns the block's lifecycle state.
func (b *Block) State() State { return b.state }

// Uses returns the number of demand accesses since the block arrived.
func (b *Block) Uses() int { return b.uses }

// Demanded reports whether the block is on an application's critical path: it
// was fetched by a demand read, or a demand read is waiting on it
// (NoteDemandWait). The fetch-retry policy keys off this — demanded blocks
// retry until their disk dies, mere prefetches give up and demote.
func (b *Block) Demanded() bool { return b.demanded || b.Origin == OriginDemand }

// Stats is the cache-side slice of the paper's Table 5.
type Stats struct {
	Hits         int64 // demand accesses served by a Valid block
	FullyPref    int64 // prefetched blocks whose fetch completed before first demand
	PartialWaits int64 // demand accesses that waited on an in-transit prefetched block
	Misses       int64 // demand accesses requiring a new disk fetch
	Reuses       int64 // second-or-later demand access to the same buffer
	EvictedClean int64 // valid blocks evicted
	UnusedHint   int64 // hint-prefetched blocks evicted (or left) with zero uses
	UnusedRA     int64 // readahead-prefetched blocks evicted (or left) with zero uses
	FailedLoads  int64 // in-transit blocks resolved to an error (Fail)

	// Multiprogramming isolation counters. CrossHintEvicts counts hinted
	// blocks evicted by a *hinted* request from a different owner (the
	// cost-benefit comparison allows this). UnhintedCrossEvicts counts hinted
	// blocks evicted by another owner's *unhinted* traffic — the partition
	// policy forbids it, so the counter must stay zero; internal/multi
	// asserts this.
	CrossHintEvicts     int64
	UnhintedCrossEvicts int64
}

// Cache is the buffer pool. It is not safe for concurrent use; the simulation
// is single-threaded by construction.
type Cache struct {
	capacity int
	blocks   map[int64]*Block
	lru      *list.List // front = LRU (eviction end), back = MRU
	tick     int64
	stats    Stats

	// Hinted-block partitions: per-owner resident hinted-block counts and
	// caps (0 or absent = unlimited). The TIP manager sets caps from its
	// cost-benefit allocation across competing hinted processes.
	hinted     map[int]int
	partitions map[int]int

	// accuracyOf, when set, supplies each owner's recent hint accuracy so
	// that cross-owner evictions can compare marginal benefit
	// (accuracy/distance) rather than raw distance. Nil means all owners are
	// equally reliable.
	accuracyOf func(owner int) float64

	// obs (with its clock source) records admit/evict/fail events on the
	// "cache" lane. The cache itself has no clock, so the installer (the TIP
	// manager) supplies one.
	obs    *obs.Trace
	obsNow func() sim.Time
}

// New returns a cache with the given capacity in blocks.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity %d", capacity))
	}
	return &Cache{
		capacity:   capacity,
		blocks:     make(map[int64]*Block),
		lru:        list.New(),
		hinted:     make(map[int]int),
		partitions: make(map[int]int),
	}
}

// SetAccuracyFn installs the per-owner hint-accuracy source used by the
// cross-owner marginal-benefit comparison.
func (c *Cache) SetAccuracyFn(fn func(owner int) float64) { c.accuracyOf = fn }

// SetObs installs a cross-layer trace and a virtual-clock source for
// timestamping cache events (the cache holds no clock of its own).
func (c *Cache) SetObs(tr *obs.Trace, now func() sim.Time) {
	c.obs = tr
	c.obsNow = now
}

// emit records a cache event when tracing is on.
func (c *Cache) emit(name, format string, args ...any) {
	if c.obs.Enabled() && c.obsNow != nil {
		c.obs.Emitf(c.obsNow(), "cache", "cache", name, format, args...)
	}
}

// SetPartition caps owner's resident hinted blocks at max (0 = unlimited).
func (c *Cache) SetPartition(owner, max int) {
	if max <= 0 {
		delete(c.partitions, owner)
		return
	}
	c.partitions[owner] = max
}

// HintedCount returns owner's current resident hinted-block count.
func (c *Cache) HintedCount(owner int) int { return c.hinted[owner] }

// Capacity returns the pool size in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of buffers in use (valid + in transit).
func (c *Cache) Len() int { return len(c.blocks) }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Get returns the block for lb, or nil if absent.
func (c *Cache) Get(lb int64) *Block { return c.blocks[lb] }

// Acquire allocates a buffer for owner 0 — the single-process form; see
// AcquireFor.
func (c *Cache) Acquire(lb int64, origin Origin, hintDist int64) *Block {
	return c.AcquireFor(0, lb, origin, hintDist)
}

// AcquireFor allocates a buffer for lb in the InTransit state on behalf of
// the given hint-stream owner, evicting a less-valuable block if the pool is
// full. hintDist is the requesting stream's distance to the block (NoHint for
// demand fetches and readahead, which use LRU value only). It returns nil if
// no buffer could be freed — every cached block is either in transit or more
// valuable than the request.
//
// AcquireFor panics if lb is already present; callers must check Get first.
func (c *Cache) AcquireFor(owner int, lb int64, origin Origin, hintDist int64) *Block {
	if _, ok := c.blocks[lb]; ok {
		panic(fmt.Sprintf("cache: Acquire of present block %d", lb))
	}
	if hintDist != NoHint {
		if max := c.partitions[owner]; max > 0 && c.hinted[owner] >= max {
			// The owner's hinted partition is full: the stream competes with
			// itself, reclaiming its own furthest-out hinted block — never
			// another process's.
			if !c.evictOwnFurthest(owner, hintDist) {
				return nil
			}
		}
	}
	if len(c.blocks) >= c.capacity {
		if !c.evictFor(owner, origin, hintDist) {
			return nil
		}
	}
	c.tick++
	b := &Block{LB: lb, Origin: origin, HintDist: hintDist, Owner: owner, state: InTransit, arrival: c.tick}
	c.blocks[lb] = b
	if hintDist != NoHint {
		c.hinted[owner]++
	}
	c.emit("admit", "lb=%d origin=%s owner=%d used=%d/%d", lb, origin, owner, len(c.blocks), c.capacity)
	return b
}

// evictOwnFurthest evicts owner's furthest-out valid hinted block, provided
// it is further out than the incoming distance (ejecting a hinted block to
// fetch data needed even later is never beneficial).
func (c *Cache) evictOwnFurthest(owner int, incoming int64) bool {
	var victim *Block
	for e := c.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Block)
		if b.HintDist == NoHint || b.Owner != owner {
			continue
		}
		if victim == nil || b.HintDist > victim.HintDist {
			victim = b
		}
	}
	if victim == nil || victim.HintDist <= incoming {
		return false
	}
	if victim.Owner != owner {
		// Unreachable under the partition policy (the candidate scan filters
		// on owner); the counter is a tripwire for internal/multi's isolation
		// assertion should the policy ever regress.
		c.stats.UnhintedCrossEvicts++
	}
	c.evict(victim)
	return true
}

// accuracy returns the owner's hint accuracy for benefit comparisons.
func (c *Cache) accuracy(owner int) float64 {
	if c.accuracyOf == nil {
		return 1
	}
	return c.accuracyOf(owner)
}

// evictFor frees one buffer for a request with the given origin, owner and
// hint distance. Policy (a simplification of TIP's cost-benefit analysis,
// extended across competing hinted processes):
//
//  1. Prefer the LRU unhinted valid block — the shared pool.
//  2. Unhinted traffic (demand fetches, sequential read-ahead) may reclaim
//     only the requesting process's OWN hinted blocks, furthest first:
//     demand always wins against its own stream (stalling the application is
//     the highest cost in the model), read-ahead never ejects hinted data.
//     Another process's hinted blocks are never victims of unhinted traffic.
//  3. A hinted fetch compares marginal benefit across every process's hinted
//     blocks: a block's benefit is its owner's recent hint accuracy divided
//     by its hint distance, and the globally least-beneficial block is
//     evicted if the incoming block is worth strictly more.
//
// In-transit blocks are never evicted.
func (c *Cache) evictFor(owner int, origin Origin, hintDist int64) bool {
	// Case 1: LRU unhinted block.
	for e := c.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Block)
		if b.HintDist == NoHint {
			c.evict(b)
			return true
		}
	}
	// Case 2: unhinted traffic reclaims only its own stream's hinted blocks.
	if hintDist == NoHint {
		incoming := int64(NoHint)
		if origin == OriginDemand {
			incoming = -1 // demand data is needed now; it always wins
		}
		return c.evictOwnFurthest(owner, incoming)
	}
	// Case 3: hinted fetch — cross-process marginal-benefit comparison.
	var victim *Block
	for e := c.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Block)
		if victim == nil || c.lessBeneficial(b, victim) {
			victim = b
		}
	}
	if victim == nil {
		return false
	}
	// benefit(victim) < benefit(incoming), cross-multiplied to avoid division.
	if c.accuracy(victim.Owner)*float64(hintDist+1) < c.accuracy(owner)*float64(victim.HintDist+1) {
		if victim.Owner != owner {
			c.stats.CrossHintEvicts++
		}
		c.evict(victim)
		return true
	}
	return false
}

// lessBeneficial reports whether holding a is worth strictly less than
// holding b: benefit = owner accuracy / (hint distance + 1).
func (c *Cache) lessBeneficial(a, b *Block) bool {
	return c.accuracy(a.Owner)*float64(b.HintDist+1) < c.accuracy(b.Owner)*float64(a.HintDist+1)
}

func (c *Cache) evict(b *Block) {
	c.stats.EvictedClean++
	c.emit("evict", "lb=%d origin=%s owner=%d uses=%d", b.LB, b.Origin, b.Owner, b.uses)
	c.noteUnusedIfPrefetched(b)
	c.dropHintAccounting(b)
	c.lru.Remove(b.elem)
	delete(c.blocks, b.LB)
}

// dropHintAccounting releases b's slot in its owner's hinted partition.
func (c *Cache) dropHintAccounting(b *Block) {
	if b.HintDist != NoHint {
		c.hinted[b.Owner]--
	}
}

func (c *Cache) noteUnusedIfPrefetched(b *Block) {
	if b.uses > 0 {
		return
	}
	switch b.Origin {
	case OriginHint:
		c.stats.UnusedHint++
	case OriginReadahead:
		c.stats.UnusedRA++
	}
}

// Complete transitions an in-transit block to Valid and wakes its waiters
// with valid=true.
func (c *Cache) Complete(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: Complete of block %d in bad state", lb))
	}
	b.state = Valid
	b.elem = c.lru.PushBack(b)
	ws := b.waiters
	b.waiters = nil
	for _, w := range ws {
		w(true)
	}
}

// Fail resolves an in-transit block to an error: the buffer is released (its
// fetch returned no data, so there is nothing to cache) and every waiter is
// woken with valid=false. The block must be InTransit — failing a block in
// any other state panics, like Complete.
func (c *Cache) Fail(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: Fail of block %d in bad state", lb))
	}
	c.stats.FailedLoads++
	c.emit("fail", "lb=%d origin=%s owner=%d waiters=%d", lb, b.Origin, b.Owner, len(b.waiters))
	c.dropHintAccounting(b)
	delete(c.blocks, lb)
	ws := b.waiters
	b.waiters = nil
	for _, w := range ws {
		w(false)
	}
}

// Wait registers fn to run when the in-transit block lb resolves: valid=true
// from Complete, valid=false from Fail.
func (c *Cache) Wait(lb int64, fn func(valid bool)) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: Wait on block %d in bad state", lb))
	}
	b.waiters = append(b.waiters, fn)
}

// Touch records a demand access to a valid block: it moves the block to the
// MRU end and updates hit/reuse statistics.
func (c *Cache) Touch(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != Valid {
		panic(fmt.Sprintf("cache: Touch of block %d in bad state", lb))
	}
	c.stats.Hits++
	if b.uses > 0 {
		c.stats.Reuses++
	} else if b.Origin != OriginDemand && !b.demanded {
		// First demand access found a prefetched block already valid: the
		// prefetch fully hid its latency (Table 5's "Fully" column).
		c.stats.FullyPref++
	}
	b.uses++
	c.lru.MoveToBack(b.elem)
}

// NoteDemandWait records that a demand read is waiting on an in-transit
// block. If the block was a prefetch, its latency was only partially hidden
// (Table 5's "Partially" column).
func (c *Cache) NoteDemandWait(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: NoteDemandWait on block %d in bad state", lb))
	}
	if !b.demanded && b.Origin != OriginDemand {
		c.stats.PartialWaits++
	}
	b.demanded = true
}

// Drop removes an in-transit block that never got a disk request (the disk
// rejected it under prefetch back-pressure). Dropping a block with waiters
// or in any other state panics: it would strand the waiters.
func (c *Cache) Drop(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit || len(b.waiters) > 0 {
		panic(fmt.Sprintf("cache: Drop of block %d in bad state", lb))
	}
	c.dropHintAccounting(b)
	delete(c.blocks, lb)
}

// NoteMiss records a demand fetch for an absent block.
func (c *Cache) NoteMiss() { c.stats.Misses++ }

// SetHintDist updates a block's hint distance on behalf of owner 0 — the
// single-process form; see SetHintFor.
func (c *Cache) SetHintDist(lb, dist int64) { c.SetHintFor(lb, 0, dist) }

// SetHintFor updates a block's hint distance and owner (e.g. after a
// CANCEL_ALL the block becomes unhinted; after a new hint it gains a distance
// and the hinting stream takes ownership), keeping the per-owner hinted
// partition counts consistent.
func (c *Cache) SetHintFor(lb int64, owner int, dist int64) {
	b := c.blocks[lb]
	if b == nil {
		return
	}
	wasHinted := b.HintDist != NoHint
	nowHinted := dist != NoHint
	switch {
	case wasHinted && !nowHinted:
		c.hinted[b.Owner]--
	case !wasHinted && nowHinted:
		c.hinted[owner]++
		b.Owner = owner
	case wasHinted && nowHinted && b.Owner != owner:
		c.hinted[b.Owner]--
		c.hinted[owner]++
		b.Owner = owner
	}
	b.HintDist = dist
}

// ForEach visits every cached block (any state), in unspecified order.
func (c *Cache) ForEach(fn func(*Block)) {
	for _, b := range c.blocks {
		fn(b)
	}
}

// FlushAccounting finalizes end-of-run statistics: prefetched blocks still
// resident with zero uses are counted as unused, exactly like evictions.
func (c *Cache) FlushAccounting() {
	for _, b := range c.blocks {
		c.noteUnusedIfPrefetched(b)
	}
}
