// Package cache implements the file (buffer) cache that TIP manages: a fixed
// pool of block-sized buffers indexed by global logical block number, with an
// LRU list for unhinted blocks and hint-distance-aware eviction for hinted
// ones.
//
// The cache tracks timing state only — block *content* always comes from the
// simulated file system, which is what lets the simulation stay cheap while
// still accounting hits, misses, partial prefetches and evictions exactly.
package cache

import (
	"container/list"
	"fmt"
	"math"
)

// State is a cache block's lifecycle state.
type State int

const (
	// Absent blocks are not in the cache (Get returns nil instead).
	Absent State = iota
	// InTransit blocks have a disk request outstanding.
	InTransit
	// Valid blocks hold data.
	Valid
)

// NoHint marks a block with no outstanding hint.
const NoHint = int64(math.MaxInt64)

// Origin records how a block entered the cache, for the Table 5 accounting.
type Origin int

const (
	// OriginDemand blocks were fetched by a blocking read.
	OriginDemand Origin = iota
	// OriginHint blocks were prefetched from an application hint.
	OriginHint
	// OriginReadahead blocks were prefetched by the sequential read-ahead policy.
	OriginReadahead
)

// Block is one cache buffer.
type Block struct {
	LB       int64 // global logical block number
	Origin   Origin
	HintDist int64 // position in the hint sequence; NoHint if unhinted

	state    State
	uses     int // demand accesses since arrival
	waiters  []func()
	elem     *list.Element // position in the LRU list (valid blocks only)
	arrival  int64         // tick of arrival, for diagnostics
	demanded bool          // a demand read upgraded/waited on this block
}

// State returns the block's lifecycle state.
func (b *Block) State() State { return b.state }

// Uses returns the number of demand accesses since the block arrived.
func (b *Block) Uses() int { return b.uses }

// Stats is the cache-side slice of the paper's Table 5.
type Stats struct {
	Hits         int64 // demand accesses served by a Valid block
	FullyPref    int64 // prefetched blocks whose fetch completed before first demand
	PartialWaits int64 // demand accesses that waited on an in-transit prefetched block
	Misses       int64 // demand accesses requiring a new disk fetch
	Reuses       int64 // second-or-later demand access to the same buffer
	EvictedClean int64 // valid blocks evicted
	UnusedHint   int64 // hint-prefetched blocks evicted (or left) with zero uses
	UnusedRA     int64 // readahead-prefetched blocks evicted (or left) with zero uses
}

// Cache is the buffer pool. It is not safe for concurrent use; the simulation
// is single-threaded by construction.
type Cache struct {
	capacity int
	blocks   map[int64]*Block
	lru      *list.List // front = LRU (eviction end), back = MRU
	tick     int64
	stats    Stats
}

// New returns a cache with the given capacity in blocks.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity %d", capacity))
	}
	return &Cache{
		capacity: capacity,
		blocks:   make(map[int64]*Block),
		lru:      list.New(),
	}
}

// Capacity returns the pool size in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of buffers in use (valid + in transit).
func (c *Cache) Len() int { return len(c.blocks) }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Get returns the block for lb, or nil if absent.
func (c *Cache) Get(lb int64) *Block { return c.blocks[lb] }

// Acquire allocates a buffer for lb in the InTransit state, evicting a
// less-valuable block if the pool is full. hintDist is the requesting
// stream's distance to the block (NoHint for demand fetches and readahead,
// which use LRU value only). It returns nil if no buffer could be freed —
// every cached block is either in transit or more valuable than the request.
//
// Acquire panics if lb is already present; callers must check Get first.
func (c *Cache) Acquire(lb int64, origin Origin, hintDist int64) *Block {
	if _, ok := c.blocks[lb]; ok {
		panic(fmt.Sprintf("cache: Acquire of present block %d", lb))
	}
	if len(c.blocks) >= c.capacity {
		if !c.evictFor(origin, hintDist) {
			return nil
		}
	}
	c.tick++
	b := &Block{LB: lb, Origin: origin, HintDist: hintDist, state: InTransit, arrival: c.tick}
	c.blocks[lb] = b
	return b
}

// evictFor frees one buffer for a request with the given origin and hint
// distance. Policy (a simplification of TIP's cost-benefit analysis):
//
//  1. Prefer the LRU unhinted valid block.
//  2. Otherwise evict the hinted valid block with the greatest hint distance,
//     but only if that distance exceeds the incoming request's — ejecting a
//     hinted block to fetch data needed even later is never beneficial.
//  3. Demand fetches (hintDist == NoHint, origin OriginDemand) may always
//     take the greatest-distance hinted block: stalling the application is
//     the highest cost in the model.
//
// In-transit blocks are never evicted.
func (c *Cache) evictFor(origin Origin, hintDist int64) bool {
	// Case 1: LRU unhinted block.
	for e := c.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Block)
		if b.HintDist == NoHint {
			c.evict(b)
			return true
		}
	}
	// Case 2/3: furthest hinted block.
	var victim *Block
	for e := c.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Block)
		if victim == nil || b.HintDist > victim.HintDist {
			victim = b
		}
	}
	if victim == nil {
		return false
	}
	incoming := hintDist
	if origin == OriginDemand {
		incoming = -1 // demand data is needed now; it always wins
	}
	if victim.HintDist > incoming {
		c.evict(victim)
		return true
	}
	return false
}

func (c *Cache) evict(b *Block) {
	c.stats.EvictedClean++
	c.noteUnusedIfPrefetched(b)
	c.lru.Remove(b.elem)
	delete(c.blocks, b.LB)
}

func (c *Cache) noteUnusedIfPrefetched(b *Block) {
	if b.uses > 0 {
		return
	}
	switch b.Origin {
	case OriginHint:
		c.stats.UnusedHint++
	case OriginReadahead:
		c.stats.UnusedRA++
	}
}

// Complete transitions an in-transit block to Valid and wakes its waiters.
func (c *Cache) Complete(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: Complete of block %d in bad state", lb))
	}
	b.state = Valid
	b.elem = c.lru.PushBack(b)
	ws := b.waiters
	b.waiters = nil
	for _, w := range ws {
		w()
	}
}

// Wait registers fn to run when the in-transit block lb becomes valid.
func (c *Cache) Wait(lb int64, fn func()) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: Wait on block %d in bad state", lb))
	}
	b.waiters = append(b.waiters, fn)
}

// Touch records a demand access to a valid block: it moves the block to the
// MRU end and updates hit/reuse statistics.
func (c *Cache) Touch(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != Valid {
		panic(fmt.Sprintf("cache: Touch of block %d in bad state", lb))
	}
	c.stats.Hits++
	if b.uses > 0 {
		c.stats.Reuses++
	} else if b.Origin != OriginDemand && !b.demanded {
		// First demand access found a prefetched block already valid: the
		// prefetch fully hid its latency (Table 5's "Fully" column).
		c.stats.FullyPref++
	}
	b.uses++
	c.lru.MoveToBack(b.elem)
}

// NoteDemandWait records that a demand read is waiting on an in-transit
// block. If the block was a prefetch, its latency was only partially hidden
// (Table 5's "Partially" column).
func (c *Cache) NoteDemandWait(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit {
		panic(fmt.Sprintf("cache: NoteDemandWait on block %d in bad state", lb))
	}
	if !b.demanded && b.Origin != OriginDemand {
		c.stats.PartialWaits++
	}
	b.demanded = true
}

// Drop removes an in-transit block that never got a disk request (the disk
// rejected it under prefetch back-pressure). Dropping a block with waiters
// or in any other state panics: it would strand the waiters.
func (c *Cache) Drop(lb int64) {
	b := c.blocks[lb]
	if b == nil || b.state != InTransit || len(b.waiters) > 0 {
		panic(fmt.Sprintf("cache: Drop of block %d in bad state", lb))
	}
	delete(c.blocks, lb)
}

// NoteMiss records a demand fetch for an absent block.
func (c *Cache) NoteMiss() { c.stats.Misses++ }

// SetHintDist updates a block's hint distance (e.g. after a CANCEL_ALL the
// block becomes unhinted; after a new hint it gains a distance).
func (c *Cache) SetHintDist(lb, dist int64) {
	if b := c.blocks[lb]; b != nil {
		b.HintDist = dist
	}
}

// ForEach visits every cached block (any state), in unspecified order.
func (c *Cache) ForEach(fn func(*Block)) {
	for _, b := range c.blocks {
		fn(b)
	}
}

// FlushAccounting finalizes end-of-run statistics: prefetched blocks still
// resident with zero uses are counted as unused, exactly like evictions.
func (c *Cache) FlushAccounting() {
	for _, b := range c.blocks {
		c.noteUnusedIfPrefetched(b)
	}
}
