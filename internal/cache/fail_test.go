package cache

import "testing"

// mustPanic asserts fn panics; negative coverage for every documented panic
// precondition in the cache API.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestFailResolvesInTransitToError(t *testing.T) {
	c := New(4)
	c.Acquire(5, OriginHint, 3)
	valid, invalid := 0, 0
	c.Wait(5, func(ok bool) {
		if ok {
			valid++
		} else {
			invalid++
		}
	})
	c.Fail(5)
	if invalid != 1 || valid != 0 {
		t.Fatalf("waiter woken valid=%d invalid=%d, want 0/1", valid, invalid)
	}
	if c.Get(5) != nil {
		t.Fatal("failed block still cached")
	}
	if c.Stats().FailedLoads != 1 {
		t.Fatalf("FailedLoads = %d, want 1", c.Stats().FailedLoads)
	}
	// The buffer is free again: the same block can be re-acquired.
	if c.Acquire(5, OriginDemand, NoHint) == nil {
		t.Fatal("re-acquire after Fail returned nil")
	}
}

func TestFailReleasesHintPartitionSlot(t *testing.T) {
	c := New(4)
	c.SetPartition(0, 1)
	c.Acquire(7, OriginHint, 2)
	if c.HintedCount(0) != 1 {
		t.Fatalf("HintedCount = %d, want 1", c.HintedCount(0))
	}
	c.Fail(7)
	if c.HintedCount(0) != 0 {
		t.Fatalf("HintedCount after Fail = %d, want 0", c.HintedCount(0))
	}
}

func TestFailPanicPreconditions(t *testing.T) {
	c := New(4)
	mustPanic(t, "Fail of absent block", func() { c.Fail(1) })
	c.Acquire(2, OriginDemand, NoHint)
	c.Complete(2)
	mustPanic(t, "Fail of valid block", func() { c.Fail(2) })
}

func TestPanicPreconditionsCoverEveryTransition(t *testing.T) {
	// Each documented panic precondition, against both Absent and the wrong
	// resident state.
	c := New(8)
	c.Acquire(1, OriginDemand, NoHint) // 1: InTransit
	c.Acquire(2, OriginDemand, NoHint)
	c.Complete(2) // 2: Valid

	mustPanic(t, "Complete of absent block", func() { c.Complete(99) })
	mustPanic(t, "Complete of valid block", func() { c.Complete(2) })
	mustPanic(t, "Wait on absent block", func() { c.Wait(99, func(bool) {}) })
	mustPanic(t, "Wait on valid block", func() { c.Wait(2, func(bool) {}) })
	mustPanic(t, "Touch of absent block", func() { c.Touch(99) })
	mustPanic(t, "Touch of in-transit block", func() { c.Touch(1) })
	mustPanic(t, "NoteDemandWait on absent block", func() { c.NoteDemandWait(99) })
	mustPanic(t, "NoteDemandWait on valid block", func() { c.NoteDemandWait(2) })
	mustPanic(t, "Drop of absent block", func() { c.Drop(99) })
	mustPanic(t, "Drop of valid block", func() { c.Drop(2) })
	c.Wait(1, func(bool) {})
	mustPanic(t, "Drop of block with waiters", func() { c.Drop(1) })
	mustPanic(t, "Acquire of present block", func() { c.Acquire(1, OriginDemand, NoHint) })
	mustPanic(t, "zero-capacity cache", func() { New(0) })
}

func TestDemandedFlag(t *testing.T) {
	c := New(4)
	d := c.Acquire(1, OriginDemand, NoHint)
	if !d.Demanded() {
		t.Fatal("demand-origin block not Demanded")
	}
	p := c.Acquire(2, OriginHint, 0)
	if p.Demanded() {
		t.Fatal("fresh prefetch block Demanded")
	}
	c.NoteDemandWait(2)
	if !p.Demanded() {
		t.Fatal("NoteDemandWait did not mark the block Demanded")
	}
}
