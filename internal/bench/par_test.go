package bench

import (
	"bytes"
	"testing"

	"spechint/internal/apps"
)

// withParallelism runs fn at the given pool width, restoring the package
// setting afterwards. The bench package contract is that Parallelism is
// configured once before experiments run; tests in this package do not run
// concurrently with each other, so swapping it here is safe.
func withParallelism(w int, fn func()) {
	old := Parallelism
	Parallelism = w
	defer func() { Parallelism = old }()
	fn()
}

// TestSerialParallelIdentical is the differential determinism check at the
// heart of the fan-out design: every experiment in the registry must render
// byte-identical output with -parallel 1 and a multi-worker pool. Cells are
// simulated in whatever order the workers reach them; the assembled tables
// must not care.
func TestSerialParallelIdentical(t *testing.T) {
	oldMax := MultiMaxN
	MultiMaxN = 2
	defer func() { MultiMaxN = oldMax }()
	scale := apps.TestScale()

	for _, name := range Names() {
		name := name
		if Registry[name].Heavy && testing.Short() {
			continue
		}
		t.Run(name, func(t *testing.T) {
			var serial, parallel bytes.Buffer
			withParallelism(1, func() {
				if err := RunByName(name, scale, &serial); err != nil {
					t.Fatalf("serial: %v", err)
				}
			})
			withParallelism(4, func() {
				if err := RunByName(name, scale, &parallel); err != nil {
					t.Fatalf("parallel: %v", err)
				}
			})
			if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
				t.Fatalf("experiment %s renders differently serial vs parallel:\n--- serial ---\n%s\n--- parallel ---\n%s",
					name, serial.Bytes(), parallel.Bytes())
			}
		})
	}
}

// TestSerialParallelJSONIdentical covers the machine-readable exports the
// committed baselines are built from: the multi and faults sweep JSON must
// be byte-identical at any pool width.
func TestSerialParallelJSONIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep JSON is heavy; skipped in -short")
	}
	scale := apps.TestScale()
	var multiSerial, multiPar, faultsSerial, faultsPar []byte
	var err error
	withParallelism(1, func() {
		if multiSerial, err = MultiJSON(scale, 2); err != nil {
			t.Fatalf("serial multi: %v", err)
		}
		if faultsSerial, err = FaultsJSON(scale); err != nil {
			t.Fatalf("serial faults: %v", err)
		}
	})
	withParallelism(4, func() {
		if multiPar, err = MultiJSON(scale, 2); err != nil {
			t.Fatalf("parallel multi: %v", err)
		}
		if faultsPar, err = FaultsJSON(scale); err != nil {
			t.Fatalf("parallel faults: %v", err)
		}
	})
	if !bytes.Equal(multiSerial, multiPar) {
		t.Errorf("multi sweep JSON differs serial vs parallel:\n%s\nvs\n%s", multiSerial, multiPar)
	}
	if !bytes.Equal(faultsSerial, faultsPar) {
		t.Errorf("faults sweep JSON differs serial vs parallel:\n%s\nvs\n%s", faultsSerial, faultsPar)
	}
}

// TestSerialParallelTraceIdentical repeats a traced run under both pool
// widths and byte-compares the Chrome trace and metrics exports. Traces
// record virtual (cycle) timestamps only, so the worker count must not leak
// into a single cell's event stream.
func TestSerialParallelTraceIdentical(t *testing.T) {
	render := func() (trace, metrics []byte) {
		tr, _, err := TraceMulti(apps.TestScale(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if trace, err = tr.ChromeTraceJSON(); err != nil {
			t.Fatal(err)
		}
		if metrics, err = tr.MetricsJSON(); err != nil {
			t.Fatal(err)
		}
		return trace, metrics
	}
	var ts, ms, tp, mp []byte
	withParallelism(1, func() { ts, ms = render() })
	withParallelism(4, func() { tp, mp = render() })
	if !bytes.Equal(ts, tp) {
		t.Errorf("Chrome trace differs serial vs parallel (%d vs %d bytes)", len(ts), len(tp))
	}
	if !bytes.Equal(ms, mp) {
		t.Errorf("metrics export differs serial vs parallel (%d vs %d bytes)", len(ms), len(mp))
	}
}
