// Package bench regenerates every table and figure in the paper's
// evaluation (§4). Each experiment builds fresh workloads and programs,
// runs the relevant configurations through the core runtime, and formats
// rows the way the paper reports them.
//
// Absolute numbers come from the simulated testbed and are not expected to
// match the paper's hardware; the shapes — who wins, by roughly what factor,
// where the crossovers fall — are the reproduction targets (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"runtime"
	"sync"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/par"
	"spechint/internal/vm"
)

// Apps is the benchmark suite order used by every table.
var Apps = []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice}

// Parallelism is the worker-pool width the sweep experiments hand to the
// fan-out engine (internal/par). The default is one worker per CPU;
// tipbench's -parallel flag overrides it, and -parallel 1 reproduces
// strictly serial execution. Like MultiMaxN it is set once before
// experiments run, not mutated mid-sweep.
//
// The determinism contract: every experiment's output is byte-identical
// at any width, because cells share nothing mutable (fresh workloads and
// substrates per cell, immutable cached programs) and results are
// assembled in index order regardless of completion order.
var Parallelism = runtime.NumCPU()

// parMap fans n independent cells out over the configured worker pool,
// returning results in index order; the error (if any) is the
// lowest-indexed cell's, independent of scheduling.
func parMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return par.MapErr(Parallelism, n, fn)
}

// Mutator adjusts a configuration before a run (disk count, cache size...).
type Mutator func(*core.Config)

// Run executes one app in one mode with an optional config mutation,
// building a fresh workload (runs share nothing).
func Run(app apps.App, mode core.Mode, scale apps.Scale, mutate Mutator) (*core.RunStats, *apps.Bundle, error) {
	b, err := apps.Build(app, scale)
	if err != nil {
		return nil, nil, err
	}
	var prog *vm.Program
	switch mode {
	case core.ModeNoHint:
		prog = b.Original
	case core.ModeSpeculating:
		prog = b.Transformed
	case core.ModeManual:
		prog = b.Manual
	case core.ModeStatic:
		// Static mode runs the unmodified binary; the hints come from the
		// offline synthesis cached in the bundle.
		prog = b.Original
	default:
		return nil, nil, fmt.Errorf("bench: bad mode %v", mode)
	}
	cfg := core.DefaultConfig(mode)
	if mode == core.ModeStatic {
		synth, err := Synth(b)
		if err != nil {
			return nil, nil, err
		}
		cfg.StaticHints = StaticHints(synth)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.New(cfg, prog, b.FS)
	if err != nil {
		return nil, nil, err
	}
	st, err := sys.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %v %v: %w", app, mode, err)
	}
	return st, b, nil
}

// Triple holds one app's three runs under a single configuration.
type Triple struct {
	App    apps.App
	Orig   *core.RunStats
	Spec   *core.RunStats
	Manual *core.RunStats
	Bundle *apps.Bundle // from the speculating run (transform stats)
}

// RunTriple runs all three variants of app. The three runs are
// independent simulations (each builds its own workload and substrate),
// so they fan out across the worker pool.
func RunTriple(app apps.App, scale apps.Scale, mutate Mutator) (*Triple, error) {
	triples, err := runTripleGrid(1, func(int) (apps.App, apps.Scale, Mutator) {
		return app, scale, mutate
	})
	if err != nil {
		return nil, err
	}
	return triples[0], nil
}

// tripleModes is the fixed mode order of a triple's three runs.
var tripleModes = [3]core.Mode{core.ModeNoHint, core.ModeSpeculating, core.ModeManual}

// runTripleGrid runs n triples — spec(i) names the i'th — as one flat
// 3n-cell fan-out, so the worker pool sees every (config, mode) run at
// once instead of three at a time. Results come back in spec order.
func runTripleGrid(n int, spec func(i int) (apps.App, apps.Scale, Mutator)) ([]*Triple, error) {
	type cell struct {
		st *core.RunStats
		b  *apps.Bundle
	}
	cells, err := parMap(3*n, func(j int) (cell, error) {
		app, scale, mutate := spec(j / 3)
		st, b, err := Run(app, tripleModes[j%3], scale, mutate)
		return cell{st, b}, err
	})
	if err != nil {
		return nil, err
	}
	triples := make([]*Triple, n)
	for i := range triples {
		app, _, _ := spec(i)
		t := &Triple{App: app,
			Orig:   cells[3*i].st,
			Spec:   cells[3*i+1].st,
			Manual: cells[3*i+2].st,
			Bundle: cells[3*i+1].b}
		// Correctness invariant: all variants must compute the same result.
		if t.Orig.ExitCode != t.Spec.ExitCode || t.Orig.ExitCode != t.Manual.ExitCode {
			return nil, fmt.Errorf("bench: %v exit codes diverge: orig %d spec %d manual %d",
				app, t.Orig.ExitCode, t.Spec.ExitCode, t.Manual.ExitCode)
		}
		triples[i] = t
	}
	return triples, nil
}

// Improvement returns the percent reduction in elapsed time of st vs base.
// A zero-elapsed base (possible under degenerate workloads or a fault plan
// that kills a run instantly) returns 0 rather than ±Inf/NaN — non-finite
// floats would make encoding/json reject whole sweep exports.
func Improvement(base, st *core.RunStats) float64 {
	if base.Elapsed == 0 {
		return 0
	}
	return 100 * (1 - float64(st.Elapsed)/float64(base.Elapsed))
}

// Suite runs and caches the three-variant runs that several tables share.
// It is safe for concurrent use; Prewarm fills it across the worker pool.
type Suite struct {
	Scale  apps.Scale
	Mutate Mutator

	mu      sync.Mutex
	triples map[apps.App]*Triple
}

// NewSuite returns a Suite at the given scale under the default (4-disk,
// 12 MB cache) configuration.
func NewSuite(scale apps.Scale) *Suite {
	return &Suite{Scale: scale, triples: make(map[apps.App]*Triple)}
}

// Triple returns (running on first use) the cached triple for app.
func (s *Suite) Triple(app apps.App) (*Triple, error) {
	s.mu.Lock()
	t, ok := s.triples[app]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	t, err := RunTriple(app, s.Scale, s.Mutate)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// A concurrent caller may have raced us here; keep the first stored
	// triple so every reader sees one instance (the results are identical
	// either way — the runs are deterministic).
	if prev, ok := s.triples[app]; ok {
		t = prev
	} else {
		s.triples[app] = t
	}
	s.mu.Unlock()
	return t, nil
}

// Prewarm fills the suite's triples for every benchmark app as one flat
// app-by-mode fan-out, so the suite-backed tables that follow hit the
// cache.
func (s *Suite) Prewarm() error {
	triples, err := runTripleGrid(len(Apps), func(i int) (apps.App, apps.Scale, Mutator) {
		return Apps[i], s.Scale, s.Mutate
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, app := range Apps {
		if _, ok := s.triples[app]; !ok {
			s.triples[app] = triples[i]
		}
	}
	return nil
}
