// Package bench regenerates every table and figure in the paper's
// evaluation (§4). Each experiment builds fresh workloads and programs,
// runs the relevant configurations through the core runtime, and formats
// rows the way the paper reports them.
//
// Absolute numbers come from the simulated testbed and are not expected to
// match the paper's hardware; the shapes — who wins, by roughly what factor,
// where the crossovers fall — are the reproduction targets (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/vm"
)

// Apps is the benchmark suite order used by every table.
var Apps = []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice}

// Mutator adjusts a configuration before a run (disk count, cache size...).
type Mutator func(*core.Config)

// Run executes one app in one mode with an optional config mutation,
// building a fresh workload (runs share nothing).
func Run(app apps.App, mode core.Mode, scale apps.Scale, mutate Mutator) (*core.RunStats, *apps.Bundle, error) {
	b, err := apps.Build(app, scale)
	if err != nil {
		return nil, nil, err
	}
	var prog *vm.Program
	switch mode {
	case core.ModeNoHint:
		prog = b.Original
	case core.ModeSpeculating:
		prog = b.Transformed
	case core.ModeManual:
		prog = b.Manual
	default:
		return nil, nil, fmt.Errorf("bench: bad mode %v", mode)
	}
	cfg := core.DefaultConfig(mode)
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.New(cfg, prog, b.FS)
	if err != nil {
		return nil, nil, err
	}
	st, err := sys.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %v %v: %w", app, mode, err)
	}
	return st, b, nil
}

// Triple holds one app's three runs under a single configuration.
type Triple struct {
	App    apps.App
	Orig   *core.RunStats
	Spec   *core.RunStats
	Manual *core.RunStats
	Bundle *apps.Bundle // from the speculating run (transform stats)
}

// RunTriple runs all three variants of app.
func RunTriple(app apps.App, scale apps.Scale, mutate Mutator) (*Triple, error) {
	t := &Triple{App: app}
	var err error
	if t.Orig, _, err = Run(app, core.ModeNoHint, scale, mutate); err != nil {
		return nil, err
	}
	if t.Spec, t.Bundle, err = Run(app, core.ModeSpeculating, scale, mutate); err != nil {
		return nil, err
	}
	if t.Manual, _, err = Run(app, core.ModeManual, scale, mutate); err != nil {
		return nil, err
	}
	// Correctness invariant: all variants must compute the same result.
	if t.Orig.ExitCode != t.Spec.ExitCode || t.Orig.ExitCode != t.Manual.ExitCode {
		return nil, fmt.Errorf("bench: %v exit codes diverge: orig %d spec %d manual %d",
			app, t.Orig.ExitCode, t.Spec.ExitCode, t.Manual.ExitCode)
	}
	return t, nil
}

// Improvement returns the percent reduction in elapsed time of st vs base.
func Improvement(base, st *core.RunStats) float64 {
	return 100 * (1 - float64(st.Elapsed)/float64(base.Elapsed))
}

// Suite runs and caches the three-variant runs that several tables share.
type Suite struct {
	Scale   apps.Scale
	Mutate  Mutator
	triples map[apps.App]*Triple
}

// NewSuite returns a Suite at the given scale under the default (4-disk,
// 12 MB cache) configuration.
func NewSuite(scale apps.Scale) *Suite {
	return &Suite{Scale: scale, triples: make(map[apps.App]*Triple)}
}

// Triple returns (running on first use) the cached triple for app.
func (s *Suite) Triple(app apps.App) (*Triple, error) {
	if t, ok := s.triples[app]; ok {
		return t, nil
	}
	t, err := RunTriple(app, s.Scale, s.Mutate)
	if err != nil {
		return nil, err
	}
	s.triples[app] = t
	return t, nil
}
