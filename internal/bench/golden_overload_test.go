package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spechint/internal/apps"
)

// overloadGoldenPath is the committed canon for the test-scale overload
// sweep: both admission arms across the load axis plus the failover cell.
var overloadGoldenPath = filepath.Join(goldenDir, "overload_small.json")

// TestGoldenOverload byte-compares the overload sweep against the committed
// canon. Everything the sweep exercises is under the diff: admission rulings,
// shed/retry/backoff schedules, breaker trips, the failover re-route and the
// conservation counters. Re-canonize deliberately with:
//
//	go test ./internal/bench -run GoldenOverload -update
func TestGoldenOverload(t *testing.T) {
	got, err := OverloadJSON(apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(overloadGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(overloadGoldenPath)
	if err != nil {
		t.Fatalf("no golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged from the golden run (%d bytes vs %d).\n"+
			"If the change is intentional, re-canonize with:\n"+
			"  go test ./internal/bench -run GoldenOverload -update\nfirst difference at byte %d",
			overloadGoldenPath, len(got), len(want), firstDiff(got, want))
	}
}

// TestOverloadParallelWidths: the sweep is byte-identical whether its cells
// run serially or fan out across the worker pool. Run under -race this also
// checks the cells share no mutable state.
func TestOverloadParallelWidths(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	serial, err := OverloadJSON(apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 8
	wide, err := OverloadJSON(apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, wide) {
		t.Fatalf("overload sweep depends on -parallel width: %d vs %d bytes, first diff at %d",
			len(serial), len(wide), firstDiff(serial, wide))
	}
}

// TestOverloadAcceptance pins the figure the experiment exists to draw, on
// the same test-scale sweep the golden covers: with admission on, served p99
// at 4x offered load stays within 2x of the at-capacity (1x) p99 and goodput
// holds >= 90% of the curve's peak; the failover cell completes every session
// not lost to the detection window; every cell's counters conserve (checked
// inside overloadCell).
func TestOverloadAcceptance(t *testing.T) {
	points, err := overloadSweep(apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	var atCap, deep *OverloadPoint
	peak := 0.0
	for i := range points {
		pt := &points[i]
		if !pt.Shed || pt.Failover {
			continue
		}
		if pt.Goodput > peak {
			peak = pt.Goodput
		}
		if pt.Mult == 1 {
			atCap = pt
		}
		if pt.Mult == 4 {
			deep = pt
		}
	}
	if atCap == nil || deep == nil {
		t.Fatal("sweep missing the 1x or 4x shed-on cell")
	}
	if deep.ServedP99Ms > 2*atCap.ServedP99Ms {
		t.Errorf("shed-on p99 at 4x = %.1f ms, over 2x the at-capacity %.1f ms",
			deep.ServedP99Ms, atCap.ServedP99Ms)
	}
	if deep.Goodput < 0.9*peak {
		t.Errorf("shed-on goodput at 4x = %.1f r/s, under 90%% of peak %.1f", deep.Goodput, peak)
	}
	if atCap.FailedReads != 0 {
		t.Errorf("at-capacity cell lost %d reads; capacity should serve everything", atCap.FailedReads)
	}
	for _, pt := range points {
		if pt.Failover {
			if pt.FailedParts == 0 {
				t.Error("failover cell killed a shard but no part ever failed")
			}
			if pt.Reads == 0 || pt.DeadSeen == 0 {
				t.Errorf("failover cell looks inert: %+v", pt)
			}
		}
	}
}
