package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/core"
)

// TestReplayRoundTrip is the capture→replay differential wall: for every
// canonical app, replaying the captured trace must touch the disk with a
// block-for-block identical access sequence, and both runs' stall buckets
// must sum to their elapsed time.
func TestReplayRoundTrip(t *testing.T) {
	for _, app := range Apps {
		app := app
		t.Run(app.String(), func(t *testing.T) {
			t.Parallel()
			rt, err := RoundTrip(app, apps.TestScale())
			if err != nil {
				t.Fatal(err)
			}
			if rt.Reads == 0 {
				t.Fatal("captured no reads; round trip is vacuous")
			}
			if !rt.Exact {
				t.Errorf("replayed disk access sequence diverged (%d reads, %d records)",
					rt.Reads, rt.Records)
			}
			if !rt.BucketsOK {
				t.Error("stall buckets do not sum to elapsed")
			}
		})
	}
}

// TestReplayModernWhoWins pins the headline result: on the readahead-hostile
// modern apps, speculation must beat the original run.
func TestReplayModernWhoWins(t *testing.T) {
	for _, app := range ModernApps {
		app := app
		t.Run(app.String(), func(t *testing.T) {
			t.Parallel()
			orig, _, err := Run(app, core.ModeNoHint, apps.TestScale(), nil)
			if err != nil {
				t.Fatal(err)
			}
			spec, _, err := Run(app, core.ModeSpeculating, apps.TestScale(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if spec.ExitCode != orig.ExitCode {
				t.Fatalf("speculating exit %d != original %d", spec.ExitCode, orig.ExitCode)
			}
			if spec.Elapsed >= orig.Elapsed {
				t.Errorf("speculating (%d cycles) does not beat original (%d)",
					spec.Elapsed, orig.Elapsed)
			}
			if spec.HintedReads == 0 {
				t.Error("speculating run hinted no reads")
			}
		})
	}
}

// replayGoldenPath is the committed canon for the test-scale replay report.
var replayGoldenPath = filepath.Join(goldenDir, "replay_small.json")

// TestGoldenReplay byte-compares the test-scale replay report against the
// committed canon; re-canonize deliberately with:
//
//	go test ./internal/bench -run GoldenReplay -update
func TestGoldenReplay(t *testing.T) {
	got, err := ReplayJSON(apps.TestScale(), "test")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(replayGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(replayGoldenPath)
	if err != nil {
		t.Fatalf("no golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged from the golden run (%d bytes vs %d).\n"+
			"If the change is intentional, re-canonize with:\n"+
			"  go test ./internal/bench -run GoldenReplay -update\nfirst difference at byte %d",
			replayGoldenPath, len(got), len(want), firstDiff(got, want))
	}
	// The canon itself must carry the headline shape: speculation wins on
	// every modern app and every round trip is exact.
	var rep ReplayReport
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.Mode == "speculating" && p.ImprovementPct <= 0 {
			t.Errorf("%s: canonical speculating improvement %.1f%% is not positive",
				p.App, p.ImprovementPct)
		}
		if !p.BucketsOK {
			t.Errorf("%s/%s: canonical stall buckets do not sum", p.App, p.Mode)
		}
	}
	for _, rt := range rep.RoundTrip {
		if !rt.Exact {
			t.Errorf("%s: canonical round trip not exact", rt.App)
		}
	}
}
