package bench

import (
	"fmt"
	"io"
	"sort"

	"spechint/internal/apps"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	Name  string
	Desc  string
	Run   func(scale apps.Scale, w io.Writer) error
	Heavy bool // involves a parameter sweep (long running)
}

// suiteExp wraps experiments that share the default-configuration triples.
// The suite is prewarmed across the worker pool so the table formatter
// only reads cached triples.
func suiteExp(fn func(*Suite) (string, error)) func(apps.Scale, io.Writer) error {
	return func(scale apps.Scale, w io.Writer) error {
		s := NewSuite(scale)
		if err := s.Prewarm(); err != nil {
			return err
		}
		out, err := fn(s)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, out)
		return err
	}
}

func scaleExp(fn func(apps.Scale) (string, error)) func(apps.Scale, io.Writer) error {
	return func(scale apps.Scale, w io.Writer) error {
		out, err := fn(scale)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, out)
		return err
	}
}

// Registry lists every experiment by id.
var Registry = map[string]Experiment{
	"table1":     {Name: "table1", Desc: "manual-hint improvements (background)", Run: suiteExp(Table1)},
	"table3":     {Name: "table3", Desc: "transformed application statistics", Run: scaleExp(Table3)},
	"fig3":       {Name: "fig3", Desc: "elapsed time: original vs speculating vs manual", Run: suiteExp(Figure3)},
	"fig4":       {Name: "fig4", Desc: "overhead with TIP ignoring hints", Run: suiteExp(Figure4)},
	"table4":     {Name: "table4", Desc: "hinting statistics", Run: suiteExp(Table4)},
	"table5":     {Name: "table5", Desc: "prefetching and caching statistics", Run: suiteExp(Table5)},
	"table6":     {Name: "table6", Desc: "performance side-effects", Run: suiteExp(Table6)},
	"table7":     {Name: "table7", Desc: "file cache size sweep", Run: scaleExp(Table7), Heavy: true},
	"table8":     {Name: "table8", Desc: "original apps vs number of disks", Run: scaleExp(Table8), Heavy: true},
	"fig5":       {Name: "fig5", Desc: "improvement vs number of disks", Run: scaleExp(Figure5), Heavy: true},
	"fig6":       {Name: "fig6", Desc: "improvement vs processor/disk speed ratio", Run: scaleExp(Figure6), Heavy: true},
	"regionsize": {Name: "regionsize", Desc: "COW region size ablation (§3.2.1)", Run: scaleExp(RegionSize), Heavy: true},
	"throttle":   {Name: "throttle", Desc: "cancel throttle on one disk (§5)", Run: scaleExp(Throttle)},
	"mp":         {Name: "mp", Desc: "speculation on a second processor (§5 extension)", Run: scaleExp(MultiProcessor), Heavy: true},
	"adaptive":   {Name: "adaptive", Desc: "accuracy-gated erroneous-hint limiter (§5 extension)", Run: scaleExp(AdaptiveLimiter)},
	"join":       {Name: "join", Desc: "Postgres join improvement vs selectivity (Table 1 extension)", Run: scaleExp(JoinSelectivity), Heavy: true},
	"multi":      {Name: "multi", Desc: "N-process shared-TIP multiprogramming: makespan, throughput, fairness", Run: scaleExp(Multi), Heavy: true},
	"faults":     {Name: "faults", Desc: "graceful degradation under injected disk faults (robustness extension)", Run: scaleExp(Faults), Heavy: true},
	"speed":      {Name: "speed", Desc: "simulator fast-path self-check: free-listed events, tick batching, pre-decoded dispatch", Run: scaleExp(Speed)},
	"static":     {Name: "static", Desc: "statically synthesized hints vs original and manual (static-analysis extension)", Run: scaleExp(Static)},
	"cluster":    {Name: "cluster", Desc: "sharded TIP service: throughput, latency tails, fairness vs shard count", Run: scaleExp(Cluster), Heavy: true},
	"overload":   {Name: "overload", Desc: "overload-safe cluster: admission control, load shedding, shard failover", Run: scaleExp(Overload), Heavy: true},
	"replay":     {Name: "replay", Desc: "trace replay: modern apps in all modes + capture→replay round trip", Run: scaleExp(Replay)},
}

// Names returns experiment ids in stable order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunByName runs one experiment by id.
func RunByName(name string, scale apps.Scale, w io.Writer) error {
	e, ok := Registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names())
	}
	return e.Run(scale, w)
}
