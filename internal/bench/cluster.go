package bench

// The cluster experiment: throughput, tail latency and fairness of the
// sharded TIP service (internal/cluster) as the shard count grows under a
// fixed synthetic client population, at two offered loads. Every
// (shards, load) pair is one independent simulation cell — its own clock,
// ring, shards and freshly generated population — so the sweep fans out over
// the worker pool and stays byte-identical at any -parallel width.

import (
	"encoding/json"
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/clients"
	"spechint/internal/cluster"
	"spechint/internal/core"
	"spechint/internal/multi"
)

// ClusterShards is the shard-count axis of the sweep; tipbench's
// -cluster-shards flag overrides it.
var ClusterShards = []int{1, 2, 4, 8, 16}

// clusterLoad is one offered-load column: a label and the per-client mean
// session inter-arrival time.
type clusterLoad struct {
	name        string
	arrivalMean int64
}

// clusterLoads are the two offered loads of the sweep: moderate keeps the
// single-shard cell comfortably under saturation; heavy pushes it past the
// knee so the shard axis has something to relieve.
var clusterLoads = []clusterLoad{
	{"moderate", 400_000_000}, // ~1.7 s mean between a client's sessions
	{"heavy", 80_000_000},     // ~0.34 s: 5x the session pressure
}

// clusterPopulation sizes the population to the benchmark scale, keyed off
// the same scale struct the other experiments use (TestScale's Agrep corpus
// is the marker for CI-sized runs, SweepScale's XDS slice count for sweeps).
func clusterPopulation(scale apps.Scale, arrivalMean int64) clients.Config {
	cfg := clients.Config{
		N: 48, Sessions: 4,
		Files: 96, FileBlocks: 96, BlockSize: 8192,
		SessionBlocks: 48, ReadBlocks: 8,
		ArrivalMean: arrivalMean, ThinkMean: 500_000,
		ZipfS: 1.2, ZipfV: 1, Seed: 42,
	}
	switch {
	case scale.Agrep.NumFiles <= 24: // test scale
		cfg.N, cfg.Sessions = 8, 2
		cfg.Files, cfg.FileBlocks = 24, 64
		cfg.SessionBlocks = 16
	case scale.XDS.NumSlices <= 12: // sweep scale
		cfg.N, cfg.Sessions = 24, 3
		cfg.Files = 64
		cfg.SessionBlocks = 32
	}
	return cfg
}

// ClusterShardDetail is one shard's accounting inside a point. The three
// stall buckets sum exactly to the point's elapsed_cycles — CI asserts it.
type ClusterShardDetail struct {
	ID             int   `json:"id"`
	HintedCycles   int64 `json:"hinted_cycles"`
	UnhintedCycles int64 `json:"unhinted_cycles"`
	IdleCycles     int64 `json:"idle_cycles"`
	ReadParts      int64 `json:"read_parts"`
	HintedParts    int64 `json:"hinted_parts"`
	HintBatches    int64 `json:"hint_batches"`
	PeakSessions   int   `json:"peak_sessions"`
}

// ClusterPoint is one (shards, load) cell of the sweep.
type ClusterPoint struct {
	Shards        int     `json:"shards"`
	Load          string  `json:"load"`
	OfferedPerSec float64 `json:"offered_sessions_per_sec"` // whole population
	ElapsedCycles int64   `json:"elapsed_cycles"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	Reads         int64   `json:"reads"`
	Throughput    float64 `json:"throughput_reads_per_sec"`

	MeanLatMs float64 `json:"mean_latency_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	P999Ms    float64 `json:"p999_ms"`

	// Jain is Jain's fairness index over per-client mean read latencies.
	Jain float64 `json:"jain_fairness"`

	HintedPartPct float64              `json:"hinted_part_pct"`
	ShardsDetail  []ClusterShardDetail `json:"shards_detail"`
}

// msPerCycle converts testbed cycles to milliseconds.
const msPerCycle = 1000 / core.CPUHz

// clusterCell runs one (shards, load) simulation.
func clusterCell(scale apps.Scale, shards int, load clusterLoad) (ClusterPoint, error) {
	ccfg := clusterPopulation(scale, load.arrivalMean)
	pop, err := clients.Generate(ccfg)
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("bench: cluster population: %w", err)
	}
	cl, err := cluster.New(cluster.DefaultConfig(shards), pop)
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("bench: cluster %d shards: %w", shards, err)
	}
	res, err := cl.Run()
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("bench: cluster %d shards (%s): %w", shards, load.name, err)
	}

	lat := Summarize(res.Latencies)
	pt := ClusterPoint{
		Shards:        shards,
		Load:          load.name,
		OfferedPerSec: float64(ccfg.N) * core.CPUHz / float64(load.arrivalMean),
		ElapsedCycles: int64(res.Elapsed),
		ElapsedSec:    res.Seconds(),
		Reads:         res.Reads,
		Throughput:    res.Throughput(),
		MeanLatMs:     lat.Mean * msPerCycle,
		P50Ms:         float64(lat.P50) * msPerCycle,
		P99Ms:         float64(lat.P99) * msPerCycle,
		P999Ms:        float64(lat.P999) * msPerCycle,
	}
	var means []float64
	for _, c := range res.Clients {
		if c.Reads > 0 {
			means = append(means, c.MeanLat)
		}
	}
	pt.Jain = multi.JainIndex(means)
	var parts, hinted int64
	for _, s := range res.Shards {
		parts += s.Stats.ReadParts
		hinted += s.Stats.HintedParts
		pt.ShardsDetail = append(pt.ShardsDetail, ClusterShardDetail{
			ID:             s.ID,
			HintedCycles:   s.Buckets.HintedService,
			UnhintedCycles: s.Buckets.UnhintedService,
			IdleCycles:     s.Buckets.Idle,
			ReadParts:      s.Stats.ReadParts,
			HintedParts:    s.Stats.HintedParts,
			HintBatches:    s.Stats.Batches,
			PeakSessions:   s.Stats.PeakSessions,
		})
	}
	if parts > 0 {
		pt.HintedPartPct = 100 * float64(hinted) / float64(parts)
	}
	return pt, nil
}

// clusterSweep runs every (shards, load) cell as a flat fan-out, load-major
// so the table groups by load.
func clusterSweep(scale apps.Scale, shardCounts []int) ([]ClusterPoint, error) {
	if len(shardCounts) == 0 {
		return nil, fmt.Errorf("bench: cluster sweep needs at least one shard count")
	}
	n := len(clusterLoads) * len(shardCounts)
	return parMap(n, func(i int) (ClusterPoint, error) {
		load := clusterLoads[i/len(shardCounts)]
		return clusterCell(scale, shardCounts[i%len(shardCounts)], load)
	})
}

// Cluster is the sharded-service experiment: the synthetic population
// against 1..16 shards at two offered loads, reporting throughput, latency
// tails and Jain fairness across clients.
func Cluster(scale apps.Scale) (string, error) {
	points, err := clusterSweep(scale, ClusterShards)
	if err != nil {
		return "", err
	}
	t := newTable("Sharded TIP service: synthetic population vs shard count (2 disks + 4 MB cache per shard)")
	t.row("load", "shards", "offered (sess/s)", "reads/s", "mean (ms)", "p50 (ms)", "p99 (ms)", "p999 (ms)", "hinted", "Jain")
	for _, pt := range points {
		t.row(pt.Load, fmt.Sprintf("%d", pt.Shards),
			fmt.Sprintf("%.2f", pt.OfferedPerSec),
			fmt.Sprintf("%.1f", pt.Throughput),
			fmt.Sprintf("%.2f", pt.MeanLatMs),
			fmt.Sprintf("%.2f", pt.P50Ms),
			fmt.Sprintf("%.2f", pt.P99Ms),
			fmt.Sprintf("%.2f", pt.P999Ms),
			pct(pt.HintedPartPct),
			fmt.Sprintf("%.3f", pt.Jain))
	}
	return t.String(), nil
}

// ClusterJSON runs the sweep and returns it machine-readable; the CI smoke
// job jq-validates the shape and the bucket-sum invariant.
func ClusterJSON(scale apps.Scale, shardCounts []int) ([]byte, error) {
	points, err := clusterSweep(scale, shardCounts)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(struct {
		Experiment string         `json:"experiment"`
		Shards     []int          `json:"shard_counts"`
		Points     []ClusterPoint `json:"points"`
	}{"cluster", shardCounts, points}, "", "  ")
}
