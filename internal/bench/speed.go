package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"spechint/internal/apps"
	"spechint/internal/sim"
	"spechint/internal/vm"
)

// The speed experiment tracks the raw throughput of the simulator's two
// hottest loops — the event queue and the VM interpreter — plus the
// end-to-end benchmark sweep they gate (ROADMAP item 3).
//
// It has two faces:
//
//   - Speed (the registry entry, `tipbench -exp speed`) is fully
//     deterministic: it drives the fast paths — free-listed scheduling,
//     RunTick batching, pre-decoded dispatch — over fixed op counts and
//     prints only counts and virtual-clock results, so the serial-vs-
//     parallel differential test can byte-compare it like any experiment.
//   - SpeedJSON (`tipbench -speed`) measures wall-clock ns/op for the same
//     shapes plus the end-to-end suite prewarm, for BENCH_speed.json and
//     the CI smoke. Wall numbers are machine-dependent by nature and are
//     never part of golden output.

// SpeedCell is one wall-clock microbenchmark result.
type SpeedCell struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	PerSec      float64 `json:"per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// SpeedEnd is the end-to-end arm: wall time of the full three-app,
// three-mode suite prewarm (the work behind fig3/table4/table5).
type SpeedEnd struct {
	Scale       string  `json:"scale"`
	Runs        int     `json:"runs"`
	Parallelism int     `json:"parallelism"`
	WallMS      float64 `json:"wall_ms"`
}

// SpeedReport is the tipbench -speed export.
type SpeedReport struct {
	Schema    string      `json:"schema"`
	EventLoop []SpeedCell `json:"event_loop"`
	VM        []SpeedCell `json:"vm"`
	EndToEnd  SpeedEnd    `json:"end_to_end"`
}

// SpeedSchema identifies the export format.
const SpeedSchema = "spechint-bench-speed/v1"

// speedStandingHeap is the standing queue depth for the steady-state shape:
// the regime a busy disk array and thread scheduler keep the queue in.
const speedStandingHeap = 512

// speedBurst is the events-per-tick burst for the batched shape: the regime
// a loaded cluster shard keeps the queue in (many completions per instant).
const speedBurst = 64

// speedVMProg is the interpreter microbench program: a tight
// ALU/store/load/branch loop, the mix the benchmark applications keep the
// VM in. The trailing JMP spins so budget-bound slices always fill.
func speedVMProg() *vm.Program {
	return &vm.Program{
		Text: []vm.Instr{
			{Op: vm.MOVI, Rd: 10, Imm: 1 << 62},
			{Op: vm.MOVI, Rd: 11, Imm: 512},
			// loop:
			{Op: vm.ADDI, Rd: 12, Rs1: 12, Imm: 3},
			{Op: vm.MUL, Rd: 13, Rs1: 12, Rs2: 12},
			{Op: vm.STW, Rs1: 11, Rs2: 13, Imm: 0},
			{Op: vm.LDW, Rd: 14, Rs1: 11, Imm: 0},
			{Op: vm.XOR, Rd: 12, Rs1: 12, Rs2: 14},
			{Op: vm.ADDI, Rd: 10, Rs1: 10, Imm: -1},
			{Op: vm.BNE, Rs1: 10, Rs2: vm.R0, Imm: 2},
			{Op: vm.JMP, Imm: 9},
		},
		Data:     make([]byte, 1024),
		DataSize: 1024,
	}
}

// speedOS refuses syscalls; the microbench program makes none.
type speedOS struct{}

func (speedOS) Syscall(*vm.Machine, *vm.Thread, int64) vm.SysControl { return vm.SysFault }

func speedMachine() (*vm.Machine, *vm.Thread, error) {
	cfg := vm.DefaultConfig()
	m, err := vm.NewMachine(speedVMProg(), speedOS{}, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, m.NewThread("speed", vm.Normal), nil
}

// Speed is the deterministic registry experiment: it exercises every fast
// path with fixed op counts and reports only counts and virtual-time
// results (no wall clock, no allocation averages), so its output is
// byte-identical at any parallelism on any machine.
func Speed(apps.Scale) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "simulator speed self-check (deterministic; wall-clock numbers: tipbench -speed)\n\n")

	// Steady state: standing heap, one schedule + one pop per cycle.
	{
		q := sim.NewQueue()
		ran := 0
		fn := func() { ran++ }
		for i := 0; i < speedStandingHeap; i++ {
			q.Schedule(sim.Time(i*13%509), fn)
		}
		const ops = 200_000
		for i := 0; i < ops; i++ {
			q.Schedule(q.Now()+sim.Time(i%61+1), fn)
			q.RunNext()
		}
		drained := q.Drain()
		fmt.Fprintf(&b, "event-loop steady-state: ops=%d standing=%d ran=%d drained=%d clock=%d len=%d\n",
			ops, speedStandingHeap, ran, drained, q.Now(), q.Len())
	}

	// Burst ticks: 64 simultaneous events per instant, drained by RunTick.
	{
		q := sim.NewQueue()
		ran := 0
		fn := func() { ran++ }
		const ticks = 2_000
		for t := 0; t < ticks; t++ {
			at := q.Now() + 10
			for j := 0; j < speedBurst; j++ {
				q.Schedule(at, fn)
			}
			tickCalls := 0
			for q.RunTick() {
				tickCalls++
			}
			if tickCalls != 1 {
				return "", fmt.Errorf("bench: burst of %d events took %d RunTick calls, want 1", speedBurst, tickCalls)
			}
		}
		fmt.Fprintf(&b, "event-loop burst ticks:  ticks=%d burst=%d ran=%d clock=%d\n",
			ticks, speedBurst, ran, q.Now())
	}

	// Cancel/free-list churn: schedule, cancel half through stale-safe
	// handles, drain the rest.
	{
		q := sim.NewQueue()
		ran := 0
		fn := func() { ran++ }
		const ops = 50_000
		handles := make([]sim.Handle, 0, ops)
		for i := 0; i < ops; i++ {
			handles = append(handles, q.Schedule(sim.Time(i*7%4093), fn))
		}
		for i := 0; i < ops; i += 2 {
			q.Cancel(handles[i])
		}
		drained := q.Drain()
		for _, h := range handles { // every handle is stale now; all inert
			q.Cancel(h)
		}
		fmt.Fprintf(&b, "event-loop cancel churn: ops=%d ran=%d drained=%d clock=%d\n",
			ops, ran, drained, q.Now())
	}

	// VM: pre-decoded dispatch over the ALU/memory loop.
	{
		m, th, err := speedMachine()
		if err != nil {
			return "", err
		}
		const budget = 1_000_000
		used, stop := m.Run(th, budget)
		if stop != vm.StopBudget {
			return "", fmt.Errorf("bench: speed VM stopped %v (err %v)", stop, th.Err)
		}
		fmt.Fprintf(&b, "vm dispatch:             cycles=%d instrs=%d loads=%d stores=%d r12=%d\n",
			used, th.Instrs, th.Loads, th.Stores, th.Regs[12])
	}
	return b.String(), nil
}

// timeCell runs f (which performs ops operations) once for wall time and
// derives per-op figures; allocs is the separately measured allocation
// average per op.
func timeCell(name string, ops int64, allocs float64, f func()) SpeedCell {
	start := time.Now()
	f()
	ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
	perSec := 0.0
	if ns > 0 {
		perSec = 1e9 / ns
	}
	return SpeedCell{Name: name, Ops: ops, NsPerOp: ns, PerSec: perSec, AllocsPerOp: allocs}
}

// SpeedJSON measures wall-clock throughput of the event loop, the VM, and
// the end-to-end suite prewarm at the given scale (scaleName labels it in
// the export). Numbers vary run to run and machine to machine; the
// committed trajectory lives in bench/results/BENCH_speed.json.
func SpeedJSON(scale apps.Scale, scaleName string) (*SpeedReport, error) {
	rep := &SpeedReport{Schema: SpeedSchema}

	// Steady-state: one schedule + one pop over a standing heap.
	{
		q := sim.NewQueue()
		fn := func() {}
		for i := 0; i < speedStandingHeap; i++ {
			q.Schedule(sim.Time(i*13%509), fn)
		}
		i := 0
		allocs := testing.AllocsPerRun(4096, func() {
			q.Schedule(q.Now()+sim.Time(i%61+1), fn)
			q.RunNext()
			i++
		})
		const ops = 2_000_000
		rep.EventLoop = append(rep.EventLoop, timeCell("steady512", ops, allocs, func() {
			for i := 0; i < ops; i++ {
				q.Schedule(q.Now()+sim.Time(i%61+1), fn)
				q.RunNext()
			}
		}))
	}

	// Burst ticks: 64 events per instant, drained by RunTick.
	{
		q := sim.NewQueue()
		fn := func() {}
		burstTick := func() {
			at := q.Now() + 10
			for j := 0; j < speedBurst; j++ {
				q.Schedule(at, fn)
			}
			for q.RunTick() {
			}
		}
		burstTick() // warm arena + free list
		allocsPerTick := testing.AllocsPerRun(512, burstTick)
		const ticks = 30_000
		cell := timeCell("burst64", ticks*speedBurst, allocsPerTick/speedBurst, func() {
			for t := 0; t < ticks; t++ {
				burstTick()
			}
		})
		rep.EventLoop = append(rep.EventLoop, cell)
	}

	// VM: pre-decoded dispatch, budget-bound slices.
	{
		m, th, err := speedMachine()
		if err != nil {
			return nil, err
		}
		slice := func() {
			if _, stop := m.Run(th, 4096); stop != vm.StopBudget {
				panic(fmt.Sprintf("bench: speed VM stopped %v (err %v)", stop, th.Err))
			}
		}
		allocsPerSlice := testing.AllocsPerRun(256, slice)
		const instrs = 8_000_000
		cell := timeCell("vmstep", instrs, allocsPerSlice/4096, func() {
			for i := 0; i < instrs/4096; i++ {
				slice()
			}
		})
		rep.VM = append(rep.VM, cell)
	}

	// End to end: the full three-app, three-mode suite prewarm.
	{
		start := time.Now()
		s := NewSuite(scale)
		if err := s.Prewarm(); err != nil {
			return nil, err
		}
		rep.EndToEnd = SpeedEnd{
			Scale:       scaleName,
			Runs:        3 * len(Apps),
			Parallelism: Parallelism,
			WallMS:      float64(time.Since(start).Microseconds()) / 1000,
		}
	}
	return rep, nil
}

// SpeedJSONBytes is SpeedJSON marshalled for the CLI.
func SpeedJSONBytes(scale apps.Scale, scaleName string) ([]byte, error) {
	rep, err := SpeedJSON(scale, scaleName)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(rep, "", "  ")
}
