package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func multiJSONFor(t *testing.T, points []MultiPoint) []byte {
	t.Helper()
	out, err := json.Marshal(struct {
		Experiment string       `json:"experiment"`
		MaxN       int          `json:"max_n"`
		Points     []MultiPoint `json:"points"`
	}{"multi", len(points), points})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCheckMultiIdentical(t *testing.T) {
	doc := multiJSONFor(t, []MultiPoint{
		{N: 1, OrigSec: 3.68, SpecSec: 0.99, ImprovementPct: 73.1},
		{N: 2, OrigSec: 140.6, SpecSec: 37.4, ImprovementPct: 73.4},
	})
	if err := CheckMulti(doc, doc, 10); err != nil {
		t.Fatalf("identical sweeps must pass: %v", err)
	}
}

func TestCheckMultiWithinTolerance(t *testing.T) {
	base := multiJSONFor(t, []MultiPoint{{N: 1, OrigSec: 100, SpecSec: 50, ImprovementPct: 50}})
	fresh := multiJSONFor(t, []MultiPoint{{N: 1, OrigSec: 105, SpecSec: 47, ImprovementPct: 55.2}})
	if err := CheckMulti(fresh, base, 10); err != nil {
		t.Fatalf("5%% drift must pass a 10%% tolerance: %v", err)
	}
	if err := CheckMulti(fresh, base, 4); err == nil {
		t.Fatal("6% spec drift must fail a 4% tolerance")
	}
}

func TestCheckMultiMakespanRegression(t *testing.T) {
	base := multiJSONFor(t, []MultiPoint{{N: 1, OrigSec: 100, SpecSec: 50, ImprovementPct: 50}})
	fresh := multiJSONFor(t, []MultiPoint{{N: 1, OrigSec: 100, SpecSec: 80, ImprovementPct: 20}})
	err := CheckMulti(fresh, base, 10)
	if err == nil {
		t.Fatal("60% speculating-makespan drift must fail")
	}
	if !strings.Contains(err.Error(), "speculating makespan") {
		t.Fatalf("error should name the drifted series, got: %v", err)
	}
}

func TestCheckMultiWhoWinsFlip(t *testing.T) {
	// A flipped winner must fail even when the makespans themselves sit
	// inside a (generous) tolerance band.
	base := multiJSONFor(t, []MultiPoint{{N: 2, OrigSec: 100, SpecSec: 95, ImprovementPct: 5}})
	fresh := multiJSONFor(t, []MultiPoint{{N: 2, OrigSec: 95, SpecSec: 100, ImprovementPct: -5.3}})
	err := CheckMulti(fresh, base, 20)
	if err == nil {
		t.Fatal("who-wins flip must fail regardless of tolerance")
	}
	if !strings.Contains(err.Error(), "Figure 3 shape regression") {
		t.Fatalf("error should call out the shape regression, got: %v", err)
	}
}

func TestCheckMultiNearTieMayFlip(t *testing.T) {
	// Inside the dead band (baseline improvement <= 2%) a sign flip is
	// noise, not a regression.
	base := multiJSONFor(t, []MultiPoint{{N: 1, OrigSec: 100, SpecSec: 99, ImprovementPct: 1}})
	fresh := multiJSONFor(t, []MultiPoint{{N: 1, OrigSec: 99, SpecSec: 100, ImprovementPct: -1}})
	if err := CheckMulti(fresh, base, 10); err != nil {
		t.Fatalf("near-tie flip should pass: %v", err)
	}
}

func TestCheckMultiShapeMismatch(t *testing.T) {
	base := multiJSONFor(t, []MultiPoint{{N: 1}, {N: 2}})
	fresh := multiJSONFor(t, []MultiPoint{{N: 1}})
	if err := CheckMulti(fresh, base, 10); err == nil {
		t.Fatal("point-count mismatch must fail")
	}
}

func TestCheckMultiReportsEveryRegression(t *testing.T) {
	base := multiJSONFor(t, []MultiPoint{
		{N: 1, OrigSec: 100, SpecSec: 50, ImprovementPct: 50},
		{N: 2, OrigSec: 200, SpecSec: 100, ImprovementPct: 50},
	})
	fresh := multiJSONFor(t, []MultiPoint{
		{N: 1, OrigSec: 150, SpecSec: 50, ImprovementPct: 66.7},
		{N: 2, OrigSec: 200, SpecSec: 170, ImprovementPct: 15},
	})
	err := CheckMulti(fresh, base, 10)
	if err == nil {
		t.Fatal("expected both points to regress")
	}
	if !strings.Contains(err.Error(), "2 regressions") {
		t.Fatalf("want both regressions reported, got: %v", err)
	}
}
