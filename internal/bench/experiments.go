package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/spechint"
)

// table collects rows and renders an aligned text table.
type table struct {
	b strings.Builder
	w *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.b.WriteString(title)
	t.b.WriteString("\n")
	t.w = tabwriter.NewWriter(&t.b, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) String() string {
	t.w.Flush()
	return t.b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
func secs(s *core.RunStats) string {
	return fmt.Sprintf("%.2f", s.Seconds())
}

// Table1 reproduces the paper's Table 1 for our suite: the reduction in
// execution time from manually-inserted hints (the motivating result).
// The paper's other four applications (Davidson, Postgres, Sphinx) were
// closed to us; the three TIP-suite apps are reproduced.
func Table1(s *Suite) (string, error) {
	t := newTable("Table 1: execution-time reduction from manual hints (4 disks)")
	t.row("Benchmark", "Improvement", "Description")
	desc := map[apps.App]string{
		apps.Agrep:      "text search",
		apps.Gnuld:      "object code linker",
		apps.XDataSlice: "scientific visualization",
	}
	for _, app := range Apps {
		tr, err := s.Triple(app)
		if err != nil {
			return "", err
		}
		t.row(app.String(), pct(Improvement(tr.Orig, tr.Manual)), desc[app])
	}
	// The paper's Table 1 also lists Patterson's Postgres join at two
	// selectivities; reproduce those rows too.
	sels := []int{20, 80}
	triples, err := runTripleGrid(len(sels), func(i int) (apps.App, apps.Scale, Mutator) {
		scale := s.Scale
		scale.Postgres.Selectivity = sels[i]
		return apps.Postgres, scale, s.Mutate
	})
	if err != nil {
		return "", err
	}
	for i, sel := range sels {
		t.row(fmt.Sprintf("Postgres, %d%%", sel), pct(Improvement(triples[i].Orig, triples[i].Manual)),
			"database join, % tuples resulting")
	}
	return t.String(), nil
}

// JoinSelectivity sweeps the Postgres join's selectivity, extending the
// paper's two Table 1 points into a curve for all three builds.
func JoinSelectivity(scale apps.Scale) (string, error) {
	t := newTable("Postgres join: % improvement vs selectivity")
	sels := []int{10, 20, 40, 80}
	header := []string{"Series"}
	for _, sel := range sels {
		header = append(header, fmt.Sprintf("%d%%", sel))
	}
	t.row(header...)
	triples, err := runTripleGrid(len(sels), func(i int) (apps.App, apps.Scale, Mutator) {
		sc := scale
		sc.Postgres.Selectivity = sels[i]
		return apps.Postgres, sc, nil
	})
	if err != nil {
		return "", err
	}
	spec := []string{"speculating"}
	man := []string{"manual"}
	for _, tr := range triples {
		spec = append(spec, pct(Improvement(tr.Orig, tr.Spec)))
		man = append(man, pct(Improvement(tr.Orig, tr.Manual)))
	}
	t.row(spec...)
	t.row(man...)
	return t.String(), nil
}

// Table3 reproduces the transformed-application statistics: modification
// time and executable size growth.
func Table3(scale apps.Scale) (string, error) {
	t := newTable("Table 3: transformed application statistics")
	t.row("Benchmark", "Modification time", "Executable size", "% increase",
		"COW checks", "static jumps", "handler jumps", "jump tables")
	bundles, err := parMap(len(Apps), func(i int) (*apps.Bundle, error) {
		return apps.Build(Apps[i], scale)
	})
	if err != nil {
		return "", err
	}
	for i, app := range Apps {
		ts := bundles[i].Transform
		t.row(app.String(),
			ts.Elapsed.String(),
			fmt.Sprintf("%d B", ts.TotalBytes),
			pct(ts.SizeIncreasePct()),
			fmt.Sprint(ts.ChecksAdded),
			fmt.Sprint(ts.StaticJumps),
			fmt.Sprint(ts.DynamicJumps),
			fmt.Sprint(ts.TablesStatic),
		)
	}
	return t.String(), nil
}

// Figure3 reproduces the headline performance chart: elapsed time of the
// original, speculating and manually-hinted builds on four disks.
func Figure3(s *Suite) (string, error) {
	t := newTable("Figure 3: elapsed time (seconds), 4 disks, 12 MB cache")
	t.row("Benchmark", "Original", "Speculating", "Manual", "Spec improv.", "Manual improv.")
	for _, app := range Apps {
		tr, err := s.Triple(app)
		if err != nil {
			return "", err
		}
		t.row(app.String(), secs(tr.Orig), secs(tr.Spec), secs(tr.Manual),
			pct(Improvement(tr.Orig, tr.Spec)), pct(Improvement(tr.Orig, tr.Manual)))
	}
	return t.String(), nil
}

// Figure4 reproduces the worst-case overhead measurement: the speculating
// binary with TIP configured to ignore hints, versus the original.
func Figure4(s *Suite) (string, error) {
	t := newTable("Figure 4: runtime overhead with TIP ignoring hints")
	t.row("Benchmark", "Original (s)", "Speculating, hints ignored (s)", "Overhead")
	ignored, err := parMap(len(Apps), func(i int) (*core.RunStats, error) {
		ig, _, err := Run(Apps[i], core.ModeSpeculating, s.Scale, func(c *core.Config) {
			c.TIP.IgnoreHints = true
		})
		return ig, err
	})
	if err != nil {
		return "", err
	}
	for i, app := range Apps {
		tr, err := s.Triple(app)
		if err != nil {
			return "", err
		}
		ig := ignored[i]
		over := 100 * (float64(ig.Elapsed)/float64(tr.Orig.Elapsed) - 1)
		t.row(app.String(), secs(tr.Orig), secs(ig), pct(over))
	}
	return t.String(), nil
}

// Table4 reproduces the hinting statistics.
func Table4(s *Suite) (string, error) {
	t := newTable("Table 4: hinting statistics")
	t.row("Benchmark", "", "Read calls", "Read blocks", "Read bytes", "Write calls", "Write bytes")
	for _, app := range Apps {
		tr, err := s.Triple(app)
		if err != nil {
			return "", err
		}
		o, sp, mn := tr.Orig.Tip, tr.Spec.Tip, tr.Manual.Tip
		t.row(app.String(), "total",
			fmt.Sprint(o.ReadCalls), fmt.Sprint(o.ReadBlocks), fmt.Sprint(o.ReadBytes),
			fmt.Sprint(tr.Orig.WriteCalls), fmt.Sprint(tr.Orig.WriteBytes))
		t.row("", "% hinted",
			pct(100*float64(sp.HintedReadCalls)/f(sp.ReadCalls)),
			pct(100*float64(sp.HintedReadBlocks)/f(sp.ReadBlocks)),
			pct(100*float64(sp.HintedReadBytes)/f(sp.ReadBytes)), "-", "-")
		t.row("", "inaccurately hinted",
			fmt.Sprint(sp.InaccurateCalls()),
			fmt.Sprint(sp.InaccurateBlocks()),
			fmt.Sprint(sp.InaccurateBytes()), "-", "-")
		t.row("", "% manually hinted",
			pct(100*float64(mn.HintedReadCalls)/f(mn.ReadCalls)),
			pct(100*float64(mn.HintedReadBlocks)/f(mn.ReadBlocks)),
			pct(100*float64(mn.HintedReadBytes)/f(mn.ReadBytes)), "-", "-")
	}
	return t.String(), nil
}

func f(v int64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}

// Table5 reproduces the prefetching and caching statistics.
func Table5(s *Suite) (string, error) {
	t := newTable("Table 5: prefetching and caching statistics")
	t.row("Benchmark", "", "Cache block reads", "Prefetched", "Fully", "%", "Partially", "%", "Unused", "%", "Reuses")
	for _, app := range Apps {
		tr, err := s.Triple(app)
		if err != nil {
			return "", err
		}
		for _, v := range []struct {
			name string
			st   *core.RunStats
		}{{"Original", tr.Orig}, {"SpecHint", tr.Spec}, {"Manual", tr.Manual}} {
			c := v.st.Cache
			pref := v.st.Tip.PrefetchedBlocks()
			unused := c.UnusedHint + c.UnusedRA
			t.row(app.String(), v.name,
				fmt.Sprint(c.Hits+c.Misses),
				fmt.Sprint(pref),
				fmt.Sprint(c.FullyPref), pct(100*float64(c.FullyPref)/f(pref)),
				fmt.Sprint(c.PartialWaits), pct(100*float64(c.PartialWaits)/f(pref)),
				fmt.Sprint(unused), pct(100*float64(unused)/f(pref)),
				fmt.Sprint(c.Reuses))
		}
	}
	return t.String(), nil
}

// Table6 reproduces the performance side-effects of speculation.
func Table6(s *Suite) (string, error) {
	t := newTable("Table 6: performance side-effects of speculative execution")
	t.row("Benchmark", "", "Footprint", "Reclaims", "Faults", "Sigs", "Restarts")
	for _, app := range Apps {
		tr, err := s.Triple(app)
		if err != nil {
			return "", err
		}
		for _, v := range []struct {
			name string
			st   *core.RunStats
		}{{"Original", tr.Orig}, {"SpecHint", tr.Spec}, {"Manual", tr.Manual}} {
			t.row(app.String(), v.name,
				fmt.Sprintf("%d KB", v.st.FootprintBytes/1024),
				fmt.Sprint(v.st.Pages.Reclaims),
				fmt.Sprint(v.st.Pages.Faults),
				fmt.Sprint(v.st.SpecSignals),
				fmt.Sprint(v.st.Restarts))
		}
	}
	return t.String(), nil
}

// Table7 reproduces the file-cache-size sensitivity study.
func Table7(scale apps.Scale) (string, error) {
	t := newTable("Table 7: elapsed time (s) as the file cache size is varied")
	sizes := []int{6, 12, 64}
	t.row("Benchmark", "", "6 MB", "12 MB", "64 MB")
	triples, err := runTripleGrid(len(Apps)*len(sizes), func(i int) (apps.App, apps.Scale, Mutator) {
		mb := sizes[i%len(sizes)]
		return Apps[i/len(sizes)], scale, func(c *core.Config) {
			c.TIP.CacheBlocks = mb << 20 / c.Disk.BlockSize
		}
	})
	if err != nil {
		return "", err
	}
	for a, app := range Apps {
		rows := map[core.Mode][]string{}
		for i := range sizes {
			tr := triples[a*len(sizes)+i]
			rows[core.ModeNoHint] = append(rows[core.ModeNoHint], secs(tr.Orig))
			rows[core.ModeSpeculating] = append(rows[core.ModeSpeculating],
				fmt.Sprintf("%s (%s)", secs(tr.Spec), pct(Improvement(tr.Orig, tr.Spec))))
			rows[core.ModeManual] = append(rows[core.ModeManual],
				fmt.Sprintf("%s (%s)", secs(tr.Manual), pct(Improvement(tr.Orig, tr.Manual))))
		}
		t.row(append([]string{app.String(), "Original"}, rows[core.ModeNoHint]...)...)
		t.row(append([]string{"", "SpecHint"}, rows[core.ModeSpeculating]...)...)
		t.row(append([]string{"", "Manual"}, rows[core.ModeManual]...)...)
	}
	return t.String(), nil
}

// Table8 reproduces the original applications' insensitivity to the number
// of disks.
func Table8(scale apps.Scale) (string, error) {
	t := newTable("Table 8: elapsed time (s) of original applications vs number of disks")
	disks := []int{1, 2, 4, 10}
	header := []string{"Benchmark"}
	for _, d := range disks {
		header = append(header, fmt.Sprint(d))
	}
	t.row(header...)
	stats, err := parMap(len(Apps)*len(disks), func(i int) (*core.RunStats, error) {
		d := disks[i%len(disks)]
		st, _, err := Run(Apps[i/len(disks)], core.ModeNoHint, scale, func(c *core.Config) {
			c.Disk = core.TestbedDisk(d)
		})
		return st, err
	})
	if err != nil {
		return "", err
	}
	for a, app := range Apps {
		cells := []string{app.String()}
		for i := range disks {
			cells = append(cells, secs(stats[a*len(disks)+i]))
		}
		t.row(cells...)
	}
	return t.String(), nil
}

// Figure5Disks is the disk-count sweep used by Figure5.
var Figure5Disks = []int{1, 2, 3, 4, 6, 8, 10}

// Figure5 reproduces the performance-improvement-vs-parallelism curves.
func Figure5(scale apps.Scale) (string, error) {
	t := newTable("Figure 5: % improvement vs number of disks")
	header := []string{"Series"}
	for _, d := range Figure5Disks {
		header = append(header, fmt.Sprintf("%dd", d))
	}
	t.row(header...)
	nd := len(Figure5Disks)
	triples, err := runTripleGrid(len(Apps)*nd, func(i int) (apps.App, apps.Scale, Mutator) {
		d := Figure5Disks[i%nd]
		return Apps[i/nd], scale, func(c *core.Config) {
			c.Disk = core.TestbedDisk(d)
		}
	})
	if err != nil {
		return "", err
	}
	for a, app := range Apps {
		spec := []string{app.String() + " speculating"}
		man := []string{app.String() + " manual"}
		for i := range Figure5Disks {
			tr := triples[a*nd+i]
			spec = append(spec, pct(Improvement(tr.Orig, tr.Spec)))
			man = append(man, pct(Improvement(tr.Orig, tr.Manual)))
		}
		t.row(spec...)
		t.row(man...)
	}
	return t.String(), nil
}

// Figure6Ratios is the processor/disk speed-ratio sweep used by Figure6.
var Figure6Ratios = []int{1, 2, 3, 5, 7, 9}

// Figure6 reproduces the widening processor/disk gap simulation: completion
// notification is delayed by the ratio (and at most one prefetch is kept
// outstanding per disk, as the paper configured), then measured elapsed
// times are scaled back down by the ratio.
func Figure6(scale apps.Scale) (string, error) {
	t := newTable("Figure 6: % improvement vs processor/disk speed ratio (4 disks)")
	header := []string{"Series"}
	for _, r := range Figure6Ratios {
		header = append(header, fmt.Sprintf("x%d", r))
	}
	t.row(header...)
	nr := len(Figure6Ratios)
	triples, err := runTripleGrid(len(Apps)*nr, func(i int) (apps.App, apps.Scale, Mutator) {
		r := Figure6Ratios[i%nr]
		return Apps[i/nr], scale, func(c *core.Config) {
			c.Disk.DelayFactor = r
			c.Disk.MaxPrefetchPerDisk = 1
			c.MaxCycles *= int64(r)
		}
	})
	if err != nil {
		return "", err
	}
	for a, app := range Apps {
		spec := []string{app.String() + " speculating"}
		man := []string{app.String() + " manual"}
		for i := range Figure6Ratios {
			tr := triples[a*nr+i]
			// Scale measurements by 1/ratio, as the paper did. Improvement
			// is a ratio of elapsed times, so the scaling cancels; it is
			// the delayed *notification* that changes behaviour.
			spec = append(spec, pct(Improvement(tr.Orig, tr.Spec)))
			man = append(man, pct(Improvement(tr.Orig, tr.Manual)))
		}
		t.row(spec...)
		t.row(man...)
	}
	return t.String(), nil
}

// RegionSizes is the §3.2.1 COW-region-size ablation sweep.
var RegionSizes = []int{128, 512, 1024, 4096, 8192}

// RegionSize reproduces the §3.2.1 observation that the copy-on-write
// region size generally makes little difference.
func RegionSize(scale apps.Scale) (string, error) {
	t := newTable("§3.2.1 ablation: speculating elapsed time (s) vs COW region size")
	header := []string{"Benchmark"}
	for _, rs := range RegionSizes {
		header = append(header, fmt.Sprintf("%dB", rs))
	}
	t.row(header...)
	stats, err := parMap(len(Apps)*len(RegionSizes), func(i int) (*core.RunStats, error) {
		rs := RegionSizes[i%len(RegionSizes)]
		st, _, err := Run(Apps[i/len(RegionSizes)], core.ModeSpeculating, scale, func(c *core.Config) {
			c.Machine.COWRegion = rs
		})
		return st, err
	})
	if err != nil {
		return "", err
	}
	for a, app := range Apps {
		cells := []string{app.String()}
		for i := range RegionSizes {
			cells = append(cells, secs(stats[a*len(RegionSizes)+i]))
		}
		t.row(cells...)
	}
	return t.String(), nil
}

// Throttle reproduces the §5 result: the ad-hoc cancel throttle eliminates
// Gnuld's speculation penalty when the I/O system offers no parallelism.
func Throttle(scale apps.Scale) (string, error) {
	t := newTable("§5: Gnuld on one disk, with and without the cancel throttle")
	t.row("Configuration", "Elapsed (s)", "Restarts", "vs original")
	orig, _, err := Run(apps.Gnuld, core.ModeNoHint, scale, func(c *core.Config) {
		c.Disk = core.TestbedDisk(1)
	})
	if err != nil {
		return "", err
	}
	t.row("original", secs(orig), "0", "-")
	off, _, err := Run(apps.Gnuld, core.ModeSpeculating, scale, func(c *core.Config) {
		c.Disk = core.TestbedDisk(1)
	})
	if err != nil {
		return "", err
	}
	t.row("speculating, no throttle", secs(off), fmt.Sprint(off.Restarts), pct(Improvement(orig, off)))
	on, _, err := Run(apps.Gnuld, core.ModeSpeculating, scale, func(c *core.Config) {
		c.Disk = core.TestbedDisk(1)
		c.CancelThrottle = 2
		c.CancelThrottleCycles = 500_000_000
	})
	if err != nil {
		return "", err
	}
	t.row("speculating, throttle", secs(on), fmt.Sprint(on.Restarts), pct(Improvement(orig, on)))
	return t.String(), nil
}

// TransformOptions returns spechint.Options used by every experiment (the
// defaults); exposed so ablation tooling shares them.
func TransformOptions() spechint.Options { return spechint.DefaultOptions() }

// MultiProcessor explores the paper's §5 multiprocessor scenario: the
// speculating thread runs on a second processor, in parallel with normal
// execution instead of only during I/O stalls. Data-dependence-free
// applications whose hint generation was dilation-limited (Agrep on large
// arrays) benefit most.
func MultiProcessor(scale apps.Scale) (string, error) {
	t := newTable("§5 extension: speculation on a second processor (% improvement over original)")
	t.row("Benchmark", "disks", "1 CPU spec", "2 CPU spec", "manual")
	disks := []int{4, 10}
	mut := func(d int, mp bool) Mutator {
		return func(c *core.Config) {
			c.Disk = core.TestbedDisk(d)
			c.DualProcessor = mp
		}
	}
	// Four runs per (app, disks) point: the triple plus the dual-processor
	// speculating run, all as one flat fan-out.
	n := len(Apps) * len(disks)
	triples, err := runTripleGrid(n, func(i int) (apps.App, apps.Scale, Mutator) {
		return Apps[i/len(disks)], scale, mut(disks[i%len(disks)], false)
	})
	if err != nil {
		return "", err
	}
	mps, err := parMap(n, func(i int) (*core.RunStats, error) {
		mp, _, err := Run(Apps[i/len(disks)], core.ModeSpeculating, scale, mut(disks[i%len(disks)], true))
		return mp, err
	})
	if err != nil {
		return "", err
	}
	for a, app := range Apps {
		for i, d := range disks {
			tr, mp := triples[a*len(disks)+i], mps[a*len(disks)+i]
			t.row(app.String(), fmt.Sprint(d),
				pct(Improvement(tr.Orig, tr.Spec)),
				pct(Improvement(tr.Orig, mp)),
				pct(Improvement(tr.Orig, tr.Manual)))
		}
	}
	return t.String(), nil
}

// AdaptiveLimiter compares the §5 erroneous-hint limiters on the hostile
// configuration (Gnuld, one disk): no limiter, the fixed cancel throttle,
// and the accuracy-gated adaptive limiter.
func AdaptiveLimiter(scale apps.Scale) (string, error) {
	t := newTable("§5 extension: erroneous-hint limiters (Gnuld, 1 disk)")
	t.row("Configuration", "Elapsed (s)", "Restarts", "vs original")
	oneDisk := func(c *core.Config) { c.Disk = core.TestbedDisk(1) }
	orig, _, err := Run(apps.Gnuld, core.ModeNoHint, scale, oneDisk)
	if err != nil {
		return "", err
	}
	t.row("original", secs(orig), "0", "-")
	cases := []struct {
		name string
		mut  Mutator
	}{
		{"no limiter", oneDisk},
		{"fixed cancel throttle", func(c *core.Config) {
			oneDisk(c)
			c.CancelThrottle = 2
			c.CancelThrottleCycles = 500_000_000
		}},
		{"adaptive (accuracy-gated)", func(c *core.Config) {
			oneDisk(c)
			c.AdaptiveThrottle = true
		}},
	}
	for _, cse := range cases {
		st, _, err := Run(apps.Gnuld, core.ModeSpeculating, scale, cse.mut)
		if err != nil {
			return "", err
		}
		t.row(cse.name, secs(st), fmt.Sprint(st.Restarts), pct(Improvement(orig, st)))
	}
	return t.String(), nil
}
