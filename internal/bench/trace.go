package bench

import (
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/multi"
	"spechint/internal/obs"
)

// TraceRun executes one app in one mode with the cross-layer trace enabled
// and returns the trace alongside the run statistics. It is the backend of
// tipbench -trace-json for solo runs.
func TraceRun(app apps.App, mode core.Mode, scale apps.Scale) (*obs.Trace, *core.RunStats, error) {
	tr := obs.New(obs.Config{})
	st, _, err := Run(app, mode, scale, func(c *core.Config) { c.Obs = tr })
	if err != nil {
		return nil, nil, err
	}
	return tr, st, nil
}

// TraceMulti executes a speculating group of n mixed processes (the multi
// experiment's mix) with the cross-layer trace enabled: each process gets
// its own lane next to the shared tip, cache and disk lanes.
func TraceMulti(scale apps.Scale, n int) (*obs.Trace, *multi.Result, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("bench: trace group needs n >= 1, got %d", n)
	}
	tr := obs.New(obs.Config{})
	cfg := multi.DefaultConfig()
	cfg.Obs = tr
	g, err := multi.NewGroup(cfg, scale, multiSpecs(n, core.ModeSpeculating))
	if err != nil {
		return nil, nil, err
	}
	res, err := g.Run()
	if err != nil {
		return nil, nil, err
	}
	return tr, res, nil
}
