package bench

import (
	"bytes"
	"strings"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/core"
)

func TestRunTripleCorrectness(t *testing.T) {
	tr, err := RunTriple(apps.Agrep, apps.TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Orig == nil || tr.Spec == nil || tr.Manual == nil || tr.Bundle == nil {
		t.Fatal("incomplete triple")
	}
	if tr.Spec.Mode != core.ModeSpeculating {
		t.Fatal("mode mismatch")
	}
}

func TestSuiteCachesTriples(t *testing.T) {
	s := NewSuite(apps.TestScale())
	a, err := s.Triple(apps.Agrep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Triple(apps.Agrep)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Suite did not cache the triple")
	}
}

func TestImprovement(t *testing.T) {
	base := &core.RunStats{Elapsed: 100}
	half := &core.RunStats{Elapsed: 50}
	if got := Improvement(base, half); got != 50 {
		t.Fatalf("Improvement = %v, want 50", got)
	}
	if got := Improvement(base, base); got != 0 {
		t.Fatalf("Improvement = %v, want 0", got)
	}
}

func TestImprovementZeroBase(t *testing.T) {
	// A zero-elapsed baseline must yield 0, not -Inf/NaN: non-finite values
	// poison every JSON export that embeds the percentage.
	zero := &core.RunStats{Elapsed: 0}
	st := &core.RunStats{Elapsed: 50}
	if got := Improvement(zero, st); got != 0 {
		t.Fatalf("Improvement(zero base) = %v, want 0", got)
	}
	if got := Improvement(zero, zero); got != 0 {
		t.Fatalf("Improvement(zero, zero) = %v, want 0", got)
	}
}

// Each experiment must run at test scale and produce a non-empty table
// containing every benchmark name it covers.
func TestAllExperimentsRunAtTestScale(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunByName(name, apps.TestScale(), &buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			switch name {
			case "throttle", "adaptive", "join": // single-app experiments
				if !strings.Contains(out, "original") && !strings.Contains(out, "speculating") {
					t.Errorf("%s output missing expected rows:\n%s", name, out)
				}
			case "cluster": // synthetic population, no paper apps
				if !strings.Contains(out, "moderate") || !strings.Contains(out, "heavy") {
					t.Errorf("%s output missing load rows:\n%s", name, out)
				}
			case "overload": // synthetic population, no paper apps
				for _, want := range []string{"shed-off", "shed-on", "failover"} {
					if !strings.Contains(out, want) {
						t.Errorf("%s output missing %q rows:\n%s", name, want, out)
					}
				}
			case "speed": // simulator self-check, no paper apps
				for _, want := range []string{"steady-state", "burst", "vm dispatch"} {
					if !strings.Contains(out, want) {
						t.Errorf("%s output missing %q rows:\n%s", name, want, out)
					}
				}
			default:
				if !strings.Contains(out, "Agrep") {
					t.Errorf("output missing Agrep:\n%s", out)
				}
			}
		})
	}
}

func TestRunByNameUnknown(t *testing.T) {
	if err := RunByName("nope", apps.TestScale(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must be present.
	want := []string{"table1", "table3", "table4", "table5", "table6",
		"table7", "table8", "fig3", "fig4", "fig5", "fig6", "regionsize", "throttle"}
	for _, n := range want {
		if _, ok := Registry[n]; !ok {
			t.Errorf("missing experiment %q", n)
		}
	}
}
