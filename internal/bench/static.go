package bench

import (
	"fmt"
	"sync"

	"spechint/internal/analysis"
	"spechint/internal/apps"
	"spechint/internal/core"
)

// synthCache memoizes Synthesize per original binary. Bundles built at the
// same (app, scale) share one cached *vm.Program (apps.progCache), so the
// pointer is a correct and cheap key; a sweep synthesizes each binary once.
var synthCache sync.Map // *vm.Program -> *analysis.SynthReport

// Synth returns (synthesizing on first use) the static hint synthesis of
// the bundle's original binary.
func Synth(b *apps.Bundle) (*analysis.SynthReport, error) {
	if r, ok := synthCache.Load(b.Original); ok {
		return r.(*analysis.SynthReport), nil
	}
	r, err := analysis.Synthesize(b.Original, analysis.Config{})
	if err != nil {
		return nil, fmt.Errorf("bench: %v synthesize: %w", b.App, err)
	}
	actual, _ := synthCache.LoadOrStore(b.Original, r)
	return actual.(*analysis.SynthReport), nil
}

// StaticHints converts a synthesis report into the form
// core.Config.StaticHints consumes: one disclosure per synthesized hint, in
// consumption order, carrying the confidence prior that bounds its prefetch
// depth.
func StaticHints(r *analysis.SynthReport) []core.StaticHint {
	out := make([]core.StaticHint, 0, len(r.Hints))
	for _, h := range r.Hints {
		out = append(out, core.StaticHint{Path: h.Path, Off: h.Off, N: h.N, Conf: h.Conf.Prior()})
	}
	return out
}

// DynStats projects a finished run's statistics into the shape
// analysis.SynthReport.Verify audits: per-site read counters plus the TIP
// hint-consumption totals.
func DynStats(st *core.RunStats) analysis.DynVerifyStats {
	d := analysis.DynVerifyStats{
		Sites:        make(map[int64]analysis.DynSiteStats, len(st.ReadSites)),
		HintCalls:    st.Tip.HintCalls,
		MatchedCalls: st.Tip.MatchedCalls,
		BypassedSegs: st.Tip.BypassedSegs,
	}
	for pc, s := range st.ReadSites {
		d.Sites[pc] = analysis.DynSiteStats{Calls: s.Calls, DataCalls: s.DataCalls, Hinted: s.Hinted}
	}
	return d
}

// Static compares statically synthesized hints (internal/analysis.Synthesize
// compiled into start-of-run disclosures) against the original and manual
// runs for every benchmark app. Unlike speculation, static mode adds no code
// to the application, so its SpecOverhead is zero by construction; the table
// asserts that, and also self-audits the synthesis: every emitted hint is
// verified against the run's dynamic read-site statistics, and a hint the
// run never consumed fails the experiment.
func Static(scale apps.Scale) (string, error) {
	t := newTable("Static hint synthesis: original vs static vs manual (4 disks)")
	t.row("Benchmark", "Proved", "Bounded", "SpecOnly", "Hints", "HintedReads",
		"Static impr.", "Manual impr.", "SpecOverhead")

	modes := []core.Mode{core.ModeNoHint, core.ModeStatic, core.ModeManual}
	type cell struct {
		st *core.RunStats
		b  *apps.Bundle
	}
	cells, err := parMap(len(Apps)*len(modes), func(j int) (cell, error) {
		st, b, err := Run(Apps[j/len(modes)], modes[j%len(modes)], scale, nil)
		return cell{st, b}, err
	})
	if err != nil {
		return "", err
	}

	for i, app := range Apps {
		orig := cells[i*len(modes)].st
		static := cells[i*len(modes)+1].st
		manual := cells[i*len(modes)+2].st
		b := cells[i*len(modes)+1].b

		if static.ExitCode != orig.ExitCode {
			return "", fmt.Errorf("bench: %v static exit %d != original %d",
				app, static.ExitCode, orig.ExitCode)
		}
		if static.Buckets.SpecOverhead != 0 {
			return "", fmt.Errorf("bench: %v static charged %d overhead cycles, want 0",
				app, static.Buckets.SpecOverhead)
		}
		synth, err := Synth(b)
		if err != nil {
			return "", err
		}
		// Self-audit: the synthesized hints must square with what the run did.
		if findings := synth.Verify(DynStats(static)); len(findings) != 0 {
			return "", fmt.Errorf("bench: %v static hints failed dynamic verification: %v",
				app, findings)
		}

		counts := synth.ConfCounts()
		t.row(app.String(),
			fmt.Sprint(counts[analysis.ConfProved]),
			fmt.Sprint(counts[analysis.ConfBounded]),
			fmt.Sprint(counts[analysis.ConfSpecOnly]),
			fmt.Sprint(len(synth.Hints)),
			fmt.Sprintf("%d/%d", static.HintedReads, static.ReadCalls),
			pct(Improvement(orig, static)),
			pct(Improvement(orig, manual)),
			fmt.Sprint(static.Buckets.SpecOverhead))
	}
	return t.String(), nil
}
