package bench

// The overload experiment: the sharded TIP service driven past saturation,
// with and without admission control. The load axis scales the client
// population from half the saturating level to four times it; at each level
// one cell runs with the shed/retry/breaker stack armed and one with the
// original unbounded queueing. The figure the sweep exists to draw: with
// shedding on, goodput plateaus at capacity and the latency of the requests
// actually served stays bounded, while with shedding off the same offered
// load drives served latency off the cliff. A final failover cell kills one
// shard a third of the way through the run and checks that every surviving
// session still completes via the ring's re-route.
//
// Every cell is one independent simulation — its own clock, ring, shards and
// freshly generated population — so the sweep fans out over the worker pool
// and stays byte-identical at any -parallel width. Each cell also re-checks
// the cluster's conservation invariants (Result.Check): CI runs this sweep
// and jq-asserts admitted + shed + failed == offered from the JSON.

import (
	"encoding/json"
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/clients"
	"spechint/internal/cluster"
	"spechint/internal/fault"
	"spechint/internal/sim"
)

// OverloadMults is the offered-load axis, in multiples of the roughly
// saturating population (1.0 keeps the shards busy without queueing
// collapse; 4.0 is deep overload).
var OverloadMults = []float64{0.5, 1, 2, 4}

// OverloadShards is the cluster size every overload cell runs against. Two
// shards keep the cells cheap while still exercising cross-shard routing and
// leaving a survivor for the failover cell.
const OverloadShards = 2

// OverloadKillShard is the shard the failover cell kills; tipbench's
// -kill-shard flag overrides it (< 0 skips the failover cell).
var OverloadKillShard = 1

// OverloadArm selects which admission arms the sweep runs: "both" (the
// default), "on" or "off". tipbench's -shed flag sets it. The failover cell
// always runs with shedding on, so the "off" arm skips it.
var OverloadArm = "both"

// overloadPopulation sizes the population at `mult` times the roughly
// saturating level for OverloadShards testbed shards. The multiplier scales
// the client count — more independent request streams, the way real offered
// load grows — rather than per-client rates, so think times and session
// shapes stay fixed across the axis.
func overloadPopulation(scale apps.Scale, mult float64) clients.Config {
	// A flatter file popularity (ZipfS just above 1) spreads load across the
	// ring: with a steep Zipf the few hot files' placement groups can land
	// mostly on one shard, and the experiment would measure that placement
	// skew instead of admission control.
	cfg := clients.Config{
		N: 24, Sessions: 3,
		Files: 64, FileBlocks: 64, BlockSize: 8192,
		SessionBlocks: 32, ReadBlocks: 4,
		ArrivalMean: 1_000_000, ThinkMean: 20_000,
		ZipfS: 1.01, ZipfV: 1, Seed: 1777,
	}
	if scale.Agrep.NumFiles <= 24 { // test scale: smaller base, same shape
		cfg.N, cfg.Sessions = 16, 2
		cfg.SessionBlocks = 16
	}
	n := int(float64(cfg.N)*mult + 0.5)
	if n < 1 {
		n = 1
	}
	cfg.N = n
	return cfg
}

// overloadConfig arms (or disarms) the overload-survival stack on the
// standard testbed cluster.
func overloadConfig(shed bool) cluster.Config {
	var cfg cluster.Config
	if shed {
		cfg = cluster.OverloadConfig(OverloadShards)
	} else {
		cfg = cluster.DefaultConfig(OverloadShards)
		// Shedding off still bounds service width so the two columns queue
		// at the same place; only the admission ruling differs.
		cfg.MaxInflight = cluster.OverloadConfig(OverloadShards).MaxInflight
	}
	// Fine-grained placement for this experiment only: small groups
	// interleave every file across the ring, so both shards carry the hot
	// files and the sweep saturates the cluster rather than whichever shard
	// the popular placement groups happened to land on.
	cfg.GroupBlocks = 2
	return cfg
}

// OverloadShardDetail is one shard's admission accounting inside a point.
// CI asserts offered == admitted + shed + failed per shard, and that the
// three stall buckets sum to the point's elapsed_cycles.
type OverloadShardDetail struct {
	ID             int   `json:"id"`
	Offered        int64 `json:"offered"`
	Admitted       int64 `json:"admitted"`
	Shed           int64 `json:"shed"`
	Failed         int64 `json:"failed"`
	Retried        int64 `json:"retried"`
	PeakQueue      int   `json:"peak_queue"`
	HintedCycles   int64 `json:"hinted_cycles"`
	UnhintedCycles int64 `json:"unhinted_cycles"`
	IdleCycles     int64 `json:"idle_cycles"`
}

// OverloadPoint is one cell of the sweep.
type OverloadPoint struct {
	Mult     float64 `json:"load_mult"`
	Shed     bool    `json:"shed"`
	Failover bool    `json:"failover"`
	Clients  int     `json:"clients"`

	ElapsedCycles int64   `json:"elapsed_cycles"`
	ElapsedSec    float64 `json:"elapsed_sec"`

	// Cluster-wide admission accounting (sums over shards).
	Offered     int64 `json:"offered"`
	Admitted    int64 `json:"admitted"`
	ShedParts   int64 `json:"shed_parts"`
	FailedParts int64 `json:"failed_parts"`

	// Client-side outcome.
	Reads        int64   `json:"reads"` // ops fully served
	FailedReads  int64   `json:"failed_reads"`
	Retries      int64   `json:"retries"`
	BreakerTrips int64   `json:"breaker_trips"`
	DeadSeen     int64   `json:"dead_seen"`
	Goodput      float64 `json:"goodput_reads_per_sec"`
	ShedRatePct  float64 `json:"shed_rate_pct"`

	// Latency of the reads that were served (failed ops contribute nothing).
	ServedP50Ms float64 `json:"served_p50_ms"`
	ServedP99Ms float64 `json:"served_p99_ms"`
	ServedMaxMs float64 `json:"served_max_ms"`

	ShardsDetail []OverloadShardDetail `json:"shards_detail"`
}

// overloadCell runs one (mult, shed) cell, optionally with a mid-run shard
// death, and distills the run into a point. Every cell re-checks the
// conservation invariants and that no session was lost: served + failed
// reads must equal the population's total.
func overloadCell(scale apps.Scale, mult float64, shed bool, plan *fault.Plan) (OverloadPoint, error) {
	ccfg := overloadPopulation(scale, mult)
	pop, err := clients.Generate(ccfg)
	if err != nil {
		return OverloadPoint{}, fmt.Errorf("bench: overload population: %w", err)
	}
	cfg := overloadConfig(shed)
	cfg.Fault = plan
	cl, err := cluster.New(cfg, pop)
	if err != nil {
		return OverloadPoint{}, fmt.Errorf("bench: overload cluster: %w", err)
	}
	res, err := cl.Run()
	if err != nil {
		return OverloadPoint{}, fmt.Errorf("bench: overload %gx shed=%v: %w", mult, shed, err)
	}
	if err := res.Check(); err != nil {
		return OverloadPoint{}, fmt.Errorf("bench: overload %gx shed=%v: %w", mult, shed, err)
	}
	if got := res.Reads + res.FailedReads; got != pop.TotalReads {
		return OverloadPoint{}, fmt.Errorf("bench: overload %gx shed=%v: %d served + %d failed != %d offered ops",
			mult, shed, res.Reads, res.FailedReads, pop.TotalReads)
	}

	lat := Summarize(res.Latencies)
	pt := OverloadPoint{
		Mult:          mult,
		Shed:          shed,
		Failover:      plan != nil,
		Clients:       ccfg.N,
		ElapsedCycles: int64(res.Elapsed),
		ElapsedSec:    res.Seconds(),
		Reads:         res.Reads,
		FailedReads:   res.FailedReads,
		Retries:       res.Retries,
		BreakerTrips:  res.BreakerTrips,
		DeadSeen:      res.DeadSeen,
		Goodput:       res.Throughput(),
		ServedP50Ms:   float64(lat.P50) * msPerCycle,
		ServedP99Ms:   float64(lat.P99) * msPerCycle,
		ServedMaxMs:   float64(lat.Max) * msPerCycle,
	}
	for _, s := range res.Shards {
		st := s.Stats
		pt.Offered += st.Offered
		pt.Admitted += st.Admitted
		pt.ShedParts += st.Shed
		pt.FailedParts += st.Failed
		pt.ShardsDetail = append(pt.ShardsDetail, OverloadShardDetail{
			ID:             s.ID,
			Offered:        st.Offered,
			Admitted:       st.Admitted,
			Shed:           st.Shed,
			Failed:         st.Failed,
			Retried:        st.Retried,
			PeakQueue:      st.PeakQueue,
			HintedCycles:   s.Buckets.HintedService,
			UnhintedCycles: s.Buckets.UnhintedService,
			IdleCycles:     s.Buckets.Idle,
		})
	}
	if pt.Offered > 0 {
		pt.ShedRatePct = 100 * float64(pt.ShedParts) / float64(pt.Offered)
	}
	return pt, nil
}

// failoverCell is the shard-death cell: it first runs the same load without
// a fault plan to learn the healthy run length, then kills OverloadKillShard
// a third of the way through a fresh run. Deterministic by construction —
// the probe run is itself deterministic, so the death time is too.
func failoverCell(scale apps.Scale, mult float64) (OverloadPoint, error) {
	probe, err := overloadCell(scale, mult, true, nil)
	if err != nil {
		return OverloadPoint{}, err
	}
	plan := fault.NewPlan(1)
	plan.DieShard = OverloadKillShard
	plan.DieShardAt = sim.Time(probe.ElapsedCycles / 3)
	return overloadCell(scale, mult, true, plan)
}

// overloadSweep runs the (mult, shed) grid plus the failover cell as a flat
// fan-out: shed-off cells first, then shed-on, then failover — the order the
// table reads in. OverloadArm restricts the grid to one admission arm.
func overloadSweep(scale apps.Scale) ([]OverloadPoint, error) {
	var arms []bool
	switch OverloadArm {
	case "both":
		arms = []bool{false, true}
	case "on":
		arms = []bool{true}
	case "off":
		arms = []bool{false}
	default:
		return nil, fmt.Errorf("bench: overload arm %q (want both, on or off)", OverloadArm)
	}
	n := len(arms) * len(OverloadMults)
	failover := arms[len(arms)-1] && OverloadKillShard >= 0 && OverloadKillShard < OverloadShards
	if failover {
		n++
	}
	return parMap(n, func(i int) (OverloadPoint, error) {
		if i == len(arms)*len(OverloadMults) {
			return failoverCell(scale, 2)
		}
		mult := OverloadMults[i%len(OverloadMults)]
		return overloadCell(scale, mult, arms[i/len(OverloadMults)], nil)
	})
}

// Overload is the overload-survival experiment: offered load swept past
// saturation with shedding off vs on, plus a mid-run shard kill.
func Overload(scale apps.Scale) (string, error) {
	points, err := overloadSweep(scale)
	if err != nil {
		return "", err
	}
	t := newTable("Overload-safe cluster: admission control and failover (2 shards, 2 disks + 4 MB cache each)")
	t.row("cell", "load", "clients", "offered", "admitted", "shed", "failed", "retries", "goodput (r/s)", "p50 (ms)", "p99 (ms)", "lost ops")
	for _, pt := range points {
		name := "shed-off"
		if pt.Shed {
			name = "shed-on"
		}
		if pt.Failover {
			name = "failover"
		}
		t.row(name, fmt.Sprintf("%.1fx", pt.Mult),
			fmt.Sprintf("%d", pt.Clients),
			fmt.Sprintf("%d", pt.Offered),
			fmt.Sprintf("%d", pt.Admitted),
			fmt.Sprintf("%d", pt.ShedParts),
			fmt.Sprintf("%d", pt.FailedParts),
			fmt.Sprintf("%d", pt.Retries),
			fmt.Sprintf("%.1f", pt.Goodput),
			fmt.Sprintf("%.2f", pt.ServedP50Ms),
			fmt.Sprintf("%.2f", pt.ServedP99Ms),
			fmt.Sprintf("%d", pt.FailedReads))
	}
	return t.String(), nil
}

// OverloadJSON runs the sweep and returns it machine-readable; the CI smoke
// job jq-validates the conservation invariant from this output.
func OverloadJSON(scale apps.Scale) ([]byte, error) {
	points, err := overloadSweep(scale)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(struct {
		Experiment string          `json:"experiment"`
		Mults      []float64       `json:"load_mults"`
		Points     []OverloadPoint `json:"points"`
	}{"overload", OverloadMults, points}, "", "  ")
}
