package bench

import (
	"testing"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/multi"
	"spechint/internal/obs"
)

var allModes = []core.Mode{core.ModeNoHint, core.ModeSpeculating, core.ModeManual}

// TestStallBucketsSumExactly is the attribution invariant: for every app in
// every mode, the five stall buckets plus compute account for every elapsed
// cycle — exactly, not approximately. SchedWait is exactly zero in a solo run
// without a speculating thread; with one it must stay non-negative and tiny
// (a speculative slice can overshoot the wake-up event by at most the cost of
// its final instruction, and those cycles are real runnable-but-waiting
// time).
func TestStallBucketsSumExactly(t *testing.T) {
	for _, app := range Apps {
		for _, mode := range allModes {
			st, _, err := Run(app, mode, apps.TestScale(), nil)
			if err != nil {
				t.Fatalf("%v %v: %v", app, mode, err)
			}
			b := st.Buckets
			if got := b.Total(); got != int64(st.Elapsed) {
				t.Errorf("%v %v: buckets sum to %d, elapsed %d (diff %d): %+v",
					app, mode, got, st.Elapsed, int64(st.Elapsed)-got, b)
			}
			if mode == core.ModeSpeculating {
				if b.SchedWait < 0 || b.SchedWait*1000 > int64(st.Elapsed) {
					t.Errorf("%v %v: SchedWait = %d of %d elapsed, want a tiny overshoot residual",
						app, mode, b.SchedWait, st.Elapsed)
				}
			} else if b.SchedWait != 0 {
				t.Errorf("%v %v: SchedWait = %d in a solo run without speculation, want exactly 0",
					app, mode, b.SchedWait)
			}
			for name, v := range map[string]int64{
				"Compute": b.Compute, "SpecOverhead": b.SpecOverhead,
				"HintedStall": b.HintedStall, "UnhintedStall": b.UnhintedStall,
				"FaultStall": b.FaultStall,
			} {
				if v < 0 {
					t.Errorf("%v %v: bucket %s = %d < 0", app, mode, name, v)
				}
			}
			if b.Compute == 0 {
				t.Errorf("%v %v: zero compute cycles", app, mode)
			}
			if mode == core.ModeSpeculating && b.SpecOverhead == 0 {
				t.Errorf("%v speculating: zero speculation overhead", app)
			}
			if mode != core.ModeSpeculating && b.SpecOverhead != 0 {
				t.Errorf("%v %v: speculation overhead %d without speculation", app, mode, b.SpecOverhead)
			}
		}
	}
}

// TestHintedBucketTracksHintedReads: in speculating mode the hinted-stall
// bucket must be populated exactly when hinted blocking reads occurred.
func TestHintedBucketTracksHintedReads(t *testing.T) {
	st, _, err := Run(apps.Agrep, core.ModeSpeculating, apps.TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.HintedReads > 0 && st.Buckets.HintedStall == 0 && st.Buckets.UnhintedStall == 0 {
		// Hinted reads that all hit the cache stall zero cycles; only flag the
		// combination that cannot happen (reads hinted, no stall anywhere, yet
		// elapsed exceeds busy).
		if int64(st.Elapsed) > st.OrigBusy {
			t.Fatalf("elapsed %d > busy %d with empty stall buckets: %+v",
				st.Elapsed, st.OrigBusy, st.Buckets)
		}
	}
	orig, _, err := Run(apps.Agrep, core.ModeNoHint, apps.TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Buckets.HintedStall != 0 {
		t.Fatalf("unhinted run charged %d hinted-stall cycles", orig.Buckets.HintedStall)
	}
	if orig.Buckets.UnhintedStall == 0 {
		t.Fatal("original run has zero unhinted stall — it must block on the disks")
	}
}

// TestTracingIsFree is the determinism contract: enabling the full
// observability stream (events + gauges) must not change a single cycle of
// any run, in any app or mode.
func TestTracingIsFree(t *testing.T) {
	for _, app := range Apps {
		for _, mode := range allModes {
			plain, _, err := Run(app, mode, apps.TestScale(), nil)
			if err != nil {
				t.Fatalf("%v %v: %v", app, mode, err)
			}
			tr := obs.New(obs.Config{SampleInterval: 100_000}) // sample aggressively
			traced, _, err := Run(app, mode, apps.TestScale(), func(c *core.Config) { c.Obs = tr })
			if err != nil {
				t.Fatalf("%v %v traced: %v", app, mode, err)
			}
			if plain.Elapsed != traced.Elapsed {
				t.Errorf("%v %v: tracing changed elapsed %d -> %d",
					app, mode, plain.Elapsed, traced.Elapsed)
			}
			if plain.Output != traced.Output {
				t.Errorf("%v %v: tracing changed program output", app, mode)
			}
			if plain.OrigInstrs != traced.OrigInstrs || plain.Restarts != traced.Restarts {
				t.Errorf("%v %v: tracing changed execution (instrs %d->%d, restarts %d->%d)",
					app, mode, plain.OrigInstrs, traced.OrigInstrs, plain.Restarts, traced.Restarts)
			}
			if len(tr.Events()) == 0 {
				t.Errorf("%v %v: traced run recorded no events", app, mode)
			}
			if len(tr.Points()) == 0 {
				t.Errorf("%v %v: traced run sampled no metrics", app, mode)
			}
		}
	}
}

// TestTraceRunExports drives the tipbench -trace-json backend end to end:
// both exporters must produce non-trivial documents from a real run.
func TestTraceRunExports(t *testing.T) {
	tr, st, err := TraceRun(apps.Gnuld, core.ModeSpeculating, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if st.Buckets.Total() != int64(st.Elapsed) {
		t.Fatalf("buckets %d != elapsed %d", st.Buckets.Total(), st.Elapsed)
	}
	chrome, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := tr.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(chrome) < 100 || len(metrics) < 100 {
		t.Fatalf("suspiciously small exports: chrome %d bytes, metrics %d bytes", len(chrome), len(metrics))
	}
	// The cross-layer contract: every layer's lane shows up in one run.
	lanes := map[string]bool{}
	for _, e := range tr.Events() {
		lanes[e.Lane] = true
	}
	for _, want := range []string{"tip", "cache", "disk0", "app"} {
		if !lanes[want] {
			t.Errorf("lane %q missing from solo trace (have %v)", want, lanes)
		}
	}
}

// TestTracingIsFreeMulti extends the determinism contract to the shared
// substrate: a traced speculating group must match an untraced one cycle for
// cycle, and every process must have its own lane.
func TestTracingIsFreeMulti(t *testing.T) {
	run := func(tr *obs.Trace) *multi.Result {
		cfg := multi.DefaultConfig()
		cfg.Obs = tr
		g, err := multi.NewGroup(cfg, apps.TestScale(), multiSpecs(3, core.ModeSpeculating))
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	tr := obs.New(obs.Config{})
	traced := run(tr)

	if plain.Makespan != traced.Makespan {
		t.Fatalf("tracing changed makespan %d -> %d", plain.Makespan, traced.Makespan)
	}
	for i := range plain.Procs {
		p, q := plain.Procs[i], traced.Procs[i]
		if p.Stats.Elapsed != q.Stats.Elapsed || p.Stats.Output != q.Stats.Output {
			t.Errorf("tracing changed %s: elapsed %d -> %d", p.Name, p.Stats.Elapsed, q.Stats.Elapsed)
		}
	}

	lanes := map[string]bool{}
	for _, e := range tr.Events() {
		lanes[e.Lane] = true
	}
	for _, p := range traced.Procs {
		if !lanes[p.Name] {
			t.Errorf("process lane %q missing from group trace", p.Name)
		}
	}

	// Under multiprogramming SchedWait is real CPU queueing, but the sum
	// invariant still holds exactly for every process.
	for _, p := range traced.Procs {
		if p.Stats.Buckets.Total() != int64(p.Stats.Elapsed) {
			t.Errorf("%s: buckets %d != elapsed %d", p.Name, p.Stats.Buckets.Total(), p.Stats.Elapsed)
		}
		if p.Stats.Buckets.SchedWait < 0 {
			t.Errorf("%s: negative SchedWait %d", p.Name, p.Stats.Buckets.SchedWait)
		}
	}
}
