package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// multiDoc mirrors the JSON MultiJSON writes (and make bench commits to
// bench/results/BENCH_multi.json).
type multiDoc struct {
	Experiment string       `json:"experiment"`
	MaxN       int          `json:"max_n"`
	Points     []MultiPoint `json:"points"`
}

// winMarginPct is the dead band for who-wins checks: a baseline
// improvement smaller than this is treated as a tie, so a borderline cell
// cannot flap the guard.
const winMarginPct = 2.0

// CheckMulti compares a fresh multi-sweep JSON against a committed
// baseline and returns an error describing every regression found:
//
//   - shape mismatches (different sweep sizes) fail outright;
//   - makespans (orig_sec, spec_sec) must be within tolPct percent of the
//     baseline, point by point;
//   - the paper-shape invariant must hold: wherever the baseline shows
//     speculation clearly beating the originals (Figure 3's who-wins
//     ordering, here improvement_pct > 2%), the fresh run must still show
//     speculation winning — a tolerance pass cannot excuse a flipped
//     winner.
//
// The simulation is deterministic, so on an unchanged tree fresh and
// baseline agree exactly; the tolerance exists so intentional model
// changes with small numeric drift do not trip the guard, while shape
// regressions always do.
func CheckMulti(fresh, baseline []byte, tolPct float64) error {
	var f, b multiDoc
	if err := json.Unmarshal(fresh, &f); err != nil {
		return fmt.Errorf("bench: check: fresh sweep: %v", err)
	}
	if err := json.Unmarshal(baseline, &b); err != nil {
		return fmt.Errorf("bench: check: baseline: %v", err)
	}
	if len(f.Points) != len(b.Points) {
		return fmt.Errorf("bench: check: sweep has %d points, baseline %d — regenerate the baseline with make bench",
			len(f.Points), len(b.Points))
	}

	var bad []string
	reject := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	for i, fp := range f.Points {
		bp := b.Points[i]
		if fp.N != bp.N {
			reject("point %d: N=%d, baseline N=%d", i, fp.N, bp.N)
			continue
		}
		if d := driftPct(fp.OrigSec, bp.OrigSec); d > tolPct {
			reject("N=%d: original makespan %.2fs drifted %.1f%% from baseline %.2fs (tolerance %g%%)",
				fp.N, fp.OrigSec, d, bp.OrigSec, tolPct)
		}
		if d := driftPct(fp.SpecSec, bp.SpecSec); d > tolPct {
			reject("N=%d: speculating makespan %.2fs drifted %.1f%% from baseline %.2fs (tolerance %g%%)",
				fp.N, fp.SpecSec, d, bp.SpecSec, tolPct)
		}
		if bp.ImprovementPct > winMarginPct && fp.ImprovementPct <= 0 {
			reject("N=%d: speculation no longer wins (improvement %.1f%%, baseline %.1f%%) — Figure 3 shape regression",
				fp.N, fp.ImprovementPct, bp.ImprovementPct)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: check failed (%d regressions):\n  %s",
			len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// driftPct returns |fresh-base| as a percentage of base (0 if both zero).
func driftPct(fresh, base float64) float64 {
	if base == 0 {
		if fresh == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * math.Abs(fresh-base) / math.Abs(base)
}
