package bench

import (
	"testing"

	"spechint/internal/apps"
	"spechint/internal/core"
)

// TestPaperShapes is the reproduction's regression suite: it runs the
// headline configuration at sweep scale and asserts the qualitative results
// the paper reports. If a model change breaks a shape, this fails before
// EXPERIMENTS.md goes stale.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-scale run")
	}
	scale := apps.SweepScale()
	triples := map[apps.App]*Triple{}
	for _, app := range Apps {
		tr, err := RunTriple(app, scale, nil)
		if err != nil {
			t.Fatal(err)
		}
		triples[app] = tr
	}

	// Shape 1 (Fig. 3): substantial reductions for every app, speculating.
	for app, tr := range triples {
		if imp := Improvement(tr.Orig, tr.Spec); imp < 20 {
			t.Errorf("%v: speculating improvement %.1f%%, want >= 20%%", app, imp)
		}
	}

	// Shape 2 (Fig. 3): speculation matches manual for Agrep and XDataSlice
	// (within a few points) and trails it for Gnuld.
	for _, app := range []apps.App{apps.Agrep, apps.XDataSlice} {
		tr := triples[app]
		specI := Improvement(tr.Orig, tr.Spec)
		manI := Improvement(tr.Orig, tr.Manual)
		if specI < manI-5 {
			t.Errorf("%v: speculating (%.1f%%) should match manual (%.1f%%)", app, specI, manI)
		}
	}
	g := triples[apps.Gnuld]
	if Improvement(g.Orig, g.Spec) >= Improvement(g.Orig, g.Manual) {
		t.Error("Gnuld: speculation should trail manual (data dependencies)")
	}
	if g.Spec.Elapsed >= g.Orig.Elapsed {
		t.Error("Gnuld: speculation should still beat the original at 4 disks")
	}

	// Shape 3 (Table 4): hint coverage ordering — XDS ~all, Agrep ~70% of
	// calls (EOF reads), Gnuld lowest meaningful coverage with erroneous
	// hints; the others with none.
	frac := func(st *core.RunStats) float64 {
		return float64(st.HintedReads) / float64(st.ReadCalls)
	}
	if frac(triples[apps.XDataSlice].Spec) < 0.95 {
		t.Errorf("XDS hinted %.2f, want ~1", frac(triples[apps.XDataSlice].Spec))
	}
	if f := frac(triples[apps.Agrep].Spec); f < 0.60 || f > 0.85 {
		t.Errorf("Agrep hinted %.2f, want ~0.7 (EOF reads unhinted)", f)
	}
	if triples[apps.Gnuld].Spec.Tip.InaccurateCalls() == 0 {
		t.Error("Gnuld speculation should produce erroneous hints")
	}
	if triples[apps.Agrep].Spec.Tip.InaccurateCalls() != 0 {
		t.Error("Agrep speculation should produce no erroneous hints")
	}

	// Shape 4 (Table 5): the read-ahead policy wastes most prefetches for
	// the original XDataSlice; the hinting builds waste almost none.
	x := triples[apps.XDataSlice]
	origUnused := x.Orig.Cache.UnusedHint + x.Orig.Cache.UnusedRA
	if pref := x.Orig.Tip.PrefetchedBlocks(); float64(origUnused) < 0.5*float64(pref) {
		t.Errorf("XDS original unused prefetches %d of %d, want majority", origUnused, pref)
	}
	specUnused := x.Spec.Cache.UnusedHint + x.Spec.Cache.UnusedRA
	if specUnused > 50 {
		t.Errorf("XDS speculating unused prefetches = %d, want ~0", specUnused)
	}

	// Shape 5 (Table 6): the speculating builds restart; manual/original
	// never do.
	for app, tr := range triples {
		if tr.Spec.Restarts == 0 {
			t.Errorf("%v: speculating run never restarted", app)
		}
		if tr.Orig.Restarts != 0 || tr.Manual.Restarts != 0 {
			t.Errorf("%v: non-speculating run restarted", app)
		}
	}

	// Shape 6 (§4.4): Agrep has the largest dilation factor, > 1.
	ag := triples[apps.Agrep].Spec.DilationFactor()
	if ag <= 1.5 {
		t.Errorf("Agrep dilation %.1f, want well above 1", ag)
	}
	if gd := triples[apps.Gnuld].Spec.DilationFactor(); gd > ag {
		t.Errorf("Gnuld dilation %.1f exceeds Agrep's %.1f", gd, ag)
	}

	// Shape 7 (Fig. 5 seed): hinting exploits parallelism — one disk gives
	// far less benefit than four for Agrep.
	oneDisk, err := RunTriple(apps.Agrep, scale, func(c *core.Config) {
		c.Disk = core.TestbedDisk(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if i1, i4 := Improvement(oneDisk.Orig, oneDisk.Spec), Improvement(triples[apps.Agrep].Orig, triples[apps.Agrep].Spec); i1 > i4/2 {
		t.Errorf("Agrep: 1-disk improvement %.1f%% not far below 4-disk %.1f%%", i1, i4)
	}
}
