package bench

import "sort"

// Percentile returns the p-quantile (p in [0, 1]) of xs by the nearest-rank
// method: the smallest sample such that at least p of the distribution lies
// at or below it. xs is not modified; an empty slice yields 0. Nearest-rank
// (rather than interpolation) keeps the result an actual observed sample, so
// quantiles of cycle-valued latencies stay integral and byte-stable in JSON.
func Percentile(xs []int64, p float64) int64 {
	return percentileSorted(sortCopy(xs), p)
}

// sortCopy returns a private ascending-sorted copy of xs, the one sort every
// quantile helper shares: callers needing several quantiles of the same
// sample sort once here and read them all through percentileSorted.
func sortCopy(xs []int64) []int64 {
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// percentileSorted is Percentile over an already ascending-sorted slice.
func percentileSorted(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(p * float64(len(sorted)))
	if float64(rank) < p*float64(len(sorted)) {
		rank++ // ceil for fractional ranks
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// LatencySummary condenses a latency sample set to the tail metrics the
// cluster experiment reports.
type LatencySummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  int64   `json:"p50"`
	P99  int64   `json:"p99"`
	P999 int64   `json:"p999"`
	Max  int64   `json:"max"`
}

// Summarize computes the summary in one sort of a private copy.
func Summarize(xs []int64) LatencySummary {
	if len(xs) == 0 {
		return LatencySummary{}
	}
	sorted := sortCopy(xs)
	sum := int64(0)
	for _, x := range sorted {
		sum += x
	}
	return LatencySummary{
		N:    len(sorted),
		Mean: float64(sum) / float64(len(sorted)),
		P50:  percentileSorted(sorted, 0.50),
		P99:  percentileSorted(sorted, 0.99),
		P999: percentileSorted(sorted, 0.999),
		Max:  sorted[len(sorted)-1],
	}
}
