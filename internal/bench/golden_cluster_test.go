package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spechint/internal/apps"
)

// clusterGoldenPath is the committed canon for the small fixed cluster
// scenario: the 2-shard, test-scale sweep at both offered loads.
var clusterGoldenPath = filepath.Join(goldenDir, "cluster_small.json")

// TestGoldenCluster byte-compares the small cluster scenario against the
// committed canon, like TestGoldenRunStats does for the solo cells: any
// change to ring placement, hint batching, message timing or the population
// generator shows up as a diff here. Re-canonize deliberately with:
//
//	go test ./internal/bench -run GoldenCluster -update
func TestGoldenCluster(t *testing.T) {
	got, err := ClusterJSON(apps.TestScale(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(clusterGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(clusterGoldenPath)
	if err != nil {
		t.Fatalf("no golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged from the golden run (%d bytes vs %d).\n"+
			"If the change is intentional, re-canonize with:\n"+
			"  go test ./internal/bench -run GoldenCluster -update\nfirst difference at byte %d",
			clusterGoldenPath, len(got), len(want), firstDiff(got, want))
	}
}
