package bench

import (
	"encoding/json"
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/multi"
)

// MultiMaxN bounds the multiprogramming sweep's largest group; tipbench's
// -multimax flag overrides it.
var MultiMaxN = 8

// multiMix fixes process i's application across every group size, so the
// N-process group is the (N-1)-process group plus one more process.
var multiMix = []apps.App{apps.Agrep, apps.XDataSlice, apps.Postgres, apps.Gnuld}

func multiSpecs(n int, mode core.Mode) []multi.ProcSpec {
	specs := make([]multi.ProcSpec, n)
	for i := range specs {
		specs[i] = multi.ProcSpec{App: multiMix[i%len(multiMix)], Mode: mode}
	}
	return specs
}

// MultiProc is one process's outcome inside a speculating group.
type MultiProc struct {
	Name       string  `json:"name"`
	App        string  `json:"app"`
	ElapsedSec float64 `json:"elapsed_sec"`
	SoloSec    float64 `json:"solo_sec"`
	Slowdown   float64 `json:"slowdown"`
	ReadCalls  int64   `json:"read_calls"`
	HintCalls  int64   `json:"hint_calls"`
}

// MultiPoint is one group size of the multiprogramming sweep.
type MultiPoint struct {
	N              int         `json:"n"`
	OrigSec        float64     `json:"orig_sec"`
	SpecSec        float64     `json:"spec_sec"`
	ImprovementPct float64     `json:"improvement_pct"`
	Throughput     float64     `json:"throughput_procs_per_sec"`
	Jain           float64     `json:"jain_fairness"`
	Procs          []MultiProc `json:"procs"`
}

// multiSweep runs original and speculating groups at every size 1..maxN on
// the shared testbed substrate. Per-process slowdown is measured against a
// solo speculating run of the identical workload instance (same per-process
// prefix and seeds, via FirstProcIndex); process i's workload does not
// depend on N, so one solo baseline serves every group size.
//
// Every simulation of the sweep — maxN solo baselines plus an original and
// a speculating group per size — is an independent cell, dispatched as one
// flat fan-out over the worker pool and reassembled in size order.
func multiSweep(scale apps.Scale, maxN int) ([]MultiPoint, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("bench: multi sweep needs maxN >= 1, got %d", maxN)
	}
	cfg := multi.DefaultConfig()

	// Cells 0..maxN-1: solo baselines. Cells maxN+2k, maxN+2k+1: the
	// original and speculating groups of size k+1.
	type cell struct {
		solo float64
		res  *multi.Result
	}
	cells, err := parMap(3*maxN, func(i int) (cell, error) {
		if i < maxN {
			c := cfg
			c.FirstProcIndex = i
			g, err := multi.NewGroup(c, scale, []multi.ProcSpec{
				{App: multiMix[i%len(multiMix)], Mode: core.ModeSpeculating},
			})
			if err != nil {
				return cell{}, fmt.Errorf("bench: multi solo baseline p%d: %w", i, err)
			}
			res, err := g.Run()
			if err != nil {
				return cell{}, fmt.Errorf("bench: multi solo baseline p%d: %w", i, err)
			}
			return cell{solo: res.Procs[0].Stats.Seconds()}, nil
		}
		n, mode := (i-maxN)/2+1, core.ModeNoHint
		if (i-maxN)%2 == 1 {
			mode = core.ModeSpeculating
		}
		g, err := multi.NewGroup(cfg, scale, multiSpecs(n, mode))
		if err != nil {
			return cell{}, fmt.Errorf("bench: multi N=%d %v: %w", n, mode, err)
		}
		res, err := g.Run()
		if err != nil {
			return cell{}, fmt.Errorf("bench: multi N=%d %v: %w", n, mode, err)
		}
		return cell{res: res}, nil
	})
	if err != nil {
		return nil, err
	}

	var points []MultiPoint
	for n := 1; n <= maxN; n++ {
		orig := cells[maxN+2*(n-1)].res
		spec := cells[maxN+2*(n-1)+1].res
		pt := MultiPoint{
			N:          n,
			OrigSec:    orig.Seconds(),
			SpecSec:    spec.Seconds(),
			Throughput: spec.Throughput(),
		}
		if pt.OrigSec > 0 {
			pt.ImprovementPct = 100 * (pt.OrigSec - pt.SpecSec) / pt.OrigSec
		}
		var slowdowns []float64
		for i, p := range spec.Procs {
			base := cells[i].solo
			mp := MultiProc{
				Name:       p.Name,
				App:        p.App.String(),
				ElapsedSec: p.Stats.Seconds(),
				SoloSec:    base,
				ReadCalls:  p.Stats.ReadCalls,
				HintCalls:  p.Stats.Tip.HintCalls,
			}
			if base > 0 {
				mp.Slowdown = mp.ElapsedSec / base
			}
			slowdowns = append(slowdowns, mp.Slowdown)
			pt.Procs = append(pt.Procs, mp)
		}
		pt.Jain = multi.JainIndex(slowdowns)
		points = append(points, pt)
	}
	return points, nil
}

// Multi is the multiprogramming experiment: N mixed processes (Agrep,
// XDataSlice, Postgres, Gnuld round-robin) share one TIP cache and disk
// array, originals vs speculating builds, for N = 1..MultiMaxN. It reports
// makespan for both modes, the improvement from speculation, completed
// processes per second, and Jain's fairness index over per-process slowdowns
// (turnaround in the group / turnaround running alone).
func Multi(scale apps.Scale) (string, error) {
	points, err := multiSweep(scale, MultiMaxN)
	if err != nil {
		return "", err
	}

	t := newTable("Multiprogramming: N mixed processes on one shared TIP (4 disks, 12 MB cache)")
	t.row("N", "original (s)", "speculating (s)", "improvement", "throughput (proc/s)", "Jain fairness")
	for _, pt := range points {
		t.row(fmt.Sprintf("%d", pt.N),
			fmt.Sprintf("%.2f", pt.OrigSec),
			fmt.Sprintf("%.2f", pt.SpecSec),
			pct(pt.ImprovementPct),
			fmt.Sprintf("%.2f", pt.Throughput),
			fmt.Sprintf("%.3f", pt.Jain))
	}
	out := t.String()

	last := points[len(points)-1]
	bt := newTable(fmt.Sprintf("\nPer-process breakdown at N=%d (speculating)", last.N))
	bt.row("Process", "App", "elapsed (s)", "solo (s)", "slowdown", "reads", "hints")
	for _, p := range last.Procs {
		bt.row(p.Name, p.App,
			fmt.Sprintf("%.2f", p.ElapsedSec),
			fmt.Sprintf("%.2f", p.SoloSec),
			fmt.Sprintf("%.2fx", p.Slowdown),
			fmt.Sprintf("%d", p.ReadCalls),
			fmt.Sprintf("%d", p.HintCalls))
	}
	return out + bt.String(), nil
}

// MultiJSON runs the sweep and returns it machine-readable (make bench
// writes it to BENCH_multi.json).
func MultiJSON(scale apps.Scale, maxN int) ([]byte, error) {
	points, err := multiSweep(scale, maxN)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(struct {
		Experiment string       `json:"experiment"`
		MaxN       int          `json:"max_n"`
		Points     []MultiPoint `json:"points"`
	}{"multi", maxN, points}, "", "  ")
}
