package bench

import (
	"encoding/json"
	"testing"

	"spechint/internal/apps"
)

// The registry's speed experiment must be deterministic: it feeds the same
// golden/differential machinery as every other experiment, so two runs must
// be byte-identical (no wall clock, no allocation averages in the output).
func TestSpeedDeterministic(t *testing.T) {
	a, err := Speed(apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Speed(apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Speed output differs between runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("Speed produced empty output")
	}
}

// SpeedJSON's wall numbers vary by machine, but its shape must not: the CI
// smoke jq-checks schema, cell names, and positive throughput.
func TestSpeedJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement loop")
	}
	rep, err := SpeedJSON(apps.TestScale(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SpeedSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, SpeedSchema)
	}
	want := map[string]bool{"steady512": false, "burst64": false, "vmstep": false}
	for _, c := range append(append([]SpeedCell{}, rep.EventLoop...), rep.VM...) {
		if _, ok := want[c.Name]; !ok {
			t.Fatalf("unexpected cell %q", c.Name)
		}
		want[c.Name] = true
		if c.PerSec <= 0 || c.NsPerOp <= 0 {
			t.Fatalf("cell %q has non-positive throughput: %+v", c.Name, c)
		}
		// The free-list and pre-decoded fast paths must stay allocation-free.
		if c.AllocsPerOp != 0 {
			t.Fatalf("cell %q allocates %.3f/op, want 0", c.Name, c.AllocsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("missing cell %q", name)
		}
	}
	if rep.EndToEnd.WallMS <= 0 || rep.EndToEnd.Runs != 3*len(Apps) {
		t.Fatalf("bad end-to-end arm: %+v", rep.EndToEnd)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not marshalable: %v", err)
	}
}
