package bench

import (
	"math/rand"
	"testing"
)

// TestPercentileNearestRank pins the nearest-rank definition on small,
// hand-checkable samples.
func TestPercentileNearestRank(t *testing.T) {
	xs := []int64{50, 10, 40, 20, 30} // unsorted on purpose
	cases := []struct {
		p    float64
		want int64
	}{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.8, 40}, {0.81, 50}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(p=%g) = %d, want %d", c.p, got, c.want)
		}
	}
	if xs[0] != 50 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %d, want 0", got)
	}
	if got := Percentile([]int64{7}, 0.999); got != 7 {
		t.Errorf("single-sample p999 = %d, want 7", got)
	}
}

// TestPercentileLargeSample: on 0..9999 the quantiles land where they should.
func TestPercentileLargeSample(t *testing.T) {
	xs := make([]int64, 10_000)
	for i := range xs {
		xs[i] = int64(i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, c := range []struct {
		p    float64
		want int64
	}{{0.5, 4999}, {0.99, 9899}, {0.999, 9989}} {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(p=%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestPercentileEdges pins the awkward corners of nearest-rank: extreme
// quantiles of samples far smaller than 1/(1-p), and degenerate samples.
func TestPercentileEdges(t *testing.T) {
	// p = 0.999 of a tiny sample must be the max, never an out-of-range rank.
	for n := 1; n <= 5; n++ {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(10 * (i + 1))
		}
		if got, want := Percentile(xs, 0.999), xs[n-1]; got != want {
			t.Errorf("p999 of %d samples = %d, want max %d", n, got, want)
		}
	}
	// A single element answers every quantile.
	for _, p := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := Percentile([]int64{42}, p); got != 42 {
			t.Errorf("single-element p=%g = %d, want 42", p, got)
		}
	}
	// All-equal samples answer every quantile with that value.
	eq := []int64{7, 7, 7, 7, 7, 7, 7, 7}
	for _, p := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if got := Percentile(eq, p); got != 7 {
			t.Errorf("all-equal p=%g = %d, want 7", p, got)
		}
	}
	// Out-of-range p clamps to min/max rather than indexing out of bounds.
	xs := []int64{1, 2, 3}
	if got := Percentile(xs, -0.5); got != 1 {
		t.Errorf("p<0 = %d, want min 1", got)
	}
	if got := Percentile(xs, 1.5); got != 3 {
		t.Errorf("p>1 = %d, want max 3", got)
	}
}

// TestSummarizeDegenerate: the one-sort summary agrees on degenerate inputs.
func TestSummarizeDegenerate(t *testing.T) {
	one := Summarize([]int64{13})
	if one.N != 1 || one.Mean != 13 || one.P50 != 13 || one.P99 != 13 || one.P999 != 13 || one.Max != 13 {
		t.Errorf("Summarize(single) = %+v, want all 13", one)
	}
	eq := Summarize([]int64{4, 4, 4})
	if eq.Mean != 4 || eq.P50 != 4 || eq.P999 != 4 || eq.Max != 4 {
		t.Errorf("Summarize(all-equal) = %+v, want all 4", eq)
	}
}

// TestSummarize checks the one-pass summary against the individual helpers.
func TestSummarize(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 5 || s.Max != 9 {
		t.Errorf("Summarize = %+v, want N=5 Mean=5 Max=9", s)
	}
	if s.P50 != Percentile(xs, 0.5) || s.P99 != Percentile(xs, 0.99) || s.P999 != Percentile(xs, 0.999) {
		t.Errorf("Summarize quantiles %+v disagree with Percentile", s)
	}
	if z := Summarize(nil); z != (LatencySummary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", z)
	}
}
