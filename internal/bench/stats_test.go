package bench

import (
	"math/rand"
	"testing"
)

// TestPercentileNearestRank pins the nearest-rank definition on small,
// hand-checkable samples.
func TestPercentileNearestRank(t *testing.T) {
	xs := []int64{50, 10, 40, 20, 30} // unsorted on purpose
	cases := []struct {
		p    float64
		want int64
	}{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.8, 40}, {0.81, 50}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(p=%g) = %d, want %d", c.p, got, c.want)
		}
	}
	if xs[0] != 50 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %d, want 0", got)
	}
	if got := Percentile([]int64{7}, 0.999); got != 7 {
		t.Errorf("single-sample p999 = %d, want 7", got)
	}
}

// TestPercentileLargeSample: on 0..9999 the quantiles land where they should.
func TestPercentileLargeSample(t *testing.T) {
	xs := make([]int64, 10_000)
	for i := range xs {
		xs[i] = int64(i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, c := range []struct {
		p    float64
		want int64
	}{{0.5, 4999}, {0.99, 9899}, {0.999, 9989}} {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(p=%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestSummarize checks the one-pass summary against the individual helpers.
func TestSummarize(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 5 || s.Max != 9 {
		t.Errorf("Summarize = %+v, want N=5 Mean=5 Max=9", s)
	}
	if s.P50 != Percentile(xs, 0.5) || s.P99 != Percentile(xs, 0.99) || s.P999 != Percentile(xs, 0.999) {
		t.Errorf("Summarize quantiles %+v disagree with Percentile", s)
	}
	if z := Summarize(nil); z != (LatencySummary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", z)
	}
}
