package bench

// The replay experiment: trace-replay programs (internal/trace) as
// first-class benchmark citizens. It answers two questions the paper's
// suite cannot:
//
//  1. Who wins on modern access patterns? The LSM compaction mix and the
//     ML shard loader are readahead-hostile workloads the 1999 suite has
//     no analogue for; the experiment runs them in all four modes.
//  2. Is capture→replay lossless? For every canonical app the experiment
//     captures the original run's read stream, compiles the trace back
//     into a program, replays it, and demands a block-for-block identical
//     disk access sequence. A mismatch fails the experiment, not just a
//     row.

import (
	"encoding/json"
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/asm"
	"spechint/internal/core"
	"spechint/internal/trace"
)

// ModernApps are the replay-generated workloads; every replay row runs
// them, and the chaos and canon walls include them next to the paper trio.
var ModernApps = []apps.App{apps.LSM, apps.MLShard}

// replayModes is the fixed mode order of the who-wins grid.
var replayModes = [4]core.Mode{core.ModeNoHint, core.ModeSpeculating, core.ModeManual, core.ModeStatic}

// ReplayPoint is one (app, mode) cell of the who-wins grid.
type ReplayPoint struct {
	App            string  `json:"app"`
	Mode           string  `json:"mode"`
	ElapsedCycles  int64   `json:"elapsed_cycles"`
	Seconds        float64 `json:"seconds"`
	ImprovementPct float64 `json:"improvement_pct"` // vs the app's original-mode run
	ReadCalls      int64   `json:"read_calls"`
	HintedReads    int64   `json:"hinted_reads"`
	BucketsOK      bool    `json:"buckets_sum_ok"`
}

// RoundTripResult reports one capture→replay differential comparison.
type RoundTripResult struct {
	App       string `json:"app"`
	Reads     int    `json:"reads"`   // demand reads in the captured stream
	Records   int    `json:"records"` // trace records after normalization
	Exact     bool   `json:"exact"`   // replay reproduced the block sequence
	BucketsOK bool   `json:"buckets_sum_ok"`
}

// ReplayReport is the JSON shape tipbench -replay emits; CI jq-checks it.
type ReplayReport struct {
	Schema    string            `json:"schema"`
	Scale     string            `json:"scale"`
	Points    []ReplayPoint     `json:"points"`
	RoundTrip []RoundTripResult `json:"roundtrip"`
}

// roundTripBlocks expands a read stream into the logical block sequence it
// touches on the run's own file system. This is the replay fidelity
// currency: two runs with equal block sequences cost the disk arm exactly
// the same.
func roundTripBlocks(b *apps.Bundle, reads []trace.Rec) ([]int64, error) {
	bs := int64(b.FS.BlockSize())
	var seq []int64
	for _, r := range reads {
		f, ok := b.FS.Lookup(r.Path)
		if !ok {
			return nil, fmt.Errorf("bench: replayed path %q not in workload", r.Path)
		}
		last := r.Off + r.Len - 1
		if max := f.Size() - 1; last > max {
			last = max // short read at EOF touches no blocks past the file
		}
		for blk := r.Off / bs; blk*bs <= last; blk++ {
			seq = append(seq, f.LogicalBlock(blk))
		}
	}
	return seq, nil
}

// RoundTrip captures app's original-mode read stream, compiles the trace
// into a replay program, runs it over an identically built workload, and
// compares the two disk access sequences block for block.
func RoundTrip(app apps.App, scale apps.Scale) (*RoundTripResult, error) {
	capture := &trace.Capture{}
	st1, b1, err := Run(app, core.ModeNoHint, scale, func(c *core.Config) { c.Capture = capture })
	if err != nil {
		return nil, err
	}
	tr := capture.Trace()

	prog, err := asm.Assemble(trace.Source(tr, false))
	if err != nil {
		return nil, fmt.Errorf("bench: %v captured trace failed to compile: %w", app, err)
	}
	b2, err := apps.Build(app, scale) // fresh, identical workload
	if err != nil {
		return nil, err
	}
	recap := &trace.Capture{}
	cfg := core.DefaultConfig(core.ModeNoHint)
	cfg.Capture = recap
	sys, err := core.New(cfg, prog, b2.FS)
	if err != nil {
		return nil, err
	}
	st2, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("bench: %v replay run: %w", app, err)
	}

	orig, replay := tr.Reads(), recap.Trace().Reads()
	exact := len(orig) == len(replay)
	if exact {
		for i := range orig {
			if orig[i].Path != replay[i].Path || orig[i].Off != replay[i].Off || orig[i].Len != replay[i].Len {
				exact = false
				break
			}
		}
	}
	if exact {
		s1, err := roundTripBlocks(b1, orig)
		if err != nil {
			return nil, err
		}
		s2, err := roundTripBlocks(b2, replay)
		if err != nil {
			return nil, err
		}
		exact = len(s1) == len(s2)
		for i := 0; exact && i < len(s1); i++ {
			exact = s1[i] == s2[i]
		}
	}
	return &RoundTripResult{
		App:     app.String(),
		Reads:   len(orig),
		Records: len(tr.Recs),
		Exact:   exact,
		BucketsOK: st1.Buckets.Total() == int64(st1.Elapsed) &&
			st2.Buckets.Total() == int64(st2.Elapsed),
	}, nil
}

// replayGrid runs every modern app in every mode across the worker pool.
func replayGrid(scale apps.Scale) ([]*core.RunStats, error) {
	return parMap(len(ModernApps)*len(replayModes), func(j int) (*core.RunStats, error) {
		st, _, err := Run(ModernApps[j/len(replayModes)], replayModes[j%len(replayModes)], scale, nil)
		return st, err
	})
}

// replayReport assembles the full report; both the text and JSON frontends
// render from it so they cannot drift.
func replayReport(scale apps.Scale, scaleName string) (*ReplayReport, error) {
	grid, err := replayGrid(scale)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{Schema: "tipbench-replay/v1", Scale: scaleName}
	for i, app := range ModernApps {
		base := grid[i*len(replayModes)]
		for j, mode := range replayModes {
			st := grid[i*len(replayModes)+j]
			if st.ExitCode != base.ExitCode {
				return nil, fmt.Errorf("bench: %v %v exit %d != original %d",
					app, mode, st.ExitCode, base.ExitCode)
			}
			rep.Points = append(rep.Points, ReplayPoint{
				App:            app.String(),
				Mode:           mode.String(),
				ElapsedCycles:  int64(st.Elapsed),
				Seconds:        st.Seconds(),
				ImprovementPct: Improvement(base, st),
				ReadCalls:      st.ReadCalls,
				HintedReads:    st.HintedReads,
				BucketsOK:      st.Buckets.Total() == int64(st.Elapsed),
			})
		}
	}
	trips, err := parMap(len(Apps), func(i int) (*RoundTripResult, error) {
		return RoundTrip(Apps[i], scale)
	})
	if err != nil {
		return nil, err
	}
	for _, rt := range trips {
		if !rt.Exact {
			return nil, fmt.Errorf("bench: %s capture→replay round trip not exact (%d reads)",
				rt.App, rt.Reads)
		}
		if !rt.BucketsOK {
			return nil, fmt.Errorf("bench: %s round-trip stall buckets do not sum to elapsed", rt.App)
		}
		rep.RoundTrip = append(rep.RoundTrip, *rt)
	}
	return rep, nil
}

// Replay is the registry entry: the who-wins grid over the modern apps
// plus the capture→replay differential for the paper trio.
func Replay(scale apps.Scale) (string, error) {
	rep, err := replayReport(scale, "")
	if err != nil {
		return "", err
	}
	t := newTable("Trace replay: modern apps across all modes (4 disks)")
	t.row("Benchmark", "Mode", "Elapsed(s)", "Improvement", "HintedReads")
	for _, p := range rep.Points {
		t.row(p.App, p.Mode, fmt.Sprintf("%.2f", p.Seconds), pct(p.ImprovementPct),
			fmt.Sprintf("%d/%d", p.HintedReads, p.ReadCalls))
	}
	out := t.String() + "\n"

	t2 := newTable("Capture→replay round trip (original mode)")
	t2.row("Benchmark", "Reads", "Records", "Block-exact", "BucketsSum")
	for _, rt := range rep.RoundTrip {
		t2.row(rt.App, fmt.Sprint(rt.Reads), fmt.Sprint(rt.Records),
			fmt.Sprintf("%v", rt.Exact), fmt.Sprintf("%v", rt.BucketsOK))
	}
	return out + t2.String(), nil
}

// ReplayJSON renders the report for tipbench -replay.
func ReplayJSON(scale apps.Scale, scaleName string) ([]byte, error) {
	rep, err := replayReport(scale, scaleName)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(rep, "", "  ")
}
