package bench

import (
	"encoding/json"
	"fmt"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/fault"
	"spechint/internal/sim"
)

// FaultRates is the transient-error-rate sweep used by the faults experiment
// (rate 0 is the fault-free baseline).
var FaultRates = []float64{0, 0.01, 0.02, 0.05, 0.1}

// faultSeed keeps the injection schedule fixed across runs so degradation
// curves are reproducible point for point.
const faultSeed = 99

// FaultPoint is one (app, mode, rate) cell of the degradation sweep.
type FaultPoint struct {
	App          string  `json:"app"`
	Mode         string  `json:"mode"`
	Rate         float64 `json:"rate"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	StallSec     float64 `json:"stall_sec"`
	FaultedReqs  int64   `json:"faulted_reqs"`
	SpikedReqs   int64   `json:"spiked_reqs"`
	FetchRetries int64   `json:"fetch_retries"`
	Demoted      int64   `json:"demoted_blocks"`
	SlowdownPct  float64 `json:"slowdown_pct"` // vs the same mode fault-free

	// elapsed carries the raw cycle count from the cell to the slowdown
	// pass; it stays out of the JSON (ElapsedSec reports the time).
	elapsed sim.Time
}

// faultPlan builds the plan for one sweep cell: transient errors at the given
// rate with small bursts, plus a fixed low spike rate so the latency path is
// exercised too. No disk death — the sweep measures graceful degradation, so
// every run must still produce the fault-free output.
func faultPlan(rate float64) *fault.Plan {
	p := fault.NewPlan(faultSeed)
	p.Rate = rate
	p.Burst = 2
	p.SpikeRate = rate / 2
	p.SpikeFactor = 4
	return p
}

// faultsSweep runs the full (app, mode, rate) grid as one flat fan-out.
// Each cell builds its own seeded fault plan (plans are stateful — their
// RNG stream and burst maps advance per decision — so a plan must never be
// shared across cells). The rate-0 baseline each SlowdownPct needs is
// itself a cell; slowdowns are computed after the grid is assembled.
func faultsSweep(scale apps.Scale) ([]FaultPoint, error) {
	modes := []core.Mode{core.ModeNoHint, core.ModeSpeculating, core.ModeManual}
	nr := len(FaultRates)
	points, err := parMap(len(Apps)*len(modes)*nr, func(i int) (FaultPoint, error) {
		app := Apps[i/(len(modes)*nr)]
		mode := modes[i/nr%len(modes)]
		rate := FaultRates[i%nr]
		st, _, err := Run(app, mode, scale, func(c *core.Config) {
			if rate > 0 {
				c.Faults = faultPlan(rate)
			}
		})
		if err != nil {
			return FaultPoint{}, fmt.Errorf("bench: faults %v %v rate %g: %w", app, mode, rate, err)
		}
		if st.ReadErrors != 0 {
			return FaultPoint{}, fmt.Errorf("bench: faults %v %v rate %g: %d demand reads surfaced EIO without disk death",
				app, mode, rate, st.ReadErrors)
		}
		return FaultPoint{
			App:          app.String(),
			Mode:         mode.String(),
			Rate:         rate,
			ElapsedSec:   st.Seconds(),
			StallSec:     float64(st.StallCycles()) / core.CPUHz,
			FaultedReqs:  st.Disk.FaultedReqs,
			SpikedReqs:   st.Disk.SpikedReqs,
			FetchRetries: st.TipFaults.FetchRetries,
			Demoted:      st.TipFaults.DemotedBlocks,
			elapsed:      st.Elapsed,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// FaultRates[0] is the fault-free baseline of each (app, mode) group.
	for g := 0; g < len(points); g += nr {
		base := points[g].elapsed
		if base <= 0 {
			continue
		}
		for i := g; i < g+nr; i++ {
			points[i].SlowdownPct = 100 * float64(points[i].elapsed-base) / float64(base)
		}
	}
	return points, nil
}

// Faults is the graceful-degradation experiment: elapsed time and stall as
// transient disk faults grow more frequent, for each app in each mode. The
// reproduction target is the shape (see EXPERIMENTS.md): speculating tracks
// manual's degradation curve, and no fault rate changes any program's output.
func Faults(scale apps.Scale) (string, error) {
	points, err := faultsSweep(scale)
	if err != nil {
		return "", err
	}
	t := newTable("Faults: elapsed time (s) vs transient-error rate (4 disks, seeded injection)")
	header := []string{"Series"}
	for _, r := range FaultRates {
		header = append(header, fmt.Sprintf("%g", r))
	}
	t.row(header...)
	// points are grouped (app, mode) in sweep order, FaultRates per group.
	for i := 0; i < len(points); i += len(FaultRates) {
		group := points[i : i+len(FaultRates)]
		cells := []string{group[0].App + " " + group[0].Mode}
		for _, pt := range group {
			cells = append(cells, fmt.Sprintf("%.2f", pt.ElapsedSec))
		}
		t.row(cells...)
	}
	return t.String(), nil
}

// FaultsJSON runs the sweep and returns it machine-readable (make bench
// writes it to BENCH_faults.json).
func FaultsJSON(scale apps.Scale) ([]byte, error) {
	points, err := faultsSweep(scale)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(struct {
		Experiment string       `json:"experiment"`
		Seed       int64        `json:"seed"`
		Rates      []float64    `json:"rates"`
		Points     []FaultPoint `json:"points"`
	}{"faults", faultSeed, FaultRates, points}, "", "  ")
}
