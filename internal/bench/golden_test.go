package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the bench/golden canonical RunStats files")

// goldenDir is the committed canon, relative to this package's directory.
const goldenDir = "../../bench/golden"

func goldenModes() []core.Mode {
	return []core.Mode{core.ModeNoHint, core.ModeSpeculating, core.ModeManual, core.ModeStatic}
}

func goldenPath(app apps.App, mode core.Mode) string {
	name := fmt.Sprintf("%s_%s.json", strings.ToLower(app.String()), mode.String())
	return filepath.Join(goldenDir, name)
}

// goldenStats renders one cell's full RunStats as indented JSON — every
// counter, stall bucket, read-site map and the program output itself.
// Elapsed wall time is virtual (cycles), so the bytes are reproducible on
// any host.
func goldenStats(t *testing.T, app apps.App, mode core.Mode) []byte {
	t.Helper()
	st, _, err := Run(app, mode, apps.SweepScale(), nil)
	if err != nil {
		t.Fatalf("%v %v: %v", app, mode, err)
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenRunStats byte-compares every (app, mode) cell at sweep scale
// against the committed canon in bench/golden. Any behavioral change to the
// simulator — event ordering, cost model, cache policy, prefetch depth —
// shows up here as a diff; run `go test ./internal/bench -run Golden
// -update` to re-canonize on purpose and let review see the delta.
func TestGoldenRunStats(t *testing.T) {
	suite := append(append([]apps.App{}, Apps...), ModernApps...)
	for _, app := range suite {
		for _, mode := range goldenModes() {
			app, mode := app, mode
			t.Run(fmt.Sprintf("%v/%v", app, mode), func(t *testing.T) {
				got := goldenStats(t, app, mode)
				path := goldenPath(app, mode)
				if *updateGolden {
					if err := os.MkdirAll(goldenDir, 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("no golden file (run with -update to create it): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s diverged from the golden run (%d bytes vs %d).\n"+
						"If the change is intentional, re-canonize with:\n"+
						"  go test ./internal/bench -run Golden -update\nfirst difference at byte %d",
						path, len(got), len(want), firstDiff(got, want))
				}
			})
		}
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
