// Package spechint implements the paper's binary modification tool: it
// transforms a vm.Program the way SpecHint transformed Digital UNIX Alpha
// binaries (paper §3.3), producing an executable that can perform
// speculative execution for I/O hint generation.
//
// The transformation (all static):
//
//   - A complete copy of the text section is appended — the shadow code.
//     The speculating thread executes only within the shadow, which is what
//     lets the original thread's code path carry zero added instructions.
//   - In the shadow, every load and store is rewritten to its software-
//     copy-on-write-checked variant — except stack-pointer-relative
//     accesses, which stay unchecked because the speculating thread runs on
//     a private copy of the stack (§3.2.2's stack-copy optimization).
//   - Control transfers that can be statically resolved (branches, jmp,
//     call) are redirected into the shadow by rebasing their targets.
//   - Indirect transfers through jump tables in a recognized format are
//     rewritten to the checked jump-table op; all other indirect transfers
//     (jr, callr, ret) are routed through the dynamic handling routine,
//     which maps original-text targets into the shadow at run time and
//     refuses to let speculation leave the shadow.
//   - Calls to known output routines (print, printint), which cannot
//     influence future read accesses but can burn many cycles, are removed
//     from the shadow.
//
// Read calls are left in place; the speculative-execution runtime
// (internal/core) turns a read executed in speculative mode into the
// corresponding TIP hint, exactly as the paper's modified read stub did.
package spechint

import (
	"fmt"
	"time"

	"spechint/internal/vm"
)

// Options control the transformation.
type Options struct {
	// RemoveOutputRoutines removes print calls from the shadow code
	// (paper §3.3: printf, fprintf, flsbuf).
	RemoveOutputRoutines bool

	// StackCopyOptimization leaves SP-relative loads and stores unchecked,
	// relying on the private speculative stack (paper §3.2.2, footnote 3).
	// Disabling it models a transform without the optimization; every
	// memory access then pays the check cost.
	StackCopyOptimization bool

	// JumpTableLookback is how many instructions before an indirect jump
	// the recognizer scans for the table-load idiom. The real tool
	// recognized "a few compiler-dependent formats"; ours recognizes
	// ldw rT, table(rIdx) ... jr rT against registered JTAbsolute tables.
	JumpTableLookback int
}

// DefaultOptions mirror the paper's tool.
func DefaultOptions() Options {
	return Options{
		RemoveOutputRoutines:  true,
		StackCopyOptimization: true,
		JumpTableLookback:     4,
	}
}

// Stats describes one transformation, feeding the paper's Table 3.
type Stats struct {
	OrigInstrs   int
	TotalInstrs  int
	ChecksAdded  int // loads/stores rewritten to checked variants
	StackSkipped int // SP-relative accesses left unchecked
	StaticJumps  int // statically redirected direct transfers
	DynamicJumps int // indirect transfers routed through the handler
	TablesStatic int // jump-table jumps statically recognized
	OutputCalls  int // output-routine calls removed
	HintSites    int // read syscalls that become hint sites in the shadow

	OrigBytes  int64
	TotalBytes int64
	Elapsed    time.Duration
}

// SizeIncreasePct returns the executable growth percentage.
func (s Stats) SizeIncreasePct() float64 {
	if s.OrigBytes == 0 {
		return 0
	}
	return 100 * float64(s.TotalBytes-s.OrigBytes) / float64(s.OrigBytes)
}

// Transform returns a new program with shadow code appended. The input is
// not modified. Transforming an already-transformed program is an error.
func Transform(p *vm.Program, opt Options) (*vm.Program, Stats, error) {
	start := time.Now()
	var st Stats
	if err := p.Validate(); err != nil {
		return nil, st, err
	}
	if p.ShadowBase != 0 || p.OrigTextLen != 0 {
		return nil, st, fmt.Errorf("spechint: program already transformed")
	}
	for i, ins := range p.Text {
		if ins.Op.IsSpeculative() {
			return nil, st, fmt.Errorf("spechint: speculative op %v at %d in input", ins.Op, i)
		}
	}
	if opt.JumpTableLookback <= 0 {
		opt.JumpTableLookback = 1
	}

	n := int64(len(p.Text))
	out := &vm.Program{
		Text:        make([]vm.Instr, n, 2*n),
		Data:        append([]byte(nil), p.Data...),
		DataSize:    p.DataSize,
		Entry:       p.Entry,
		JumpTables:  append([]vm.JumpTable(nil), p.JumpTables...),
		Symbols:     make(map[string]int64, 2*len(p.Symbols)),
		DataSymbols: make(map[string]int64, len(p.DataSymbols)),
		OrigTextLen: n,
		ShadowBase:  n,
	}
	copy(out.Text, p.Text)
	for k, v := range p.Symbols {
		out.Symbols[k] = v
		out.Symbols[k+"$shadow"] = v + n
	}
	for k, v := range p.DataSymbols {
		out.DataSymbols[k] = v
	}

	// Index recognized (absolute-format) jump tables by address.
	absTables := make(map[int64]int) // data addr -> table index
	for i, jt := range p.JumpTables {
		if jt.Format == vm.JTAbsolute {
			absTables[jt.Addr] = i
		}
	}

	// recognizeTable reports whether the jr at original index i consumes a
	// value loaded from a recognized jump table within the lookback window.
	recognizeTable := func(i int, reg uint8) (int, bool) {
		lo := i - opt.JumpTableLookback
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			ins := p.Text[j]
			if ins.Op == vm.LDW && ins.Rd == reg {
				if ti, ok := absTables[ins.Imm]; ok {
					return ti, true
				}
				return 0, false // loaded from elsewhere
			}
			// Any other redefinition of the register breaks the idiom.
			if rd, writes := ins.WritesReg(); writes && rd == reg {
				return 0, false
			}
		}
		return 0, false
	}

	for i := int64(0); i < n; i++ {
		ins := p.Text[i] // copy
		switch {
		case ins.Op.IsLoad():
			if opt.StackCopyOptimization && ins.Rs1 == vm.SP {
				st.StackSkipped++
				break
			}
			if ins.Op == vm.LDB {
				ins.Op = vm.LDBS
			} else {
				ins.Op = vm.LDWS
			}
			st.ChecksAdded++

		case ins.Op.IsStore():
			if opt.StackCopyOptimization && ins.Rs1 == vm.SP {
				st.StackSkipped++
				break
			}
			if ins.Op == vm.STB {
				ins.Op = vm.STBS
			} else {
				ins.Op = vm.STWS
			}
			st.ChecksAdded++

		case ins.Op.IsBranch(), ins.Op == vm.JMP, ins.Op == vm.CALL:
			// Statically resolvable transfers are rebased into the shadow.
			ins.Imm += n
			st.StaticJumps++

		case ins.Op == vm.JR:
			if ti, ok := recognizeTable(int(i), ins.Rs1); ok {
				ins.Op = vm.JTR
				ins.Imm = int64(ti)
				st.TablesStatic++
			} else {
				ins.Op = vm.JRH
				st.DynamicJumps++
			}
		case ins.Op == vm.CALLR:
			ins.Op = vm.CALLRH
			st.DynamicJumps++
		case ins.Op == vm.RET:
			ins.Op = vm.RETH
			st.DynamicJumps++

		case ins.Op == vm.SYSCALL:
			switch ins.Imm {
			case vm.SysPrint, vm.SysPrintInt:
				if opt.RemoveOutputRoutines {
					ins = vm.Instr{Op: vm.NOP}
					st.OutputCalls++
				}
			case vm.SysRead:
				st.HintSites++
			}
		}
		out.Text = append(out.Text, ins)
	}

	st.OrigInstrs = int(n)
	st.TotalInstrs = len(out.Text)
	st.OrigBytes = n * vm.InstrBytes
	st.TotalBytes = int64(len(out.Text)) * vm.InstrBytes
	st.Elapsed = time.Since(start)
	if err := out.Validate(); err != nil {
		return nil, st, fmt.Errorf("spechint: transformed program invalid: %w", err)
	}
	return out, st, nil
}

// ShadowPC maps an original-text PC to its shadow equivalent. It panics on
// out-of-range input; callers hold validated PCs.
func ShadowPC(p *vm.Program, pc int64) int64 {
	if pc < 0 || pc >= p.OrigTextLen {
		panic(fmt.Sprintf("spechint: PC %d outside original text [0,%d)", pc, p.OrigTextLen))
	}
	return pc + p.ShadowBase
}
