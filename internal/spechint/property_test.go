package spechint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spechint/internal/vm"
)

// randomProgram builds a structurally valid program from a seed: a mix of
// ALU ops, memory ops, branches, calls and syscalls with in-range targets.
func randomProgram(seed int64, n int) *vm.Program {
	rng := rand.New(rand.NewSource(seed))
	if n < 4 {
		n = 4
	}
	text := make([]vm.Instr, n)
	reg := func() uint8 { return uint8(1 + rng.Intn(25)) }
	for i := range text {
		switch rng.Intn(12) {
		case 0:
			text[i] = vm.Instr{Op: vm.ADD, Rd: reg(), Rs1: reg(), Rs2: reg()}
		case 1:
			text[i] = vm.Instr{Op: vm.MOVI, Rd: reg(), Imm: rng.Int63n(1 << 16)}
		case 2:
			text[i] = vm.Instr{Op: vm.LDW, Rd: reg(), Rs1: reg(), Imm: int64(rng.Intn(256))}
		case 3:
			text[i] = vm.Instr{Op: vm.STW, Rs1: reg(), Rs2: reg(), Imm: int64(rng.Intn(256))}
		case 4:
			text[i] = vm.Instr{Op: vm.LDB, Rd: reg(), Rs1: vm.SP, Imm: -int64(rng.Intn(64))}
		case 5:
			text[i] = vm.Instr{Op: vm.STB, Rs1: vm.SP, Rs2: reg(), Imm: -int64(rng.Intn(64))}
		case 6:
			text[i] = vm.Instr{Op: vm.BEQ, Rs1: reg(), Rs2: reg(), Imm: int64(rng.Intn(n))}
		case 7:
			text[i] = vm.Instr{Op: vm.JMP, Imm: int64(rng.Intn(n))}
		case 8:
			text[i] = vm.Instr{Op: vm.CALL, Imm: int64(rng.Intn(n))}
		case 9:
			text[i] = vm.Instr{Op: vm.RET}
		case 10:
			text[i] = vm.Instr{Op: vm.SYSCALL, Imm: int64(rng.Intn(int(vm.SysCount)))}
		default:
			text[i] = vm.Instr{Op: vm.JR, Rs1: reg()}
		}
	}
	return &vm.Program{Text: text, DataSize: 4096}
}

// Property: for any program, the transform (1) leaves the original half
// bit-identical, (2) produces a shadow of equal length, (3) rewrites every
// non-SP load/store in the shadow to a checked variant, (4) rebases every
// direct control transfer into the shadow, and (5) leaves no plain indirect
// transfer in the shadow.
func TestPropertyTransformInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		p := randomProgram(seed, int(sz)%200+4)
		out, st, err := Transform(p, DefaultOptions())
		if err != nil {
			return false
		}
		n := out.OrigTextLen
		if int64(len(out.Text)) != 2*n || out.ShadowBase != n {
			return false
		}
		for i := int64(0); i < n; i++ {
			if out.Text[i] != p.Text[i] {
				return false // original half modified
			}
		}
		checks := 0
		for i := n; i < 2*n; i++ {
			ins := out.Text[i]
			orig := p.Text[i-n]
			switch orig.Op {
			case vm.LDB, vm.LDW, vm.STB, vm.STW:
				if orig.Rs1 == vm.SP {
					if ins.Op != orig.Op {
						return false // SP access must stay plain
					}
				} else {
					if !ins.Op.IsSpeculative() {
						return false // non-SP access must be checked
					}
					checks++
				}
			case vm.BEQ, vm.BNE, vm.BLT, vm.BGE, vm.JMP, vm.CALL:
				if ins.Imm != orig.Imm+n {
					return false // direct transfer not rebased
				}
				if ins.Imm < n || ins.Imm >= 2*n {
					return false // rebased target outside the shadow
				}
			case vm.JR, vm.CALLR, vm.RET:
				if ins.Op == vm.JR || ins.Op == vm.CALLR || ins.Op == vm.RET {
					return false // plain indirect transfer left in shadow
				}
			}
		}
		return checks == st.ChecksAdded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: transformation is deterministic.
func TestPropertyTransformDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(seed, 64)
		a, _, err1 := Transform(p, DefaultOptions())
		b, _, err2 := Transform(p, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Text {
			if a.Text[i] != b.Text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the transformed program always validates, and its data section
// and jump tables are preserved.
func TestPropertyTransformValidatesAndPreservesData(t *testing.T) {
	f := func(seed int64, data []byte) bool {
		p := randomProgram(seed, 32)
		p.Data = append([]byte(nil), data...)
		p.DataSize = int64(len(data)) + 128
		out, _, err := Transform(p, DefaultOptions())
		if err != nil {
			return false
		}
		if out.Validate() != nil {
			return false
		}
		if len(out.Data) != len(p.Data) {
			return false
		}
		for i := range out.Data {
			if out.Data[i] != p.Data[i] {
				return false
			}
		}
		return out.DataSize == p.DataSize && out.Entry == p.Entry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
