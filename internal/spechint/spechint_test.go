package spechint

import (
	"testing"

	"spechint/internal/asm"
	"spechint/internal/vm"
)

func mustTransform(t *testing.T, src string, opt Options) (*vm.Program, Stats) {
	t.Helper()
	p := asm.MustAssemble(src)
	out, st, err := Transform(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

const tinySrc = `
.data
buf: .space 64
.text
main:
    movi r1, buf
    ldw  r2, (r1)
    stw  r2, 8(r1)
    ldw  r3, 8(sp)
    stw  r3, -8(sp)
    beq  r2, r3, main
    call fn
    syscall read
    syscall print
    syscall exit
fn:
    ret
`

func TestTransformBasics(t *testing.T) {
	out, st := mustTransform(t, tinySrc, DefaultOptions())
	if out.OrigTextLen == 0 || out.ShadowBase != out.OrigTextLen {
		t.Fatalf("shadow layout: orig %d base %d", out.OrigTextLen, out.ShadowBase)
	}
	if int64(len(out.Text)) != 2*out.OrigTextLen {
		t.Fatalf("text len %d, want doubled %d", len(out.Text), 2*out.OrigTextLen)
	}
	// Original half is untouched.
	orig := asm.MustAssemble(tinySrc)
	for i, ins := range orig.Text {
		if out.Text[i] != ins {
			t.Fatalf("original instr %d modified: %v -> %v", i, ins, out.Text[i])
		}
	}
	if st.OrigInstrs != len(orig.Text) || st.TotalInstrs != len(out.Text) {
		t.Fatalf("stats counts: %+v", st)
	}
	if st.SizeIncreasePct() != 100 {
		t.Fatalf("size increase = %.1f%%, want 100%%", st.SizeIncreasePct())
	}
}

func TestInputNotMutated(t *testing.T) {
	p := asm.MustAssemble(tinySrc)
	textBefore := append([]vm.Instr(nil), p.Text...)
	if _, _, err := Transform(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if p.ShadowBase != 0 || p.OrigTextLen != 0 {
		t.Fatal("input program metadata mutated")
	}
	for i := range textBefore {
		if p.Text[i] != textBefore[i] {
			t.Fatal("input text mutated")
		}
	}
}

func TestChecksAndStackOptimization(t *testing.T) {
	out, st := mustTransform(t, tinySrc, DefaultOptions())
	base := out.ShadowBase
	// ldw r2,(r1) -> checked; stw r2,8(r1) -> checked.
	if out.Text[base+1].Op != vm.LDWS || out.Text[base+2].Op != vm.STWS {
		t.Fatalf("non-SP accesses not checked: %v %v", out.Text[base+1].Op, out.Text[base+2].Op)
	}
	// SP-relative stay plain.
	if out.Text[base+3].Op != vm.LDW || out.Text[base+4].Op != vm.STW {
		t.Fatalf("SP accesses were checked: %v %v", out.Text[base+3].Op, out.Text[base+4].Op)
	}
	if st.ChecksAdded != 2 || st.StackSkipped != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Without the optimization everything is checked.
	opt := DefaultOptions()
	opt.StackCopyOptimization = false
	_, st2 := mustTransform(t, tinySrc, opt)
	if st2.ChecksAdded != 4 || st2.StackSkipped != 0 {
		t.Fatalf("no-stack-opt stats: %+v", st2)
	}
}

func TestStaticRedirection(t *testing.T) {
	out, st := mustTransform(t, tinySrc, DefaultOptions())
	base := out.ShadowBase
	beq := out.Text[base+5]
	if beq.Op != vm.BEQ || beq.Imm != out.Symbols["main"]+base {
		t.Fatalf("beq not redirected: %+v", beq)
	}
	call := out.Text[base+6]
	if call.Op != vm.CALL || call.Imm != out.Symbols["fn"]+base {
		t.Fatalf("call not redirected: %+v", call)
	}
	if st.StaticJumps != 2 {
		t.Fatalf("StaticJumps = %d, want 2", st.StaticJumps)
	}
	// ret -> ret.h
	if out.Text[base+out.Symbols["fn"]].Op != vm.RETH {
		t.Fatal("ret not routed through handler")
	}
	if st.DynamicJumps != 1 {
		t.Fatalf("DynamicJumps = %d, want 1", st.DynamicJumps)
	}
}

func TestOutputRoutineRemoval(t *testing.T) {
	out, st := mustTransform(t, tinySrc, DefaultOptions())
	base := out.ShadowBase
	if out.Text[base+8].Op != vm.NOP {
		t.Fatalf("print not removed: %v", out.Text[base+8])
	}
	if st.OutputCalls != 1 || st.HintSites != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Read stays a read (runtime turns it into a hint).
	if out.Text[base+7].Op != vm.SYSCALL || out.Text[base+7].Imm != vm.SysRead {
		t.Fatalf("read rewritten: %v", out.Text[base+7])
	}
	// With removal disabled, print survives.
	opt := DefaultOptions()
	opt.RemoveOutputRoutines = false
	out2, st2 := mustTransform(t, tinySrc, opt)
	if out2.Text[base+8].Op != vm.SYSCALL || st2.OutputCalls != 0 {
		t.Fatal("print removed despite option off")
	}
}

const jtSrc = `
.data
tbl:  .jumptable absolute c0, c1, c2
utbl: .jumptable unknown c0, c1
.text
main:
    shli r10, r1, 3
    ldw  r11, tbl(r10)
    jr   r11
c0: nop
c1: nop
c2: nop
    ldw  r12, utbl(r10)
    jr   r12
    movi r13, c0
    jr   r13
    syscall exit
`

func TestJumpTableRecognition(t *testing.T) {
	out, st := mustTransform(t, jtSrc, DefaultOptions())
	base := out.ShadowBase
	// First jr: recognized table -> JTR with table index 0.
	jtr := out.Text[base+2]
	if jtr.Op != vm.JTR || jtr.Imm != 0 {
		t.Fatalf("recognized jr = %+v", jtr)
	}
	// Second jr: unknown-format table -> handler.
	if out.Text[base+7].Op != vm.JRH {
		t.Fatalf("unknown-table jr = %v", out.Text[base+7].Op)
	}
	// Third jr: movi defines the register (not a table load) -> handler.
	if out.Text[base+9].Op != vm.JRH {
		t.Fatalf("funcptr jr = %v", out.Text[base+9].Op)
	}
	if st.TablesStatic != 1 || st.DynamicJumps != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDoubleTransformRejected(t *testing.T) {
	p := asm.MustAssemble(tinySrc)
	out, _, err := Transform(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Transform(out, DefaultOptions()); err == nil {
		t.Fatal("double transform accepted")
	}
}

func TestSpeculativeOpsInInputRejected(t *testing.T) {
	p := &vm.Program{Text: []vm.Instr{{Op: vm.LDWS, Rd: 1, Rs1: 2}}}
	if _, _, err := Transform(p, DefaultOptions()); err == nil {
		t.Fatal("speculative input accepted")
	}
}

func TestInvalidInputRejected(t *testing.T) {
	if _, _, err := Transform(&vm.Program{}, DefaultOptions()); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestShadowSymbols(t *testing.T) {
	out, _ := mustTransform(t, tinySrc, DefaultOptions())
	if out.Symbols["fn$shadow"] != out.Symbols["fn"]+out.ShadowBase {
		t.Fatal("shadow symbol wrong")
	}
}

func TestShadowPC(t *testing.T) {
	out, _ := mustTransform(t, tinySrc, DefaultOptions())
	if ShadowPC(out, 3) != out.ShadowBase+3 {
		t.Fatal("ShadowPC wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ShadowPC out of range did not panic")
		}
	}()
	ShadowPC(out, out.OrigTextLen)
}

func TestElapsedAndBytesPopulated(t *testing.T) {
	_, st := mustTransform(t, tinySrc, DefaultOptions())
	if st.OrigBytes == 0 || st.TotalBytes != 2*st.OrigBytes {
		t.Fatalf("bytes: %+v", st)
	}
	if st.Elapsed < 0 {
		t.Fatal("negative elapsed")
	}
}

// The transformed program's original half must still run correctly.
type exitOS struct{}

func (exitOS) Syscall(m *vm.Machine, th *vm.Thread, code int64) vm.SysControl {
	if code == vm.SysExit {
		th.ExitCode = th.Regs[vm.R1]
		return vm.SysHalt
	}
	th.Regs[vm.R1] = 0
	return vm.SysDone
}

func TestTransformedOriginalStillRuns(t *testing.T) {
	src := `
.data
v: .word 17
.text
main:
    ldw r1, v
    addi r1, r1, 25
    syscall exit
`
	out, _ := mustTransform(t, src, DefaultOptions())
	m, err := vm.NewMachine(out, exitOS{}, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("orig", vm.Normal)
	_, stop := m.Run(th, 10_000)
	if stop != vm.StopHalted || th.ExitCode != 42 {
		t.Fatalf("stop %v exit %d err %v", stop, th.ExitCode, th.Err)
	}
}
