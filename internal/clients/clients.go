// Package clients generates deterministic synthetic client populations for
// the sharded TIP service (internal/cluster): N lightweight clients, each a
// Poisson process of sessions with exponential think times between reads and
// Zipf-skewed file popularity — the thousands-of-independent-consumers
// regime the GPU-readahead literature documents as readahead-hostile, in
// place of the hand-built benchmark processes.
//
// Determinism contract: Generate is a pure function of its Config. Every
// client draws from its own splitmix-seeded rand source, so the schedule is
// byte-identical for a given seed regardless of the generation fan-out width
// (internal/par assembles in index order) and of how many other clients the
// population holds.
package clients

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"spechint/internal/par"
)

// Config sizes and seeds a population. All times are virtual CPU cycles.
type Config struct {
	N        int // clients
	Sessions int // sessions per client

	// Corpus shape: Files files of FileBlocks blocks of BlockSize bytes.
	// Every session picks one file by Zipf popularity and reads it
	// sequentially from the start.
	Files      int
	FileBlocks int64
	BlockSize  int64

	// SessionBlocks is how many blocks one session reads (clamped to the
	// file size); ReadBlocks is the request size, so a session issues
	// ceil(SessionBlocks/ReadBlocks) read ops.
	SessionBlocks int64
	ReadBlocks    int64

	// ArrivalMean is the mean inter-arrival time between a client's session
	// arrivals (exponential — each client is a Poisson process); ThinkMean
	// is the mean think time between a read completing and the next being
	// issued. 1/ArrivalMean per client is the offered session rate.
	ArrivalMean int64
	ThinkMean   int64

	// Zipf popularity skew: file k is drawn with probability proportional
	// to 1/(ZipfV+k)^ZipfS. ZipfS must be > 1, ZipfV >= 1 (math/rand).
	ZipfS float64
	ZipfV float64

	Seed int64
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("clients: N = %d, want >= 1", c.N)
	case c.Sessions < 1:
		return fmt.Errorf("clients: Sessions = %d, want >= 1", c.Sessions)
	case c.Files < 1:
		return fmt.Errorf("clients: Files = %d, want >= 1", c.Files)
	case c.FileBlocks < 1 || c.BlockSize < 1:
		return fmt.Errorf("clients: FileBlocks = %d, BlockSize = %d, want >= 1", c.FileBlocks, c.BlockSize)
	case c.SessionBlocks < 1 || c.ReadBlocks < 1:
		return fmt.Errorf("clients: SessionBlocks = %d, ReadBlocks = %d, want >= 1", c.SessionBlocks, c.ReadBlocks)
	case c.ArrivalMean < 1 || c.ThinkMean < 0:
		return fmt.Errorf("clients: ArrivalMean = %d (want >= 1), ThinkMean = %d (want >= 0)", c.ArrivalMean, c.ThinkMean)
	case c.ZipfS <= 1 || c.ZipfV < 1:
		return fmt.Errorf("clients: ZipfS = %g (want > 1), ZipfV = %g (want >= 1)", c.ZipfS, c.ZipfV)
	}
	return nil
}

// ReadOp is one read request in a session: [Off, Off+N) bytes of the
// session's file, followed by Think cycles of client think time before the
// next op.
type ReadOp struct {
	Off   int64
	N     int64
	Think int64
}

// Session is one arrival: at absolute virtual time At the client opens file
// File and performs Reads in order. If the client's previous session is
// still running at At, the session queues behind it (open arrivals).
type Session struct {
	At    int64
	File  int
	Reads []ReadOp
}

// Client is one generated client schedule.
type Client struct {
	ID       int
	Sessions []Session
}

// Population is a generated client population plus precomputed totals.
type Population struct {
	Cfg     Config
	Clients []Client

	TotalSessions int
	TotalReads    int64
	TotalBlocks   int64
}

// Generate builds the population for cfg, fanning client generation out over
// the worker pool. The result is deterministic in cfg alone.
func Generate(cfg Config) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cls, err := par.MapErr(par.Workers(0), cfg.N, func(i int) (Client, error) {
		return genClient(cfg, i), nil
	})
	if err != nil {
		return nil, err
	}
	p := &Population{Cfg: cfg, Clients: cls}
	for _, c := range cls {
		p.TotalSessions += len(c.Sessions)
		for _, s := range c.Sessions {
			p.TotalReads += int64(len(s.Reads))
			for _, r := range s.Reads {
				first := r.Off / cfg.BlockSize
				last := (r.Off + r.N - 1) / cfg.BlockSize
				p.TotalBlocks += last - first + 1
			}
		}
	}
	return p, nil
}

// genClient generates client id's schedule from its own seeded source.
func genClient(cfg Config, id int) Client {
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed) + uint64(id)*0x9E3779B97F4A7C15))))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Files-1))

	nb := cfg.SessionBlocks
	if nb > cfg.FileBlocks {
		nb = cfg.FileBlocks
	}
	at := int64(0)
	sessions := make([]Session, cfg.Sessions)
	for s := range sessions {
		at += expCycles(rng, cfg.ArrivalMean)
		sess := Session{At: at, File: int(zipf.Uint64())}
		for b := int64(0); b < nb; b += cfg.ReadBlocks {
			n := cfg.ReadBlocks
			if b+n > nb {
				n = nb - b
			}
			sess.Reads = append(sess.Reads, ReadOp{
				Off:   b * cfg.BlockSize,
				N:     n * cfg.BlockSize,
				Think: expCycles(rng, cfg.ThinkMean),
			})
		}
		sessions[s] = sess
	}
	return Client{ID: id, Sessions: sessions}
}

// expCycles draws an exponential interval with the given mean, in cycles,
// clamped so a pathological tail draw cannot overflow virtual time.
func expCycles(rng *rand.Rand, mean int64) int64 {
	if mean <= 0 {
		return 0
	}
	v := rng.ExpFloat64() * float64(mean)
	if v > 1e15 {
		v = 1e15
	}
	return int64(v)
}

// splitmix64 is the SplitMix64 finalizer: a well-mixed 64-bit hash used to
// derive independent per-client seeds from (Seed, id).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fingerprint renders the whole schedule as a canonical text form; two
// populations are byte-identical iff their fingerprints are. Tests use it to
// pin the determinism contract.
func (p *Population) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d sessions=%d files=%d fb=%d bs=%d sb=%d rb=%d am=%d tm=%d s=%g v=%g seed=%d\n",
		p.Cfg.N, p.Cfg.Sessions, p.Cfg.Files, p.Cfg.FileBlocks, p.Cfg.BlockSize,
		p.Cfg.SessionBlocks, p.Cfg.ReadBlocks, p.Cfg.ArrivalMean, p.Cfg.ThinkMean,
		p.Cfg.ZipfS, p.Cfg.ZipfV, p.Cfg.Seed)
	for _, c := range p.Clients {
		for si, s := range c.Sessions {
			fmt.Fprintf(&b, "c%d.%d at=%d f=%d:", c.ID, si, s.At, s.File)
			for _, r := range s.Reads {
				fmt.Fprintf(&b, " %d+%d/%d", r.Off, r.N, r.Think)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FileShare returns the fraction of the population's sessions that open a
// file with index < topN — the empirical popularity mass of the corpus head.
func (p *Population) FileShare(topN int) float64 {
	if p.TotalSessions == 0 {
		return 0
	}
	hits := 0
	for _, c := range p.Clients {
		for _, s := range c.Sessions {
			if s.File < topN {
				hits++
			}
		}
	}
	return float64(hits) / float64(p.TotalSessions)
}

// ZipfShare is the analytic probability mass of the topN most popular files
// under the (s, v) Zipf distribution over files: the expected value of
// FileShare for a large population.
func ZipfShare(files, topN int, s, v float64) float64 {
	if files < 1 || topN < 1 {
		return 0
	}
	if topN > files {
		topN = files
	}
	var head, total float64
	for k := 0; k < files; k++ {
		w := math.Pow(v+float64(k), -s)
		total += w
		if k < topN {
			head += w
		}
	}
	return head / total
}
