package clients

import "testing"

func TestRetryPolicyValidate(t *testing.T) {
	good := RetryPolicy{MaxAttempts: 3, BaseBackoff: 100, MaxBackoff: 1000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	for _, bad := range []RetryPolicy{
		{MaxAttempts: 0},
		{MaxAttempts: 2, BaseBackoff: -1},
		{MaxAttempts: 2, BaseBackoff: 100, MaxBackoff: 50},
		{MaxAttempts: 2, Deadline: -5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid policy %+v accepted", bad)
		}
	}
}

// TestBackoffDeterministicAndCapped: the jittered backoff is a pure function
// of identity, grows exponentially pre-cap, and saturates at MaxBackoff*1.5.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 10, BaseBackoff: 1000, MaxBackoff: 8000, JitterSeed: 42}
	for attempt := 1; attempt <= 8; attempt++ {
		a := rp.Backoff(3, 1, 2, attempt)
		b := rp.Backoff(3, 1, 2, attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %d vs %d", attempt, a, b)
		}
		// Jitter is in [0.5, 1.5), around base<<(attempt-1) capped at 8000.
		pre := int64(1000) << (attempt - 1)
		if pre > 8000 {
			pre = 8000
		}
		if a < pre/2 || a >= pre+pre/2 {
			t.Errorf("attempt %d: backoff %d outside [%d, %d)", attempt, a, pre/2, pre+pre/2)
		}
	}
	if rp.Backoff(0, 0, 0, 0) != 0 {
		t.Error("attempt 0 should cost nothing")
	}
	if (RetryPolicy{MaxAttempts: 2}).Backoff(1, 1, 1, 3) != 0 {
		t.Error("zero BaseBackoff should disable backoff")
	}
}

// TestBackoffJitterDecorrelates: distinct clients (and distinct attempts) get
// distinct delays, so synchronized retry storms cannot form.
func TestBackoffJitterDecorrelates(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 4, BaseBackoff: 100_000, MaxBackoff: 100_000, JitterSeed: 7}
	seen := map[int64]bool{}
	for client := 0; client < 16; client++ {
		seen[rp.Backoff(client, 0, 0, 1)] = true
	}
	if len(seen) < 12 {
		t.Errorf("16 clients share only %d distinct backoffs; jitter too correlated", len(seen))
	}
}

// TestBreakerLifecycle walks the full closed -> open -> half-open -> closed
// machine, including a failed probe.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{TripAfter: 3, Cooldown: 1000})
	now := int64(0)

	// Closed: failures below the trip threshold keep it closed; a success
	// resets the run.
	b.OnFailure(now)
	b.OnFailure(now)
	b.OnSuccess()
	b.OnFailure(now)
	b.OnFailure(now)
	if got := b.State(now); got != BreakerClosed {
		t.Fatalf("after interrupted failure run: state %v, want closed", got)
	}
	b.OnFailure(now) // third consecutive: trips
	if got := b.State(now); got != BreakerOpen {
		t.Fatalf("after trip: state %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	if b.Allow(now) || b.Allow(now+999) {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// Half-open: exactly one probe.
	now = 1000
	if got := b.State(now); got != BreakerHalfOpen {
		t.Fatalf("after cooldown: state %v, want half-open", got)
	}
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow(now) {
		t.Fatal("half-open breaker admitted a second request while probing")
	}

	// Probe fails: open again for a full cooldown from now.
	b.OnFailure(now)
	if b.Allow(now + 999) {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}
	now = 2000
	if !b.Allow(now) {
		t.Fatal("second probe refused")
	}
	b.OnSuccess()
	if got := b.State(now); got != BreakerClosed {
		t.Fatalf("after successful probe: state %v, want closed", got)
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker refused a request")
	}
}

// TestBreakerDisabled: TripAfter 0 never blocks anything.
func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 10; i++ {
		b.OnFailure(int64(i))
	}
	if !b.Allow(100) || b.State(100) != BreakerClosed || b.Trips() != 0 {
		t.Error("disabled breaker tripped")
	}
}

func TestBreakerConfigValidate(t *testing.T) {
	if err := (BreakerConfig{TripAfter: 3, Cooldown: 10}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (BreakerConfig{TripAfter: 3}).Validate(); err == nil {
		t.Error("TripAfter without Cooldown accepted")
	}
	if err := (BreakerConfig{TripAfter: -1}).Validate(); err == nil {
		t.Error("negative TripAfter accepted")
	}
	if err := (BreakerConfig{}).Validate(); err != nil {
		t.Errorf("zero (disabled) config rejected: %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
