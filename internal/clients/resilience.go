package clients

// Client-side resilience policy: the pure decision machinery a cluster client
// wires between itself and a shard that can shed, error, or die. Two pieces
// live here, both free of clocks and I/O so they are unit-testable and
// deterministic by construction:
//
//   - RetryPolicy: capped exponential backoff with seeded multiplicative
//     jitter and a per-operation virtual-time deadline. The jitter stream is
//     a pure function of (seed, client, session, op, attempt), so a retry
//     schedule is byte-identical across runs and across parallel fan-out
//     widths — the same contract the population generator keeps.
//
//   - Breaker: a per-shard circuit breaker. TripAfter consecutive failures
//     open it; after Cooldown cycles it half-opens and admits exactly one
//     probe; the probe's outcome either closes it or re-opens it for another
//     cooldown. While open, the client fails fast locally instead of adding
//     retry load to a shard that is already drowning.

import "fmt"

// RetryPolicy decides how a client reacts to SHED/EIO/DEAD responses.
// All durations are virtual CPU cycles.
type RetryPolicy struct {
	// MaxAttempts bounds the total sends of one request part (first try
	// included). 1 means never retry; 0 is invalid.
	MaxAttempts int

	// BaseBackoff is the pre-jitter backoff after the first failure; each
	// further failure doubles it up to MaxBackoff (capped exponential).
	BaseBackoff int64
	MaxBackoff  int64

	// Deadline bounds one read operation end to end: once a part's next
	// retry could not be sent before issueAt+Deadline, the client gives up
	// and the operation fails. 0 disables the deadline.
	Deadline int64

	// JitterSeed seeds the deterministic jitter stream.
	JitterSeed int64
}

// Validate reports a policy error, if any.
func (rp RetryPolicy) Validate() error {
	switch {
	case rp.MaxAttempts < 1:
		return fmt.Errorf("clients: retry MaxAttempts = %d, want >= 1", rp.MaxAttempts)
	case rp.BaseBackoff < 0 || rp.MaxBackoff < 0 || rp.Deadline < 0:
		return fmt.Errorf("clients: negative retry BaseBackoff, MaxBackoff or Deadline")
	case rp.MaxBackoff > 0 && rp.BaseBackoff > rp.MaxBackoff:
		return fmt.Errorf("clients: retry BaseBackoff %d > MaxBackoff %d", rp.BaseBackoff, rp.MaxBackoff)
	}
	return nil
}

// Backoff returns the jittered delay before retry number `attempt` (attempt 1
// is the first retry, i.e. the second send) of op `op` of session `session`
// of client `client`. The pre-jitter delay doubles per attempt from
// BaseBackoff, saturating at MaxBackoff; the jitter multiplies it by a
// deterministic factor in [0.5, 1.5) drawn from the policy's seed and the
// full request identity, so concurrent clients never synchronize their
// retries (no retry storms) yet every run replays identically.
func (rp RetryPolicy) Backoff(client, session, op, attempt int) int64 {
	if attempt < 1 || rp.BaseBackoff == 0 {
		return 0
	}
	d := rp.BaseBackoff
	for i := 1; i < attempt; i++ {
		d <<= 1
		if rp.MaxBackoff > 0 && d >= rp.MaxBackoff {
			d = rp.MaxBackoff
			break
		}
	}
	if rp.MaxBackoff > 0 && d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	h := splitmix64(uint64(rp.JitterSeed) ^
		uint64(client)*0x9E3779B97F4A7C15 ^
		uint64(session)*0xD1B54A32D192ED03 ^
		uint64(op)*0x94D049BB133111EB ^
		uint64(attempt)*0xBF58476D1CE4E5B9)
	// Map the hash to [0.5, 1.5): 53 uniform bits over a unit interval.
	jitter := 0.5 + float64(h>>11)/float64(1<<53)
	return int64(float64(d) * jitter)
}

// BreakerConfig shapes a circuit breaker.
type BreakerConfig struct {
	// TripAfter is the consecutive-failure count that opens the breaker.
	// 0 disables the breaker entirely (Allow always says yes).
	TripAfter int

	// Cooldown is how long the breaker stays open before half-opening, in
	// cycles.
	Cooldown int64
}

// Validate reports a breaker configuration error, if any.
func (bc BreakerConfig) Validate() error {
	switch {
	case bc.TripAfter < 0:
		return fmt.Errorf("clients: breaker TripAfter = %d, want >= 0", bc.TripAfter)
	case bc.TripAfter > 0 && bc.Cooldown < 1:
		return fmt.Errorf("clients: breaker Cooldown = %d, want >= 1 when TripAfter > 0", bc.Cooldown)
	}
	return nil
}

// BreakerState is the observable state of a Breaker.
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for diagnostics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// Breaker is one client's circuit breaker toward one shard. The zero value
// with a zero config is a breaker that never trips. Not safe for concurrent
// use; each client owns its own breakers (a client is a single strand of the
// deterministic event loop).
type Breaker struct {
	cfg      BreakerConfig
	fails    int   // consecutive failures while closed
	openAt   int64 // when the breaker last opened
	reopenAt int64 // when it may half-open
	open     bool
	probing  bool // half-open probe in flight

	trips int64 // lifetime trip count
}

// NewBreaker returns a closed breaker with the given config.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips }

// State reports the breaker's state as of virtual time now.
func (b *Breaker) State(now int64) BreakerState {
	switch {
	case !b.open:
		return BreakerClosed
	case b.probing || now >= b.reopenAt:
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}

// Allow reports whether a request may be sent at time now. In the half-open
// state the first Allow admits a single probe; further requests are refused
// until the probe's outcome arrives via OnSuccess or OnFailure.
func (b *Breaker) Allow(now int64) bool {
	if b.cfg.TripAfter <= 0 || !b.open {
		return true
	}
	if b.probing || now < b.reopenAt {
		return false
	}
	b.probing = true
	return true
}

// OnSuccess records a successful response: a closed breaker clears its
// failure run; a half-open probe's success closes the breaker.
func (b *Breaker) OnSuccess() {
	b.fails = 0
	b.open = false
	b.probing = false
}

// OnFailure records a failed response (shed, error, or dead shard) at time
// now: a closed breaker trips once the run reaches TripAfter; a half-open
// probe's failure re-opens for another cooldown.
func (b *Breaker) OnFailure(now int64) {
	if b.cfg.TripAfter <= 0 {
		return
	}
	if b.open {
		// Probe failed (or a straggler reply landed while open): back to a
		// full cooldown from now.
		b.probing = false
		b.openAt = now
		b.reopenAt = now + b.cfg.Cooldown
		return
	}
	b.fails++
	if b.fails >= b.cfg.TripAfter {
		b.open = true
		b.probing = false
		b.fails = 0
		b.openAt = now
		b.reopenAt = now + b.cfg.Cooldown
		b.trips++
	}
}
