package clients

import (
	"math"
	"testing"
)

func testCfg() Config {
	return Config{
		N: 40, Sessions: 5,
		Files: 200, FileBlocks: 64, BlockSize: 8192,
		SessionBlocks: 24, ReadBlocks: 8,
		ArrivalMean: 10_000_000, ThinkMean: 500_000,
		ZipfS: 1.2, ZipfV: 1, Seed: 42,
	}
}

// TestGenerateDeterministic: same seed, byte-identical schedules — the
// contract tipbench's cross-width determinism rests on.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Fatalf("same seed produced different schedules (%d vs %d bytes)", len(fa), len(fb))
	}

	cfg := testCfg()
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == fa {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestClientSchedulesIndependent: a client's schedule depends only on
// (seed, id), never on the population size, so growing N extends the
// population without perturbing existing clients.
func TestClientSchedulesIndependent(t *testing.T) {
	small, err := Generate(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.N *= 2
	big, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Clients {
		a, b := small.Clients[i], big.Clients[i]
		if len(a.Sessions) != len(b.Sessions) {
			t.Fatalf("client %d session count changed with N", i)
		}
		for s := range a.Sessions {
			if a.Sessions[s].At != b.Sessions[s].At || a.Sessions[s].File != b.Sessions[s].File {
				t.Fatalf("client %d session %d changed with N", i, s)
			}
		}
	}
}

// TestZipfSkew: the head of the corpus receives close to its analytic
// popularity mass — the top 1% of files must dominate in proportion to the
// Zipf law, not uniformly.
func TestZipfSkew(t *testing.T) {
	cfg := testCfg()
	cfg.N, cfg.Sessions = 400, 10 // 4000 draws tightens the estimate
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topN := cfg.Files / 100 // top 1%
	if topN < 1 {
		topN = 1
	}
	got := p.FileShare(topN)
	want := ZipfShare(cfg.Files, topN, cfg.ZipfS, cfg.ZipfV)
	uniform := float64(topN) / float64(cfg.Files)
	if want <= 2*uniform {
		t.Fatalf("analytic share %.4f not skewed vs uniform %.4f; bad test parameters", want, uniform)
	}
	if math.Abs(got-want) > 0.3*want {
		t.Errorf("top-%d share = %.4f, want %.4f ±30%%", topN, got, want)
	}
}

// TestSessionShape: reads tile [0, SessionBlocks) in ReadBlocks chunks.
func TestSessionShape(t *testing.T) {
	p, err := Generate(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Cfg
	for _, c := range p.Clients {
		prevAt := int64(0)
		for _, s := range c.Sessions {
			if s.At < prevAt {
				t.Fatalf("client %d arrivals go backwards", c.ID)
			}
			prevAt = s.At
			if s.File < 0 || s.File >= cfg.Files {
				t.Fatalf("client %d file %d out of corpus", c.ID, s.File)
			}
			wantOps := int((cfg.SessionBlocks + cfg.ReadBlocks - 1) / cfg.ReadBlocks)
			if len(s.Reads) != wantOps {
				t.Fatalf("client %d session has %d ops, want %d", c.ID, len(s.Reads), wantOps)
			}
			next := int64(0)
			for _, r := range s.Reads {
				if r.Off != next || r.N < 1 || r.Think < 0 {
					t.Fatalf("client %d bad op %+v at expected off %d", c.ID, r, next)
				}
				next = r.Off + r.N
			}
			if next != cfg.SessionBlocks*cfg.BlockSize {
				t.Fatalf("client %d session covers %d bytes, want %d", c.ID, next, cfg.SessionBlocks*cfg.BlockSize)
			}
		}
	}
	if p.TotalSessions != cfg.N*cfg.Sessions {
		t.Errorf("TotalSessions = %d, want %d", p.TotalSessions, cfg.N*cfg.Sessions)
	}
	if p.TotalBlocks != int64(p.TotalSessions)*cfg.SessionBlocks {
		t.Errorf("TotalBlocks = %d, want %d", p.TotalBlocks, int64(p.TotalSessions)*cfg.SessionBlocks)
	}
}

// TestValidate rejects the obvious misconfigurations.
func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.Sessions = 0 },
		func(c *Config) { c.Files = 0 },
		func(c *Config) { c.FileBlocks = 0 },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.SessionBlocks = 0 },
		func(c *Config) { c.ReadBlocks = 0 },
		func(c *Config) { c.ArrivalMean = 0 },
		func(c *Config) { c.ThinkMean = -1 },
		func(c *Config) { c.ZipfS = 1 },
		func(c *Config) { c.ZipfV = 0.5 },
	}
	for i, mut := range bad {
		cfg := testCfg()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
