package multi

import (
	"math"
	"testing"

	"spechint/internal/apps"
	"spechint/internal/core"
	"spechint/internal/fault"
)

// mixedSpecs is the standard mixed workload: one process per application.
func mixedSpecs(n int, mode core.Mode) []ProcSpec {
	mix := []apps.App{apps.Agrep, apps.XDataSlice, apps.Postgres, apps.Gnuld}
	specs := make([]ProcSpec, n)
	for i := range specs {
		specs[i] = ProcSpec{App: mix[i%len(mix)], Mode: mode}
	}
	return specs
}

func runGroup(t *testing.T, cfg Config, specs []ProcSpec) *Result {
	t.Helper()
	g, err := NewGroup(cfg, apps.TestScale(), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGroupDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	specs := mixedSpecs(3, core.ModeSpeculating)
	a := runGroup(t, cfg, specs)
	b := runGroup(t, cfg, specs)

	if a.Makespan != b.Makespan {
		t.Fatalf("makespan differs across identical runs: %d vs %d", a.Makespan, b.Makespan)
	}
	if a.Disk != b.Disk {
		t.Errorf("disk stats differ: %+v vs %+v", a.Disk, b.Disk)
	}
	if a.Tip != b.Tip {
		t.Errorf("tip stats differ: %+v vs %+v", a.Tip, b.Tip)
	}
	for i := range a.Procs {
		sa, sb := a.Procs[i].Stats, b.Procs[i].Stats
		if sa.Elapsed != sb.Elapsed || sa.ReadCalls != sb.ReadCalls || sa.Restarts != sb.Restarts {
			t.Errorf("proc %d differs: elapsed %d/%d reads %d/%d restarts %d/%d",
				i, sa.Elapsed, sb.Elapsed, sa.ReadCalls, sb.ReadCalls, sa.Restarts, sb.Restarts)
		}
	}
}

// TestSpeculationBeatsOriginalAtN4 is the ISSUE's acceptance run: a 4-process
// mixed workload on the 12 MB shared cache. The speculating builds must
// finish sooner in aggregate than the originals, and no process's hinted
// blocks may be evicted by another process's unhinted LRU traffic.
func TestSpeculationBeatsOriginalAtN4(t *testing.T) {
	cfg := DefaultConfig() // testbed: 4 disks, 12 MB cache
	orig := runGroup(t, cfg, mixedSpecs(4, core.ModeNoHint))
	spec := runGroup(t, cfg, mixedSpecs(4, core.ModeSpeculating))

	var origAgg, specAgg int64
	for i := range orig.Procs {
		origAgg += int64(orig.Procs[i].Stats.Elapsed)
		specAgg += int64(spec.Procs[i].Stats.Elapsed)
	}
	if specAgg >= origAgg {
		t.Errorf("aggregate elapsed: speculating %d >= original %d", specAgg, origAgg)
	}
	if spec.Makespan >= orig.Makespan {
		t.Errorf("makespan: speculating %d >= original %d", spec.Makespan, orig.Makespan)
	}

	// The isolation contract, across both runs: unhinted traffic never took
	// another process's hinted block.
	if n := orig.Cache.UnhintedCrossEvicts; n != 0 {
		t.Errorf("original run: %d unhinted cross-owner evictions", n)
	}
	if n := spec.Cache.UnhintedCrossEvicts; n != 0 {
		t.Errorf("speculating run: %d unhinted cross-owner evictions", n)
	}

	// Sanity: the speculating run actually speculated.
	var restarts, hints int64
	for _, p := range spec.Procs {
		restarts += p.Stats.Restarts
		hints += p.Stats.Tip.HintCalls
	}
	if hints == 0 {
		t.Error("speculating group issued no hints")
	}
	_ = restarts
}

func TestGroupOutputsMatchSolo(t *testing.T) {
	// Each process of a group must compute the same answer it computes when
	// run alone (same prefix and seeds via FirstProcIndex).
	cfg := DefaultConfig()
	group := runGroup(t, cfg, mixedSpecs(2, core.ModeSpeculating))
	for i, p := range group.Procs {
		solo := cfg
		solo.FirstProcIndex = i
		sres := runGroup(t, solo, []ProcSpec{{App: p.App, Mode: core.ModeSpeculating}})
		if sres.Procs[0].Stats.Output != p.Stats.Output {
			t.Errorf("p%d (%v) output differs between group and solo run", i, p.App)
		}
		if sres.Procs[0].Stats.ExitCode != p.Stats.ExitCode {
			t.Errorf("p%d (%v) exit code differs: solo %d group %d",
				i, p.App, sres.Procs[0].Stats.ExitCode, p.Stats.ExitCode)
		}
	}
}

func TestSlowdownUnderContention(t *testing.T) {
	// Turnaround under contention must not be better than solo (the group
	// shares one CPU), and the group must beat running the procs back to
	// back (otherwise multiprogramming overlapped nothing).
	cfg := DefaultConfig()
	group := runGroup(t, cfg, mixedSpecs(3, core.ModeNoHint))
	var soloSum int64
	for i, p := range group.Procs {
		solo := cfg
		solo.FirstProcIndex = i
		sres := runGroup(t, solo, []ProcSpec{{App: p.App, Mode: core.ModeNoHint}})
		soloT, groupT := sres.Procs[0].Stats.Elapsed, p.Stats.Elapsed
		soloSum += int64(soloT)
		if groupT < soloT {
			t.Errorf("p%d (%v) ran faster under contention: %d < %d", i, p.App, groupT, soloT)
		}
	}
	if int64(group.Makespan) >= soloSum {
		t.Errorf("makespan %d >= serial sum %d: no overlap from multiprogramming", group.Makespan, soloSum)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{2, 2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal values: %v, want 1", got)
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single dominant: %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty: want 0")
	}
	if JainIndex([]float64{0, 0, 0}) != 0 {
		t.Error("all-zero: want 0 (degenerate, not a divide-by-zero)")
	}
	if got := JainIndex([]float64{5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("single value: %v, want 1", got)
	}
}

func TestNewGroupRejectsEmpty(t *testing.T) {
	if _, err := NewGroup(DefaultConfig(), apps.TestScale(), nil); err == nil {
		t.Fatal("empty process list accepted")
	}
}

// TestGroupFaultContainment: one fault schedule shared by every process in
// the group must not change any process's output, and the whole faulted run
// stays deterministic.
func TestGroupFaultContainment(t *testing.T) {
	specs := mixedSpecs(3, core.ModeSpeculating)
	base := runGroup(t, DefaultConfig(), specs)

	faulted := func() *Result {
		cfg := DefaultConfig()
		// Plans are stateful: each run parses a fresh one.
		p, err := fault.Parse("seed=17,rate=0.03,burst=2,spike=0.02x4")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = p
		return runGroup(t, cfg, specs)
	}
	a := faulted()
	if a.Disk.FaultedReqs == 0 {
		t.Fatal("plan injected nothing; the test is vacuous")
	}
	for i := range a.Procs {
		fa, fb := a.Procs[i].Stats, base.Procs[i].Stats
		if fa.Output != fb.Output || fa.ExitCode != fb.ExitCode {
			t.Errorf("proc %d output changed under recoverable faults (exit %d vs %d)",
				i, fa.ExitCode, fb.ExitCode)
		}
		if fa.ReadErrors != 0 {
			t.Errorf("proc %d surfaced %d EIO reads with no disk death", i, fa.ReadErrors)
		}
	}
	b := faulted()
	if a.Makespan != b.Makespan || a.Disk != b.Disk {
		t.Errorf("faulted group diverged: makespan %d vs %d", a.Makespan, b.Makespan)
	}
}
