// Package multi is the multiprogramming layer: it runs N concurrent
// processes — any mix of the benchmark applications in any mode — on one
// shared substrate (one virtual clock, one disk array, one file system, one
// TIP manager and block cache), which is the regime the paper's TIP was
// actually built for.
//
// Scheduling is deterministic round-robin over the original threads with a
// fixed CPU quantum. Speculating threads preserve the paper's strict-priority
// contract *globally*: speculation consumes cycles only when every original
// thread in the group is blocked, and it is preempted mid-slice the moment
// any original thread wakes. Each process holds its own TIP client, so hint
// streams, accuracy estimates and CANCEL_ALLs stay per process while the
// cache arbitrates buffers between them by cost-benefit (see internal/tip and
// internal/cache).
package multi

import (
	"fmt"
	"strings"

	"spechint/internal/apps"
	"spechint/internal/cache"
	"spechint/internal/core"
	"spechint/internal/disk"
	"spechint/internal/fault"
	"spechint/internal/fsim"
	"spechint/internal/obs"
	"spechint/internal/sim"
	"spechint/internal/tip"
	"spechint/internal/workload"
)

// ProcSpec names one process of the group.
type ProcSpec struct {
	App  apps.App
	Mode core.Mode
}

func (p ProcSpec) String() string { return fmt.Sprintf("%v/%v", p.App, p.Mode) }

// Config assembles a process group.
type Config struct {
	Disk disk.Config // the shared array
	TIP  tip.Config  // the shared manager + cache

	// Quantum is the round-robin CPU slice in cycles (default 100_000,
	// ~0.4 ms of testbed time).
	Quantum int64

	// SeedStep offsets each process's workload seeds so N processes run N
	// distinct workload instances (default 101).
	SeedStep int64

	// FirstProcIndex numbers the group's processes starting here (default
	// 0). Solo baseline runs use it to rebuild process i's exact workload
	// — same prefix, same seeds — in a group of one.
	FirstProcIndex int

	// MaxCycles aborts a runaway simulation. Zero means no limit.
	MaxCycles int64

	// Faults, when non-nil, is installed on the shared disk array: one fault
	// schedule hits every process in the group (a disk death degrades the
	// whole substrate, not one victim).
	Faults *fault.Plan

	// Obs, when non-nil, records the group's cross-layer trace: each process
	// gets its own lane (named like "p0:gnuld/speculating") alongside the
	// shared tip, cache and per-disk lanes, and the substrate gauges are
	// sampled on virtual-time ticks. Tracing never changes cycle counts.
	Obs *obs.Trace
}

// DefaultConfig mirrors the paper's testbed: four disks, 12 MB shared cache.
func DefaultConfig() Config {
	return Config{
		Disk:     core.TestbedDisk(4),
		TIP:      tip.DefaultConfig(),
		Quantum:  100_000,
		SeedStep: 101,
	}
}

// proc is one scheduled process.
type proc struct {
	spec  ProcSpec
	name  string
	sys   *core.System
	stats *core.RunStats // set when the process exits
}

// Group is a configured multiprogramming run.
type Group struct {
	cfg   Config
	sub   *core.Substrate
	procs []*proc

	rrOrig int // round-robin pointers (original threads, speculating threads)
	rrSpec int
}

// NewGroup builds the shared substrate, lays each process's workload onto
// the shared file system (disjoint per-process file sets, offset seeds), and
// instantiates one core.System per process.
func NewGroup(cfg Config, scale apps.Scale, specs []ProcSpec) (*Group, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multi: empty process list")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100_000
	}
	if cfg.SeedStep == 0 {
		cfg.SeedStep = 101
	}

	fs := fsim.New(cfg.Disk.BlockSize)
	workload.SetBenchLayout(fs)
	sub, err := core.NewSubstrate(cfg.Disk, cfg.TIP, fs)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		sub.InstallFaults(cfg.Faults)
	}
	if cfg.Obs != nil {
		sub.InstallObs(cfg.Obs)
	}
	g := &Group{cfg: cfg, sub: sub}

	for i, spec := range specs {
		idx := cfg.FirstProcIndex + i
		ps := scale.WithProcess(idx, cfg.SeedStep)
		b, err := apps.BuildOn(fs, spec.App, ps)
		if err != nil {
			return nil, fmt.Errorf("multi: p%d %v: %w", idx, spec, err)
		}
		var prog = b.Original
		switch spec.Mode {
		case core.ModeSpeculating:
			prog = b.Transformed
		case core.ModeManual:
			prog = b.Manual
		}
		ccfg := core.DefaultConfig(spec.Mode)
		ccfg.Disk = cfg.Disk // documented as ignored by NewOn; kept coherent
		ccfg.TIP = cfg.TIP
		ccfg.MaxCycles = 0 // the group enforces its own limit
		name := fmt.Sprintf("p%d:%v", idx, spec)
		sys, err := core.NewOn(sub, ccfg, prog, name)
		if err != nil {
			return nil, fmt.Errorf("multi: p%d %v: %w", idx, spec, err)
		}
		sys.SetPreempt(g.anyOrigReady)
		g.procs = append(g.procs, &proc{spec: spec, name: name, sys: sys})
	}
	return g, nil
}

// anyOrigReady is the group-wide strict-priority test: speculation must
// yield whenever ANY original thread can use the CPU.
func (g *Group) anyOrigReady() bool {
	for _, p := range g.procs {
		if !p.sys.Done() && p.sys.OrigReady() {
			return true
		}
	}
	return false
}

func (g *Group) allDone() bool {
	for _, p := range g.procs {
		if !p.sys.Done() {
			return false
		}
	}
	return true
}

// nextReadyOrig picks the next Ready original thread in round-robin order,
// advancing the pointer past the pick.
func (g *Group) nextReadyOrig() *proc {
	n := len(g.procs)
	for k := 0; k < n; k++ {
		p := g.procs[(g.rrOrig+k)%n]
		if !p.sys.Done() && p.sys.OrigReady() {
			g.rrOrig = (g.rrOrig + k + 1) % n
			return p
		}
	}
	return nil
}

// nextRunnableSpec picks the next runnable speculating thread round-robin.
func (g *Group) nextRunnableSpec() *proc {
	n := len(g.procs)
	for k := 0; k < n; k++ {
		p := g.procs[(g.rrSpec+k)%n]
		if !p.sys.Done() && p.sys.SpecRunnable() {
			g.rrSpec = (g.rrSpec + k + 1) % n
			return p
		}
	}
	return nil
}

// retire finalizes a process the moment it exits, releasing its hint stream
// so its cache partition redistributes to the survivors.
func (g *Group) retire(p *proc) {
	if p.stats != nil {
		return
	}
	p.stats = p.sys.Finalize()
	p.sys.TIPClient().Close()
}

// Run executes the group to completion. Scheduling policy, in priority
// order every iteration: (1) dispatch due events, (2) the next Ready
// original thread gets a quantum, (3) only if no original thread anywhere
// can run, the next runnable speculating thread gets the idle gap, (4)
// otherwise advance the clock.
func (g *Group) Run() (*Result, error) {
	for !g.allDone() {
		g.cfg.Obs.Tick(g.sub.Clk.Now())
		if g.cfg.MaxCycles > 0 && int64(g.sub.Clk.Now()) > g.cfg.MaxCycles {
			return nil, fmt.Errorf("multi: exceeded MaxCycles %d", g.cfg.MaxCycles)
		}

		budget := g.cfg.Quantum
		if at, ok := g.sub.Clk.PeekTime(); ok {
			gap := int64(at - g.sub.Clk.Now())
			if gap <= 0 {
				g.sub.Clk.RunTick()
				continue
			}
			if gap < budget {
				budget = gap
			}
		}

		if p := g.nextReadyOrig(); p != nil {
			if _, err := p.sys.StepOrig(budget); err != nil {
				return nil, fmt.Errorf("multi: %s: %w", p.name, err)
			}
			if p.sys.Done() {
				g.retire(p)
			}
			continue
		}
		if p := g.nextRunnableSpec(); p != nil {
			if _, err := p.sys.StepSpec(budget); err != nil {
				return nil, fmt.Errorf("multi: %s: %w", p.name, err)
			}
			continue
		}
		if !g.sub.Clk.RunTick() {
			return nil, g.diagnoseDeadlock()
		}
	}

	g.sub.TIP.FinishRun()
	res := &Result{Makespan: g.sub.Clk.Now()}
	res.Tip = g.sub.TIP.Stats()
	res.Cache = g.sub.TIP.Cache().Stats()
	res.Disk = g.sub.Arr.Stats()
	for _, p := range g.procs {
		res.Procs = append(res.Procs, ProcResult{
			Name: p.name, App: p.spec.App, Mode: p.spec.Mode, Stats: p.stats,
		})
	}
	return res, nil
}

// diagnoseDeadlock reports the event queue draining with processes still
// blocked, carrying each live process's own watchdog diagnostic.
func (g *Group) diagnoseDeadlock() error {
	var sb strings.Builder
	sb.WriteString("multi: deadlock — no thread runnable, no pending events\n")
	for _, p := range g.procs {
		if p.sys.Done() {
			continue
		}
		fmt.Fprintf(&sb, "%v\n", p.sys.Diagnose("blocked at group deadlock"))
	}
	return fmt.Errorf("%s", strings.TrimRight(sb.String(), "\n"))
}

// ProcResult is one process's outcome. Stats.Elapsed is the process's own
// completion time (its turnaround under contention); Stats.Tip is its private
// hint stream.
type ProcResult struct {
	Name  string
	App   apps.App
	Mode  core.Mode
	Stats *core.RunStats
}

// Result is the group outcome.
type Result struct {
	Procs    []ProcResult
	Makespan sim.Time // completion time of the last process

	// Substrate-wide aggregates.
	Tip   tip.Stats
	Cache cache.Stats
	Disk  disk.Stats
}

// Seconds converts the makespan to testbed seconds.
func (r *Result) Seconds() float64 { return float64(r.Makespan) / core.CPUHz }

// Throughput returns completed processes per testbed second.
func (r *Result) Throughput() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(len(r.Procs)) / s
}

// JainIndex is Jain's fairness index over xs: (Σx)² / (n·Σx²), 1.0 when all
// values are equal, approaching 1/n when one dominates. The multi experiment
// applies it to per-process slowdowns.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
