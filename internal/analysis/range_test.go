package analysis

import (
	"testing"

	"spechint/internal/asm"
	"spechint/internal/vm"
)

func TestIntervalOps(t *testing.T) {
	if got := Span(1, 5).Join(Span(3, 9)); got != Span(1, 9) {
		t.Errorf("join = %v", got)
	}
	if got := Span(1, 5).meet(Span(3, 9)); got != Span(3, 5) {
		t.Errorf("meet = %v", got)
	}
	// Disjoint meet collapses to the receiver (refinement is advisory).
	if got := Span(1, 2).meet(Span(5, 9)); got != Span(1, 2) {
		t.Errorf("empty meet = %v, want receiver", got)
	}
	// Infinite bounds are canonical: the ignored finite field is zeroed, so
	// two representations of the same interval compare equal (the solver
	// uses struct equality as its change detector).
	a := Interval{Lo: 0, Hi: 200, HiInf: true}.norm()
	b := Interval{Lo: 0, Hi: 300, HiInf: true}.norm()
	if a != b {
		t.Errorf("normalized +inf intervals differ: %v vs %v", a, b)
	}
	if got := Top().Join(Span(1, 2)); got != Top() {
		t.Errorf("Top join = %v", got)
	}
	if v, ok := Point(42).Const(); !ok || v != 42 {
		t.Errorf("Point Const = %d, %v", v, ok)
	}
}

func TestIntervalALU(t *testing.T) {
	cases := []struct {
		op   vm.Op
		x, y Interval
		want Interval
	}{
		{vm.ADD, Span(1, 3), Span(10, 20), Span(11, 23)},
		{vm.SUB, Span(1, 3), Span(10, 20), Span(-19, -7)},
		{vm.MUL, Span(0, 5), Span(2, 4), Span(0, 20)},
		{vm.MUL, Span(-2, 3), Span(4, 4), Span(-8, 12)},
		{vm.SHLI, Span(1, 3), Point(4), Span(16, 48)},
		{vm.SHRI, Span(16, 48), Point(4), Span(1, 3)},
		{vm.ANDI, Span(0, 100), Point(7), Span(0, 7)},
		{vm.ANDI, Span(0, 100), Point(-8192), Span(0, 100)},
		{vm.MOD, Top(), Point(10), Span(-9, 9)},
		{vm.SLT, Top(), Top(), Span(0, 1)},
	}
	for _, c := range cases {
		if got := itvALU(c.op, c.x, c.y); got != c.want {
			t.Errorf("%v(%v, %v) = %v, want %v", c.op, c.x, c.y, got, c.want)
		}
	}
}

// TestRangeBranchRefinement mirrors XDataSlice's header sanity check: a
// dirty-buffer load is unbounded until two guards pin it, after which the
// derived offset is finite even inside a widened loop.
func TestRangeBranchRefinement(t *testing.T) {
	src := `
.data
buf: .space 64
.text
main:
    movi r1, 0
    movi r2, buf
    movi r3, 8
    syscall read
    ldw  r11, buf
    movi r2, 1
    blt  r11, r2, fail
    movi r2, 100
    blt  r2, r11, fail
    movi r17, 0
loop:
    bge  r17, r11, done
    mul  r18, r17, r11
    movi r2, 0
    syscall seek
    addi r17, r17, 1
    jmp  loop
fail:
    movi r1, -1
    syscall exit
done:
    movi r1, 0
    syscall exit
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p, Config{})
	ra := SolveRanges(g, nil)
	var seekPC int64 = -1
	for pc, ins := range p.Text {
		if ins.Op == vm.SYSCALL && ins.Imm == vm.SysSeek {
			seekPC = int64(pc)
		}
	}
	if seekPC < 0 {
		t.Fatal("no seek in program")
	}
	// r11 was refined to [1,100] by the guards, r17 to [0,99] by the loop
	// test, so r18 = r17*r11 is finite despite the loop widening r17 at the
	// header.
	if got := ra.At(seekPC, 11); got != Span(1, 100) {
		t.Errorf("r11 at seek = %v, want [1,100]", got)
	}
	if got := ra.At(seekPC, 17); got != Span(0, 99) {
		t.Errorf("r17 at seek = %v, want [0,99]", got)
	}
	if got := ra.At(seekPC, 18); !got.Finite() || got.Lo < 0 || got.Hi != 99*100 {
		t.Errorf("r18 at seek = %v, want finite [0,9900]", got)
	}
}

// TestRangeWidensUnboundedCounter checks termination and soundness on a loop
// whose counter has no static bound: the fixpoint must converge with the
// counter widened to +inf, not diverge.
func TestRangeWidensUnboundedCounter(t *testing.T) {
	src := `
.data
v: .word 3
.text
main:
    movi r20, 0
loop:
    addi r20, r20, 1
    ldw  r9, v
    bne  r20, r9, loop
    movi r2, 0
    syscall seek
    syscall exit
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p, Config{})
	ra := SolveRanges(g, nil)
	seekPC := int64(len(p.Text) - 2)
	got := ra.At(seekPC, 20)
	if !got.HiInf {
		t.Errorf("r20 after unbounded loop = %v, want +inf upper bound", got)
	}
	if got.LoInf || got.Lo < 1 {
		t.Errorf("r20 after loop = %v, want lower bound >= 1", got)
	}
}

// TestRangeReadSites tracks the file position through open/seek/read chains.
func TestRangeReadSites(t *testing.T) {
	src := `
.data
buf: .space 64
path: .asciz "f"
.text
main:
    movi r1, path
    movi r2, 0
    syscall open
    mov  r10, r1
    mov  r1, r10
    movi r2, buf
    movi r3, 16
    syscall read
    mov  r1, r10
    movi r2, 4096
    movi r3, 0
    syscall seek
    mov  r1, r10
    movi r2, buf
    movi r3, 32
    syscall read
    syscall exit
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p, Config{})
	ra := SolveRanges(g, nil)
	var reads []int64
	for pc, ins := range p.Text {
		if ins.Op == vm.SYSCALL && ins.Imm == vm.SysRead {
			reads = append(reads, int64(pc))
		}
	}
	if len(reads) != 2 {
		t.Fatalf("reads = %v", reads)
	}
	if iv, ok := ra.SiteBound(reads[0]); !ok || iv != Point(0) {
		t.Errorf("first read bound = %v, %v; want [0,0]", iv, ok)
	}
	if iv, ok := ra.SiteBound(reads[1]); !ok || iv != Point(4096) {
		t.Errorf("seeked read bound = %v, %v; want [4096,4096]", iv, ok)
	}
}
