package analysis

import (
	"fmt"
	"sort"
	"strings"

	"spechint/internal/asm"
	"spechint/internal/vm"
)

// The static hint synthesizer: the pipeline CFG → dominators/loops → value
// ranges → synthesis. Per read site it tries, in order:
//
//  1. proved — a closed-form access pattern: the descriptor traces to one
//     open whose path is a compile-time constant (or an affine walk over a
//     clean path table indexed by a counted loop), and the file position at
//     the read is statically sequential. The synthesizer then *enumerates*
//     the hint sequence the dynamic run will consume.
//  2. bounded — no closed form, but the value-range pass bounds the file
//     position at the site to a finite interval.
//  3. speculative-only — fall back to the taint-based hintability class
//     (classify.go): only runtime speculation can discover these accesses.
//
// Synthesis assumes the program completes normally (opens succeed, reads
// return their requested length) — the same assumption the emitted hints
// encode. The Verify pass audits it against dynamic run statistics, making
// the analysis self-auditing: a hint the dynamic run never consumed is a
// lint finding.

// Confidence ranks how strongly the static analysis stands behind a site.
type Confidence uint8

const (
	ConfSpecOnly Confidence = iota // only speculation can discover the pattern
	ConfBounded                    // offset interval is finite, no closed form
	ConfProved                     // closed-form pattern, hints enumerated
)

func (c Confidence) String() string {
	switch c {
	case ConfProved:
		return "proved"
	case ConfBounded:
		return "bounded"
	case ConfSpecOnly:
		return "speculative-only"
	}
	return "conf?"
}

// Prior is the static prior probability that a prefetch issued for this site
// turns out useful, consumed by the TIP cost-benefit depth bound: proved
// sites earn full-depth prefetching, bounded ones most of it, and
// speculative-only sites the same discount the dynamic accuracy model starts
// from.
func (c Confidence) Prior() float64 {
	switch c {
	case ConfProved:
		return 1.0
	case ConfBounded:
		return 0.75
	default:
		return 0.5
	}
}

// SynthHint is one concrete synthesized disclosure, in the order the dynamic
// run is expected to consume them.
type SynthHint struct {
	SitePC int64  // read site the hint serves
	Iter   int64  // iteration of the binding loop (0 outside loops)
	Path   string // file binding
	Off, N int64
	Conf   Confidence
}

// SynthSite is the per-read-site synthesis result.
type SynthSite struct {
	PC    int64
	Conf  Confidence
	Class AccessClass // taint-based fallback class (always computed)

	Template string // closed form, for proved sites
	Loop     int    // binding loop index into the report's LoopInfo, or -1
	Trips    int64  // enumerated iterations (1 outside loops)
	NumHints int

	Bound   Interval // file-position bound, for bounded sites
	Bounded bool
}

// SynthReport is the full synthesis output for one program.
type SynthReport struct {
	Prog  *vm.Program
	CFG   *CFG
	Loops *LoopInfo
	Sites []SynthSite // sorted by PC
	Hints []SynthHint // expected consumption order
}

// wholeFileLen is the disclosure length for sequential whole-file scans; the
// TIP client clamps a segment to the file's actual size.
const wholeFileLen = 0x40000000

const evalDepthMax = 24

// Synthesize runs the static hint-synthesis pipeline over an untransformed
// program.
func Synthesize(p *vm.Program, cfg Config) (*SynthReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.ShadowBase != 0 || p.OrigTextLen != 0 {
		return nil, fmt.Errorf("analysis: synthesize wants an untransformed program (got shadow at %d)", p.ShadowBase)
	}
	g := BuildCFG(p, cfg)
	ta, _ := runTaint(g)
	li := FindLoops(g)
	ev := &evaluator{p: p, g: g, li: li, rd: SolveReachingDefs(g), ta: ta}
	sy := &synthesizer{
		p:      p,
		g:      g,
		li:     li,
		ev:     ev,
		ta:     ta,
		ranges: SolveRanges(g, ev.rangeOracle()),
		pos:    solvePos(g, ev),
		trips:  make(map[int]tripResult),
	}

	r := &SynthReport{Prog: p, CFG: g, Loops: li}
	var pcs []int64
	for pc, st := range ta.sites {
		if st.set {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	var emitters []emitter
	for _, pc := range pcs {
		site, em := sy.site(pc, ta.sites[pc])
		r.Sites = append(r.Sites, site)
		if em != nil {
			emitters = append(emitters, *em)
		}
	}
	r.Hints = orderHints(emitters)
	for i := range r.Sites {
		for _, h := range r.Hints {
			if h.SitePC == r.Sites[i].PC {
				r.Sites[i].NumHints++
			}
		}
	}
	return r, nil
}

// emitter is one proved site's enumerated hint sequence before global
// ordering.
type emitter struct {
	sitePC int64
	loop   int // binding loop, -1 for straight-line code
	hints  []SynthHint
}

// orderHints arranges proved hints in expected dynamic consumption order:
// emitters are grouped by binding loop, groups follow program order of their
// first site, and within a shared loop the iterations interleave (iteration
// i of every site precedes iteration i+1 of any).
func orderHints(emitters []emitter) []SynthHint {
	sort.SliceStable(emitters, func(i, j int) bool { return emitters[i].sitePC < emitters[j].sitePC })
	var groups [][]emitter
	byLoop := make(map[int]int)
	for _, em := range emitters {
		if em.loop >= 0 {
			if gi, ok := byLoop[em.loop]; ok {
				groups[gi] = append(groups[gi], em)
				continue
			}
			byLoop[em.loop] = len(groups)
		}
		groups = append(groups, []emitter{em})
	}
	var out []SynthHint
	for _, grp := range groups {
		var all []SynthHint
		for _, em := range grp {
			all = append(all, em.hints...)
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].Iter != all[j].Iter {
				return all[i].Iter < all[j].Iter
			}
			return all[i].SitePC < all[j].SitePC
		})
		out = append(out, all...)
	}
	return out
}

// synthesizer bundles the solved analyses for one program.
type synthesizer struct {
	p      *vm.Program
	g      *CFG
	li     *LoopInfo
	ev     *evaluator
	ta     *taintAnalysis
	ranges *Ranges
	pos    map[int64]fposVal
	trips  map[int]tripResult
}

type tripResult struct {
	n  int64
	ok bool
}

func classOf(st *siteTaints) AccessClass {
	switch st.fd.Join(st.pos).Join(st.length) {
	case TaintNone, TaintArgv:
		return ClassArgv
	case TaintHeader:
		return ClassHeader
	default:
		return ClassData
	}
}

// site synthesizes one read site.
func (sy *synthesizer) site(pc int64, st *siteTaints) (SynthSite, *emitter) {
	s := SynthSite{PC: pc, Conf: ConfSpecOnly, Class: classOf(st), Loop: -1, Trips: 1}
	if em := sy.prove(pc, &s); em != nil {
		s.Conf = ConfProved
		return s, em
	}
	if iv, ok := sy.ranges.SiteBound(pc); ok && iv.Finite() {
		if iv.Lo < 0 {
			iv.Lo = 0
		}
		s.Conf = ConfBounded
		s.Bound = iv
		s.Bounded = true
	}
	return s, nil
}

// prove attempts the closed-form template for one read site. On success the
// site fields (Template, Loop, Trips) are filled and the enumerated hints
// returned.
func (sy *synthesizer) prove(pc int64, s *SynthSite) *emitter {
	// The descriptor must trace to exactly one open syscall.
	fd := sy.ev.eval(pc, vm.R1, nil, 0)
	if fd.kind != exFD {
		return nil
	}
	openPC := fd.pc

	// The file position at the read must be statically sequential and bound
	// to the same open.
	pv := sy.pos[pc]
	if (pv.kind != posSeq && pv.kind != posStream) || pv.open != openPC {
		return nil
	}

	// The open's iteration space must be at most one counted loop.
	openLoops := sy.loopsContaining(openPC)
	siteLoops := sy.loopsContaining(pc)
	binding := -1
	if len(openLoops) > 1 {
		return nil
	}
	if len(openLoops) == 1 {
		binding = openLoops[0]
		if !contains(siteLoops, binding) {
			return nil // the site uses a descriptor from a finished loop
		}
	}

	// One read per open pairing: the open must run on every path that
	// reaches the site within the same iteration, and vice versa.
	if !sy.paired(binding, openPC, pc) {
		return nil
	}

	// Template shape. Exactly the open's loops → one positioned read per
	// iteration; nested deeper with a sequential stream → whole-file scan.
	deeper := len(siteLoops) > len(openLoops)
	var off, length int64
	switch {
	case !deeper && pv.kind == posSeq:
		ln := sy.ev.eval(pc, vm.R3, nil, 0)
		if ln.kind != exConst || ln.k <= 0 {
			return nil
		}
		off, length = pv.off, ln.k
	case deeper:
		// Sequential scan from the stream origin; length clamps to EOF.
		off, length = pv.off, wholeFileLen
	default:
		return nil
	}

	// Trip count and path enumeration.
	trips := int64(1)
	if binding >= 0 {
		n, ok := sy.tripOf(binding)
		if !ok || n < 0 || n > 4096 {
			return nil
		}
		trips = n
	}
	em := &emitter{sitePC: pc, loop: binding}
	for i := int64(0); i < trips; i++ {
		var env map[int]int64
		if binding >= 0 {
			env = map[int]int64{binding: i}
		}
		pe := sy.ev.eval(openPC, vm.R1, env, 0)
		if pe.kind != exConst {
			return nil
		}
		path, ok := sy.ev.cString(pe.k)
		if !ok {
			return nil
		}
		em.hints = append(em.hints, SynthHint{
			SitePC: pc, Iter: i, Path: path, Off: off, N: length, Conf: ConfProved,
		})
	}

	s.Loop = binding
	s.Trips = trips
	lenStr := fmt.Sprint(length)
	if length == wholeFileLen {
		lenStr = "EOF"
	}
	if binding >= 0 {
		s.Template = fmt.Sprintf("for i<%d: hint(path[i], off=%d, len=%s)", trips, off, lenStr)
	} else {
		s.Template = fmt.Sprintf("hint(%q, off=%d, len=%s)", firstPath(em.hints), off, lenStr)
	}
	return em
}

func firstPath(hs []SynthHint) string {
	if len(hs) == 0 {
		return ""
	}
	return hs[0].Path
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (sy *synthesizer) loopsContaining(pc int64) []int {
	var out []int
	for l := range sy.li.Loops {
		if sy.li.Contains(l, pc) {
			out = append(out, l)
		}
	}
	return out
}

func (sy *synthesizer) tripOf(l int) (int64, bool) {
	if r, ok := sy.trips[l]; ok {
		return r.n, r.ok
	}
	n, ok := sy.li.TripCountWith(l,
		func(iv IndVar) (int64, bool) {
			x := sy.ev.evalDef(iv.InitPC, nil, 0)
			return x.k, x.kind == exConst
		},
		func(pc int64, reg uint8) (int64, bool) {
			x := sy.ev.eval(pc, reg, nil, 0)
			return x.k, x.kind == exConst
		})
	sy.trips[l] = tripResult{n, ok}
	return n, ok
}

// paired verifies the open-to-read pairing for the closed-form template:
// within one iteration of the binding loop (or within straight-line code for
// binding < 0) every execution of the site observes a descriptor produced by
// this iteration's open, and the open's file is always read at least once.
// Error-guard edges on syscall results are pruned — synthesis assumes the
// run completes (audited by Verify).
func (sy *synthesizer) paired(binding int, openPC, sitePC int64) bool {
	g := sy.g
	ob, sb := g.BlockOf(openPC), g.BlockOf(sitePC)
	if ob < 0 || sb < 0 {
		return false
	}
	if ob == sb {
		return openPC < sitePC
	}
	if binding < 0 {
		// Straight-line: the open dominates the site, and no pruned path
		// from the open terminates without passing the site.
		if !Dominates(sy.li.Idom, ob, sb) {
			return false
		}
		return !sy.escapes(ob, sb)
	}
	prune := sy.prunedEdge
	// The open runs every iteration…
	reach := sy.li.BodyReach(binding, sy.li.Loops[binding].Header, ob, prune)
	for _, t := range sy.li.Loops[binding].Tails {
		if reach[t] {
			return false
		}
	}
	// …the site runs every iteration…
	reach = sy.li.BodyReach(binding, sy.li.Loops[binding].Header, sb, prune)
	for _, t := range sy.li.Loops[binding].Tails {
		if reach[t] {
			return false
		}
	}
	// …and the site is only reachable through this iteration's open.
	reach = sy.li.BodyReach(binding, sy.li.Loops[binding].Header, ob, prune)
	return !reach[sb]
}

// escapes reports whether, starting at block from, the program can terminate
// (exit, return or unresolved indirect) without passing through block via,
// pruning error-guard edges.
func (sy *synthesizer) escapes(from, via int) bool {
	g := sy.g
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == via {
			continue
		}
		blk := g.Blocks[b]
		if blk.Returns || blk.IndirectExit {
			return true
		}
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := g.Prog.Text[pc]
			if ins.Op == vm.SYSCALL && ins.Imm == vm.SysExit {
				return true
			}
		}
		for _, s := range blk.Succs {
			if !seen[s] && !sy.prunedEdge(b, s) {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// prunedEdge reports whether the edge b→t is the failure arm of a branch
// guarding a syscall result (open returning a bad descriptor, a read
// returning a short count). Synthesis assumes those guards pass.
func (sy *synthesizer) prunedEdge(b, t int) bool {
	g := sy.g
	blk := g.Blocks[b]
	ins := g.Prog.Text[blk.End-1]
	if !ins.Op.IsBranch() {
		return false
	}
	x := sy.ev.eval(blk.End-1, ins.Rs1, nil, 0)
	if x.kind != exFD && x.kind != exSys {
		return false
	}
	if ins.Rs2 != vm.R0 {
		y := sy.ev.eval(blk.End-1, ins.Rs2, nil, 0)
		if y.kind != exConst {
			return false
		}
	}
	taken := g.BlockOf(ins.Imm)
	fall := g.BlockOf(blk.End)
	if taken == fall {
		return false
	}
	switch ins.Op {
	case vm.BLT: // result < bound: failure is the taken arm
		return t == taken
	case vm.BGE: // result ≥ bound holds on success: failure falls through
		return t == fall
	case vm.BNE: // result ≠ expected: failure is the taken arm
		return t == taken
	}
	return false
}

// ---------------------------------------------------------------------------
// The symbolic evaluator: resolves a register at a program point to a
// constant, an affine function of a loop's iteration count, or a syscall
// result, by chasing reaching definitions. env pins loop iterations to
// concrete values, turning affine expressions into constants (used to
// enumerate a loop's hint sequence).

type exprKind uint8

const (
	exUnknown exprKind = iota
	exConst            // k
	exAffine           // k + coef·i, i the iteration count of loop
	exFD               // descriptor returned by the open at pc
	exSys              // result of some other syscall at pc
)

type expr struct {
	kind exprKind
	k    int64
	coef int64
	loop int
	pc   int64
}

func cExpr(k int64) expr { return expr{kind: exConst, k: k} }

type evaluator struct {
	p  *vm.Program
	g  *CFG
	li *LoopInfo
	rd *ReachingDefs
	ta *taintAnalysis

	// memo caches env-independent results (env == nil). The sentinel entry
	// (present but unresolved) cuts definition cycles that are not
	// recognized induction variables.
	memo map[evalKey]*expr
}

type evalKey struct {
	pc  int64
	reg uint8
}

func (e *evaluator) eval(pc int64, reg uint8, env map[int]int64, depth int) expr {
	if reg == vm.R0 {
		return cExpr(0)
	}
	if depth > evalDepthMax {
		return expr{}
	}
	if env == nil {
		if e.memo == nil {
			e.memo = make(map[evalKey]*expr)
		}
		k := evalKey{pc, reg}
		if v, ok := e.memo[k]; ok {
			if v == nil {
				return expr{} // cycle through a non-IV definition chain
			}
			return *v
		}
		e.memo[k] = nil
		v := e.eval1(pc, reg, nil, depth)
		e.memo[k] = &v
		return v
	}
	return e.eval1(pc, reg, env, depth)
}

func (e *evaluator) eval1(pc int64, reg uint8, env map[int]int64, depth int) expr {
	defs := e.rd.DefsOf(pc, reg)
	switch len(defs) {
	case 1:
		if e.isStep(defs[0], reg) {
			return expr{} // lone in-loop step: iteration phase is ambiguous
		}
		return e.evalDef(defs[0], env, depth)
	case 2:
		return e.evalIV(pc, reg, defs, env, depth)
	}
	return expr{}
}

func (e *evaluator) isStep(pc int64, reg uint8) bool {
	for l := range e.li.Loops {
		for _, iv := range e.li.Loops[l].IVs {
			if iv.Reg == reg && iv.StepPC == pc {
				return true
			}
		}
	}
	return false
}

// evalIV recognizes the {init, step} reaching-def pair of a basic induction
// variable: the value at a header-phase use is init + step·i.
func (e *evaluator) evalIV(pc int64, reg uint8, defs []int64, env map[int]int64, depth int) expr {
	for l := range e.li.Loops {
		if !e.li.Contains(l, pc) {
			continue
		}
		iv, ok := e.li.Loops[l].IV(reg)
		if !ok {
			continue
		}
		if !(defs[0] == iv.InitPC && defs[1] == iv.StepPC) &&
			!(defs[0] == iv.StepPC && defs[1] == iv.InitPC) {
			continue
		}
		// The use must read the header-phase value: the step may not run
		// before it within one iteration.
		sb, ub := e.g.BlockOf(iv.StepPC), e.g.BlockOf(pc)
		if sb == ub {
			if iv.StepPC < pc {
				return expr{} // post-increment read: ambiguous with RD alone
			}
		} else if e.li.BodyReach(l, sb, -1, nil)[ub] {
			return expr{} // some intra-iteration path increments first
		}
		init := e.evalDef(iv.InitPC, env, depth+1)
		if init.kind != exConst {
			return expr{}
		}
		if env != nil {
			if i, ok := env[l]; ok {
				return cExpr(init.k + iv.Step*i)
			}
		}
		return expr{kind: exAffine, k: init.k, coef: iv.Step, loop: l}
	}
	return expr{}
}

func (e *evaluator) evalDef(defPC int64, env map[int]int64, depth int) expr {
	if depth > evalDepthMax {
		return expr{}
	}
	ins := e.p.Text[defPC]
	switch {
	case ins.Op == vm.MOVI:
		return cExpr(ins.Imm)
	case ins.Op == vm.ADD && ins.Rs2 == vm.R0: // mov rd, rs
		return e.eval(defPC, ins.Rs1, env, depth+1)
	case ins.Op >= vm.ADD && ins.Op <= vm.SLT:
		x := e.eval(defPC, ins.Rs1, env, depth+1)
		y := e.eval(defPC, ins.Rs2, env, depth+1)
		return exALU(ins.Op, x, y)
	case ins.Op >= vm.ADDI && ins.Op <= vm.SLTI:
		return exALU(ins.Op, e.eval(defPC, ins.Rs1, env, depth+1), cExpr(ins.Imm))
	case ins.Op.IsLoad():
		base := e.eval(defPC, ins.Rs1, env, depth+1)
		if base.kind != exConst {
			return expr{}
		}
		return e.loadConst(ins.Op, base.k+ins.Imm)
	case ins.Op == vm.SYSCALL:
		if ins.Imm == vm.SysOpen {
			return expr{kind: exFD, pc: defPC}
		}
		return expr{kind: exSys, pc: defPC}
	case ins.Op.IsCall():
		return cExpr(defPC + 1) // RA
	}
	return expr{}
}

func exALU(op vm.Op, x, y expr) expr {
	if x.kind == exConst && y.kind == exConst {
		if v, ok := constFold(op, x.k, y.k); ok {
			return cExpr(v)
		}
		return expr{}
	}
	switch op {
	case vm.ADD, vm.ADDI:
		return exAdd(x, y)
	case vm.SUB:
		return exAdd(x, exScale(y, -1))
	case vm.MUL:
		if y.kind == exConst {
			return exScale(x, y.k)
		}
		if x.kind == exConst {
			return exScale(y, x.k)
		}
	case vm.SHLI:
		if y.kind == exConst && y.k >= 0 && y.k < 62 {
			return exScale(x, int64(1)<<uint(y.k))
		}
	}
	return expr{}
}

func exAdd(x, y expr) expr {
	switch {
	case x.kind == exConst && y.kind == exAffine:
		return expr{kind: exAffine, k: y.k + x.k, coef: y.coef, loop: y.loop}
	case x.kind == exAffine && y.kind == exConst:
		return expr{kind: exAffine, k: x.k + y.k, coef: x.coef, loop: x.loop}
	case x.kind == exAffine && y.kind == exAffine && x.loop == y.loop:
		return expr{kind: exAffine, k: x.k + y.k, coef: x.coef + y.coef, loop: x.loop}
	}
	return expr{}
}

func exScale(x expr, k int64) expr {
	switch x.kind {
	case exConst:
		return cExpr(x.k * k)
	case exAffine:
		return expr{kind: exAffine, k: x.k * k, coef: x.coef * k, loop: x.loop}
	}
	return expr{}
}

// loadConst folds a load from a constant address in a clean region.
func (e *evaluator) loadConst(op vm.Op, addr int64) expr {
	size := int64(8)
	if op == vm.LDB || op == vm.LDBS {
		size = 1
	}
	if addr < 0 || addr+size > int64(len(e.p.Data)) {
		return expr{}
	}
	if !e.ta.cleanRegion(e.ta.rg.resolve(e.p, addr)) ||
		!e.ta.cleanRegion(e.ta.rg.resolve(e.p, addr+size-1)) {
		return expr{}
	}
	if size == 1 {
		return cExpr(int64(e.p.Data[addr]))
	}
	return cExpr(readDataWord(e.p.Data, addr))
}

func readDataWord(data []byte, off int64) int64 {
	v := int64(0)
	for b := int64(0); b < 8; b++ {
		v |= int64(data[off+b]) << (8 * b)
	}
	return v
}

// cString reads a NUL-terminated string from clean initialized data.
func (e *evaluator) cString(addr int64) (string, bool) {
	if addr < 0 {
		return "", false
	}
	var b []byte
	for a := addr; a < int64(len(e.p.Data)) && len(b) < 4096; a++ {
		if !e.ta.cleanRegion(e.ta.rg.resolve(e.p, a)) {
			return "", false
		}
		c := e.p.Data[a]
		if c == 0 {
			return string(b), true
		}
		b = append(b, c)
	}
	return "", false
}

// rangeOracle adapts the evaluator into the value-range pass's load oracle:
// a load at a constant clean address folds to its value; an affine cursor
// over clean data joins every value the walk can reach before leaving the
// initialized image (past which the dynamic load would fault).
func (e *evaluator) rangeOracle() LoadOracle {
	return func(pc int64, ins vm.Instr) (Interval, bool) {
		size := int64(8)
		if ins.Op == vm.LDB || ins.Op == vm.LDBS {
			size = 1
		}
		read := func(addr int64) (int64, bool) {
			if addr < 0 || addr+size > int64(len(e.p.Data)) {
				return 0, false
			}
			if !e.ta.cleanRegion(e.ta.rg.resolve(e.p, addr)) ||
				!e.ta.cleanRegion(e.ta.rg.resolve(e.p, addr+size-1)) {
				return 0, false
			}
			if size == 1 {
				return int64(e.p.Data[addr]), true
			}
			return readDataWord(e.p.Data, addr), true
		}
		base := e.eval(pc, ins.Rs1, nil, 0)
		switch base.kind {
		case exConst:
			if v, ok := read(base.k + ins.Imm); ok {
				return Point(v), true
			}
		case exAffine:
			if base.coef == 0 {
				break
			}
			const walkCap = 4096
			var iv Interval
			got := false
			addr := base.k + ins.Imm
			for j := 0; j < walkCap; j++ {
				v, ok := read(addr)
				if !ok {
					break
				}
				if !got {
					iv, got = Point(v), true
				} else {
					iv = iv.Join(Point(v))
				}
				addr += base.coef
			}
			// Sound only when the walk ended by leaving the data image: a
			// stop at a dirty region (or the cap) means the dynamic load
			// could observe values we did not enumerate.
			if got && (addr < 0 || addr+size > int64(len(e.p.Data))) {
				return iv, true
			}
		}
		return Interval{}, false
	}
}

// ---------------------------------------------------------------------------
// The file-position mini-dataflow. One abstract stream (the paper's apps
// interleave descriptors only through memory, which drops the descriptor to
// exSys and disqualifies the site anyway): position is "sequential at known
// offset k since the open at pc" (posSeq), "advanced sequentially from k by
// reads only" (posStream), or unknown.

type fposKind uint8

const (
	posBot fposKind = iota
	posSeq
	posStream
	posTop
)

type fposVal struct {
	kind fposKind
	off  int64 // stream origin
	open int64 // pc of the open that created the stream
}

func joinPos(a, b fposVal) fposVal {
	if a.kind == posBot {
		return b
	}
	if b.kind == posBot {
		return a
	}
	if a.kind == posTop || b.kind == posTop {
		return fposVal{kind: posTop}
	}
	if a.off != b.off || a.open != b.open {
		return fposVal{kind: posTop}
	}
	if a.kind == posStream || b.kind == posStream {
		return fposVal{kind: posStream, off: a.off, open: a.open}
	}
	return a
}

// solvePos runs the position dataflow and returns the joined position at
// each read site.
func solvePos(g *CFG, e *evaluator) map[int64]fposVal {
	sites := make(map[int64]fposVal)
	transfer := func(block int, s *fposVal) *fposVal {
		b := g.Blocks[block]
		for pc := b.Start; pc < b.End; pc++ {
			ins := g.Prog.Text[pc]
			if ins.Op != vm.SYSCALL {
				continue
			}
			switch ins.Imm {
			case vm.SysOpen:
				*s = fposVal{kind: posSeq, off: 0, open: pc}
			case vm.SysSeek:
				if s.kind == posSeq || s.kind == posStream {
					if off := e.eval(pc, vm.R2, nil, 0); off.kind == exConst {
						*s = fposVal{kind: posSeq, off: off.k, open: s.open}
						continue
					}
				}
				*s = fposVal{kind: posTop}
			case vm.SysRead:
				cur := *s
				if prev, ok := sites[pc]; ok {
					cur = joinPos(prev, cur)
				}
				sites[pc] = cur
				if s.kind == posSeq {
					s.kind = posStream
				}
			case vm.SysClose:
				*s = fposVal{kind: posTop}
			}
		}
		return s
	}
	solveForward(g,
		func() *fposVal { return &fposVal{kind: posTop} },
		func(s *fposVal) *fposVal { c := *s; return &c },
		func(dst, src *fposVal) bool {
			j := joinPos(*dst, *src)
			if j != *dst {
				*dst = j
				return true
			}
			return false
		},
		transfer)
	return sites
}

// ---------------------------------------------------------------------------
// Report rendering and dynamic verification.

// ConfCounts returns the number of sites per confidence level.
func (r *SynthReport) ConfCounts() map[Confidence]int {
	m := make(map[Confidence]int)
	for _, s := range r.Sites {
		m[s.Conf]++
	}
	return m
}

// Ranked returns the sites ordered by confidence (descending), then PC.
func (r *SynthReport) Ranked() []SynthSite {
	out := append([]SynthSite(nil), r.Sites...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Conf != out[j].Conf {
			return out[i].Conf > out[j].Conf
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// String renders the deterministic confidence-ranked hint report.
func (r *SynthReport) String() string {
	loc := asm.NewLocator(r.Prog)
	var b strings.Builder
	fmt.Fprintf(&b, "cfg: %s\n", r.CFG.Summary())
	fmt.Fprintf(&b, "loops: %s\n", r.Loops.Summary())
	counts := r.ConfCounts()
	fmt.Fprintf(&b, "read sites: %d total — %d proved, %d bounded, %d speculative-only\n",
		len(r.Sites), counts[ConfProved], counts[ConfBounded], counts[ConfSpecOnly])
	fmt.Fprintf(&b, "synthesized hints: %d\n", len(r.Hints))
	for _, s := range r.Ranked() {
		fmt.Fprintf(&b, "  pc %-5d %-16s %-16s prior=%.2f", s.PC, loc.Locate(s.PC)+":", s.Conf, s.Conf.Prior())
		switch {
		case s.Conf == ConfProved:
			fmt.Fprintf(&b, " %s (%d hints)", s.Template, s.NumHints)
		case s.Conf == ConfBounded:
			fmt.Fprintf(&b, " off in %s (class %s)", s.Bound, s.Class)
		default:
			fmt.Fprintf(&b, " class %s", s.Class)
		}
		b.WriteString("\n")
	}
	const show = 12
	for i, h := range r.Hints {
		if i == show {
			fmt.Fprintf(&b, "  … and %d more hints\n", len(r.Hints)-show)
			break
		}
		fmt.Fprintf(&b, "  hint %-3d %q off=%d len=%d (site pc %d, iter %d)\n",
			i+1, h.Path, h.Off, h.N, h.SitePC, h.Iter)
	}
	return b.String()
}

// LintStaticHint flags a synthesized hint contradicted by the dynamic run:
// the analysis promised a consumption the run did not deliver.
const LintStaticHint LintCheck = "static-hint"

// DynSiteStats mirrors the runtime per-site read counters (core.RunStats)
// without importing the simulator.
type DynSiteStats struct {
	Calls     int64
	DataCalls int64
	Hinted    int64
}

// DynVerifyStats carries the dynamic evidence Verify audits against.
type DynVerifyStats struct {
	Sites        map[int64]DynSiteStats
	HintCalls    int64 // hint segments issued
	MatchedCalls int64 // segments fully consumed by reads
	BypassedSegs int64 // segments skipped out of order
}

// Verify audits every proved hint against the dynamic run: a synthesized
// hint the run never consumed, a bypassed segment, or a proved site whose
// data reads were not fully hinted is a lint finding. A nil result means the
// static analysis made no false promise.
func (r *SynthReport) Verify(d DynVerifyStats) []Finding {
	var fs []Finding
	add := func(pc int64, format string, args ...any) {
		fs = append(fs, Finding{Check: LintStaticHint, PC: pc, Msg: fmt.Sprintf(format, args...)})
	}
	if d.BypassedSegs > 0 {
		add(0, "%d synthesized segments were bypassed: hints issued out of consumption order", d.BypassedSegs)
	}
	if d.MatchedCalls < d.HintCalls {
		add(0, "%d of %d synthesized hints were never fully consumed by the dynamic run",
			d.HintCalls-d.MatchedCalls, d.HintCalls)
	}
	for _, s := range r.Sites {
		if s.Conf != ConfProved || s.NumHints == 0 {
			continue
		}
		w, ok := d.Sites[s.PC]
		if !ok || w.Calls == 0 {
			add(s.PC, "proved site never executed dynamically (%d hints promised)", s.NumHints)
			continue
		}
		if w.Hinted < w.DataCalls {
			add(s.PC, "proved site: only %d of %d data reads arrived hinted", w.Hinted, w.DataCalls)
		}
	}
	return fs
}
