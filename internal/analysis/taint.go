package analysis

import (
	"sort"

	"spechint/internal/vm"
)

// The taint analysis answers one question per value: what runtime input does
// it depend on? The lattice is the totally ordered chain
//
//	TaintNone ⊑ TaintArgv ⊑ TaintHeader ⊑ TaintData
//
// where TaintNone means "fixed by the program text", TaintArgv "depends on
// the static argument data (the file lists, patterns and slice tables in the
// data section — the program's command line)", TaintHeader "depends on
// first-level file metadata (data located by static information)", and
// TaintData "depends on arbitrary file contents (data located by other file
// data)". Join is max: a value depending on both argv and file data is
// data-dependent.
//
// Seeding follows the paper's access-pattern taxonomy (§4.1-§4.3): the data
// section is argv, and a read's destination buffer is tainted by *where the
// read's location came from* — a read located statically yields header-level
// metadata, a read located by file content yields data-dependent bytes.

// Taint is what runtime input a value depends on.
type Taint uint8

const (
	TaintNone   Taint = iota // fixed by the program text
	TaintArgv                // static argument data (argv-determined)
	TaintHeader              // first-level file metadata
	TaintData                // arbitrary file data
)

func (t Taint) String() string {
	switch t {
	case TaintNone:
		return "const"
	case TaintArgv:
		return "argv"
	case TaintHeader:
		return "header"
	case TaintData:
		return "data"
	}
	return "taint?"
}

// Join is the lattice join (max of the chain).
func (t Taint) Join(u Taint) Taint {
	if u > t {
		return u
	}
	return t
}

// Abstract values. The analysis is a constant/region propagation carrying
// taint: vConst knows the exact value (so absolute loads resolve their data
// region), vAddr knows the region a pointer points into but not the offset
// (loop cursors), vTaint knows only the taint.
type vkind uint8

const (
	vBottom vkind = iota
	vConst        // exact value k
	vAddr         // pointer into data region, element choice tainted t
	vTaint        // unknown value of taint t
)

type aval struct {
	kind   vkind
	k      int64 // vConst
	region int   // vAddr
	t      Taint // vAddr (element choice) and vTaint
}

func constV(k int64) aval       { return aval{kind: vConst, k: k} }
func taintV(t Taint) aval       { return aval{kind: vTaint, t: t} }
func addrV(r int, t Taint) aval { return aval{kind: vAddr, region: r, t: t} }

// taintOf is the taint of the value itself. A known pointer is statically
// fixed; only its element choice carries taint.
func taintOf(v aval) Taint {
	switch v.kind {
	case vConst, vBottom:
		return TaintNone
	case vAddr:
		return v.t
	default:
		return v.t
	}
}

// regions partitions the data section by its symbols, so the analysis can
// track a content taint per named buffer/table. The stack is modeled as one
// extra pseudo-region (index len(names)).
type regions struct {
	starts []int64  // sorted region start addresses
	names  []string // parallel region names
}

const regionUnknown = -1

func buildRegions(p *vm.Program) *regions {
	type symbol struct {
		addr int64
		name string
	}
	var syms []symbol
	for name, addr := range p.DataSymbols {
		syms = append(syms, symbol{addr, name})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	r := &regions{}
	last := int64(-1)
	for _, s := range syms {
		if s.addr == last {
			continue // aliased symbol: keep the first name
		}
		r.starts = append(r.starts, s.addr)
		r.names = append(r.names, s.name)
		last = s.addr
	}
	if len(r.starts) == 0 || r.starts[0] > 0 {
		r.starts = append([]int64{0}, r.starts...)
		r.names = append([]string{"(data)"}, r.names...)
	}
	return r
}

func (r *regions) count() int { return len(r.starts) + 1 } // + stack pseudo-region

func (r *regions) stack() int { return len(r.starts) }

func (r *regions) name(i int) string {
	if i == r.stack() {
		return "(stack)"
	}
	if i >= 0 && i < len(r.names) {
		return r.names[i]
	}
	return "(unknown)"
}

// resolve maps a data address to its region, or regionUnknown.
func (r *regions) resolve(p *vm.Program, addr int64) int {
	if addr < 0 || addr >= p.DataSize {
		return regionUnknown
	}
	i := sort.Search(len(r.starts), func(i int) bool { return r.starts[i] > addr })
	return i - 1
}

// exact maps an address to its region only if it is exactly a symbol base —
// the pattern `movi rX, buf; add rX, rX, rIdx` — so arbitrary small
// constants don't masquerade as pointers.
func (r *regions) exact(addr int64) int {
	i := sort.Search(len(r.starts), func(i int) bool { return r.starts[i] >= addr })
	if i < len(r.starts) && r.starts[i] == addr {
		return i
	}
	return regionUnknown
}

// taintState is the per-program-point abstract state.
type taintState struct {
	regs [vm.NumRegs]aval
	fpos Taint   // taint of the in-effect file position (seek offsets)
	mem  []Taint // content taint per region
}

func newTaintState(nregions int) *taintState {
	s := &taintState{mem: make([]Taint, nregions)}
	return s
}

func (s *taintState) clone() *taintState {
	c := *s
	c.mem = append([]Taint(nil), s.mem...)
	return &c
}

func joinVal(a, b aval, rg *regions, p *vm.Program) aval {
	switch {
	case a.kind == vBottom:
		return b
	case b.kind == vBottom:
		return a
	case a.kind == vConst && b.kind == vConst:
		if a.k == b.k {
			return a
		}
		// Two different constants: if both land in the same data region the
		// value is a moving cursor within it; otherwise the merged value is
		// merely statically computable.
		ra, rb := rg.resolve(p, a.k), rg.resolve(p, b.k)
		if ra != regionUnknown && ra == rb {
			return addrV(ra, TaintNone)
		}
		return taintV(TaintNone)
	case a.kind == vAddr && b.kind == vAddr:
		if a.region == b.region {
			return addrV(a.region, a.t.Join(b.t))
		}
		return taintV(a.t.Join(b.t))
	case a.kind == vAddr && b.kind == vConst:
		if rg.resolve(p, b.k) == a.region {
			return a
		}
		return taintV(a.t)
	case a.kind == vConst && b.kind == vAddr:
		return joinVal(b, a, rg, p)
	default: // at least one vTaint
		return taintV(taintOf(a).Join(taintOf(b)))
	}
}

// join merges src into dst, reporting change.
func (s *taintState) join(src *taintState, rg *regions, p *vm.Program) bool {
	changed := false
	for i := range s.regs {
		v := joinVal(s.regs[i], src.regs[i], rg, p)
		if v != s.regs[i] {
			s.regs[i] = v
			changed = true
		}
	}
	if t := s.fpos.Join(src.fpos); t != s.fpos {
		s.fpos = t
		changed = true
	}
	for i := range s.mem {
		if t := s.mem[i].Join(src.mem[i]); t != s.mem[i] {
			s.mem[i] = t
			changed = true
		}
	}
	return changed
}

// taintAnalysis bundles the immutable context of one run.
type taintAnalysis struct {
	p  *vm.Program
	rg *regions

	// sites accumulates, per read-syscall PC, the joined component taints
	// across all abstract visits.
	sites map[int64]*siteTaints

	// dirty marks regions whose runtime content may diverge from the
	// initialized data image: store targets and read/fstat buffers. A clean
	// region's bytes equal p.Data at every program point, so the static
	// passes (range, synth) may constant-fold loads from it.
	dirty []bool
}

func (a *taintAnalysis) markDirty(region int) {
	if region == regionUnknown {
		for i := range a.dirty {
			a.dirty[i] = true
		}
		return
	}
	a.dirty[region] = true
}

// cleanRegion reports whether loads from region always observe the
// initialized data image.
func (a *taintAnalysis) cleanRegion(region int) bool {
	return region >= 0 && region < len(a.dirty) && !a.dirty[region]
}

type siteTaints struct {
	fd, pos, length Taint
	set             bool
}

func (a *taintAnalysis) val(s *taintState, r uint8) aval {
	if r == vm.R0 {
		return constV(0)
	}
	return s.regs[r]
}

func (a *taintAnalysis) set(s *taintState, r uint8, v aval) {
	if r != vm.R0 {
		s.regs[r] = v
	}
}

// maxContent is the join over all region content taints, the conservative
// answer for loads through pointers of unknown region.
func (a *taintAnalysis) maxContent(s *taintState) Taint {
	t := TaintNone
	for _, m := range s.mem {
		t = t.Join(m)
	}
	return t
}

// baseRegion resolves a memory operand (base value + displacement) to a
// region and the taint of the element choice.
func (a *taintAnalysis) baseRegion(s *taintState, base aval, imm int64, sp bool) (int, Taint) {
	if sp {
		return a.rg.stack(), TaintNone
	}
	switch base.kind {
	case vConst:
		return a.rg.resolve(a.p, base.k+imm), TaintNone
	case vAddr:
		return base.region, base.t
	default:
		return regionUnknown, taintOf(base)
	}
}

// alu combines two operands for an arithmetic op.
func (a *taintAnalysis) alu(op vm.Op, x, y aval) aval {
	if x.kind == vConst && y.kind == vConst {
		if v, ok := constFold(op, x.k, y.k); ok {
			return constV(v)
		}
		return taintV(TaintNone)
	}
	additive := op == vm.ADD || op == vm.ADDI || op == vm.SUB
	if additive {
		// Pointer arithmetic: a known symbol base plus a varying offset
		// stays a pointer into that region; the offset taints the element
		// choice.
		if x.kind == vAddr && y.kind != vAddr {
			return addrV(x.region, x.t.Join(taintOf(y)))
		}
		if y.kind == vAddr && x.kind != vAddr && op != vm.SUB {
			return addrV(y.region, y.t.Join(taintOf(x)))
		}
		if x.kind == vConst && y.kind == vTaint {
			if r := a.rg.exact(x.k); r != regionUnknown {
				return addrV(r, y.t)
			}
		}
		if y.kind == vConst && x.kind == vTaint && op != vm.SUB {
			if r := a.rg.exact(y.k); r != regionUnknown {
				return addrV(r, x.t)
			}
		}
	}
	return taintV(taintOf(x).Join(taintOf(y)))
}

func constFold(op vm.Op, x, y int64) (int64, bool) {
	switch op {
	case vm.ADD, vm.ADDI:
		return x + y, true
	case vm.SUB:
		return x - y, true
	case vm.MUL:
		return x * y, true
	case vm.DIV:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case vm.MOD:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case vm.AND, vm.ANDI:
		return x & y, true
	case vm.OR, vm.ORI:
		return x | y, true
	case vm.XOR, vm.XORI:
		return x ^ y, true
	case vm.SHL, vm.SHLI:
		return x << uint64(y&63), true
	case vm.SHR, vm.SHRI:
		return int64(uint64(x) >> uint64(y&63)), true
	case vm.SLT, vm.SLTI:
		if x < y {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// transfer interprets one instruction abstractly, mutating s.
func (a *taintAnalysis) transfer(s *taintState, pc int64, ins vm.Instr) {
	switch {
	case ins.Op >= vm.ADD && ins.Op <= vm.SLT:
		a.set(s, ins.Rd, a.alu(ins.Op, a.val(s, ins.Rs1), a.val(s, ins.Rs2)))

	case ins.Op >= vm.ADDI && ins.Op <= vm.SLTI:
		a.set(s, ins.Rd, a.alu(ins.Op, a.val(s, ins.Rs1), constV(ins.Imm)))

	case ins.Op == vm.MOVI:
		a.set(s, ins.Rd, constV(ins.Imm))

	case ins.Op.IsLoad():
		region, choice := a.baseRegion(s, a.val(s, ins.Rs1), ins.Imm, ins.Rs1 == vm.SP)
		if region == regionUnknown {
			a.set(s, ins.Rd, taintV(choice.Join(a.maxContent(s))))
		} else {
			a.set(s, ins.Rd, taintV(choice.Join(s.mem[region])))
		}

	case ins.Op.IsStore():
		region, choice := a.baseRegion(s, a.val(s, ins.Rs1), ins.Imm, ins.Rs1 == vm.SP)
		a.markDirty(region)
		t := choice.Join(taintOf(a.val(s, ins.Rs2)))
		if region == regionUnknown {
			// Unknown target: every region may have been written.
			for i := range s.mem {
				s.mem[i] = s.mem[i].Join(t)
			}
		} else {
			s.mem[region] = s.mem[region].Join(t)
		}

	case ins.Op.IsCall():
		a.set(s, vm.RA, constV(pc+1))

	case ins.Op == vm.SYSCALL:
		a.syscall(s, pc, ins.Imm)
	}
	// Branches, jumps, ret, nop: no register effects beyond the above.
}

// syscall models the kernel interface's information flow.
func (a *taintAnalysis) syscall(s *taintState, pc int64, code int64) {
	switch code {
	case vm.SysOpen:
		// The descriptor is determined by the path that named the file.
		a.set(s, vm.R1, taintV(taintOf(a.val(s, vm.R1))))
		s.fpos = TaintNone // a fresh descriptor starts at offset 0

	case vm.SysSeek:
		s.fpos = taintOf(a.val(s, vm.R2))
		a.set(s, vm.R1, taintV(s.fpos))

	case vm.SysRead:
		fd := taintOf(a.val(s, vm.R1))
		length := taintOf(a.val(s, vm.R3))
		st := a.sites[pc]
		if st == nil {
			st = &siteTaints{}
			a.sites[pc] = st
		}
		st.fd = st.fd.Join(fd)
		st.pos = st.pos.Join(s.fpos)
		st.length = st.length.Join(length)
		st.set = true

		// The buffer now holds file content. Content located statically is
		// first-level metadata (a header); content located by other file
		// data is data-dependent.
		content := TaintHeader
		if fd.Join(s.fpos).Join(length) > TaintArgv {
			content = TaintData
		}
		region, _ := a.baseRegion(s, a.val(s, vm.R2), 0, false)
		a.markDirty(region)
		if region == regionUnknown {
			for i := range s.mem {
				s.mem[i] = s.mem[i].Join(content)
			}
		} else {
			s.mem[region] = s.mem[region].Join(content)
		}
		// The result (bytes read) reveals the file size boundary — file
		// metadata at the taint level of the content read.
		a.set(s, vm.R1, taintV(content))
		// The position advances deterministically with the read sequence, so
		// sequential reads inherit the stream's own determinism: fpos is
		// unchanged.

	case vm.SysFstat:
		region, _ := a.baseRegion(s, a.val(s, vm.R2), 0, false)
		a.markDirty(region)
		if region != regionUnknown {
			s.mem[region] = s.mem[region].Join(TaintHeader)
		}
		a.set(s, vm.R1, taintV(TaintNone))

	default:
		// exit/close/write/print/sbrk/hints: result is a status code.
		a.set(s, vm.R1, taintV(TaintNone))
	}
}

// runTaint solves the taint fixpoint over the CFG and returns the per-site
// component taints plus the block-entry states (for report rendering).
func runTaint(g *CFG) (*taintAnalysis, []*taintState) {
	p := g.Prog
	a := &taintAnalysis{p: p, rg: buildRegions(p), sites: make(map[int64]*siteTaints)}
	a.dirty = make([]bool, a.rg.count())

	boundary := func() *taintState {
		s := newTaintState(a.rg.count())
		for i := range s.regs {
			s.regs[i] = constV(0) // registers start zeroed
		}
		// The machine points SP at the top of memory before start; its exact
		// value is configuration, not program text.
		s.regs[vm.SP] = taintV(TaintNone)
		for i := range s.mem {
			s.mem[i] = TaintArgv // the data section is the argument list
		}
		s.mem[a.rg.stack()] = TaintNone
		return s
	}
	transfer := func(block int, s *taintState) *taintState {
		b := g.Blocks[block]
		for pc := b.Start; pc < b.End; pc++ {
			a.transfer(s, pc, p.Text[pc])
		}
		return s
	}

	in := solveForward(g, boundary,
		func(s *taintState) *taintState { return s.clone() },
		func(dst, src *taintState) bool { return dst.join(src, a.rg, p) },
		transfer)
	return a, in
}
