package analysis

import (
	"fmt"
	"sort"
	"strings"

	"spechint/internal/asm"
	"spechint/internal/vm"
)

// AccessClass is the paper's access-pattern taxonomy for read call sites
// (§4.1-§4.3): Agrep's reads are argv-determined, XDataSlice's are computable
// from one header read, Gnuld's chase pointers through file data.
type AccessClass uint8

const (
	ClassArgv   AccessClass = iota // determined by the static argument data
	ClassHeader                    // computable from first-level file metadata
	ClassData                      // dependent on arbitrary file data
)

func (c AccessClass) String() string {
	switch c {
	case ClassArgv:
		return "argv-determined"
	case ClassHeader:
		return "header-determined"
	case ClassData:
		return "data-dependent"
	}
	return "class?"
}

// HintProbability is the modeled probability that a dynamic read issued from
// a site of this class arrives hinted under speculative execution. Argv- and
// header-determined sites are fully computable ahead of the access (the
// paper hints essentially all of them); a data-dependent site can only be
// hinted when the read it depends on was itself prefetched or cached in
// time, which the paper's Gnuld analysis (§4.2: "limited to about half")
// puts near one half. These are calibrated model constants in the same
// spirit as the simulator's cycle costs.
func (c AccessClass) HintProbability() float64 {
	switch c {
	case ClassArgv, ClassHeader:
		return 1.0
	default:
		return 0.5
	}
}

// ReadSite is one classified read call site.
type ReadSite struct {
	PC    int64
	Class AccessClass

	// Component taints: the descriptor (which file), the file position
	// (which offset), and the requested length.
	FD, Pos, Len Taint
}

// Report is the static hintability report for one program.
type Report struct {
	Prog  *vm.Program
	CFG   *CFG
	Sites []ReadSite

	regionNames []string
}

// SiteWeight carries dynamic execution counts for one read site, used to
// weight the static per-site classification into a predicted coverage
// fraction comparable with the paper's Table 4.
type SiteWeight struct {
	Calls     int64 // read calls executed at the site
	DataCalls int64 // calls that returned data (EOF probes cannot be hinted)
}

// Classify runs the CFG + taint analyses over an untransformed program and
// classifies every read call site. Classification is defined on original
// text; a transformed program would double-count every site through its
// shadow copy.
func Classify(p *vm.Program, cfg Config) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.ShadowBase != 0 || p.OrigTextLen != 0 {
		return nil, fmt.Errorf("analysis: classify wants an untransformed program (got shadow at %d)", p.ShadowBase)
	}
	g := BuildCFG(p, cfg)
	ta, _ := runTaint(g)

	r := &Report{Prog: p, CFG: g, regionNames: ta.rg.names}
	for pc, st := range ta.sites {
		if !st.set {
			continue
		}
		site := ReadSite{PC: pc, FD: st.fd, Pos: st.pos, Len: st.length}
		switch st.fd.Join(st.pos).Join(st.length) {
		case TaintNone, TaintArgv:
			site.Class = ClassArgv
		case TaintHeader:
			site.Class = ClassHeader
		default:
			site.Class = ClassData
		}
		r.Sites = append(r.Sites, site)
	}
	sort.Slice(r.Sites, func(i, j int) bool { return r.Sites[i].PC < r.Sites[j].PC })
	return r, nil
}

// Site returns the classified site at pc, if any.
func (r *Report) Site(pc int64) (ReadSite, bool) {
	for _, s := range r.Sites {
		if s.PC == pc {
			return s, true
		}
	}
	return ReadSite{}, false
}

// ClassCounts returns the number of sites per class.
func (r *Report) ClassCounts() map[AccessClass]int {
	m := make(map[AccessClass]int)
	for _, s := range r.Sites {
		m[s.Class]++
	}
	return m
}

// PredictedCoverage combines the static per-site classification with dynamic
// execution counts into a predicted hinted-read fraction directly comparable
// to the paper's Table 4 (hinted reads / all read calls; EOF probes count in
// the denominator but can never be hinted). Sites absent from the report
// (e.g. reads reached only through unresolved indirect control flow) are
// conservatively treated as data-dependent.
func (r *Report) PredictedCoverage(weights map[int64]SiteWeight) float64 {
	// Accumulate in sorted site order: float addition is order-sensitive, and
	// map iteration order would make the low bits vary run to run.
	pcs := make([]int64, 0, len(weights))
	for pc := range weights {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var predicted float64
	var total int64
	for _, pc := range pcs {
		w := weights[pc]
		total += w.Calls
		prob := ClassData.HintProbability()
		if s, ok := r.Site(pc); ok {
			prob = s.Class.HintProbability()
		}
		predicted += prob * float64(w.DataCalls)
	}
	if total == 0 {
		return 0
	}
	return predicted / float64(total)
}

// HintableSiteFraction is the purely static summary: the fraction of read
// sites whose class is hintable without chasing file data.
func (r *Report) HintableSiteFraction() float64 {
	if len(r.Sites) == 0 {
		return 0
	}
	n := 0
	for _, s := range r.Sites {
		if s.Class != ClassData {
			n++
		}
	}
	return float64(n) / float64(len(r.Sites))
}

// String renders the report with label-resolved PCs and, per site, the
// reaching definitions of the registers that parameterize the read.
func (r *Report) String() string {
	loc := asm.NewLocator(r.Prog)
	rd := SolveReachingDefs(r.CFG)
	var b strings.Builder
	fmt.Fprintf(&b, "cfg: %s\n", r.CFG.Summary())
	counts := r.ClassCounts()
	fmt.Fprintf(&b, "read sites: %d total — %d argv-determined, %d header-determined, %d data-dependent\n",
		len(r.Sites), counts[ClassArgv], counts[ClassHeader], counts[ClassData])
	fmt.Fprintf(&b, "statically hintable sites: %.0f%%\n", 100*r.HintableSiteFraction())
	for _, s := range r.Sites {
		fmt.Fprintf(&b, "  pc %-5d %-16s %-17s [fd:%s pos:%s len:%s]\n",
			s.PC, loc.Locate(s.PC)+":", s.Class, s.FD, s.Pos, s.Len)
		for _, reg := range []uint8{vm.R1, vm.R3} {
			defs := rd.DefsOf(s.PC, reg)
			if len(defs) == 0 {
				continue
			}
			parts := make([]string, 0, len(defs))
			for _, d := range defs {
				parts = append(parts, loc.Locate(d))
			}
			fmt.Fprintf(&b, "           r%-2d defined at %s\n", reg, strings.Join(parts, ", "))
		}
	}
	return b.String()
}
