package analysis

import (
	"fmt"
	"testing"

	"spechint/internal/asm"
	"spechint/internal/vm"
)

func mustAssemble(t *testing.T, src string) *vm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// diamond: entry splits on a branch and rejoins.
const diamondSrc = `
.entry main
.text
main:   movi r1, 1
        beq  r1, r0, left
        movi r2, 2
        jmp  join
left:   movi r2, 3
join:   add  r3, r1, r2
        syscall exit
`

func TestBuildCFGDiamond(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	g := BuildCFG(p, DefaultConfig())

	// Blocks: [main..beq] [movi r2,2; jmp] [left] [join..exit]
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4: %+v", len(g.Blocks), g.Blocks)
	}
	b0 := g.Blocks[g.BlockOf(0)]
	if len(b0.Succs) != 2 {
		t.Fatalf("entry block succs = %v, want 2", b0.Succs)
	}
	join := g.BlockOf(p.Symbols["join"])
	for _, s := range []int64{2, p.Symbols["left"]} {
		sb := g.Blocks[g.BlockOf(s)]
		if len(sb.Succs) != 1 || sb.Succs[0] != join {
			t.Errorf("block at %d succs = %v, want [%d]", s, sb.Succs, join)
		}
	}
	// The exit block has no successors: syscall exit terminates.
	jb := g.Blocks[join]
	if len(jb.Succs) != 0 {
		t.Errorf("join/exit block succs = %v, want none", jb.Succs)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	g := BuildCFG(p, DefaultConfig())
	idom := g.Dominators()

	entry := g.BlockOf(0)
	join := g.BlockOf(p.Symbols["join"])
	left := g.BlockOf(p.Symbols["left"])

	if idom[entry] != entry {
		t.Errorf("idom(entry) = %d, want itself", idom[entry])
	}
	// Neither arm dominates the join; the entry does.
	if idom[join] != entry {
		t.Errorf("idom(join) = %d, want entry %d", idom[join], entry)
	}
	if !Dominates(idom, entry, join) {
		t.Error("entry should dominate join")
	}
	if Dominates(idom, left, join) {
		t.Error("left arm must not dominate join")
	}
}

func TestCFGCallEdges(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   call fn
        call fn
        syscall exit
fn:     movi r1, 1
        ret
`)
	g := BuildCFG(p, DefaultConfig())
	calls := g.Calls()
	if len(calls) != 2 {
		t.Fatalf("got %d call sites, want 2", len(calls))
	}
	fn := p.Symbols["fn"]
	for _, c := range calls {
		if c.Target != fn {
			t.Errorf("call at %d targets %d, want %d", c.PC, c.Target, fn)
		}
	}
	cg := g.CallGraph()
	if len(cg[fn]) != 2 {
		t.Errorf("call graph for fn = %v, want 2 callers", cg[fn])
	}
	// fn's body must be reachable (via the call edge).
	reach := g.Reachable()
	if !reach[g.BlockOf(fn)] {
		t.Error("callee not reachable from entry")
	}
	// The block ending in ret has no successors but Returns set.
	rb := g.Blocks[g.BlockOf(fn)]
	if !rb.Returns || len(rb.Succs) != 0 {
		t.Errorf("ret block: Returns=%v Succs=%v", rb.Returns, rb.Succs)
	}
}

func TestCFGJumpTableEdges(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.data
tbl:    .jumptable absolute case0, case1, case2
.text
main:   movi r1, tbl
        ldw  r2, 0(r1)
        jr   r2
case0:  syscall exit
case1:  syscall exit
case2:  syscall exit
`)
	g := BuildCFG(p, DefaultConfig())
	jb := g.Blocks[g.BlockOf(2)] // the jr
	if len(jb.Succs) != 3 {
		t.Fatalf("jump-table block succs = %v, want 3 cases", jb.Succs)
	}
	if jb.IndirectExit {
		t.Error("recognized table jump marked as unresolved indirect")
	}
	reach := g.Reachable()
	for _, label := range []string{"case0", "case1", "case2"} {
		if !reach[g.BlockOf(p.Symbols[label])] {
			t.Errorf("%s not reachable through table edge", label)
		}
	}
}

func TestCFGUnresolvedIndirect(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   movi r1, 3
        jr   r1
        syscall exit
        syscall exit
`)
	g := BuildCFG(p, DefaultConfig())
	jb := g.Blocks[g.BlockOf(1)]
	if !jb.IndirectExit {
		t.Error("jr through a non-table value should be an unresolved indirect exit")
	}
	if len(jb.Succs) != 0 {
		t.Errorf("unresolved jr has succs %v", jb.Succs)
	}
}

// Corrupt branch targets must drop edges, not crash the builder.
func TestCFGTruncatedTarget(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   movi r1, 1
        beq  r1, r0, main
        syscall exit
`)
	p.Text[1].Imm = 9999 // out of range
	g := BuildCFG(p, DefaultConfig())
	bb := g.Blocks[g.BlockOf(1)]
	if len(bb.Succs) != 1 { // only the fall-through survives
		t.Errorf("corrupt branch succs = %v, want fall-through only", bb.Succs)
	}
}

func TestCFGOnTransformedApps(t *testing.T) {
	for _, b := range buildAllBundles(t) {
		g := BuildCFG(b.Transformed, DefaultConfig())
		if err := checkCFGWellFormed(g); err != nil {
			t.Errorf("%v transformed: %v", b.App, err)
		}
		// Every original-text block index must be mirrored in range: the
		// shadow doubles the text, so there are at least as many blocks.
		og := BuildCFG(b.Original, DefaultConfig())
		if len(g.Blocks) < len(og.Blocks) {
			t.Errorf("%v: transformed CFG has fewer blocks (%d) than original (%d)",
				b.App, len(g.Blocks), len(og.Blocks))
		}
	}
}

func checkCFGWellFormed(g *CFG) error {
	errf := fmt.Errorf
	for bi, b := range g.Blocks {
		if b.Start >= b.End {
			return errf("block %d empty [%d,%d)", bi, b.Start, b.End)
		}
		for pc := b.Start; pc < b.End; pc++ {
			if g.BlockOf(pc) != bi {
				return errf("pc %d maps to block %d, inside block %d", pc, g.BlockOf(pc), bi)
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(g.Blocks) {
				return errf("block %d has bad successor %d", bi, s)
			}
			found := false
			for _, p := range g.Blocks[s].Preds {
				if p == bi {
					found = true
				}
			}
			if !found {
				return errf("edge %d->%d missing from preds", bi, s)
			}
		}
	}
	return nil
}
