package analysis

import (
	"fmt"
	"sort"

	"spechint/internal/vm"
)

// Block is one basic block: the half-open instruction range [Start, End).
// The last instruction decides the block's successors.
type Block struct {
	Start, End int64

	Succs []int // successor block indices, deduplicated, sorted
	Preds []int // predecessor block indices

	// CallsTo lists direct-call target PCs made by this block (a call also
	// has a fall-through successor: the callee returns).
	CallsTo []int64

	// IndirectExit marks a block ending in an indirect transfer whose
	// targets could not be resolved statically (jr/callr through an
	// unrecognized value, or the shadow handler variants).
	IndirectExit bool

	// Returns marks a block ending in ret/ret.h: control leaves the
	// function, so the block has no intra-procedural successors.
	Returns bool
}

// CFG is the control-flow graph of a program's text section.
type CFG struct {
	Prog   *vm.Program
	Blocks []Block
	Entry  int // block index of the program entry

	pcBlock []int // instruction index -> containing block
}

// CallSite is one direct call edge.
type CallSite struct {
	PC     int64 // address of the call instruction
	Target int64 // callee entry
}

// BuildCFG partitions the text into basic blocks and wires the edges.
// Jump-table edges come from tables registered in the program: a rewritten
// jtr names its table directly; an original-text jr is matched against the
// same load idiom SpecHint recognizes (cfg.JumpTableLookback). Programs with
// out-of-range targets (e.g. deliberately corrupted ones under test) still
// build; the bad edges are simply dropped.
func BuildCFG(p *vm.Program, cfg Config) *CFG {
	if cfg.JumpTableLookback <= 0 {
		cfg.JumpTableLookback = 1
	}
	n := int64(len(p.Text))
	inText := func(pc int64) bool { return pc >= 0 && pc < n }

	// Pass 1: leaders. Entry, every transfer target, every instruction after
	// a control transfer or a terminating syscall, and every text symbol
	// (function entries make block boundaries readable).
	leader := make([]bool, n)
	mark := func(pc int64) {
		if inText(pc) {
			leader[pc] = true
		}
	}
	if n > 0 {
		leader[0] = true
	}
	mark(p.Entry)
	for _, addr := range p.Symbols {
		mark(addr)
	}
	tableTargets := func(ti int) []int64 {
		if ti < 0 || ti >= len(p.JumpTables) {
			return nil
		}
		jt := p.JumpTables[ti]
		if jt.Format != vm.JTAbsolute {
			return nil
		}
		var out []int64
		for e := int64(0); e < jt.Len; e++ {
			off := jt.Addr + e*8
			if off+8 > int64(len(p.Data)) {
				continue
			}
			t := int64(0)
			for b := int64(0); b < 8; b++ {
				t |= int64(p.Data[off+b]) << (8 * b)
			}
			// In a transformed program the handling routine maps
			// original-text entries into the shadow at run time.
			if p.ShadowBase > 0 && t >= 0 && t < p.OrigTextLen {
				t += p.ShadowBase
			}
			out = append(out, t)
		}
		return out
	}
	for pc := int64(0); pc < n; pc++ {
		ins := p.Text[pc]
		switch {
		case ins.Op.IsBranch():
			mark(ins.Imm)
			mark(pc + 1)
		case ins.Op == vm.JMP:
			mark(ins.Imm)
			mark(pc + 1)
		case ins.Op == vm.CALL:
			mark(ins.Imm)
			mark(pc + 1)
		case ins.Op == vm.JTR:
			for _, t := range tableTargets(int(ins.Imm)) {
				mark(t)
			}
			mark(pc + 1)
		case ins.Op == vm.JR:
			if ti, ok := recognizeJumpTable(p, pc, ins.Rs1, cfg.JumpTableLookback); ok {
				for _, t := range tableTargets(ti) {
					mark(t)
				}
			}
			mark(pc + 1)
		case ins.Op.IsIndirect(): // callr, ret and the handler variants
			mark(pc + 1)
		case ins.Op == vm.SYSCALL && ins.Imm == vm.SysExit:
			mark(pc + 1)
		}
	}

	// Pass 2: blocks.
	g := &CFG{Prog: p, pcBlock: make([]int, n)}
	for pc := int64(0); pc < n; {
		end := pc + 1
		for end < n && !leader[end] {
			end++
		}
		for i := pc; i < end; i++ {
			g.pcBlock[i] = len(g.Blocks)
		}
		g.Blocks = append(g.Blocks, Block{Start: pc, End: end})
		pc = end
	}

	// Pass 3: edges.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := p.Text[b.End-1]
		var succs []int64
		switch {
		case last.Op.IsBranch():
			succs = append(succs, last.Imm, b.End)
		case last.Op == vm.JMP:
			succs = append(succs, last.Imm)
		case last.Op == vm.CALL:
			b.CallsTo = append(b.CallsTo, last.Imm)
			succs = append(succs, b.End) // the callee returns here
		case last.Op == vm.JTR:
			succs = append(succs, tableTargets(int(last.Imm))...)
		case last.Op == vm.JR:
			if ti, ok := recognizeJumpTable(p, b.End-1, last.Rs1, cfg.JumpTableLookback); ok {
				succs = append(succs, tableTargets(ti)...)
			} else {
				b.IndirectExit = true
			}
		case last.Op == vm.JRH:
			b.IndirectExit = true
		case last.Op == vm.CALLR, last.Op == vm.CALLRH:
			b.IndirectExit = true // unknown callee
			succs = append(succs, b.End)
		case last.Op == vm.RET, last.Op == vm.RETH:
			b.Returns = true
		case last.Op == vm.SYSCALL && last.Imm == vm.SysExit:
			// Terminates the program: no successors.
		default:
			if b.End < n {
				succs = append(succs, b.End)
			}
		}
		seen := make(map[int]bool)
		for _, t := range succs {
			if !inText(t) {
				continue // corrupted or truncated target: drop the edge
			}
			sb := g.pcBlock[t]
			if !seen[sb] {
				seen[sb] = true
				b.Succs = append(b.Succs, sb)
			}
		}
		sort.Ints(b.Succs)
	}
	for bi := range g.Blocks {
		for _, s := range g.Blocks[bi].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, bi)
		}
	}
	if inText(p.Entry) {
		g.Entry = g.pcBlock[p.Entry]
	}
	return g
}

// recognizeJumpTable reports whether the indirect jump at pc consumes a value
// loaded from a registered absolute-format jump table within the lookback
// window — the same idiom spechint.Transform recognizes.
func recognizeJumpTable(p *vm.Program, pc int64, reg uint8, lookback int) (int, bool) {
	abs := make(map[int64]int)
	for i, jt := range p.JumpTables {
		if jt.Format == vm.JTAbsolute {
			abs[jt.Addr] = i
		}
	}
	lo := pc - int64(lookback)
	if lo < 0 {
		lo = 0
	}
	for j := pc - 1; j >= lo; j-- {
		ins := p.Text[j]
		if ins.Op == vm.LDW && ins.Rd == reg {
			if ti, ok := abs[ins.Imm]; ok {
				return ti, true
			}
			return 0, false
		}
		if rd, writes := ins.WritesReg(); writes && rd == reg {
			return 0, false
		}
	}
	return 0, false
}

// BlockOf returns the index of the block containing pc, or -1.
func (g *CFG) BlockOf(pc int64) int {
	if pc < 0 || pc >= int64(len(g.pcBlock)) {
		return -1
	}
	return g.pcBlock[pc]
}

// Calls returns every direct call edge in the graph.
func (g *CFG) Calls() []CallSite {
	var out []CallSite
	for _, b := range g.Blocks {
		for _, t := range b.CallsTo {
			out = append(out, CallSite{PC: b.End - 1, Target: t})
		}
	}
	return out
}

// CallGraph returns the direct call graph: callee entry PC -> the PCs of the
// call instructions targeting it.
func (g *CFG) CallGraph() map[int64][]int64 {
	cg := make(map[int64][]int64)
	for _, c := range g.Calls() {
		cg[c.Target] = append(cg[c.Target], c.PC)
	}
	return cg
}

// Reachable returns, per block, whether it is reachable from the program
// entry following successor and call edges.
func (g *CFG) Reachable() []bool { return g.ReachableFrom(g.Prog.Entry) }

// ReachableFrom computes block reachability from the given starting PCs.
func (g *CFG) ReachableFrom(pcs ...int64) []bool {
	seen := make([]bool, len(g.Blocks))
	var stack []int
	push := func(b int) {
		if b >= 0 && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	for _, pc := range pcs {
		push(g.BlockOf(pc))
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			push(s)
		}
		for _, t := range g.Blocks[b].CallsTo {
			push(g.BlockOf(t))
		}
	}
	return seen
}

// Dominators computes the immediate dominator of every block reachable from
// the entry (Cooper-Harvey-Kennedy iterative algorithm). The entry block is
// its own idom; unreachable blocks get -1.
func (g *CFG) Dominators() []int {
	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	if len(g.Blocks) == 0 {
		return idom
	}

	// Reverse postorder over successor edges from the entry.
	order := make([]int, 0, len(g.Blocks))
	state := make([]uint8, len(g.Blocks)) // 0 new, 1 open, 2 done
	var dfs func(int)
	dfs = func(b int) {
		state[b] = 1
		for _, s := range g.Blocks[b].Succs {
			if state[s] == 0 {
				dfs(s)
			}
		}
		state[b] = 2
		order = append(order, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, len(g.Blocks))
	for i, b := range order {
		rpoNum[b] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[g.Entry] = g.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, pred := range g.Blocks[b].Preds {
				if idom[pred] == -1 {
					continue // predecessor not reached yet
				}
				if newIdom == -1 {
					newIdom = pred
				} else {
					newIdom = intersect(pred, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom (as
// returned by Dominators).
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if idom[b] == b || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// Summary is a one-paragraph description of the graph for reports.
func (g *CFG) Summary() string {
	edges := 0
	indirect := 0
	for _, b := range g.Blocks {
		edges += len(b.Succs)
		if b.IndirectExit {
			indirect++
		}
	}
	reach := 0
	for _, r := range g.Reachable() {
		if r {
			reach++
		}
	}
	return fmt.Sprintf("%d blocks, %d edges, %d direct calls, %d unresolved indirect exits, %d/%d blocks reachable from entry",
		len(g.Blocks), edges, len(g.Calls()), indirect, reach, len(g.Blocks))
}
