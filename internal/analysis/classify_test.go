package analysis

import (
	"strings"
	"testing"

	"spechint/internal/apps"
)

// The classifier must reproduce the paper's per-application story (§4.1-§4.3):
// Agrep's accesses are fully determined by argv, XDataSlice needs exactly one
// header read, and Gnuld's later passes chase pointers through file data.

func classifyApp(t *testing.T, a apps.App) *Report {
	t.Helper()
	b, err := apps.Build(a, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Classify(b.Original, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestClassifyAgrep(t *testing.T) {
	r := classifyApp(t, apps.Agrep)
	if len(r.Sites) == 0 {
		t.Fatal("no read sites found")
	}
	for _, s := range r.Sites {
		if s.Class != ClassArgv {
			t.Errorf("agrep site at %d is %v, want argv-determined", s.PC, s.Class)
		}
	}
	if f := r.HintableSiteFraction(); f != 1.0 {
		t.Errorf("agrep hintable fraction = %v, want 1.0", f)
	}
}

func TestClassifyXDataSlice(t *testing.T) {
	r := classifyApp(t, apps.XDataSlice)
	c := r.ClassCounts()
	if c[ClassData] != 0 {
		t.Errorf("xds has %d data-dependent sites, want 0", c[ClassData])
	}
	if c[ClassHeader] == 0 {
		t.Error("xds block reads should be header-determined (offsets come from the header read)")
	}
	if c[ClassArgv] == 0 {
		t.Error("the xds header read itself should be argv-determined")
	}
}

func TestClassifyGnuld(t *testing.T) {
	r := classifyApp(t, apps.Gnuld)
	c := r.ClassCounts()
	if c[ClassArgv] == 0 {
		t.Error("gnuld's per-file header reads should be argv-determined")
	}
	if c[ClassHeader] == 0 {
		t.Error("gnuld's section-table reads should be header-determined")
	}
	if c[ClassData] == 0 {
		t.Error("gnuld's symbol/debug/pass-2 reads should be data-dependent")
	}
	// The defining property: a strict majority of gnuld's sites depend on
	// file data (the paper's reason its coverage tops out near half).
	if 2*c[ClassData] <= len(r.Sites) {
		t.Errorf("gnuld data-dependent sites = %d of %d, want a majority", c[ClassData], len(r.Sites))
	}
}

func TestClassifyPostgres(t *testing.T) {
	r := classifyApp(t, apps.Postgres)
	if len(r.Sites) == 0 {
		t.Fatal("no read sites found")
	}
	for _, s := range r.Sites {
		if s.Class != ClassData {
			t.Errorf("postgres site at %d is %v, want data-dependent (probe offsets come from tuples)", s.PC, s.Class)
		}
	}
}

// The per-app static hintability ordering mirrors the paper's Table 4:
// XDataSlice > Agrep > Gnuld.
func TestHintableOrderingAcrossApps(t *testing.T) {
	xds := classifyApp(t, apps.XDataSlice).HintableSiteFraction()
	agrep := classifyApp(t, apps.Agrep).HintableSiteFraction()
	gnuld := classifyApp(t, apps.Gnuld).HintableSiteFraction()
	if !(xds >= agrep && agrep > gnuld) {
		t.Errorf("hintable fractions xds=%.2f agrep=%.2f gnuld=%.2f, want xds >= agrep > gnuld", xds, agrep, gnuld)
	}
}

func TestClassifyRejectsTransformed(t *testing.T) {
	b, err := apps.Build(apps.Agrep, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Classify(b.Transformed, DefaultConfig()); err == nil {
		t.Fatal("classify accepted a transformed program")
	}
}

func TestReportStringMentionsEverySite(t *testing.T) {
	r := classifyApp(t, apps.Gnuld)
	s := r.String()
	for _, site := range r.Sites {
		if !strings.Contains(s, site.Class.String()) {
			t.Fatalf("report missing class %v:\n%s", site.Class, s)
		}
	}
	if !strings.Contains(s, "read sites:") {
		t.Fatalf("report missing summary:\n%s", s)
	}
}

// TestAnalyzeReportDeterministic: the -analyze report (Report.String) and the
// synthesis report must be byte-identical across fresh builds of the same
// program — no map-iteration order may leak into either.
func TestAnalyzeReportDeterministic(t *testing.T) {
	bundles := buildAllBundles(t)
	for _, b := range bundles {
		var prevAnalyze, prevSynth string
		for trial := 0; trial < 5; trial++ {
			r, err := Classify(b.Original, DefaultConfig())
			if err != nil {
				t.Fatalf("%v: %v", b.App, err)
			}
			got := r.String()
			s, err := Synthesize(b.Original, Config{})
			if err != nil {
				t.Fatalf("%v: %v", b.App, err)
			}
			gotSynth := s.String()
			if trial > 0 {
				if got != prevAnalyze {
					t.Fatalf("%v: analyze report differs between runs", b.App)
				}
				if gotSynth != prevSynth {
					t.Fatalf("%v: synthesis report differs between runs", b.App)
				}
			}
			prevAnalyze, prevSynth = got, gotSynth
		}
	}
}

// TestPredictedCoverageDeterministic: the float accumulation in
// PredictedCoverage walks a map; it must sort first so the low bits do not
// depend on iteration order.
func TestPredictedCoverageDeterministic(t *testing.T) {
	b := buildAllBundles(t)[0]
	r, err := Classify(b.Original, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[int64]SiteWeight)
	for i, s := range r.Sites {
		weights[s.PC] = SiteWeight{Calls: int64(3 + i), DataCalls: int64(2 + i)}
	}
	// Also weight a PC absent from the report (conservative data-dependent path).
	weights[1<<40] = SiteWeight{Calls: 7, DataCalls: 5}
	first := r.PredictedCoverage(weights)
	for trial := 0; trial < 32; trial++ {
		if got := r.PredictedCoverage(weights); got != first {
			t.Fatalf("PredictedCoverage varies: %v then %v", first, got)
		}
	}
}
