// Package analysis is the static-analysis layer over vm programs: a
// control-flow-graph builder, a small dataflow framework (reaching
// definitions and a taint lattice), a hintability classifier that predicts
// the paper's Table 4 hint-coverage numbers without running the program, and
// speclint, a shadow-text verifier that checks every invariant the SpecHint
// transform (internal/spechint) is supposed to establish.
//
// The paper's tool is itself a static binary analysis (§3.3: resolving
// control transfers, recognizing jump-table idioms, rewriting loads and
// stores), and its §6 future work asks for deeper static analysis to make
// speculation cheaper and more accurate. This package supplies that layer:
//
//   - CFG (cfg.go): basic blocks, successor/predecessor edges including
//     jump-table edges, the call graph, dominators, and reachability.
//   - Dataflow (dataflow.go): classic reaching definitions over the CFG,
//     built on the instruction use-def accessors vm.Instr exposes.
//   - Taint/classification (taint.go, classify.go): an abstract
//     interpretation whose lattice tracks what runtime input each value
//     depends on — nothing (constants), the static argument data (argv),
//     first-level file metadata (headers), or arbitrary file data — and
//     classifies every read call site into the paper's access-pattern
//     classes: argv-determined (Agrep), header-determined (XDataSlice), or
//     data-dependent (Gnuld).
//   - speclint (speclint.go): verifies a transformed program's shadow text
//     against the transform invariants and reports violations with
//     disassembly context.
package analysis

// Config parameterizes the analyses.
type Config struct {
	// JumpTableLookback is how many instructions before an indirect jump
	// the recognizer scans for the table-load idiom, mirroring
	// spechint.Options.JumpTableLookback.
	JumpTableLookback int
}

// DefaultConfig matches spechint.DefaultOptions.
func DefaultConfig() Config { return Config{JumpTableLookback: 4} }
