package analysis

import (
	"fmt"

	"spechint/internal/vm"
)

// The value-range pass: a forward interval dataflow over the CFG, plugged
// into the generic solver (solveForwardE). Each register carries a signed
// interval [Lo, Hi] with independent ±∞ flags; the in-effect file position is
// tracked the same way, so every read site gets an offset bound. Branch
// conditions refine intervals per edge (the XDataSlice header sanity checks
// are what bound its block offsets), and per-block join counting triggers
// widening so cyclic graphs terminate.

// satCap bounds finite interval arithmetic; results beyond it widen to ∞.
const satCap = int64(1) << 62

// Interval is a signed value range [Lo, Hi]; LoInf/HiInf select -∞/+∞ for
// the respective bound (the bound field is then ignored).
type Interval struct {
	Lo, Hi       int64
	LoInf, HiInf bool
}

// Top is the unconstrained interval.
func Top() Interval { return Interval{LoInf: true, HiInf: true} }

// Point is the singleton interval [k, k].
func Point(k int64) Interval { return Interval{Lo: k, Hi: k} }

// Span is the finite interval [lo, hi].
func Span(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Finite reports whether both bounds are finite.
func (iv Interval) Finite() bool { return !iv.LoInf && !iv.HiInf }

// Const reports the single value of a point interval.
func (iv Interval) Const() (int64, bool) {
	if iv.Finite() && iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

func (iv Interval) String() string {
	lo, hi := fmt.Sprint(iv.Lo), fmt.Sprint(iv.Hi)
	if iv.LoInf {
		lo = "-inf"
	}
	if iv.HiInf {
		hi = "+inf"
	}
	return "[" + lo + "," + hi + "]"
}

// norm canonicalizes an interval: an infinite bound zeroes its ignored
// finite field, so struct equality (the solver's change detector) never
// distinguishes two representations of the same interval.
func (iv Interval) norm() Interval {
	if iv.LoInf {
		iv.Lo = 0
	}
	if iv.HiInf {
		iv.Hi = 0
	}
	return iv
}

// Join is the interval union hull.
func (iv Interval) Join(o Interval) Interval {
	r := iv
	if o.LoInf || (!r.LoInf && o.Lo < r.Lo) {
		r.LoInf, r.Lo = o.LoInf, o.Lo
	}
	if o.HiInf || (!r.HiInf && o.Hi > r.Hi) {
		r.HiInf, r.Hi = o.HiInf, o.Hi
	}
	return r.norm()
}

// meet intersects two intervals; an empty result collapses to the first
// operand (refinement is advisory: contradictory branch facts mean the edge
// is dynamically dead, and keeping the old state stays sound).
func (iv Interval) meet(o Interval) Interval {
	r := iv
	if !o.LoInf && (r.LoInf || o.Lo > r.Lo) {
		r.LoInf, r.Lo = false, o.Lo
	}
	if !o.HiInf && (r.HiInf || o.Hi < r.Hi) {
		r.HiInf, r.Hi = false, o.Hi
	}
	if r.Finite() && r.Lo > r.Hi {
		return iv.norm()
	}
	return r.norm()
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) || s > satCap || s < -satCap {
		return 0, false
	}
	return s, true
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || p > satCap || p < -satCap {
		return 0, false
	}
	return p, true
}

func itvAdd(a, b Interval) Interval {
	r := Interval{LoInf: a.LoInf || b.LoInf, HiInf: a.HiInf || b.HiInf}
	if !r.LoInf {
		if v, ok := satAdd(a.Lo, b.Lo); ok {
			r.Lo = v
		} else {
			r.LoInf = true
		}
	}
	if !r.HiInf {
		if v, ok := satAdd(a.Hi, b.Hi); ok {
			r.Hi = v
		} else {
			r.HiInf = true
		}
	}
	return r
}

func itvNeg(a Interval) Interval {
	return Interval{Lo: -a.Hi, Hi: -a.Lo, LoInf: a.HiInf, HiInf: a.LoInf}.norm()
}

func itvSub(a, b Interval) Interval { return itvAdd(a, itvNeg(b)) }

func itvMul(a, b Interval) Interval {
	if !a.Finite() || !b.Finite() {
		// Only the simple scaling case keeps precision: finite × point.
		if k, ok := b.Const(); ok {
			return itvScale(a, k)
		}
		if k, ok := a.Const(); ok {
			return itvScale(b, k)
		}
		return Top()
	}
	lo, hi := int64(0), int64(0)
	first := true
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p, ok := satMul(x, y)
			if !ok {
				return Top()
			}
			if first || p < lo {
				lo = p
			}
			if first || p > hi {
				hi = p
			}
			first = false
		}
	}
	return Span(lo, hi)
}

func itvScale(a Interval, k int64) Interval {
	if k == 0 {
		return Point(0)
	}
	r := Interval{}
	lo, okLo := satMul(a.Lo, k)
	hi, okHi := satMul(a.Hi, k)
	if k < 0 {
		lo, hi = hi, lo
		okLo, okHi = okHi, okLo
		a.LoInf, a.HiInf = a.HiInf, a.LoInf
	}
	r.Lo, r.LoInf = lo, a.LoInf || !okLo
	r.Hi, r.HiInf = hi, a.HiInf || !okHi
	return r.norm()
}

// itvALU interprets one ALU op over intervals. y is the second operand (the
// immediate is passed as a point interval).
func itvALU(op vm.Op, x, y Interval) Interval {
	// Exact fold when both are single points.
	if xk, ok := x.Const(); ok {
		if yk, ok := y.Const(); ok {
			if v, ok := constFold(op, xk, yk); ok {
				return Point(v)
			}
		}
	}
	switch op {
	case vm.ADD, vm.ADDI:
		return itvAdd(x, y)
	case vm.SUB:
		return itvSub(x, y)
	case vm.MUL:
		return itvMul(x, y)
	case vm.SHL, vm.SHLI:
		if k, ok := y.Const(); ok && k >= 0 && k < 62 {
			return itvScale(x, int64(1)<<uint(k))
		}
		return Top()
	case vm.SHR, vm.SHRI:
		if k, ok := y.Const(); ok && k >= 0 && k < 63 && !x.LoInf && x.Lo >= 0 {
			if x.HiInf {
				return Interval{Lo: x.Lo >> uint(k), HiInf: true}
			}
			return Span(x.Lo>>uint(k), x.Hi>>uint(k))
		}
		return Top()
	case vm.AND, vm.ANDI:
		// x & m with x ≥ 0 clears bits: the result stays within [0, x.Hi].
		// With a non-negative mask it is additionally ≤ m.
		if !x.LoInf && x.Lo >= 0 {
			r := Interval{Lo: 0, Hi: x.Hi, HiInf: x.HiInf}
			if m, ok := y.Const(); ok && m >= 0 && (!r.HiInf && m < r.Hi || r.HiInf) {
				r.Hi, r.HiInf = m, false
			}
			return r.norm()
		}
		return Top()
	case vm.MOD:
		if m, ok := y.Const(); ok && m > 0 {
			if !x.LoInf && x.Lo >= 0 {
				return Span(0, m-1)
			}
			return Span(-(m - 1), m-1)
		}
		return Top()
	case vm.DIV:
		if m, ok := y.Const(); ok && m > 0 && x.Finite() {
			return Span(x.Lo/m, x.Hi/m)
		}
		return Top()
	case vm.SLT, vm.SLTI:
		return Span(0, 1)
	default: // OR, XOR and anything else: no useful bound
		return Top()
	}
}

// rangeState is the per-program-point abstract state.
type rangeState struct {
	regs [vm.NumRegs]Interval
	fpos Interval // in-effect file position of the current stream
}

func (s *rangeState) clone() *rangeState { c := *s; return &c }

// LoadOracle resolves a load instruction to a value interval: the caller
// (the synthesizer) knows which data regions stay clean and how strided
// cursors walk them. Returning ok=false means "no bound".
type LoadOracle func(pc int64, ins vm.Instr) (Interval, bool)

// Ranges is the solved value-range analysis.
type Ranges struct {
	g      *CFG
	oracle LoadOracle
	in     []*rangeState

	// Sites maps each read-syscall PC to the joined file-position interval
	// observed at the call, over all abstract visits.
	Sites map[int64]Interval
}

// widenAfter is how many joins a block absorbs before unstable bounds widen
// to ±∞.
const widenAfter = 4

// SolveRanges runs the interval fixpoint. oracle may be nil (loads then have
// no bound).
func SolveRanges(g *CFG, oracle LoadOracle) *Ranges {
	ra := &Ranges{g: g, oracle: oracle, Sites: make(map[int64]Interval)}
	joins := make([]int, len(g.Blocks))
	// Widening applies only at cycle heads (targets of DFS retreating edges):
	// every cycle contains one, which bounds the ascent, while blocks outside
	// the widening set keep their branch-refined bounds — a loop body's
	// refined counter must not be re-widened just because its bound is still
	// climbing toward the refinement limit.
	widenAt := retreatTargets(g)

	boundary := func() *rangeState {
		s := &rangeState{}
		// Registers start zeroed; SP is set by the machine, not the text.
		s.regs[vm.SP] = Top()
		s.fpos = Top()
		return s
	}
	join := func(block int, dst, src *rangeState) bool {
		joins[block]++
		widen := widenAt[block] && joins[block] > widenAfter
		changed := false
		merge := func(d *Interval, s Interval) {
			j := d.Join(s)
			if j != *d {
				if widen {
					// Widen only the bounds that are still moving.
					if j.Lo != d.Lo || j.LoInf != d.LoInf {
						j.LoInf = true
					}
					if j.Hi != d.Hi || j.HiInf != d.HiInf {
						j.HiInf = true
					}
				}
				*d = j.norm()
				changed = true
			}
		}
		for i := range dst.regs {
			merge(&dst.regs[i], src.regs[i])
		}
		merge(&dst.fpos, src.fpos)
		return changed
	}
	ra.in = solveForwardE(g, boundary,
		(*rangeState).clone,
		join,
		ra.refineEdge,
		func(block int, s *rangeState) *rangeState {
			b := g.Blocks[block]
			for pc := b.Start; pc < b.End; pc++ {
				ra.transfer(s, pc, g.Prog.Text[pc])
			}
			return s
		})
	return ra
}

// retreatTargets marks every block that is the target of a retreating edge
// in a DFS from the entry (over both successor and direct-call edges, which
// both propagate state). Every cycle in the flow relation contains at least
// one such block.
func retreatTargets(g *CFG) []bool {
	target := make([]bool, len(g.Blocks))
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.Blocks))
	edges := func(b int) []int {
		out := append([]int(nil), g.Blocks[b].Succs...)
		for _, t := range g.Blocks[b].CallsTo {
			if cb := g.BlockOf(t); cb >= 0 {
				out = append(out, cb)
			}
		}
		return out
	}
	// Iterative DFS keeping an explicit edge cursor per frame.
	type frame struct {
		block int
		succs []int
		next  int
	}
	var stack []frame
	push := func(b int) {
		color[b] = gray
		stack = append(stack, frame{block: b, succs: edges(b)})
	}
	push(g.Entry)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			color[f.block] = black
			stack = stack[:len(stack)-1]
			continue
		}
		s := f.succs[f.next]
		f.next++
		switch color[s] {
		case white:
			push(s)
		case gray:
			target[s] = true
		}
	}
	return target
}

func (ra *Ranges) val(s *rangeState, r uint8) Interval {
	if r == vm.R0 {
		return Point(0)
	}
	return s.regs[r]
}

func (ra *Ranges) set(s *rangeState, r uint8, v Interval) {
	if r != vm.R0 {
		s.regs[r] = v
	}
}

func (ra *Ranges) transfer(s *rangeState, pc int64, ins vm.Instr) {
	switch {
	case ins.Op >= vm.ADD && ins.Op <= vm.SLT:
		ra.set(s, ins.Rd, itvALU(ins.Op, ra.val(s, ins.Rs1), ra.val(s, ins.Rs2)))

	case ins.Op >= vm.ADDI && ins.Op <= vm.SLTI:
		ra.set(s, ins.Rd, itvALU(ins.Op, ra.val(s, ins.Rs1), Point(ins.Imm)))

	case ins.Op == vm.MOVI:
		ra.set(s, ins.Rd, Point(ins.Imm))

	case ins.Op.IsLoad():
		v := Top()
		if ra.oracle != nil {
			if iv, ok := ra.oracle(pc, ins); ok {
				v = iv
			}
		}
		if ins.Op == vm.LDB || ins.Op == vm.LDBS {
			v = v.meet(Span(0, 255)) // byte loads are unsigned
		}
		ra.set(s, ins.Rd, v)

	case ins.Op.IsCall():
		ra.set(s, vm.RA, Point(pc+1))

	case ins.Op == vm.SYSCALL:
		switch ins.Imm {
		case vm.SysOpen:
			s.fpos = Point(0)
			ra.set(s, vm.R1, Top())
		case vm.SysSeek:
			s.fpos = ra.val(s, vm.R2)
			ra.set(s, vm.R1, Top())
		case vm.SysRead:
			iv := s.fpos
			if prev, ok := ra.Sites[pc]; ok {
				iv = prev.Join(iv)
			}
			ra.Sites[pc] = iv
			// The position advances by at most the requested length.
			n := ra.val(s, vm.R3)
			adv := Interval{Lo: 0, Hi: n.Hi, HiInf: n.HiInf}
			if !adv.HiInf && adv.Hi < 0 {
				adv.Hi = 0
			}
			s.fpos = itvAdd(s.fpos, adv)
			ra.set(s, vm.R1, Top())
		case vm.SysClose:
			s.fpos = Top()
			ra.set(s, vm.R1, Top())
		default:
			ra.set(s, vm.R1, Top())
		}
	}
}

// refineEdge narrows the state along a conditional-branch edge using the
// branch predicate (or its negation on the fall-through edge).
func (ra *Ranges) refineEdge(from, to int, s *rangeState) *rangeState {
	b := ra.g.Blocks[from]
	ins := ra.g.Prog.Text[b.End-1]
	if !ins.Op.IsBranch() {
		return s
	}
	taken := ra.g.BlockOf(ins.Imm)
	fall := ra.g.BlockOf(b.End)
	if taken == fall {
		return s // both edges reach the same block: no fact holds
	}
	var onTaken bool
	switch to {
	case taken:
		onTaken = true
	case fall:
		onTaken = false
	default:
		return s
	}

	x, y := ra.val(s, ins.Rs1), ra.val(s, ins.Rs2)
	setPair := func(nx, ny Interval) {
		ra.set(s, ins.Rs1, x.meet(nx))
		ra.set(s, ins.Rs2, y.meet(ny))
	}
	// Predicate that holds on this edge.
	op := ins.Op
	if !onTaken {
		switch op { // negate
		case vm.BEQ:
			op = vm.BNE
		case vm.BNE:
			op = vm.BEQ
		case vm.BLT:
			op = vm.BGE
		case vm.BGE:
			op = vm.BLT
		}
	}
	switch op {
	case vm.BEQ: // x == y: both collapse to the intersection
		m := x.meet(y)
		setPair(m, m)
	case vm.BNE: // x != y: trims only a point endpoint
		if k, ok := y.Const(); ok {
			setPair(trimNE(x, k), y)
		} else if k, ok := x.Const(); ok {
			setPair(x, trimNE(y, k))
		}
	case vm.BLT: // x < y
		setPair(
			Interval{LoInf: true, Hi: y.Hi - 1, HiInf: y.HiInf},
			Interval{Lo: x.Lo + 1, LoInf: x.LoInf, HiInf: true})
	case vm.BGE: // x >= y
		setPair(
			Interval{Lo: y.Lo, LoInf: y.LoInf, HiInf: true},
			Interval{LoInf: true, Hi: x.Hi, HiInf: x.HiInf})
	}
	return s
}

// trimNE removes k from an interval when it sits on a finite endpoint.
func trimNE(iv Interval, k int64) Interval {
	if !iv.LoInf && iv.Lo == k && !(iv.Finite() && iv.Lo == iv.Hi) {
		iv.Lo++
	}
	if !iv.HiInf && iv.Hi == k && !(iv.Finite() && iv.Lo == iv.Hi) {
		iv.Hi--
	}
	return iv
}

// At recomputes the interval of reg just before pc executes.
func (ra *Ranges) At(pc int64, reg uint8) Interval {
	block := ra.g.BlockOf(pc)
	if block < 0 || ra.in[block] == nil {
		return Top()
	}
	s := ra.in[block].clone()
	b := ra.g.Blocks[block]
	for p := b.Start; p < b.End && p < pc; p++ {
		ra.transfer(s, p, ra.g.Prog.Text[p])
	}
	return ra.val(s, reg)
}

// SiteBound returns the file-position interval observed at a read site.
func (ra *Ranges) SiteBound(pc int64) (Interval, bool) {
	iv, ok := ra.Sites[pc]
	return iv, ok
}
