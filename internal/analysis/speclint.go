package analysis

import (
	"fmt"
	"sort"
	"strings"

	"spechint/internal/asm"
	"spechint/internal/spechint"
	"spechint/internal/vm"
)

// speclint verifies the SpecHint transform invariants on a transformed
// program's shadow text. Each check corresponds to a guarantee the paper's
// tool established statically (§3.3); a violation means speculation could
// corrupt the original thread's state or escape the shadow, the two failure
// modes the transform exists to prevent.

// LintCheck identifies one invariant.
type LintCheck string

const (
	// LintShape: the program has a well-formed shadow: OrigTextLen == n,
	// ShadowBase == n, len(Text) == 2n, the entry in original text, and
	// every original symbol carries its $shadow twin.
	LintShape LintCheck = "shadow-shape"
	// LintOrigText: the original text is instruction-for-instruction free of
	// speculative opcodes — the original thread's path carries zero added
	// instructions (§3.1).
	LintOrigText LintCheck = "original-text-modified"
	// LintUncheckedMem: every load/store in the shadow is the checked
	// variant, except SP-relative accesses under the stack-copy
	// optimization (§3.2.2, footnote 3).
	LintUncheckedMem LintCheck = "unchecked-memory"
	// LintEscape: every statically resolved transfer in the shadow lands
	// inside the shadow text (§3.3: targets are rebased).
	LintEscape LintCheck = "shadow-escape"
	// LintIndirect: no raw indirect transfer survives in the shadow; all are
	// routed through the handling routine or the checked jump-table op.
	LintIndirect LintCheck = "unrouted-indirect"
	// LintJumpTable: a jtr references a registered absolute-format table
	// whose entries stay inside text, or a recognized table jump was left
	// unrewritten (§3.2.1).
	LintJumpTable LintCheck = "jump-table"
	// LintOutput: no output-routine call survives in the shadow when the
	// transform was asked to remove them (§3.3: printf, fprintf, flsbuf).
	LintOutput LintCheck = "surviving-output"
)

// Finding is one invariant violation.
type Finding struct {
	Check LintCheck
	PC    int64 // offending instruction (shadow PC where applicable)
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s at pc %d: %s", f.Check, f.PC, f.Msg)
}

// Lint checks every transform invariant on p, which must be the output of
// spechint.Transform under opt. A nil result means the shadow text is
// verified. Lint is pure shadow-text analysis: it never executes p.
func Lint(p *vm.Program, opt spechint.Options) []Finding {
	var fs []Finding
	add := func(check LintCheck, pc int64, format string, args ...any) {
		fs = append(fs, Finding{Check: check, PC: pc, Msg: fmt.Sprintf(format, args...)})
	}

	n := p.OrigTextLen
	if n == 0 || p.ShadowBase == 0 {
		add(LintShape, 0, "program is not transformed (OrigTextLen=%d ShadowBase=%d)", n, p.ShadowBase)
		return fs
	}
	if p.ShadowBase != n {
		add(LintShape, n, "ShadowBase %d != OrigTextLen %d", p.ShadowBase, n)
	}
	if int64(len(p.Text)) != 2*n {
		add(LintShape, int64(len(p.Text)), "text is %d instructions, want 2×%d", len(p.Text), n)
		return fs // shadow indexing below would be meaningless
	}
	if p.Entry >= n {
		add(LintShape, p.Entry, "entry %d inside shadow text", p.Entry)
	}
	// Iterate symbols in sorted order: findings must be deterministic across
	// runs (map iteration order is not).
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		if !strings.HasSuffix(name, "$shadow") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		addr := p.Symbols[name]
		if got, ok := p.Symbols[name+"$shadow"]; !ok {
			add(LintShape, addr, "symbol %q has no $shadow twin", name)
		} else if got != addr+n {
			add(LintShape, addr, "symbol %q$shadow at %d, want %d", name, got, addr+n)
		}
	}

	// Original text: untouched by the transform.
	for pc := int64(0); pc < n; pc++ {
		if op := p.Text[pc].Op; op.IsSpeculative() {
			add(LintOrigText, pc, "speculative op %v in original text", op)
		}
	}

	inShadow := func(pc int64) bool { return pc >= n && pc < 2*n }

	for pc := n; pc < 2*n; pc++ {
		ins := p.Text[pc]
		switch {
		case ins.Op == vm.LDB || ins.Op == vm.LDW || ins.Op == vm.STB || ins.Op == vm.STW:
			if opt.StackCopyOptimization && ins.Rs1 == vm.SP {
				break // private speculative stack: unchecked by design
			}
			kind := "load"
			if ins.Op.IsStore() {
				kind = "store"
			}
			add(LintUncheckedMem, pc, "unchecked %s %v in shadow (base r%d)", kind, ins, ins.Rs1)

		case ins.Op.IsBranch() || ins.Op == vm.JMP || ins.Op == vm.CALL:
			if !inShadow(ins.Imm) {
				where := "outside text"
				if ins.Imm >= 0 && ins.Imm < n {
					where = "in original text"
				}
				add(LintEscape, pc, "%v target %d lands %s", ins.Op, ins.Imm, where)
			}

		case ins.Op == vm.JR || ins.Op == vm.CALLR || ins.Op == vm.RET:
			if ins.Op == vm.JR {
				if _, ok := recognizeJumpTable(p, pc, ins.Rs1, maxLookback(opt)); ok {
					add(LintJumpTable, pc, "recognized jump-table jump left unrewritten (jr r%d)", ins.Rs1)
					break
				}
			}
			add(LintIndirect, pc, "raw %v in shadow; must route through the handling routine", ins.Op)

		case ins.Op == vm.JTR:
			ti := int(ins.Imm)
			if ti < 0 || ti >= len(p.JumpTables) {
				add(LintJumpTable, pc, "jtr references table %d of %d", ti, len(p.JumpTables))
				break
			}
			jt := p.JumpTables[ti]
			if jt.Format != vm.JTAbsolute {
				add(LintJumpTable, pc, "jtr through unrecognized-format table %d", ti)
				break
			}
			for e := int64(0); e < jt.Len; e++ {
				off := jt.Addr + e*8
				if off+8 > int64(len(p.Data)) {
					add(LintJumpTable, pc, "table %d entry %d outside initialized data", ti, e)
					continue
				}
				t := int64(0)
				for b := int64(0); b < 8; b++ {
					t |= int64(p.Data[off+b]) << (8 * b)
				}
				// Entries hold original-text addresses; the dynamic handler
				// maps them into the shadow. Shadow addresses are tolerated.
				if t < 0 || t >= 2*n {
					add(LintJumpTable, pc, "table %d entry %d target %d outside text", ti, e, t)
				}
			}

		case ins.Op == vm.SYSCALL:
			if opt.RemoveOutputRoutines && (ins.Imm == vm.SysPrint || ins.Imm == vm.SysPrintInt) {
				add(LintOutput, pc, "output call %s survives in shadow", vm.SyscallName(ins.Imm))
			}
		}
	}
	return fs
}

func maxLookback(opt spechint.Options) int {
	if opt.JumpTableLookback > 0 {
		return opt.JumpTableLookback
	}
	return spechint.DefaultOptions().JumpTableLookback
}

// FormatFindings renders findings with label-resolved PCs and disassembly
// context, ready for terminal output.
func FormatFindings(p *vm.Program, fs []Finding) string {
	if len(fs) == 0 {
		return "speclint: ok — all transform invariants hold\n"
	}
	loc := asm.NewLocator(p)
	var b strings.Builder
	fmt.Fprintf(&b, "speclint: %d finding(s)\n", len(fs))
	for _, f := range fs {
		fmt.Fprintf(&b, "[%s] pc %d (%s): %s\n", f.Check, f.PC, loc.Locate(f.PC), f.Msg)
		if f.PC >= 0 && f.PC < int64(len(p.Text)) {
			b.WriteString(asm.Context(p, f.PC, 2))
		}
	}
	return b.String()
}
