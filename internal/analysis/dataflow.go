package analysis

import (
	"sort"

	"spechint/internal/vm"
)

// The dataflow framework: a generic forward worklist solver over CFG blocks,
// plus the classic reaching-definitions analysis built on it. The taint
// analysis (taint.go) uses the same solver with a richer state.

// solveForward runs a forward fixpoint: for each block, the entry state is
// the join of its predecessors' exit states (the CFG entry block starts from
// boundary), and transfer produces the exit state. join must return true
// when dst changed; transfer must not retain s. It returns the entry state
// of every block.
func solveForward[S any](g *CFG, boundary func() S, clone func(S) S,
	join func(dst S, src S) bool, transfer func(block int, s S) S) []S {
	return solveForwardE(g, boundary, clone,
		func(_ int, dst S, src S) bool { return join(dst, src) },
		nil, transfer)
}

// solveForwardE is the general form of the forward solver. join receives the
// destination block index, letting analyses keep per-join-point bookkeeping
// (the value-range pass counts joins per block to trigger widening). edge,
// when non-nil, refines the propagated state per successor edge before the
// join — it receives a private clone it may mutate and return (branch
// condition refinement lives here). Call edges never refine: the callee sees
// the caller's exit state unchanged.
func solveForwardE[S any](g *CFG, boundary func() S, clone func(S) S,
	join func(block int, dst S, src S) bool,
	edge func(from, to int, s S) S,
	transfer func(block int, s S) S) []S {

	in := make([]S, len(g.Blocks))
	out := make([]S, len(g.Blocks))
	have := make([]bool, len(g.Blocks))

	work := []int{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry] = true
	in[g.Entry] = boundary()
	have[g.Entry] = true

	// flow merges src into block s, returning whether s's entry state grew.
	flow := func(s int, src S) bool {
		if !have[s] {
			in[s] = clone(src)
			have[s] = true
			return true
		}
		return join(s, in[s], src)
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out[b] = transfer(b, clone(in[b]))
		for _, s := range g.Blocks[b].Succs {
			src := out[b]
			if edge != nil {
				src = edge(b, s, clone(out[b]))
			}
			if flow(s, src) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
		// Direct calls: flow into the callee too (context-insensitive; the
		// fall-through edge separately models the call returning).
		for _, t := range g.Blocks[b].CallsTo {
			cb := g.BlockOf(t)
			if cb < 0 {
				continue
			}
			if flow(cb, out[b]) && !queued[cb] {
				queued[cb] = true
				work = append(work, cb)
			}
		}
	}
	return in
}

// Def is one register definition site.
type Def struct {
	PC  int64
	Reg uint8
}

// ReachingDefs holds the solved reaching-definitions problem: for any PC and
// register, which definition sites may have produced the value observed
// there.
type ReachingDefs struct {
	g    *CFG
	defs []Def     // def index -> site
	in   []defBits // per block: defs reaching block entry
}

type defBits []uint64

func newDefBits(n int) defBits { return make(defBits, (n+63)/64) }
func (b defBits) set(i int)    { b[i/64] |= 1 << (i % 64) }
func (b defBits) clear(i int)  { b[i/64] &^= 1 << (i % 64) }
func (b defBits) get(i int) bool {
	return b[i/64]&(1<<(i%64)) != 0
}
func (b defBits) or(o defBits) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
func (b defBits) clone() defBits { return append(defBits(nil), b...) }

// SolveReachingDefs computes reaching definitions over the graph.
func SolveReachingDefs(g *CFG) *ReachingDefs {
	rd := &ReachingDefs{g: g}
	defAt := make(map[int64]int) // pc -> def index (each pc defines <=1 reg)
	for pc, ins := range g.Prog.Text {
		if reg, ok := ins.WritesReg(); ok {
			defAt[int64(pc)] = len(rd.defs)
			rd.defs = append(rd.defs, Def{PC: int64(pc), Reg: reg})
		}
	}
	nd := len(rd.defs)

	// defsOfReg[r] = all def indices writing register r, for the kill sets.
	var defsOfReg [vm.NumRegs][]int
	for i, d := range rd.defs {
		defsOfReg[d.Reg] = append(defsOfReg[d.Reg], i)
	}

	transfer := func(block int, s defBits) defBits {
		b := g.Blocks[block]
		for pc := b.Start; pc < b.End; pc++ {
			di, ok := defAt[pc]
			if !ok {
				continue
			}
			for _, k := range defsOfReg[rd.defs[di].Reg] {
				s.clear(k)
			}
			s.set(di)
		}
		return s
	}

	rd.in = solveForward(g,
		func() defBits { return newDefBits(nd) },
		defBits.clone,
		func(dst, src defBits) bool { return dst.or(src) },
		transfer)
	for i := range rd.in {
		if rd.in[i] == nil {
			rd.in[i] = newDefBits(nd) // unreachable block
		}
	}
	return rd
}

// DefsOf returns the definition sites of reg that reach pc (before the
// instruction at pc executes), in ascending PC order.
func (rd *ReachingDefs) DefsOf(pc int64, reg uint8) []int64 {
	if reg == vm.R0 {
		return nil // the zero register has no definitions
	}
	block := rd.g.BlockOf(pc)
	if block < 0 {
		return nil
	}
	live := rd.in[block].clone()
	b := rd.g.Blocks[block]
	for p := b.Start; p < b.End && p < pc; p++ {
		r, ok := rd.g.Prog.Text[p].WritesReg()
		if !ok {
			continue
		}
		for i, d := range rd.defs {
			switch {
			case d.PC == p && d.Reg == r:
				live.set(i)
			case d.Reg == r:
				live.clear(i)
			}
		}
	}
	var out []int64
	for i, d := range rd.defs {
		if d.Reg == reg && live.get(i) {
			out = append(out, d.PC)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Defs returns every definition site in the program.
func (rd *ReachingDefs) Defs() []Def { return append([]Def(nil), rd.defs...) }
