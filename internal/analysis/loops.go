package analysis

import (
	"fmt"
	"sort"

	"spechint/internal/vm"
)

// Natural-loop detection and induction-variable recognition over the VM CFG.
// A back edge is an edge a→h where h dominates a; the natural loop of h is h
// plus every block that reaches a back-edge source without passing h. Loops
// sharing a header are merged. Irreducible control flow (a cycle entered
// other than through its dominating header) simply produces no natural loop
// for the offending cycle, which downstream passes treat as "nothing proved"
// — degraded precision, never unsoundness.

// Loop is one natural loop.
type Loop struct {
	Header int   // header block index
	Blocks []int // body block indices, sorted ascending, header included
	Tails  []int // back-edge source blocks (sorted)
	Exits  []LoopExit
	IVs    []IndVar

	inBody map[int]bool
}

// LoopExit is an edge leaving the loop body.
type LoopExit struct {
	Block int // in-loop block whose terminator leaves the loop
	To    int // out-of-loop target block
}

// IndVar is a basic induction variable: a register with exactly one in-loop
// definition, of the form `addi r, r, step`. Its value at the header on
// iteration i (0-based) is init + step·i, where init comes from the single
// out-of-loop reaching definition (resolved by the caller's evaluator).
type IndVar struct {
	Reg    uint8
	StepPC int64 // PC of the in-loop addi
	Step   int64
	InitPC int64 // PC of the out-of-loop init definition
}

// LoopInfo is the result of FindLoops.
type LoopInfo struct {
	G     *CFG
	Idom  []int
	Loops []Loop // sorted by header block start PC

	inner []int // block index -> innermost containing loop index, or -1
}

// FindLoops detects the natural loops of g and recognizes their basic
// induction variables.
func FindLoops(g *CFG) *LoopInfo {
	li := &LoopInfo{G: g, Idom: g.Dominators()}
	li.inner = make([]int, len(g.Blocks))
	for i := range li.inner {
		li.inner[i] = -1
	}

	// Back edges, grouped by header.
	tails := make(map[int][]int)
	var headers []int
	for bi, b := range g.Blocks {
		for _, s := range b.Succs {
			if Dominates(li.Idom, s, bi) {
				if len(tails[s]) == 0 {
					headers = append(headers, s)
				}
				tails[s] = append(tails[s], bi)
			}
		}
	}
	sort.Ints(headers)

	for _, h := range headers {
		l := Loop{Header: h, inBody: map[int]bool{h: true}}
		l.Tails = append([]int(nil), tails[h]...)
		sort.Ints(l.Tails)
		// Body: backward reachability from the tails, stopping at the header.
		var stack []int
		for _, t := range l.Tails {
			if !l.inBody[t] {
				l.inBody[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Blocks[b].Preds {
				if !l.inBody[p] {
					l.inBody[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range l.inBody {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Ints(l.Blocks)
		for _, b := range l.Blocks {
			for _, s := range g.Blocks[b].Succs {
				if !l.inBody[s] {
					l.Exits = append(l.Exits, LoopExit{Block: b, To: s})
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool {
			if l.Exits[i].Block != l.Exits[j].Block {
				return l.Exits[i].Block < l.Exits[j].Block
			}
			return l.Exits[i].To < l.Exits[j].To
		})
		li.Loops = append(li.Loops, l)
	}
	sort.Slice(li.Loops, func(i, j int) bool {
		return g.Blocks[li.Loops[i].Header].Start < g.Blocks[li.Loops[j].Header].Start
	})

	// Innermost-loop map: among loops containing a block, the one with the
	// smallest body wins (a nested loop's body is a strict subset).
	for i, l := range li.Loops {
		for _, b := range l.Blocks {
			if cur := li.inner[b]; cur == -1 || len(li.Loops[cur].Blocks) > len(l.Blocks) {
				li.inner[b] = i
			}
		}
	}

	rd := SolveReachingDefs(g)
	for i := range li.Loops {
		li.findIVs(&li.Loops[i], rd)
	}
	return li
}

// findIVs recognizes the loop's basic induction variables.
func (li *LoopInfo) findIVs(l *Loop, rd *ReachingDefs) {
	g := li.G
	// Count in-loop definitions per register.
	type defSite struct {
		pc int64
		n  int
	}
	var defs [vm.NumRegs]defSite
	for _, b := range l.Blocks {
		blk := g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			if r, ok := g.Prog.Text[pc].WritesReg(); ok {
				defs[r].n++
				defs[r].pc = pc
			}
		}
	}
	for r := range defs {
		if defs[r].n != 1 {
			continue
		}
		pc := defs[r].pc
		ins := g.Prog.Text[pc]
		if ins.Op != vm.ADDI || ins.Rd != ins.Rs1 || ins.Rd != uint8(r) || ins.Imm == 0 {
			continue
		}
		// The value flowing around the back edge must come from exactly this
		// step plus one out-of-loop init: at the step itself, the reaching
		// defs are {init, step}.
		reaching := rd.DefsOf(pc, uint8(r))
		var initPC int64 = -1
		ok := true
		for _, d := range reaching {
			if d == pc {
				continue
			}
			if li.blockIn(l, g.BlockOf(d)) {
				ok = false // another in-loop def reaches (shouldn't happen: n==1)
				break
			}
			if initPC != -1 {
				ok = false // multiple competing init defs
				break
			}
			initPC = d
		}
		if !ok || initPC == -1 {
			continue
		}
		l.IVs = append(l.IVs, IndVar{Reg: uint8(r), StepPC: pc, Step: ins.Imm, InitPC: initPC})
	}
	sort.Slice(l.IVs, func(i, j int) bool { return l.IVs[i].Reg < l.IVs[j].Reg })
}

func (li *LoopInfo) blockIn(l *Loop, b int) bool { return b >= 0 && l.inBody[b] }

// InnermostAt returns the index (into Loops) of the innermost loop containing
// the block of pc, or -1.
func (li *LoopInfo) InnermostAt(pc int64) int {
	b := li.G.BlockOf(pc)
	if b < 0 {
		return -1
	}
	return li.inner[b]
}

// Contains reports whether loop index l contains the block of pc.
func (li *LoopInfo) Contains(l int, pc int64) bool {
	if l < 0 || l >= len(li.Loops) {
		return false
	}
	return li.blockIn(&li.Loops[l], li.G.BlockOf(pc))
}

// IV returns loop l's induction variable for reg, if recognized.
func (l *Loop) IV(reg uint8) (IndVar, bool) {
	for _, iv := range l.IVs {
		if iv.Reg == reg {
			return iv, true
		}
	}
	return IndVar{}, false
}

// BodyReach computes intra-iteration reachability: the blocks reachable from
// `from` along body edges with back edges to the header removed, optionally
// avoiding one block (pass avoid=-1 for none) and skipping edges the caller
// prunes (prune may be nil). from itself is included unless avoided.
func (li *LoopInfo) BodyReach(l int, from, avoid int, prune func(from, to int) bool) map[int]bool {
	loop := &li.Loops[l]
	seen := make(map[int]bool)
	if from == avoid || !loop.inBody[from] {
		return seen
	}
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range li.G.Blocks[b].Succs {
			if s == loop.Header || !loop.inBody[s] || s == avoid || seen[s] {
				continue
			}
			if prune != nil && prune(b, s) {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return seen
}

// TripCountWith derives the loop's exact trip count: the number of times the
// body runs, assuming the program does not abort. It requires a counted exit
// test in the header comparing an induction variable against a loop-invariant
// constant, and every *other* exit to target an abort-only region (a
// subgraph that performs no further I/O and only exits — Gnuld's `fail`
// label). constAt resolves a register to a constant at a PC (the caller's
// evaluator); ivInit resolves an induction variable's initial value.
func (li *LoopInfo) TripCountWith(l int,
	ivInit func(iv IndVar) (int64, bool),
	constAt func(pc int64, reg uint8) (int64, bool)) (int64, bool) {

	g := li.G
	loop := &li.Loops[l]
	hb := g.Blocks[loop.Header]
	branchPC := hb.End - 1
	ins := g.Prog.Text[branchPC]
	if !ins.Op.IsBranch() {
		return 0, false
	}
	takenBlock := g.BlockOf(ins.Imm)
	fallBlock := g.BlockOf(hb.End)
	takenExits := !loop.inBody[takenBlock]
	fallExits := fallBlock < 0 || !loop.inBody[fallBlock]
	if takenExits == fallExits {
		return 0, false // both stay or both leave: not a counted header test
	}

	// Every exit other than the header test must be abort-only.
	for _, e := range loop.Exits {
		if e.Block == loop.Header {
			continue
		}
		if !li.abortOnly(e.To) {
			return 0, false
		}
	}

	// One operand is an IV, the other a constant (at the header, i.e. before
	// the in-loop step executes this iteration).
	resolve := func(r uint8) (iv IndVar, isIV bool, k int64, isConst bool) {
		if r == vm.R0 {
			return IndVar{}, false, 0, true
		}
		if v, ok := loop.IV(r); ok {
			// The IV reads its header value only if the step has not run
			// yet: the step must not reach the header test intra-block.
			if g.BlockOf(v.StepPC) != loop.Header || v.StepPC >= branchPC {
				return v, true, 0, false
			}
		}
		if c, ok := constAt(branchPC, r); ok {
			return IndVar{}, false, c, true
		}
		return IndVar{}, false, 0, false
	}
	iv1, isIV1, k1, isConst1 := resolve(ins.Rs1)
	iv2, isIV2, k2, isConst2 := resolve(ins.Rs2)

	var iv IndVar
	var bound int64
	var ivIsRs1 bool
	switch {
	case isIV1 && isConst2:
		iv, bound, ivIsRs1 = iv1, k2, true
	case isIV2 && isConst1:
		iv, bound, ivIsRs1 = iv2, k1, false
	default:
		return 0, false
	}
	init, ok := ivInit(iv)
	if !ok {
		return 0, false
	}

	// Exit predicate on the header value v = init + step·i, i = 0,1,2,...
	// The first i satisfying it is the trip count.
	exitWhen := func(v int64) bool {
		a, b := v, bound
		if !ivIsRs1 {
			a, b = bound, v
		}
		var taken bool
		switch ins.Op {
		case vm.BEQ:
			taken = a == b
		case vm.BNE:
			taken = a != b
		case vm.BLT:
			taken = a < b
		case vm.BGE:
			taken = a >= b
		}
		return taken == takenExits
	}
	return firstExit(init, iv.Step, exitWhen)
}

// firstExit finds the smallest i ≥ 0 with exit(init + step·i), by closed
// form where the predicate is monotone and by bounded search otherwise.
func firstExit(init, step int64, exit func(int64) bool) (int64, bool) {
	const searchCap = 1 << 20
	v := init
	for i := int64(0); i < searchCap; i++ {
		if exit(v) {
			return i, true
		}
		nv := v + step
		if (step > 0 && nv < v) || (step < 0 && nv > v) {
			return 0, false // overflow: diverges
		}
		v = nv
	}
	return 0, false
}

// abortOnly reports whether every path from block b is a failure exit: the
// subgraph reachable from b contains no open/close/read/seek/fstat/write/
// sbrk/hint syscalls, no indirect exits, no returns, and every exit
// provably reports failure (immediately preceded by `movi r1, K` with
// K < 0 — Gnuld's `fail` label). A normal early completion is NOT abort-only:
// it would silently shorten the iteration space the trip count promises.
// Diagnostic prints before the exit are allowed.
func (li *LoopInfo) abortOnly(b int) bool {
	g := li.G
	seen := map[int]bool{b: true}
	stack := []int{b}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := g.Blocks[cur]
		if blk.IndirectExit || blk.Returns || len(blk.CallsTo) > 0 {
			return false
		}
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := g.Prog.Text[pc]
			if ins.Op != vm.SYSCALL {
				continue
			}
			switch ins.Imm {
			case vm.SysPrint, vm.SysPrintInt:
			case vm.SysExit:
				prev := vm.Instr{}
				if pc > blk.Start {
					prev = g.Prog.Text[pc-1]
				}
				if prev.Op != vm.MOVI || prev.Rd != vm.R1 || prev.Imm >= 0 {
					return false // not provably a failure status
				}
			default:
				return false
			}
		}
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		if len(seen) > 256 {
			return false // unexpectedly large: refuse to certify
		}
	}
	return true
}

// Summary renders a one-line description per loop for reports.
func (li *LoopInfo) Summary() string {
	if len(li.Loops) == 0 {
		return "no natural loops"
	}
	s := ""
	for i, l := range li.Loops {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("loop@%d(%d blocks, %d IVs)",
			li.G.Blocks[l.Header].Start, len(l.Blocks), len(l.IVs))
	}
	return s
}
