package analysis

import (
	"testing"

	"spechint/internal/apps"
)

// buildAllBundles prepares all four benchmark apps at test scale.
func buildAllBundles(t *testing.T) []*apps.Bundle {
	t.Helper()
	var out []*apps.Bundle
	for _, a := range []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice, apps.Postgres} {
		b, err := apps.Build(a, apps.TestScale())
		if err != nil {
			t.Fatalf("build %v: %v", a, err)
		}
		out = append(out, b)
	}
	return out
}
