package analysis

import (
	"testing"

	"spechint/internal/asm"
)

func mustCFG(t *testing.T, src string) *CFG {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return BuildCFG(p, Config{})
}

const countedLoopSrc = `
.data
v: .word 7
.text
main:
    movi r20, 0
    movi r19, 10
    movi r22, 0
loop:
    bge  r20, r19, done
    addi r22, r22, 3
    addi r20, r20, 1
    jmp  loop
done:
    movi r1, 0
    syscall exit
`

func TestFindLoopsCounted(t *testing.T) {
	g := mustCFG(t, countedLoopSrc)
	li := FindLoops(g)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1 (%s)", len(li.Loops), li.Summary())
	}
	l := li.Loops[0]
	if len(l.Tails) != 1 {
		t.Errorf("tails = %v, want one", l.Tails)
	}
	// Both r20 (the counter) and r22 (the accumulator) step by a constant
	// once per iteration.
	if _, ok := l.IV(20); !ok {
		t.Errorf("r20 not recognized as induction variable: %+v", l.IVs)
	}
	iv, ok := l.IV(22)
	if !ok || iv.Step != 3 {
		t.Errorf("r22 IV = %+v ok=%v, want step 3", iv, ok)
	}

	n, ok := li.TripCountWith(0,
		func(iv IndVar) (int64, bool) {
			ins := g.Prog.Text[iv.InitPC]
			return ins.Imm, true // both inits are movi
		},
		func(pc int64, reg uint8) (int64, bool) {
			if reg == 19 {
				return 10, true
			}
			return 0, false
		})
	if !ok || n != 10 {
		t.Errorf("trip count = %d ok=%v, want 10", n, ok)
	}
}

func TestFindLoopsNested(t *testing.T) {
	g := mustCFG(t, `
.text
main:
    movi r20, 0
outer:
    movi r21, 0
inner:
    addi r21, r21, 1
    movi r9, 5
    blt  r21, r9, inner
    addi r20, r20, 1
    movi r9, 3
    blt  r20, r9, outer
    syscall exit
`)
	li := FindLoops(g)
	if len(li.Loops) != 2 {
		t.Fatalf("loops = %d, want 2 (%s)", len(li.Loops), li.Summary())
	}
	// Loops are sorted by header PC: outer first.
	outer, inner := li.Loops[0], li.Loops[1]
	if len(outer.Blocks) <= len(inner.Blocks) {
		t.Errorf("outer body %d blocks, inner %d: want outer larger", len(outer.Blocks), len(inner.Blocks))
	}
	if _, ok := outer.IV(20); !ok {
		t.Errorf("outer loop should carry IV r20: %+v", outer.IVs)
	}
	if _, ok := inner.IV(21); !ok {
		t.Errorf("inner loop should carry IV r21: %+v", inner.IVs)
	}
	// The inner accumulator steps twice per outer iteration (reset by the
	// movi), so it is not an outer IV; and InnermostAt resolves nesting.
	innerPC := inner.Header
	start := g.Blocks[innerPC].Start
	if got := li.InnermostAt(start); got != 1 {
		t.Errorf("InnermostAt(inner header) = %d, want 1", got)
	}
}

func TestBodyReachStopsAtBackEdge(t *testing.T) {
	g := mustCFG(t, countedLoopSrc)
	li := FindLoops(g)
	l := li.Loops[0]
	// From the body block, intra-iteration reachability must not wrap
	// through the back edge into the header again.
	body := -1
	for _, b := range l.Blocks {
		if b != l.Header {
			body = b
			break
		}
	}
	reach := li.BodyReach(0, body, -1, nil)
	if reach[l.Header] {
		t.Errorf("BodyReach wrapped through the back edge into the header")
	}
}

func TestTripCountRejectsDataExit(t *testing.T) {
	// A loop with a second, data-dependent exit that is not abort-only: the
	// trip count must be refused.
	g := mustCFG(t, `
.data
v: .word 7
.text
main:
    movi r20, 0
    movi r19, 10
loop:
    bge  r20, r19, done
    ldw  r9, v
    beq  r9, r0, done
    addi r20, r20, 1
    jmp  loop
done:
    movi r1, 0
    syscall exit
`)
	li := FindLoops(g)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	_, ok := li.TripCountWith(0,
		func(iv IndVar) (int64, bool) { return g.Prog.Text[iv.InitPC].Imm, true },
		func(pc int64, reg uint8) (int64, bool) {
			if reg == 19 {
				return 10, true
			}
			return 0, false
		})
	if ok {
		t.Errorf("trip count accepted despite an early data-dependent exit to live code")
	}
}

func TestTripCountAcceptsAbortExit(t *testing.T) {
	// Same shape, but the early exit only aborts: the count stays exact
	// under the run-completes assumption.
	g := mustCFG(t, `
.data
v: .word 7
.text
main:
    movi r20, 0
    movi r19, 10
loop:
    bge  r20, r19, done
    ldw  r9, v
    beq  r9, r0, bad
    addi r20, r20, 1
    jmp  loop
bad:
    movi r1, -1
    syscall exit
done:
    movi r1, 0
    syscall exit
`)
	li := FindLoops(g)
	n, ok := li.TripCountWith(0,
		func(iv IndVar) (int64, bool) { return g.Prog.Text[iv.InitPC].Imm, true },
		func(pc int64, reg uint8) (int64, bool) {
			if reg == 19 {
				return 10, true
			}
			return 0, false
		})
	if !ok || n != 10 {
		t.Errorf("trip count = %d ok=%v, want 10 (abort-only early exit)", n, ok)
	}
}

func TestFindLoopsDownCounter(t *testing.T) {
	// Agrep-style down counter: init from data, step -1, exit on == 0.
	g := mustCFG(t, `
.text
main:
    movi r20, 6
loop:
    beq  r20, r0, done
    addi r20, r20, -1
    jmp  loop
done:
    syscall exit
`)
	li := FindLoops(g)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	iv, ok := li.Loops[0].IV(20)
	if !ok || iv.Step != -1 {
		t.Fatalf("r20 IV = %+v ok=%v, want step -1", iv, ok)
	}
	n, ok := li.TripCountWith(0,
		func(iv IndVar) (int64, bool) { return 6, true },
		func(pc int64, reg uint8) (int64, bool) { return 0, false })
	if !ok || n != 6 {
		t.Errorf("trip count = %d ok=%v, want 6", n, ok)
	}
}
