package analysis

import (
	"testing"

	"spechint/internal/vm"
)

func TestReachingDefsStraightLine(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   movi r1, 1
        movi r1, 2
        add  r2, r1, r1
        syscall exit
`)
	rd := SolveReachingDefs(BuildCFG(p, DefaultConfig()))

	// At the add (pc 2), only the second movi reaches r1.
	defs := rd.DefsOf(2, vm.R1)
	if len(defs) != 1 || defs[0] != 1 {
		t.Fatalf("DefsOf(2, r1) = %v, want [1]", defs)
	}
	// At pc 1, only the first.
	defs = rd.DefsOf(1, vm.R1)
	if len(defs) != 1 || defs[0] != 0 {
		t.Fatalf("DefsOf(1, r1) = %v, want [0]", defs)
	}
}

func TestReachingDefsMergeAtJoin(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	rd := SolveReachingDefs(BuildCFG(p, DefaultConfig()))

	// Both arms define r2 (pc 2 and pc 4); both reach the join's add (pc 5).
	defs := rd.DefsOf(p.Symbols["join"], vm.R2)
	if len(defs) != 2 || defs[0] != 2 || defs[1] != 4 {
		t.Fatalf("DefsOf(join, r2) = %v, want [2 4]", defs)
	}
}

func TestReachingDefsFlowIntoCallee(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   movi r1, 7
        call fn
        syscall exit
fn:     add  r2, r1, r1
        ret
`)
	rd := SolveReachingDefs(BuildCFG(p, DefaultConfig()))
	fn := p.Symbols["fn"]
	defs := rd.DefsOf(fn, vm.R1)
	if len(defs) != 1 || defs[0] != 0 {
		t.Fatalf("DefsOf(fn, r1) = %v, want the caller's movi at 0", defs)
	}
}

func TestReachingDefsZeroRegister(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   add  r0, r1, r2
        syscall exit
`)
	rd := SolveReachingDefs(BuildCFG(p, DefaultConfig()))
	if defs := rd.DefsOf(1, vm.R0); defs != nil {
		t.Fatalf("r0 has definitions %v; the zero register must have none", defs)
	}
	// And the write to r0 is not a definition at all.
	for _, d := range rd.Defs() {
		if d.Reg == vm.R0 {
			t.Fatalf("definition of r0 recorded at %d", d.PC)
		}
	}
}

func TestReachingDefsSyscallDefinesR1(t *testing.T) {
	p := mustAssemble(t, `
.entry main
.text
main:   movi r1, 0
        syscall read
        add  r2, r1, r1
        syscall exit
`)
	rd := SolveReachingDefs(BuildCFG(p, DefaultConfig()))
	defs := rd.DefsOf(2, vm.R1)
	if len(defs) != 1 || defs[0] != 1 {
		t.Fatalf("DefsOf(2, r1) = %v, want the syscall at 1 (result clobbers r1)", defs)
	}
}
