package analysis

import (
	"strings"
	"testing"

	"spechint/internal/spechint"
	"spechint/internal/vm"
)

// lintSrc exercises every transform feature: checked memory, a removed output
// call, a recognized jump table, a direct call, and a return.
const lintSrc = `
.entry main
.data
tbl:  .jumptable absolute c0, c1
buf:  .space 64
msg:  .asciz "hi"
.text
main: movi r5, buf
      ldw  r6, 0(r5)
      stw  r6, 8(r5)
      beq  r6, r0, skip
      movi r1, msg
      syscall print
skip: shli r10, r6, 3
      ldw  r11, tbl(r10)
      jr   r11
c0:   nop
c1:   call fn
      syscall exit
fn:   ret
`

func transformSrc(t *testing.T, src string, opt spechint.Options) *vm.Program {
	t.Helper()
	p := mustAssemble(t, src)
	out, _, err := spechint.Transform(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// A faithful transform of every app, under both stack-copy settings, must
// produce zero findings.
func TestLintCleanOnAllApps(t *testing.T) {
	for _, b := range buildAllBundles(t) {
		for _, stackOpt := range []bool{true, false} {
			opt := spechint.DefaultOptions()
			opt.StackCopyOptimization = stackOpt
			out, _, err := spechint.Transform(b.Original, opt)
			if err != nil {
				t.Fatalf("%v: %v", b.App, err)
			}
			if fs := Lint(out, opt); len(fs) != 0 {
				t.Errorf("%v (stackOpt=%v): %d findings:\n%s",
					b.App, stackOpt, len(fs), FormatFindings(out, fs))
			}
		}
	}
}

func TestLintCleanOnSynthetic(t *testing.T) {
	for _, stackOpt := range []bool{true, false} {
		opt := spechint.DefaultOptions()
		opt.StackCopyOptimization = stackOpt
		out := transformSrc(t, lintSrc, opt)
		if fs := Lint(out, opt); len(fs) != 0 {
			t.Errorf("stackOpt=%v: findings:\n%s", stackOpt, FormatFindings(out, fs))
		}
	}
}

func TestLintRejectsUntransformed(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	fs := Lint(p, spechint.DefaultOptions())
	if len(fs) != 1 || fs[0].Check != LintShape {
		t.Fatalf("untransformed program: got %v, want one shadow-shape finding", fs)
	}
}

// Each hand-corrupted shadow must fire its specific check at the right PC.
func TestLintCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *vm.Program, n int64) int64 // returns the expected finding PC
		want    LintCheck
	}{
		{"unchecked load in shadow", func(p *vm.Program, n int64) int64 {
			p.Text[n+1].Op = vm.LDW // was ldw.s buf
			return n + 1
		}, LintUncheckedMem},
		{"unchecked store in shadow", func(p *vm.Program, n int64) int64 {
			p.Text[n+2].Op = vm.STW // was stw.s buf
			return n + 2
		}, LintUncheckedMem},
		{"branch escaping to original text", func(p *vm.Program, n int64) int64 {
			p.Text[n+3].Imm -= n // retarget beq at the original-text skip
			return n + 3
		}, LintEscape},
		{"call escaping to original text", func(p *vm.Program, n int64) int64 {
			p.Text[n+10].Imm -= n // retarget call fn at the original fn
			return n + 10
		}, LintEscape},
		{"surviving print call", func(p *vm.Program, n int64) int64 {
			p.Text[n+5] = vm.Instr{Op: vm.SYSCALL, Imm: vm.SysPrint} // un-remove it
			return n + 5
		}, LintOutput},
		{"unrewritten jump table", func(p *vm.Program, n int64) int64 {
			p.Text[n+7].Op = vm.LDW                    // revert the table load
			p.Text[n+8] = vm.Instr{Op: vm.JR, Rs1: 11} // revert jtr -> jr
			return n + 8
		}, LintJumpTable},
		{"corrupt jump-table entry", func(p *vm.Program, n int64) int64 {
			for b := 0; b < 8; b++ { // first table entry -> far outside text
				p.Data[b] = 0xFF
			}
			return n + 8 // reported at the jtr consuming the table
		}, LintJumpTable},
		{"unrouted return", func(p *vm.Program, n int64) int64 {
			p.Text[n+12].Op = vm.RET // was ret.h
			return n + 12
		}, LintIndirect},
		{"missing shadow symbol", func(p *vm.Program, n int64) int64 {
			delete(p.Symbols, "fn$shadow")
			return p.Symbols["fn"]
		}, LintShape},
		{"speculative op in original text", func(p *vm.Program, n int64) int64 {
			p.Text[1].Op = vm.LDWS
			return 1
		}, LintOrigText},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt := spechint.DefaultOptions()
			out := transformSrc(t, lintSrc, opt)
			wantPC := c.corrupt(out, out.OrigTextLen)
			fs := Lint(out, opt)
			if len(fs) == 0 {
				t.Fatalf("corruption undetected")
			}
			for _, f := range fs {
				if f.Check == c.want && f.PC == wantPC {
					return
				}
			}
			t.Fatalf("no %s finding at pc %d; got:\n%s", c.want, wantPC, FormatFindings(out, fs))
		})
	}
}

func TestFormatFindingsShowsContext(t *testing.T) {
	opt := spechint.DefaultOptions()
	out := transformSrc(t, lintSrc, opt)
	out.Text[out.OrigTextLen+2].Op = vm.STW
	fs := Lint(out, opt)
	s := FormatFindings(out, fs)
	if !strings.Contains(s, "unchecked-memory") {
		t.Fatalf("missing check name:\n%s", s)
	}
	if !strings.Contains(s, "=>") {
		t.Fatalf("missing disassembly marker:\n%s", s)
	}
	if !strings.Contains(s, "main$shadow") {
		t.Fatalf("missing shadow label resolution:\n%s", s)
	}
}

// loopBackEdgeSrc is a transform input with a counted loop whose back edge
// lands on the loop header, plus a conditional early exit from the body:
// lint must accept the shadowed loop (all targets inside shadow text).
const loopBackEdgeSrc = `
.entry main
.data
buf: .space 64
.text
main: movi r20, 0
      movi r19, 10
loop: bge  r20, r19, done
      movi r5, buf
      ldw  r6, 0(r5)
      beq  r6, r0, early
      addi r20, r20, 1
      jmp  loop
early: addi r20, r20, 2
      jmp  loop
done: syscall exit
`

// irreducibleSrc jumps into the middle of a loop body from outside it (a
// goto into a loop): the loop is irreducible, the classic stress case for
// control-flow tooling. The transform must still shadow it and lint must
// verify the shadow without findings.
const irreducibleSrc = `
.entry main
.data
buf: .space 64
.text
main: movi r20, 0
      movi r5, buf
      ldw  r6, 0(r5)
      beq  r6, r0, body
head: addi r20, r20, 1
body: addi r20, r20, 2
      movi r9, 40
      blt  r20, r9, head
      syscall exit
`

func TestLintLoopBackEdges(t *testing.T) {
	for _, src := range []string{loopBackEdgeSrc, irreducibleSrc} {
		opt := spechint.DefaultOptions()
		out := transformSrc(t, src, opt)
		if fs := Lint(out, opt); len(fs) != 0 {
			t.Errorf("clean loop program flagged:\n%s", FormatFindings(out, fs))
		}
		// Retarget the back edge to the original-text header: that escape
		// must be caught.
		n := out.OrigTextLen
		var fixed bool
		for pc := n; pc < 2*n; pc++ {
			ins := out.Text[pc]
			if (ins.Op.IsBranch() || ins.Op == vm.JMP) && ins.Imm < pc && ins.Imm >= n {
				out.Text[pc].Imm -= n
				fixed = true
				break
			}
		}
		if !fixed {
			t.Fatal("no shadow back edge found to corrupt")
		}
		fs := Lint(out, opt)
		found := false
		for _, f := range fs {
			if f.Check == LintEscape {
				found = true
			}
		}
		if !found {
			t.Errorf("escaped back edge undetected:\n%s", FormatFindings(out, fs))
		}
	}
}

// TestLintIrreducibleLoopShape: the CFG layer itself must cope with the
// goto-into-loop shape — FindLoops must not claim the irreducible cycle as a
// natural loop (its entry block does not dominate the body).
func TestLintIrreducibleLoopShape(t *testing.T) {
	g := mustCFG(t, irreducibleSrc)
	li := FindLoops(g)
	for _, l := range li.Loops {
		for _, b := range l.Blocks {
			if !Dominates(li.Idom, l.Header, b) {
				t.Errorf("loop header %d does not dominate body block %d: irreducible cycle misclassified", l.Header, b)
			}
		}
	}
}

// TestLintFindingsDeterministic: lint findings (including the symbol-table
// shape pass, which walks a map) must come out in the same order every run.
func TestLintFindingsDeterministic(t *testing.T) {
	var prev string
	for trial := 0; trial < 8; trial++ {
		opt := spechint.DefaultOptions()
		out := transformSrc(t, lintSrc, opt)
		// Strip several shadow twins so the symbol pass emits multiple
		// findings whose order depends on iteration order.
		for _, sym := range []string{"fn", "main", "skip", "c0", "c1"} {
			delete(out.Symbols, sym+"$shadow")
		}
		got := FormatFindings(out, Lint(out, opt))
		if trial > 0 && got != prev {
			t.Fatalf("findings differ between runs:\n--- run %d\n%s\n--- previous\n%s", trial, got, prev)
		}
		prev = got
	}
}
