package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"spechint/internal/analysis"
	"spechint/internal/apps"
)

func synthApp(t *testing.T, app apps.App) (*apps.Bundle, *analysis.SynthReport) {
	t.Helper()
	b, err := apps.Build(app, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	r, err := analysis.Synthesize(b.Original, analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return b, r
}

func provedSites(r *analysis.SynthReport) []analysis.SynthSite {
	var out []analysis.SynthSite
	for _, s := range r.Sites {
		if s.Conf == analysis.ConfProved {
			out = append(out, s)
		}
	}
	return out
}

// TestSynthesizeAgrep: the whole access pattern is argument-determined, so
// the one read site compiles to a whole-file hint per input file, in command
// line order.
func TestSynthesizeAgrep(t *testing.T) {
	scale := apps.TestScale()
	_, r := synthApp(t, apps.Agrep)
	ps := provedSites(r)
	if len(ps) != 1 {
		t.Fatalf("proved sites = %d, want 1\n%s", len(ps), r)
	}
	n := scale.Agrep.NumFiles
	if len(r.Hints) != n {
		t.Fatalf("hints = %d, want %d (one whole-file hint per input)", len(r.Hints), n)
	}
	seen := map[string]bool{}
	for i, h := range r.Hints {
		if h.Iter != int64(i) {
			t.Errorf("hint %d: iter = %d, want command-line order", i, h.Iter)
		}
		if h.Off != 0 || h.N < 1<<20 {
			t.Errorf("hint %d: (off=%d, n=%d), want whole-file from 0", i, h.Off, h.N)
		}
		if h.Path == "" || seen[h.Path] {
			t.Errorf("hint %d: path %q empty or duplicated", i, h.Path)
		}
		seen[h.Path] = true
	}
}

// TestSynthesizeGnuld: only the fixed-size header read at offset 0 is
// provable; the metadata-chasing reads depend on header contents and stay
// speculative-only.
func TestSynthesizeGnuld(t *testing.T) {
	scale := apps.TestScale()
	_, r := synthApp(t, apps.Gnuld)
	ps := provedSites(r)
	if len(ps) != 1 {
		t.Fatalf("proved sites = %d, want 1\n%s", len(ps), r)
	}
	n := scale.Gnuld.NumFiles
	if len(r.Hints) != n {
		t.Fatalf("hints = %d, want %d header hints", len(r.Hints), n)
	}
	for i, h := range r.Hints {
		if h.Off != 0 || h.N != 64 {
			t.Errorf("hint %d: (off=%d, n=%d), want the 64-byte header at 0", i, h.Off, h.N)
		}
	}
	// The pointer-chasing sites must NOT be proved: their offsets come from
	// read buffers.
	for _, s := range r.Sites {
		if s.Conf == analysis.ConfProved && s.PC != ps[0].PC {
			t.Errorf("site pc %d unexpectedly proved", s.PC)
		}
	}
}

// TestSynthesizeXDS: the header read is proved; the block reads are bounded
// by the dimension sanity check but not enumerable (offsets come from file
// contents).
func TestSynthesizeXDS(t *testing.T) {
	_, r := synthApp(t, apps.XDataSlice)
	counts := r.ConfCounts()
	if counts[analysis.ConfProved] != 1 || counts[analysis.ConfBounded] != 1 {
		t.Fatalf("counts = %v, want 1 proved + 1 bounded\n%s", counts, r)
	}
	if len(r.Hints) != 1 {
		t.Fatalf("hints = %d, want the single header hint", len(r.Hints))
	}
	h := r.Hints[0]
	if h.Off != 0 || h.N != 8 {
		t.Errorf("header hint = (off=%d, n=%d), want (0, 8)", h.Off, h.N)
	}
	for _, s := range r.Sites {
		if s.Conf == analysis.ConfBounded {
			if !s.Bound.Finite() || s.Bound.Lo < 0 {
				t.Errorf("bounded site pc %d: bound %v not a usable offset interval", s.PC, s.Bound)
			}
		}
	}
}

// TestSynthesizePostgres: the inner-relation offsets are data-dependent
// (computed from outer tuples read at runtime): nothing must be proved, and
// no false hints emitted.
func TestSynthesizePostgres(t *testing.T) {
	_, r := synthApp(t, apps.Postgres)
	if got := len(provedSites(r)); got != 0 {
		t.Errorf("proved sites = %d, want 0\n%s", got, r)
	}
	if len(r.Hints) != 0 {
		t.Errorf("hints = %d, want none", len(r.Hints))
	}
}

// TestSynthReportDeterministic: the ranked report is byte-identical across
// fresh runs of the whole pipeline.
func TestSynthReportDeterministic(t *testing.T) {
	for _, app := range []apps.App{apps.Agrep, apps.Gnuld, apps.XDataSlice, apps.Postgres} {
		var prev string
		for trial := 0; trial < 5; trial++ {
			b, err := apps.Build(app, apps.TestScale())
			if err != nil {
				t.Fatal(err)
			}
			r, err := analysis.Synthesize(b.Original, analysis.Config{})
			if err != nil {
				t.Fatal(err)
			}
			got := r.String()
			if trial > 0 && got != prev {
				t.Fatalf("%v: report differs between runs:\n--- run %d\n%s\n--- previous\n%s", app, trial, got, prev)
			}
			prev = got
		}
	}
}

// TestSynthRejectsTransformed: the pipeline only accepts untransformed
// binaries (shadow code would alias read sites).
func TestSynthRejectsTransformed(t *testing.T) {
	b, err := apps.Build(apps.Agrep, apps.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.Synthesize(b.Transformed, analysis.Config{}); err == nil {
		t.Fatal("Synthesize accepted a transformed program")
	}
}

func TestSynthVerify(t *testing.T) {
	_, r := synthApp(t, apps.Gnuld)
	ps := provedSites(r)
	if len(ps) != 1 {
		t.Fatalf("proved sites = %d", len(ps))
	}
	pc := ps[0].PC
	clean := analysis.DynVerifyStats{
		Sites: map[int64]analysis.DynSiteStats{
			pc: {Calls: 12, DataCalls: 12, Hinted: 12},
		},
		HintCalls:    int64(len(r.Hints)),
		MatchedCalls: int64(len(r.Hints)),
	}
	if fs := r.Verify(clean); len(fs) != 0 {
		t.Errorf("clean run produced findings: %v", fs)
	}

	cases := []struct {
		name string
		d    analysis.DynVerifyStats
		want string
	}{
		{"unconsumed", analysis.DynVerifyStats{
			Sites:     map[int64]analysis.DynSiteStats{pc: {Calls: 12, DataCalls: 12, Hinted: 12}},
			HintCalls: 12, MatchedCalls: 10,
		}, "never fully consumed"},
		{"bypassed", analysis.DynVerifyStats{
			Sites:     map[int64]analysis.DynSiteStats{pc: {Calls: 12, DataCalls: 12, Hinted: 12}},
			HintCalls: 12, MatchedCalls: 12, BypassedSegs: 3,
		}, "bypassed"},
		{"unhinted-reads", analysis.DynVerifyStats{
			Sites:     map[int64]analysis.DynSiteStats{pc: {Calls: 12, DataCalls: 12, Hinted: 7}},
			HintCalls: 12, MatchedCalls: 12,
		}, "arrived hinted"},
		{"site-never-ran", analysis.DynVerifyStats{
			Sites:     map[int64]analysis.DynSiteStats{},
			HintCalls: 12, MatchedCalls: 12,
		}, "never executed"},
	}
	for _, c := range cases {
		fs := r.Verify(c.d)
		if len(fs) == 0 {
			t.Errorf("%s: no findings", c.name)
			continue
		}
		joined := ""
		for _, f := range fs {
			if f.Check != analysis.LintStaticHint {
				t.Errorf("%s: finding check = %q, want %q", c.name, f.Check, analysis.LintStaticHint)
			}
			joined += f.Msg + "\n"
		}
		if !strings.Contains(joined, c.want) {
			t.Errorf("%s: findings %q missing %q", c.name, joined, c.want)
		}
	}
}

// TestSynthHintOrderInterleaves: two proved sites bound to the same loop
// must interleave by iteration (the dynamic run consumes iteration i of both
// before iteration i+1 of either).
func TestSynthHintOrderInterleaves(t *testing.T) {
	_, r := synthApp(t, apps.Agrep)
	// Agrep has one site; simulate the ordering contract on the report's
	// hint list directly: iterations must be non-decreasing.
	last := int64(-1)
	for _, h := range r.Hints {
		if h.Iter < last {
			t.Fatalf("hint order regressed: iter %d after %d\n%v", h.Iter, last, r.Hints)
		}
		last = h.Iter
	}
}

// TestSynthPriorsMonotone pins the confidence→prior mapping the TIP layer
// consumes.
func TestSynthPriorsMonotone(t *testing.T) {
	if !(analysis.ConfProved.Prior() > analysis.ConfBounded.Prior() &&
		analysis.ConfBounded.Prior() > analysis.ConfSpecOnly.Prior()) {
		t.Errorf("priors not monotone: %v %v %v",
			analysis.ConfProved.Prior(), analysis.ConfBounded.Prior(), analysis.ConfSpecOnly.Prior())
	}
	for _, c := range []analysis.Confidence{analysis.ConfSpecOnly, analysis.ConfBounded, analysis.ConfProved} {
		if p := c.Prior(); p <= 0 || p > 1 {
			t.Errorf("%v prior %v out of (0,1]", c, p)
		}
		if s := c.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("%v has no printable name", c)
		}
	}
	_ = fmt.Sprint(analysis.Confidence(99)) // must not panic
}
