package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	q := NewQueue()
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	q.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run order = %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", q.Now())
	}
}

func TestSimultaneousEventsRunFIFO(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func() { got = append(got, i) })
	}
	q.Drain()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	q := NewQueue()
	q.Schedule(100, func() {})
	q.RunNext()
	fired := Time(-1)
	q.After(50, func() { fired = q.Now() })
	q.Drain()
	if fired != 150 {
		t.Fatalf("After(50) fired at %d, want 150", fired)
	}
}

func TestCancelPreventsRun(t *testing.T) {
	q := NewQueue()
	ran := false
	e := q.Schedule(10, func() { ran = true })
	q.Cancel(e)
	q.Drain()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel and cancel-after-run must be no-ops.
	q.Cancel(e)
	e2 := q.Schedule(q.Now()+1, func() {})
	q.Drain()
	q.Cancel(e2)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	q := NewQueue()
	var got []int
	var events []Handle
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, q.Schedule(Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		q.Cancel(events[i])
	}
	q.Drain()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("len(got) = %d, want 13", len(got))
	}
}

func TestAdvanceToRunsDueEventsOnly(t *testing.T) {
	q := NewQueue()
	var got []int
	q.Schedule(10, func() { got = append(got, 10) })
	q.Schedule(20, func() { got = append(got, 20) })
	q.Schedule(30, func() { got = append(got, 30) })
	q.AdvanceTo(20)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("got %v, want [10 20]", got)
	}
	if q.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", q.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", q.Len())
	}
}

func TestEventScheduledDuringRun(t *testing.T) {
	q := NewQueue()
	var got []int
	q.Schedule(10, func() {
		got = append(got, 1)
		q.After(5, func() { got = append(got, 2) })
	})
	q.Drain()
	if len(got) != 2 || got[1] != 2 || q.Now() != 15 {
		t.Fatalf("got %v at %d, want [1 2] at 15", got, q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewQueue()
	q.Schedule(10, func() {})
	q.Drain()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.Schedule(5, func() {})
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(100)
	defer func() {
		if recover() == nil {
			t.Fatal("advancing backwards did not panic")
		}
	}()
	q.AdvanceTo(50)
}

func TestNegativeDelayPanics(t *testing.T) {
	q := NewQueue()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	q.After(-1, func() {})
}

func TestPeekTime(t *testing.T) {
	q := NewQueue()
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	q.Schedule(42, func() {})
	at, ok := q.PeekTime()
	if !ok || at != 42 {
		t.Fatalf("PeekTime = %d,%v want 42,true", at, ok)
	}
}

func TestPendingLifecycle(t *testing.T) {
	q := NewQueue()
	h := q.Schedule(10, func() {})
	if !q.Pending(h) {
		t.Fatal("freshly scheduled event not pending")
	}
	q.RunNext()
	if q.Pending(h) {
		t.Fatal("run event still pending")
	}
	h2 := q.Schedule(20, func() {})
	q.Cancel(h2)
	if q.Pending(h2) {
		t.Fatal("cancelled event still pending")
	}
	if q.Pending(Handle{}) {
		t.Fatal("zero Handle reported pending")
	}
}

// A handle that outlives its event must stay inert even after the event's
// internal slot is recycled for a newer event: Cancel through the stale
// handle must not disturb the new occupant.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	q := NewQueue()
	stale := q.Schedule(10, func() {})
	q.RunNext() // slot released to the free list
	ran := false
	fresh := q.Schedule(20, func() { ran = true }) // recycles the slot
	q.Cancel(stale)
	if !q.Pending(fresh) {
		t.Fatal("stale Cancel killed the recycled slot's new event")
	}
	q.Drain()
	if !ran {
		t.Fatal("new event did not run after stale Cancel")
	}
	// Same story for a handle invalidated by Cancel rather than by running.
	c := q.Schedule(q.Now()+5, func() {})
	q.Cancel(c)
	q.Drain() // pops the tombstone, recycling the slot
	ran2 := false
	fresh2 := q.Schedule(q.Now()+5, func() { ran2 = true })
	q.Cancel(c)
	if !q.Pending(fresh2) {
		t.Fatal("doubly-stale Cancel killed a recycled slot")
	}
	q.Drain()
	if !ran2 {
		t.Fatal("event after cancel-recycle did not run")
	}
}

func TestCancelZeroHandleNoop(t *testing.T) {
	q := NewQueue()
	q.Cancel(Handle{}) // must not panic on an empty queue
	ran := false
	q.Schedule(1, func() { ran = true })
	q.Cancel(Handle{})
	q.Drain()
	if !ran {
		t.Fatal("zero-Handle Cancel disturbed a pending event")
	}
}

// RunTick must run every event due at the earliest time — including events
// scheduled for that same instant by the callbacks — then stop.
func TestRunTickBatchesOneInstant(t *testing.T) {
	q := NewQueue()
	var got []int
	q.Schedule(10, func() {
		got = append(got, 1)
		q.After(0, func() { got = append(got, 3) }) // same tick, runs this tick
		q.After(5, func() { got = append(got, 4) }) // next tick, must not run
	})
	q.Schedule(10, func() { got = append(got, 2) })
	q.Schedule(15, func() { got = append(got, 5) })
	if !q.RunTick() {
		t.Fatal("RunTick reported no events")
	}
	if q.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", q.Now())
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("after tick got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after tick got %v, want %v", got, want)
		}
	}
	if q.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", q.Len())
	}
	if !q.RunTick() { // both remaining events are due at 15
		t.Fatal("second RunTick reported no events")
	}
	if len(got) != 5 || q.Now() != 15 {
		t.Fatalf("after second tick got %v at %d, want 5 events at 15", got, q.Now())
	}
	if q.RunTick() {
		t.Fatal("RunTick on empty queue reported events")
	}
}

// RunTick must skip cancelled events, including ones cancelled by an earlier
// callback within the same tick.
func TestRunTickSkipsCancelled(t *testing.T) {
	q := NewQueue()
	var got []int
	var h2 Handle
	q.Schedule(10, func() {
		got = append(got, 1)
		q.Cancel(h2)
	})
	h2 = q.Schedule(10, func() { got = append(got, 2) })
	q.Schedule(10, func() { got = append(got, 3) })
	q.RunTick()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
}

// Len must count only live events, not cancellation tombstones.
func TestLenExcludesTombstones(t *testing.T) {
	q := NewQueue()
	h := q.Schedule(10, func() {})
	q.Schedule(20, func() {})
	q.Cancel(h)
	if q.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", q.Len())
	}
	q.Drain()
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after drain, want 0", q.Len())
	}
}

// PeekTime must see through tombstones at the heap root.
func TestPeekTimeSkipsCancelledRoot(t *testing.T) {
	q := NewQueue()
	h := q.Schedule(10, func() {})
	q.Schedule(20, func() {})
	q.Cancel(h)
	at, ok := q.PeekTime()
	if !ok || at != 20 {
		t.Fatalf("PeekTime = %d,%v want 20,true", at, ok)
	}
}

// Property: for any set of non-negative delays, events fire in nondecreasing
// time order and the clock ends at the max scheduled time.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		q := NewQueue()
		var fired []Time
		var maxAt Time
		for _, d := range delays {
			at := Time(d)
			if at > maxAt {
				maxAt = at
			}
			q.Schedule(at, func() { fired = append(fired, q.Now()) })
		}
		q.Drain()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || q.Now() == maxAt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to run.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		q := NewQueue()
		ran := make([]bool, count)
		events := make([]Handle, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = q.Schedule(Time(i*7%13), func() { ran[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				q.Cancel(events[i])
			}
		}
		q.Drain()
		for i := 0; i < count; i++ {
			cancelled := mask&(1<<uint(i)) != 0
			if ran[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
