package sim

import (
	"math/rand"
	"testing"
)

// refQueue is a naive reference model of Queue semantics: an unsorted slice
// scanned for the minimum (at, seq) on every pop. It is obviously correct
// and obviously slow; the real Queue (value heap + slot arena + free list +
// lazy cancellation) must match its behaviour exactly under any
// interleaving of Schedule/Cancel/RunNext/RunTick/AdvanceTo.
type refQueue struct {
	now    Time
	seq    uint64
	events []refEvent
}

type refEvent struct {
	at  Time
	seq uint64
	id  int
}

func (r *refQueue) schedule(at Time, id int) {
	r.seq++
	r.events = append(r.events, refEvent{at: at, seq: r.seq, id: id})
}

func (r *refQueue) minIdx() int {
	best := -1
	for i, e := range r.events {
		if best < 0 || e.at < r.events[best].at ||
			(e.at == r.events[best].at && e.seq < r.events[best].seq) {
			best = i
		}
	}
	return best
}

func (r *refQueue) removeAt(i int) refEvent {
	e := r.events[i]
	r.events = append(r.events[:i], r.events[i+1:]...)
	return e
}

// cancel drops the pending event with the given id; ids of events that
// already ran or were already cancelled are simply absent, so a stale cancel
// is naturally a no-op — exactly the contract Queue promises via
// generation-checked Handles.
func (r *refQueue) cancel(id int) {
	for i, e := range r.events {
		if e.id == id {
			r.removeAt(i)
			return
		}
	}
}

func (r *refQueue) runNext() (int, bool) {
	i := r.minIdx()
	if i < 0 {
		return 0, false
	}
	e := r.removeAt(i)
	r.now = e.at
	return e.id, true
}

func (r *refQueue) runTick() []int {
	i := r.minIdx()
	if i < 0 {
		return nil
	}
	t := r.events[i].at
	r.now = t
	var ids []int
	for {
		j := r.minIdx()
		if j < 0 || r.events[j].at != t {
			return ids
		}
		ids = append(ids, r.removeAt(j).id)
	}
}

func (r *refQueue) advanceTo(t Time) []int {
	var ids []int
	for {
		i := r.minIdx()
		if i < 0 || r.events[i].at > t {
			break
		}
		e := r.removeAt(i)
		r.now = e.at
		ids = append(ids, e.id)
	}
	r.now = t
	return ids
}

// driveQueues interprets ops as a little program over both queues and fails
// if their observable behaviour ever diverges: execution order, clock, and
// pending count must match after every step. Cancels deliberately include
// stale handles (events that already ran, whose slots the free list has
// recycled) to prove generation checks keep them inert.
func driveQueues(t *testing.T, ops []byte) {
	t.Helper()
	q := NewQueue()
	ref := &refQueue{}
	var got, want []int
	type sched struct {
		h  Handle
		id int
	}
	var handles []sched
	nextID := 0
	for pc, op := range ops {
		arg := int(op >> 3)
		switch op % 8 {
		case 0, 1, 2, 3: // schedule (weighted: most common op)
			id := nextID
			nextID++
			delay := Time(arg % 16)
			q.Schedule(q.Now()+delay, func() { got = append(got, id) })
			ref.schedule(ref.now+delay, id)
			// Re-schedule through After on odd ids to cover both entry points,
			// and retain every handle so later cancels can be stale.
			if id%2 == 1 {
				id2 := nextID
				nextID++
				h := q.After(delay, func() { got = append(got, id2) })
				ref.schedule(ref.now+delay, id2)
				handles = append(handles, sched{h, id2})
			}
		case 4: // cancel an arbitrary (possibly stale) handle
			if len(handles) > 0 {
				k := arg % len(handles)
				q.Cancel(handles[k].h)
				ref.cancel(handles[k].id)
			} else {
				q.Cancel(Handle{})
			}
		case 5: // run one event
			ranQ := q.RunNext()
			id, ranRef := ref.runNext()
			if ranQ != ranRef {
				t.Fatalf("op %d: RunNext ran=%v, reference ran=%v", pc, ranQ, ranRef)
			}
			if ranRef {
				want = append(want, id)
			}
		case 6: // run a whole tick
			ranQ := q.RunTick()
			ids := ref.runTick()
			if ranQ != (len(ids) > 0) {
				t.Fatalf("op %d: RunTick ran=%v, reference ran %d", pc, ranQ, len(ids))
			}
			want = append(want, ids...)
		case 7: // advance the clock
			d := Time(arg % 32)
			q.AdvanceTo(q.Now() + d)
			want = append(want, ref.advanceTo(ref.now+d)...)
		}
		if q.Now() != ref.now {
			t.Fatalf("op %d: Now=%d, reference now=%d", pc, q.Now(), ref.now)
		}
		if q.Len() != len(ref.events) {
			t.Fatalf("op %d: Len=%d, reference pending=%d", pc, q.Len(), len(ref.events))
		}
	}
	for {
		ranQ := q.RunNext()
		id, ranRef := ref.runNext()
		if ranQ != ranRef {
			t.Fatalf("drain: RunNext ran=%v, reference ran=%v", ranQ, ranRef)
		}
		if !ranRef {
			break
		}
		want = append(want, id)
	}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, reference executed %d\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order diverges at %d:\ngot  %v\nwant %v", i, got, want)
		}
	}
}

// TestQueueMatchesModel drives long random op sequences from fixed seeds so
// the heap/free-list rewrite is pinned to the naive model deterministically
// on every CI run.
func TestQueueMatchesModel(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]byte, 400)
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		driveQueues(t, ops)
	}
}

// FuzzQueue lets the fuzzer hunt for interleavings the fixed seeds miss:
// any divergence between Queue and the sorted-slice model — order, clock,
// pending count, or free-list reuse unsafety — is a crash.
func FuzzQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 8, 16, 5, 5, 5})
	f.Add([]byte{1, 9, 4, 6, 17, 12, 7, 5})
	f.Add([]byte{3, 3, 3, 4, 4, 6, 6, 7, 0, 5, 4, 6})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		driveQueues(t, ops)
	})
}
