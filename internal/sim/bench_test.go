package sim

import "testing"

// BenchmarkQueueScheduleRun measures the steady-state event-queue cycle:
// one Schedule followed by one pop+run. With the slot arena's free list
// warm, the whole cycle is allocation-free — Schedule recycles a slot
// instead of allocating an Event.
func BenchmarkQueueScheduleRun(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+10, fn)
		q.RunNext()
	}
}

// BenchmarkQueueRunNext isolates the pop: the queue is pre-filled outside
// the timed region, so the loop body is pure heap maintenance and must
// report 0 allocs/op.
func BenchmarkQueueRunNext(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		q.Schedule(Time(i)*3, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.RunNext()
	}
}

// BenchmarkQueueDeepHeap exercises sift paths on a standing 1k-event heap,
// the regime the disk array and thread scheduler keep the queue in. Sift
// comparisons touch only the contiguous value-entry heap — no pointer
// chasing into the arena.
func BenchmarkQueueDeepHeap(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Schedule(Time(i*7%997), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+Time(i%61), fn)
		q.RunNext()
	}
}

// BenchmarkQueueRunTick measures the batched drain: 64 simultaneous events
// scheduled, then popped in one RunTick pass.
func BenchmarkQueueRunTick(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	ticks := b.N/64 + 1
	for t := 0; t < ticks; t++ {
		at := q.Now() + 10
		for j := 0; j < 64; j++ {
			q.Schedule(at, fn)
		}
		for q.RunTick() {
		}
	}
}

// TestRunNextZeroAlloc pins the pop path's allocation count so a future
// refactor (e.g. back to container/heap with boxing) fails loudly rather
// than silently regressing every simulation.
func TestRunNextZeroAlloc(t *testing.T) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < 512; i++ {
		q.Schedule(Time(i%97), fn)
	}
	avg := testing.AllocsPerRun(256, func() {
		q.RunNext()
	})
	if avg != 0 {
		t.Fatalf("RunNext allocates %.2f objects/op, want 0", avg)
	}
}

// TestScheduleRunSteadyZeroAlloc pins the full steady-state cycle at 0
// allocs/op: once the free list is warm and the heap has reached its
// standing capacity, Schedule must recycle slots rather than allocate.
func TestScheduleRunSteadyZeroAlloc(t *testing.T) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < 512; i++ { // grow arena + heap to standing capacity
		q.Schedule(Time(i%97), fn)
	}
	for i := 0; i < 512; i++ { // warm the free list
		q.RunNext()
	}
	avg := testing.AllocsPerRun(512, func() {
		q.Schedule(q.Now()+Time(7), fn)
		q.RunNext()
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule+RunNext allocates %.2f objects/op, want 0", avg)
	}
}

// TestRunTickZeroAlloc pins the batched path: draining a warm queue tick by
// tick must not allocate either.
func TestRunTickZeroAlloc(t *testing.T) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < 256; i++ { // establish arena + free-list capacity
		q.Schedule(Time(i%31), fn)
	}
	for q.RunTick() {
	}
	avg := testing.AllocsPerRun(128, func() {
		at := q.Now() + 5
		for j := 0; j < 8; j++ {
			q.Schedule(at, fn)
		}
		q.RunTick()
	})
	if avg != 0 {
		t.Fatalf("steady-state RunTick cycle allocates %.2f objects/op, want 0", avg)
	}
}
