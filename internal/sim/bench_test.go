package sim

import "testing"

// BenchmarkQueueScheduleRun measures the steady-state event-queue cycle:
// one Schedule (which allocates the Event) followed by one pop+run. The pop
// half must stay allocation-free — the only alloc per iteration is the
// Event itself.
func BenchmarkQueueScheduleRun(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+10, fn)
		q.RunNext()
	}
}

// BenchmarkQueueRunNext isolates the pop: the queue is pre-filled outside
// the timed region, so the loop body is pure heap maintenance and must
// report 0 allocs/op.
func BenchmarkQueueRunNext(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		q.Schedule(Time(i)*3, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.RunNext()
	}
}

// BenchmarkQueueDeepHeap exercises sift paths on a standing 1k-event heap,
// the regime the disk array and thread scheduler keep the queue in.
func BenchmarkQueueDeepHeap(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Schedule(Time(i*7%997), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+Time(i%61), fn)
		q.RunNext()
	}
}

// TestRunNextZeroAlloc pins the pop path's allocation count so a future
// refactor (e.g. back to container/heap with boxing) fails loudly rather
// than silently regressing every simulation.
func TestRunNextZeroAlloc(t *testing.T) {
	q := NewQueue()
	fn := func() {}
	for i := 0; i < 512; i++ {
		q.Schedule(Time(i%97), fn)
	}
	avg := testing.AllocsPerRun(256, func() {
		q.RunNext()
	})
	if avg != 0 {
		t.Fatalf("RunNext allocates %.2f objects/op, want 0", avg)
	}
}
