// Package sim provides the deterministic discrete-event simulation kernel
// that underlies the SpecHint reproduction: a virtual clock measured in CPU
// cycles and an event queue with stable FIFO ordering among simultaneous
// events.
//
// All timing in the system — disk service, thread scheduling, prefetch
// completion — is expressed as events on a single Queue, which makes every
// experiment reproducible cycle-for-cycle.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, measured in CPU cycles.
type Time int64

// Event is a scheduled callback. Events are ordered by time; events scheduled
// for the same time run in the order they were scheduled.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index; -1 when not queued
	fn    func()
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Queue is a virtual clock plus a pending-event heap. The zero value is not
// ready to use; call NewQueue.
type Queue struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewQueue returns an empty event queue with the clock at zero.
func NewQueue() *Queue {
	return &Queue{}
}

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it indicates a simulation bug, not a recoverable condition.
func (q *Queue) Schedule(at Time, fn func()) *Event {
	if at < q.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, q.now))
	}
	q.seq++
	e := &Event{at: at, seq: q.seq, index: len(q.events), fn: fn}
	q.events = append(q.events, e)
	q.events.siftUp(e.index)
	return e
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return q.Schedule(q.now+delay, fn)
}

// Cancel removes a pending event. Cancelling an event that already ran or was
// already cancelled is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	q.events.remove(e.index)
	e.index = -1
}

// PeekTime returns the time of the earliest pending event.
func (q *Queue) PeekTime() (Time, bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].at, true
}

// RunNext pops and runs the earliest pending event, advancing the clock to
// its time. It reports whether an event ran. The pop itself is
// allocation-free: the heap is maintained inline on the backing slice, with
// no interface round-trips (see BenchmarkQueueScheduleRun).
func (q *Queue) RunNext() bool {
	if len(q.events) == 0 {
		return false
	}
	e := q.events.remove(0)
	e.index = -1
	q.now = e.at
	e.fn()
	return true
}

// AdvanceTo moves the clock forward to t, running every event due at or
// before t in order. Moving backwards panics.
func (q *Queue) AdvanceTo(t Time) {
	if t < q.now {
		panic(fmt.Sprintf("sim: advance to %d before now %d", t, q.now))
	}
	for len(q.events) > 0 && q.events[0].at <= t {
		q.RunNext()
	}
	q.now = t
}

// Advance moves the clock forward by delta cycles, running due events.
func (q *Queue) Advance(delta Time) {
	if delta < 0 {
		panic(fmt.Sprintf("sim: negative advance %d", delta))
	}
	q.AdvanceTo(q.now + delta)
}

// Drain runs events until none remain, returning the number run. It is
// mainly useful in tests and when flushing a simulation to completion.
func (q *Queue) Drain() int {
	n := 0
	for q.RunNext() {
		n++
	}
	return n
}

// eventHeap is a binary min-heap over (at, seq) — simultaneous events run
// FIFO — maintained inline rather than through container/heap. This is the
// hottest data structure in the simulator (every disk completion, thread
// wakeup and prefetch lands here), and the inline form keeps pops free of
// interface boxing and indirect heap.Interface calls.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// remove detaches and returns the event at heap index i, restoring heap
// order. The vacated tail slot is nilled so the garbage collector does not
// retain run events through the backing array.
func (h *eventHeap) remove(i int) *Event {
	old := *h
	n := len(old) - 1
	e := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	*h = old[:n]
	if i != n {
		(*h).siftDown(i)
		(*h).siftUp(i)
	}
	return e
}
