// Package sim provides the deterministic discrete-event simulation kernel
// that underlies the SpecHint reproduction: a virtual clock measured in CPU
// cycles and an event queue with stable FIFO ordering among simultaneous
// events.
//
// All timing in the system — disk service, thread scheduling, prefetch
// completion — is expressed as events on a single Queue, which makes every
// experiment reproducible cycle-for-cycle.
//
// The queue is built for throughput: callbacks live in a slot arena recycled
// through a free list (steady-state Schedule/RunNext allocate nothing), the
// heap orders small value entries so sift comparisons never chase pointers,
// and RunTick drains a whole virtual-time tick in one call. Handles carry a
// generation counter, so cancelling an event that already ran — even if its
// slot has since been recycled — is always a safe no-op.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, measured in CPU cycles.
type Time int64

// Handle identifies a scheduled event. The zero Handle is inert: Cancel and
// Pending treat it as already-run. Handles are generation-checked, so a
// stale Handle (its event ran or was cancelled, and its internal slot may
// have been reused for a different event) can never affect the new event.
type Handle struct {
	slot int32
	gen  uint32
}

// slot is an arena cell holding a scheduled callback. gen starts at 1 and is
// bumped every time the slot is released, invalidating outstanding Handles.
type slot struct {
	fn  func()
	gen uint32
}

// entry is a heap element: 24 bytes, no pointers, so sift operations stay in
// one contiguous slice and the comparator never touches the arena.
type entry struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint32
}

// Queue is a virtual clock plus a pending-event heap. The zero value is not
// ready to use; call NewQueue.
type Queue struct {
	now   Time
	seq   uint64
	live  int // scheduled and not yet run or cancelled
	heap  []entry
	slots []slot
	free  []int32
}

// NewQueue returns an empty event queue with the clock at zero.
func NewQueue() *Queue {
	return &Queue{}
}

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.live }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it indicates a simulation bug, not a recoverable condition.
func (q *Queue) Schedule(at Time, fn func()) Handle {
	if at < q.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, q.now))
	}
	var s int32
	if n := len(q.free); n > 0 {
		s = q.free[n-1]
		q.free = q.free[:n-1]
		q.slots[s].fn = fn
	} else {
		q.slots = append(q.slots, slot{fn: fn, gen: 1})
		s = int32(len(q.slots) - 1)
	}
	gen := q.slots[s].gen
	q.seq++
	q.heap = append(q.heap, entry{at: at, seq: q.seq, slot: s, gen: gen})
	q.siftUp(len(q.heap) - 1)
	q.live++
	return Handle{slot: s, gen: gen}
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return q.Schedule(q.now+delay, fn)
}

// Pending reports whether h refers to an event that has not yet run or been
// cancelled. The zero Handle is never pending.
func (q *Queue) Pending(h Handle) bool {
	return h.gen != 0 && int(h.slot) < len(q.slots) && q.slots[h.slot].gen == h.gen
}

// Cancel removes a pending event. Cancelling an event that already ran or
// was already cancelled is a no-op, even if the event's slot has since been
// recycled for a newer event: the generation check makes stale handles
// inert. Cancellation is lazy — the heap entry remains as a tombstone and is
// discarded when it reaches the root — so Cancel itself is O(1).
func (q *Queue) Cancel(h Handle) {
	if !q.Pending(h) {
		return
	}
	sl := &q.slots[h.slot]
	sl.fn = nil
	sl.gen++
	if sl.gen == 0 { // never hand out gen 0: it marks the inert zero Handle
		sl.gen = 1
	}
	q.live--
	// The slot returns to the free list when its tombstone pops; until then
	// it must stay out of circulation so the stale heap entry cannot alias a
	// recycled slot with a matching generation.
}

// release retires a slot whose event just ran: invalidate outstanding
// handles, drop the callback so the GC does not retain its captures, and
// recycle the slot. Called before the event's fn runs, so fn can immediately
// reuse the slot for new Schedules.
func (q *Queue) release(s int32) {
	sl := &q.slots[s]
	sl.fn = nil
	sl.gen++
	if sl.gen == 0 {
		sl.gen = 1
	}
	q.free = append(q.free, s)
}

// pruneRoot pops cancelled entries off the heap root, recycling their slots.
func (q *Queue) pruneRoot() {
	for len(q.heap) > 0 {
		e := &q.heap[0]
		if q.slots[e.slot].gen == e.gen {
			return
		}
		s := e.slot
		q.popRoot()
		q.free = append(q.free, s)
	}
}

// PeekTime returns the time of the earliest pending event.
func (q *Queue) PeekTime() (Time, bool) {
	q.pruneRoot()
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// RunNext pops and runs the earliest pending event, advancing the clock to
// its time. It reports whether an event ran. The pop is allocation-free: the
// heap is maintained inline over value entries and the callback slot is
// recycled through the free list (see BenchmarkQueueScheduleRun).
func (q *Queue) RunNext() bool {
	q.pruneRoot()
	if len(q.heap) == 0 {
		return false
	}
	e := q.heap[0]
	q.popRoot()
	fn := q.slots[e.slot].fn
	q.release(e.slot)
	q.live--
	q.now = e.at
	fn()
	return true
}

// RunTick advances the clock to the earliest pending event and runs every
// event due at exactly that time — including events the callbacks schedule
// for the same instant — in one pass. It reports whether any event ran.
// Semantically it equals calling RunNext until PeekTime moves past the
// tick, but batches the work per clock advance.
func (q *Queue) RunTick() bool {
	q.pruneRoot()
	if len(q.heap) == 0 {
		return false
	}
	t := q.heap[0].at
	q.now = t
	for {
		e := q.heap[0]
		q.popRoot()
		fn := q.slots[e.slot].fn
		q.release(e.slot)
		q.live--
		fn()
		q.pruneRoot()
		if len(q.heap) == 0 || q.heap[0].at != t {
			return true
		}
	}
}

// AdvanceTo moves the clock forward to t, running every event due at or
// before t in order. Moving backwards panics.
func (q *Queue) AdvanceTo(t Time) {
	if t < q.now {
		panic(fmt.Sprintf("sim: advance to %d before now %d", t, q.now))
	}
	for {
		q.pruneRoot()
		if len(q.heap) == 0 || q.heap[0].at > t {
			break
		}
		q.RunNext()
	}
	q.now = t
}

// Advance moves the clock forward by delta cycles, running due events.
func (q *Queue) Advance(delta Time) {
	if delta < 0 {
		panic(fmt.Sprintf("sim: negative advance %d", delta))
	}
	q.AdvanceTo(q.now + delta)
}

// Drain runs events until none remain, returning the number run. It is
// mainly useful in tests and when flushing a simulation to completion.
func (q *Queue) Drain() int {
	n := 0
	for q.RunNext() {
		n++
	}
	return n
}

// The heap is a d-ary min-heap over (at, seq) — simultaneous events run
// FIFO — maintained inline over value entries rather than through
// container/heap. This is the hottest data structure in the simulator
// (every disk completion, thread wakeup and prefetch lands here); the value
// form keeps sifts free of interface boxing, pointer chasing and
// index-writeback into the arena.

// heapArity is the branching factor. Binary measured fastest for this
// workload's heap depths (wider arities halve sift depth but lose more to
// the extra per-level comparisons).
const heapArity = 2

func (q *Queue) less(i, j int) bool {
	h := q.heap
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (q *Queue) siftUp(i int) {
	h := q.heap
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		least := first
		for c := first + 1; c < last; c++ {
			if q.less(c, least) {
				least = c
			}
		}
		if !q.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// popRoot removes the heap root, restoring heap order.
func (q *Queue) popRoot() {
	h := q.heap
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
	}
	q.heap = h[:n]
	if n > 1 {
		q.siftDown(0)
	}
}
