// Package workload generates the benchmark data sets. Each generator is a
// scaled-down, deterministic equivalent of a TIP-benchmark input:
//
//   - Agrep searched 1,349 Digital UNIX kernel source files (2,928 blocks,
//     ~18 MB). We generate a tree of source-like text files with the same
//     small-file size profile at a configurable scale.
//   - Gnuld linked 562 object files. We generate object files in a compact
//     format with the same *dependence structure*: a file header pointing at
//     a symbol header, which points at symbol/string tables, which contain
//     the locations of up to nine small debug chunks; plus a section table
//     and per-section data. Every level must be read before the next can be
//     located — the pointer chasing that limits speculative hinting.
//   - XDataSlice viewed 25 random slices through a 512^3 volume (512 MB).
//     We generate an n^3 volume with a block-aligned header; slice block
//     addresses are computable from the header alone, which is why
//     speculation hints nearly all of its reads.
//
// All content is deterministic in the seed; file sizes and layouts are what
// drive the simulation, so "content" is sparse where values do not matter.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"spechint/internal/fsim"
)

// StripeUnitBlocks is the file-layout alignment/gap used by all benchmark
// file sets: each file starts on a fresh stripe unit with a gap, so opening
// a new file costs a disk positioning (as on a real, aged file system).
const StripeUnitBlocks = 8

// SetBenchLayout applies the benchmark file layout policy to fs: stripe-unit
// alignment, at least a stripe unit of gap, and jittered extra gaps so file
// starts rotate across the array's disks.
func SetBenchLayout(fs *fsim.FS) {
	fs.SetLayout(StripeUnitBlocks, StripeUnitBlocks)
	fs.SetGapJitter(8 * StripeUnitBlocks)
}

// ---------------------------------------------------------------- Agrep --

// AgrepSpec configures the text-search corpus.
type AgrepSpec struct {
	NumFiles int
	MeanSize int    // mean file size in bytes (sizes vary around it)
	Pattern  string // needle; planted Plants times across the corpus
	Plants   int
	Seed     int64
	Prefix   string // path prefix, so several corpora can share one FS
}

// DefaultAgrep is the paper's Agrep workload at ~1:7 scale: many small
// source files read whole and sequentially.
func DefaultAgrep() AgrepSpec {
	return AgrepSpec{NumFiles: 200, MeanSize: 13000, Pattern: "ENOTREACHED", Plants: 3, Seed: 1}
}

// Build creates the corpus in fs and returns the file names in search order.
func (s AgrepSpec) Build(fs *fsim.FS) []string {
	rng := rand.New(rand.NewSource(s.Seed))
	names := make([]string, 0, s.NumFiles)
	plantIn := map[int]bool{}
	for len(plantIn) < s.Plants && len(plantIn) < s.NumFiles {
		plantIn[rng.Intn(s.NumFiles)] = true
	}
	for i := 0; i < s.NumFiles; i++ {
		// Size profile: most files small, a few large (like source trees).
		size := s.MeanSize/4 + rng.Intn(s.MeanSize*3/2)
		if rng.Intn(10) == 0 {
			size *= 3
		}
		data := sourceText(rng, size)
		if plantIn[i] && len(data) > len(s.Pattern)+2 {
			copy(data[rng.Intn(len(data)-len(s.Pattern)-1)+1:], s.Pattern)
		}
		name := fmt.Sprintf("%skernel/src/%03d/file%04d.c", s.Prefix, i/50, i)
		fs.MustCreate(name, data)
		names = append(names, name)
	}
	return names
}

// sourceText produces C-ish filler.
func sourceText(rng *rand.Rand, size int) []byte {
	words := []string{
		"static", "int", "struct", "return", "if", "else", "for", "while",
		"void", "char", "unsigned", "register", "proc", "vnode", "ubc",
		"lock", "spl", "panic", "KASSERT", "error", "flags", "offset",
	}
	b := make([]byte, 0, size)
	for len(b) < size {
		w := words[rng.Intn(len(words))]
		b = append(b, w...)
		if rng.Intn(8) == 0 {
			b = append(b, '\n')
		} else {
			b = append(b, ' ')
		}
	}
	return b[:size]
}

// CountPattern returns the number of occurrences of pattern in the corpus,
// for verifying Agrep's exit code.
func CountPattern(fs *fsim.FS, names []string, pattern string) int {
	count := 0
	for _, n := range names {
		f, ok := fs.Lookup(n)
		if !ok {
			continue
		}
		data := f.Data
		for i := 0; i+len(pattern) <= len(data); i++ {
			if string(data[i:i+len(pattern)]) == pattern {
				count++
			}
		}
	}
	return count
}

// ---------------------------------------------------------------- Gnuld --

// Object-file format offsets (bytes). All fields are 64-bit little endian.
// The format is deliberately pointer-chained: header -> symbol header ->
// symbol table -> debug chunk locations.
const (
	ObjMagic = 0x4A424F46 // "FOBJ"

	HdrMagic      = 0  // magic number
	HdrSymHdrOff  = 8  // offset of the symbol header
	HdrNSections  = 16 // number of sections
	HdrSectTabOff = 24 // offset of the section table
	HdrSize       = 64

	SymSymtabOff = 0 // within the symbol header
	SymSymtabLen = 8
	SymStrtabOff = 16
	SymStrtabLen = 24
	SymNDebug    = 32 // number of debug chunks (0-9)
	SymHdrSize   = 64

	SectEntrySize = 16 // [offset, length] per section
	DebugChunk    = 64 // bytes per debug chunk read
	MaxDebug      = 9
)

// GnuldSpec configures the object-file set.
type GnuldSpec struct {
	NumFiles    int
	NumSections int // non-debugging sections per file
	SectionSize int // mean bytes per section
	SymtabSize  int // bytes (first NDebug words hold debug chunk offsets)
	StrtabSize  int
	Seed        int64
	Prefix      string // path prefix, so several object sets can share one FS
}

// DefaultGnuld is the paper's link of 562 objects at ~1:2.3 scale. Sizes are
// chosen so that (a) each metadata level lives in its own blocks, making the
// levels independently prefetchable, and (b) the full link (~21 MB) exceeds
// the 12 MB file cache, so the section pass must re-fetch data — both true
// of the paper's kernel link.
func DefaultGnuld() GnuldSpec {
	return GnuldSpec{
		NumFiles:    240,
		NumSections: 4,
		SectionSize: 16000,
		SymtabSize:  16384,
		StrtabSize:  8192,
		Seed:        2,
	}
}

// Build creates the object files and returns their names in link order.
func (s GnuldSpec) Build(fs *fsim.FS) []string {
	rng := rand.New(rand.NewSource(s.Seed))
	names := make([]string, 0, s.NumFiles)
	for i := 0; i < s.NumFiles; i++ {
		name := fmt.Sprintf("%sobj/unit%04d.o", s.Prefix, i)
		fs.MustCreate(name, s.object(rng))
		names = append(names, name)
	}
	return names
}

// object lays out one object file. Layout order: header, then sections with
// debug chunks scattered between them, then section table, symtab and
// strtab — so the metadata a linker chases lives *behind* the bulk data and
// the debug reads are genuinely non-sequential, as in real object files.
func (s GnuldSpec) object(rng *rand.Rand) []byte {
	type span struct{ off, len int64 }
	pos := int64(HdrSize)
	nDebug := rng.Intn(MaxDebug + 1)
	debug := make([]int64, 0, nDebug)
	sections := make([]span, s.NumSections)
	for i := range sections {
		l := int64(s.SectionSize/2 + rng.Intn(s.SectionSize))
		sections[i] = span{pos, l}
		pos += l
		if len(debug) < nDebug {
			debug = append(debug, pos)
			pos += DebugChunk
		}
	}
	sectTab := pos
	pos += int64(s.NumSections * SectEntrySize)
	symHdr := pos
	pos += SymHdrSize
	symTab := pos
	pos += int64(s.SymtabSize)
	strTab := pos
	pos += int64(s.StrtabSize)
	for len(debug) < nDebug {
		debug = append(debug, pos)
		pos += DebugChunk
	}

	data := make([]byte, pos)
	put := func(off int64, v int64) { binary.LittleEndian.PutUint64(data[off:], uint64(v)) }
	put(HdrMagic, ObjMagic)
	put(HdrSymHdrOff, symHdr)
	put(HdrNSections, int64(s.NumSections))
	put(HdrSectTabOff, sectTab)
	for i, sec := range sections {
		put(sectTab+int64(i*SectEntrySize), sec.off)
		put(sectTab+int64(i*SectEntrySize)+8, sec.len)
		fill(data[sec.off:sec.off+sec.len], rng)
	}
	put(symHdr+SymSymtabOff, symTab)
	put(symHdr+SymSymtabLen, int64(s.SymtabSize))
	put(symHdr+SymStrtabOff, strTab)
	put(symHdr+SymStrtabLen, int64(s.StrtabSize))
	put(symHdr+SymNDebug, int64(nDebug))
	for i, off := range debug {
		put(symTab+int64(i*8), off) // debug locations live in the symtab
		fill(data[off:off+DebugChunk], rng)
	}
	fill(data[symTab+int64(nDebug*8):symTab+int64(s.SymtabSize)], rng)
	fill(data[strTab:strTab+int64(s.StrtabSize)], rng)
	return data
}

func fill(b []byte, rng *rand.Rand) {
	// Sparse deterministic fill: cheap to generate, nonzero checksum.
	for i := 0; i < len(b); i += 37 {
		b[i] = byte(rng.Intn(256))
	}
}

// ----------------------------------------------------------- XDataSlice --

// Slice is one slice request through the volume.
type Slice struct {
	Axis  int // 0 = x-plane (contiguous), 1 = y-plane (strided)
	Index int
}

// XDSSpec configures the volume and the slice requests.
type XDSSpec struct {
	N         int // volume is N^3 32-bit elements
	NumSlices int
	Seed      int64
	Prefix    string // path prefix, so several volumes can share one FS
}

// DefaultXDS is the paper's exact XDataSlice geometry: 25 random slices
// through a 512^3 volume (512 MB on disk, vastly larger than the 12 MB file
// cache). The 512-point dimension matters: a strided plane's runs are 128
// blocks apart, beyond the 64-block sequential read-ahead, so the read-ahead
// policy wastes most of its prefetches exactly as in the paper's Table 5.
func DefaultXDS() XDSSpec {
	return XDSSpec{N: 512, NumSlices: 25, Seed: 3}
}

// DataOffset is where volume data starts (one block of header).
const DataOffset = 8192

// RowPad is the padding appended to each z-row of the volume (visualization
// formats align rows to cache-line multiples). It also keeps a plane's run
// stride from being an exact multiple of stripeUnit*disks — with zero pad a
// 512-point volume's strided planes land every read on a single disk. With
// 128 bytes of pad the stride is 17 stripe units, which rotates across any
// array of 1-10 disks.
const RowPad = 128

// RowStride returns the on-disk bytes per z-row for dimension n.
func RowStride(n int) int64 { return int64(n)*4 + RowPad }

// Build creates the volume file and returns its name plus slice requests.
func (s XDSSpec) Build(fs *fsim.FS) (string, []Slice) {
	rng := rand.New(rand.NewSource(s.Seed))
	size := DataOffset + int64(s.N)*int64(s.N)*RowStride(s.N)
	data := make([]byte, size)
	binary.LittleEndian.PutUint64(data[0:], uint64(s.N))
	// Sparse fill: first words of each block carry a block-dependent value,
	// so checksums depend on exactly which blocks are processed.
	for b := int64(DataOffset); b < size; b += 8192 {
		binary.LittleEndian.PutUint64(data[b:], uint64(b/8192*2654435761))
	}
	name := s.Prefix + "viz/dataset.vol"
	fs.MustCreate(name, data)

	slices := make([]Slice, s.NumSlices)
	for i := range slices {
		axis := 0
		if rng.Intn(3) > 0 { // y-planes dominate, like the paper's randoms
			axis = 1
		}
		slices[i] = Slice{Axis: axis, Index: rng.Intn(s.N)}
	}
	return name, slices
}

// SliceBlocks returns the ordered list of distinct volume blocks (block
// numbers within the file) a slice touches — the read sequence XDataSlice
// issues. Exported for the manual-hint variant and for tests.
func SliceBlocks(n int, sl Slice) []int64 {
	stride := RowStride(n)
	elem := func(x int) int64 {
		// Byte offset of the x'th run (z-row) of the plane.
		if sl.Axis == 0 { // x = Index: the plane's rows are consecutive
			return (int64(sl.Index)*int64(n) + int64(x)) * stride
		}
		// y = Index: one row per x, strided by n rows
		return (int64(x)*int64(n) + int64(sl.Index)) * stride
	}
	var last int64 = -1
	var blocks []int64
	for x := 0; x < n; x++ {
		// The application reads the block containing the run's start
		// (consecutive duplicates deduped, like the app's register check).
		b := (DataOffset + elem(x)) / 8192
		if b != last {
			blocks = append(blocks, b)
			last = b
		}
	}
	return blocks
}

// ----------------------------------------------------------- Postgres --

// PostgresSpec configures the database-join workload from the paper's
// Table 1 (Patterson's Postgres benchmark): a sequential scan of an outer
// relation driving random fetches into an inner relation, with a selectivity
// parameter controlling what fraction of outer tuples join (the paper ran
// 20% and 80%).
type PostgresSpec struct {
	OuterTuples int
	InnerTuples int
	InnerSize   int // bytes per inner tuple
	Selectivity int // percent of outer tuples that match
	Seed        int64
	Prefix      string // path prefix, so several databases can share one FS
}

// OuterTupleSize is the fixed outer-relation tuple size: key, inner tid (or
// -1 for no match), and payload.
const OuterTupleSize = 64

// DefaultPostgres sizes the join so the inner relation far exceeds the
// 12 MB cache, as in the paper's run.
func DefaultPostgres(selectivity int) PostgresSpec {
	return PostgresSpec{
		OuterTuples: 50_000,
		InnerTuples: 100_000,
		InnerSize:   256,
		Selectivity: selectivity,
		Seed:        4,
	}
}

// Build creates the outer and inner relation files and returns their names.
// Each outer tuple stores the tid of its matching inner tuple (the index
// lookup's result), or -1: the paper's manually-hinted Postgres disclosed
// exactly these upcoming inner fetches.
func (s PostgresSpec) Build(fs *fsim.FS) (outer, inner string) {
	rng := rand.New(rand.NewSource(s.Seed))
	od := make([]byte, s.OuterTuples*OuterTupleSize)
	for i := 0; i < s.OuterTuples; i++ {
		base := i * OuterTupleSize
		binary.LittleEndian.PutUint64(od[base:], uint64(i)) // key
		tid := int64(-1)
		if rng.Intn(100) < s.Selectivity {
			tid = int64(rng.Intn(s.InnerTuples))
		}
		binary.LittleEndian.PutUint64(od[base+8:], uint64(tid))
		od[base+16] = byte(i) // payload marker
	}
	id := make([]byte, s.InnerTuples*s.InnerSize)
	for i := 0; i < s.InnerTuples; i += 1 {
		binary.LittleEndian.PutUint64(id[i*s.InnerSize:], uint64(i*2654435761))
	}
	outer, inner = s.Prefix+"db/outer.rel", s.Prefix+"db/inner.rel"
	fs.MustCreate(outer, od)
	fs.MustCreate(inner, id)
	return outer, inner
}
