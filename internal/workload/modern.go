package workload

// The modern app suite (ROADMAP item 4): workloads the 1999 paper never
// saw, expressed as traces over the replay frontend. Each spec builds its
// file set in the simulated file system and emits the access trace that
// internal/trace compiles into a first-class VM application — so the new
// apps pick up all four modes, the chaos harness, and the bench registry
// exactly like the hand-written benchmarks.

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"spechint/internal/fsim"
	"spechint/internal/trace"
)

// ------------------------------------------------------------------ LSM --

// LSMSpec configures the LSM/KV workload: a leveled compaction merging L0
// and L1 sorted tables chunk by chunk, interleaved with point lookups (an
// index-block read locating a data-block read). The compaction stream is
// sequential *per table* but round-robins across all tables, and the
// lookups jump randomly — a mix where per-file readahead helps only the
// merge and speculation can hint everything.
type LSMSpec struct {
	L0Tables  int
	L1Tables  int
	TableSize int // bytes per sorted table
	ChunkSize int // compaction read granularity
	Lookups   int // point lookups interleaved with the merge
	Seed      int64
	Prefix    string // path prefix, so several trees can share one FS
}

// LSMIndexSize is the index block at the tail of each table a point lookup
// reads first to locate its data block.
const LSMIndexSize = 4096

// lsmThinkMerge is the compute per compaction chunk (key comparisons and
// output assembly), and lsmThinkLookup the compute between a lookup's index
// and data reads (binary search in the index block).
const (
	lsmThinkMerge  = 60_000
	lsmThinkLookup = 25_000
)

// DefaultLSM merges 8 tables of 4 MB — a 32 MB compaction against the
// 12 MB cache — with 96 lookups mixed in.
func DefaultLSM() LSMSpec {
	return LSMSpec{L0Tables: 4, L1Tables: 4, TableSize: 4 << 20, ChunkSize: 64 << 10, Lookups: 96, Seed: 5}
}

// Build creates the table files and returns the compaction+lookup trace.
func (s LSMSpec) Build(fs *fsim.FS) *trace.Trace {
	rng := rand.New(rand.NewSource(s.Seed))
	var tables []string
	mk := func(level string, n int) {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%slsm/%s/t%02d.sst", s.Prefix, level, i)
			fs.MustCreate(name, tableData(rng, s.TableSize))
			tables = append(tables, name)
		}
	}
	mk("L0", s.L0Tables)
	mk("L1", s.L1Tables)

	rec := &trace.Capture{}
	chunks := s.TableSize / s.ChunkSize
	if chunks < 1 {
		chunks = 1
	}
	totalMerge := chunks * len(tables)
	lookupEvery := totalMerge
	if s.Lookups > 0 {
		lookupEvery = totalMerge / s.Lookups
		if lookupEvery < 1 {
			lookupEvery = 1
		}
	}
	merged := 0
	for c := 0; c < chunks; c++ {
		off := int64(c) * int64(s.ChunkSize)
		n := int64(s.ChunkSize)
		if off+n > int64(s.TableSize) {
			n = int64(s.TableSize) - off
		}
		for _, t := range tables {
			rec.Read(t, off, n, lsmThinkMerge)
			merged++
			if s.Lookups > 0 && merged%lookupEvery == 0 {
				// Point lookup: index block at the table's tail, then the
				// data block it names.
				lt := tables[rng.Intn(len(tables))]
				idxOff := int64(s.TableSize) - LSMIndexSize
				if idxOff < 0 {
					idxOff = 0
				}
				rec.Read(lt, idxOff, LSMIndexSize, lsmThinkLookup)
				dataOff := int64(rng.Intn(chunks)) * int64(s.ChunkSize)
				rec.Read(lt, dataOff, int64(s.ChunkSize), lsmThinkLookup)
			}
		}
	}
	return rec.Trace()
}

// tableData fills a sorted table: ascending 64-bit keys every 512 bytes, so
// replay checksums depend on exactly which chunks were read.
func tableData(rng *rand.Rand, size int) []byte {
	data := make([]byte, size)
	key := int64(rng.Intn(1 << 20))
	for off := 0; off+8 <= size; off += 512 {
		key += int64(1 + rng.Intn(64))
		binary.LittleEndian.PutUint64(data[off:], uint64(key))
	}
	return data
}

// -------------------------------------------------------------- MLShard --

// MLShardSpec configures the ML-training shard loader (the GPU readahead
// prefetcher paper's access pattern): per epoch, every shard file is read
// once in a shuffled order, and *within* each shard the batch-sized reads
// are shuffled too. Coarse, massively non-sequential, yet completely
// deterministic given the shuffle seed — the pattern where sequential
// readahead loses everything and speculation recovers it all.
type MLShardSpec struct {
	Shards    int
	ShardSize int // bytes per shard file
	ReadSize  int // bytes per batch read
	Epochs    int
	Seed      int64
	Prefix    string // path prefix, so several datasets can share one FS
}

// mlThinkBatch is the compute per batch read (augmentation + host-to-device
// staging; small relative to a cold read, which is what makes the loader
// I/O-bound).
const mlThinkBatch = 80_000

// DefaultMLShard loads 16 shards of 4 MB (64 MB, far beyond the 12 MB
// cache) in 16 KB batch reads for 2 epochs. The batch size matters: a
// hinted read bypasses sequential readahead, so multi-hundred-KB batches
// would hide the shuffle from the readahead heuristic and hints could only
// lose; at a few blocks per batch the shuffled offsets defeat readahead and
// disclosure recovers the full overlap.
func DefaultMLShard() MLShardSpec {
	return MLShardSpec{Shards: 16, ShardSize: 4 << 20, ReadSize: 16 << 10, Epochs: 2, Seed: 6}
}

// Build creates the shard files and returns the epoch-shuffled read trace.
func (s MLShardSpec) Build(fs *fsim.FS) *trace.Trace {
	rng := rand.New(rand.NewSource(s.Seed))
	names := make([]string, s.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("%sml/shard%03d.bin", s.Prefix, i)
		fs.MustCreate(names[i], shardData(rng, s.ShardSize, i))
	}
	rec := &trace.Capture{}
	reads := s.ShardSize / s.ReadSize
	if reads < 1 {
		reads = 1
	}
	for e := 0; e < s.Epochs; e++ {
		for _, si := range rng.Perm(s.Shards) {
			for _, ri := range rng.Perm(reads) {
				off := int64(ri) * int64(s.ReadSize)
				n := int64(s.ReadSize)
				if off+n > int64(s.ShardSize) {
					n = int64(s.ShardSize) - off
				}
				rec.Read(names[si], off, n, mlThinkBatch)
			}
		}
	}
	return rec.Trace()
}

// shardData marks each 512-byte record with a shard- and offset-dependent
// value, so the replay digest pins exactly which batches were read.
func shardData(rng *rand.Rand, size, shard int) []byte {
	data := make([]byte, size)
	salt := uint64(rng.Int63())
	for off := 0; off+8 <= size; off += 512 {
		binary.LittleEndian.PutUint64(data[off:], salt^uint64(shard)<<40^uint64(off)*2654435761)
	}
	return data
}
