package workload

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"spechint/internal/fsim"
)

func TestAgrepBuildDeterministic(t *testing.T) {
	spec := AgrepSpec{NumFiles: 20, MeanSize: 3000, Pattern: "NEEDLE", Plants: 2, Seed: 7}
	fs1 := fsim.New(8192)
	names1 := spec.Build(fs1)
	fs2 := fsim.New(8192)
	names2 := spec.Build(fs2)
	if len(names1) != 20 || len(names2) != 20 {
		t.Fatalf("file counts: %d, %d", len(names1), len(names2))
	}
	for i := range names1 {
		if names1[i] != names2[i] {
			t.Fatal("names differ across builds")
		}
		f1, _ := fs1.Lookup(names1[i])
		f2, _ := fs2.Lookup(names2[i])
		if string(f1.Data) != string(f2.Data) {
			t.Fatal("content differs across builds")
		}
	}
}

func TestAgrepPlantsPattern(t *testing.T) {
	spec := AgrepSpec{NumFiles: 30, MeanSize: 4000, Pattern: "XYZZY", Plants: 3, Seed: 5}
	fs := fsim.New(8192)
	names := spec.Build(fs)
	got := CountPattern(fs, names, spec.Pattern)
	if got < 1 || got > 3 {
		t.Fatalf("planted pattern count = %d, want 1..3", got)
	}
	if CountPattern(fs, names, "NOSUCHPATTERN") != 0 {
		t.Fatal("found a pattern that was never planted")
	}
}

func TestGnuldObjectFormat(t *testing.T) {
	spec := GnuldSpec{NumFiles: 5, NumSections: 3, SectionSize: 2000, SymtabSize: 512, StrtabSize: 256, Seed: 9}
	fs := fsim.New(8192)
	names := spec.Build(fs)
	if len(names) != 5 {
		t.Fatalf("files = %d", len(names))
	}
	for _, name := range names {
		f, ok := fs.Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		w := func(off int64) int64 {
			return int64(binary.LittleEndian.Uint64(f.Data[off:]))
		}
		if w(HdrMagic) != ObjMagic {
			t.Fatalf("%s: bad magic", name)
		}
		if w(HdrNSections) != 3 {
			t.Fatalf("%s: nsections = %d", name, w(HdrNSections))
		}
		symHdr := w(HdrSymHdrOff)
		sectTab := w(HdrSectTabOff)
		if symHdr <= 0 || symHdr+SymHdrSize > f.Size() {
			t.Fatalf("%s: symhdr out of range", name)
		}
		// Section table entries must be in-range, non-overlapping-ish.
		for i := int64(0); i < 3; i++ {
			off := w(sectTab + i*SectEntrySize)
			l := w(sectTab + i*SectEntrySize + 8)
			if off < HdrSize || l <= 0 || off+l > f.Size() {
				t.Fatalf("%s: section %d [%d,+%d) out of range", name, i, off, l)
			}
		}
		symTab := w(symHdr + SymSymtabOff)
		symLen := w(symHdr + SymSymtabLen)
		if symLen != 512 || symTab+symLen > f.Size() {
			t.Fatalf("%s: symtab bad", name)
		}
		nDebug := w(symHdr + SymNDebug)
		if nDebug < 0 || nDebug > MaxDebug {
			t.Fatalf("%s: ndebug = %d", name, nDebug)
		}
		for d := int64(0); d < nDebug; d++ {
			doff := w(symTab + d*8)
			if doff < HdrSize || doff+DebugChunk > f.Size() {
				t.Fatalf("%s: debug %d at %d out of range", name, d, doff)
			}
		}
	}
}

func TestXDSBuildHeaderAndSize(t *testing.T) {
	spec := XDSSpec{N: 32, NumSlices: 4, Seed: 3}
	fs := fsim.New(8192)
	name, slices := spec.Build(fs)
	f, ok := fs.Lookup(name)
	if !ok {
		t.Fatal("volume missing")
	}
	if got := int64(binary.LittleEndian.Uint64(f.Data)); got != 32 {
		t.Fatalf("header n = %d", got)
	}
	want := int64(DataOffset) + 32*32*RowStride(32)
	if f.Size() != want {
		t.Fatalf("size = %d, want %d", f.Size(), want)
	}
	if len(slices) != 4 {
		t.Fatalf("slices = %d", len(slices))
	}
	for _, s := range slices {
		if s.Index < 0 || s.Index >= 32 || s.Axis < 0 || s.Axis > 1 {
			t.Fatalf("bad slice %+v", s)
		}
	}
}

func TestSliceBlocksInRange(t *testing.T) {
	n := 32
	size := int64(DataOffset) + int64(n)*int64(n)*RowStride(n)
	maxBlock := (size - 1) / 8192
	for axis := 0; axis <= 1; axis++ {
		for _, idx := range []int{0, 1, n / 2, n - 1} {
			blocks := SliceBlocks(n, Slice{Axis: axis, Index: idx})
			if len(blocks) == 0 {
				t.Fatalf("axis %d idx %d: no blocks", axis, idx)
			}
			for _, b := range blocks {
				if b < 1 || b > maxBlock {
					t.Fatalf("axis %d idx %d: block %d out of [1,%d]", axis, idx, b, maxBlock)
				}
			}
			// Consecutive dedup means no immediate repeats.
			for i := 1; i < len(blocks); i++ {
				if blocks[i] == blocks[i-1] {
					t.Fatalf("axis %d: consecutive duplicate block", axis)
				}
			}
		}
	}
}

func TestSliceBlocksXPlaneDenserThanYPlane(t *testing.T) {
	// An x-plane is contiguous: far fewer distinct blocks than a y-plane.
	n := 64
	x := SliceBlocks(n, Slice{Axis: 0, Index: 10})
	y := SliceBlocks(n, Slice{Axis: 1, Index: 10})
	if len(x) >= len(y) {
		t.Fatalf("x-plane blocks %d >= y-plane blocks %d", len(x), len(y))
	}
}

// Property: SliceBlocks is deterministic and every index yields blocks
// within the volume.
func TestPropertySliceBlocks(t *testing.T) {
	f := func(axis bool, idx uint8) bool {
		n := 64
		a := 0
		if axis {
			a = 1
		}
		sl := Slice{Axis: a, Index: int(idx) % n}
		b1 := SliceBlocks(n, sl)
		b2 := SliceBlocks(n, sl)
		if len(b1) != len(b2) {
			return false
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				return false
			}
		}
		return len(b1) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetBenchLayoutSpreadsFiles(t *testing.T) {
	fs := fsim.New(8192)
	SetBenchLayout(fs)
	var starts []int64
	for i := 0; i < 10; i++ {
		f := fs.MustCreate(string(rune('a'+i)), make([]byte, 100))
		starts = append(starts, f.Start)
	}
	// Starts must be stripe-unit aligned and strictly increasing with gaps.
	for i, s := range starts {
		if s%StripeUnitBlocks != 0 {
			t.Fatalf("start %d not stripe aligned", s)
		}
		if i > 0 && s-starts[i-1] < StripeUnitBlocks {
			t.Fatalf("gap too small: %d after %d", s, starts[i-1])
		}
	}
	// Jitter must produce varying gaps (not all identical).
	gap0 := starts[1] - starts[0]
	varied := false
	for i := 2; i < len(starts); i++ {
		if starts[i]-starts[i-1] != gap0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("gap jitter produced uniform gaps")
	}
}
