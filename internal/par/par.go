// Package par is the deterministic fan-out engine for the evaluation
// harness: it runs independent simulation cells across a bounded worker
// pool while guaranteeing that the observable results are byte-identical
// to a serial run.
//
// The determinism contract mirrors the paper's own correctness story —
// just as speculative execution must never perturb the original thread
// (Chang & Gibson §3), parallelizing the harness must never perturb a
// single simulated cycle. The engine provides exactly the properties
// that make this provable:
//
//   - stable result ordering: cell i's result lands in slot i of the
//     returned slice no matter which worker ran it or when it finished;
//   - cell isolation: the engine shares nothing between cells — each fn(i)
//     must build its own simulation state (the rest of the repo's stack is
//     goroutine-confined per core.System by construction);
//   - panic capture: a panicking cell is recovered in its worker and
//     surfaced as a *PanicError in that cell's slot, so one bad cell
//     cannot tear down the run or skew sibling cells;
//   - bounded width: at most Workers(w) goroutines run at once
//     (defaulting to GOMAXPROCS), so a 100-cell sweep on a 4-core host
//     holds 4 simulations in memory, not 100.
//
// Cache is the companion piece: a concurrent, build-once memo for the
// immutable artifacts (assembled and transformed programs) that every
// cell of a sweep would otherwise rebuild.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers normalizes a requested pool width: values <= 0 select
// GOMAXPROCS (the default the tipbench -parallel flag exposes as
// "NumCPU"); anything else is returned unchanged. Width 1 reproduces
// strictly serial execution, cell 0 first.
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// PanicError is a panic captured from a worker cell.
type PanicError struct {
	Index int    // the cell that panicked
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: cell %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs fn(0) .. fn(n-1) on at most Workers(workers) goroutines and
// returns the n results in index order: values[i] and errs[i] are what
// fn(i) returned. A panic in fn(i) becomes a *PanicError in errs[i].
// With workers == 1 the cells run serially on the calling goroutine in
// index order, with no goroutines spawned — today's behavior, exactly.
func Map[T any](workers, n int, fn func(i int) (T, error)) (values []T, errs []error) {
	values = make([]T, n)
	errs = make([]error, n)
	if n == 0 {
		return values, errs
	}
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		values[i], errs[i] = fn(i)
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			call(i)
		}
		return values, errs
	}
	// Workers pull cell indices from a channel; each cell writes only its
	// own slot, so the result assembly is free of ordering races.
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return values, errs
}

// MapErr is Map for callers that stop at the first failure: it returns
// the values plus the lowest-indexed error (not the first to *occur* —
// error identity must not depend on scheduling).
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	values, errs := Map(workers, n, fn)
	for _, err := range errs {
		if err != nil {
			return values, err
		}
	}
	return values, nil
}

// Cache is a concurrent build-once memo: the first Get for a key runs
// build and every Get (concurrent or later) for that key returns the same
// value. Values must be immutable — they are handed to many goroutines.
//
// Duplicate suppression is per key: two cells racing on the same key run
// build once and share the result; cells on different keys build
// concurrently. A build error is cached like a value (deterministic
// inputs fail deterministically; retrying cannot help).
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// NewCache returns an empty cache.
func NewCache[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{m: make(map[K]*cacheEntry[V])}
}

// Get returns the cached value for key, running build to produce it if
// this is the first request. Concurrent Gets for the same key block until
// the one running build finishes.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[V]{ready: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()
		e.val, e.err = build()
		close(e.ready)
		return e.val, e.err
	}
	c.mu.Unlock()
	<-e.ready
	return e.val, e.err
}

// Len returns the number of cached keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every cached entry. Entries mid-build are unaffected (their
// waiters still complete); subsequent Gets rebuild.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[K]*cacheEntry[V])
}
