package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results land in index order no matter how the cells
// are scheduled, and they match a serial run byte for byte.
func TestMapOrdering(t *testing.T) {
	const n = 64
	fn := func(i int) (string, error) {
		if i%2 == 1 {
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
		}
		return fmt.Sprintf("cell-%03d", i), nil
	}
	serial, serr := Map(1, n, fn)
	for _, workers := range []int{2, 4, 8, n} {
		parallel, perr := Map(workers, n, fn)
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %q, serial %q", workers, i, parallel[i], serial[i])
			}
			if (perr[i] == nil) != (serr[i] == nil) {
				t.Fatalf("workers=%d: slot %d error mismatch", workers, i)
			}
		}
	}
}

// TestMapPanicCapture: a panicking cell is isolated into its own slot.
func TestMapPanicCapture(t *testing.T) {
	_, errs := Map(4, 8, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i * i, nil
	})
	for i, err := range errs {
		if i == 5 {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("cell 5: got %v, want *PanicError", err)
			}
			if pe.Index != 5 || pe.Value != "boom" || len(pe.Stack) == 0 {
				t.Fatalf("bad PanicError: %+v", pe)
			}
		} else if err != nil {
			t.Fatalf("cell %d: unexpected error %v", i, err)
		}
	}
}

// TestMapErrLowestIndex: MapErr reports the lowest-indexed error, not the
// first to occur in wall time.
func TestMapErrLowestIndex(t *testing.T) {
	_, err := MapErr(4, 10, func(i int) (int, error) {
		switch i {
		case 2:
			time.Sleep(2 * time.Millisecond) // lower index finishes later
			return 0, errors.New("low")
		case 7:
			return 0, errors.New("high")
		}
		return i, nil
	})
	if err == nil || err.Error() != "low" {
		t.Fatalf("got %v, want the index-2 error", err)
	}
}

// TestMapBoundedWidth: no more than the requested workers run at once.
func TestMapBoundedWidth(t *testing.T) {
	const workers, n = 3, 24
	var active, peak atomic.Int32
	_, err := MapErr(workers, n, func(i int) (int, error) {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestMapSerialNoGoroutines: workers=1 runs on the calling goroutine.
func TestMapSerialNoGoroutines(t *testing.T) {
	main := goid()
	_, err := MapErr(1, 4, func(i int) (int, error) {
		if goid() != main {
			return 0, errors.New("cell ran off the calling goroutine")
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// goid extracts the current goroutine id from the runtime stack header.
func goid() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	return string(buf[:20])
}

// TestWorkersDefault: non-positive widths select GOMAXPROCS.
func TestWorkersDefault(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(0) = %d, want %d", got, want)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

// TestCacheBuildOnce: concurrent Gets for one key run build exactly once
// and all see the same value.
func TestCacheBuildOnce(t *testing.T) {
	c := NewCache[string, int]()
	var builds atomic.Int32
	var wg sync.WaitGroup
	results := make([]int, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				builds.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Fatalf("build ran %d times, want 1", b)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d", i, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestCacheErrorsCached: a failed build is memoized; the builder is not
// retried.
func TestCacheErrorsCached(t *testing.T) {
	c := NewCache[int, int]()
	var builds int
	build := func() (int, error) {
		builds++
		return 0, errors.New("nope")
	}
	if _, err := c.Get(1, build); err == nil {
		t.Fatal("want error")
	}
	if _, err := c.Get(1, build); err == nil {
		t.Fatal("want cached error")
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	c.Reset()
	if _, err := c.Get(1, build); err == nil || builds != 2 {
		t.Fatalf("after Reset: builds=%d err=%v", builds, err)
	}
}

// TestCacheDistinctKeysConcurrent: different keys build independently.
func TestCacheDistinctKeysConcurrent(t *testing.T) {
	c := NewCache[int, int]()
	_, errs := Map(8, 32, func(i int) (int, error) {
		return c.Get(i%4, func() (int, error) { return i % 4 * 10, nil })
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}
