// Package disk models the storage substrate of the SpecHint testbed: an
// array of disks (the paper used four HP C2247s, 15 ms average access)
// behind a striping pseudodevice with a 64 KB striping unit.
//
// Each disk services one request at a time, non-preemptively, from a
// two-priority queue: demand reads (the application is stalled on them) are
// served before prefetch reads, but an in-service prefetch is never aborted —
// this is what lets erroneous prefetches delay demand requests, the effect
// behind Gnuld's single-disk degradation in the paper.
//
// The model includes the disks' track-buffer read-ahead (physically
// sequential accesses bypass positioning) and the paper's Figure 6 apparatus:
// a completion-notification delay factor used to simulate a widening gap
// between processor and disk speeds, combined with a limit on outstanding
// prefetch requests per disk.
package disk

import (
	"errors"
	"fmt"

	"spechint/internal/obs"
	"spechint/internal/sim"
)

// ErrIO is the transient read error: the request was serviced but returned
// no data. The caller may retry.
var ErrIO = errors.New("disk: transient read error")

// ErrDead is the permanent failure: the request's disk has died. Retrying on
// the same disk cannot succeed.
var ErrDead = errors.New("disk: disk failed")

// Injector decides, per request entering service, whether a fault is
// injected. fault.Plan implements it; nil means a perfect array.
type Injector interface {
	// DiskDead reports whether disk has permanently failed as of now.
	DiskDead(disk int, now sim.Time) bool
	// Outcome rules on one request: spikeFactor multiplies the media
	// service time (1 = none) and fail completes the request with ErrIO.
	Outcome(disk int, phys int64, now sim.Time) (spikeFactor int, fail bool)
}

// Priority classifies a request for queueing.
type Priority int

const (
	// Demand requests block the application; they queue ahead of prefetches.
	Demand Priority = iota
	// Prefetch requests are speculative; they are served only when no
	// demand request is waiting.
	Prefetch
)

func (p Priority) String() string {
	if p == Demand {
		return "demand"
	}
	return "prefetch"
}

// Config describes the array geometry and timing. All times are in CPU
// cycles so that a single virtual clock drives the whole simulation.
type Config struct {
	NumDisks   int // disks in the array
	BlockSize  int // bytes per file-system block
	StripeUnit int // bytes per striping unit (must be a multiple of BlockSize)

	PositionCycles sim.Time // average positioning (seek+rotation) cost per random access
	TransferCycles sim.Time // media transfer cost per block
	TrackBufCycles sim.Time // transfer cost per block when served from the track buffer

	// TrackBufBlocks is how many physically consecutive blocks past the last
	// access the drive's internal read-ahead covers. Zero disables the
	// track-buffer model.
	TrackBufBlocks int

	// DelayFactor simulates a widening processor/disk speed gap (Figure 6):
	// completion notification is delayed to DelayFactor times the service
	// time. 1 means no delay. The benchmark harness divides measured elapsed
	// times by this factor, as the paper did.
	DelayFactor int

	// MaxPrefetchPerDisk bounds outstanding (queued + in-service) prefetch
	// requests per disk; Submit rejects prefetches over the bound. Zero means
	// unlimited. The paper set this to 1 for the Figure 6 experiments.
	MaxPrefetchPerDisk int
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumDisks <= 0:
		return fmt.Errorf("disk: NumDisks = %d, want > 0", c.NumDisks)
	case c.BlockSize <= 0:
		return fmt.Errorf("disk: BlockSize = %d, want > 0", c.BlockSize)
	case c.StripeUnit <= 0 || c.StripeUnit%c.BlockSize != 0:
		return fmt.Errorf("disk: StripeUnit = %d, want positive multiple of BlockSize %d", c.StripeUnit, c.BlockSize)
	case c.DelayFactor < 1:
		return fmt.Errorf("disk: DelayFactor = %d, want >= 1", c.DelayFactor)
	case c.PositionCycles < 0 || c.TransferCycles <= 0 || c.TrackBufCycles < 0:
		return fmt.Errorf("disk: negative or zero timing parameters")
	}
	return nil
}

// Request is one block read submitted to the array. Done is invoked exactly
// once when the host is notified of completion; err is nil on success, ErrIO
// for a transient fault, ErrDead when the disk has permanently failed.
type Request struct {
	Disk      int             // target disk, from the striping map
	PhysBlock int64           // physical block number on that disk
	Pri       Priority        // demand or prefetch
	Done      func(err error) // completion notification with result status

	next *Request // intrusive FIFO link
}

// Stats aggregates array activity for the evaluation tables.
type Stats struct {
	DemandReqs    int64
	PrefetchReqs  int64
	RejectedReqs  int64 // prefetches rejected by MaxPrefetchPerDisk
	TrackBufHits  int64
	BusyCycles    sim.Time // summed over disks
	DemandWait    sim.Time // queueing delay experienced by demand requests
	DemandService sim.Time // service time of demand requests

	// Fault-injection outcomes (zero on a perfect array).
	FaultedReqs int64 // requests completed with ErrIO
	SpikedReqs  int64 // requests whose service time was spiked
	DeadReqs    int64 // requests completed with ErrDead
	DeadDisks   int   // disks that have permanently failed
}

// Array is the striped disk array.
type Array struct {
	clk   *sim.Queue
	cfg   Config
	disks []diskState
	stats Stats
	inj   Injector   // nil = perfect hardware
	obs   *obs.Trace // nil = tracing off; all methods are nil-safe

	// OnIdle, if non-nil, is invoked whenever a disk finishes a request and
	// has no further queued work. TIP uses it to re-try prefetches rejected
	// by the outstanding-prefetch bound.
	OnIdle func(disk int)
}

type diskState struct {
	busy        bool
	dead        bool
	demandHead  *Request
	demandTail  *Request
	prefHead    *Request
	prefTail    *Request
	prefCount   int   // queued + in-service prefetches
	nextSeqPhys int64 // first physical block covered by the track buffer
	seqLimit    int64 // one past the last block covered by the track buffer
	arrival     map[*Request]sim.Time
}

// New constructs an array on the given clock.
func New(clk *sim.Queue, cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{clk: clk, cfg: cfg, disks: make([]diskState, cfg.NumDisks)}
	for i := range a.disks {
		a.disks[i].nextSeqPhys = -1
		a.disks[i].arrival = make(map[*Request]sim.Time)
	}
	return a, nil
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// SetObs installs a cross-layer trace; disk service intervals become spans
// on per-disk lanes. Install before submitting requests.
func (a *Array) SetObs(tr *obs.Trace) { a.obs = tr }

// SetInjector installs a fault injector (nil restores perfect hardware).
// Install before submitting requests; injection decisions are made at
// service time.
func (a *Array) SetInjector(inj Injector) { a.inj = inj }

// Dead reports whether disk i has permanently failed.
func (a *Array) Dead(i int) bool {
	return i >= 0 && i < len(a.disks) && a.disks[i].dead
}

// deadNotifyCycles is the latency of an ErrDead completion: the driver's
// command timeout, modeled as one positioning time.
func (a *Array) deadNotifyCycles() sim.Time {
	if a.cfg.PositionCycles > 0 {
		return a.cfg.PositionCycles
	}
	return a.cfg.TransferCycles
}

// checkDeath marks disk i dead if the injector says it has failed by now,
// draining its queues: every queued request completes with ErrDead after the
// timeout latency. The in-service request, if any, finishes normally — its
// data transfer had already begun.
func (a *Array) checkDeath(i int) {
	d := &a.disks[i]
	if d.dead || a.inj == nil || !a.inj.DiskDead(i, a.clk.Now()) {
		return
	}
	d.dead = true
	a.stats.DeadDisks++
	for {
		r := a.pop(d)
		if r == nil {
			break
		}
		if r.Pri == Prefetch {
			d.prefCount--
		}
		delete(d.arrival, r)
		a.failDead(r)
	}
}

// failDead schedules r's ErrDead completion.
func (a *Array) failDead(r *Request) {
	a.stats.DeadReqs++
	a.obs.Emitf(a.clk.Now(), fmt.Sprintf("disk%d", r.Disk), "disk", "dead",
		"%s phys=%d completed ErrDead", r.Pri, r.PhysBlock)
	if n, ok := a.inj.(interface{ NoteDeadHit() }); ok {
		n.NoteDeadHit()
	}
	a.clk.After(a.deadNotifyCycles(), func() {
		if r.Done != nil {
			r.Done(ErrDead)
		}
	})
}

// Stats returns a copy of the accumulated statistics.
func (a *Array) Stats() Stats { return a.stats }

// BlocksPerStripeUnit returns the number of file-system blocks per striping unit.
func (a *Array) BlocksPerStripeUnit() int64 {
	return int64(a.cfg.StripeUnit / a.cfg.BlockSize)
}

// Map implements the striping pseudodevice: it maps a logical block number
// (in the file system's global block space) to a (disk, physical block) pair,
// striping round-robin in StripeUnit-sized runs.
func (a *Array) Map(logical int64) (disk int, phys int64) {
	unit := a.BlocksPerStripeUnit()
	stripe := logical / unit
	within := logical % unit
	disk = int(stripe % int64(a.cfg.NumDisks))
	row := stripe / int64(a.cfg.NumDisks)
	return disk, row*unit + within
}

// Submit enqueues a request. It returns false if the request is a prefetch
// and the per-disk outstanding-prefetch bound is reached; the caller may
// retry later (see OnIdle).
func (a *Array) Submit(r *Request) bool {
	if r.Disk < 0 || r.Disk >= len(a.disks) {
		panic(fmt.Sprintf("disk: request for disk %d of %d", r.Disk, len(a.disks)))
	}
	a.checkDeath(r.Disk)
	d := &a.disks[r.Disk]
	if d.dead {
		// The disk is gone: the request completes with ErrDead after the
		// driver timeout, never entering a queue.
		a.failDead(r)
		return true
	}
	if r.Pri == Prefetch {
		if a.cfg.MaxPrefetchPerDisk > 0 && d.prefCount >= a.cfg.MaxPrefetchPerDisk {
			a.stats.RejectedReqs++
			return false
		}
		a.stats.PrefetchReqs++
		d.prefCount++
		if d.prefTail == nil {
			d.prefHead, d.prefTail = r, r
		} else {
			d.prefTail.next = r
			d.prefTail = r
		}
	} else {
		a.stats.DemandReqs++
		if d.demandTail == nil {
			d.demandHead, d.demandTail = r, r
		} else {
			d.demandTail.next = r
			d.demandTail = r
		}
	}
	d.arrival[r] = a.clk.Now()
	a.startIfIdle(r.Disk)
	return true
}

func (a *Array) startIfIdle(disk int) {
	d := &a.disks[disk]
	if d.busy {
		return
	}
	a.checkDeath(disk)
	if d.dead {
		return // queues were drained with ErrDead
	}
	r := a.pop(d)
	if r == nil {
		return
	}
	d.busy = true

	service, trackHit := a.serviceTime(d, r)
	spike, fail := 1, false
	if a.inj != nil {
		spike, fail = a.inj.Outcome(disk, r.PhysBlock, a.clk.Now())
		if spike > 1 {
			service *= sim.Time(spike)
			a.stats.SpikedReqs++
		}
		if fail {
			a.stats.FaultedReqs++
		}
	}
	if trackHit && !fail {
		a.stats.TrackBufHits++
	}
	a.stats.BusyCycles += service
	if r.Pri == Demand {
		wait := a.clk.Now() - d.arrival[r]
		a.stats.DemandWait += wait
		a.stats.DemandService += service
	}
	delete(d.arrival, r)

	if fail {
		// A failed read streams no data: the track-buffer window is lost.
		d.nextSeqPhys, d.seqLimit = -1, 0
	} else {
		// Update the track-buffer window: the drive reads ahead physically.
		d.nextSeqPhys = r.PhysBlock + 1
		d.seqLimit = r.PhysBlock + 1 + int64(a.cfg.TrackBufBlocks)
	}

	if a.obs.Enabled() {
		detail := fmt.Sprintf("phys=%d", r.PhysBlock)
		if trackHit && !fail {
			detail += " track-buffer"
		}
		if spike > 1 {
			detail += fmt.Sprintf(" spike=%dx", spike)
		}
		if fail {
			detail += " EIO"
		}
		a.obs.Span(a.clk.Now(), service, fmt.Sprintf("disk%d", disk), "disk", r.Pri.String(), detail)
	}

	notify := service * sim.Time(a.cfg.DelayFactor)
	a.clk.After(notify, func() {
		d.busy = false
		if r.Pri == Prefetch {
			d.prefCount--
		}
		if r.Done != nil {
			var err error
			if fail {
				err = ErrIO
			}
			r.Done(err)
		}
		a.startIfIdle(disk)
		if a.OnIdle != nil && !d.busy {
			a.OnIdle(disk)
		}
	})
}

// serviceTime computes the media service time for r on d, consulting the
// track buffer; it is pure (the queue scheduler also calls it to estimate
// costs). A request within the read-ahead window avoids positioning but
// still pays to stream past any skipped blocks, so a near-sequential skip
// is cheaper than a seek yet dearer than a contiguous read.
func (a *Array) serviceTime(d *diskState, r *Request) (sim.Time, bool) {
	if a.cfg.TrackBufBlocks > 0 && d.nextSeqPhys >= 0 &&
		r.PhysBlock >= d.nextSeqPhys-1 && r.PhysBlock < d.seqLimit {
		dist := r.PhysBlock - (d.nextSeqPhys - 1) // blocks streamed through
		if dist < 1 {
			dist = 1 // re-read of the buffered block
		}
		return a.cfg.TrackBufCycles * sim.Time(dist), true
	}
	return a.cfg.PositionCycles + a.cfg.TransferCycles, false
}

// pop removes the next request to serve: demand requests first (FIFO), then
// the cheapest queued prefetch. Real drivers sort their queues (C-SCAN /
// shortest positioning time first); without this, prefetches interleaved
// with a sequential demand stream destroy the drive's track-buffer locality.
func (a *Array) pop(d *diskState) *Request {
	if d.demandHead != nil {
		r := d.demandHead
		d.demandHead = r.next
		if d.demandHead == nil {
			d.demandTail = nil
		}
		r.next = nil
		return r
	}
	if d.prefHead == nil {
		return nil
	}
	// Select the prefetch with the lowest estimated service time from the
	// current head position; ties broken by ascending physical distance.
	var best, bestPrev *Request
	var prev *Request
	bestCost := sim.Time(1<<62 - 1)
	var bestDist int64 = 1<<62 - 1
	for r := d.prefHead; r != nil; prev, r = r, r.next {
		cost, _ := a.serviceTime(d, r)
		dist := r.PhysBlock - d.nextSeqPhys
		if dist < 0 {
			dist = -dist
		}
		if cost < bestCost || (cost == bestCost && dist < bestDist) {
			best, bestPrev, bestCost, bestDist = r, prev, cost, dist
		}
	}
	if bestPrev == nil {
		d.prefHead = best.next
	} else {
		bestPrev.next = best.next
	}
	if d.prefTail == best {
		d.prefTail = bestPrev
	}
	best.next = nil
	return best
}

// Promote moves a queued prefetch request to the demand queue: a demand
// read is waiting on its block, so it inherits demand priority. If the
// request is already in service or already completed, Promote is a no-op.
// The request keeps its prefetch identity for depth accounting.
func (a *Array) Promote(r *Request) {
	if r.Disk < 0 || r.Disk >= len(a.disks) {
		return
	}
	d := &a.disks[r.Disk]
	var prev *Request
	for q := d.prefHead; q != nil; prev, q = q, q.next {
		if q != r {
			continue
		}
		if prev == nil {
			d.prefHead = r.next
		} else {
			prev.next = r.next
		}
		if d.prefTail == r {
			d.prefTail = prev
		}
		r.next = nil
		if d.demandTail == nil {
			d.demandHead, d.demandTail = r, r
		} else {
			d.demandTail.next = r
			d.demandTail = r
		}
		return
	}
}

// QueueDepth returns the number of requests queued (not in service) at disk i.
func (a *Array) QueueDepth(i int) int {
	d := &a.disks[i]
	n := 0
	for r := d.demandHead; r != nil; r = r.next {
		n++
	}
	for r := d.prefHead; r != nil; r = r.next {
		n++
	}
	return n
}

// Busy reports whether disk i is currently servicing a request.
func (a *Array) Busy(i int) bool { return a.disks[i].busy }
