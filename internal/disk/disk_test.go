package disk

import (
	"testing"
	"testing/quick"

	"spechint/internal/sim"
)

func testConfig(n int) Config {
	return Config{
		NumDisks:       n,
		BlockSize:      8192,
		StripeUnit:     65536,
		PositionCycles: 1000,
		TransferCycles: 100,
		TrackBufCycles: 10,
		TrackBufBlocks: 8,
		DelayFactor:    1,
	}
}

func mustNew(t *testing.T, clk *sim.Queue, cfg Config) *Array {
	t.Helper()
	a, err := New(clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero disks", func(c *Config) { c.NumDisks = 0 }},
		{"zero block size", func(c *Config) { c.BlockSize = 0 }},
		{"stripe not multiple", func(c *Config) { c.StripeUnit = 12345 }},
		{"zero stripe", func(c *Config) { c.StripeUnit = 0 }},
		{"zero delay factor", func(c *Config) { c.DelayFactor = 0 }},
		{"zero transfer", func(c *Config) { c.TransferCycles = 0 }},
		{"negative position", func(c *Config) { c.PositionCycles = -1 }},
	}
	for _, tc := range cases {
		cfg := testConfig(4)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
	if err := testConfig(4).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestStripingMap(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(4))
	unit := a.BlocksPerStripeUnit() // 8 blocks per 64 KB unit
	if unit != 8 {
		t.Fatalf("BlocksPerStripeUnit = %d, want 8", unit)
	}
	// First 8 blocks on disk 0, next 8 on disk 1, ... wrapping to disk 0 at
	// block 32 with physical offset 8.
	cases := []struct {
		logical int64
		disk    int
		phys    int64
	}{
		{0, 0, 0}, {7, 0, 7}, {8, 1, 0}, {15, 1, 7},
		{16, 2, 0}, {24, 3, 0}, {31, 3, 7}, {32, 0, 8}, {33, 0, 9},
		{63, 3, 15}, {64, 0, 16},
	}
	for _, c := range cases {
		d, p := a.Map(c.logical)
		if d != c.disk || p != c.phys {
			t.Errorf("Map(%d) = (%d,%d), want (%d,%d)", c.logical, d, p, c.disk, c.phys)
		}
	}
}

func TestStripingMapIsInjective(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(3))
	seen := make(map[[2]int64]int64)
	for lb := int64(0); lb < 1000; lb++ {
		d, p := a.Map(lb)
		key := [2]int64{int64(d), p}
		if prev, ok := seen[key]; ok {
			t.Fatalf("blocks %d and %d both map to disk %d phys %d", prev, lb, d, p)
		}
		seen[key] = lb
	}
}

func TestSingleRequestTiming(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	done := sim.Time(-1)
	a.Submit(&Request{Disk: 0, PhysBlock: 100, Pri: Demand, Done: func(error) { done = clk.Now() }})
	clk.Drain()
	if done != 1100 { // position + transfer
		t.Fatalf("completion at %d, want 1100", done)
	}
}

func TestTrackBufferHit(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	var times []sim.Time
	record := func(error) { times = append(times, clk.Now()) }
	a.Submit(&Request{Disk: 0, PhysBlock: 10, Pri: Demand, Done: record})
	clk.Drain()
	// Sequential next block: track buffer, 10 cycles.
	a.Submit(&Request{Disk: 0, PhysBlock: 11, Pri: Demand, Done: record})
	clk.Drain()
	// Far block: full access again.
	a.Submit(&Request{Disk: 0, PhysBlock: 1000, Pri: Demand, Done: record})
	clk.Drain()
	if times[0] != 1100 || times[1] != 1110 || times[2] != 2210 {
		t.Fatalf("completions %v, want [1100 1110 2210]", times)
	}
	if a.Stats().TrackBufHits != 1 {
		t.Fatalf("TrackBufHits = %d, want 1", a.Stats().TrackBufHits)
	}
}

func TestTrackBufferRereadSameBlock(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	a.Submit(&Request{Disk: 0, PhysBlock: 10, Pri: Demand})
	clk.Drain()
	// Re-reading the same block hits the buffer (PhysBlock >= nextSeq-1).
	a.Submit(&Request{Disk: 0, PhysBlock: 10, Pri: Demand})
	clk.Drain()
	if a.Stats().TrackBufHits != 1 {
		t.Fatalf("TrackBufHits = %d, want 1", a.Stats().TrackBufHits)
	}
}

func TestDemandPriorityOverPrefetch(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	var order []string
	// First request occupies the disk.
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Prefetch, Done: func(error) { order = append(order, "p0") }})
	// While busy, queue a prefetch then a demand; demand must be served first.
	a.Submit(&Request{Disk: 0, PhysBlock: 500, Pri: Prefetch, Done: func(error) { order = append(order, "p1") }})
	a.Submit(&Request{Disk: 0, PhysBlock: 900, Pri: Demand, Done: func(error) { order = append(order, "d") }})
	clk.Drain()
	want := []string{"p0", "d", "p1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestInServicePrefetchNotPreempted(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	var demandDone sim.Time
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Prefetch})
	// Demand arrives mid-service; it must wait the full prefetch service time.
	clk.Advance(50)
	a.Submit(&Request{Disk: 0, PhysBlock: 2000, Pri: Demand, Done: func(error) { demandDone = clk.Now() }})
	clk.Drain()
	if demandDone != 1100+1100 {
		t.Fatalf("demand done at %d, want 2200", demandDone)
	}
}

func TestMaxPrefetchPerDisk(t *testing.T) {
	clk := sim.NewQueue()
	cfg := testConfig(1)
	cfg.MaxPrefetchPerDisk = 1
	a := mustNew(t, clk, cfg)
	if !a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Prefetch}) {
		t.Fatal("first prefetch rejected")
	}
	if a.Submit(&Request{Disk: 0, PhysBlock: 8, Pri: Prefetch}) {
		t.Fatal("second outstanding prefetch accepted, want rejected")
	}
	if a.Stats().RejectedReqs != 1 {
		t.Fatalf("RejectedReqs = %d, want 1", a.Stats().RejectedReqs)
	}
	// Demand is unaffected by the bound.
	if !a.Submit(&Request{Disk: 0, PhysBlock: 16, Pri: Demand}) {
		t.Fatal("demand rejected by prefetch bound")
	}
	clk.Drain()
	// After completion the bound frees up.
	if !a.Submit(&Request{Disk: 0, PhysBlock: 24, Pri: Prefetch}) {
		t.Fatal("prefetch rejected after previous completed")
	}
}

func TestDelayFactorDelaysNotification(t *testing.T) {
	clk := sim.NewQueue()
	cfg := testConfig(1)
	cfg.DelayFactor = 3
	a := mustNew(t, clk, cfg)
	var done sim.Time
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Demand, Done: func(error) { done = clk.Now() }})
	clk.Drain()
	if done != 3300 {
		t.Fatalf("notification at %d, want 3300", done)
	}
}

func TestOnIdleCallback(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(2))
	var idled []int
	a.OnIdle = func(d int) { idled = append(idled, d) }
	a.Submit(&Request{Disk: 1, PhysBlock: 0, Pri: Demand})
	clk.Drain()
	if len(idled) != 1 || idled[0] != 1 {
		t.Fatalf("OnIdle calls = %v, want [1]", idled)
	}
}

func TestParallelDisksOverlap(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(4))
	var last sim.Time
	for d := 0; d < 4; d++ {
		a.Submit(&Request{Disk: d, PhysBlock: 0, Pri: Demand, Done: func(error) { last = clk.Now() }})
	}
	clk.Drain()
	if last != 1100 {
		t.Fatalf("four parallel reads finished at %d, want 1100 (full overlap)", last)
	}
}

func TestDemandWaitAccounting(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Demand})
	a.Submit(&Request{Disk: 0, PhysBlock: 5000, Pri: Demand})
	clk.Drain()
	st := a.Stats()
	if st.DemandWait != 1100 {
		t.Fatalf("DemandWait = %d, want 1100", st.DemandWait)
	}
	if st.DemandService != 2200 {
		t.Fatalf("DemandService = %d, want 2200", st.DemandService)
	}
}

func TestQueueDepthAndBusy(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Demand})
	a.Submit(&Request{Disk: 0, PhysBlock: 5000, Pri: Demand})
	a.Submit(&Request{Disk: 0, PhysBlock: 9000, Pri: Prefetch})
	if !a.Busy(0) {
		t.Fatal("disk not busy after submit")
	}
	if d := a.QueueDepth(0); d != 2 {
		t.Fatalf("QueueDepth = %d, want 2", d)
	}
	clk.Drain()
	if a.Busy(0) || a.QueueDepth(0) != 0 {
		t.Fatal("disk not idle after drain")
	}
}

// Property: every submitted demand request completes exactly once, regardless
// of interleaving with prefetches, and the mapping covers all disks.
func TestPropertyAllRequestsComplete(t *testing.T) {
	f := func(blocks []uint16, prefMask uint32) bool {
		if len(blocks) > 24 {
			blocks = blocks[:24]
		}
		clk := sim.NewQueue()
		a, err := New(clk, testConfig(3))
		if err != nil {
			return false
		}
		completions := 0
		for i, b := range blocks {
			pri := Demand
			if prefMask&(1<<uint(i)) != 0 {
				pri = Prefetch
			}
			d, p := a.Map(int64(b))
			a.Submit(&Request{Disk: d, PhysBlock: p, Pri: pri, Done: func(error) { completions++ }})
		}
		clk.Drain()
		return completions == len(blocks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrackBufferSkipCostsStreamTime(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	a.Submit(&Request{Disk: 0, PhysBlock: 10, Pri: Demand})
	clk.Drain()
	// Skip 3 blocks ahead (last served 10, next 14): still in the window,
	// but the drive streams through blocks 11-13 first: cost 4 x 10 cycles.
	var done sim.Time
	start := clk.Now()
	a.Submit(&Request{Disk: 0, PhysBlock: 14, Pri: Demand, Done: func(error) { done = clk.Now() }})
	clk.Drain()
	if done-start != 40 {
		t.Fatalf("skip-4 service = %d, want 40", done-start)
	}
}

func TestElevatorPicksCheapestPrefetch(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	var order []int64
	rec := func(b int64) func(error) { return func(error) { order = append(order, b) } }
	// Occupy the disk, then queue prefetches far and near.
	a.Submit(&Request{Disk: 0, PhysBlock: 10, Pri: Prefetch, Done: rec(10)})
	a.Submit(&Request{Disk: 0, PhysBlock: 900, Pri: Prefetch, Done: rec(900)})
	a.Submit(&Request{Disk: 0, PhysBlock: 11, Pri: Prefetch, Done: rec(11)})
	clk.Drain()
	if len(order) != 3 || order[1] != 11 {
		t.Fatalf("service order %v, want the sequential block 11 second", order)
	}
}

func TestPromoteMovesQueuedPrefetchAheadOfOthers(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	var order []int64
	rec := func(b int64) func(error) { return func(error) { order = append(order, b) } }
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Prefetch, Done: rec(0)})
	a.Submit(&Request{Disk: 0, PhysBlock: 5, Pri: Prefetch, Done: rec(5)})
	wanted := &Request{Disk: 0, PhysBlock: 900, Pri: Prefetch, Done: rec(900)}
	a.Submit(wanted)
	// Without promotion the elevator would serve 5 before 900.
	a.Promote(wanted)
	clk.Drain()
	if len(order) != 3 || order[1] != 900 {
		t.Fatalf("service order %v, want promoted 900 second", order)
	}
}

func TestPromoteInServiceOrUnknownIsNoop(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	r := &Request{Disk: 0, PhysBlock: 0, Pri: Prefetch}
	a.Submit(r)
	a.Promote(r)                                // already in service
	a.Promote(&Request{Disk: 0, PhysBlock: 7})  // never submitted
	a.Promote(&Request{Disk: 99, PhysBlock: 7}) // bad disk
	clk.Drain()
}

func TestPromotePreservesQueueIntegrity(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	served := 0
	var reqs []*Request
	a.Submit(&Request{Disk: 0, PhysBlock: 0, Pri: Prefetch, Done: func(error) { served++ }})
	for i := 1; i <= 5; i++ {
		r := &Request{Disk: 0, PhysBlock: int64(i * 100), Pri: Prefetch, Done: func(error) { served++ }}
		a.Submit(r)
		reqs = append(reqs, r)
	}
	// Promote the tail, then the head of the prefetch queue.
	a.Promote(reqs[4])
	a.Promote(reqs[0])
	clk.Drain()
	if served != 6 {
		t.Fatalf("served %d of 6 after promotions", served)
	}
}
