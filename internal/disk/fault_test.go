package disk

import (
	"testing"

	"spechint/internal/sim"
)

// scriptInjector is a deterministic Injector for tests: failAt says which
// request ordinals (0-based, per Outcome call) fail, spikeAt which are
// spiked, and dead marks disks dead from deadAt.
type scriptInjector struct {
	n        int
	failAt   map[int]bool
	spikeAt  map[int]bool
	factor   int
	deadDisk int
	deadAt   sim.Time
	deadHits int
}

func newScript() *scriptInjector {
	return &scriptInjector{failAt: map[int]bool{}, spikeAt: map[int]bool{}, factor: 4, deadDisk: -1}
}

func (s *scriptInjector) DiskDead(disk int, now sim.Time) bool {
	return disk == s.deadDisk && s.deadAt > 0 && now >= s.deadAt
}

func (s *scriptInjector) Outcome(disk int, phys int64, now sim.Time) (int, bool) {
	i := s.n
	s.n++
	sp := 1
	if s.spikeAt[i] {
		sp = s.factor
	}
	return sp, s.failAt[i]
}

func (s *scriptInjector) NoteDeadHit() { s.deadHits++ }

func TestTransientErrorDelivered(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	inj := newScript()
	inj.failAt[0] = true
	a.SetInjector(inj)
	var got []error
	a.Submit(&Request{Disk: 0, PhysBlock: 5, Pri: Demand, Done: func(err error) { got = append(got, err) }})
	a.Submit(&Request{Disk: 0, PhysBlock: 6, Pri: Demand, Done: func(err error) { got = append(got, err) }})
	clk.Drain()
	if len(got) != 2 || got[0] != ErrIO || got[1] != nil {
		t.Fatalf("completion errors = %v, want [ErrIO nil]", got)
	}
	st := a.Stats()
	if st.FaultedReqs != 1 {
		t.Fatalf("FaultedReqs = %d, want 1", st.FaultedReqs)
	}
}

func TestFailedReadResetsTrackBuffer(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	inj := newScript()
	inj.failAt[0] = true
	a.SetInjector(inj)
	var done []sim.Time
	rec := func(error) { done = append(done, clk.Now()) }
	// First request fails; the sequential follow-up must pay full
	// positioning again (no track-buffer window from a failed read).
	a.Submit(&Request{Disk: 0, PhysBlock: 5, Pri: Demand, Done: rec})
	a.Submit(&Request{Disk: 0, PhysBlock: 6, Pri: Demand, Done: rec})
	clk.Drain()
	if service := done[1] - done[0]; service != 1100 {
		t.Fatalf("post-failure sequential service = %d, want full 1100", service)
	}
	if a.Stats().TrackBufHits != 0 {
		t.Fatalf("TrackBufHits = %d after a failed stream", a.Stats().TrackBufHits)
	}
}

func TestLatencySpikeMultipliesService(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	inj := newScript()
	inj.spikeAt[0] = true
	a.SetInjector(inj)
	var done sim.Time
	a.Submit(&Request{Disk: 0, PhysBlock: 5, Pri: Demand, Done: func(error) { done = clk.Now() }})
	clk.Drain()
	if done != 4400 { // (1000+100) * 4
		t.Fatalf("spiked service completed at %d, want 4400", done)
	}
	if a.Stats().SpikedReqs != 1 {
		t.Fatalf("SpikedReqs = %d, want 1", a.Stats().SpikedReqs)
	}
}

func TestDiskDeathDrainsQueues(t *testing.T) {
	clk := sim.NewQueue()
	a := mustNew(t, clk, testConfig(1))
	inj := newScript()
	inj.deadDisk = 0
	inj.deadAt = 500
	a.SetInjector(inj)

	var errs []error
	rec := func(err error) { errs = append(errs, err) }
	// Submitted while alive: enters service, finishes normally even though
	// the disk dies mid-transfer.
	a.Submit(&Request{Disk: 0, PhysBlock: 5, Pri: Demand, Done: rec})
	// Queued behind it; the disk is dead by the time service would start.
	a.Submit(&Request{Disk: 0, PhysBlock: 6, Pri: Demand, Done: rec})
	a.Submit(&Request{Disk: 0, PhysBlock: 7, Pri: Prefetch, Done: rec})
	clk.Drain()
	if len(errs) != 3 {
		t.Fatalf("%d completions, want 3", len(errs))
	}
	if errs[0] != nil {
		t.Fatalf("in-service request got %v, want nil", errs[0])
	}
	if errs[1] != ErrDead || errs[2] != ErrDead {
		t.Fatalf("queued requests got %v/%v, want ErrDead", errs[1], errs[2])
	}

	// Submissions after death: rejected immediately with ErrDead, never queued.
	var late error
	ok := a.Submit(&Request{Disk: 0, PhysBlock: 9, Pri: Demand, Done: func(err error) { late = err }})
	if !ok {
		t.Fatal("Submit to a dead disk returned false; it must accept and fail the request")
	}
	clk.Drain()
	if late != ErrDead {
		t.Fatalf("late request got %v, want ErrDead", late)
	}
	st := a.Stats()
	if st.DeadDisks != 1 || st.DeadReqs != 3 {
		t.Fatalf("DeadDisks=%d DeadReqs=%d, want 1 and 3", st.DeadDisks, st.DeadReqs)
	}
	if !a.Dead(0) {
		t.Fatal("Dead(0) = false after death")
	}
	if inj.deadHits != 3 {
		t.Fatalf("injector NoteDeadHit called %d times, want 3", inj.deadHits)
	}
}

func TestDeadPrefetchReleasesDepthAccounting(t *testing.T) {
	clk := sim.NewQueue()
	cfg := testConfig(1)
	cfg.MaxPrefetchPerDisk = 1
	a := mustNew(t, clk, cfg)
	inj := newScript()
	inj.deadDisk = 0
	inj.deadAt = 1
	a.SetInjector(inj)
	clk.Advance(10) // past the death time, disk still unaware

	var first error
	a.Submit(&Request{Disk: 0, PhysBlock: 5, Pri: Prefetch, Done: func(err error) { first = err }})
	// The death drain must have released the prefetch slot: a second
	// prefetch is not rejected by the depth bound (it fails dead instead).
	var second error
	ok := a.Submit(&Request{Disk: 0, PhysBlock: 6, Pri: Prefetch, Done: func(err error) { second = err }})
	if !ok {
		t.Fatal("prefetch slot leaked across disk death")
	}
	clk.Drain()
	if first != ErrDead || second != ErrDead {
		t.Fatalf("prefetches got %v/%v, want ErrDead", first, second)
	}
}
