package asm

import (
	"strings"
	"testing"

	"spechint/internal/vm"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
; a small program
.data
buf:    .space 16
msg:    .asciz "hi"
vals:   .word 1, 0x10, 'A', msg

.text
main:
    movi r1, 5
    addi r2, r1, -1
    add  r3, r1, r2
    ldw  r4, vals
    stw  r3, buf+8
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["main"] {
		t.Fatalf("entry = %d, want main", p.Entry)
	}
	if got := p.DataSymbols["msg"]; got != 16 {
		t.Fatalf("msg at %d, want 16", got)
	}
	// vals: starts at 16+3=19
	if got := p.DataSymbols["vals"]; got != 19 {
		t.Fatalf("vals at %d, want 19", got)
	}
	// Check .word values.
	w := func(off int64) int64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(p.Data[off+int64(i)])
		}
		return int64(v)
	}
	vals := p.DataSymbols["vals"]
	if w(vals) != 1 || w(vals+8) != 0x10 || w(vals+16) != 'A' || w(vals+24) != 16 {
		t.Fatalf("words = %d %d %d %d", w(vals), w(vals+8), w(vals+16), w(vals+24))
	}
	// stw r3, buf+8 -> absolute via r0 with imm 8.
	st := p.Text[4]
	if st.Op != vm.STW || st.Rs1 != vm.R0 || st.Imm != 8 || st.Rs2 != 3 {
		t.Fatalf("stw = %+v", st)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
.text
main:
    movi r1, 0
loop:
    addi r1, r1, 1
    slti r2, r1, 10
    bne  r2, r0, loop
    jmp  done
    nop
done:
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Symbols["loop"]
	if p.Text[3].Imm != loop {
		t.Fatalf("bne target = %d, want %d", p.Text[3].Imm, loop)
	}
	if p.Text[4].Imm != p.Symbols["done"] {
		t.Fatalf("jmp target = %d", p.Text[4].Imm)
	}
}

func TestForwardReferences(t *testing.T) {
	p, err := Assemble(`
.text
main:
    movi r1, later   ; forward data ref
    call fn
    syscall exit
fn:
    ret
.data
later: .word 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != p.DataSymbols["later"] {
		t.Fatal("forward data reference unresolved")
	}
	if p.Text[1].Imm != p.Symbols["fn"] {
		t.Fatal("forward call unresolved")
	}
}

func TestMemoryOperandForms(t *testing.T) {
	p, err := Assemble(`
.data
x: .word 0
.text
main:
    ldw r1, 8(r2)
    ldw r1, (r2)
    ldw r1, x
    ldw r1, x+16
    stb r3, -4(sp)
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != 8 || p.Text[0].Rs1 != 2 {
		t.Fatalf("ldw 8(r2) = %+v", p.Text[0])
	}
	if p.Text[1].Imm != 0 {
		t.Fatalf("ldw (r2) imm = %d", p.Text[1].Imm)
	}
	if p.Text[2].Rs1 != vm.R0 || p.Text[2].Imm != 0 {
		t.Fatalf("ldw x = %+v", p.Text[2])
	}
	if p.Text[3].Imm != 16 {
		t.Fatalf("ldw x+16 imm = %d", p.Text[3].Imm)
	}
	if p.Text[4].Rs1 != vm.SP || p.Text[4].Imm != -4 {
		t.Fatalf("stb -4(sp) = %+v", p.Text[4])
	}
}

func TestRegisterAliases(t *testing.T) {
	p, err := Assemble(`
.text
main:
    mov  r1, sp
    mov  r2, ra
    mov  r3, at
    mov  r4, zero
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Rs1 != vm.SP || p.Text[1].Rs1 != vm.RA || p.Text[2].Rs1 != vm.AT || p.Text[3].Rs1 != vm.R0 {
		t.Fatal("alias registers wrong")
	}
}

func TestEquAndEntry(t *testing.T) {
	p, err := Assemble(`
.equ BUFSZ 8192
.entry start
.text
other:
    nop
start:
    movi r1, BUFSZ
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["start"] {
		t.Fatalf("entry = %d", p.Entry)
	}
	if p.Text[1].Imm != 8192 {
		t.Fatalf("equ imm = %d", p.Text[1].Imm)
	}
}

func TestJumpTableDirective(t *testing.T) {
	p, err := Assemble(`
.data
tbl: .jumptable absolute c0, c1, c2
utbl: .jumptable unknown c0, c1
.text
main:
c0: nop
c1: nop
c2: nop
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.JumpTables) != 2 {
		t.Fatalf("jump tables = %d", len(p.JumpTables))
	}
	jt := p.JumpTables[0]
	if jt.Format != vm.JTAbsolute || jt.Len != 3 || jt.Addr != p.DataSymbols["tbl"] {
		t.Fatalf("jt = %+v", jt)
	}
	if p.JumpTables[1].Format != vm.JTUnknown {
		t.Fatal("unknown format not recorded")
	}
	// Entries hold text addresses.
	w := int64(0)
	for i := 7; i >= 0; i-- {
		w = w<<8 | int64(p.Data[jt.Addr+8+int64(i)])
	}
	if w != p.Symbols["c1"] {
		t.Fatalf("table entry 1 = %d, want %d", w, p.Symbols["c1"])
	}
}

func TestSyscallNames(t *testing.T) {
	p, err := Assemble(`
.text
main:
    syscall read
    syscall hintfd
    syscall cancelall
    syscall 42
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != vm.SysRead || p.Text[1].Imm != vm.SysHintFD ||
		p.Text[2].Imm != vm.SysCancelAll || p.Text[3].Imm != 42 {
		t.Fatal("syscall codes wrong")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p, err := Assemble(`
 ; full-line comment
.text
main: nop ; trailing
    nop # hash comment
.data
s: .asciz "semi ; colon"   ; comment after string
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 2 {
		t.Fatalf("text len = %d, want 2", len(p.Text))
	}
	if !strings.Contains(string(p.Data), "semi ; colon") {
		t.Fatal("string with semicolon mangled")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown mnemonic", ".text\nmain: bogus r1\n"},
		{"bad register", ".text\nmain: movi r99, 1\n"},
		{"undefined symbol", ".text\nmain: jmp nowhere\n"},
		{"duplicate label", ".text\nmain: nop\nmain: nop\n"},
		{"instr outside text", "nop\n"},
		{"space outside data", ".text\n.space 8\n"},
		{"bad directive", ".bogus\n"},
		{"wrong arity", ".text\nmain: add r1, r2\n"},
		{"bad string", ".data\ns: .asciz notquoted\n"},
		{"bad jumptable format", ".data\nt: .jumptable weird a\n.text\na: nop\n"},
		{"entry undefined", ".entry nope\n.text\nmain: nop\n"},
		{"negative space", ".data\n.space -5\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: assembled without error", c.name)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(".text\nmain: nop\n bogus r1, r2\n")
	if err == nil {
		t.Fatal("no error")
	}
	ae, ok := err.(*Error)
	if !ok || ae.Line != 3 {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestMustAssemblePanicsOnBad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("garbage")
}

func TestDisassembleRoundTripish(t *testing.T) {
	p := MustAssemble(`
.text
main:
    movi r1, 3
    syscall exit
fn:
    ret
`)
	d := Disassemble(p)
	for _, want := range []string{"main:", "fn:", "movi r1, 3", "; exit", "ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

// End-to-end: assemble and execute on the VM.
type exitOS struct{}

func (exitOS) Syscall(m *vm.Machine, t *vm.Thread, code int64) vm.SysControl {
	if code == vm.SysExit {
		t.ExitCode = t.Regs[vm.R1]
		return vm.SysHalt
	}
	return vm.SysDone
}

func TestAssembledProgramRuns(t *testing.T) {
	p := MustAssemble(`
.data
arr: .word 3, 1, 4, 1, 5, 9, 2, 6
.equ N 8
.text
main:
    movi r10, 0      ; sum
    movi r11, 0      ; i
    movi r12, N
    movi r13, arr
loop:
    shli r14, r11, 3
    add  r14, r13, r14
    ldw  r15, (r14)
    add  r10, r10, r15
    addi r11, r11, 1
    blt  r11, r12, loop
    mov  r1, r10
    syscall exit
`)
	cfg := vm.DefaultConfig()
	m, err := vm.NewMachine(p, exitOS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("main", vm.Normal)
	_, stop := m.Run(th, 1_000_000)
	if stop != vm.StopHalted {
		t.Fatalf("stop = %v, err = %v", stop, th.Err)
	}
	if th.ExitCode != 31 {
		t.Fatalf("exit = %d, want 31", th.ExitCode)
	}
}

func TestDisassembleEveryInstruction(t *testing.T) {
	p := MustAssemble(`
.data
tbl: .jumptable absolute a, b
.text
main:
a:  add  r1, r2, r3
b:  movi r4, -9
    ldb  r5, 3(r6)
    stw  r7, (sp)
    bge  r1, r2, main
    call main
    callr r9
    jr   r10
    mov  r11, r12
    syscall cancelall
    ret
`)
	d := Disassemble(p)
	lines := strings.Count(d, "\n")
	if lines < len(p.Text) {
		t.Fatalf("disassembly has %d lines for %d instructions", lines, len(p.Text))
	}
	for _, want := range []string{"add r1, r2, r3", "movi r4, -9", "callr r9", "; cancelall"} {
		if !strings.Contains(d, want) {
			t.Errorf("missing %q in:\n%s", want, d)
		}
	}
}

func TestDisassembleMarksShadow(t *testing.T) {
	p := MustAssemble(".text\nmain: nop\n ret\n")
	p.Text = append(p.Text, p.Text...)
	p.OrigTextLen = 2
	p.ShadowBase = 2
	d := Disassemble(p)
	if !strings.Contains(d, "shadow code") {
		t.Fatal("shadow boundary not marked")
	}
}

func TestNegativeAndHexImmediates(t *testing.T) {
	p := MustAssemble(`
.text
main:
    movi r1, -0x10
    addi r2, r1, -1
    slti r3, r2, 0x7fffffff
    syscall exit
`)
	if p.Text[0].Imm != -16 || p.Text[1].Imm != -1 || p.Text[2].Imm != 0x7fffffff {
		t.Fatalf("immediates: %d %d %d", p.Text[0].Imm, p.Text[1].Imm, p.Text[2].Imm)
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p := MustAssemble(".text\nmain: start: go: nop\n")
	if p.Symbols["main"] != 0 || p.Symbols["start"] != 0 || p.Symbols["go"] != 0 {
		t.Fatal("stacked labels not all at 0")
	}
}

func TestLabelMinusOffset(t *testing.T) {
	p := MustAssemble(`
.data
    .space 16
mark: .word 0
.text
main:
    movi r1, mark-8
    syscall exit
`)
	if p.Text[0].Imm != p.DataSymbols["mark"]-8 {
		t.Fatalf("mark-8 = %d", p.Text[0].Imm)
	}
}

func TestEmptySourceRejected(t *testing.T) {
	if _, err := Assemble(""); err == nil {
		t.Fatal("empty source produced a program")
	}
	if _, err := Assemble("; only comments\n"); err == nil {
		t.Fatal("comment-only source produced a program")
	}
}

func TestErrorCarriesLabelAndSourceContext(t *testing.T) {
	_, err := Assemble(`
.text
main:
    movi r1, 1
inner:
    bogus r1, r2
`)
	if err == nil {
		t.Fatal("bad opcode assembled")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if e.Line != 6 {
		t.Errorf("Line = %d, want 6", e.Line)
	}
	if e.Label != "inner" {
		t.Errorf("Label = %q, want %q", e.Label, "inner")
	}
	if e.Src != "bogus r1, r2" {
		t.Errorf("Src = %q", e.Src)
	}
	for _, want := range []string{"line 6", "(in inner)", "bogus r1, r2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}

func TestUndefinedSymbolErrorPointsAtUse(t *testing.T) {
	_, err := Assemble(`
.text
main:
    jmp nowhere
`)
	if err == nil {
		t.Fatal("undefined symbol assembled")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if e.Line != 4 || e.Label != "main" {
		t.Errorf("location = line %d in %q, want line 4 in main", e.Line, e.Label)
	}
	if !strings.Contains(e.Msg, `"nowhere"`) {
		t.Errorf("Msg = %q", e.Msg)
	}
}
