// Package asm provides a two-pass assembler for vm programs. The benchmark
// applications (Agrep, Gnuld, XDataSlice) are authored in this assembly, the
// way the paper's benchmarks existed as compiled Alpha binaries: SpecHint
// never sees the source, only the resulting vm.Program.
//
// Syntax overview:
//
//	; comment, # comment
//	.equ NAME value
//	.entry label
//	.data
//	buf:    .space 8192
//	msg:    .asciz "hello"
//	nums:   .word 1, 2, label
//	tbl:    .jumptable absolute case0, case1
//	.text
//	main:   movi r1, msg
//	        ldw  r2, 8(r1)
//	        stw  r2, nums
//	        beq  r1, r2, done
//	        call fn
//	        syscall read
//	done:   ret
//
// Registers are r0-r31 with aliases at, ra, sp. Branch/jump targets are
// labels; movi accepts labels (text labels give function addresses, data
// labels give data addresses). Immediates may be decimal, hex (0x...), a
// character ('c'), or label±offset.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spechint/internal/vm"
)

// Error is an assembly error with location context: the 1-based source line,
// the nearest enclosing label (empty before the first label), and the
// offending source line text.
type Error struct {
	Line  int
	Label string
	Src   string
	Msg   string
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "asm: line %d", e.Line)
	if e.Label != "" {
		fmt.Fprintf(&b, " (in %s)", e.Label)
	}
	b.WriteString(": ")
	b.WriteString(e.Msg)
	if e.Src != "" {
		fmt.Fprintf(&b, "\n  %d | %s", e.Line, e.Src)
	}
	return b.String()
}

type section int

const (
	secNone section = iota
	secText
	secData
)

type fixup struct {
	line   int
	label  string // enclosing label at the fixup site, for error context
	src    string // source line at the fixup site
	text   bool   // true: patch Text[idx].Imm; false: patch data word at idx
	idx    int64  // instruction index or data offset
	sym    string
	addend int64
}

type assembler struct {
	prog     *vm.Program
	sec      section
	equs     map[string]int64
	fixups   []fixup
	entrySym string
	line     int
	curLabel string // nearest enclosing label, for error context
	curSrc   string // current source line (comments stripped), for error context
}

// Assemble parses source into a validated vm.Program.
func Assemble(src string) (*vm.Program, error) {
	a := &assembler{
		prog: &vm.Program{
			Symbols:     make(map[string]int64),
			DataSymbols: make(map[string]int64),
		},
		equs: make(map[string]int64),
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	a.prog.DataSize = int64(len(a.prog.Data))
	if a.entrySym != "" {
		addr, ok := a.prog.Symbols[a.entrySym]
		if !ok {
			return nil, &Error{Msg: fmt.Sprintf("entry symbol %q undefined", a.entrySym)}
		}
		a.prog.Entry = addr
	} else if addr, ok := a.prog.Symbols["main"]; ok {
		a.prog.Entry = addr
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble panics on error; for statically known-good sources.
func MustAssemble(src string) *vm.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Label: a.curLabel, Src: a.curSrc, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	a.curSrc = s
	if s == "" {
		return nil
	}
	// Labels (possibly several on one line).
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 || strings.ContainsAny(s[:i], " \t\"(,") {
			break
		}
		if err := a.defineLabel(strings.TrimSpace(s[:i])); err != nil {
			return err
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	if a.sec != secText {
		return a.errf("instruction outside .text: %q", s)
	}
	return a.instruction(s)
}

func (a *assembler) defineLabel(name string) error {
	if name == "" {
		return a.errf("empty label")
	}
	if _, dup := a.prog.Symbols[name]; dup {
		return a.errf("duplicate label %q", name)
	}
	if _, dup := a.prog.DataSymbols[name]; dup {
		return a.errf("duplicate label %q", name)
	}
	switch a.sec {
	case secText:
		a.prog.Symbols[name] = int64(len(a.prog.Text))
	case secData:
		a.prog.DataSymbols[name] = int64(len(a.prog.Data))
	default:
		return a.errf("label %q outside a section", name)
	}
	a.curLabel = name
	return nil
}

func (a *assembler) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".entry":
		if len(fields) != 2 {
			return a.errf(".entry wants one symbol")
		}
		a.entrySym = fields[1]
	case ".equ":
		if len(fields) != 3 {
			return a.errf(".equ wants NAME VALUE")
		}
		v, err := a.number(fields[2])
		if err != nil {
			return err
		}
		a.equs[fields[1]] = v
	case ".space":
		if a.sec != secData {
			return a.errf(".space outside .data")
		}
		n, err := a.number(strings.TrimSpace(s[len(".space"):]))
		if err != nil {
			return err
		}
		if n < 0 {
			return a.errf(".space negative")
		}
		a.prog.Data = append(a.prog.Data, make([]byte, n)...)
	case ".asciz":
		if a.sec != secData {
			return a.errf(".asciz outside .data")
		}
		rest := strings.TrimSpace(s[len(".asciz"):])
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string %s: %v", rest, err)
		}
		a.prog.Data = append(a.prog.Data, str...)
		a.prog.Data = append(a.prog.Data, 0)
	case ".word":
		if a.sec != secData {
			return a.errf(".word outside .data")
		}
		for _, part := range splitArgs(s[len(".word"):]) {
			if err := a.emitWord(part); err != nil {
				return err
			}
		}
	case ".jumptable":
		if a.sec != secData {
			return a.errf(".jumptable outside .data")
		}
		rest := strings.TrimSpace(s[len(".jumptable"):])
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return a.errf(".jumptable wants FORMAT label...")
		}
		args := append([]string{rest[:sp]}, splitArgs(rest[sp:])...)
		if len(args) < 2 {
			return a.errf(".jumptable wants FORMAT label...")
		}
		var format vm.JumpTableFormat
		switch args[0] {
		case "absolute":
			format = vm.JTAbsolute
		case "unknown":
			format = vm.JTUnknown
		default:
			return a.errf("unknown jump table format %q", args[0])
		}
		addr := int64(len(a.prog.Data))
		for _, lbl := range args[1:] {
			if err := a.emitWord(lbl); err != nil {
				return err
			}
		}
		a.prog.JumpTables = append(a.prog.JumpTables, vm.JumpTable{
			Addr: addr, Len: int64(len(args) - 1), Format: format,
		})
	default:
		return a.errf("unknown directive %s", fields[0])
	}
	return nil
}

// emitWord appends an 8-byte word, possibly a symbol reference.
func (a *assembler) emitWord(expr string) error {
	off := int64(len(a.prog.Data))
	a.prog.Data = append(a.prog.Data, make([]byte, 8)...)
	if v, err := a.number(expr); err == nil {
		putWord(a.prog.Data[off:], v)
		return nil
	}
	sym, addend, err := a.symRef(expr)
	if err != nil {
		return err
	}
	a.fixups = append(a.fixups, fixup{
		line: a.line, label: a.curLabel, src: a.curSrc,
		text: false, idx: off, sym: sym, addend: addend,
	})
	return nil
}

func putWord(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

// splitArgs splits a comma-separated operand list, trimming whitespace.
func splitArgs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

var regAliases = map[string]uint8{"at": vm.AT, "ra": vm.RA, "sp": vm.SP, "zero": vm.R0}

func (a *assembler) reg(s string) (uint8, error) {
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < vm.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, a.errf("bad register %q", s)
}

// number parses a pure numeric immediate (no symbols).
func (a *assembler) number(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, a.errf("bad number %q", s)
	}
	return v, nil
}

// symRef parses "label", "label+N" or "label-N".
func (a *assembler) symRef(s string) (sym string, addend int64, err error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			n, err := a.number(s[i+1:])
			if err != nil {
				return "", 0, err
			}
			if s[i] == '-' {
				n = -n
			}
			return s[:i], n, nil
		}
	}
	if s == "" {
		return "", 0, a.errf("empty operand")
	}
	return s, 0, nil
}

// imm resolves an immediate now if numeric, else records a fixup against the
// instruction being emitted.
func (a *assembler) imm(expr string) (int64, bool, error) {
	if v, err := a.number(expr); err == nil {
		return v, true, nil
	}
	return 0, false, nil
}

func (a *assembler) fixupText(expr string) error {
	sym, addend, err := a.symRef(expr)
	if err != nil {
		return err
	}
	a.fixups = append(a.fixups, fixup{
		line: a.line, label: a.curLabel, src: a.curSrc,
		text: true, idx: int64(len(a.prog.Text) - 1),
		sym: sym, addend: addend,
	})
	return nil
}

var sysNames = map[string]int64{
	"exit": vm.SysExit, "open": vm.SysOpen, "close": vm.SysClose,
	"read": vm.SysRead, "seek": vm.SysSeek, "fstat": vm.SysFstat,
	"write": vm.SysWrite, "sbrk": vm.SysSbrk, "print": vm.SysPrint,
	"printint": vm.SysPrintInt, "hintfd": vm.SysHintFD,
	"hintfile": vm.SysHintFile, "cancelall": vm.SysCancelAll,
}

var aluRegOps = map[string]vm.Op{
	"add": vm.ADD, "sub": vm.SUB, "mul": vm.MUL, "div": vm.DIV, "mod": vm.MOD,
	"and": vm.AND, "or": vm.OR, "xor": vm.XOR, "shl": vm.SHL, "shr": vm.SHR,
	"slt": vm.SLT,
}

var aluImmOps = map[string]vm.Op{
	"addi": vm.ADDI, "andi": vm.ANDI, "ori": vm.ORI, "xori": vm.XORI,
	"shli": vm.SHLI, "shri": vm.SHRI, "slti": vm.SLTI,
}

var branchOps = map[string]vm.Op{
	"beq": vm.BEQ, "bne": vm.BNE, "blt": vm.BLT, "bge": vm.BGE,
}

var loadOps = map[string]vm.Op{"ldb": vm.LDB, "ldw": vm.LDW}
var storeOps = map[string]vm.Op{"stb": vm.STB, "stw": vm.STW}

func (a *assembler) emit(ins vm.Instr) {
	a.prog.Text = append(a.prog.Text, ins)
}

// memOperand parses "imm(reg)", "label", "label+N", or "imm".
func (a *assembler) memOperand(s string) (base uint8, immExpr string, err error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return 0, "", a.errf("bad memory operand %q", s)
		}
		r, err := a.reg(strings.TrimSpace(s[i+1 : len(s)-1]))
		if err != nil {
			return 0, "", err
		}
		expr := strings.TrimSpace(s[:i])
		if expr == "" {
			expr = "0"
		}
		return r, expr, nil
	}
	return vm.R0, s, nil // absolute address via r0
}

func (a *assembler) instruction(s string) error {
	var mnem, rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnem, rest = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		mnem = s
	}
	args := splitArgs(rest)
	need := func(n int) error {
		if len(args) != n {
			return a.errf("%s wants %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	switch {
	case mnem == "nop":
		if err := need(0); err != nil {
			return err
		}
		a.emit(vm.Instr{Op: vm.NOP})

	case mnem == "ret":
		if err := need(0); err != nil {
			return err
		}
		a.emit(vm.Instr{Op: vm.RET})

	case aluRegOps[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return err
		}
		rs2, err := a.reg(args[2])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: aluRegOps[mnem], Rd: rd, Rs1: rs1, Rs2: rs2})

	case aluImmOps[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return err
		}
		v, ok, err := a.imm(args[2])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: aluImmOps[mnem], Rd: rd, Rs1: rs1, Imm: v})
		if !ok {
			return a.fixupText(args[2])
		}

	case mnem == "movi":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		v, ok, err := a.imm(args[1])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: vm.MOVI, Rd: rd, Imm: v})
		if !ok {
			return a.fixupText(args[1])
		}

	case mnem == "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: vm.ADD, Rd: rd, Rs1: rs, Rs2: vm.R0})

	case loadOps[mnem] != 0:
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		base, expr, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		v, ok, err := a.imm(expr)
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: loadOps[mnem], Rd: rd, Rs1: base, Imm: v})
		if !ok {
			return a.fixupText(expr)
		}

	case storeOps[mnem] != 0:
		if err := need(2); err != nil {
			return err
		}
		rs2, err := a.reg(args[0])
		if err != nil {
			return err
		}
		base, expr, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		v, ok, err := a.imm(expr)
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: storeOps[mnem], Rs1: base, Rs2: rs2, Imm: v})
		if !ok {
			return a.fixupText(expr)
		}

	case branchOps[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(args[1])
		if err != nil {
			return err
		}
		v, ok, err := a.imm(args[2])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: branchOps[mnem], Rs1: rs1, Rs2: rs2, Imm: v})
		if !ok {
			return a.fixupText(args[2])
		}

	case mnem == "jmp" || mnem == "call":
		if err := need(1); err != nil {
			return err
		}
		op := vm.JMP
		if mnem == "call" {
			op = vm.CALL
		}
		v, ok, err := a.imm(args[0])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: op, Imm: v})
		if !ok {
			return a.fixupText(args[0])
		}

	case mnem == "jr" || mnem == "callr":
		if err := need(1); err != nil {
			return err
		}
		op := vm.JR
		if mnem == "callr" {
			op = vm.CALLR
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		a.emit(vm.Instr{Op: op, Rs1: rs})

	case mnem == "syscall":
		if err := need(1); err != nil {
			return err
		}
		code, ok := sysNames[args[0]]
		if !ok {
			v, err := a.number(args[0])
			if err != nil {
				return a.errf("unknown syscall %q", args[0])
			}
			code = v
		}
		a.emit(vm.Instr{Op: vm.SYSCALL, Imm: code})

	default:
		return a.errf("unknown mnemonic %q", mnem)
	}
	return nil
}

// resolve patches all symbol references.
func (a *assembler) resolve() error {
	lookup := func(sym string) (int64, bool) {
		if v, ok := a.prog.Symbols[sym]; ok {
			return v, true
		}
		if v, ok := a.prog.DataSymbols[sym]; ok {
			return v, true
		}
		if v, ok := a.equs[sym]; ok {
			return v, true
		}
		return 0, false
	}
	for _, f := range a.fixups {
		v, ok := lookup(f.sym)
		if !ok {
			return &Error{Line: f.line, Label: f.label, Src: f.src,
				Msg: fmt.Sprintf("undefined symbol %q", f.sym)}
		}
		v += f.addend
		if f.text {
			a.prog.Text[f.idx].Imm = v
		} else {
			putWord(a.prog.Data[f.idx:], v)
		}
	}
	return nil
}

// Locator resolves text PCs to "label+offset" strings using a program's
// symbol table. SpecHint adds a "$shadow" twin for every original label, so
// shadow PCs resolve to their shadow symbols naturally. Analysis reports and
// speclint findings use it so a finding reads "scan+2", not "PC 83".
type Locator struct {
	addrs []int64
	names []string
}

// NewLocator builds a locator over p's text symbols. It is safe to call on a
// program with no symbol table; Locate then falls back to bare PCs.
func NewLocator(p *vm.Program) *Locator {
	l := &Locator{}
	for name, addr := range p.Symbols {
		l.addrs = append(l.addrs, addr)
		l.names = append(l.names, name)
	}
	// Sort by address, breaking ties by name so resolution is deterministic.
	sort.Sort(locatorSort{l})
	return l
}

type locatorSort struct{ l *Locator }

func (s locatorSort) Len() int { return len(s.l.addrs) }
func (s locatorSort) Less(i, j int) bool {
	if s.l.addrs[i] != s.l.addrs[j] {
		return s.l.addrs[i] < s.l.addrs[j]
	}
	return s.l.names[i] < s.l.names[j]
}
func (s locatorSort) Swap(i, j int) {
	s.l.addrs[i], s.l.addrs[j] = s.l.addrs[j], s.l.addrs[i]
	s.l.names[i], s.l.names[j] = s.l.names[j], s.l.names[i]
}

// Locate returns "label", "label+off", or the bare PC when no label at or
// before pc exists.
func (l *Locator) Locate(pc int64) string {
	i := sort.Search(len(l.addrs), func(i int) bool { return l.addrs[i] > pc })
	if i == 0 {
		return fmt.Sprintf("%d", pc)
	}
	// Among symbols at the same address, prefer the first (alphabetical);
	// among addresses <= pc, take the closest.
	base := l.addrs[i-1]
	j := sort.Search(len(l.addrs), func(i int) bool { return l.addrs[i] >= base })
	if off := pc - base; off != 0 {
		return fmt.Sprintf("%s+%d", l.names[j], off)
	}
	return l.names[j]
}

// Disassemble renders a program's text section, annotating labels, the
// shadow boundary, syscall names, and control-transfer targets. Useful for
// debugging transforms.
func Disassemble(p *vm.Program) string {
	labels := make(map[int64][]string)
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for _, ls := range labels {
		sort.Strings(ls)
	}
	loc := NewLocator(p)
	var b strings.Builder
	for i, ins := range p.Text {
		if p.ShadowBase > 0 && int64(i) == p.ShadowBase {
			b.WriteString("; ---- shadow code ----\n")
		}
		for _, l := range labels[int64(i)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%6d\t%s", i, ins)
		switch {
		case ins.Op == vm.SYSCALL:
			fmt.Fprintf(&b, "\t; %s", vm.SyscallName(ins.Imm))
		case ins.Op.IsBranch() || ins.Op == vm.JMP || ins.Op == vm.CALL:
			fmt.Fprintf(&b, "\t; -> %s", loc.Locate(ins.Imm))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Context renders the instructions around pc (pc±radius) with label and
// target annotations, marking pc itself. speclint findings embed it so a
// violation shows its surrounding shadow code.
func Context(p *vm.Program, pc, radius int64) string {
	lo, hi := pc-radius, pc+radius+1
	if lo < 0 {
		lo = 0
	}
	if hi > int64(len(p.Text)) {
		hi = int64(len(p.Text))
	}
	loc := NewLocator(p)
	var b strings.Builder
	for i := lo; i < hi; i++ {
		mark := "  "
		if i == pc {
			mark = "=>"
		}
		fmt.Fprintf(&b, "  %s %6d  %-28s ; %s", mark, i, p.Text[i].String(), loc.Locate(i))
		if t := p.Text[i]; t.Op.IsBranch() || t.Op == vm.JMP || t.Op == vm.CALL {
			fmt.Fprintf(&b, " -> %s", loc.Locate(t.Imm))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
