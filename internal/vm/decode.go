package vm

// Pre-decoded dispatch. Program text is immutable once a Machine is loaded,
// so NewMachine flattens it into a []dInstr in which everything the
// interpreter would otherwise recompute per step is resolved once:
//
//   - op variants collapse into a dense class enum (byte/word loads share a
//     class distinguished by a width flag; CALL is JMP plus a link flag; RET
//     is JR with Rs1 pre-resolved to RA), so the Run loop switches over
//     contiguous small integers, which the compiler lowers to a jump table;
//   - the base cycle cost of every instruction (Default/Mul/Div/Syscall plus
//     the speculative check surcharges) is precomputed into the entry;
//   - the SP-discipline check predicate (Rd == SP on a non-store) becomes a
//     flag bit instead of three comparisons per step.
//
// The original []Instr stays on the Machine for diagnostics (fault messages
// name the source opcode, not the decoded class).

// dClass is a dense pre-decoded instruction class.
type dClass uint8

const (
	dNOP dClass = iota
	dADD
	dSUB
	dMUL
	dDIV
	dMOD
	dAND
	dOR
	dXOR
	dSHL
	dSHR
	dSLT
	dADDI
	dANDI
	dORI
	dXORI
	dSHLI
	dSHRI
	dSLTI
	dMOVI
	dLD  // plain load; width via dfWord
	dLDS // COW-checked load
	dST  // plain store
	dSTS // COW-checked store
	dBEQ
	dBNE
	dBLT
	dBGE
	dJMP // direct jump; dfLink covers CALL
	dJR  // register-indirect jump; dfLink covers CALLR, RET pre-resolves Rs1=RA
	dJRH // handler-mediated indirect; dfLink covers CALLRH, RETH pre-resolves Rs1=RA
	dJTR
	dSYSCALL
	dILLEGAL
)

// dInstr flag bits.
const (
	dfLink    byte = 1 << iota // write RA before transferring control
	dfWord                     // 8-byte memory access (unset: 1 byte)
	dfCheckSP                  // run the SP-discipline check after this instruction
)

// dInstr is one pre-decoded instruction: 24 bytes, everything the hot loop
// needs in one cache-line-friendly slot.
type dInstr struct {
	class        dClass
	rd, rs1, rs2 uint8
	flags        byte
	imm          int64
	cost         int64
}

// decodeProgram flattens text under the given cost model. Opcodes that
// Program.Validate would reject decode to dILLEGAL and fault at execution,
// matching the switch interpreter's default case.
func decodeProgram(text []Instr, cost CostModel) []dInstr {
	dec := make([]dInstr, len(text))
	for i, ins := range text {
		d := &dec[i]
		d.rd, d.rs1, d.rs2, d.imm = ins.Rd, ins.Rs1, ins.Rs2, ins.Imm
		d.cost = cost.Default
		switch ins.Op {
		case NOP:
			d.class = dNOP
		case ADD:
			d.class = dADD
		case SUB:
			d.class = dSUB
		case MUL:
			d.class = dMUL
			d.cost = cost.Mul
		case DIV:
			d.class = dDIV
			d.cost = cost.Div
		case MOD:
			d.class = dMOD
			d.cost = cost.Div
		case AND:
			d.class = dAND
		case OR:
			d.class = dOR
		case XOR:
			d.class = dXOR
		case SHL:
			d.class = dSHL
		case SHR:
			d.class = dSHR
		case SLT:
			d.class = dSLT
		case ADDI:
			d.class = dADDI
		case ANDI:
			d.class = dANDI
		case ORI:
			d.class = dORI
		case XORI:
			d.class = dXORI
		case SHLI:
			d.class = dSHLI
		case SHRI:
			d.class = dSHRI
		case SLTI:
			d.class = dSLTI
		case MOVI:
			d.class = dMOVI
		case LDB:
			d.class = dLD
		case LDW:
			d.class = dLD
			d.flags |= dfWord
		case LDBS:
			d.class = dLDS
			d.cost += cost.LoadCheck
		case LDWS:
			d.class = dLDS
			d.flags |= dfWord
			d.cost += cost.LoadCheck
		case STB:
			d.class = dST
		case STW:
			d.class = dST
			d.flags |= dfWord
		case STBS:
			d.class = dSTS
			d.cost += cost.StoreCheck
		case STWS:
			d.class = dSTS
			d.flags |= dfWord
			d.cost += cost.StoreCheck
		case BEQ:
			d.class = dBEQ
		case BNE:
			d.class = dBNE
		case BLT:
			d.class = dBLT
		case BGE:
			d.class = dBGE
		case JMP:
			d.class = dJMP
		case CALL:
			d.class = dJMP
			d.flags |= dfLink
		case JR:
			d.class = dJR
		case CALLR:
			d.class = dJR
			d.flags |= dfLink
		case RET:
			d.class = dJR
			d.rs1 = RA
		case JRH:
			d.class = dJRH
			d.cost += cost.Handler
		case CALLRH:
			d.class = dJRH
			d.flags |= dfLink
			d.cost += cost.Handler
		case RETH:
			d.class = dJRH
			d.rs1 = RA
			d.cost += cost.Handler
		case JTR:
			d.class = dJTR
			d.cost += cost.JumpTable
		case SYSCALL:
			d.class = dSYSCALL
			d.cost = cost.Syscall
		default:
			d.class = dILLEGAL
		}
		if ins.Rd == SP && ins.Op != NOP && !ins.Op.IsStore() {
			d.flags |= dfCheckSP
		}
	}
	return dec
}
