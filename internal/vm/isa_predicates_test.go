package vm

import "testing"

// The op predicates drive both the transform and the static analyses, so they
// are checked exhaustively against an explicit classification of every opcode.

func TestOpPredicatesExhaustive(t *testing.T) {
	branch := map[Op]bool{BEQ: true, BNE: true, BLT: true, BGE: true}
	indirect := map[Op]bool{JR: true, CALLR: true, RET: true, JRH: true, CALLRH: true, RETH: true, JTR: true}
	call := map[Op]bool{CALL: true, CALLR: true, CALLRH: true}
	load := map[Op]bool{LDB: true, LDW: true, LDBS: true, LDWS: true}
	store := map[Op]bool{STB: true, STW: true, STBS: true, STWS: true}
	spec := map[Op]bool{LDBS: true, LDWS: true, STBS: true, STWS: true, JRH: true, CALLRH: true, RETH: true, JTR: true}

	for op := NOP; op < opCount; op++ {
		if got := op.IsBranch(); got != branch[op] {
			t.Errorf("%v.IsBranch() = %v", op, got)
		}
		if got := op.IsIndirect(); got != indirect[op] {
			t.Errorf("%v.IsIndirect() = %v", op, got)
		}
		if got := op.IsCall(); got != call[op] {
			t.Errorf("%v.IsCall() = %v", op, got)
		}
		if got := op.IsLoad(); got != load[op] {
			t.Errorf("%v.IsLoad() = %v", op, got)
		}
		if got := op.IsStore(); got != store[op] {
			t.Errorf("%v.IsStore() = %v", op, got)
		}
		if got := op.IsSpeculative(); got != spec[op] {
			t.Errorf("%v.IsSpeculative() = %v", op, got)
		}
		wantControl := branch[op] || indirect[op] || op == JMP || op == CALL
		if got := op.IsControl(); got != wantControl {
			t.Errorf("%v.IsControl() = %v", op, got)
		}
	}
}

func TestWritesReg(t *testing.T) {
	cases := []struct {
		ins  Instr
		reg  uint8
		ok   bool
		name string
	}{
		{Instr{Op: ADD, Rd: 5, Rs1: 1, Rs2: 2}, 5, true, "alu reg"},
		{Instr{Op: MOVI, Rd: 7, Imm: 9}, 7, true, "movi"},
		{Instr{Op: ADDI, Rd: R0, Rs1: 1, Imm: 1}, 0, false, "write to r0"},
		{Instr{Op: LDW, Rd: 3, Rs1: 2}, 3, true, "load"},
		{Instr{Op: LDBS, Rd: 4, Rs1: 2}, 4, true, "checked load"},
		{Instr{Op: STW, Rs1: 2, Rs2: 3}, 0, false, "store"},
		{Instr{Op: CALL, Imm: 10}, RA, true, "call defines ra"},
		{Instr{Op: CALLR, Rs1: 8}, RA, true, "callr defines ra"},
		{Instr{Op: CALLRH, Rs1: 8}, RA, true, "callr.h defines ra"},
		{Instr{Op: JMP, Imm: 3}, 0, false, "jmp"},
		{Instr{Op: RET}, 0, false, "ret"},
		{Instr{Op: SYSCALL, Imm: SysRead}, R1, true, "syscall result in r1"},
		{Instr{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 4}, 0, false, "branch"},
		{Instr{Op: NOP}, 0, false, "nop"},
	}
	for _, c := range cases {
		reg, ok := c.ins.WritesReg()
		if ok != c.ok || (ok && reg != c.reg) {
			t.Errorf("%s: WritesReg(%v) = (%d, %v), want (%d, %v)", c.name, c.ins, reg, ok, c.reg, c.ok)
		}
	}
}

func TestReadsRegs(t *testing.T) {
	reads := func(i Instr) []uint8 { return i.ReadsRegs(nil) }
	cases := []struct {
		ins  Instr
		want []uint8
		name string
	}{
		{Instr{Op: ADD, Rd: 5, Rs1: 1, Rs2: 2}, []uint8{1, 2}, "alu reg"},
		{Instr{Op: ADDI, Rd: 5, Rs1: 3, Imm: 4}, []uint8{3}, "alu imm"},
		{Instr{Op: MOVI, Rd: 5, Imm: 4}, nil, "movi"},
		{Instr{Op: LDW, Rd: 3, Rs1: 6}, []uint8{6}, "load base"},
		{Instr{Op: STW, Rs1: 6, Rs2: 7}, []uint8{6, 7}, "store base+value"},
		{Instr{Op: BNE, Rs1: 2, Rs2: 4, Imm: 9}, []uint8{2, 4}, "branch"},
		{Instr{Op: JMP, Imm: 9}, nil, "jmp"},
		{Instr{Op: JR, Rs1: 8}, []uint8{8}, "jr"},
		{Instr{Op: JTR, Rs1: 8, Imm: 0}, []uint8{8}, "jtr"},
		{Instr{Op: RET}, []uint8{RA}, "ret"},
		{Instr{Op: RETH}, []uint8{RA}, "ret.h"},
		{Instr{Op: SYSCALL, Imm: SysRead}, []uint8{R1, R2, R3, R4}, "syscall args"},
	}
	for _, c := range cases {
		got := reads(c.ins)
		if len(got) != len(c.want) {
			t.Errorf("%s: ReadsRegs(%v) = %v, want %v", c.name, c.ins, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: ReadsRegs(%v) = %v, want %v", c.name, c.ins, got, c.want)
				break
			}
		}
	}
}
