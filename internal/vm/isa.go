// Package vm implements the virtual machine that stands in for the paper's
// Digital UNIX Alpha binaries: a 64-bit register machine with explicit
// loads/stores, direct and indirect control transfers, jump tables, and a
// small syscall surface (open/close/read/seek/fstat/write/sbrk plus the TIP
// hint calls).
//
// SpecHint (internal/spechint) operates on vm programs the way the real tool
// operated on Alpha binaries: it appends a shadow copy of the text section in
// which loads and stores are rewritten to software-copy-on-write variants,
// static control transfers are redirected into the shadow, and indirect
// transfers are routed through a handling routine. The vm executes both the
// original and the shadow text; speculative-mode memory semantics (COW reads
// and writes, private stack, fault-instead-of-crash) are part of the machine
// because that is where the real machine enforced them too (via address
// spaces and signal handlers).
package vm

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Register-to-register ALU ops compute Rd = Rs1 <op> Rs2; immediate forms
// compute Rd = Rs1 <op> Imm. Branches compare Rs1 with Rs2 and jump to the
// absolute instruction address Imm. Loads read mem[Rs1+Imm] into Rd; stores
// write Rs2 to mem[Rs1+Imm].
const (
	NOP Op = iota

	// ALU, register.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	SLT // set if less than (signed)

	// ALU, immediate.
	ADDI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SLTI
	MOVI // Rd = Imm

	// Memory.
	LDB // load unsigned byte
	LDW // load 64-bit word
	STB
	STW

	// Control.
	BEQ
	BNE
	BLT   // signed
	BGE   // signed
	JMP   // pc = Imm
	CALL  // RA = pc+1; pc = Imm
	JR    // pc = Rs1
	CALLR // RA = pc+1; pc = Rs1
	RET   // pc = RA

	SYSCALL // code = Imm; args R1..R4; result R1

	// Speculative (shadow-code) variants, emitted only by SpecHint. The _S
	// memory ops route through the copy-on-write map; the _H control ops
	// route through the dynamic handling routine that maps original-text
	// targets into the shadow. JTR is an indirect jump through a jump table
	// in a format SpecHint recognized and statically validated.
	LDBS
	LDWS
	STBS
	STWS
	JRH
	CALLRH
	RETH
	JTR

	opCount // sentinel
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SLT: "slt",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SHLI: "shli",
	SHRI: "shri", SLTI: "slti", MOVI: "movi",
	LDB: "ldb", LDW: "ldw", STB: "stb", STW: "stw",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JMP: "jmp", CALL: "call", JR: "jr", CALLR: "callr", RET: "ret",
	SYSCALL: "syscall",
	LDBS:    "ldb.s", LDWS: "ldw.s", STBS: "stb.s", STWS: "stw.s",
	JRH: "jr.h", CALLRH: "callr.h", RETH: "ret.h", JTR: "jtr",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsLoad reports whether o reads data memory.
func (o Op) IsLoad() bool { return o == LDB || o == LDW || o == LDBS || o == LDWS }

// IsStore reports whether o writes data memory.
func (o Op) IsStore() bool { return o == STB || o == STW || o == STBS || o == STWS }

// IsSpeculative reports whether o is a shadow-only variant.
func (o Op) IsSpeculative() bool {
	switch o {
	case LDBS, LDWS, STBS, STWS, JRH, CALLRH, RETH, JTR:
		return true
	}
	return false
}

// IsBranch reports whether o is a conditional branch (falls through when the
// condition does not hold).
func (o Op) IsBranch() bool { return o == BEQ || o == BNE || o == BLT || o == BGE }

// IsIndirect reports whether o is a register-indirect control transfer,
// including the shadow handler variants and the checked jump-table jump.
// These are the transfers SpecHint cannot rebase statically.
func (o Op) IsIndirect() bool {
	switch o {
	case JR, CALLR, RET, JRH, CALLRH, RETH, JTR:
		return true
	}
	return false
}

// IsCall reports whether o saves a return address before transferring.
func (o Op) IsCall() bool { return o == CALL || o == CALLR || o == CALLRH }

// IsControl reports whether o transfers control (unconditionally or not).
// SYSCALL is not control transfer: it always resumes at the next PC.
func (o Op) IsControl() bool {
	return o.IsBranch() || o.IsIndirect() || o == JMP || o == CALL
}

// WritesReg returns the register i defines, if any. Writes to the hardwired
// zero register define nothing. SYSCALL results land in R1 by convention.
func (i Instr) WritesReg() (uint8, bool) {
	var rd uint8
	switch {
	case i.Op >= ADD && i.Op <= MOVI, i.Op.IsLoad():
		rd = i.Rd
	case i.Op.IsCall():
		rd = RA
	case i.Op == SYSCALL:
		rd = R1
	default:
		return 0, false
	}
	if rd == R0 {
		return 0, false
	}
	return rd, true
}

// ReadsRegs appends the registers i uses to dst and returns the extended
// slice. The hardwired zero register is included when named; callers that
// track definitions can ignore it (it has none). SYSCALL conservatively
// reads the full argument convention R1-R4.
func (i Instr) ReadsRegs(dst []uint8) []uint8 {
	switch {
	case i.Op >= ADD && i.Op <= SLT: // register ALU
		return append(dst, i.Rs1, i.Rs2)
	case i.Op >= ADDI && i.Op <= SLTI: // immediate ALU
		return append(dst, i.Rs1)
	case i.Op == MOVI, i.Op == NOP, i.Op == JMP, i.Op == CALL:
		return dst
	case i.Op.IsLoad():
		return append(dst, i.Rs1)
	case i.Op.IsStore():
		return append(dst, i.Rs1, i.Rs2)
	case i.Op.IsBranch():
		return append(dst, i.Rs1, i.Rs2)
	case i.Op == JR, i.Op == CALLR, i.Op == JRH, i.Op == CALLRH, i.Op == JTR:
		return append(dst, i.Rs1)
	case i.Op == RET, i.Op == RETH:
		return append(dst, RA)
	case i.Op == SYSCALL:
		return append(dst, R1, R2, R3, R4)
	}
	return dst
}

// Register conventions. R0 is hardwired to zero. R1-R4 carry syscall and
// function arguments (R1 also results). RA holds return addresses, SP the
// stack pointer. AT is reserved for tool-inserted code (SpecHint), never
// used by compiled programs.
const (
	R0      = 0
	R1      = 1
	R2      = 2
	R3      = 3
	R4      = 4
	AT      = 26
	RA      = 29
	SP      = 30
	NumRegs = 32
)

// Instr is one instruction. PCs and branch targets are instruction indices
// into the text section, not byte addresses; for size accounting each
// instruction is considered InstrBytes wide, as on the Alpha.
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          int64
}

// InstrBytes is the encoded size of one instruction (32-bit, like Alpha).
const InstrBytes = 4

func (i Instr) String() string {
	switch {
	case i.Op == NOP || i.Op == RET || i.Op == RETH:
		return i.Op.String()
	case i.Op == SYSCALL:
		return fmt.Sprintf("syscall %d", i.Imm)
	case i.Op == MOVI:
		return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
	case i.Op == JMP || i.Op == CALL:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case i.Op == JR || i.Op == CALLR || i.Op == JRH || i.Op == CALLRH:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs1)
	case i.Op == JTR:
		return fmt.Sprintf("jtr r%d, table@%d", i.Rs1, i.Imm)
	case i.Op.IsLoad():
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op.IsStore():
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op == BEQ || i.Op == BNE || i.Op == BLT || i.Op == BGE:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op == ADDI || i.Op == ANDI || i.Op == ORI || i.Op == XORI ||
		i.Op == SHLI || i.Op == SHRI || i.Op == SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Syscall codes.
const (
	SysExit = iota
	SysOpen
	SysClose
	SysRead
	SysSeek
	SysFstat
	SysWrite
	SysSbrk
	SysPrint    // write NUL-terminated string at R1 to stdout
	SysPrintInt // write integer R1 to stdout
	SysHintFD   // TIPIO_FD_SEG: fd=R1 off=R2 len=R3
	SysHintFile // TIPIO_SEG: path=R1 off=R2 len=R3
	SysCancelAll
	SysCount // sentinel
)

// SyscallName returns a human-readable name for a syscall code.
func SyscallName(code int64) string {
	names := [...]string{
		"exit", "open", "close", "read", "seek", "fstat", "write", "sbrk",
		"print", "printint", "hintfd", "hintfile", "cancelall",
	}
	if code >= 0 && code < int64(len(names)) {
		return names[code]
	}
	return fmt.Sprintf("sys(%d)", code)
}

// JumpTableFormat identifies how a jump table is laid out; SpecHint only
// recognizes a few compiler-dependent formats (the paper, §3.2.1).
type JumpTableFormat int

const (
	// JTAbsolute tables hold absolute instruction addresses as 64-bit words.
	JTAbsolute JumpTableFormat = iota
	// JTUnknown marks a table in a format SpecHint does not recognize;
	// transfers through it cannot be statically redirected.
	JTUnknown
)

// JumpTable describes a switch-statement jump table in the data section.
type JumpTable struct {
	Addr   int64 // data address of the first entry
	Len    int64 // number of entries
	Format JumpTableFormat
}

// Program is a loadable unit: text, initialized data, and metadata.
type Program struct {
	Text     []Instr
	Data     []byte
	DataSize int64 // reserved data+BSS bytes (>= len(Data))
	Entry    int64 // starting PC

	JumpTables []JumpTable

	// Symbols maps label names to text addresses; DataSymbols to data
	// addresses. Used by tooling and tests, not by execution.
	Symbols     map[string]int64
	DataSymbols map[string]int64

	// OrigTextLen is set by SpecHint after transformation: instructions
	// [0, OrigTextLen) are the original text, [ShadowBase, ...) the shadow.
	// Zero means untransformed.
	OrigTextLen int64
	ShadowBase  int64
}

// Validate performs basic structural checks.
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("vm: empty text section")
	}
	if p.Entry < 0 || p.Entry >= int64(len(p.Text)) {
		return fmt.Errorf("vm: entry %d outside text [0,%d)", p.Entry, len(p.Text))
	}
	if p.DataSize < int64(len(p.Data)) {
		return fmt.Errorf("vm: DataSize %d < initialized data %d", p.DataSize, len(p.Data))
	}
	for i, ins := range p.Text {
		if ins.Op >= opCount {
			return fmt.Errorf("vm: bad opcode at %d", i)
		}
		if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
			return fmt.Errorf("vm: bad register at %d: %v", i, ins)
		}
	}
	for _, jt := range p.JumpTables {
		if jt.Addr < 0 || jt.Len <= 0 || jt.Addr+jt.Len*8 > p.DataSize {
			return fmt.Errorf("vm: jump table [%d,+%d) outside data", jt.Addr, jt.Len)
		}
	}
	return nil
}

// TextBytes returns the encoded text size, for Table 3 style accounting.
func (p *Program) TextBytes() int64 { return int64(len(p.Text)) * InstrBytes }
