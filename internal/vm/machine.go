package vm

import (
	"encoding/binary"
	"fmt"

	"spechint/internal/cow"
)

// Mode distinguishes the original thread from the speculating thread.
type Mode int

const (
	// Normal execution: exceptions are program errors, stores are direct.
	Normal Mode = iota
	// Speculative execution: exceptions become signals that park the thread
	// until the next restart, and memory is mediated by copy-on-write.
	Speculative
)

// ThreadState is a thread's scheduling state.
type ThreadState int

const (
	Ready ThreadState = iota
	Blocked
	Halted
	Faulted
)

func (s ThreadState) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Halted:
		return "halted"
	case Faulted:
		return "faulted"
	}
	return "unknown"
}

// StopReason tells the scheduler why Run returned.
type StopReason int

const (
	StopBudget StopReason = iota
	StopBlocked
	StopHalted
	StopFault
	StopError
	StopYield
)

func (r StopReason) String() string {
	switch r {
	case StopBudget:
		return "budget"
	case StopBlocked:
		return "blocked"
	case StopHalted:
		return "halted"
	case StopFault:
		return "fault"
	case StopError:
		return "error"
	case StopYield:
		return "yield"
	}
	return "unknown"
}

// SysControl is the OS's verdict on a syscall.
type SysControl int

const (
	// SysDone: the syscall completed; execution continues.
	SysDone SysControl = iota
	// SysBlock: the thread blocks; the OS will set the result register and
	// wake it later.
	SysBlock
	// SysHalt: the thread exits.
	SysHalt
	// SysFault: the syscall is forbidden or failed fatally; in speculative
	// mode the thread faults, in normal mode it is a program error.
	SysFault
	// SysYield: the syscall completed but a higher-priority thread became
	// runnable; stop this slice so the scheduler can preempt.
	SysYield
)

// OS services syscalls. Implementations read arguments from t.Regs[R1..R4]
// and write results to t.Regs[R1].
type OS interface {
	Syscall(m *Machine, t *Thread, code int64) SysControl
}

// CostModel assigns cycle costs to instruction classes. The speculative
// check costs are what produce the paper's dilation factor.
type CostModel struct {
	Default    int64 // ALU, moves, branches, plain loads/stores
	Mul        int64
	Div        int64
	Syscall    int64 // kernel crossing
	LoadCheck  int64 // extra cycles for a COW-checked load
	StoreCheck int64 // extra cycles for a COW-checked store
	CopyPer8B  int64 // cycles per 8 bytes when a region is first copied
	Handler    int64 // extra cycles for the dynamic control-transfer handler
	JumpTable  int64 // extra cycles for a recognized (static) jump-table jump
}

// DefaultCosts approximates the testbed processor.
func DefaultCosts() CostModel {
	return CostModel{
		Default:    1,
		Mul:        3,
		Div:        20,
		Syscall:    300,
		LoadCheck:  20,
		StoreCheck: 26,
		CopyPer8B:  1,
		Handler:    20,
		JumpTable:  2,
	}
}

// Config sizes the machine.
type Config struct {
	MemSize   int64 // data + heap + original stack
	StackSize int64 // original stack region (top of MemSize); the
	// speculating thread gets an equal-size private stack above MemSize
	SpecHeapSize int64 // private sbrk arena for the speculating thread
	PageBytes    int64 // page size for footprint accounting (8 KB on Alpha)
	ReclaimGap   int64 // cycles of inactivity after which a page re-touch
	// counts as a reclaim (models the LRU physical-map sweeper)
	COWRegion int // copy-on-write region size (power of two)
	Cost      CostModel
}

// DefaultConfig returns a machine sized for the benchmark programs.
func DefaultConfig() Config {
	return Config{
		MemSize:      4 << 20,
		StackSize:    256 << 10,
		SpecHeapSize: 256 << 10,
		PageBytes:    8192,
		ReclaimGap:   4 << 20,
		COWRegion:    1024,
		Cost:         DefaultCosts(),
	}
}

// PageStats models the paper's Table 6 paging numbers.
type PageStats struct {
	Touched  int64 // distinct pages ever accessed
	Faults   int64 // first touches
	Reclaims int64 // re-touches after a long idle gap (page was unmapped)
}

// Thread is one hardware context.
type Thread struct {
	Name  string
	Mode  Mode
	Regs  [NumRegs]int64
	PC    int64
	State ThreadState
	Cow   *cow.Map // non-nil iff Mode == Speculative

	// PendingCycles is a deferred charge the OS adds during a syscall (data
	// copy costs, hint-log checks); the run loop consumes it before the
	// next instruction.
	PendingCycles int64

	// Statistics.
	Instrs   int64
	Cycles   int64
	Loads    int64
	Stores   int64
	Signals  int64 // speculative faults
	ExitCode int64
	Err      error // fatal error (Normal mode only)
}

// Wake unblocks a Blocked thread, storing result into R1 (the syscall
// return register).
func (t *Thread) Wake(result int64) {
	if t.State != Blocked {
		panic(fmt.Sprintf("vm: Wake of %s thread in state %v", t.Name, t.State))
	}
	t.Regs[R1] = result
	t.State = Ready
}

// Machine executes a (possibly transformed) program.
type Machine struct {
	text []Instr
	dec  []dInstr // text pre-decoded for dispatch (see decode.go)
	mem  []byte
	prog *Program
	cfg  Config
	os   OS

	cowCopyCost int64 // cycles charged per freshly-copied COW region

	brk     int64 // original thread's heap break
	specBrk int64 // speculating thread's private break

	pageLast []int64
	pages    PageStats
	clock    int64 // total cycles executed on this machine (all threads)

	sliceUsed int64 // cycles consumed in the current Run slice (for OS clock sync)
}

// NewMachine loads prog into a fresh machine.
func NewMachine(prog *Program, os OS, cfg Config) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemSize <= 0 || cfg.StackSize <= 0 || cfg.StackSize*2 >= cfg.MemSize {
		return nil, fmt.Errorf("vm: bad memory geometry mem=%d stack=%d", cfg.MemSize, cfg.StackSize)
	}
	if prog.DataSize > cfg.MemSize-cfg.StackSize {
		return nil, fmt.Errorf("vm: data %d does not fit below the stack", prog.DataSize)
	}
	total := cfg.MemSize + cfg.StackSize + cfg.SpecHeapSize
	m := &Machine{
		text:     prog.Text,
		dec:      decodeProgram(prog.Text, cfg.Cost),
		mem:      make([]byte, total),
		prog:     prog,
		cfg:      cfg,
		os:       os,
		brk:      (prog.DataSize + 7) &^ 7,
		pageLast: make([]int64, (total+cfg.PageBytes-1)/cfg.PageBytes),

		cowCopyCost: cfg.Cost.CopyPer8B * int64(cfg.COWRegion) / 8,
	}
	m.specBrk = cfg.MemSize + cfg.StackSize
	copy(m.mem, prog.Data)
	for i := range m.pageLast {
		m.pageLast[i] = -1
	}
	return m, nil
}

// Program returns the loaded program.
func (m *Machine) Program() *Program { return m.prog }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mem exposes raw memory for loaders and tests.
func (m *Machine) Mem() []byte { return m.mem }

// Pages returns the paging statistics accumulated so far.
func (m *Machine) Pages() PageStats { return m.pages }

// SliceUsed returns the cycles consumed so far in the current Run slice.
// OS syscall handlers use it to synchronize the virtual clock to the precise
// moment of the syscall.
func (m *Machine) SliceUsed() int64 { return m.sliceUsed }

// NewThread creates a thread of the given mode at the program entry (Normal)
// or parked (Speculative; the restart protocol will position it).
func (m *Machine) NewThread(name string, mode Mode) *Thread {
	t := &Thread{Name: name, Mode: mode, State: Ready}
	if mode == Normal {
		t.PC = m.prog.Entry
		t.Regs[SP] = m.cfg.MemSize
	} else {
		t.Cow = cow.New(m.cfg.COWRegion)
		t.Regs[SP] = m.cfg.MemSize + m.cfg.StackSize
		t.State = Faulted // parked until first restart
	}
	return t
}

// SpecStackBounds returns the speculating thread's private stack region.
func (m *Machine) SpecStackBounds() (lo, hi int64) {
	return m.cfg.MemSize, m.cfg.MemSize + m.cfg.StackSize
}

// CopyStackForSpec copies the original thread's live stack [sp, MemSize)
// into the speculative stack area and returns the speculative SP. This is
// the restart protocol's stack copy (paper §3.2.2).
func (m *Machine) CopyStackForSpec(origSP int64) int64 {
	lo, _ := m.SpecStackBounds()
	if origSP < m.cfg.MemSize-m.cfg.StackSize || origSP > m.cfg.MemSize {
		panic(fmt.Sprintf("vm: original SP %d outside stack", origSP))
	}
	n := m.cfg.MemSize - origSP
	copy(m.mem[lo+m.cfg.StackSize-n:lo+m.cfg.StackSize], m.mem[origSP:m.cfg.MemSize])
	return lo + m.cfg.StackSize - n
}

// Sbrk implements the sbrk syscall for either thread. The speculating
// thread allocates from a private arena (the paper added dedicated
// allocation routines for it); increments are rounded up to 8 bytes.
func (m *Machine) Sbrk(t *Thread, incr int64) int64 {
	incr = (incr + 7) &^ 7
	if t.Mode == Speculative {
		old := m.specBrk
		if incr < 0 || m.specBrk+incr > int64(len(m.mem)) {
			return -1
		}
		m.specBrk += incr
		return old
	}
	old := m.brk
	if incr < 0 || m.brk+incr > m.cfg.MemSize-m.cfg.StackSize {
		return -1
	}
	m.brk += incr
	return old
}

// ResetSpecBrk rewinds the speculative arena (called at restart).
func (m *Machine) ResetSpecBrk() { m.specBrk = m.cfg.MemSize + m.cfg.StackSize }

// touchPage records a data access for footprint/fault/reclaim accounting.
func (m *Machine) touchPage(addr int64) {
	p := addr / m.cfg.PageBytes
	last := m.pageLast[p]
	switch {
	case last < 0:
		m.pages.Touched++
		m.pages.Faults++
	case m.clock-last > m.cfg.ReclaimGap:
		m.pages.Reclaims++
	}
	m.pageLast[p] = m.clock
}

// validAddr reports whether [addr, addr+n) lies in memory.
func (m *Machine) validAddr(addr, n int64) bool {
	return addr >= 0 && n >= 0 && addr+n <= int64(len(m.mem))
}

// inSpecPrivate reports whether [addr, addr+n) lies in the speculating
// thread's private area (its stack and sbrk arena). Unchecked stores in
// shadow code are only legal there — SpecHint leaves stack-pointer-relative
// stores unchecked because the speculative stack is private.
func (m *Machine) inSpecPrivate(addr, n int64) bool {
	return addr >= m.cfg.MemSize && addr+n <= int64(len(m.mem))
}

// ReadMem copies n bytes at addr out of the thread's view of memory
// (honoring COW for speculative threads).
func (m *Machine) ReadMem(t *Thread, addr, n int64) ([]byte, error) {
	if !m.validAddr(addr, n) {
		return nil, fmt.Errorf("vm: read [%d,+%d) out of range", addr, n)
	}
	buf := make([]byte, n)
	if t.Mode == Speculative {
		for i := int64(0); i < n; i++ {
			buf[i] = t.Cow.LoadByte(m.mem, addr+i)
		}
	} else {
		copy(buf, m.mem[addr:addr+n])
	}
	return buf, nil
}

// WriteMem stores p at addr through the thread's view of memory.
func (m *Machine) WriteMem(t *Thread, addr int64, p []byte) error {
	n := int64(len(p))
	if !m.validAddr(addr, n) {
		return fmt.Errorf("vm: write [%d,+%d) out of range", addr, n)
	}
	if t.Mode == Speculative && !m.inSpecPrivate(addr, n) {
		for i, b := range p {
			t.Cow.StoreByte(m.mem, addr+int64(i), b)
		}
		return nil
	}
	copy(m.mem[addr:], p)
	return nil
}

// ReadCStr reads a NUL-terminated string from the thread's view of memory.
func (m *Machine) ReadCStr(t *Thread, addr int64) (string, error) {
	const maxLen = 4096
	var out []byte
	for i := int64(0); i < maxLen; i++ {
		if !m.validAddr(addr+i, 1) {
			return "", fmt.Errorf("vm: string at %d runs out of memory", addr)
		}
		var b byte
		if t.Mode == Speculative {
			b = t.Cow.LoadByte(m.mem, addr+i)
		} else {
			b = m.mem[addr+i]
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("vm: unterminated string at %d", addr)
}

// fault marks a speculative exception (a signal in the paper's Table 6);
// for normal threads it is a fatal program error.
func (m *Machine) fault(t *Thread, format string, args ...any) StopReason {
	if t.Mode == Speculative {
		t.Signals++
		t.State = Faulted
		return StopFault
	}
	t.Err = fmt.Errorf(format, args...)
	t.State = Halted
	return StopError
}

// redirect maps an indirect-control-transfer target into the shadow text,
// implementing SpecHint's dynamic handling routine. ok=false means the
// target cannot be mapped and speculation must be prevented from leaving
// the shadow code.
func (m *Machine) redirect(target int64) (int64, bool) {
	p := m.prog
	if p.ShadowBase == 0 {
		return target, false // untransformed program has no shadow
	}
	if target >= 0 && target < p.OrigTextLen {
		return target + p.ShadowBase, true
	}
	if target >= p.ShadowBase && target < int64(len(p.Text)) {
		return target, true
	}
	return 0, false
}

// set writes v to rd, keeping R0 hard-wired to zero. It replaces the old
// setReg closure in the step loop: a method has no capture environment, so
// Run stays allocation-free (see BenchmarkVMStep).
func (t *Thread) set(rd uint8, v int64) {
	if rd != R0 {
		t.Regs[rd] = v
	}
}

// finish settles a run slice: it charges the consumed cycles to the thread
// and the machine clock and clears the slice counter. Kept as a method (not
// a closure over used) so used never escapes to the heap.
func (m *Machine) finish(t *Thread, used int64, r StopReason) (int64, StopReason) {
	t.Cycles += used
	m.clock += used
	m.sliceUsed = 0
	return used, r
}

// Run executes t for at most budget cycles, returning the cycles actually
// consumed and why execution stopped. Run panics if t is not Ready.
//
// The inner loop dispatches over the pre-decoded instruction stream built at
// load time (see decode.go): the class switch is dense, so it compiles to a
// jump table, per-instruction costs and operand variants are already
// resolved, and the PC is kept in a register-friendly local that is synced
// back to the Thread at every exit and around syscalls (the OS may
// reposition a thread mid-slice during the restart protocol).
func (m *Machine) Run(t *Thread, budget int64) (int64, StopReason) {
	if t.State != Ready {
		panic(fmt.Sprintf("vm: Run of %s thread in state %v", t.Name, t.State))
	}
	var used int64

	if t.PendingCycles > 0 {
		used += t.PendingCycles
		t.PendingCycles = 0
		if used >= budget {
			return m.finish(t, used, StopBudget)
		}
	}

	dec := m.dec
	mem := m.mem
	regs := &t.Regs
	pc := t.PC

	for used < budget {
		if pc < 0 || pc >= int64(len(dec)) {
			t.PC = pc
			return m.finish(t, used, m.fault(t, "vm: PC %d outside text", pc))
		}
		ins := &dec[pc]
		c := ins.cost
		t.Instrs++
		nextPC := pc + 1

		switch ins.class {
		case dNOP:

		case dADD:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] + regs[ins.rs2]
			}
		case dSUB:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] - regs[ins.rs2]
			}
		case dMUL:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] * regs[ins.rs2]
			}
		case dDIV, dMOD:
			d := regs[ins.rs2]
			if d == 0 {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: division by zero at PC %d", pc))
			}
			if ins.class == dDIV {
				t.set(ins.rd, regs[ins.rs1]/d)
			} else {
				t.set(ins.rd, regs[ins.rs1]%d)
			}
		case dAND:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] & regs[ins.rs2]
			}
		case dOR:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] | regs[ins.rs2]
			}
		case dXOR:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] ^ regs[ins.rs2]
			}
		case dSHL:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] << uint64(regs[ins.rs2]&63)
			}
		case dSHR:
			if ins.rd != R0 {
				regs[ins.rd] = int64(uint64(regs[ins.rs1]) >> uint64(regs[ins.rs2]&63))
			}
		case dSLT:
			v := int64(0)
			if regs[ins.rs1] < regs[ins.rs2] {
				v = 1
			}
			t.set(ins.rd, v)

		case dADDI:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] + ins.imm
			}
		case dANDI:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] & ins.imm
			}
		case dORI:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] | ins.imm
			}
		case dXORI:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] ^ ins.imm
			}
		case dSHLI:
			if ins.rd != R0 {
				regs[ins.rd] = regs[ins.rs1] << uint64(ins.imm&63)
			}
		case dSHRI:
			if ins.rd != R0 {
				regs[ins.rd] = int64(uint64(regs[ins.rs1]) >> uint64(ins.imm&63))
			}
		case dSLTI:
			v := int64(0)
			if regs[ins.rs1] < ins.imm {
				v = 1
			}
			t.set(ins.rd, v)
		case dMOVI:
			if ins.rd != R0 {
				regs[ins.rd] = ins.imm
			}

		case dLD:
			t.Loads++
			addr := regs[ins.rs1] + ins.imm
			size := int64(1)
			if ins.flags&dfWord != 0 {
				size = 8
			}
			if !m.validAddr(addr, size) {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: load at %d out of range (PC %d)", addr, pc))
			}
			m.touchPage(addr)
			if ins.flags&dfWord == 0 {
				t.set(ins.rd, int64(mem[addr]))
			} else {
				t.set(ins.rd, int64(binary.LittleEndian.Uint64(mem[addr:])))
			}

		case dLDS:
			t.Loads++
			addr := regs[ins.rs1] + ins.imm
			size := int64(1)
			if ins.flags&dfWord != 0 {
				size = 8
			}
			if !m.validAddr(addr, size) {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: spec load at %d out of range (PC %d)", addr, pc))
			}
			m.touchPage(addr)
			if ins.flags&dfWord == 0 {
				t.set(ins.rd, int64(t.Cow.LoadByte(mem, addr)))
			} else {
				t.set(ins.rd, t.Cow.LoadWord(mem, addr))
			}

		case dST:
			t.Stores++
			addr := regs[ins.rs1] + ins.imm
			size := int64(1)
			if ins.flags&dfWord != 0 {
				size = 8
			}
			if !m.validAddr(addr, size) {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: store at %d out of range (PC %d)", addr, pc))
			}
			if t.Mode == Speculative && !m.inSpecPrivate(addr, size) {
				// Shadow code must never store to shared memory unchecked;
				// reaching here means speculation computed a wild address
				// from stale data. Fault, as the SFI checks would.
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: unchecked spec store at %d (PC %d)", addr, pc))
			}
			m.touchPage(addr)
			if ins.flags&dfWord == 0 {
				mem[addr] = byte(regs[ins.rs2])
			} else {
				binary.LittleEndian.PutUint64(mem[addr:], uint64(regs[ins.rs2]))
			}

		case dSTS:
			t.Stores++
			addr := regs[ins.rs1] + ins.imm
			size := int64(1)
			if ins.flags&dfWord != 0 {
				size = 8
			}
			if !m.validAddr(addr, size) {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: spec store at %d out of range (PC %d)", addr, pc))
			}
			m.touchPage(addr)
			var fresh int
			if ins.flags&dfWord == 0 {
				if t.Cow.StoreByte(mem, addr, byte(regs[ins.rs2])) {
					fresh = 1
				}
			} else {
				fresh = t.Cow.StoreWord(mem, addr, regs[ins.rs2])
			}
			c += int64(fresh) * m.cowCopyCost

		case dBEQ:
			if regs[ins.rs1] == regs[ins.rs2] {
				nextPC = ins.imm
			}
		case dBNE:
			if regs[ins.rs1] != regs[ins.rs2] {
				nextPC = ins.imm
			}
		case dBLT:
			if regs[ins.rs1] < regs[ins.rs2] {
				nextPC = ins.imm
			}
		case dBGE:
			if regs[ins.rs1] >= regs[ins.rs2] {
				nextPC = ins.imm
			}
		case dJMP:
			if ins.flags&dfLink != 0 {
				regs[RA] = pc + 1
			}
			nextPC = ins.imm
		case dJR:
			if ins.flags&dfLink != 0 {
				regs[RA] = pc + 1
			}
			nextPC = regs[ins.rs1]

		case dJRH:
			target := regs[ins.rs1]
			mapped, ok := m.redirect(target)
			if !ok {
				// The handling routine prevents the speculating thread from
				// leaving the shadow code: halt this speculation.
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: unmappable indirect target %d (PC %d)", target, pc))
			}
			if ins.flags&dfLink != 0 {
				regs[RA] = pc + 1
			}
			nextPC = mapped

		case dJTR:
			target := regs[ins.rs1]
			mapped, ok := m.redirect(target)
			if !ok {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: jump-table target %d unmappable (PC %d)", target, pc))
			}
			nextPC = mapped

		case dSYSCALL:
			t.PC = nextPC // resume after the syscall on wake
			used += c
			m.sliceUsed = used
			verdict := m.os.Syscall(m, t, ins.imm)
			if t.PendingCycles > 0 {
				used += t.PendingCycles
				t.PendingCycles = 0
			}
			switch verdict {
			case SysDone:
				if used >= budget {
					return m.finish(t, used, StopBudget)
				}
				pc = t.PC // the OS may have repositioned the thread
				continue
			case SysYield:
				return m.finish(t, used, StopYield)
			case SysBlock:
				t.State = Blocked
				return m.finish(t, used, StopBlocked)
			case SysHalt:
				t.State = Halted
				return m.finish(t, used, StopHalted)
			case SysFault:
				return m.finish(t, used, m.fault(t, "vm: forbidden syscall %s at PC %d", SyscallName(ins.imm), t.PC-1))
			}

		default:
			used += c
			t.PC = pc
			return m.finish(t, used, m.fault(t, "vm: illegal opcode %v at PC %d", m.text[pc].Op, pc))
		}

		// Stack-pointer discipline: SpecHint places dynamic checks on
		// SP-modifying instructions so the speculative stack stays private;
		// for normal threads this doubles as overflow detection. The
		// predicate (Rd == SP on a non-store) is pre-decoded into a flag.
		if ins.flags&dfCheckSP != 0 {
			sp := regs[SP]
			if t.Mode == Speculative {
				lo, hi := m.SpecStackBounds()
				if sp < lo || sp > hi {
					used += c
					t.PC = pc
					return m.finish(t, used, m.fault(t, "vm: spec SP %d out of bounds", sp))
				}
			} else if sp < m.cfg.MemSize-m.cfg.StackSize || sp > m.cfg.MemSize {
				used += c
				t.PC = pc
				return m.finish(t, used, m.fault(t, "vm: stack overflow, SP %d", sp))
			}
		}

		pc = nextPC
		used += c
	}
	t.PC = pc
	return m.finish(t, used, StopBudget)
}
