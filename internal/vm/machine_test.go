package vm

import (
	"encoding/binary"
	"testing"
)

// scriptOS is a test OS whose behavior is programmable per syscall code.
type scriptOS struct {
	calls   []int64
	handler func(m *Machine, t *Thread, code int64) SysControl
}

func (o *scriptOS) Syscall(m *Machine, t *Thread, code int64) SysControl {
	o.calls = append(o.calls, code)
	if o.handler != nil {
		return o.handler(m, t, code)
	}
	if code == SysExit {
		t.ExitCode = t.Regs[R1]
		return SysHalt
	}
	t.Regs[R1] = 0
	return SysDone
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.MemSize = 1 << 20
	cfg.StackSize = 64 << 10
	cfg.SpecHeapSize = 64 << 10
	return cfg
}

func prog(text []Instr) *Program {
	return &Program{Text: text, DataSize: 4096}
}

func run(t *testing.T, p *Program, budget int64) (*Machine, *Thread, StopReason) {
	t.Helper()
	os := &scriptOS{}
	m, err := NewMachine(p, os, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("orig", Normal)
	_, stop := m.Run(th, budget)
	return m, th, stop
}

func exitProg(text ...Instr) *Program {
	text = append(text,
		Instr{Op: MOVI, Rd: R1, Imm: 0},
		Instr{Op: SYSCALL, Imm: SysExit},
	)
	return prog(text)
}

func TestALUAndHalt(t *testing.T) {
	p := exitProg(
		Instr{Op: MOVI, Rd: 10, Imm: 6},
		Instr{Op: MOVI, Rd: 11, Imm: 7},
		Instr{Op: MUL, Rd: 12, Rs1: 10, Rs2: 11},
		Instr{Op: ADDI, Rd: 12, Rs1: 12, Imm: -2},
		Instr{Op: SUB, Rd: 13, Rs1: 12, Rs2: 10},
		Instr{Op: DIV, Rd: 14, Rs1: 12, Rs2: 11},
		Instr{Op: MOD, Rd: 15, Rs1: 12, Rs2: 11},
		Instr{Op: AND, Rd: 16, Rs1: 10, Rs2: 11},
		Instr{Op: OR, Rd: 17, Rs1: 10, Rs2: 11},
		Instr{Op: XOR, Rd: 18, Rs1: 10, Rs2: 11},
		Instr{Op: SHLI, Rd: 19, Rs1: 10, Imm: 2},
		Instr{Op: SHRI, Rd: 20, Rs1: 19, Imm: 1},
		Instr{Op: SLT, Rd: 21, Rs1: 10, Rs2: 11},
		Instr{Op: SLTI, Rd: 22, Rs1: 11, Imm: 3},
	)
	m, th, stop := run(t, p, 1_000_000)
	if stop != StopHalted {
		t.Fatalf("stop = %v (err %v)", stop, th.Err)
	}
	want := map[int]int64{12: 40, 13: 34, 14: 5, 15: 5, 16: 6, 17: 7, 18: 1, 19: 24, 20: 12, 21: 1, 22: 0}
	for r, v := range want {
		if th.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, th.Regs[r], v)
		}
	}
	_ = m
}

func TestR0Hardwired(t *testing.T) {
	p := exitProg(
		Instr{Op: MOVI, Rd: R0, Imm: 99},
		Instr{Op: ADD, Rd: 10, Rs1: R0, Rs2: R0},
	)
	_, th, stop := run(t, p, 1000)
	if stop != StopHalted || th.Regs[R0] != 0 || th.Regs[10] != 0 {
		t.Fatalf("R0 = %d, r10 = %d, stop %v", th.Regs[R0], th.Regs[10], stop)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := exitProg(
		Instr{Op: MOVI, Rd: 10, Imm: 0x0102030405060708},
		Instr{Op: MOVI, Rd: 11, Imm: 128},
		Instr{Op: STW, Rs1: 11, Rs2: 10, Imm: 8},
		Instr{Op: LDW, Rd: 12, Rs1: 11, Imm: 8},
		Instr{Op: LDB, Rd: 13, Rs1: 11, Imm: 8},
		Instr{Op: MOVI, Rd: 14, Imm: 0xAB},
		Instr{Op: STB, Rs1: 11, Rs2: 14, Imm: 100},
		Instr{Op: LDB, Rd: 15, Rs1: 11, Imm: 100},
	)
	_, th, stop := run(t, p, 1000)
	if stop != StopHalted {
		t.Fatalf("stop = %v (err %v)", stop, th.Err)
	}
	if th.Regs[12] != 0x0102030405060708 || th.Regs[13] != 0x08 || th.Regs[15] != 0xAB {
		t.Fatalf("regs = %x %x %x", th.Regs[12], th.Regs[13], th.Regs[15])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// sum 1..10 with a BLT loop.
	p := exitProg(
		Instr{Op: MOVI, Rd: 10, Imm: 0},  // sum
		Instr{Op: MOVI, Rd: 11, Imm: 1},  // i
		Instr{Op: MOVI, Rd: 12, Imm: 11}, // limit
		// loop: (pc=3)
		Instr{Op: ADD, Rd: 10, Rs1: 10, Rs2: 11},
		Instr{Op: ADDI, Rd: 11, Rs1: 11, Imm: 1},
		Instr{Op: BLT, Rs1: 11, Rs2: 12, Imm: 3},
	)
	_, th, stop := run(t, p, 10_000)
	if stop != StopHalted || th.Regs[10] != 55 {
		t.Fatalf("sum = %d (stop %v), want 55", th.Regs[10], stop)
	}
}

func TestCallRetWithStack(t *testing.T) {
	// main: call f; exit(r10). f: push RA, set r10=42, pop RA, ret.
	text := []Instr{
		{Op: CALL, Imm: 4},
		{Op: ADD, Rd: R1, Rs1: 10, Rs2: R0},
		{Op: SYSCALL, Imm: SysExit},
		{Op: NOP},
		// f: (pc=4)
		{Op: ADDI, Rd: SP, Rs1: SP, Imm: -8},
		{Op: STW, Rs1: SP, Rs2: RA},
		{Op: MOVI, Rd: 10, Imm: 42},
		{Op: LDW, Rd: RA, Rs1: SP},
		{Op: ADDI, Rd: SP, Rs1: SP, Imm: 8},
		{Op: RET},
	}
	_, th, stop := run(t, prog(text), 1000)
	if stop != StopHalted || th.ExitCode != 42 {
		t.Fatalf("exit = %d (stop %v, err %v)", th.ExitCode, stop, th.Err)
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	text := []Instr{
		{Op: MOVI, Rd: 10, Imm: 4},
		{Op: CALLR, Rs1: 10},
		{Op: MOVI, Rd: R1, Imm: 0},
		{Op: SYSCALL, Imm: SysExit},
		// target: (pc=4)
		{Op: MOVI, Rd: 11, Imm: 9},
		{Op: RET},
	}
	_, th, stop := run(t, prog(text), 1000)
	if stop != StopHalted || th.Regs[11] != 9 {
		t.Fatalf("r11 = %d (stop %v)", th.Regs[11], stop)
	}
}

func TestDivByZeroIsErrorInNormalMode(t *testing.T) {
	p := exitProg(
		Instr{Op: MOVI, Rd: 10, Imm: 5},
		Instr{Op: DIV, Rd: 11, Rs1: 10, Rs2: R0},
	)
	_, th, stop := run(t, p, 1000)
	if stop != StopError || th.Err == nil {
		t.Fatalf("stop = %v err = %v, want error", stop, th.Err)
	}
}

func TestBadAddressIsErrorInNormalMode(t *testing.T) {
	p := exitProg(
		Instr{Op: MOVI, Rd: 10, Imm: -100},
		Instr{Op: LDW, Rd: 11, Rs1: 10},
	)
	_, _, stop := run(t, p, 1000)
	if stop != StopError {
		t.Fatalf("stop = %v, want StopError", stop)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// Infinite loop.
	p := prog([]Instr{{Op: JMP, Imm: 0}})
	os := &scriptOS{}
	m, err := NewMachine(p, os, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("orig", Normal)
	used, stop := m.Run(th, 100)
	if stop != StopBudget || used != 100 {
		t.Fatalf("used %d stop %v, want 100 budget", used, stop)
	}
	if th.State != Ready {
		t.Fatalf("state %v, want Ready", th.State)
	}
	// Resumable.
	used, stop = m.Run(th, 50)
	if stop != StopBudget || used != 50 {
		t.Fatalf("resume: used %d stop %v", used, stop)
	}
}

func TestSyscallBlockAndWake(t *testing.T) {
	os := &scriptOS{}
	os.handler = func(m *Machine, th *Thread, code int64) SysControl {
		switch code {
		case SysRead:
			return SysBlock
		case SysExit:
			th.ExitCode = th.Regs[R1]
			return SysHalt
		}
		return SysDone
	}
	p := prog([]Instr{
		{Op: SYSCALL, Imm: SysRead},
		{Op: ADD, Rd: 10, Rs1: R1, Rs2: R0}, // capture result
		{Op: MOVI, Rd: R1, Imm: 0},
		{Op: SYSCALL, Imm: SysExit},
	})
	m, err := NewMachine(p, os, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("orig", Normal)
	_, stop := m.Run(th, 10_000)
	if stop != StopBlocked || th.State != Blocked {
		t.Fatalf("stop %v state %v", stop, th.State)
	}
	th.Wake(777)
	_, stop = m.Run(th, 10_000)
	if stop != StopHalted || th.Regs[10] != 777 {
		t.Fatalf("after wake: stop %v r10 %d", stop, th.Regs[10])
	}
}

func TestForbiddenSyscallFaultsSpecThread(t *testing.T) {
	os := &scriptOS{handler: func(m *Machine, th *Thread, code int64) SysControl {
		return SysFault
	}}
	p := prog([]Instr{{Op: SYSCALL, Imm: SysWrite}})
	m, err := NewMachine(p, os, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("spec", Speculative)
	th.State = Ready
	th.PC = 0
	_, stop := m.Run(th, 1000)
	if stop != StopFault || th.State != Faulted || th.Signals != 1 {
		t.Fatalf("stop %v state %v signals %d", stop, th.State, th.Signals)
	}
}

// makeSpecMachine builds a machine with a trivially transformed program:
// shadow text appended at ShadowBase with provided shadow instructions.
func makeSpecMachine(t *testing.T, orig, shadow []Instr) (*Machine, *Thread) {
	t.Helper()
	p := &Program{
		Text:        append(append([]Instr{}, orig...), shadow...),
		DataSize:    4096,
		OrigTextLen: int64(len(orig)),
		ShadowBase:  int64(len(orig)),
	}
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("spec", Speculative)
	th.State = Ready
	th.PC = p.ShadowBase
	return m, th
}

func TestSpeculativeStoreIsolation(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	shadow := []Instr{
		{Op: MOVI, Rd: 10, Imm: 200},
		{Op: MOVI, Rd: 11, Imm: 55},
		{Op: STWS, Rs1: 10, Rs2: 11},
		{Op: LDWS, Rd: 12, Rs1: 10},
		{Op: JMP, Imm: 5}, // spin to end budget
		{Op: JMP, Imm: 5},
	}
	m, th := makeSpecMachine(t, orig, shadow)
	m.Run(th, 200)
	if th.Regs[12] != 55 {
		t.Fatalf("spec load = %d, want 55", th.Regs[12])
	}
	if binary.LittleEndian.Uint64(m.Mem()[200:]) != 0 {
		t.Fatal("speculative store reached shared memory")
	}
	if th.Cow.Regions() == 0 {
		t.Fatal("no COW region created")
	}
}

func TestSpeculativeUncheckedStoreOutsidePrivateFaults(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	shadow := []Instr{
		{Op: MOVI, Rd: 10, Imm: 500},
		{Op: STW, Rs1: 10, Rs2: 10}, // unchecked store to shared memory
	}
	m, th := makeSpecMachine(t, orig, shadow)
	_, stop := m.Run(th, 1000)
	if stop != StopFault || th.Signals != 1 {
		t.Fatalf("stop %v signals %d, want fault", stop, th.Signals)
	}
}

func TestSpeculativeUncheckedStoreToSpecStackAllowed(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	shadow := []Instr{
		{Op: ADDI, Rd: SP, Rs1: SP, Imm: -8},
		{Op: STW, Rs1: SP, Rs2: SP},
		{Op: LDW, Rd: 10, Rs1: SP},
		{Op: JMP, Imm: 3},
	}
	m, th := makeSpecMachine(t, orig, shadow)
	m.Run(th, 100)
	if th.State != Ready {
		t.Fatalf("state %v, want still running", th.State)
	}
	if th.Regs[10] != th.Regs[SP] {
		t.Fatal("stack store/load mismatch")
	}
}

func TestSpecSPBoundsCheck(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	shadow := []Instr{
		{Op: MOVI, Rd: SP, Imm: 100}, // SP escapes the private stack
	}
	m, th := makeSpecMachine(t, orig, shadow)
	_, stop := m.Run(th, 100)
	if stop != StopFault {
		t.Fatalf("stop %v, want fault on SP escape", stop)
	}
}

func TestRedirectIndirectTransfers(t *testing.T) {
	// RA holds an original-text address; RETH must land in the shadow.
	orig := []Instr{
		{Op: NOP},
		{Op: NOP},
		{Op: NOP},
	}
	shadow := []Instr{
		{Op: MOVI, Rd: RA, Imm: 1}, // original-text address
		{Op: RETH},
		{Op: MOVI, Rd: 10, Imm: 123}, // shadow of orig pc=1... pc=5 here
		{Op: JMP, Imm: 6},
		{Op: JMP, Imm: 6},
		{Op: JMP, Imm: 6},
	}
	m, th := makeSpecMachine(t, orig, shadow)
	m.Run(th, 50)
	// RETH target 1 maps to ShadowBase+1 = 4... text: orig len 3, shadow
	// starts at 3. MOVI at 3, RETH at 4, so target 1 -> 3+1 = 4? That is
	// the RETH itself; careful: we just verify PC landed in shadow range.
	if th.PC < m.Program().ShadowBase {
		t.Fatalf("PC %d escaped shadow", th.PC)
	}
}

func TestUnmappableIndirectTargetFaults(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	shadow := []Instr{
		{Op: MOVI, Rd: 10, Imm: 999999},
		{Op: JRH, Rs1: 10},
	}
	m, th := makeSpecMachine(t, orig, shadow)
	_, stop := m.Run(th, 100)
	if stop != StopFault {
		t.Fatalf("stop %v, want fault on unmappable target", stop)
	}
}

func TestSpecLoadCheckCostsCycles(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	mk := func(op Op) int64 {
		shadow := []Instr{
			{Op: MOVI, Rd: 10, Imm: 64},
			{Op: op, Rd: 11, Rs1: 10},
			{Op: SYSCALL, Imm: SysExit},
		}
		m, th := makeSpecMachine(t, orig, shadow)
		used, _ := m.Run(th, 10_000)
		return used
	}
	plain := mk(LDW)
	checked := mk(LDWS)
	if checked <= plain {
		t.Fatalf("checked load cost %d <= plain %d", checked, plain)
	}
}

func TestCopyStackForSpec(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate original stack contents.
	origSP := m.cfg.MemSize - 64
	for i := int64(0); i < 64; i++ {
		m.Mem()[origSP+i] = byte(i + 1)
	}
	specSP := m.CopyStackForSpec(origSP)
	lo, hi := m.SpecStackBounds()
	if specSP < lo || specSP > hi {
		t.Fatalf("specSP %d outside [%d,%d]", specSP, lo, hi)
	}
	if hi-specSP != 64 {
		t.Fatalf("spec stack depth %d, want 64", hi-specSP)
	}
	for i := int64(0); i < 64; i++ {
		if m.Mem()[specSP+i] != byte(i+1) {
			t.Fatalf("stack copy mismatch at %d", i)
		}
	}
}

func TestSbrkSeparateArenas(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	norm := m.NewThread("orig", Normal)
	spec := m.NewThread("spec", Speculative)
	a := m.Sbrk(norm, 100)
	b := m.Sbrk(norm, 100)
	if b != a+104 {
		t.Fatalf("normal sbrk: %d then %d", a, b)
	}
	s1 := m.Sbrk(spec, 100)
	if s1 < m.cfg.MemSize {
		t.Fatalf("spec sbrk %d in shared space", s1)
	}
	m.ResetSpecBrk()
	s2 := m.Sbrk(spec, 8)
	if s2 != s1 {
		t.Fatalf("ResetSpecBrk did not rewind: %d vs %d", s2, s1)
	}
	// Exhaustion returns -1.
	if m.Sbrk(spec, 1<<40) != -1 {
		t.Fatal("huge spec sbrk succeeded")
	}
	if m.Sbrk(norm, 1<<40) != -1 {
		t.Fatal("huge sbrk succeeded")
	}
}

func TestReadWriteMemAndCStr(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	norm := m.NewThread("orig", Normal)
	spec := m.NewThread("spec", Speculative)

	if err := m.WriteMem(norm, 100, []byte("hi\x00")); err != nil {
		t.Fatal(err)
	}
	s, err := m.ReadCStr(norm, 100)
	if err != nil || s != "hi" {
		t.Fatalf("ReadCStr = %q, %v", s, err)
	}
	// Speculative write goes to COW; normal view unchanged.
	if err := m.WriteMem(spec, 100, []byte("yo")); err != nil {
		t.Fatal(err)
	}
	s, _ = m.ReadCStr(norm, 100)
	if s != "hi" {
		t.Fatalf("spec WriteMem leaked: %q", s)
	}
	s, err = m.ReadCStr(spec, 100)
	if err != nil || s != "yo" {
		t.Fatalf("spec view = %q, %v", s, err)
	}
	// Spec write to its private area is direct.
	lo, _ := m.SpecStackBounds()
	if err := m.WriteMem(spec, lo, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if m.Mem()[lo] != 'x' {
		t.Fatal("private-area write not direct")
	}
	// Bounds errors.
	if err := m.WriteMem(norm, -1, []byte("x")); err == nil {
		t.Fatal("negative write accepted")
	}
	if _, err := m.ReadMem(norm, int64(len(m.Mem())), 1); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestPageAccounting(t *testing.T) {
	p := exitProg(
		Instr{Op: MOVI, Rd: 10, Imm: 0},
		Instr{Op: STB, Rs1: 10, Rs2: 11, Imm: 0},
		Instr{Op: MOVI, Rd: 10, Imm: 8192},
		Instr{Op: STB, Rs1: 10, Rs2: 11, Imm: 0},
		Instr{Op: STB, Rs1: 10, Rs2: 11, Imm: 1}, // same page
	)
	m, _, stop := run(t, p, 10_000)
	if stop != StopHalted {
		t.Fatalf("stop %v", stop)
	}
	pg := m.Pages()
	// Two data pages plus one stack page? No stack use here: exactly 2.
	if pg.Touched != 2 || pg.Faults != 2 {
		t.Fatalf("pages = %+v, want 2 touched 2 faults", pg)
	}
}

func TestJumpTableJTR(t *testing.T) {
	// Orig text: 4 entries; shadow: load from table, JTR.
	orig := []Instr{
		{Op: NOP}, {Op: NOP}, {Op: NOP}, {Op: NOP},
	}
	shadow := []Instr{
		{Op: MOVI, Rd: 10, Imm: 2}, // pretend loaded from jump table: orig pc 2
		{Op: JTR, Rs1: 10, Imm: 0},
	}
	m, th := makeSpecMachine(t, orig, shadow)
	m.Run(th, 10)
	if th.PC != m.Program().ShadowBase+2 {
		t.Fatalf("JTR landed at %d, want %d", th.PC, m.Program().ShadowBase+2)
	}
}

func TestProgramValidate(t *testing.T) {
	bad := []*Program{
		{},
		{Text: []Instr{{Op: NOP}}, Entry: 5},
		{Text: []Instr{{Op: NOP}}, Data: []byte{1, 2, 3}, DataSize: 1},
		{Text: []Instr{{Op: opCount}}, DataSize: 0},
		{Text: []Instr{{Op: NOP, Rd: 77}}},
		{Text: []Instr{{Op: NOP}}, DataSize: 16, JumpTables: []JumpTable{{Addr: 8, Len: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
	good := &Program{Text: []Instr{{Op: NOP}}, DataSize: 16, JumpTables: []JumpTable{{Addr: 0, Len: 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
}

func TestInstrString(t *testing.T) {
	ins := []Instr{
		{Op: NOP}, {Op: MOVI, Rd: 1, Imm: 5}, {Op: LDW, Rd: 2, Rs1: 3, Imm: 8},
		{Op: STB, Rs1: 1, Rs2: 2}, {Op: BEQ, Rs1: 1, Rs2: 2, Imm: 7},
		{Op: SYSCALL, Imm: SysRead}, {Op: JTR, Rs1: 4, Imm: 0},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, {Op: JR, Rs1: 5}, {Op: RET},
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: -1}, {Op: JMP, Imm: 3},
	}
	for _, i := range ins {
		if i.String() == "" {
			t.Errorf("empty String for %v", i.Op)
		}
	}
	if Op(200).String() == "" {
		t.Error("unknown op String empty")
	}
	if SyscallName(99) == "" || SyscallName(SysRead) != "read" {
		t.Error("SyscallName wrong")
	}
}

func TestJTRUnmappableTargetFaults(t *testing.T) {
	orig := []Instr{{Op: NOP}, {Op: NOP}}
	shadow := []Instr{
		{Op: MOVI, Rd: 10, Imm: 999999}, // garbage table value
		{Op: JTR, Rs1: 10, Imm: 0},
	}
	m, th := makeSpecMachine(t, orig, shadow)
	_, stop := m.Run(th, 100)
	if stop != StopFault || th.Signals != 1 {
		t.Fatalf("stop %v signals %d, want fault", stop, th.Signals)
	}
}

func TestSpecPCOutsideTextFaults(t *testing.T) {
	orig := []Instr{{Op: NOP}}
	shadow := []Instr{{Op: JMP, Imm: 500000}}
	m, th := makeSpecMachine(t, orig, shadow)
	_, stop := m.Run(th, 100)
	if stop != StopFault {
		t.Fatalf("stop %v, want fault on wild PC", stop)
	}
}

func TestReadCStrUnterminated(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	// Fill a region with non-zero bytes right up to a memory boundary check.
	for i := 0; i < 5000; i++ {
		m.Mem()[100+i] = 'x'
	}
	if _, err := m.ReadCStr(th, 100); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := m.ReadCStr(th, int64(len(m.Mem()))-2); err == nil {
		// last two bytes are zero -> valid empty-ish string is fine; move
		// the probe outside memory instead
		if _, err := m.ReadCStr(th, int64(len(m.Mem()))+10); err == nil {
			t.Fatal("out-of-memory string accepted")
		}
	}
}

func TestWakePanicsOnNonBlocked(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	defer func() {
		if recover() == nil {
			t.Fatal("Wake of ready thread did not panic")
		}
	}()
	th.Wake(1)
	_ = m
}

func TestRunPanicsOnNonReady(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	th.State = Halted
	defer func() {
		if recover() == nil {
			t.Fatal("Run of halted thread did not panic")
		}
	}()
	m.Run(th, 10)
}

func TestMachineGeometryValidation(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	bad := []Config{
		func() Config { c := testCfg(); c.MemSize = 0; return c }(),
		func() Config { c := testCfg(); c.StackSize = c.MemSize; return c }(),
		func() Config { c := testCfg(); c.MemSize = 4096; c.StackSize = 64 << 10; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewMachine(p, &scriptOS{}, cfg); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
	big := prog([]Instr{{Op: NOP}})
	big.DataSize = testCfg().MemSize
	if _, err := NewMachine(big, &scriptOS{}, testCfg()); err == nil {
		t.Error("data larger than memory accepted")
	}
}

func TestNormalModeIndirectGarbageIsError(t *testing.T) {
	p := prog([]Instr{
		{Op: MOVI, Rd: 10, Imm: 1 << 40},
		{Op: JR, Rs1: 10},
	})
	_, _, stop := run(t, p, 100)
	if stop != StopError {
		t.Fatalf("stop = %v, want error on wild jump in normal mode", stop)
	}
}
