package vm

import "testing"

// stepProg is a tight ALU/load/store/branch loop: r10 counts down from Imm,
// each iteration does arithmetic plus a word store/load pair — the mix the
// interpreter spends its time on under the benchmark applications.
func stepProg(iters int64) *Program {
	return prog([]Instr{
		{Op: MOVI, Rd: 10, Imm: iters},
		{Op: MOVI, Rd: 11, Imm: 512}, // buffer base in the data segment
		// loop:
		{Op: ADDI, Rd: 12, Rs1: 12, Imm: 3},
		{Op: MUL, Rd: 13, Rs1: 12, Rs2: 12},
		{Op: STW, Rs1: 11, Rs2: 13, Imm: 0},
		{Op: LDW, Rd: 14, Rs1: 11, Imm: 0},
		{Op: XOR, Rd: 12, Rs1: 12, Rs2: 14},
		{Op: ADDI, Rd: 10, Rs1: 10, Imm: -1},
		{Op: BNE, Rs1: 10, Rs2: R0, Imm: 2},
		{Op: JMP, Imm: 9}, // spin here when done; the budget stops the run
	})
}

// BenchmarkVMStep measures the interpreter's per-instruction cost on the
// hot ALU/memory loop. Each b.N step executes one instruction (budget-bound
// slices of 4096 cycles ≈ 4096 instructions at Default cost 1); the loop
// must report 0 allocs/op — the step loop has no closures and no per-slice
// heap state.
func BenchmarkVMStep(b *testing.B) {
	m, err := NewMachine(stepProg(1<<62), &scriptOS{}, testCfg())
	if err != nil {
		b.Fatal(err)
	}
	th := m.NewThread("bench", Normal)
	b.ReportAllocs()
	b.ResetTimer()
	var left = int64(b.N)
	for left > 0 {
		slice := int64(4096)
		if slice > left {
			slice = left
		}
		used, stop := m.Run(th, slice)
		if stop != StopBudget {
			b.Fatalf("stop = %v (err %v)", stop, th.Err)
		}
		left -= used
	}
}

// BenchmarkVMRunSlice measures whole Run invocations with a short budget,
// the scheduler's calling pattern: entry/exit overhead must also stay
// allocation-free now that setReg/finish are methods rather than closures.
func BenchmarkVMRunSlice(b *testing.B) {
	m, err := NewMachine(stepProg(1<<62), &scriptOS{}, testCfg())
	if err != nil {
		b.Fatal(err)
	}
	th := m.NewThread("bench", Normal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, stop := m.Run(th, 64); stop != StopBudget {
			b.Fatalf("stop = %v (err %v)", stop, th.Err)
		}
	}
}

// TestRunZeroAlloc pins Run's allocation count at zero so a future change
// that reintroduces per-slice closures (or lets a local escape) fails this
// test instead of taxing every simulated instruction slice.
func TestRunZeroAlloc(t *testing.T) {
	m, err := NewMachine(stepProg(1<<62), &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("bench", Normal)
	avg := testing.AllocsPerRun(200, func() {
		if _, stop := m.Run(th, 1024); stop != StopBudget {
			t.Fatalf("stop = %v (err %v)", stop, th.Err)
		}
	})
	if avg != 0 {
		t.Fatalf("Run allocates %.2f objects/slice, want 0", avg)
	}
}
