package vm

import (
	"testing"
	"testing/quick"
)

// runALU executes a single ALU op on a fresh machine and returns Rd.
func runALU(t *testing.T, op Op, a, b int64, imm int64) (int64, StopReason) {
	t.Helper()
	p := prog([]Instr{
		{Op: MOVI, Rd: 10, Imm: a},
		{Op: MOVI, Rd: 11, Imm: b},
		{Op: op, Rd: 12, Rs1: 10, Rs2: 11, Imm: imm},
		{Op: MOVI, Rd: R1, Imm: 0},
		{Op: SYSCALL, Imm: SysExit},
	})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	_, stop := m.Run(th, 1000)
	return th.Regs[12], stop
}

// Property: every register ALU op matches Go's int64 semantics.
func TestPropertyALUMatchesGo(t *testing.T) {
	type alu struct {
		op Op
		fn func(a, b int64) int64
	}
	ops := []alu{
		{ADD, func(a, b int64) int64 { return a + b }},
		{SUB, func(a, b int64) int64 { return a - b }},
		{MUL, func(a, b int64) int64 { return a * b }},
		{AND, func(a, b int64) int64 { return a & b }},
		{OR, func(a, b int64) int64 { return a | b }},
		{XOR, func(a, b int64) int64 { return a ^ b }},
		{SHL, func(a, b int64) int64 { return a << uint64(b&63) }},
		{SHR, func(a, b int64) int64 { return int64(uint64(a) >> uint64(b&63)) }},
		{SLT, func(a, b int64) int64 {
			if a < b {
				return 1
			}
			return 0
		}},
	}
	for _, o := range ops {
		o := o
		f := func(a, b int64) bool {
			got, stop := runALU(t, o.op, a, b, 0)
			return stop == StopHalted && got == o.fn(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v: %v", o.op, err)
		}
	}
}

// Property: DIV and MOD match Go for nonzero divisors and fault on zero.
func TestPropertyDivMod(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			_, stop := runALU(t, DIV, a, b, 0)
			return stop == StopError
		}
		q, s1 := runALU(t, DIV, a, b, 0)
		r, s2 := runALU(t, MOD, a, b, 0)
		return s1 == StopHalted && s2 == StopHalted && q == a/b && r == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stored word always loads back identically at any valid
// aligned-or-not address, in both normal and speculative mode.
func TestPropertyStoreLoadRoundTrip(t *testing.T) {
	p := prog([]Instr{{Op: NOP}, {Op: NOP}})
	p.OrigTextLen = 1
	p.ShadowBase = 1
	f := func(addr uint16, v int64, speculative bool) bool {
		m, err := NewMachine(p, &scriptOS{}, testCfg())
		if err != nil {
			return false
		}
		a := int64(addr) // within data region
		if speculative {
			th := m.NewThread("spec", Speculative)
			th.Cow.StoreWord(m.Mem(), a, v)
			return th.Cow.LoadWord(m.Mem(), a) == v
		}
		th := m.NewThread("norm", Normal)
		if err := m.WriteMem(th, a, []byte{byte(v), byte(v >> 8)}); err != nil {
			return false
		}
		got, err := m.ReadMem(th, a, 2)
		return err == nil && got[0] == byte(v) && got[1] == byte(v>>8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: speculative execution of random store-heavy code never mutates
// shared memory outside the speculative private area.
func TestPropertySpecStoresNeverLeak(t *testing.T) {
	f := func(addrs []uint16, vals []uint8) bool {
		if len(addrs) > 16 {
			addrs = addrs[:16]
		}
		var orig, shadow []Instr
		orig = append(orig, Instr{Op: NOP})
		for i, a := range addrs {
			v := int64(0)
			if i < len(vals) {
				v = int64(vals[i])
			}
			shadow = append(shadow,
				Instr{Op: MOVI, Rd: 10, Imm: int64(a)},
				Instr{Op: MOVI, Rd: 11, Imm: v},
				Instr{Op: STWS, Rs1: 10, Rs2: 11},
				Instr{Op: STBS, Rs1: 10, Rs2: 11, Imm: 9},
			)
		}
		shadow = append(shadow, Instr{Op: SYSCALL, Imm: SysExit})
		p := &Program{
			Text:        append(append([]Instr{}, orig...), shadow...),
			DataSize:    1 << 16,
			OrigTextLen: int64(len(orig)),
			ShadowBase:  int64(len(orig)),
		}
		m, err := NewMachine(p, &scriptOS{}, testCfg())
		if err != nil {
			return false
		}
		before := append([]byte(nil), m.Mem()...)
		th := m.NewThread("spec", Speculative)
		th.State = Ready
		th.PC = p.ShadowBase
		m.Run(th, 1_000_000)
		after := m.Mem()
		lo, _ := m.SpecStackBounds()
		for i := int64(0); i < lo; i++ {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchOpsAllDirections(t *testing.T) {
	cases := []struct {
		op    Op
		a, b  int64
		taken bool
	}{
		{BEQ, 5, 5, true}, {BEQ, 5, 6, false},
		{BNE, 5, 6, true}, {BNE, 5, 5, false},
		{BLT, -1, 0, true}, {BLT, 0, 0, false}, {BLT, 1, 0, false},
		{BGE, 0, 0, true}, {BGE, 1, 0, true}, {BGE, -1, 0, false},
	}
	for _, c := range cases {
		p := prog([]Instr{
			{Op: MOVI, Rd: 10, Imm: c.a},
			{Op: MOVI, Rd: 11, Imm: c.b},
			{Op: c.op, Rs1: 10, Rs2: 11, Imm: 6},
			{Op: MOVI, Rd: 12, Imm: 1}, // fall-through marker
			{Op: MOVI, Rd: R1, Imm: 0},
			{Op: SYSCALL, Imm: SysExit},
			// taken target:
			{Op: MOVI, Rd: 12, Imm: 2},
			{Op: MOVI, Rd: R1, Imm: 0},
			{Op: SYSCALL, Imm: SysExit},
		})
		_, th, stop := run(t, p, 1000)
		if stop != StopHalted {
			t.Fatalf("%v: stop %v", c.op, stop)
		}
		want := int64(1)
		if c.taken {
			want = 2
		}
		if th.Regs[12] != want {
			t.Errorf("%v(%d,%d): marker %d, want %d", c.op, c.a, c.b, th.Regs[12], want)
		}
	}
}

func TestPendingCyclesConsumedAtSliceStart(t *testing.T) {
	p := prog([]Instr{{Op: JMP, Imm: 0}})
	m, err := NewMachine(p, &scriptOS{}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	th.PendingCycles = 95
	used, stop := m.Run(th, 100)
	if stop != StopBudget || used != 100 {
		t.Fatalf("used %d stop %v", used, stop)
	}
	// 95 pending + 5 instructions of the loop.
	if th.Instrs != 5 {
		t.Fatalf("Instrs = %d, want 5", th.Instrs)
	}
	// Pending larger than budget consumes the slice entirely.
	th.PendingCycles = 1000
	used, stop = m.Run(th, 100)
	if stop != StopBudget || used != 1000 || th.Instrs != 5 {
		t.Fatalf("oversized pending: used %d stop %v instrs %d", used, stop, th.Instrs)
	}
}

func TestSyscallYieldStopsSlice(t *testing.T) {
	os := &scriptOS{handler: func(m *Machine, th *Thread, code int64) SysControl {
		return SysYield
	}}
	p := prog([]Instr{
		{Op: SYSCALL, Imm: SysWrite},
		{Op: MOVI, Rd: 10, Imm: 1},
	})
	m, err := NewMachine(p, os, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	_, stop := m.Run(th, 10_000)
	if stop != StopYield || th.State != Ready {
		t.Fatalf("stop %v state %v", stop, th.State)
	}
	if th.Regs[10] != 0 {
		t.Fatal("instruction after yield executed in same slice")
	}
	// Resumable at the next instruction.
	m.Run(th, 10_000)
	if th.Regs[10] != 1 {
		t.Fatal("did not resume after yield")
	}
}

func TestSliceUsedVisibleToOS(t *testing.T) {
	var seen []int64
	os := &scriptOS{handler: func(m *Machine, th *Thread, code int64) SysControl {
		seen = append(seen, m.SliceUsed())
		if code == SysExit {
			return SysHalt
		}
		return SysDone
	}}
	p := prog([]Instr{
		{Op: NOP},
		{Op: SYSCALL, Imm: SysWrite},
		{Op: NOP},
		{Op: NOP},
		{Op: SYSCALL, Imm: SysExit},
	})
	m, err := NewMachine(p, os, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread("t", Normal)
	m.Run(th, 10_000)
	// First syscall after 1 NOP + syscall cost; second after 2 more NOPs.
	if len(seen) != 2 || seen[1] <= seen[0] {
		t.Fatalf("SliceUsed sequence %v", seen)
	}
}

func TestSpecHeapExhaustion(t *testing.T) {
	p := prog([]Instr{{Op: NOP}})
	cfg := testCfg()
	m, err := NewMachine(p, &scriptOS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := m.NewThread("spec", Speculative)
	total := int64(0)
	for {
		v := m.Sbrk(spec, 4096)
		if v == -1 {
			break
		}
		total += 4096
	}
	if total != cfg.SpecHeapSize {
		t.Fatalf("spec heap yielded %d, want %d", total, cfg.SpecHeapSize)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	p := prog([]Instr{
		{Op: ADDI, Rd: SP, Rs1: SP, Imm: -(1 << 30)},
	})
	_, _, stop := run(t, p, 100)
	if stop != StopError {
		t.Fatalf("stop = %v, want StopError on stack overflow", stop)
	}
}
