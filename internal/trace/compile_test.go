package trace

import (
	"strings"
	"testing"

	"spechint/internal/analysis"
	"spechint/internal/asm"
	"spechint/internal/spechint"
)

// testTrace is a small mixed-pattern trace shared by the compile tests.
func testTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Parse(strings.Join([]string{
		"open data/a.bin",
		"read 0 8192",
		"think 5000",
		"read 16384 4096",
		"close",
		"open data/b.bin",
		"read 4096 100",
		"close",
		"open data/a.bin",
		"read 8192 8192",
		"close",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCompileAssembles: both program variants assemble, the original
// transforms, and the transformed binary is speclint-clean — replay
// programs are ordinary programs to the whole toolchain.
func TestCompileAssembles(t *testing.T) {
	tr := testTrace(t)
	for _, manual := range []bool{false, true} {
		src := Source(tr, manual)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("manual=%v: %v\n%s", manual, err, src)
		}
		if prog.ShadowBase != 0 {
			t.Fatalf("manual=%v: fresh program claims a shadow segment", manual)
		}
	}
	orig, err := asm.Assemble(Source(tr, false))
	if err != nil {
		t.Fatal(err)
	}
	opt := spechint.DefaultOptions()
	transformed, _, err := spechint.Transform(orig, opt)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if findings := analysis.Lint(transformed, opt); len(findings) != 0 {
		t.Fatalf("speclint findings on replay program: %v", findings)
	}
}

// TestCompileClassifies: the static classifier walks a replay program
// without error and sees its read site.
func TestCompileClassifies(t *testing.T) {
	orig, err := asm.Assemble(Source(testTrace(t), false))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Classify(orig, analysis.DefaultConfig())
	if err != nil {
		t.Fatalf("replay program does not classify cleanly: %v", err)
	}
	if len(rep.Sites) == 0 {
		t.Fatal("classifier found no read sites in the replay interpreter")
	}
}

// TestCompileEmptyTrace: the degenerate empty trace still compiles to a
// valid program (it just exits).
func TestCompileEmptyTrace(t *testing.T) {
	if _, err := asm.Assemble(Source(&Trace{}, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Assemble(Source(&Trace{}, true)); err != nil {
		t.Fatal(err)
	}
}

// TestCompileManualHintsEveryRead: the oracle prelude contains one hintfile
// site and the data table one record per trace record plus the terminator.
func TestCompileManualHintsEveryRead(t *testing.T) {
	tr := testTrace(t)
	src := Source(tr, true)
	if !strings.Contains(src, "syscall hintfile") {
		t.Fatal("manual variant has no hintfile call")
	}
	if strings.Contains(Source(tr, false), "hintfile") {
		t.Fatal("original variant must not hint")
	}
}
